//===- dist/NodeSet.h - Causal-cut salvage of multi-node logs ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline half of fault-tolerant multi-node replay: load every node's
/// durable epoch log and message log independently (each through the same
/// torn-tail salvage the single-process pipeline uses), compute the
/// *maximal causal cut* of the surviving evidence, merge the per-node
/// constraint systems into one global ScheduleProblem with explicit
/// send->recv cross-node edges, and solve it.
///
/// The causal cut is the fixpoint of two discard rules over the per-thread
/// horizons the salvage recovered:
///
///  * a receive is unjustified when its matching (chan, seq) send is
///    missing from the sending node's salvaged evidence — the send record
///    was never durable, or the sender's ghost chan access fell past that
///    thread's own cut;
///  * an access is unjustified when it observes (reads, or depends on via a
///    span source) an access its own node's cut already discarded.
///
/// An unjustified access truncates its thread's cut just below it, which
/// can invalidate that thread's later sends, which truncates receivers on
/// other nodes — the fixpoint iterates until no rule fires. The result is
/// either a full global schedule (every node closed cleanly, nothing cut)
/// or a structured PartialCut describing exactly which (node, thread)
/// prefixes survive — never a wrong schedule.
///
/// Merging renames each node into a disjoint slice of the global id space:
/// thread t of node n becomes NodeThreadStride*n + t, and every location is
/// node-qualified (nodes are separate address spaces, so global g of node 0
/// and global g of node 1 are different cells; channel ghost words were
/// already node-stamped at record time). Cross-node edges anchor on the
/// exact ghost chan accesses — the recorder emits channel RMWs as
/// singleton spans precisely so both endpoints are order variables.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_DIST_NODESET_H
#define LIGHT_DIST_NODESET_H

#include "core/ConstraintGen.h"
#include "core/ReplaySchedule.h"
#include "trace/MessageLog.h"
#include "trace/RecordingLog.h"

#include <string>
#include <vector>

namespace light {
namespace dist {

/// Thread-id slice width per node in the merged system. The span wire
/// format caps thread ids at 14 bits and ObjectId packing at 12 bits, so
/// 16 nodes x 256 threads is the largest grid every encoding accepts.
constexpr uint32_t NodeThreadStride = 256;
constexpr uint32_t MaxNodes = 16;

/// The epoch-log path of node \p Node under \p BasePath ("<base>.node<i>");
/// its message log sits next to it at messageLogPath(nodeLogPath(...)).
std::string nodeLogPath(const std::string &BasePath, uint32_t Node);

/// One truncation the causal cut applied: everything of (Node, Thread)
/// after access counter Cut was discarded, for Reason.
struct PartialCutEntry {
  uint32_t Node = 0;
  ThreadId Thread = 0; ///< node-local thread id
  Counter Cut = 0;     ///< last surviving access counter (0 = nothing)
  uint64_t DroppedSpans = 0;
  uint64_t DroppedMessages = 0;
  std::string Reason;

  std::string str() const;
};

/// Everything salvage recovered for one node.
struct NodeSalvage {
  SalvageOutcome Epoch;
  MessageLogSalvage Msgs;
  /// Per-thread last surviving counter after the causal cut (index =
  /// node-local ThreadId). Starts at the salvaged horizon.
  std::vector<Counter> Cut;
};

/// Result of the load -> cut -> merge -> solve pipeline.
struct MergeResult {
  /// At least one node contributed a usable prefix; Merged/Order are
  /// meaningful. False means nothing was salvageable anywhere — Error says
  /// why — which is still a structured outcome, not a crash.
  bool Loaded = false;

  /// Every node's logs closed cleanly and the cut discarded nothing: the
  /// solved order is a *full* global schedule. Otherwise Cut lists the
  /// surviving prefixes (PartialCut).
  bool FullSchedule = false;

  std::vector<PartialCutEntry> Cut;
  std::vector<NodeSalvage> Nodes;

  /// The merged (renamed, cut) recording and its solved global order.
  RecordingLog Merged;
  std::vector<AccessId> Order; ///< global ids, NodeThreadStride slices
  smt::SolveResult Stats;
  uint64_t CrossEdges = 0; ///< send->recv constraints added to the system

  std::string Error;
};

/// What one node needs to replay in isolation: its cut-truncated local log,
/// the message deliveries to redeliver (ReplayChannelTransport), and the
/// node-local projection of the solved global order.
struct NodeReplayPlan {
  RecordingLog Log; ///< node-local ids
  std::vector<MessageRecord> Messages;
  ReplaySchedule Plan;
  /// True when this node's evidence was complete (clean close, nothing
  /// cut): the replay must validate; otherwise it runs best-effort.
  bool Validate = false;
};

/// Loads, cuts, merges, and solves a node set.
class NodeSetLoader {
public:
  /// Salvages the logs of \p Nodes nodes under \p BasePath and runs the
  /// causal-cut fixpoint. Returns the structured outcome; solve() has not
  /// run yet (Order is empty until it does).
  MergeResult load(const std::string &BasePath, uint32_t Nodes);

  /// Builds the merged constraint system from \p R (cross-node edges
  /// included), solves it, and fills R.Order/R.Stats. Returns false (with
  /// R.Error set) when the solve fails — which a correct cut rules out, so
  /// a failure here is reported, never papered over.
  bool solve(MergeResult &R, smt::SolverEngine Engine = smt::SolverEngine::Idl,
             smt::SolverLimits Limits = {}, unsigned SolverShards = 1);

  /// Projects the solved global order onto node \p Node and assembles its
  /// isolated replay plan. Requires solve() to have succeeded.
  NodeReplayPlan projectNode(const MergeResult &R, uint32_t Node) const;
};

/// Renames node \p Node's local log into the merged id space, appending to
/// \p Out. Exposed for tests; NodeSetLoader uses it internally.
void mergeNodeLog(RecordingLog &Out, const RecordingLog &Local,
                  uint32_t Node);

} // namespace dist
} // namespace light

#endif // LIGHT_DIST_NODESET_H

//===- dist/NodeSet.cpp - Causal-cut salvage of multi-node logs -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "dist/NodeSet.h"

#include "obs/Metrics.h"
#include "smt/ShardedSolver.h"

#include <algorithm>
#include <map>
#include <unordered_set>

using namespace light;
using namespace light::dist;

std::string dist::nodeLogPath(const std::string &BasePath, uint32_t Node) {
  return BasePath + ".node" + std::to_string(Node);
}

std::string PartialCutEntry::str() const {
  return "node" + std::to_string(Node) + " t" + std::to_string(Thread) +
         " cut@" + std::to_string(Cut) + " (" +
         std::to_string(DroppedSpans) + " span(s), " +
         std::to_string(DroppedMessages) + " msg(s) dropped): " + Reason;
}

namespace {

/// Renames \p T into node \p Node's slice of the merged thread-id space.
ThreadId globalTid(uint32_t Node, ThreadId T) {
  return static_cast<ThreadId>(Node * NodeThreadStride + T);
}

/// Node-qualifies \p L: nodes are separate address spaces, so every
/// location that names node-local state is renamed into the node's slice.
/// Channel ghost words were node-stamped at record time and pass through.
LocationId remapLoc(LocationId L, uint32_t Node) {
  uint64_t Payload = loc::payloadOf(L);
  auto RemapObj = [&](uint64_t Packed) {
    ObjectId O = ObjectId::unpack(Packed);
    O.AllocThread = globalTid(Node, O.AllocThread);
    return O.pack();
  };
  switch (loc::kindOf(L)) {
  case LocationKind::Field:
  case LocationKind::ArrayElem:
    return loc::make(loc::kindOf(L),
                     (RemapObj(Payload >> 20) << 20) | (Payload & 0xfffff));
  case LocationKind::Lock:
  case LocationKind::Cond:
  case LocationKind::RwLock:
  case LocationKind::Barrier:
    return loc::make(loc::kindOf(L), RemapObj(Payload));
  case LocationKind::ThreadStart:
  case LocationKind::ThreadTerm:
    return loc::make(loc::kindOf(L),
                     globalTid(Node, static_cast<ThreadId>(Payload)));
  case LocationKind::Var:
    // Runtime-API variable ids are user-assigned and node-local; stamp the
    // node into bits the ids never reach.
    return loc::make(LocationKind::Var,
                     Payload | (static_cast<uint64_t>(Node) << 40));
  case LocationKind::Chan:
  case LocationKind::Invalid:
    return L;
  }
  return L;
}

/// The per-channel global seqno names the send uniquely across the node
/// set (it comes from one shared fetch_add), so (chan, seq) is the match
/// key between a delivery and its originating send.
using MsgKey = std::pair<uint32_t, uint64_t>;

struct SendRef {
  uint32_t Node = 0;
  AccessId Access;
};

/// Durable span evidence of one node's ghost channel accesses: the packed
/// AccessIds the salvaged epoch log actually anchors. A message-log record
/// without this evidence cannot join the constraint system (the message
/// log flushes more eagerly than the epoch log, so it routinely runs
/// ahead of a dead node's last durable epoch).
std::unordered_set<uint64_t> chanEvidence(const RecordingLog &Log) {
  std::unordered_set<uint64_t> Out;
  for (const DepSpan &S : Log.Spans) {
    if (loc::kindOf(S.Loc) != LocationKind::Chan)
      continue;
    // Channel RMWs are recorded as singleton spans (anchor accesses); a
    // ChanMake-write-headed span can stretch, so walk short ranges.
    Counter Hi = std::min(S.Last, S.First + 64);
    for (Counter C = S.First; C <= Hi; ++C)
      Out.insert(AccessId(S.Thread, C).pack());
  }
  return Out;
}

Counter cutOf(const std::vector<Counter> &Cut, ThreadId T) {
  return T < Cut.size() ? Cut[T] : 0;
}

void shrinkCut(std::vector<Counter> &Cut, ThreadId T, Counter NewCut) {
  if (Cut.size() <= T)
    Cut.resize(T + 1, 0);
  Cut[T] = std::min(Cut[T], NewCut);
}

} // namespace

void dist::mergeNodeLog(RecordingLog &Out, const RecordingLog &Local,
                        uint32_t Node) {
  for (DepSpan S : Local.Spans) {
    S.Thread = globalTid(Node, S.Thread);
    if (S.Src.valid())
      S.Src.Thread = globalTid(Node, S.Src.Thread);
    S.Loc = remapLoc(S.Loc, Node);
    Out.Spans.push_back(S);
  }
  for (SyscallRecord R : Local.Syscalls) {
    R.Thread = globalTid(Node, R.Thread);
    Out.Syscalls.push_back(R);
  }
  for (SpawnRecord R : Local.Spawns) {
    R.Parent = globalTid(Node, R.Parent);
    R.Child = globalTid(Node, R.Child);
    Out.Spawns.push_back(R);
  }
  size_t Base = Node * NodeThreadStride;
  if (Out.FinalCounters.size() < Base + Local.FinalCounters.size())
    Out.FinalCounters.resize(Base + Local.FinalCounters.size(), 0);
  for (size_t T = 0; T < Local.FinalCounters.size(); ++T)
    Out.FinalCounters[Base + T] = Local.FinalCounters[T];
}

MergeResult NodeSetLoader::load(const std::string &BasePath, uint32_t Nodes) {
  MergeResult R;
  if (Nodes == 0 || Nodes > MaxNodes) {
    R.Error = "node count must be in [1, " + std::to_string(MaxNodes) + "]";
    return R;
  }

  // Phase 1: independent per-node salvage. A node that left nothing usable
  // is a node cut at zero, not an error.
  R.Nodes.resize(Nodes);
  std::vector<std::unordered_set<uint64_t>> Evidence(Nodes);
  bool AnyUsable = false;
  for (uint32_t N = 0; N < Nodes; ++N) {
    NodeSalvage &NS = R.Nodes[N];
    std::string LogPath = nodeLogPath(BasePath, N);
    NS.Epoch = salvageRecording(LogPath);
    NS.Msgs = loadMessageLog(messageLogPath(LogPath));
    if (NS.Epoch.UsablePrefix) {
      AnyUsable = true;
      NS.Cut = NS.Epoch.Log.FinalCounters; // the salvaged horizon
      Evidence[N] = chanEvidence(NS.Epoch.Log);
    }
    // else: Cut stays empty — every thread cut at 0.
  }
  if (!AnyUsable) {
    R.Error = "no node left a usable log prefix under '" + BasePath + "'";
    return R;
  }
  R.Loaded = true;

  // The send side of every message, keyed by its globally unique
  // (channel, seqno). Duplicated deliveries (dist.dup_msg) both match the
  // one originating send.
  std::map<MsgKey, SendRef> Sends;
  for (uint32_t N = 0; N < Nodes; ++N)
    for (const MessageRecord &M : R.Nodes[N].Msgs.Records)
      if (M.IsSend)
        Sends[{M.Chan, M.Seq}] = {N, M.Access};

  // Phase 2: the causal-cut fixpoint. Each pass applies both discard rules
  // against the *current* cuts; a pass that shrinks nothing is the
  // fixpoint. Each pass strictly shrinks some cut, so the loop terminates.
  auto Justify = [&](uint32_t Node, const MessageRecord &M,
                     std::string &Why) {
    if (!Evidence[Node].count(M.Access.pack())) {
      Why = "no durable span anchors the delivery";
      return false;
    }
    auto It = Sends.find({M.Chan, M.Seq});
    if (It == Sends.end()) {
      Why = "recv chan" + std::to_string(M.Chan) + " seq" +
            std::to_string(M.Seq) + " has no recorded send";
      return false;
    }
    const SendRef &S = It->second;
    if (S.Access.Count > cutOf(R.Nodes[S.Node].Cut, S.Access.Thread) ||
        !Evidence[S.Node].count(S.Access.pack())) {
      Why = "matching send on node" + std::to_string(S.Node) +
            " fell past that node's salvaged prefix";
      return false;
    }
    return true;
  };

  std::vector<PartialCutEntry> Entries;
  auto Truncate = [&](uint32_t Node, ThreadId T, Counter NewCut,
                      const std::string &Reason) {
    shrinkCut(R.Nodes[Node].Cut, T, NewCut);
    PartialCutEntry E;
    E.Node = Node;
    E.Thread = T;
    E.Cut = NewCut;
    E.Reason = Reason;
    Entries.push_back(E);
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t N = 0; N < Nodes; ++N) {
      NodeSalvage &NS = R.Nodes[N];
      // Rule 1: every surviving delivery must be justified by a surviving
      // send with durable anchors on both ends.
      for (const MessageRecord &M : NS.Msgs.Records) {
        if (M.IsSend || M.Access.Count > cutOf(NS.Cut, M.Access.Thread))
          continue;
        std::string Why;
        if (!Justify(N, M, Why)) {
          Truncate(N, M.Access.Thread, M.Access.Count - 1, Why);
          Changed = true;
        }
      }
      // Rule 2: a span whose source write was cut observed a value the cut
      // execution never produces; the reader truncates just below it.
      if (!NS.Epoch.UsablePrefix)
        continue;
      for (const DepSpan &S : NS.Epoch.Log.Spans) {
        if (S.First > cutOf(NS.Cut, S.Thread))
          continue;
        if (S.Src.valid() && S.Src.Count > cutOf(NS.Cut, S.Src.Thread)) {
          Truncate(N, S.Thread, S.First - 1,
                   "span source " + S.Src.str() + " was cut");
          Changed = true;
        }
      }
    }
  }

  // Phase 3: apply the cuts, producing each node's surviving local log and
  // message set, and the merged recording.
  bool AnythingCut = false;
  for (uint32_t N = 0; N < Nodes; ++N) {
    NodeSalvage &NS = R.Nodes[N];
    uint64_t DroppedSpans = 0, DroppedMsgs = 0;
    RecordingLog CutLog;
    if (NS.Epoch.UsablePrefix) {
      CutLog = NS.Epoch.Log;
      CutLog.Spans.clear();
      for (DepSpan S : NS.Epoch.Log.Spans) {
        Counter Lim = cutOf(NS.Cut, S.Thread);
        if (S.First > Lim) {
          ++DroppedSpans;
          continue;
        }
        S.Last = std::min(S.Last, Lim);
        CutLog.Spans.push_back(S);
      }
      for (size_t T = 0; T < CutLog.FinalCounters.size(); ++T)
        CutLog.FinalCounters[T] =
            std::min(CutLog.FinalCounters[T],
                     cutOf(NS.Cut, static_cast<ThreadId>(T)));
    }
    std::vector<MessageRecord> CutMsgs;
    for (const MessageRecord &M : NS.Msgs.Records) {
      if (M.Access.Count > cutOf(NS.Cut, M.Access.Thread) ||
          !Evidence[N].count(M.Access.pack())) {
        ++DroppedMsgs;
        continue;
      }
      CutMsgs.push_back(M);
    }
    NS.Epoch.Log = std::move(CutLog);
    NS.Msgs.Records = std::move(CutMsgs);

    bool NodeClean = NS.Epoch.UsablePrefix && NS.Epoch.Report.CleanClose &&
                     NS.Msgs.CleanClose && DroppedSpans == 0 &&
                     DroppedMsgs == 0;
    if (!NodeClean)
      AnythingCut = true;
    // Attribute the drop tallies to this node's cut entries (or synthesize
    // one when the whole node was unusable).
    bool Attributed = false;
    for (PartialCutEntry &E : Entries)
      if (E.Node == N && !Attributed) {
        E.DroppedSpans = DroppedSpans;
        E.DroppedMessages = DroppedMsgs;
        Attributed = true;
      }
    if (!Attributed && !NodeClean) {
      PartialCutEntry E;
      E.Node = N;
      E.Thread = 0;
      E.Cut = cutOf(NS.Cut, 0);
      E.DroppedSpans = DroppedSpans;
      E.DroppedMessages = DroppedMsgs;
      E.Reason = !NS.Epoch.UsablePrefix
                     ? ("no usable epoch log: " +
                        (NS.Epoch.Error.empty() ? NS.Epoch.Report.Error
                                                : NS.Epoch.Error))
                     : "torn log salvaged (prefix survives uncut)";
      Entries.push_back(E);
    }

    if (NS.Epoch.UsablePrefix)
      mergeNodeLog(R.Merged, NS.Epoch.Log, N);
  }

  R.Cut = std::move(Entries);
  R.FullSchedule = !AnythingCut;
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("dist.nodes_salvaged").add(Nodes);
  Reg.counter("dist.cut_entries").add(R.Cut.size());
  return R;
}

bool NodeSetLoader::solve(MergeResult &R, smt::SolverEngine Engine,
                          smt::SolverLimits Limits, unsigned SolverShards) {
  if (!R.Loaded) {
    if (R.Error.empty())
      R.Error = "nothing loaded";
    return false;
  }
  ScheduleProblem P = buildScheduleProblem(R.Merged);

  // Cross-node edges: every surviving delivery is ordered after its
  // originating send. Both endpoints are singleton-span anchors, so each
  // has an order variable; a missing variable would mean the cut invariant
  // broke, which must surface as an error, never as a silently weaker
  // schedule.
  std::map<MsgKey, AccessId> Sends;
  for (uint32_t N = 0; N < R.Nodes.size(); ++N)
    for (const MessageRecord &M : R.Nodes[N].Msgs.Records)
      if (M.IsSend)
        Sends[{M.Chan, M.Seq}] =
            AccessId(globalTid(N, M.Access.Thread), M.Access.Count);
  R.CrossEdges = 0;
  for (uint32_t N = 0; N < R.Nodes.size(); ++N) {
    for (const MessageRecord &M : R.Nodes[N].Msgs.Records) {
      if (M.IsSend)
        continue;
      auto It = Sends.find({M.Chan, M.Seq});
      if (It == Sends.end())
        continue; // justified recvs always match; defensive
      smt::Var VS = P.varOf(It->second);
      smt::Var VR =
          P.varOf(AccessId(globalTid(N, M.Access.Thread), M.Access.Count));
      if (VS == ~0u || VR == ~0u) {
        R.Error = "cross-node edge lost its anchor (chan" +
                  std::to_string(M.Chan) + " seq" + std::to_string(M.Seq) +
                  "): cut invariant violated";
        return false;
      }
      P.System.addLess(VS, VR);
      ++R.CrossEdges;
    }
  }

  R.Stats = SolverShards == 1
                ? smt::solveOrder(P.System, Engine, Limits)
                : smt::solveSharded(P.System, Engine, Limits, SolverShards);
  if (!R.Stats.sat()) {
    R.Error = R.Stats.failed()
                  ? "merged solve failed (" + R.Stats.failReasonStr() +
                        "): " + R.Stats.Message
                  : "merged constraint system unsatisfiable: the causal cut "
                    "admitted inconsistent evidence";
    return false;
  }

  std::vector<uint32_t> Perm(P.VarAccess.size());
  for (uint32_t I = 0; I < Perm.size(); ++I)
    Perm[I] = I;
  std::sort(Perm.begin(), Perm.end(), [&](uint32_t X, uint32_t Y) {
    int64_t VX = R.Stats.Values[X], VY = R.Stats.Values[Y];
    if (VX != VY)
      return VX < VY;
    return P.VarAccess[X].pack() < P.VarAccess[Y].pack();
  });
  R.Order.clear();
  R.Order.reserve(Perm.size());
  for (uint32_t I : Perm)
    R.Order.push_back(P.VarAccess[I]);
  obs::Registry::global().counter("dist.cross_edges").add(R.CrossEdges);
  return true;
}

NodeReplayPlan NodeSetLoader::projectNode(const MergeResult &R,
                                          uint32_t Node) const {
  NodeReplayPlan Plan;
  const NodeSalvage &NS = R.Nodes[Node];
  Plan.Log = NS.Epoch.Log;
  Plan.Messages = NS.Msgs.Records;
  Plan.Validate = R.FullSchedule ||
                  (NS.Epoch.UsablePrefix && NS.Epoch.Report.CleanClose &&
                   NS.Msgs.CleanClose &&
                   std::none_of(R.Cut.begin(), R.Cut.end(),
                                [&](const PartialCutEntry &E) {
                                  return E.Node == Node;
                                }));

  ThreadId Lo = static_cast<ThreadId>(Node * NodeThreadStride);
  ThreadId Hi = static_cast<ThreadId>(Lo + NodeThreadStride);
  std::vector<AccessId> Local;
  for (const AccessId &A : R.Order)
    if (A.Thread >= Lo && A.Thread < Hi)
      Local.push_back(AccessId(static_cast<ThreadId>(A.Thread - Lo), A.Count));
  Plan.Plan = ReplaySchedule::fromSolvedOrder(Plan.Log, std::move(Local),
                                              R.Stats);
  return Plan;
}

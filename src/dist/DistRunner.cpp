//===- dist/DistRunner.cpp - Multi-node recording harness -----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "dist/DistRunner.h"

#include "core/LightRecorder.h"
#include "dist/NodeSet.h"
#include "interp/Machine.h"
#include "runtime/ChannelTransport.h"
#include "support/FaultInjection.h"

#include <csignal>
#include <cstdio>

#include <sys/wait.h>
#include <unistd.h>

using namespace light;
using namespace light::dist;

std::string NodeOutcome::str() const {
  if (!Forked)
    return "fork failed";
  if (Signaled)
    return "killed by signal " + std::to_string(Signal);
  if (ExitCode == 0)
    return "completed cleanly";
  if (ExitCode == 42)
    return "crashed at a bug (log flushed crash-handler style)";
  return "exited with code " + std::to_string(ExitCode);
}

bool DistRecordResult::allByProtocol() const {
  for (const NodeOutcome &N : Nodes)
    if (!N.Forked || N.Signaled || (N.ExitCode != 0 && N.ExitCode != 42))
      return false;
  return true;
}

bool dist::makeNodeProgram(const mir::Program &Prog, uint32_t Node,
                           mir::Program &Out, std::string &Err) {
  mir::FuncId NodeFn = Prog.findFunction("node");
  if (NodeFn == ~0u) {
    Err = "multi-node programs must define a unary function named 'node'";
    return false;
  }
  if (Prog.function(NodeFn).NumParams != 1) {
    Err = "'node' must take exactly one parameter (the node index)";
    return false;
  }
  Out = Prog;
  mir::Function Wrap;
  Wrap.Name = "__node_main";
  Wrap.NumParams = 0;
  Wrap.NumRegs = 1;
  mir::Instr Idx;
  Idx.Op = mir::Opcode::ConstInt;
  Idx.A = 0;
  Idx.Imm = static_cast<int64_t>(Node);
  mir::Instr Call;
  Call.Op = mir::Opcode::Call;
  Call.A = mir::NoReg;
  Call.Imm = static_cast<int64_t>(NodeFn);
  Call.Args = {0};
  mir::Instr Ret;
  Ret.Op = mir::Opcode::Ret;
  Ret.A = mir::NoReg;
  Wrap.Body = {Idx, Call, Ret};
  Out.Entry = static_cast<mir::FuncId>(Out.Functions.size());
  Out.Functions.push_back(std::move(Wrap));
  return true;
}

namespace {

/// Wraps the live PipeTransport with the node-kill fault site: the
/// dist.kill_node.mid target dies after completing MidKillAfterOps channel
/// endpoint operations, leaving a durable prefix and a torn tail.
class KillSwitchTransport : public ChannelTransport {
public:
  KillSwitchTransport(ChannelTransport &Inner, uint32_t Node)
      : Inner(Inner) {
    fault::Injector &Inj = fault::Injector::global();
    MidArmed = Inj.armed("dist.kill_node.mid") &&
               Inj.param("dist.kill_node.mid", 0) == Node + 1;
  }

  bool trySend(ThreadId T, uint32_t Chan, int64_t Value,
               uint64_t &Seq) override {
    bool Ok = Inner.trySend(T, Chan, Value, Seq);
    if (Ok)
      noteOp();
    return Ok;
  }
  bool tryRecv(ThreadId T, uint32_t Chan, int64_t &Value,
               uint64_t &Seq) override {
    bool Ok = Inner.tryRecv(T, Chan, Value, Seq);
    if (Ok)
      noteOp();
    return Ok;
  }
  void setCapacity(uint32_t Chan, uint64_t Capacity) override {
    Inner.setCapacity(Chan, Capacity);
  }
  void backoff(uint64_t Attempt) override { Inner.backoff(Attempt); }

private:
  void noteOp() {
    if (MidArmed && ++Ops >= MidKillAfterOps)
      ::raise(SIGKILL);
  }
  ChannelTransport &Inner;
  bool MidArmed = false;
  uint64_t Ops = 0;
};

/// The whole life of one forked node. Exit codes: 0 = run completed and
/// the log closed cleanly, 42 = the run hit a bug and the log was flushed
/// crash-handler style (no clean-close marker), 3 = infrastructure
/// failure (bad program / durable write failure).
[[noreturn]] void nodeChild(const mir::Program &Prog, uint32_t Node,
                            const DistOptions &Opts, PipeFabric &Fabric) {
  fault::Injector &Inj = fault::Injector::global();
  if (Inj.armed("dist.kill_node.start") &&
      Inj.param("dist.kill_node.start", 0) == Node + 1)
    ::raise(SIGKILL); // dies before any log exists

  mir::Program NodeProg;
  std::string Err;
  if (!makeNodeProgram(Prog, Node, NodeProg, Err))
    ::_exit(3);

  std::string LogPath = nodeLogPath(Opts.LogBase, Node);
  LightOptions LO;
  LO.WriteToDisk = false;
  LO.EpochSpans = Opts.EpochSpans ? Opts.EpochSpans : 4;
  LO.EpochMs = Opts.EpochMs;
  LO.DurableLogPath = LogPath;
  LO.CompressedEpochs = Opts.Compress;
  LightRecorder Rec(LO);
  Rec.attachMessageLog(messageLogPath(LogPath));

  PipeTransport Pipes(Fabric);
  KillSwitchTransport Transport(Pipes, Node);

  Machine M(NodeProg, Rec);
  Rec.attachRegistry(&M.registry());
  M.setChannelTransport(&Transport, Node);
  // Per-node seed split so environment nondeterminism differs across the
  // node set while staying reproducible from one top-level seed.
  M.seedEnvironment((Opts.Seed + Node * 0x9e3779b9ull) ^ 0x5a5a);
  RandomScheduler Sched(Opts.Seed + Node);
  RunResult R = M.run(Sched, Opts.MaxInstructions);

  if (Inj.armed("dist.kill_node.flush") &&
      Inj.param("dist.kill_node.flush", 0) == Node + 1)
    ::raise(SIGKILL); // epoch prefix durable; final segment lost

  if (R.Completed) {
    Rec.finish(&M.registry());
    const DurableLogWriter *DL = Rec.durableLog();
    if (!DL || !DL->ok() || Rec.overflowed())
      ::_exit(3);
    ::_exit(0);
  }
  // The node died at a bug (including send/recv starvation after the
  // bounded retry): persist crash-handler style and report via the code.
  Rec.crashFlush();
  ::_exit(42);
}

} // namespace

DistRecordResult dist::runDistRecord(const mir::Program &Prog,
                                     const DistOptions &Opts) {
  DistRecordResult R;
  if (Opts.Nodes == 0 || Opts.Nodes > MaxNodes) {
    R.Error = "node count must be in [1, " + std::to_string(MaxNodes) + "]";
    return R;
  }
  if (Opts.LogBase.empty()) {
    R.Error = "multi-node recording needs a log base path";
    return R;
  }
  {
    // Validate the node convention once in the parent so a bad program is
    // one error, not N cryptic child exits.
    mir::Program Probe;
    if (!makeNodeProgram(Prog, 0, Probe, R.Error))
      return R;
  }

  std::string Err;
  std::unique_ptr<PipeFabric> Fabric =
      PipeFabric::create(Prog.Channels.size(), Err);
  if (!Fabric) {
    R.Error = "channel fabric: " + Err;
    return R;
  }

  // Stale logs from a previous run must not masquerade as this run's
  // evidence (a kill_node.start child writes nothing at all).
  for (uint32_t N = 0; N < Opts.Nodes; ++N) {
    std::string LogPath = nodeLogPath(Opts.LogBase, N);
    std::remove(LogPath.c_str());
    std::remove(messageLogPath(LogPath).c_str());
  }

  R.Nodes.resize(Opts.Nodes);
  std::vector<pid_t> Pids(Opts.Nodes, -1);
  for (uint32_t N = 0; N < Opts.Nodes; ++N) {
    pid_t Pid = ::fork();
    if (Pid < 0) {
      R.Error = "fork failed for node " + std::to_string(N);
      break;
    }
    if (Pid == 0)
      nodeChild(Prog, N, Opts, *Fabric); // never returns
    Pids[N] = Pid;
    R.Nodes[N].Forked = true;
  }
  R.Started = true;

  for (uint32_t N = 0; N < Opts.Nodes; ++N) {
    if (Pids[N] < 0)
      continue;
    int Status = 0;
    if (::waitpid(Pids[N], &Status, 0) != Pids[N]) {
      R.Nodes[N].Forked = false;
      continue;
    }
    if (WIFSIGNALED(Status)) {
      R.Nodes[N].Signaled = true;
      R.Nodes[N].Signal = WTERMSIG(Status);
    } else if (WIFEXITED(Status)) {
      R.Nodes[N].ExitCode = WEXITSTATUS(Status);
    }
  }
  return R;
}

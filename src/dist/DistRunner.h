//===- dist/DistRunner.h - Multi-node recording harness ---------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The record half of fault-tolerant multi-node record/replay: fork one
/// process per node, each running the program's `node(index)` function
/// under its own LightRecorder with a durable LIGHT002/LIGHT003 epoch log
/// ("<base>.node<i>") and a durable message log next to it, all wired to a
/// shared pre-fork PipeFabric. Message delivery uses bounded
/// retry-with-backoff; the retry count is recorded as a syscall input, so
/// replay is attempt-faithful.
///
/// Node-program convention: the program declares its channels and defines
/// a function named `node` taking one parameter (the node index). A
/// multi-node run gives each forked node a synthesized entry that calls
/// `node(i)`; the program's own entry (which conventionally spawns
/// `node(i)` threads itself) is what single-process tools — explorer,
/// oracle, shrinker — execute, so the same .mir file serves both modes.
///
/// Fault surface (support/FaultInjection.h): beyond the transport's
/// dist.drop_msg / dist.dup_msg / dist.reorder, the runner's children
/// honor the node-kill sites, whose numeric argument selects the *target
/// node* as a 1-based index (`site=N` here means "kill node N-1", not
/// "fire on the Nth hit" — the spec grammar's counts are 1-based, so
/// node 0 is addressed as =1):
///
///   dist.kill_node.start   SIGKILL before the recorder exists (no log)
///   dist.kill_node.mid     SIGKILL at the node's 3rd channel endpoint
///                          operation (durable prefix, torn tail)
///   dist.kill_node.flush   SIGKILL after the run, before the final
///                          segment / clean-close marker is written
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_DIST_DISTRUNNER_H
#define LIGHT_DIST_DISTRUNNER_H

#include "mir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace light {
namespace dist {

/// Channel endpoint operations a dist.kill_node.mid target completes
/// before dying: the 3rd op never happens, so the kill lands mid-protocol
/// with real durable state behind it.
constexpr uint64_t MidKillAfterOps = 2;

struct DistOptions {
  uint32_t Nodes = 2;
  uint64_t Seed = 1;
  std::string LogBase;     ///< per-node logs at "<LogBase>.node<i>"
  size_t EpochSpans = 4;   ///< durable epoch granularity (spans per epoch)
  uint64_t EpochMs = 0;
  bool Compress = false;   ///< LIGHT003 compressed epochs
  uint64_t MaxInstructions = 20000000ull;
};

/// How one node's process ended.
struct NodeOutcome {
  bool Forked = false;
  bool Signaled = false;
  int Signal = 0;
  int ExitCode = -1;
  /// Exit-code protocol of the node child.
  bool completedCleanly() const { return !Signaled && ExitCode == 0; }
  bool crashedAtBug() const { return !Signaled && ExitCode == 42; }

  std::string str() const;
};

struct DistRecordResult {
  bool Started = false; ///< fabric built and every fork attempted
  std::vector<NodeOutcome> Nodes;
  std::string Error;

  /// True when every node exited by protocol (clean or crashed-at-bug) —
  /// i.e. no node died to a signal or infrastructure failure.
  bool allByProtocol() const;
};

/// Builds node \p Node's executable program: a copy of \p Prog whose entry
/// is a synthesized wrapper calling `node(Node)`. Returns false (with
/// \p Err set) when the program has no unary `node` function.
bool makeNodeProgram(const mir::Program &Prog, uint32_t Node,
                     mir::Program &Out, std::string &Err);

/// Records \p Prog across Opts.Nodes forked node processes. Each node's
/// durable epoch log and message log land at nodeLogPath(Opts.LogBase, i)
/// / its ".msg" sibling; salvage and merge are NodeSetLoader's job.
DistRecordResult runDistRecord(const mir::Program &Prog,
                               const DistOptions &Opts);

} // namespace dist
} // namespace light

#endif // LIGHT_DIST_DISTRUNNER_H

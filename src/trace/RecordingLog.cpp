//===- trace/RecordingLog.cpp - The on-disk recording ---------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/RecordingLog.h"

#include "obs/Metrics.h"
#include "support/BinaryIO.h"
#include "support/DurableLog.h"
#include "support/FaultInjection.h"
#include "trace/SegmentCodec.h"
#include "trace/SegmentReader.h"

#include <algorithm>
#include <cassert>

using namespace light;

namespace {
constexpr uint64_t LogMagic = 0x4c49474854303031ull; // "LIGHT001"

void noteOverflow() {
  obs::Registry::global().counter("record.overflow").add(1);
}

} // namespace

RecordingLog::SpaceBreakdown RecordingLog::spaceBreakdown() const {
  SpaceBreakdown B;
  B.SpanWords = 1 + Spans.size() * 4;
  B.SyscallWords = 1 + Syscalls.size() * 2;
  B.SpawnWords = 1 + Spawns.size();
  B.CounterWords = 1 + FinalCounters.size();
  B.GuardWords = 3 + Guards.Exact.size() + Guards.FieldIndices.size() +
                 Guards.GlobalIds.size();
  return B;
}

uint64_t RecordingLog::save(const std::string &Path) const {
  // The span kind shares the top two bits of the packed (thread, first)
  // word, which caps thread ids at 2^14 - 1, and counters at 2^48 - 1.
  // Check before anything is packed: an overflowing log must fail
  // structurally, not wrap into a corrupt trace.
  for (const DepSpan &S : Spans)
    if (!spanEncodable(S)) {
      noteOverflow();
      return 0;
    }

  LongWriter Writer(Path);
  Writer.put(LogMagic);

  Writer.put(Spans.size());
  for (const DepSpan &S : Spans) {
    Writer.put(S.Loc);
    Writer.put(S.Src.valid() ? S.Src.pack() : 0);
    Writer.put(AccessId(S.Thread, S.First).pack() |
               (static_cast<uint64_t>(S.Kind) << 62));
    Writer.put(S.Last);
  }

  Writer.put(Syscalls.size());
  for (const SyscallRecord &R : Syscalls) {
    Writer.put(R.Thread);
    Writer.put(R.Value);
  }

  Writer.put(Spawns.size());
  for (const SpawnRecord &R : Spawns)
    Writer.put(packSpawnWord(R));

  Writer.put(FinalCounters.size());
  for (Counter C : FinalCounters)
    Writer.put(C);

  Writer.put(Guards.Exact.size());
  for (LocationId L : Guards.Exact)
    Writer.put(L);
  Writer.put(Guards.FieldIndices.size());
  for (uint32_t F : Guards.FieldIndices)
    Writer.put(F);
  Writer.put(Guards.GlobalIds.size());
  for (uint64_t G : Guards.GlobalIds)
    Writer.put(G);

  return Writer.finish();
}

//===----------------------------------------------------------------------===//
// LIGHT002 section encoding
//===----------------------------------------------------------------------===//

bool light::encodeSpanSection(std::vector<uint64_t> &Out, const DepSpan *Spans,
                              size_t N) {
  if (!N)
    return true;
  for (size_t I = 0; I < N; ++I)
    if (!spanEncodable(Spans[I])) {
      noteOverflow();
      return false;
    }
  Out.push_back(static_cast<uint64_t>(LogSection::Spans));
  Out.push_back(N);
  for (size_t I = 0; I < N; ++I) {
    const DepSpan &S = Spans[I];
    Out.push_back(S.Loc);
    Out.push_back(S.Src.valid() ? S.Src.pack() : 0);
    Out.push_back(AccessId(S.Thread, S.First).pack() |
                  (static_cast<uint64_t>(S.Kind) << 62));
    Out.push_back(S.Last);
  }
  return true;
}

void light::encodeSyscallSection(std::vector<uint64_t> &Out,
                                 const SyscallRecord *Calls, size_t N) {
  if (!N)
    return;
  Out.push_back(static_cast<uint64_t>(LogSection::Syscalls));
  Out.push_back(N);
  for (size_t I = 0; I < N; ++I) {
    Out.push_back(Calls[I].Thread);
    Out.push_back(Calls[I].Value);
  }
}

void light::encodeSpawnSection(std::vector<uint64_t> &Out,
                               const std::vector<SpawnRecord> &Spawns) {
  Out.push_back(static_cast<uint64_t>(LogSection::Spawns));
  Out.push_back(Spawns.size());
  for (const SpawnRecord &R : Spawns)
    Out.push_back(packSpawnWord(R));
}

bool light::encodeCounterSection(
    std::vector<uint64_t> &Out,
    const std::vector<std::pair<ThreadId, Counter>> &Updates) {
  if (Updates.empty())
    return true;
  for (const auto &[Thread, Count] : Updates)
    if (Thread > MaxSpanThread || Count > MaxAccessCounter) {
      noteOverflow();
      return false;
    }
  Out.push_back(static_cast<uint64_t>(LogSection::Counters));
  Out.push_back(Updates.size());
  for (const auto &[Thread, Count] : Updates) {
    Out.push_back(Thread);
    Out.push_back(Count);
  }
  return true;
}

void light::encodeGuardSections(std::vector<uint64_t> &Out,
                                const GuardSpec &Guards) {
  Out.push_back(static_cast<uint64_t>(LogSection::GuardExact));
  Out.push_back(Guards.Exact.size());
  for (LocationId L : Guards.Exact)
    Out.push_back(L);
  Out.push_back(static_cast<uint64_t>(LogSection::GuardFields));
  Out.push_back(Guards.FieldIndices.size());
  for (uint32_t F : Guards.FieldIndices)
    Out.push_back(F);
  Out.push_back(static_cast<uint64_t>(LogSection::GuardGlobals));
  Out.push_back(Guards.GlobalIds.size());
  for (uint64_t G : Guards.GlobalIds)
    Out.push_back(G);
}

namespace {

std::vector<std::pair<ThreadId, Counter>>
counterUpdates(const std::vector<Counter> &FinalCounters) {
  std::vector<std::pair<ThreadId, Counter>> Updates;
  for (size_t T = 0; T < FinalCounters.size(); ++T)
    Updates.emplace_back(static_cast<ThreadId>(T), FinalCounters[T]);
  return Updates;
}

} // namespace

uint64_t RecordingLog::saveDurable(const std::string &Path) const {
  DurableLogWriter Writer(Path);
  std::vector<uint64_t> Payload;
  if (!encodeSpanSection(Payload, Spans.data(), Spans.size()))
    return 0;
  encodeSyscallSection(Payload, Syscalls.data(), Syscalls.size());
  encodeSpawnSection(Payload, Spawns);
  if (!encodeCounterSection(Payload, counterUpdates(FinalCounters)))
    return 0;
  encodeGuardSections(Payload, Guards);
  if (!Writer.writeSegment(Payload) || !Writer.closeClean())
    return 0;
  return Writer.wordsWritten();
}

uint64_t RecordingLog::saveCompact(const std::string &Path) const {
  DurableLogWriter Writer(Path, CompressedFileMagic);
  CompressedSegmentEncoder Enc;
  if (!Enc.addSpans(Spans.data(), Spans.size()) ||
      !Enc.addSyscalls(Syscalls.data(), Syscalls.size()) ||
      !Enc.addSpawns(Spawns) ||
      !Enc.addCounters(counterUpdates(FinalCounters)) ||
      !Enc.addGuards(Guards))
    return 0;
  if (!Writer.writeSegment(Enc.finish()) || !Writer.closeClean())
    return 0;
  return Writer.wordsWritten();
}

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

namespace {

uint64_t peekMagic(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return 0;
  uint64_t Word = 0;
  size_t Got = std::fread(&Word, sizeof(Word), 1, File);
  std::fclose(File);
  return Got == 1 ? Word : 0;
}

} // namespace

bool RecordingLog::load(const std::string &Path) {
  LogLoadReport Report;
  return load(Path, Report);
}

bool RecordingLog::load(const std::string &Path, LogLoadReport &Report) {
  Report = LogLoadReport();
  uint64_t Magic = peekMagic(Path);

  if (Magic == DurableFileMagic || Magic == CompressedFileMagic) {
    // Both durable formats stream segment by segment: the decode buffer is
    // bounded by one segment (plus the salvage-truncate holdback window),
    // never the file. Salvage, truncate-fault, and undecodable-segment
    // semantics all live in the reader.
    TraceSegmentReader Reader(Path);
    if (!Reader.ok()) {
      Report = Reader.report();
      return false;
    }
    Spans.clear();
    Syscalls.clear();
    Spawns.clear();
    FinalCounters.clear();
    Guards = GuardSpec();
    while (Reader.next(*this)) {
    }
    Reader.finish(*this);
    Report = Reader.report();
    return true;
  }

  Report.FormatVersion = 1;
  LongReader Reader(Path);
  if (!Reader.ok() || Reader.size() < 2 || Reader.get() != LogMagic) {
    Report.Error = "'" + Path + "' is not a readable LIGHT001/LIGHT002 log";
    return false;
  }

  auto HasWords = [&](uint64_t N) {
    return N <= Reader.size(); // conservative sanity bound
  };
  auto Truncated = [&] {
    Report.Error = "'" + Path + "' is a truncated or corrupt LIGHT001 log";
    return false;
  };

  uint64_t NumSpans = Reader.get();
  if (!HasWords(NumSpans))
    return Truncated();
  Spans.clear();
  Spans.reserve(NumSpans);
  for (uint64_t I = 0; I < NumSpans; ++I) {
    if (Reader.atEnd())
      return Truncated();
    DepSpan S;
    S.Loc = Reader.get();
    uint64_t Src = Reader.get();
    if (Src)
      S.Src = AccessId::unpack(Src);
    uint64_t FirstWord = Reader.get();
    S.Kind = static_cast<SpanKind>(FirstWord >> 62);
    AccessId First = AccessId::unpack(FirstWord & ~(3ull << 62));
    S.Thread = First.Thread;
    S.First = First.Count;
    S.Last = Reader.get();
    // Unchecksummed format: a flipped bit can land anywhere, so validate
    // the span invariant (First <= Last < 2^48, the AccessId counter
    // width) before anything downstream packs these back into ids.
    if (S.Last >= (1ull << 48) || S.First > S.Last)
      return Truncated();
    Spans.push_back(S);
  }

  uint64_t NumSyscalls = Reader.get();
  if (!HasWords(NumSyscalls))
    return Truncated();
  Syscalls.clear();
  for (uint64_t I = 0; I < NumSyscalls; ++I) {
    SyscallRecord R;
    R.Thread = static_cast<ThreadId>(Reader.get());
    R.Value = Reader.get();
    Syscalls.push_back(R);
  }

  uint64_t NumSpawns = Reader.get();
  if (!HasWords(NumSpawns))
    return Truncated();
  Spawns.clear();
  for (uint64_t I = 0; I < NumSpawns; ++I)
    Spawns.push_back(unpackSpawnWord(Reader.get()));

  uint64_t NumCounters = Reader.get();
  if (!HasWords(NumCounters))
    return Truncated();
  FinalCounters.clear();
  for (uint64_t I = 0; I < NumCounters; ++I)
    FinalCounters.push_back(Reader.get());

  uint64_t NumExact = Reader.get();
  if (!HasWords(NumExact))
    return Truncated();
  Guards.Exact.clear();
  for (uint64_t I = 0; I < NumExact; ++I)
    Guards.Exact.push_back(Reader.get());
  uint64_t NumFields = Reader.get();
  if (!HasWords(NumFields))
    return Truncated();
  Guards.FieldIndices.clear();
  for (uint64_t I = 0; I < NumFields; ++I)
    Guards.FieldIndices.push_back(static_cast<uint32_t>(Reader.get()));
  uint64_t NumGlobals = Reader.get();
  if (!HasWords(NumGlobals))
    return Truncated();
  Guards.GlobalIds.clear();
  for (uint64_t I = 0; I < NumGlobals; ++I)
    Guards.GlobalIds.push_back(Reader.get());
  Guards.seal();

  if (!Reader.atEnd() || Reader.overran())
    return Truncated();
  return true;
}

std::string DepSpan::str() const {
  std::string Out = loc::str(Loc) + ": ";
  switch (Kind) {
  case SpanKind::Read:
    Out += Src.str() + " -> " + first().str();
    break;
  case SpanKind::Own:
    Out += "own " + first().str();
    break;
  case SpanKind::Init:
    Out += "init -> " + first().str();
    break;
  }
  if (Last != First)
    Out += " .. " + std::to_string(Last);
  return Out;
}

std::string RecordingLog::str() const {
  std::string Out;
  Out += "spans: " + std::to_string(Spans.size()) + "\n";
  for (const DepSpan &S : Spans)
    Out += "  " + S.str() + "\n";
  Out += "syscalls: " + std::to_string(Syscalls.size()) + "\n";
  Out += "spawns: " + std::to_string(Spawns.size()) + "\n";
  return Out;
}

SalvageOutcome light::salvageRecording(const std::string &Path) {
  SalvageOutcome Out;
  if (!Out.Log.load(Path, Out.Report)) {
    Out.Error = Out.Report.Error.empty()
                    ? "cannot load recording '" + Path + "'"
                    : Out.Report.Error;
    return Out;
  }
  Out.Loaded = true;
  // "Usable" is deliberately weak: any recovered dependence data — or even
  // an intact empty recording (clean close, zero spans) — counts. The CI
  // verdict rules only need to know "did the child leave *anything* the
  // replay side can consume", not "is it complete".
  Out.UsablePrefix = Out.Report.CleanClose ||
                     Out.Report.SegmentsRecovered > 0 ||
                     !Out.Log.Spans.empty() || !Out.Log.Spawns.empty();
  obs::Registry::global().counter("ci.salvage.loads").add(1);
  if (Out.Report.Salvaged)
    obs::Registry::global().counter("ci.salvage.torn").add(1);
  return Out;
}

//===- trace/RecordingLog.cpp - The on-disk recording ---------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/RecordingLog.h"

#include "support/BinaryIO.h"

using namespace light;

namespace {
constexpr uint64_t LogMagic = 0x4c49474854303031ull; // "LIGHT001"
} // namespace

uint64_t RecordingLog::save(const std::string &Path) const {
  LongWriter Writer(Path);
  Writer.put(LogMagic);

  Writer.put(Spans.size());
  for (const DepSpan &S : Spans) {
    // The span kind shares the top two bits of the packed (thread, first)
    // word, which caps thread ids at 2^14 - 1. Far beyond any realistic
    // concurrency level, but keep the invariant checked.
    assert(S.Thread < (1u << 14) && "thread id too large for span encoding");
    Writer.put(S.Loc);
    Writer.put(S.Src.valid() ? S.Src.pack() : 0);
    Writer.put(AccessId(S.Thread, S.First).pack() |
               (static_cast<uint64_t>(S.Kind) << 62));
    Writer.put(S.Last);
  }

  Writer.put(Syscalls.size());
  for (const SyscallRecord &R : Syscalls) {
    Writer.put(R.Thread);
    Writer.put(R.Value);
  }

  Writer.put(Spawns.size());
  for (const SpawnRecord &R : Spawns) {
    Writer.put((static_cast<uint64_t>(R.Parent) << 48) |
               (static_cast<uint64_t>(R.SpawnIndex) << 16) | R.Child);
  }

  Writer.put(FinalCounters.size());
  for (Counter C : FinalCounters)
    Writer.put(C);

  Writer.put(Guards.Exact.size());
  for (LocationId L : Guards.Exact)
    Writer.put(L);
  Writer.put(Guards.FieldIndices.size());
  for (uint32_t F : Guards.FieldIndices)
    Writer.put(F);
  Writer.put(Guards.GlobalIds.size());
  for (uint64_t G : Guards.GlobalIds)
    Writer.put(G);

  return Writer.finish();
}

bool RecordingLog::load(const std::string &Path) {
  LongReader Reader(Path);
  if (!Reader.ok() || Reader.size() < 2 || Reader.get() != LogMagic)
    return false;

  auto HasWords = [&](uint64_t N) {
    return N <= Reader.size(); // conservative sanity bound
  };

  uint64_t NumSpans = Reader.get();
  if (!HasWords(NumSpans))
    return false;
  Spans.clear();
  Spans.reserve(NumSpans);
  for (uint64_t I = 0; I < NumSpans; ++I) {
    if (Reader.atEnd())
      return false;
    DepSpan S;
    S.Loc = Reader.get();
    uint64_t Src = Reader.get();
    if (Src)
      S.Src = AccessId::unpack(Src);
    uint64_t FirstWord = Reader.get();
    S.Kind = static_cast<SpanKind>(FirstWord >> 62);
    AccessId First = AccessId::unpack(FirstWord & ~(3ull << 62));
    S.Thread = First.Thread;
    S.First = First.Count;
    S.Last = Reader.get();
    Spans.push_back(S);
  }

  uint64_t NumSyscalls = Reader.get();
  if (!HasWords(NumSyscalls))
    return false;
  Syscalls.clear();
  for (uint64_t I = 0; I < NumSyscalls; ++I) {
    SyscallRecord R;
    R.Thread = static_cast<ThreadId>(Reader.get());
    R.Value = Reader.get();
    Syscalls.push_back(R);
  }

  uint64_t NumSpawns = Reader.get();
  if (!HasWords(NumSpawns))
    return false;
  Spawns.clear();
  for (uint64_t I = 0; I < NumSpawns; ++I) {
    uint64_t W = Reader.get();
    SpawnRecord R;
    R.Parent = static_cast<ThreadId>(W >> 48);
    R.SpawnIndex = static_cast<uint32_t>((W >> 16) & 0xffffffff);
    R.Child = static_cast<ThreadId>(W & 0xffff);
    Spawns.push_back(R);
  }

  uint64_t NumCounters = Reader.get();
  if (!HasWords(NumCounters))
    return false;
  FinalCounters.clear();
  for (uint64_t I = 0; I < NumCounters; ++I)
    FinalCounters.push_back(Reader.get());

  uint64_t NumExact = Reader.get();
  if (!HasWords(NumExact))
    return false;
  Guards.Exact.clear();
  for (uint64_t I = 0; I < NumExact; ++I)
    Guards.Exact.push_back(Reader.get());
  uint64_t NumFields = Reader.get();
  if (!HasWords(NumFields))
    return false;
  Guards.FieldIndices.clear();
  for (uint64_t I = 0; I < NumFields; ++I)
    Guards.FieldIndices.push_back(static_cast<uint32_t>(Reader.get()));
  uint64_t NumGlobals = Reader.get();
  if (!HasWords(NumGlobals))
    return false;
  Guards.GlobalIds.clear();
  for (uint64_t I = 0; I < NumGlobals; ++I)
    Guards.GlobalIds.push_back(Reader.get());
  Guards.seal();

  return Reader.atEnd();
}

std::string DepSpan::str() const {
  std::string Out = loc::str(Loc) + ": ";
  switch (Kind) {
  case SpanKind::Read:
    Out += Src.str() + " -> " + first().str();
    break;
  case SpanKind::Own:
    Out += "own " + first().str();
    break;
  case SpanKind::Init:
    Out += "init -> " + first().str();
    break;
  }
  if (Last != First)
    Out += " .. " + std::to_string(Last);
  return Out;
}

std::string RecordingLog::str() const {
  std::string Out;
  Out += "spans: " + std::to_string(Spans.size()) + "\n";
  for (const DepSpan &S : Spans)
    Out += "  " + S.str() + "\n";
  Out += "syscalls: " + std::to_string(Syscalls.size()) + "\n";
  Out += "spawns: " + std::to_string(Spawns.size()) + "\n";
  return Out;
}

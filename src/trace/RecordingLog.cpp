//===- trace/RecordingLog.cpp - The on-disk recording ---------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/RecordingLog.h"

#include "obs/Metrics.h"
#include "support/BinaryIO.h"
#include "support/DurableLog.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>

using namespace light;

namespace {
constexpr uint64_t LogMagic = 0x4c49474854303031ull; // "LIGHT001"

uint64_t packSpawn(const SpawnRecord &R) {
  return (static_cast<uint64_t>(R.Parent) << 48) |
         (static_cast<uint64_t>(R.SpawnIndex) << 16) | R.Child;
}

SpawnRecord unpackSpawn(uint64_t W) {
  SpawnRecord R;
  R.Parent = static_cast<ThreadId>(W >> 48);
  R.SpawnIndex = static_cast<uint32_t>((W >> 16) & 0xffffffff);
  R.Child = static_cast<ThreadId>(W & 0xffff);
  return R;
}

} // namespace

uint64_t RecordingLog::save(const std::string &Path) const {
  LongWriter Writer(Path);
  Writer.put(LogMagic);

  Writer.put(Spans.size());
  for (const DepSpan &S : Spans) {
    // The span kind shares the top two bits of the packed (thread, first)
    // word, which caps thread ids at 2^14 - 1. Far beyond any realistic
    // concurrency level, but keep the invariant checked.
    assert(S.Thread < (1u << 14) && "thread id too large for span encoding");
    Writer.put(S.Loc);
    Writer.put(S.Src.valid() ? S.Src.pack() : 0);
    Writer.put(AccessId(S.Thread, S.First).pack() |
               (static_cast<uint64_t>(S.Kind) << 62));
    Writer.put(S.Last);
  }

  Writer.put(Syscalls.size());
  for (const SyscallRecord &R : Syscalls) {
    Writer.put(R.Thread);
    Writer.put(R.Value);
  }

  Writer.put(Spawns.size());
  for (const SpawnRecord &R : Spawns)
    Writer.put(packSpawn(R));

  Writer.put(FinalCounters.size());
  for (Counter C : FinalCounters)
    Writer.put(C);

  Writer.put(Guards.Exact.size());
  for (LocationId L : Guards.Exact)
    Writer.put(L);
  Writer.put(Guards.FieldIndices.size());
  for (uint32_t F : Guards.FieldIndices)
    Writer.put(F);
  Writer.put(Guards.GlobalIds.size());
  for (uint64_t G : Guards.GlobalIds)
    Writer.put(G);

  return Writer.finish();
}

//===----------------------------------------------------------------------===//
// LIGHT002 section encoding
//===----------------------------------------------------------------------===//

void light::encodeSpanSection(std::vector<uint64_t> &Out, const DepSpan *Spans,
                              size_t N) {
  if (!N)
    return;
  Out.push_back(static_cast<uint64_t>(LogSection::Spans));
  Out.push_back(N);
  for (size_t I = 0; I < N; ++I) {
    const DepSpan &S = Spans[I];
    assert(S.Thread < (1u << 14) && "thread id too large for span encoding");
    Out.push_back(S.Loc);
    Out.push_back(S.Src.valid() ? S.Src.pack() : 0);
    Out.push_back(AccessId(S.Thread, S.First).pack() |
                  (static_cast<uint64_t>(S.Kind) << 62));
    Out.push_back(S.Last);
  }
}

void light::encodeSyscallSection(std::vector<uint64_t> &Out,
                                 const SyscallRecord *Calls, size_t N) {
  if (!N)
    return;
  Out.push_back(static_cast<uint64_t>(LogSection::Syscalls));
  Out.push_back(N);
  for (size_t I = 0; I < N; ++I) {
    Out.push_back(Calls[I].Thread);
    Out.push_back(Calls[I].Value);
  }
}

void light::encodeSpawnSection(std::vector<uint64_t> &Out,
                               const std::vector<SpawnRecord> &Spawns) {
  Out.push_back(static_cast<uint64_t>(LogSection::Spawns));
  Out.push_back(Spawns.size());
  for (const SpawnRecord &R : Spawns)
    Out.push_back(packSpawn(R));
}

void light::encodeCounterSection(
    std::vector<uint64_t> &Out,
    const std::vector<std::pair<ThreadId, Counter>> &Updates) {
  if (Updates.empty())
    return;
  Out.push_back(static_cast<uint64_t>(LogSection::Counters));
  Out.push_back(Updates.size());
  for (const auto &[Thread, Count] : Updates) {
    Out.push_back(Thread);
    Out.push_back(Count);
  }
}

void light::encodeGuardSections(std::vector<uint64_t> &Out,
                                const GuardSpec &Guards) {
  Out.push_back(static_cast<uint64_t>(LogSection::GuardExact));
  Out.push_back(Guards.Exact.size());
  for (LocationId L : Guards.Exact)
    Out.push_back(L);
  Out.push_back(static_cast<uint64_t>(LogSection::GuardFields));
  Out.push_back(Guards.FieldIndices.size());
  for (uint32_t F : Guards.FieldIndices)
    Out.push_back(F);
  Out.push_back(static_cast<uint64_t>(LogSection::GuardGlobals));
  Out.push_back(Guards.GlobalIds.size());
  for (uint64_t G : Guards.GlobalIds)
    Out.push_back(G);
}

uint64_t RecordingLog::saveDurable(const std::string &Path) const {
  DurableLogWriter Writer(Path);
  std::vector<uint64_t> Payload;
  encodeSpanSection(Payload, Spans.data(), Spans.size());
  encodeSyscallSection(Payload, Syscalls.data(), Syscalls.size());
  encodeSpawnSection(Payload, Spawns);
  std::vector<std::pair<ThreadId, Counter>> Updates;
  for (size_t T = 0; T < FinalCounters.size(); ++T)
    Updates.emplace_back(static_cast<ThreadId>(T), FinalCounters[T]);
  encodeCounterSection(Payload, Updates);
  encodeGuardSections(Payload, Guards);
  if (!Writer.writeSegment(Payload) || !Writer.closeClean())
    return 0;
  return Writer.wordsWritten();
}

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

namespace {

/// Decodes one LIGHT002 segment payload into \p Log. The payload already
/// passed its CRC, so a decode failure means a producer bug or version
/// drift, not disk corruption — but it is still reported, never trusted.
bool decodeSegment(const std::vector<uint64_t> &P, RecordingLog &Log) {
  size_t Pos = 0;
  while (Pos < P.size()) {
    if (P.size() - Pos < 2)
      return false;
    uint64_t Tag = P[Pos];
    uint64_t N = P[Pos + 1];
    Pos += 2;
    uint64_t Remaining = P.size() - Pos;
    switch (static_cast<LogSection>(Tag)) {
    case LogSection::Spans: {
      if (N > Remaining / 4)
        return false;
      for (uint64_t I = 0; I < N; ++I, Pos += 4) {
        DepSpan S;
        S.Loc = P[Pos];
        if (P[Pos + 1])
          S.Src = AccessId::unpack(P[Pos + 1]);
        uint64_t FirstWord = P[Pos + 2];
        S.Kind = static_cast<SpanKind>(FirstWord >> 62);
        AccessId First = AccessId::unpack(FirstWord & ~(3ull << 62));
        S.Thread = First.Thread;
        S.First = First.Count;
        S.Last = P[Pos + 3];
        // Well-formed spans satisfy First <= Last < 2^48 (the AccessId
        // counter width); anything else is producer corruption.
        if (S.Last >= (1ull << 48) || S.First > S.Last)
          return false;
        Log.Spans.push_back(S);
      }
      break;
    }
    case LogSection::Syscalls: {
      if (N > Remaining / 2)
        return false;
      for (uint64_t I = 0; I < N; ++I, Pos += 2) {
        SyscallRecord R;
        R.Thread = static_cast<ThreadId>(P[Pos]);
        R.Value = P[Pos + 1];
        Log.Syscalls.push_back(R);
      }
      break;
    }
    case LogSection::Spawns: {
      if (N > Remaining)
        return false;
      Log.Spawns.clear();
      for (uint64_t I = 0; I < N; ++I, ++Pos)
        Log.Spawns.push_back(unpackSpawn(P[Pos]));
      break;
    }
    case LogSection::Counters: {
      if (N > Remaining / 2)
        return false;
      for (uint64_t I = 0; I < N; ++I, Pos += 2) {
        size_t T = P[Pos];
        if (T >= (1u << 14))
          return false;
        if (Log.FinalCounters.size() <= T)
          Log.FinalCounters.resize(T + 1, 0);
        Log.FinalCounters[T] = std::max(Log.FinalCounters[T], P[Pos + 1]);
      }
      break;
    }
    case LogSection::GuardExact: {
      if (N > Remaining)
        return false;
      Log.Guards.Exact.assign(P.begin() + Pos, P.begin() + Pos + N);
      Pos += N;
      break;
    }
    case LogSection::GuardFields: {
      if (N > Remaining)
        return false;
      Log.Guards.FieldIndices.clear();
      for (uint64_t I = 0; I < N; ++I, ++Pos)
        Log.Guards.FieldIndices.push_back(static_cast<uint32_t>(P[Pos]));
      break;
    }
    case LogSection::GuardGlobals: {
      if (N > Remaining)
        return false;
      Log.Guards.GlobalIds.assign(P.begin() + Pos, P.begin() + Pos + N);
      Pos += N;
      break;
    }
    default:
      return false; // unknown section tag
    }
  }
  return true;
}

/// After salvaging a crashed log, the counter table may stop short of (or
/// never reach) the accesses the recovered spans prove happened. Extend it
/// so the replay horizon covers every span: the final counter of a thread
/// is at least the last access any recovered span attributes to it.
void synthesizeHorizon(RecordingLog &Log) {
  ThreadId MaxThread = 0;
  auto Note = [&](ThreadId T) { MaxThread = std::max(MaxThread, T); };
  for (const DepSpan &S : Log.Spans) {
    Note(S.Thread);
    if (S.Src.valid())
      Note(S.Src.Thread);
  }
  for (const SyscallRecord &R : Log.Syscalls)
    Note(R.Thread);
  for (const SpawnRecord &R : Log.Spawns) {
    Note(R.Parent);
    Note(R.Child);
  }
  if (Log.FinalCounters.size() <= MaxThread)
    Log.FinalCounters.resize(MaxThread + 1, 0);
  for (const DepSpan &S : Log.Spans) {
    Log.FinalCounters[S.Thread] = std::max(Log.FinalCounters[S.Thread], S.Last);
    if (S.Src.valid())
      Log.FinalCounters[S.Src.Thread] =
          std::max(Log.FinalCounters[S.Src.Thread], S.Src.Count);
  }
}

uint64_t peekMagic(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return 0;
  uint64_t Word = 0;
  size_t Got = std::fread(&Word, sizeof(Word), 1, File);
  std::fclose(File);
  return Got == 1 ? Word : 0;
}

} // namespace

bool RecordingLog::load(const std::string &Path) {
  LogLoadReport Report;
  return load(Path, Report);
}

bool RecordingLog::load(const std::string &Path, LogLoadReport &Report) {
  Report = LogLoadReport();
  uint64_t Magic = peekMagic(Path);

  if (Magic == DurableFileMagic) {
    Report.FormatVersion = 2;
    SegmentScan Scan = scanDurableLog(Path);
    if (!Scan.HeaderOk) {
      Report.Error = Scan.Error;
      return false;
    }
    Spans.clear();
    Syscalls.clear();
    Spawns.clear();
    FinalCounters.clear();
    Guards = GuardSpec();
    // ci.salvage_truncate: deterministically simulate a tear deeper than
    // the on-disk one by discarding the newest N validated segments. The
    // drop count comes from the companion param site so the clause's own
    // `=N` keeps its usual fire-on-Nth-hit meaning.
    fault::Injector &Faults = fault::Injector::global();
    if (Faults.shouldFire("ci.salvage_truncate")) {
      uint64_t Drop = Faults.param("ci.salvage_truncate_segments", 1);
      while (Drop-- > 0 && !Scan.Segments.empty()) {
        ++Scan.SegmentsDropped;
        Scan.WordsDropped += Scan.Segments.back().size() + 3;
        Scan.Segments.pop_back();
      }
      Scan.Clean = false;
    }
    Report.SegmentsDropped = Scan.SegmentsDropped;
    Report.WordsDropped = Scan.WordsDropped;
    for (size_t I = 0; I < Scan.Segments.size(); ++I) {
      if (!decodeSegment(Scan.Segments[I], *this)) {
        // Checksummed but undecodable: cut here, keep the decoded prefix.
        for (size_t J = I; J < Scan.Segments.size(); ++J) {
          ++Report.SegmentsDropped;
          Report.WordsDropped += Scan.Segments[J].size() + 3;
        }
        Scan.Clean = false;
        break;
      }
      ++Report.SegmentsRecovered;
    }
    Report.CleanClose = Scan.Clean;
    Report.Salvaged = !Scan.Clean;
    if (Report.Salvaged) {
      synthesizeHorizon(*this);
      obs::Registry::global()
          .counter("log.segments.salvaged")
          .add(Report.SegmentsRecovered);
    }
    Guards.seal();
    return true;
  }

  Report.FormatVersion = 1;
  LongReader Reader(Path);
  if (!Reader.ok() || Reader.size() < 2 || Reader.get() != LogMagic) {
    Report.Error = "'" + Path + "' is not a readable LIGHT001/LIGHT002 log";
    return false;
  }

  auto HasWords = [&](uint64_t N) {
    return N <= Reader.size(); // conservative sanity bound
  };
  auto Truncated = [&] {
    Report.Error = "'" + Path + "' is a truncated or corrupt LIGHT001 log";
    return false;
  };

  uint64_t NumSpans = Reader.get();
  if (!HasWords(NumSpans))
    return Truncated();
  Spans.clear();
  Spans.reserve(NumSpans);
  for (uint64_t I = 0; I < NumSpans; ++I) {
    if (Reader.atEnd())
      return Truncated();
    DepSpan S;
    S.Loc = Reader.get();
    uint64_t Src = Reader.get();
    if (Src)
      S.Src = AccessId::unpack(Src);
    uint64_t FirstWord = Reader.get();
    S.Kind = static_cast<SpanKind>(FirstWord >> 62);
    AccessId First = AccessId::unpack(FirstWord & ~(3ull << 62));
    S.Thread = First.Thread;
    S.First = First.Count;
    S.Last = Reader.get();
    // Unchecksummed format: a flipped bit can land anywhere, so validate
    // the span invariant (First <= Last < 2^48, the AccessId counter
    // width) before anything downstream packs these back into ids.
    if (S.Last >= (1ull << 48) || S.First > S.Last)
      return Truncated();
    Spans.push_back(S);
  }

  uint64_t NumSyscalls = Reader.get();
  if (!HasWords(NumSyscalls))
    return Truncated();
  Syscalls.clear();
  for (uint64_t I = 0; I < NumSyscalls; ++I) {
    SyscallRecord R;
    R.Thread = static_cast<ThreadId>(Reader.get());
    R.Value = Reader.get();
    Syscalls.push_back(R);
  }

  uint64_t NumSpawns = Reader.get();
  if (!HasWords(NumSpawns))
    return Truncated();
  Spawns.clear();
  for (uint64_t I = 0; I < NumSpawns; ++I)
    Spawns.push_back(unpackSpawn(Reader.get()));

  uint64_t NumCounters = Reader.get();
  if (!HasWords(NumCounters))
    return Truncated();
  FinalCounters.clear();
  for (uint64_t I = 0; I < NumCounters; ++I)
    FinalCounters.push_back(Reader.get());

  uint64_t NumExact = Reader.get();
  if (!HasWords(NumExact))
    return Truncated();
  Guards.Exact.clear();
  for (uint64_t I = 0; I < NumExact; ++I)
    Guards.Exact.push_back(Reader.get());
  uint64_t NumFields = Reader.get();
  if (!HasWords(NumFields))
    return Truncated();
  Guards.FieldIndices.clear();
  for (uint64_t I = 0; I < NumFields; ++I)
    Guards.FieldIndices.push_back(static_cast<uint32_t>(Reader.get()));
  uint64_t NumGlobals = Reader.get();
  if (!HasWords(NumGlobals))
    return Truncated();
  Guards.GlobalIds.clear();
  for (uint64_t I = 0; I < NumGlobals; ++I)
    Guards.GlobalIds.push_back(Reader.get());
  Guards.seal();

  if (!Reader.atEnd() || Reader.overran())
    return Truncated();
  return true;
}

std::string DepSpan::str() const {
  std::string Out = loc::str(Loc) + ": ";
  switch (Kind) {
  case SpanKind::Read:
    Out += Src.str() + " -> " + first().str();
    break;
  case SpanKind::Own:
    Out += "own " + first().str();
    break;
  case SpanKind::Init:
    Out += "init -> " + first().str();
    break;
  }
  if (Last != First)
    Out += " .. " + std::to_string(Last);
  return Out;
}

std::string RecordingLog::str() const {
  std::string Out;
  Out += "spans: " + std::to_string(Spans.size()) + "\n";
  for (const DepSpan &S : Spans)
    Out += "  " + S.str() + "\n";
  Out += "syscalls: " + std::to_string(Syscalls.size()) + "\n";
  Out += "spawns: " + std::to_string(Spawns.size()) + "\n";
  return Out;
}

SalvageOutcome light::salvageRecording(const std::string &Path) {
  SalvageOutcome Out;
  if (!Out.Log.load(Path, Out.Report)) {
    Out.Error = Out.Report.Error.empty()
                    ? "cannot load recording '" + Path + "'"
                    : Out.Report.Error;
    return Out;
  }
  Out.Loaded = true;
  // "Usable" is deliberately weak: any recovered dependence data — or even
  // an intact empty recording (clean close, zero spans) — counts. The CI
  // verdict rules only need to know "did the child leave *anything* the
  // replay side can consume", not "is it complete".
  Out.UsablePrefix = Out.Report.CleanClose ||
                     Out.Report.SegmentsRecovered > 0 ||
                     !Out.Log.Spans.empty() || !Out.Log.Spawns.empty();
  obs::Registry::global().counter("ci.salvage.loads").add(1);
  if (Out.Report.Salvaged)
    obs::Registry::global().counter("ci.salvage.torn").add(1);
  return Out;
}

//===- trace/GuardSpec.h - Consistently-guarded location sets ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product of the lock-consistency analysis consumed by optimization O2
/// (Lemma 4.2): which locations are provably always accessed under a common
/// lock, so their field-level recording can be subsumed by the recorded
/// lock operation order.
///
/// Static analysis cannot name concrete heap locations (objects do not
/// exist yet), so guards are expressed over the same abstractions the
/// analysis uses — field indices and global/variable ids — plus exact
/// LocationIds for the runtime API where variables are concrete objects.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_GUARDSPEC_H
#define LIGHT_TRACE_GUARDSPEC_H

#include "trace/Ids.h"

#include <algorithm>
#include <vector>

namespace light {

/// A set of consistently lock-guarded locations, in abstraction space.
struct GuardSpec {
  /// Exact locations (runtime-API shared variables, ghost ids).
  std::vector<LocationId> Exact;
  /// Guarded object-field indices (LocationKind::Field payload low bits).
  std::vector<uint32_t> FieldIndices;
  /// Guarded global-variable ids (LocationKind::Var payload).
  std::vector<uint64_t> GlobalIds;

  bool empty() const {
    return Exact.empty() && FieldIndices.empty() && GlobalIds.empty();
  }

  /// Normalizes for binary search; call once after construction.
  void seal() {
    std::sort(Exact.begin(), Exact.end());
    std::sort(FieldIndices.begin(), FieldIndices.end());
    std::sort(GlobalIds.begin(), GlobalIds.end());
  }

  /// True if accesses to \p L are covered by the guard analysis.
  bool covers(LocationId L) const {
    if (std::binary_search(Exact.begin(), Exact.end(), L))
      return true;
    switch (loc::kindOf(L)) {
    case LocationKind::Field:
      return std::binary_search(FieldIndices.begin(), FieldIndices.end(),
                                static_cast<uint32_t>(L & 0xfffff));
    case LocationKind::Var:
      return std::binary_search(GlobalIds.begin(), GlobalIds.end(),
                                loc::payloadOf(L));
    default:
      return false;
    }
  }
};

} // namespace light

#endif // LIGHT_TRACE_GUARDSPEC_H

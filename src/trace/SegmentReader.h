//===- trace/SegmentReader.h - Streaming epoch-segment reader ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streams a LIGHT002/LIGHT003 durable recording one epoch segment at a
/// time. This is the spine of the scale pipeline: RecordingLog::load() and
/// CI salvage run on it with a bounded decode buffer (one segment plus the
/// holdback window), and the windowed offline solver consumes segments as
/// they decode instead of materializing the whole file.
///
/// Each next() applies one segment to the caller's RecordingLog accumulator
/// with exactly the whole-file semantics: Spans/Syscalls append, the
/// control sections (Spawns, Counters, Guards) supersede. A windowed
/// consumer snapshots Log.Spans.size() around next() to obtain the
/// segment's span delta.
///
/// Salvage semantics match the historical whole-file load byte for byte:
/// validation stops at the first torn/corrupt frame, an undecodable (but
/// checksummed) segment cuts everything from itself on, and the
/// `ci.salvage_truncate` fault site drops the newest N validated segments.
/// The truncate site is implemented as a *holdback window*: a validated
/// segment is only surfaced once N newer segments have validated behind
/// it, so the drop needs no second pass over the file.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_SEGMENTREADER_H
#define LIGHT_TRACE_SEGMENTREADER_H

#include "support/DurableLog.h"
#include "trace/RecordingLog.h"

#include <deque>
#include <string>
#include <vector>

namespace light {

class TraceSegmentReader {
public:
  /// Opens \p Path and reads the container header. Arms the holdback
  /// window when the ci.salvage_truncate fault site fires.
  explicit TraceSegmentReader(const std::string &Path);

  /// False when the file is missing or carries no recognized magic;
  /// report().Error says why.
  bool ok() const { return Ok; }

  /// 2 for LIGHT002, 3 for LIGHT003, 0 when !ok().
  uint32_t formatVersion() const { return Report_.FormatVersion; }

  /// Decodes the next segment into \p Log. Returns true while a segment
  /// was applied; false once the stream is exhausted (cleanly, torn, or on
  /// an undecodable segment — report() distinguishes them).
  bool next(RecordingLog &Log);

  /// Call once next() has returned false: seals the guards, synthesizes
  /// the replay horizon for salvaged logs, and publishes the salvage
  /// metrics. The report is final after this.
  void finish(RecordingLog &Log);

  const LogLoadReport &report() const { return Report_; }

private:
  DurableLogCursor Cursor;
  LogLoadReport Report_;
  bool Ok = false;
  bool CursorDone = false;   ///< container stream consumed
  bool Done = false;         ///< next() will never deliver again
  bool Finalized = false;    ///< finish() ran
  bool SawCleanClose = false;
  bool TruncateFired = false;
  bool DecodeFailed = false;
  uint64_t HoldbackN = 0;
  std::deque<std::vector<uint64_t>> Holdback;
  std::vector<uint64_t> Buf;

  bool decode(const std::vector<uint64_t> &Payload, RecordingLog &Log);
  void pump();
  void dropHeldAndDrain();
};

} // namespace light

#endif // LIGHT_TRACE_SEGMENTREADER_H

//===- trace/MessageLog.cpp - Durable per-node message log ----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/MessageLog.h"

#include "support/Crc32.h"

using namespace light;

namespace {

// "LMSG0001" little-endian; distinct from every RecordingLog magic.
constexpr uint64_t MsgMagic = 0x3130303047534d4cull;
// "LMSGEND\0"-ish close marker.
constexpr uint64_t MsgClose = 0x00444e4547534d4cull;
constexpr size_t RecordWords = 5;

uint32_t recordCrc(const uint64_t *W) {
  return crc32c(W, 4 * sizeof(uint64_t));
}

} // namespace

MessageLogWriter::MessageLogWriter(std::string Path)
    : Writer(std::make_unique<LongWriter>(std::move(Path),
                                          /*FlushThresholdWords=*/1)) {
  Writer->put(MsgMagic);
  Writer->flush();
}

MessageLogWriter::~MessageLogWriter() {
  if (!Finished)
    finish();
}

void MessageLogWriter::append(const MessageRecord &R) {
  uint64_t W[RecordWords];
  W[0] = (static_cast<uint64_t>(R.IsSend ? 1 : 0) << 32) | R.Chan;
  W[1] = R.Seq;
  W[2] = static_cast<uint64_t>(R.Value);
  W[3] = R.Access.pack();
  W[4] = recordCrc(W);
  for (uint64_t Word : W)
    Writer->put(Word);
  Writer->flush();
  ++Records;
}

bool MessageLogWriter::finish() {
  if (Finished)
    return ok();
  Finished = true;
  Writer->put(MsgClose);
  Writer->finish();
  return ok();
}

bool MessageLogWriter::ok() const { return Writer->ok(); }

const std::string &MessageLogWriter::error() const { return Writer->error(); }

MessageLogSalvage light::loadMessageLog(const std::string &Path) {
  MessageLogSalvage Out;
  LongReader Reader(Path);
  if (!Reader.ok()) {
    Out.Error = "cannot open message log '" + Path + "'";
    return Out;
  }
  if (Reader.size() < 1 || Reader.get() != MsgMagic) {
    Out.Error = "'" + Path + "' is not a message log";
    return Out;
  }
  Out.Loaded = true;

  size_t Body = Reader.size() - 1; // words after the magic
  bool SawClose = false;
  if (Body >= 1 && Body % RecordWords == 1)
    SawClose = true; // candidate close marker; validated below
  size_t WholeRecords = (SawClose ? Body - 1 : Body) / RecordWords;
  size_t TornWords = (SawClose ? Body - 1 : Body) % RecordWords;

  for (size_t I = 0; I < WholeRecords; ++I) {
    uint64_t W[RecordWords];
    for (size_t J = 0; J < RecordWords; ++J)
      W[J] = Reader.get();
    if (static_cast<uint32_t>(W[4]) != recordCrc(W)) {
      // Corrupt record: everything from here on is untrusted tail.
      Out.RecordsDropped += WholeRecords - I;
      SawClose = false;
      break;
    }
    MessageRecord R;
    R.Chan = static_cast<uint32_t>(W[0]);
    R.IsSend = (W[0] >> 32) & 1;
    R.Seq = W[1];
    R.Value = static_cast<int64_t>(W[2]);
    R.Access = AccessId::unpack(W[3]);
    Out.Records.push_back(R);
  }
  if (SawClose && Reader.get() != MsgClose) {
    SawClose = false;
    ++Out.RecordsDropped; // trailing word was a torn record, not the marker
  }
  if (TornWords)
    ++Out.RecordsDropped; // a partially written record counts as one cut
  Out.CleanClose = SawClose && Out.RecordsDropped == 0;
  return Out;
}

std::string light::messageLogPath(const std::string &LogPath) {
  return LogPath + ".msg";
}

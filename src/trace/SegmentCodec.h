//===- trace/SegmentCodec.h - Segment payload encodings ---------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoders and decoders for the segment payloads stored inside the durable
/// container (support/DurableLog): the word-oriented LIGHT002 sections and
/// the compressed LIGHT003 varint stream. RecordingLog and the epoch
/// recorder serialize through these; the streaming TraceSegmentReader and
/// whole-file load() decode through them.
///
/// LIGHT003 payload layout:
///
///   word 0:          payload byte count B
///   words 1..:       ceil(B/8) words holding the byte stream, zero-padded
///
/// The byte stream is a sequence of sections [varint tag][varint count]
/// [records], same tags and append/replace semantics as LIGHT002. Span
/// records are delta-encoded:
///
///   flags            1 byte: kind(2) | src-valid(1)
///   loc              zigzag delta vs. the previous span in this section
///   thread           varint
///   first            zigzag delta vs. this thread's previous First in
///                    this section
///   last - first     varint
///   src thread       varint        (src-valid only)
///   src count        zigzag delta vs. First (src-valid only)
///
/// All delta bases reset at every section (hence every segment), so any
/// salvaged segment prefix decodes independently — the salvage guarantees
/// of the LIGHT002 container carry over unchanged.
///
/// Every encoder checks the wire-width limits (spanEncodable, the Ids.h
/// Max* constants) before packing and reports an overflow as a structured
/// failure plus a `record.overflow` metric; decode failures are equally
/// structured (a false return tears the tail, never UB).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_SEGMENTCODEC_H
#define LIGHT_TRACE_SEGMENTCODEC_H

#include "trace/RecordingLog.h"

#include <cstdint>
#include <vector>

namespace light {

/// Spawn-record word packing shared by LIGHT001 and LIGHT002:
/// parent(16) | spawnIndex(32) | child(16).
uint64_t packSpawnWord(const SpawnRecord &R);
SpawnRecord unpackSpawnWord(uint64_t W);

/// Decodes one LIGHT002 word-oriented segment payload into \p Log
/// (append/replace semantics per LogSection). The payload already passed
/// its CRC, so a false return means a producer bug or version drift, not
/// disk corruption — but it is still reported, never trusted. \p Log may
/// hold a partially-applied segment after a failure.
bool decodeSegmentWords(const std::vector<uint64_t> &P, RecordingLog &Log);

/// Same for a LIGHT003 compressed segment payload.
bool decodeSegmentCompressed(const std::vector<uint64_t> &P,
                             RecordingLog &Log);

/// LEB128 primitives of the LIGHT003 byte stream, exposed for the
/// boundary-truncation property tests.
namespace v3 {
void putVarint(std::vector<uint8_t> &Out, uint64_t V);
void putZigzag(std::vector<uint8_t> &Out, int64_t V);
} // namespace v3

/// Builds one LIGHT003 segment payload. Construct one per segment: the
/// delta bases live in the encoder, which is what makes salvaged prefixes
/// independently decodable.
class CompressedSegmentEncoder {
public:
  /// Appends one section each. A false return means a record exceeded a
  /// wire width (record.overflow was bumped) and the payload must be
  /// discarded.
  bool addSpans(const DepSpan *Spans, size_t N);
  bool addSyscalls(const SyscallRecord *Calls, size_t N);
  bool addSpawns(const std::vector<SpawnRecord> &Spawns);
  bool addCounters(const std::vector<std::pair<ThreadId, Counter>> &Updates);
  bool addGuards(const GuardSpec &Guards);

  bool empty() const { return Bytes.empty(); }
  uint64_t byteSize() const { return Bytes.size(); }

  /// Word-wraps the byte stream for the durable container.
  std::vector<uint64_t> finish() const;

private:
  std::vector<uint8_t> Bytes;
};

} // namespace light

#endif // LIGHT_TRACE_SEGMENTCODEC_H

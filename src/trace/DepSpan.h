//===- trace/DepSpan.h - Flow-dependence span records -----------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of Light's recording: a flow-dependence *span*.
///
/// Section 4.1 of the paper records a flow dependence c_w -> c_r per first
/// read of a write (the `prec` map merges the remaining reads), and Lemma 4.3
/// (optimization O1) further compresses an uninterleaved same-thread access
/// sequence into its starting and ending accesses. Both compressions are
/// represented uniformly here:
///
///  * A ReadSpan (Src valid) is a maximal run of reads by one thread that all
///    observe the same source write Src. With `prec` only, the run is what
///    Algorithm 1 lines 7-9 merge; replay must keep every other write to the
///    location outside the interval (Src, Last].
///
///  * An OwnSpan (Src invalid) is an O1 run that *starts with the thread's
///    own write* and contains only the thread's own writes and reads of
///    those writes, with no interleaving access by another thread. Replay
///    must keep all other accesses to the location outside [First, Last].
///
///  * An InitSpan (Src invalid, IsRead) is a run of reads that observe the
///    location's initial value (no write has occurred yet). Replay must
///    schedule every write to the location after Last.
///
/// A plain single dependence c_w -> c_r is simply a ReadSpan with
/// First == Last. The constraint generator (core/ConstraintGen) turns spans
/// into the interval form of Equation 1.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_DEPSPAN_H
#define LIGHT_TRACE_DEPSPAN_H

#include "trace/Ids.h"

namespace light {

/// The three span shapes distinguished above.
enum class SpanKind : uint8_t {
  Read = 0, ///< reads of a single source write (prec-merged dependence)
  Own = 1,  ///< O1 uninterleaved run starting with the thread's own write
  Init = 2, ///< reads of the location's initial (never-written) value
};

/// One recorded flow-dependence span.
struct DepSpan {
  LocationId Loc = InvalidLocation;
  /// Source write for SpanKind::Read; invalid otherwise.
  AccessId Src;
  /// The owning (reading/writing) thread.
  ThreadId Thread = 0;
  /// Counter of the first and last access in the span (inclusive; both
  /// belong to Thread). First == Last for an uncompressed dependence.
  Counter First = 0;
  Counter Last = 0;
  SpanKind Kind = SpanKind::Read;

  AccessId first() const { return AccessId(Thread, First); }
  AccessId last() const { return AccessId(Thread, Last); }

  /// True if the span contains writes (only OwnSpans do).
  bool hasWrites() const { return Kind == SpanKind::Own; }

  friend bool operator==(const DepSpan &A, const DepSpan &B) {
    return A.Loc == B.Loc && A.Src == B.Src && A.Thread == B.Thread &&
           A.First == B.First && A.Last == B.Last && A.Kind == B.Kind;
  }

  std::string str() const;
};

/// The span wire formats pack the kind into the top two bits of the packed
/// (thread, first) word, capping span thread ids at 14 bits.
constexpr ThreadId MaxSpanThread = (1u << 14) - 1;

/// True when \p S fits every width limit of the on-disk span encodings
/// (LIGHT001 words and the LIGHT003 varint stream alike). The serializers
/// check this before packing so an overflowing recording fails with a
/// structured error instead of writing a corrupt trace.
inline bool spanEncodable(const DepSpan &S) {
  return S.Thread <= MaxSpanThread && S.First <= S.Last &&
         S.Last <= MaxAccessCounter &&
         (!S.Src.valid() || S.Src.packable());
}

/// A recorded nondeterministic system-call value (time(), random input...),
/// replayed by substitution per Section 3.2 of the paper.
struct SyscallRecord {
  ThreadId Thread = 0;
  uint64_t Value = 0;
};

/// A thread-creation fact: the child's stable ThreadId together with the
/// spawner and per-spawner spawn index that identify "the same" thread in
/// the replay run.
struct SpawnRecord {
  ThreadId Parent = 0;
  uint32_t SpawnIndex = 0; ///< 0-based index among Parent's spawns
  ThreadId Child = 0;
};

} // namespace light

#endif // LIGHT_TRACE_DEPSPAN_H

//===- trace/SegmentCodec.cpp - Segment payload encodings -----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/SegmentCodec.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

using namespace light;

uint64_t light::packSpawnWord(const SpawnRecord &R) {
  return (static_cast<uint64_t>(R.Parent) << 48) |
         (static_cast<uint64_t>(R.SpawnIndex) << 16) | R.Child;
}

SpawnRecord light::unpackSpawnWord(uint64_t W) {
  SpawnRecord R;
  R.Parent = static_cast<ThreadId>(W >> 48);
  R.SpawnIndex = static_cast<uint32_t>((W >> 16) & 0xffffffff);
  R.Child = static_cast<ThreadId>(W & 0xffff);
  return R;
}

//===----------------------------------------------------------------------===//
// LIGHT002 word-oriented payload decoding
//===----------------------------------------------------------------------===//

bool light::decodeSegmentWords(const std::vector<uint64_t> &P,
                               RecordingLog &Log) {
  size_t Pos = 0;
  while (Pos < P.size()) {
    if (P.size() - Pos < 2)
      return false;
    uint64_t Tag = P[Pos];
    uint64_t N = P[Pos + 1];
    Pos += 2;
    uint64_t Remaining = P.size() - Pos;
    switch (static_cast<LogSection>(Tag)) {
    case LogSection::Spans: {
      if (N > Remaining / 4)
        return false;
      for (uint64_t I = 0; I < N; ++I, Pos += 4) {
        DepSpan S;
        S.Loc = P[Pos];
        if (P[Pos + 1])
          S.Src = AccessId::unpack(P[Pos + 1]);
        uint64_t FirstWord = P[Pos + 2];
        S.Kind = static_cast<SpanKind>(FirstWord >> 62);
        AccessId First = AccessId::unpack(FirstWord & ~(3ull << 62));
        S.Thread = First.Thread;
        S.First = First.Count;
        S.Last = P[Pos + 3];
        // Well-formed spans satisfy First <= Last < 2^48 (the AccessId
        // counter width); anything else is producer corruption.
        if (S.Last > MaxAccessCounter || S.First > S.Last)
          return false;
        Log.Spans.push_back(S);
      }
      break;
    }
    case LogSection::Syscalls: {
      if (N > Remaining / 2)
        return false;
      for (uint64_t I = 0; I < N; ++I, Pos += 2) {
        SyscallRecord R;
        R.Thread = static_cast<ThreadId>(P[Pos]);
        R.Value = P[Pos + 1];
        Log.Syscalls.push_back(R);
      }
      break;
    }
    case LogSection::Spawns: {
      if (N > Remaining)
        return false;
      Log.Spawns.clear();
      for (uint64_t I = 0; I < N; ++I, ++Pos)
        Log.Spawns.push_back(unpackSpawnWord(P[Pos]));
      break;
    }
    case LogSection::Counters: {
      if (N > Remaining / 2)
        return false;
      for (uint64_t I = 0; I < N; ++I, Pos += 2) {
        size_t T = P[Pos];
        if (T > MaxSpanThread)
          return false;
        if (Log.FinalCounters.size() <= T)
          Log.FinalCounters.resize(T + 1, 0);
        Log.FinalCounters[T] = std::max(Log.FinalCounters[T], P[Pos + 1]);
      }
      break;
    }
    case LogSection::GuardExact: {
      if (N > Remaining)
        return false;
      Log.Guards.Exact.assign(P.begin() + Pos, P.begin() + Pos + N);
      Pos += N;
      break;
    }
    case LogSection::GuardFields: {
      if (N > Remaining)
        return false;
      Log.Guards.FieldIndices.clear();
      for (uint64_t I = 0; I < N; ++I, ++Pos)
        Log.Guards.FieldIndices.push_back(static_cast<uint32_t>(P[Pos]));
      break;
    }
    case LogSection::GuardGlobals: {
      if (N > Remaining)
        return false;
      Log.Guards.GlobalIds.assign(P.begin() + Pos, P.begin() + Pos + N);
      Pos += N;
      break;
    }
    default:
      return false; // unknown section tag
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// LIGHT003 varint stream
//===----------------------------------------------------------------------===//

void v3::putVarint(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(V));
}

void v3::putZigzag(std::vector<uint8_t> &Out, int64_t V) {
  putVarint(Out, (static_cast<uint64_t>(V) << 1) ^
                     static_cast<uint64_t>(V >> 63));
}

namespace {

/// Bounds-checked reader over a LIGHT003 byte stream. Every decode failure
/// (varint past the end, over-long varint) latches Fail; callers test it at
/// record granularity, never dereference past End.
struct ByteCursor {
  const uint8_t *P;
  const uint8_t *End;
  bool Fail = false;

  bool atEnd() const { return P == End; }

  uint8_t byte() {
    if (P == End) {
      Fail = true;
      return 0;
    }
    return *P++;
  }

  uint64_t varint() {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (P == End) {
        Fail = true;
        return 0;
      }
      uint8_t B = *P++;
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return V;
    }
    Fail = true; // over-long varint
    return 0;
  }

  int64_t zigzag() {
    uint64_t V = varint();
    return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
  }
};

obs::Counter overflowCounter() {
  return obs::Registry::global().counter("record.overflow");
}

} // namespace

bool CompressedSegmentEncoder::addSpans(const DepSpan *Spans, size_t N) {
  if (!N)
    return true;
  for (size_t I = 0; I < N; ++I)
    if (!spanEncodable(Spans[I])) {
      overflowCounter().add(1);
      return false;
    }
  v3::putVarint(Bytes, static_cast<uint64_t>(LogSection::Spans));
  v3::putVarint(Bytes, N);
  uint64_t PrevLoc = 0;
  std::unordered_map<ThreadId, Counter> PrevFirst;
  for (size_t I = 0; I < N; ++I) {
    const DepSpan &S = Spans[I];
    Bytes.push_back(static_cast<uint8_t>(S.Kind) |
                    (S.Src.valid() ? 0x4 : 0x0));
    // Deltas use wrapping two's-complement arithmetic, so any 64-bit pair
    // round-trips; zigzag just keeps the common near-zero deltas short.
    v3::putZigzag(Bytes, static_cast<int64_t>(S.Loc - PrevLoc));
    v3::putVarint(Bytes, S.Thread);
    Counter &PF = PrevFirst[S.Thread];
    v3::putZigzag(Bytes, static_cast<int64_t>(S.First - PF));
    v3::putVarint(Bytes, S.Last - S.First);
    if (S.Src.valid()) {
      v3::putVarint(Bytes, S.Src.Thread);
      v3::putZigzag(Bytes, static_cast<int64_t>(S.Src.Count - S.First));
    }
    PrevLoc = S.Loc;
    PF = S.First;
  }
  return true;
}

bool CompressedSegmentEncoder::addSyscalls(const SyscallRecord *Calls,
                                           size_t N) {
  if (!N)
    return true;
  v3::putVarint(Bytes, static_cast<uint64_t>(LogSection::Syscalls));
  v3::putVarint(Bytes, N);
  for (size_t I = 0; I < N; ++I) {
    v3::putVarint(Bytes, Calls[I].Thread);
    v3::putVarint(Bytes, Calls[I].Value);
  }
  return true;
}

bool CompressedSegmentEncoder::addSpawns(
    const std::vector<SpawnRecord> &Spawns) {
  v3::putVarint(Bytes, static_cast<uint64_t>(LogSection::Spawns));
  v3::putVarint(Bytes, Spawns.size());
  for (const SpawnRecord &R : Spawns) {
    v3::putVarint(Bytes, R.Parent);
    v3::putVarint(Bytes, R.SpawnIndex);
    v3::putVarint(Bytes, R.Child);
  }
  return true;
}

bool CompressedSegmentEncoder::addCounters(
    const std::vector<std::pair<ThreadId, Counter>> &Updates) {
  if (Updates.empty())
    return true;
  for (const auto &[Thread, Count] : Updates)
    if (Thread > MaxSpanThread || Count > MaxAccessCounter) {
      overflowCounter().add(1);
      return false;
    }
  v3::putVarint(Bytes, static_cast<uint64_t>(LogSection::Counters));
  v3::putVarint(Bytes, Updates.size());
  for (const auto &[Thread, Count] : Updates) {
    v3::putVarint(Bytes, Thread);
    v3::putVarint(Bytes, Count);
  }
  return true;
}

bool CompressedSegmentEncoder::addGuards(const GuardSpec &Guards) {
  v3::putVarint(Bytes, static_cast<uint64_t>(LogSection::GuardExact));
  v3::putVarint(Bytes, Guards.Exact.size());
  uint64_t Prev = 0;
  for (LocationId L : Guards.Exact) {
    v3::putZigzag(Bytes, static_cast<int64_t>(L - Prev));
    Prev = L;
  }
  v3::putVarint(Bytes, static_cast<uint64_t>(LogSection::GuardFields));
  v3::putVarint(Bytes, Guards.FieldIndices.size());
  for (uint32_t F : Guards.FieldIndices)
    v3::putVarint(Bytes, F);
  v3::putVarint(Bytes, static_cast<uint64_t>(LogSection::GuardGlobals));
  v3::putVarint(Bytes, Guards.GlobalIds.size());
  for (uint64_t G : Guards.GlobalIds)
    v3::putVarint(Bytes, G);
  return true;
}

std::vector<uint64_t> CompressedSegmentEncoder::finish() const {
  std::vector<uint64_t> Out(1 + (Bytes.size() + 7) / 8, 0);
  Out[0] = Bytes.size();
  if (!Bytes.empty())
    std::memcpy(Out.data() + 1, Bytes.data(), Bytes.size());
  return Out;
}

bool light::decodeSegmentCompressed(const std::vector<uint64_t> &P,
                                    RecordingLog &Log) {
  if (P.empty())
    return true;
  uint64_t ByteLen = P[0];
  // The padding must account exactly for the declared byte length; anything
  // else means the frame and the stream disagree.
  if (P.size() != 1 + (ByteLen + 7) / 8)
    return false;
  const uint8_t *Base = reinterpret_cast<const uint8_t *>(P.data() + 1);
  ByteCursor C{Base, Base + ByteLen};

  while (!C.atEnd()) {
    uint64_t Tag = C.varint();
    uint64_t N = C.varint();
    if (C.Fail)
      return false;
    switch (static_cast<LogSection>(Tag)) {
    case LogSection::Spans: {
      uint64_t PrevLoc = 0;
      std::unordered_map<ThreadId, Counter> PrevFirst;
      for (uint64_t I = 0; I < N; ++I) {
        uint8_t Flags = C.byte();
        if (Flags & ~0x7u)
          return false;
        DepSpan S;
        if ((Flags & 0x3) > static_cast<uint8_t>(SpanKind::Init))
          return false;
        S.Kind = static_cast<SpanKind>(Flags & 0x3);
        S.Loc = PrevLoc + static_cast<uint64_t>(C.zigzag());
        uint64_t T = C.varint();
        if (T > MaxSpanThread)
          return false;
        S.Thread = static_cast<ThreadId>(T);
        Counter &PF = PrevFirst[S.Thread];
        S.First = PF + static_cast<uint64_t>(C.zigzag());
        S.Last = S.First + C.varint();
        if (Flags & 0x4) {
          uint64_t ST = C.varint();
          if (ST > 0xffff)
            return false;
          S.Src = AccessId(static_cast<ThreadId>(ST),
                           S.First + static_cast<uint64_t>(C.zigzag()));
        }
        if (C.Fail || !spanEncodable(S))
          return false;
        PrevLoc = S.Loc;
        PF = S.First;
        Log.Spans.push_back(S);
      }
      break;
    }
    case LogSection::Syscalls: {
      for (uint64_t I = 0; I < N; ++I) {
        SyscallRecord R;
        uint64_t T = C.varint();
        if (T > 0xffff)
          return false;
        R.Thread = static_cast<ThreadId>(T);
        R.Value = C.varint();
        if (C.Fail)
          return false;
        Log.Syscalls.push_back(R);
      }
      break;
    }
    case LogSection::Spawns: {
      Log.Spawns.clear();
      for (uint64_t I = 0; I < N; ++I) {
        SpawnRecord R;
        uint64_t Parent = C.varint();
        uint64_t Index = C.varint();
        uint64_t Child = C.varint();
        if (C.Fail || Parent > 0xffff || Index > 0xffffffffull ||
            Child > 0xffff)
          return false;
        R.Parent = static_cast<ThreadId>(Parent);
        R.SpawnIndex = static_cast<uint32_t>(Index);
        R.Child = static_cast<ThreadId>(Child);
        Log.Spawns.push_back(R);
      }
      break;
    }
    case LogSection::Counters: {
      for (uint64_t I = 0; I < N; ++I) {
        uint64_t T = C.varint();
        uint64_t Count = C.varint();
        if (C.Fail || T > MaxSpanThread || Count > MaxAccessCounter)
          return false;
        if (Log.FinalCounters.size() <= T)
          Log.FinalCounters.resize(T + 1, 0);
        Log.FinalCounters[T] = std::max(Log.FinalCounters[T], Count);
      }
      break;
    }
    case LogSection::GuardExact: {
      Log.Guards.Exact.clear();
      uint64_t Prev = 0;
      for (uint64_t I = 0; I < N; ++I) {
        Prev += static_cast<uint64_t>(C.zigzag());
        if (C.Fail)
          return false;
        Log.Guards.Exact.push_back(Prev);
      }
      break;
    }
    case LogSection::GuardFields: {
      Log.Guards.FieldIndices.clear();
      for (uint64_t I = 0; I < N; ++I) {
        uint64_t F = C.varint();
        if (C.Fail || F > 0xffffffffull)
          return false;
        Log.Guards.FieldIndices.push_back(static_cast<uint32_t>(F));
      }
      break;
    }
    case LogSection::GuardGlobals: {
      Log.Guards.GlobalIds.clear();
      for (uint64_t I = 0; I < N; ++I) {
        uint64_t G = C.varint();
        if (C.Fail)
          return false;
        Log.Guards.GlobalIds.push_back(G);
      }
      break;
    }
    default:
      return false; // unknown section tag
    }
  }
  return !C.Fail;
}

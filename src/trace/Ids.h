//===- trace/Ids.h - Threads, counters, accesses, locations -----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core identifier vocabulary shared by the recorder, the replayer, the
/// constraint generator, and both execution substrates (the MIR interpreter
/// and the real-thread runtime).
///
/// Following Section 2.3 of the paper, every shared access is denoted by a
/// thread-local index (t, c): the thread t and the value c of the thread's
/// local access counter. Such pairs are the "order variables" of the replay
/// constraint system and must be *stable* across the record run and the
/// replay run, which is why object identities are derived from
/// (allocating thread, per-thread allocation index) rather than from any
/// global allocation order.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_IDS_H
#define LIGHT_TRACE_IDS_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

namespace light {

/// Dense identifier of a thread, stable across record and replay (see
/// ThreadRegistry / interp thread tables for how stability is maintained).
using ThreadId = uint16_t;

/// Thread-local shared-access counter. Counters start at 1 so that a packed
/// AccessId of 0 can serve as "no access".
using Counter = uint64_t;

/// Packing-width limits. These used to be assert-only, which meant release
/// builds silently wrapped and corrupted packed ids exactly at the scale
/// where the limits start to matter (10^8-access traces). pack() now masks
/// to the field width (defined behavior in every build mode) and the
/// recording path checks the packable()/encodable predicates up front,
/// turning an overflow into a structured error plus a `record.overflow`
/// metric instead of a corrupt trace.
constexpr Counter MaxAccessCounter = (1ull << 48) - 1;
constexpr uint32_t MaxAllocThread = (1u << 12) - 1;
constexpr uint32_t MaxAllocIndex = (1u << 28) - 1;
constexpr uint32_t MaxFieldIndex = (1u << 20) - 1;
constexpr uint64_t MaxLocationPayload = (1ull << 60) - 1;

/// A shared access identified by (thread, thread-local counter), packed into
/// 64 bits: thread in the top 16 bits, counter in the low 48.
struct AccessId {
  ThreadId Thread = 0;
  Counter Count = 0;

  AccessId() = default;
  AccessId(ThreadId T, Counter C) : Thread(T), Count(C) {}

  bool valid() const { return Count != 0; }

  /// True when the counter fits the 48-bit packed field.
  bool packable() const { return Count <= MaxAccessCounter; }

  uint64_t pack() const {
    assert(packable() && "access counter overflow");
    return (static_cast<uint64_t>(Thread) << 48) | (Count & MaxAccessCounter);
  }

  static AccessId unpack(uint64_t Packed) {
    AccessId A;
    A.Thread = static_cast<ThreadId>(Packed >> 48);
    A.Count = Packed & ((1ull << 48) - 1);
    return A;
  }

  friend bool operator==(const AccessId &A, const AccessId &B) {
    return A.Thread == B.Thread && A.Count == B.Count;
  }
  friend bool operator!=(const AccessId &A, const AccessId &B) {
    return !(A == B);
  }
  friend bool operator<(const AccessId &A, const AccessId &B) {
    return A.pack() < B.pack();
  }

  std::string str() const {
    return "(t" + std::to_string(Thread) + "," + std::to_string(Count) + ")";
  }
};

/// Identity of a heap object, stable across runs: the allocating thread plus
/// that thread's allocation index. By thread determinism (Assumption 1 in the
/// paper) each thread performs the same allocation sequence in the replay
/// run, so these identities name the "same" objects in both runs.
struct ObjectId {
  ThreadId AllocThread = 0;
  uint32_t AllocIndex = 0; ///< 1-based; 0 encodes the null object.

  ObjectId() = default;
  ObjectId(ThreadId T, uint32_t Index) : AllocThread(T), AllocIndex(Index) {}

  bool isNull() const { return AllocIndex == 0; }

  /// True when both fields fit the 40-bit packed form.
  bool packable() const {
    return AllocThread <= MaxAllocThread && AllocIndex <= MaxAllocIndex;
  }

  /// 40-bit packed form: thread(12) | index(28).
  uint64_t pack() const {
    assert(AllocThread <= MaxAllocThread && "too many allocating threads");
    assert(AllocIndex <= MaxAllocIndex && "per-thread allocation overflow");
    return (static_cast<uint64_t>(AllocThread & MaxAllocThread) << 28) |
           (AllocIndex & MaxAllocIndex);
  }

  static ObjectId unpack(uint64_t Packed) {
    ObjectId O;
    O.AllocThread = static_cast<ThreadId>((Packed >> 28) & 0xfff);
    O.AllocIndex = static_cast<uint32_t>(Packed & ((1u << 28) - 1));
    return O;
  }

  friend bool operator==(const ObjectId &A, const ObjectId &B) {
    return A.AllocThread == B.AllocThread && A.AllocIndex == B.AllocIndex;
  }

  std::string str() const {
    if (isNull())
      return "null";
    return "o" + std::to_string(AllocThread) + "." + std::to_string(AllocIndex);
  }
};

/// A shared memory location (or ghost location modeling a synchronization
/// primitive, per Section 4.3 of the paper) packed into 64 bits.
///
/// Layout: kind(4 bits, 63..60) | payload(60 bits).
using LocationId = uint64_t;

constexpr LocationId InvalidLocation = 0;

/// The classes of locations the recorder tracks.
enum class LocationKind : uint8_t {
  Invalid = 0,
  Field = 1,       ///< object field: obj(40) | fieldIdx(20)
  ArrayElem = 2,   ///< array element: obj(40) | index(20)
  Lock = 3,        ///< ghost lock word of a monitor: obj(40)
  Cond = 4,        ///< ghost condition word (wait/notify): obj(40)
  ThreadStart = 5, ///< ghost start token of a thread: threadId
  ThreadTerm = 6,  ///< ghost termination token of a thread: threadId
  Var = 7,         ///< runtime-API shared variable: user-assigned id
  RwLock = 8,      ///< ghost read-write-lock word: obj(40)
  Barrier = 9,     ///< ghost barrier word (arrival/release): obj(40)
  Chan = 10,       ///< ghost channel word: node(16) << 32 | channel id
};

namespace loc {

inline LocationId make(LocationKind K, uint64_t Payload) {
  assert(Payload <= MaxLocationPayload && "location payload overflow");
  return (static_cast<uint64_t>(K) << 60) | (Payload & MaxLocationPayload);
}

inline LocationKind kindOf(LocationId L) {
  return static_cast<LocationKind>(L >> 60);
}

inline uint64_t payloadOf(LocationId L) { return L & ((1ull << 60) - 1); }

inline LocationId field(ObjectId Obj, uint32_t FieldIdx) {
  assert(FieldIdx <= MaxFieldIndex && "field index overflow");
  return make(LocationKind::Field,
              (Obj.pack() << 20) | (FieldIdx & MaxFieldIndex));
}

inline LocationId arrayElem(ObjectId Obj, uint32_t Index) {
  assert(Index <= MaxFieldIndex && "array index too large to form a location");
  return make(LocationKind::ArrayElem,
              (Obj.pack() << 20) | (Index & MaxFieldIndex));
}

inline LocationId lock(ObjectId Obj) {
  return make(LocationKind::Lock, Obj.pack());
}

inline LocationId cond(ObjectId Obj) {
  return make(LocationKind::Cond, Obj.pack());
}

inline LocationId threadStart(ThreadId T) {
  return make(LocationKind::ThreadStart, T);
}

inline LocationId threadTerm(ThreadId T) {
  return make(LocationKind::ThreadTerm, T);
}

inline LocationId var(uint64_t VarId) { return make(LocationKind::Var, VarId); }

inline LocationId rwlock(ObjectId Obj) {
  return make(LocationKind::RwLock, Obj.pack());
}

inline LocationId barrier(ObjectId Obj) {
  return make(LocationKind::Barrier, Obj.pack());
}

/// Ghost word of message channel \p Chan. Each node of a multi-node run
/// records its channel endpoint operations against its *own* chan word
/// (\p Node is the node index, 0 for single-process runs): a node's local
/// recorded RMW chain is true locally, while cross-node send->recv ordering is
/// supplied by explicit message-log edges when the per-node systems are
/// merged (dist/NodeSet.h), not by collapsing all nodes onto one word.
inline LocationId chan(uint32_t Chan, uint32_t Node = 0) {
  return make(LocationKind::Chan,
              (static_cast<uint64_t>(Node) << 32) | Chan);
}

/// Returns true if \p L is a ghost location synthesized for a
/// synchronization primitive rather than actual program data.
inline bool isGhost(LocationId L) {
  LocationKind K = kindOf(L);
  return K == LocationKind::Lock || K == LocationKind::Cond ||
         K == LocationKind::ThreadStart || K == LocationKind::ThreadTerm ||
         K == LocationKind::RwLock || K == LocationKind::Barrier ||
         K == LocationKind::Chan;
}

/// The field index used for striping decisions ("the offset of field f
/// within the class definition", Section 4.1). For non-field locations the
/// low payload bits serve the same purpose.
inline uint32_t stripeKey(LocationId L) {
  return static_cast<uint32_t>(L & 0xfffff) ^ static_cast<uint32_t>(L >> 20);
}

std::string str(LocationId L);

} // namespace loc

/// Hash functor so LocationId/AccessId maps can be declared tersely.
struct AccessIdHash {
  size_t operator()(const AccessId &A) const {
    return std::hash<uint64_t>()(A.pack());
  }
};

} // namespace light

#endif // LIGHT_TRACE_IDS_H

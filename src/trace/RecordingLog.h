//===- trace/RecordingLog.h - The on-disk recording -------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete recording of one run: the merged flow-dependence spans of
/// all threads, per-thread syscall value streams, the thread-identity table,
/// and final per-thread access counters. This is what the Light recorder
/// dumps to disk and what the replay phase consumes.
///
/// Two on-disk formats are supported:
///
///  * LIGHT001 — the legacy single-shot format save() writes: one magic word
///    followed by the five sections, valid only when written to completion.
///
///  * LIGHT002 — the durable segmented container (support/DurableLog):
///    checksummed, length-framed segments whose payloads are sequences of
///    tagged sections (LogSection). The recorder appends one segment per
///    epoch, so a crashed process leaves a salvageable prefix; load()
///    recovers it and reports what was lost through LogLoadReport.
///
/// load() dispatches on the magic word, so both formats stay loadable
/// through one entry point.
///
/// Space accounting: the paper measures space in "Long-integer" units
/// (Section 5.2), directly counting the long integers recorded. spaceLongs()
/// returns exactly the number of 64-bit words the serialized dependence data
/// occupies, so Figure 5 / Figure 7b come from real serialized sizes.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_RECORDINGLOG_H
#define LIGHT_TRACE_RECORDINGLOG_H

#include "trace/DepSpan.h"
#include "trace/GuardSpec.h"

#include <string>
#include <utility>
#include <vector>

namespace light {

/// Section tags inside a LIGHT002 segment payload. Each section is encoded
/// as [tag][record count][records...]. Spans and Syscalls sections append to
/// what earlier segments carried; Spawns, Counters, and the Guard sections
/// supersede it (the recorder re-emits them as they grow, and counters only
/// ever move forward).
enum class LogSection : uint64_t {
  Spans = 1,        ///< 4 words per span, same packing as LIGHT001
  Syscalls = 2,     ///< (thread, value) pairs
  Spawns = 3,       ///< packed spawn words; replaces the table
  Counters = 4,     ///< (thread, counter) pairs; per-thread maximum wins
  GuardExact = 5,   ///< guarded LocationIds; replaces the set
  GuardFields = 6,  ///< guarded field indices; replaces the set
  GuardGlobals = 7, ///< guarded global ids; replaces the set
};

/// What load() learned about the file it parsed — which format it was,
/// whether the producer closed it cleanly, and how much of a torn tail was
/// cut during salvage.
struct LogLoadReport {
  uint32_t FormatVersion = 0;    ///< 1 (LIGHT001) or 2 (LIGHT002)
  bool CleanClose = false;       ///< LIGHT002 clean-close marker present
  bool Salvaged = false;         ///< recovered a prefix of a crashed log
  uint64_t SegmentsRecovered = 0;///< LIGHT002 segments decoded
  uint64_t SegmentsDropped = 0;  ///< segments cut with the torn tail
  uint64_t WordsDropped = 0;     ///< words cut with the torn tail
  std::string Error;             ///< set when load() returns false
};

/// A full recording of one execution.
struct RecordingLog {
  /// All dependence spans, merged from the per-thread local buffers.
  std::vector<DepSpan> Spans;

  /// Recorded nondeterministic syscall values, in per-thread order.
  std::vector<SyscallRecord> Syscalls;

  /// Thread-identity table for replay-stable thread ids.
  std::vector<SpawnRecord> Spawns;

  /// Final access-counter value per thread id (index = ThreadId); used by
  /// the replayer to sanity-check termination. After salvaging a crashed
  /// LIGHT002 log the values are synthesized from the recovered spans when
  /// the recorded table stops short of them.
  std::vector<Counter> FinalCounters;

  /// Locations whose field-level recording was subsumed by lock-order
  /// recording (optimization O2 / Lemma 4.2). The replayer leaves accesses
  /// to these locations ungated and never treats their writes as blind.
  GuardSpec Guards;

  /// Number of long-integer units the dependence spans occupy when
  /// serialized (4 words per span: Loc, Src, packed(Thread, First), Last).
  uint64_t spaceLongs() const { return Spans.size() * 4; }

  /// Serializes the log to \p Path using the buffered LongWriter scheme
  /// (legacy LIGHT001 format — the one the space evaluation counts).
  /// Returns the number of long-integer units written (all sections).
  uint64_t save(const std::string &Path) const;

  /// Serializes the log to \p Path as a LIGHT002 durable container: one
  /// segment holding every section, then the clean-close marker. Returns
  /// the number of long-integer units written (including framing), or 0 on
  /// I/O failure.
  uint64_t saveDurable(const std::string &Path) const;

  /// Loads a log written by save(), saveDurable(), or a crashed epoch
  /// recorder — the magic word selects the parser. A LIGHT002 file without
  /// its clean-close marker is salvaged: the longest valid segment prefix
  /// becomes the log and the call still succeeds. Returns false on I/O
  /// error, unrecognized magic, or (LIGHT001 only) any truncation.
  bool load(const std::string &Path);

  /// Same, and additionally reports format, clean/salvage status, and how
  /// much of a torn tail was dropped.
  bool load(const std::string &Path, LogLoadReport &Report);

  /// Human-readable dump for debugging and the examples.
  std::string str() const;
};

/// What the CI pipeline's salvage stage recovered from a (possibly torn,
/// possibly absent) recording left behind by a dead child.
struct SalvageOutcome {
  /// A log with at least the LIGHT002 header was found and parsed; Log and
  /// Report are meaningful. False means there is nothing to salvage — no
  /// file, or not a recording — and Error says why.
  bool Loaded = false;
  /// Loaded and at least one segment's worth of data survived: the "valid
  /// log prefix exists" predicate the CI verdict rules key on.
  bool UsablePrefix = false;
  RecordingLog Log;
  LogLoadReport Report;
  std::string Error;
};

/// The CI salvage entry point: loads \p Path tolerating every failure mode
/// a dead recording child can leave behind (torn tail, missing clean-close,
/// missing file). Never throws, never aborts — a failed salvage is a
/// verdict input, not an error. Honors the `ci.salvage_truncate` fault
/// site: when armed, the last N (param, default 1) recovered segments are
/// dropped after the scan, deterministically simulating a tear deeper than
/// the one on disk.
SalvageOutcome salvageRecording(const std::string &Path);

/// Encoders for LIGHT002 segment payloads, shared by saveDurable() and the
/// epoch recorder. Each appends one complete section to \p Out.
void encodeSpanSection(std::vector<uint64_t> &Out, const DepSpan *Spans,
                       size_t N);
void encodeSyscallSection(std::vector<uint64_t> &Out,
                          const SyscallRecord *Calls, size_t N);
void encodeSpawnSection(std::vector<uint64_t> &Out,
                        const std::vector<SpawnRecord> &Spawns);
void encodeCounterSection(
    std::vector<uint64_t> &Out,
    const std::vector<std::pair<ThreadId, Counter>> &Updates);
void encodeGuardSections(std::vector<uint64_t> &Out, const GuardSpec &Guards);

} // namespace light

#endif // LIGHT_TRACE_RECORDINGLOG_H

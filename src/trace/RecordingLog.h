//===- trace/RecordingLog.h - The on-disk recording -------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete recording of one run: the merged flow-dependence spans of
/// all threads, per-thread syscall value streams, the thread-identity table,
/// and final per-thread access counters. This is what the Light recorder
/// dumps to disk and what the replay phase consumes.
///
/// Three on-disk formats are supported:
///
///  * LIGHT001 — the legacy single-shot format save() writes: one magic word
///    followed by the five sections, valid only when written to completion.
///
///  * LIGHT002 — the durable segmented container (support/DurableLog):
///    checksummed, length-framed segments whose payloads are sequences of
///    tagged sections (LogSection). The recorder appends one segment per
///    epoch, so a crashed process leaves a salvageable prefix; load()
///    recovers it and reports what was lost through LogLoadReport.
///
///  * LIGHT003 — the same durable container carrying varint/delta-compressed
///    section payloads (trace/SegmentCodec), the scale format: ~5x smaller
///    than LIGHT001 and streamable one segment at a time. Delta bases reset
///    per segment, so every salvaged prefix decodes independently.
///
/// load() dispatches on the magic word, so all formats stay loadable
/// through one entry point; the durable formats stream through
/// trace/SegmentReader with a bounded decode buffer.
///
/// Space accounting: the paper measures space in "Long-integer" units
/// (Section 5.2), directly counting the long integers recorded. spaceLongs()
/// returns exactly the number of 64-bit words the serialized log occupies in
/// LIGHT001 (all sections, not just spans — spaceBreakdown() itemizes), so
/// Figure 5 / Figure 7b come from real serialized sizes.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_RECORDINGLOG_H
#define LIGHT_TRACE_RECORDINGLOG_H

#include "trace/DepSpan.h"
#include "trace/GuardSpec.h"

#include <string>
#include <utility>
#include <vector>

namespace light {

/// Section tags inside a LIGHT002 segment payload. Each section is encoded
/// as [tag][record count][records...]. Spans and Syscalls sections append to
/// what earlier segments carried; Spawns, Counters, and the Guard sections
/// supersede it (the recorder re-emits them as they grow, and counters only
/// ever move forward).
enum class LogSection : uint64_t {
  Spans = 1,        ///< 4 words per span, same packing as LIGHT001
  Syscalls = 2,     ///< (thread, value) pairs
  Spawns = 3,       ///< packed spawn words; replaces the table
  Counters = 4,     ///< (thread, counter) pairs; per-thread maximum wins
  GuardExact = 5,   ///< guarded LocationIds; replaces the set
  GuardFields = 6,  ///< guarded field indices; replaces the set
  GuardGlobals = 7, ///< guarded global ids; replaces the set
};

/// What load() learned about the file it parsed — which format it was,
/// whether the producer closed it cleanly, and how much of a torn tail was
/// cut during salvage.
struct LogLoadReport {
  uint32_t FormatVersion = 0;    ///< 1, 2, or 3 (LIGHT001/002/003)
  bool CleanClose = false;       ///< LIGHT002 clean-close marker present
  bool Salvaged = false;         ///< recovered a prefix of a crashed log
  uint64_t SegmentsRecovered = 0;///< LIGHT002 segments decoded
  uint64_t SegmentsDropped = 0;  ///< segments cut with the torn tail
  uint64_t WordsDropped = 0;     ///< words cut with the torn tail
  std::string Error;             ///< set when load() returns false
};

/// A full recording of one execution.
struct RecordingLog {
  /// All dependence spans, merged from the per-thread local buffers.
  std::vector<DepSpan> Spans;

  /// Recorded nondeterministic syscall values, in per-thread order.
  std::vector<SyscallRecord> Syscalls;

  /// Thread-identity table for replay-stable thread ids.
  std::vector<SpawnRecord> Spawns;

  /// Final access-counter value per thread id (index = ThreadId); used by
  /// the replayer to sanity-check termination. After salvaging a crashed
  /// LIGHT002 log the values are synthesized from the recovered spans when
  /// the recorded table stops short of them.
  std::vector<Counter> FinalCounters;

  /// Locations whose field-level recording was subsumed by lock-order
  /// recording (optimization O2 / Lemma 4.2). The replayer leaves accesses
  /// to these locations ungated and never treats their writes as blind.
  GuardSpec Guards;

  /// Per-section serialized size in long-integer (64-bit word) units of
  /// the LIGHT001 encoding, count words included. Exposed so the space
  /// benches can itemize where the trace bytes go.
  struct SpaceBreakdown {
    uint64_t SpanWords = 0;    ///< 1 + 4 per span
    uint64_t SyscallWords = 0; ///< 1 + 2 per record
    uint64_t SpawnWords = 0;   ///< 1 + 1 per record
    uint64_t CounterWords = 0; ///< 1 + 1 per thread
    uint64_t GuardWords = 0;   ///< 3 + 1 per guard entry
    uint64_t total() const {
      return SpanWords + SyscallWords + SpawnWords + CounterWords +
             GuardWords;
    }
  };
  SpaceBreakdown spaceBreakdown() const;

  /// Number of long-integer units the serialized log occupies: every
  /// section save() writes (spans, syscalls, spawns, counters, guards),
  /// i.e. save()'s return value minus the magic word. This used to count
  /// the span section alone, silently under-reporting trace size in the
  /// space evaluation.
  uint64_t spaceLongs() const { return spaceBreakdown().total(); }

  /// Serializes the log to \p Path using the buffered LongWriter scheme
  /// (legacy LIGHT001 format — the one the space evaluation counts).
  /// Returns the number of long-integer units written (all sections), or 0
  /// when a record exceeds a wire width (record.overflow is bumped and
  /// nothing usable is written).
  uint64_t save(const std::string &Path) const;

  /// Serializes the log to \p Path as a LIGHT002 durable container: one
  /// segment holding every section, then the clean-close marker. Returns
  /// the number of long-integer units written (including framing), or 0 on
  /// I/O failure or record overflow.
  uint64_t saveDurable(const std::string &Path) const;

  /// Serializes the log to \p Path as a LIGHT003 compressed container
  /// (same single-segment shape as saveDurable, varint payload). Returns
  /// the number of long-integer units written (including framing), or 0 on
  /// I/O failure or record overflow.
  uint64_t saveCompact(const std::string &Path) const;

  /// Loads a log written by save(), saveDurable(), saveCompact(), or a
  /// crashed epoch recorder — the magic word selects the parser. A durable
  /// file without its clean-close marker is salvaged: the longest valid
  /// segment prefix becomes the log and the call still succeeds. Durable
  /// formats stream through TraceSegmentReader (bounded memory). Returns
  /// false on I/O error, unrecognized magic, or (LIGHT001 only) any
  /// truncation.
  bool load(const std::string &Path);

  /// Same, and additionally reports format, clean/salvage status, and how
  /// much of a torn tail was dropped.
  bool load(const std::string &Path, LogLoadReport &Report);

  /// Human-readable dump for debugging and the examples.
  std::string str() const;
};

/// What the CI pipeline's salvage stage recovered from a (possibly torn,
/// possibly absent) recording left behind by a dead child.
struct SalvageOutcome {
  /// A log with at least the LIGHT002 header was found and parsed; Log and
  /// Report are meaningful. False means there is nothing to salvage — no
  /// file, or not a recording — and Error says why.
  bool Loaded = false;
  /// Loaded and at least one segment's worth of data survived: the "valid
  /// log prefix exists" predicate the CI verdict rules key on.
  bool UsablePrefix = false;
  RecordingLog Log;
  LogLoadReport Report;
  std::string Error;
};

/// The CI salvage entry point: loads \p Path tolerating every failure mode
/// a dead recording child can leave behind (torn tail, missing clean-close,
/// missing file). Never throws, never aborts — a failed salvage is a
/// verdict input, not an error. Honors the `ci.salvage_truncate` fault
/// site: when armed, the last N (param, default 1) recovered segments are
/// dropped after the scan, deterministically simulating a tear deeper than
/// the one on disk.
SalvageOutcome salvageRecording(const std::string &Path);

/// Encoders for LIGHT002 segment payloads, shared by saveDurable() and the
/// epoch recorder. Each appends one complete section to \p Out. The span
/// and counter encoders return false (after bumping record.overflow, with
/// \p Out unchanged) when a record exceeds a wire width — the structured
/// replacement for what used to be assert-only packing guards.
bool encodeSpanSection(std::vector<uint64_t> &Out, const DepSpan *Spans,
                       size_t N);
void encodeSyscallSection(std::vector<uint64_t> &Out,
                          const SyscallRecord *Calls, size_t N);
void encodeSpawnSection(std::vector<uint64_t> &Out,
                        const std::vector<SpawnRecord> &Spawns);
bool encodeCounterSection(
    std::vector<uint64_t> &Out,
    const std::vector<std::pair<ThreadId, Counter>> &Updates);
void encodeGuardSections(std::vector<uint64_t> &Out, const GuardSpec &Guards);

} // namespace light

#endif // LIGHT_TRACE_RECORDINGLOG_H

//===- trace/RecordingLog.h - The on-disk recording -------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete recording of one run: the merged flow-dependence spans of
/// all threads, per-thread syscall value streams, the thread-identity table,
/// and final per-thread access counters. This is what the Light recorder
/// dumps to disk and what the replay phase consumes.
///
/// Space accounting: the paper measures space in "Long-integer" units
/// (Section 5.2), directly counting the long integers recorded. spaceLongs()
/// returns exactly the number of 64-bit words the serialized dependence data
/// occupies, so Figure 5 / Figure 7b come from real serialized sizes.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_RECORDINGLOG_H
#define LIGHT_TRACE_RECORDINGLOG_H

#include "trace/DepSpan.h"
#include "trace/GuardSpec.h"

#include <string>
#include <vector>

namespace light {

/// A full recording of one execution.
struct RecordingLog {
  /// All dependence spans, merged from the per-thread local buffers.
  std::vector<DepSpan> Spans;

  /// Recorded nondeterministic syscall values, in per-thread order.
  std::vector<SyscallRecord> Syscalls;

  /// Thread-identity table for replay-stable thread ids.
  std::vector<SpawnRecord> Spawns;

  /// Final access-counter value per thread id (index = ThreadId); used by
  /// the replayer to sanity-check termination.
  std::vector<Counter> FinalCounters;

  /// Locations whose field-level recording was subsumed by lock-order
  /// recording (optimization O2 / Lemma 4.2). The replayer leaves accesses
  /// to these locations ungated and never treats their writes as blind.
  GuardSpec Guards;

  /// Number of long-integer units the dependence spans occupy when
  /// serialized (4 words per span: Loc, Src, packed(Thread, First), Last).
  uint64_t spaceLongs() const { return Spans.size() * 4; }

  /// Serializes the log to \p Path using the buffered LongWriter scheme.
  /// Returns the number of long-integer units written (all sections).
  uint64_t save(const std::string &Path) const;

  /// Loads a log previously written by save(). Returns false on I/O or
  /// format error.
  bool load(const std::string &Path);

  /// Human-readable dump for debugging and the examples.
  std::string str() const;
};

} // namespace light

#endif // LIGHT_TRACE_RECORDINGLOG_H

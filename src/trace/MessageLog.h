//===- trace/MessageLog.h - Durable per-node message log --------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable side log a multi-node recording writes next to each node's
/// epoch log ("<log>.msg"): one record per channel endpoint operation
/// (send or delivery), carrying the channel id, the per-channel sequence
/// number, the integer payload, and the AccessId of the ghost chan RMW the
/// operation rode on. The offline NodeSetLoader matches each node's
/// received (chan, seq) pairs against the sending node's records to build
/// the cross-node send->recv edges of the merged constraint system, and to
/// compute the maximal causal cut when a node's log was torn.
///
/// Format (LongWriter words): one magic word, then 5-word records
/// [chan|dir, seq, value, packed AccessId, crc32c of the first 4 words],
/// then a clean-close word. The writer flushes every record to the OS, so
/// a SIGKILLed node leaves at most one torn record; the loader salvages the
/// longest CRC-valid prefix, mirroring the LIGHT002 torn-tail contract.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_TRACE_MESSAGELOG_H
#define LIGHT_TRACE_MESSAGELOG_H

#include "support/BinaryIO.h"
#include "trace/Ids.h"

#include <memory>
#include <string>
#include <vector>

namespace light {

/// One channel endpoint event of a recorded run.
struct MessageRecord {
  uint32_t Chan = 0;
  bool IsSend = false; ///< send (true) or delivery (false)
  uint64_t Seq = 0;    ///< per-channel sequence number of the message
  int64_t Value = 0;   ///< integer payload
  AccessId Access;     ///< the ghost chan RMW this event rode on
};

/// Appends message records durably. Every append reaches the OS before it
/// returns, so node death loses at most the record being written.
class MessageLogWriter {
public:
  explicit MessageLogWriter(std::string Path);
  ~MessageLogWriter();

  MessageLogWriter(const MessageLogWriter &) = delete;
  MessageLogWriter &operator=(const MessageLogWriter &) = delete;

  void append(const MessageRecord &R);

  /// Writes the clean-close marker and closes the file.
  bool finish();

  bool ok() const;
  const std::string &error() const;
  uint64_t recordsWritten() const { return Records; }

private:
  std::unique_ptr<LongWriter> Writer;
  uint64_t Records = 0;
  bool Finished = false;
};

/// What loading a (possibly torn, possibly absent) message log recovered.
struct MessageLogSalvage {
  bool Loaded = false;     ///< file existed and had the magic word
  bool CleanClose = false; ///< close marker present and every CRC valid
  uint64_t RecordsDropped = 0; ///< torn/CRC-failed tail records cut
  std::vector<MessageRecord> Records;
  std::string Error; ///< set when Loaded is false
};

/// Loads \p Path tolerating every failure mode a dead node can leave
/// behind: missing file, torn tail, CRC-failed records. Like
/// salvageRecording, a failed salvage is an input to the causal-cut
/// computation, not an error.
MessageLogSalvage loadMessageLog(const std::string &Path);

/// The message-log path conventionally paired with epoch log \p LogPath.
std::string messageLogPath(const std::string &LogPath);

} // namespace light

#endif // LIGHT_TRACE_MESSAGELOG_H

//===- trace/Ids.cpp - Location pretty-printing ---------------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/Ids.h"

using namespace light;

std::string light::loc::str(LocationId L) {
  uint64_t P = payloadOf(L);
  switch (kindOf(L)) {
  case LocationKind::Invalid:
    return "<invalid-loc>";
  case LocationKind::Field:
    return ObjectId::unpack(P >> 20).str() + ".f" +
           std::to_string(P & 0xfffff);
  case LocationKind::ArrayElem:
    return ObjectId::unpack(P >> 20).str() + "[" +
           std::to_string(P & 0xfffff) + "]";
  case LocationKind::Lock:
    return "lock(" + ObjectId::unpack(P).str() + ")";
  case LocationKind::Cond:
    return "cond(" + ObjectId::unpack(P).str() + ")";
  case LocationKind::ThreadStart:
    return "start(t" + std::to_string(P) + ")";
  case LocationKind::ThreadTerm:
    return "term(t" + std::to_string(P) + ")";
  case LocationKind::Var:
    return "var" + std::to_string(P);
  case LocationKind::RwLock:
    return "rwlock(" + ObjectId::unpack(P).str() + ")";
  case LocationKind::Barrier:
    return "barrier(" + ObjectId::unpack(P).str() + ")";
  case LocationKind::Chan: {
    std::string Out = "chan" + std::to_string(P & 0xffffffffu);
    if (uint64_t Node = P >> 32)
      Out += "@n" + std::to_string(Node);
    return Out;
  }
  }
  return "<bad-loc>";
}

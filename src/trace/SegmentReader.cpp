//===- trace/SegmentReader.cpp - Streaming epoch-segment reader -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/SegmentReader.h"

#include "obs/Metrics.h"
#include "support/FaultInjection.h"
#include "trace/SegmentCodec.h"

#include <algorithm>

using namespace light;

namespace {

/// After salvaging a crashed log, the counter table may stop short of (or
/// never reach) the accesses the recovered spans prove happened. Extend it
/// so the replay horizon covers every span: the final counter of a thread
/// is at least the last access any recovered span attributes to it.
void synthesizeHorizon(RecordingLog &Log) {
  ThreadId MaxThread = 0;
  auto Note = [&](ThreadId T) { MaxThread = std::max(MaxThread, T); };
  for (const DepSpan &S : Log.Spans) {
    Note(S.Thread);
    if (S.Src.valid())
      Note(S.Src.Thread);
  }
  for (const SyscallRecord &R : Log.Syscalls)
    Note(R.Thread);
  for (const SpawnRecord &R : Log.Spawns) {
    Note(R.Parent);
    Note(R.Child);
  }
  if (Log.FinalCounters.size() <= MaxThread)
    Log.FinalCounters.resize(MaxThread + 1, 0);
  for (const DepSpan &S : Log.Spans) {
    Log.FinalCounters[S.Thread] = std::max(Log.FinalCounters[S.Thread], S.Last);
    if (S.Src.valid())
      Log.FinalCounters[S.Src.Thread] =
          std::max(Log.FinalCounters[S.Src.Thread], S.Src.Count);
  }
}

} // namespace

TraceSegmentReader::TraceSegmentReader(const std::string &Path)
    : Cursor(Path) {
  if (!Cursor.ok()) {
    Report_.Error = Cursor.error();
    Done = true;
    CursorDone = true;
    return;
  }
  Ok = true;
  Report_.FormatVersion = Cursor.magic() == CompressedFileMagic ? 3 : 2;
  // ci.salvage_truncate: deterministically simulate a tear deeper than the
  // on-disk one by discarding the newest N validated segments. The drop
  // count comes from the companion param site so the clause's own `=N`
  // keeps its usual fire-on-Nth-hit meaning.
  fault::Injector &Faults = fault::Injector::global();
  if (Faults.shouldFire("ci.salvage_truncate")) {
    TruncateFired = true;
    HoldbackN = Faults.param("ci.salvage_truncate_segments", 1);
  }
}

bool TraceSegmentReader::decode(const std::vector<uint64_t> &Payload,
                                RecordingLog &Log) {
  return Report_.FormatVersion == 3 ? decodeSegmentCompressed(Payload, Log)
                                    : decodeSegmentWords(Payload, Log);
}

void TraceSegmentReader::pump() {
  while (!CursorDone && Holdback.size() <= HoldbackN) {
    switch (Cursor.next(Buf)) {
    case DurableLogCursor::Item::Segment:
      Holdback.push_back(Buf);
      continue;
    case DurableLogCursor::Item::CleanClose:
      SawCleanClose = true;
      CursorDone = true;
      break;
    case DurableLogCursor::Item::End:
      CursorDone = true;
      break;
    case DurableLogCursor::Item::TornTail:
      CursorDone = true;
      Report_.SegmentsDropped += 1;
      Report_.WordsDropped += Cursor.wordsDropped();
      break;
    }
  }
}

void TraceSegmentReader::dropHeldAndDrain() {
  for (const std::vector<uint64_t> &Seg : Holdback) {
    Report_.SegmentsDropped += 1;
    Report_.WordsDropped += Seg.size() + 3;
  }
  Holdback.clear();
  while (!CursorDone) {
    switch (Cursor.next(Buf)) {
    case DurableLogCursor::Item::Segment:
      Report_.SegmentsDropped += 1;
      Report_.WordsDropped += Buf.size() + 3;
      continue;
    case DurableLogCursor::Item::TornTail:
      Report_.SegmentsDropped += 1;
      Report_.WordsDropped += Cursor.wordsDropped();
      CursorDone = true;
      break;
    case DurableLogCursor::Item::CleanClose:
      SawCleanClose = true;
      CursorDone = true;
      break;
    case DurableLogCursor::Item::End:
      CursorDone = true;
      break;
    }
  }
}

bool TraceSegmentReader::next(RecordingLog &Log) {
  if (Done)
    return false;
  pump();
  if (Holdback.size() <= HoldbackN) {
    // Stream over. Whatever the holdback window still holds is exactly the
    // newest min(N, seen) validated segments: the simulated deeper tear.
    dropHeldAndDrain();
    Done = true;
    return false;
  }
  std::vector<uint64_t> Seg = std::move(Holdback.front());
  Holdback.pop_front();
  if (!decode(Seg, Log)) {
    // Checksummed but undecodable: cut from this segment on, keep the
    // decoded prefix (Log may hold the failed segment's partial sections,
    // same as the whole-file path always did).
    DecodeFailed = true;
    Report_.SegmentsDropped += 1;
    Report_.WordsDropped += Seg.size() + 3;
    dropHeldAndDrain();
    Done = true;
    return false;
  }
  ++Report_.SegmentsRecovered;
  return true;
}

void TraceSegmentReader::finish(RecordingLog &Log) {
  if (Finalized || !Ok)
    return;
  Finalized = true;
  Report_.CleanClose = SawCleanClose && !TruncateFired && !DecodeFailed;
  Report_.Salvaged = !Report_.CleanClose;
  Log.Guards.seal();
  if (Report_.Salvaged) {
    synthesizeHorizon(Log);
    obs::Registry::global()
        .counter("log.segments.salvaged")
        .add(Report_.SegmentsRecovered);
  }
}

//===- support/Statistics.cpp - Aggregate statistics helpers -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <numeric>

using namespace light;

double light::mean(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0;
  double Total = std::accumulate(Samples.begin(), Samples.end(), 0.0);
  return Total / static_cast<double>(Samples.size());
}

double light::median(std::vector<double> Samples) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  size_t N = Samples.size();
  if (N % 2 == 1)
    return Samples[N / 2];
  return (Samples[N / 2 - 1] + Samples[N / 2]) / 2.0;
}

Summary light::summarize(const std::vector<double> &Samples) {
  Summary S;
  if (Samples.empty())
    return S;
  S.Count = Samples.size();
  S.Average = mean(Samples);
  S.Median = median(Samples);
  S.Minimum = *std::min_element(Samples.begin(), Samples.end());
  S.Maximum = *std::max_element(Samples.begin(), Samples.end());
  return S;
}

//===- support/BinaryIO.cpp - Long-integer log serialization -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryIO.h"

#include <atomic>
#include <cassert>
#include <cstdlib>

using namespace light;

LongWriter::LongWriter(std::string PathIn, size_t FlushThresholdWords)
    : Path(std::move(PathIn)), FlushThreshold(FlushThresholdWords) {
  File = std::fopen(Path.c_str(), "wb");
  assert(File && "failed to open log file for writing");
  if (FlushThreshold)
    Buffer.reserve(FlushThreshold);
}

LongWriter::~LongWriter() {
  if (File)
    finish();
}

void LongWriter::flush() {
  if (!File || Buffer.empty())
    return;
  size_t Wrote =
      std::fwrite(Buffer.data(), sizeof(uint64_t), Buffer.size(), File);
  (void)Wrote;
  assert(Wrote == Buffer.size() && "short write while flushing log");
  std::fflush(File); // a flush must actually reach the OS
  Buffer.clear();
}

uint64_t LongWriter::finish() {
  if (File) {
    flush();
    std::fclose(File);
    File = nullptr;
  }
  return Written;
}

LongReader::LongReader(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return;
  Loaded = true;
  uint64_t Chunk[4096];
  size_t Got;
  while ((Got = std::fread(Chunk, sizeof(uint64_t), 4096, File)) > 0)
    Words.insert(Words.end(), Chunk, Chunk + Got);
  std::fclose(File);
}

uint64_t LongReader::get() {
  assert(Pos < Words.size() && "LongReader read past end of log");
  return Words[Pos++];
}

std::string light::makeTempPath(const std::string &Stem) {
  static std::atomic<uint64_t> Serial{0};
  const char *Dir = std::getenv("TMPDIR");
  std::string Base = Dir ? Dir : "/tmp";
  return Base + "/light-" + Stem + "-" +
         std::to_string(Serial.fetch_add(1, std::memory_order_relaxed)) +
         ".log";
}

//===- support/BinaryIO.cpp - Long-integer log serialization -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryIO.h"

#include "support/FaultInjection.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

using namespace light;

LongWriter::LongWriter(std::string PathIn, size_t FlushThresholdWords)
    : Path(std::move(PathIn)), FlushThreshold(FlushThresholdWords) {
  File = fault::Injector::global().shouldFire("io.open_fail")
             ? nullptr
             : std::fopen(Path.c_str(), "wb");
  if (!File) {
    Failed = true;
    Err = "cannot open log '" + Path + "' for writing: " + std::strerror(errno);
    return;
  }
  if (FlushThreshold)
    Buffer.reserve(FlushThreshold);
}

LongWriter::~LongWriter() {
  if (File)
    finish();
}

bool LongWriter::flush() {
  if (!File) {
    Buffer.clear();
    return !Failed;
  }
  if (Buffer.empty())
    return true;
  size_t ToWrite = Buffer.size();
  if (fault::Injector::global().shouldFire("io.short_write"))
    ToWrite /= 2;
  size_t Wrote = std::fwrite(Buffer.data(), sizeof(uint64_t), ToWrite, File);
  if (Wrote != Buffer.size()) {
    Failed = true;
    if (Err.empty())
      Err = "short write while flushing log '" + Path +
            "': " + std::strerror(errno);
    Buffer.clear();
    return false;
  }
  std::fflush(File); // a flush must actually reach the OS
  Buffer.clear();
  return true;
}

uint64_t LongWriter::finish() {
  if (File) {
    flush();
    std::FILE *F = File;
    File = nullptr;
    bool CloseFault = fault::Injector::global().shouldFire("io.close_fail");
    if (std::fclose(F) != 0 || CloseFault) {
      Failed = true;
      if (Err.empty())
        Err = "cannot close log '" + Path + "': " + std::strerror(errno);
    }
  }
  return Written;
}

LongReader::LongReader(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return;
  Loaded = true;
  uint64_t Chunk[4096];
  size_t Got;
  while ((Got = std::fread(Chunk, sizeof(uint64_t), 4096, File)) > 0)
    Words.insert(Words.end(), Chunk, Chunk + Got);
  std::fclose(File);
}

std::string light::makeTempPath(const std::string &Stem) {
  static std::atomic<uint64_t> Serial{0};
  const char *Dir = std::getenv("TMPDIR");
  std::string Base = Dir ? Dir : "/tmp";
  // The PID keeps concurrent processes (forked crashtest children, parallel
  // ctest shards) from racing to the same name; the serial separates calls
  // within one process.
  return Base + "/light-" + Stem + "-p" + std::to_string(::getpid()) + "-" +
         std::to_string(Serial.fetch_add(1, std::memory_order_relaxed)) +
         ".log";
}

//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seedable fault-injection framework. Named injection
/// sites are threaded through the I/O layer, the durable epoch log, the SMT
/// layer, and the interpreter; a spec string (from the LIGHT_FAULT
/// environment variable or a --fault flag) arms them. With no spec armed the
/// per-site check is one relaxed atomic load of a process-global bool, so
/// shipping the sites compiled-in costs nothing measurable.
///
/// Spec grammar (clauses separated by ',' or ';'):
///
///   spec   := clause (( ',' | ';' ) clause)*
///   clause := site                  fire on every hit
///           | site '=' N            fire on the Nth hit only (1-based)
///           | site '=' N '+'        fire on every hit from the Nth on
///           | site '=' 'p' F        fire each hit with probability F,
///                                   drawn from the seeded generator
///           | 'seed' '=' N          seed for probabilistic clauses
///
/// Examples:
///   LIGHT_FAULT=io.open_fail                 every open fails
///   LIGHT_FAULT=log.crash_at_epoch=3         hard-kill the log at epoch 3
///   LIGHT_FAULT=io.short_write=p0.01,seed=7  1% torn writes, deterministic
///
/// The canonical site names (call sites document theirs):
///   io.open_fail, io.short_write, io.close_fail      support/BinaryIO,
///                                                    support/DurableLog
///   io.dirsync_fail                                  support/DurableLog
///   log.crash_at_epoch, log.torn_bytes               support/DurableLog
///   solver.timeout, solver.z3_unavailable            smt/
///   interp.thread_crash                              interp/Machine
///   obs.perf_open_fail                               obs/PerfCounters
///   ci.watchdog_fire                                 support/Watchdog
///   ci.spawn_fail, ci.kill_child.start,              ci/Sandbox,
///   ci.kill_child.record, ci.kill_child.flush        ci/CiOrchestrator
///   ci.salvage_truncate                              trace/RecordingLog
///   ci.explore_timeout, ci.shrink_timeout,           ci/CiOrchestrator
///   ci.verify_diverge
///   dist.drop_msg, dist.dup_msg, dist.reorder        runtime/
///                                                    ChannelTransport
///   dist.kill_node.start, dist.kill_node.mid,        dist/DistRunner
///   dist.kill_node.flush                             (N selects the
///                                                    1-based target
///                                                    node, not a hit
///                                                    count)
///
/// Every fired fault bumps the `fault.injected.<site>` counter in the
/// light_obs metrics registry, so --metrics-json captures the injection
/// history of a run.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_FAULTINJECTION_H
#define LIGHT_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace light {
namespace fault {

/// The process-wide fault injector. All methods are thread-safe; the
/// disabled fast path is a single relaxed load.
class Injector {
public:
  /// The process-wide instance. On first use it arms itself from the
  /// LIGHT_FAULT environment variable (if set).
  static Injector &global();

  Injector();
  ~Injector();
  Injector(const Injector &) = delete;
  Injector &operator=(const Injector &) = delete;

  /// Parses and arms \p Spec (replacing any previous configuration).
  /// Returns an empty string on success, else a description of the first
  /// syntax error (the injector is left disarmed).
  std::string configure(const std::string &Spec);

  /// Disarms every site and resets hit counts.
  void reset();

  /// True when at least one clause is armed.
  bool enabled() const { return Armed.load(std::memory_order_relaxed); }

  /// Records a hit on \p Site and reports whether the armed clause (if any)
  /// fires on this hit. Unarmed sites return false without counting.
  bool shouldFire(std::string_view Site) {
    if (!enabled())
      return false;
    return shouldFireSlow(Site);
  }

  /// The numeric argument of \p Site's clause (N in `site=N`), or
  /// \p Default when the site is unarmed or argumentless. Does not count as
  /// a hit.
  uint64_t param(std::string_view Site, uint64_t Default) const;

  /// True when a clause for \p Site is armed. Does not count as a hit.
  bool armed(std::string_view Site) const;

  /// Total fires across all sites since the last configure()/reset().
  uint64_t firesTotal() const;

private:
  struct Impl;
  Impl *I;
  std::atomic<bool> Armed{false};

  bool shouldFireSlow(std::string_view Site);
};

} // namespace fault
} // namespace light

#endif // LIGHT_SUPPORT_FAULTINJECTION_H

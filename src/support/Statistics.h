//===- support/Statistics.h - Aggregate statistics helpers -----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate statistics (average / median / min / max) over a sample set.
/// The evaluation section of the paper reports exactly these four aggregates
/// for both time overhead (Section 5.2) and space consumption, so the bench
/// harness funnels every per-benchmark measurement through this helper.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_STATISTICS_H
#define LIGHT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace light {

/// Four-number summary of a sample set, matching the aggregate rows the
/// paper reports in Section 5.2.
struct Summary {
  double Average = 0;
  double Median = 0;
  double Minimum = 0;
  double Maximum = 0;
  size_t Count = 0;
};

/// Computes the average/median/min/max summary of \p Samples.
/// An empty sample set yields an all-zero summary.
Summary summarize(const std::vector<double> &Samples);

/// Returns the arithmetic mean of \p Samples (0 for an empty set).
double mean(const std::vector<double> &Samples);

/// Returns the median of \p Samples (0 for an empty set). For an even count
/// the average of the two middle elements is returned.
double median(std::vector<double> Samples);

} // namespace light

#endif // LIGHT_SUPPORT_STATISTICS_H

//===- support/DurableLog.h - Checksummed segmented log files ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LIGHT002 on-disk container: a fixed header word followed by
/// length-framed, CRC32C-checksummed segments of 64-bit words. The recorder
/// appends one segment per epoch (and flushes it to the OS immediately), so
/// a process that is SIGKILL'd or crashes mid-run leaves a file whose valid
/// prefix is exactly the epochs that completed — scanDurableLog() recovers
/// that prefix and reports how much of the tail was torn.
///
/// Layout (all 64-bit little-endian words):
///
///   word 0:            file magic "LIGHT002"
///   per segment:       [segment magic "LSEGMENT"]
///                      [N = payload word count]
///                      [meta = (sequence number << 32) | CRC32C(payload)]
///                      [N payload words]
///   clean close:       a zero-payload segment (N == 0) written by
///                      closeClean(); its absence marks a crashed producer.
///
/// The segment payload is opaque at this layer; trace/RecordingLog defines
/// the section encoding it stores inside.
///
/// Fault-injection sites honored here (support/FaultInjection.h):
///   io.open_fail        constructor fails as if open(2) did
///   io.short_write      a segment write is torn mid-way and reports failure
///   io.close_fail       closeClean() fails as if fclose(3) did
///   io.dirsync_fail     the parent-directory fsync after file creation
///                       fails as if fsync(2) did — the crash window where
///                       the file's directory entry itself is lost
///   log.crash_at_epoch  the Nth writeSegment() simulates a hard kill: a few
///                       torn bytes of the segment reach the disk
///                       (log.torn_bytes, default 12) and every later write
///                       is silently lost, exactly like SIGKILL
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_DURABLELOG_H
#define LIGHT_SUPPORT_DURABLELOG_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace light {

/// Magic words of the LIGHT002 container.
constexpr uint64_t DurableFileMagic = 0x4c49474854303032ull;    // "LIGHT002"
constexpr uint64_t DurableSegmentMagic = 0x4c5345474d454e54ull; // "LSEGMENT"

/// LIGHT003 reuses this container byte-for-byte — same framing, checksums,
/// sequence numbers, clean-close marker, and salvage rules — under a
/// different file magic; only the segment payload encoding changes (a varint
/// byte stream, defined by trace/SegmentCodec). The container layer accepts
/// either magic when scanning.
constexpr uint64_t CompressedFileMagic = 0x4c49474854303033ull; // "LIGHT003"

/// Appends checksummed segments to a log file, flushing each one to the OS
/// so completed epochs survive the producer's death.
class DurableLogWriter {
public:
  /// Opens \p Path and writes the file header. \p Magic selects the
  /// container flavor (LIGHT002 words or LIGHT003 compressed payloads).
  explicit DurableLogWriter(std::string Path,
                            uint64_t Magic = DurableFileMagic);
  ~DurableLogWriter();

  DurableLogWriter(const DurableLogWriter &) = delete;
  DurableLogWriter &operator=(const DurableLogWriter &) = delete;

  bool ok() const { return Ok; }
  const std::string &error() const { return Err; }
  const std::string &path() const { return Path; }

  /// Appends one framed, checksummed segment and flushes it. Returns false
  /// on I/O failure (error() describes it). After a simulated hard kill
  /// (log.crash_at_epoch) the call returns true but the data is lost, just
  /// as a real SIGKILL would lose it.
  bool writeSegment(const uint64_t *Words, size_t N);
  bool writeSegment(const std::vector<uint64_t> &Words) {
    return writeSegment(Words.data(), Words.size());
  }

  /// Writes the clean-close marker segment and closes the file. Returns
  /// false on failure.
  bool closeClean();

  /// Closes the file without the clean-close marker — the error/crash path.
  void abandon();

  /// Segments durably written (excludes anything after a simulated kill).
  uint64_t segmentsWritten() const { return Segments; }

  /// Total words written including framing.
  uint64_t wordsWritten() const { return Words; }

  /// True once a log.crash_at_epoch fault has fired on this writer.
  bool crashed() const { return Dead; }

private:
  std::string Path;
  std::FILE *File = nullptr;
  bool Ok = false;
  bool Dead = false;
  std::string Err;
  uint64_t Segments = 0;
  uint64_t Words = 0;

  void fail(const std::string &What);
};

/// Streams the segments of a LIGHT002/LIGHT003 container one at a time,
/// holding at most one segment payload in memory. This is the bounded-memory
/// counterpart of scanDurableLog() (which is now a thin wrapper): a
/// 10^8-access recording is gigabytes on disk, and both the offline solver
/// and CI salvage of a torn log must walk it without materializing it.
///
/// Validation is identical to the whole-file scan — framing magic, payload
/// length against the real file size, sequence numbers, CRC32C — and stops
/// at the first invalid segment, reporting everything from there on as the
/// torn tail.
class DurableLogCursor {
public:
  explicit DurableLogCursor(const std::string &Path);
  ~DurableLogCursor();

  DurableLogCursor(const DurableLogCursor &) = delete;
  DurableLogCursor &operator=(const DurableLogCursor &) = delete;

  /// False when the file could not be opened or lacks a recognized magic;
  /// error() says why.
  bool ok() const { return HeaderOk; }
  const std::string &error() const { return Err; }

  /// The file magic word (DurableFileMagic or CompressedFileMagic).
  uint64_t magic() const { return Magic; }

  /// What next() found.
  enum class Item {
    Segment,    ///< one valid payload delivered
    CleanClose, ///< trailing clean-close marker: producer finished
    TornTail,   ///< invalid frame/checksum: tail counted, stream over
    End,        ///< exact end of file with no clean-close marker
  };

  /// Advances to the next segment, filling \p Payload (reused, resized)
  /// when it returns Item::Segment. After TornTail/CleanClose/End the
  /// stream is exhausted and further calls return the same terminal item.
  Item next(std::vector<uint64_t> &Payload);

  /// Valid segments delivered so far.
  uint64_t segmentsRead() const { return Segments; }

  /// Words in the torn tail (nonzero only after Item::TornTail).
  uint64_t wordsDropped() const { return Dropped; }

private:
  std::FILE *File = nullptr;
  bool HeaderOk = false;
  uint64_t Magic = 0;
  std::string Err;
  uint64_t TotalWords = 0; ///< file size in whole words (torn byte dropped)
  uint64_t Pos = 0;        ///< words consumed
  uint64_t Segments = 0;
  uint64_t Dropped = 0;
  Item Terminal = Item::End;
  bool Done = false;

  Item finish(Item I);
};

/// Result of scanning a LIGHT002 file: the longest valid segment prefix.
struct SegmentScan {
  bool HeaderOk = false; ///< file opened and carried the LIGHT002 magic
  bool Clean = false;    ///< trailing clean-close marker present, no tail
  std::vector<std::vector<uint64_t>> Segments; ///< valid payloads, in order
  uint64_t SegmentsDropped = 0; ///< 1 when a torn/corrupt tail was cut
  uint64_t WordsDropped = 0;    ///< words discarded with the tail
  std::string Error;            ///< empty unless HeaderOk is false

  /// Total payload words recovered.
  uint64_t wordsRecovered() const {
    uint64_t N = 0;
    for (const auto &S : Segments)
      N += S.size();
    return N;
  }
};

/// Scans \p Path, validating framing, sequence numbers, and checksums.
/// Stops at the first invalid segment: everything before it is returned as
/// the recovered prefix, everything from it on is counted as dropped. Never
/// fails on corrupt input — corruption just shortens the prefix.
SegmentScan scanDurableLog(const std::string &Path);

} // namespace light

#endif // LIGHT_SUPPORT_DURABLELOG_H

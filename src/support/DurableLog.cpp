//===- support/DurableLog.cpp - Checksummed segmented log files -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/DurableLog.h"

#include "support/Crc32.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace light;

namespace {

/// fsyncs the directory holding \p Path so the freshly created file's
/// directory entry itself is durable. A crash between creating a log file
/// and the directory flush would otherwise leave a file the salvage path
/// cannot even find — data safely on disk, name gone. Returns false on
/// failure (or when the io.dirsync_fail fault fires).
bool syncParentDir(const std::string &Path) {
  if (fault::Injector::global().shouldFire("io.dirsync_fail")) {
    errno = 0;
    return false;
  }
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? std::string(".")
                                               : Path.substr(0, Slash + 1);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

} // namespace

void DurableLogWriter::fail(const std::string &What) {
  Ok = false;
  // errno is 0 when the failure was injected rather than real.
  if (Err.empty())
    Err = What + " '" + Path + "'" +
          (errno ? std::string(": ") + std::strerror(errno) : std::string());
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

DurableLogWriter::DurableLogWriter(std::string PathIn, uint64_t Magic)
    : Path(std::move(PathIn)) {
  fault::Injector &Faults = fault::Injector::global();
  File = Faults.shouldFire("io.open_fail") ? nullptr
                                           : std::fopen(Path.c_str(), "wb");
  if (!File) {
    fail("cannot open durable log");
    return;
  }
  Ok = true;
  if (std::fwrite(&Magic, sizeof(Magic), 1, File) != 1) {
    fail("cannot write durable log header to");
    return;
  }
  std::fflush(File);
  // The segments themselves only need to reach the OS (fflush) — the salvage
  // guarantee is against process death, not power loss. The directory entry
  // is different: without fsyncing the parent directory a crash right after
  // creation can lose the *name*, and with it everything salvage depends on.
  if (!syncParentDir(Path)) {
    fail("cannot sync parent directory of");
    return;
  }
  ++Words;
}

DurableLogWriter::~DurableLogWriter() {
  if (File)
    abandon();
}

bool DurableLogWriter::writeSegment(const uint64_t *Payload, size_t N) {
  if (Dead)
    return true; // the simulated-killed process "keeps writing" into the void
  if (!Ok)
    return false;

  uint64_t Frame[3] = {DurableSegmentMagic, N,
                       (Segments << 32) |
                           crc32c(Payload, N * sizeof(uint64_t))};

  fault::Injector &Faults = fault::Injector::global();
  if (Faults.shouldFire("log.crash_at_epoch")) {
    // Simulated hard kill mid-write: a few bytes of the segment reach the
    // disk, then the "process" is gone — later writes are silently lost.
    size_t TornBytes = Faults.param("log.torn_bytes", 12);
    size_t FrameBytes = TornBytes < sizeof(Frame) ? TornBytes : sizeof(Frame);
    std::fwrite(Frame, 1, FrameBytes, File);
    if (TornBytes > sizeof(Frame))
      std::fwrite(Payload, 1, TornBytes - sizeof(Frame), File);
    std::fflush(File);
    Dead = true;
    return true;
  }

  bool Short = Faults.shouldFire("io.short_write");
  if (std::fwrite(Frame, sizeof(uint64_t), 3, File) != 3) {
    fail("short write to durable log");
    return false;
  }
  size_t ToWrite = Short ? N / 2 : N;
  // The clean-close marker has no payload; fwrite requires non-null even
  // for zero items.
  size_t Wrote =
      ToWrite ? std::fwrite(Payload, sizeof(uint64_t), ToWrite, File) : 0;
  if (Short || Wrote != N) {
    std::fflush(File);
    fail("short write to durable log");
    return false;
  }
  std::fflush(File);
  Words += 3 + N;
  ++Segments;
  return true;
}

bool DurableLogWriter::closeClean() {
  if (Dead) {
    abandon();
    return true;
  }
  if (!Ok)
    return false;
  if (!writeSegment(nullptr, 0))
    return false;
  std::FILE *F = File;
  File = nullptr;
  bool CloseFailed = fault::Injector::global().shouldFire("io.close_fail");
  if (std::fclose(F) != 0 || CloseFailed) {
    Ok = false;
    if (Err.empty())
      Err = "cannot close durable log '" + Path + "'";
    return false;
  }
  return true;
}

void DurableLogWriter::abandon() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Streaming cursor
//===----------------------------------------------------------------------===//

DurableLogCursor::DurableLogCursor(const std::string &Path) {
  File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Err = "cannot open '" + Path + "'";
    return;
  }
  // Size the stream up front so payload lengths can be validated before
  // allocating — a corrupt length word must tear the tail, not trigger a
  // multi-gigabyte allocation. Whole words only: a torn trailing partial
  // word is dropped, exactly as fread with 8-byte items used to drop it.
  long Start = std::ftell(File);
  if (Start != 0 || std::fseek(File, 0, SEEK_END) != 0) {
    Err = "cannot size '" + Path + "'";
    std::fclose(File);
    File = nullptr;
    return;
  }
  long Bytes = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  TotalWords = Bytes > 0 ? static_cast<uint64_t>(Bytes) / sizeof(uint64_t) : 0;

  if (TotalWords < 1 ||
      std::fread(&Magic, sizeof(Magic), 1, File) != 1 ||
      (Magic != DurableFileMagic && Magic != CompressedFileMagic)) {
    Err = "'" + Path + "' is not a LIGHT002 durable log";
    std::fclose(File);
    File = nullptr;
    return;
  }
  HeaderOk = true;
  Pos = 1;
}

DurableLogCursor::~DurableLogCursor() {
  if (File)
    std::fclose(File);
}

DurableLogCursor::Item DurableLogCursor::finish(Item I) {
  Done = true;
  Terminal = I;
  if (I == Item::TornTail)
    Dropped = TotalWords - Pos;
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  return I;
}

DurableLogCursor::Item DurableLogCursor::next(std::vector<uint64_t> &Payload) {
  if (Done || !HeaderOk)
    return Done ? Terminal : Item::End;

  uint64_t Remaining = TotalWords - Pos;
  if (Remaining == 0)
    return finish(Item::End);
  if (Remaining < 3)
    return finish(Item::TornTail);

  uint64_t Frame[3];
  if (std::fread(Frame, sizeof(uint64_t), 3, File) != 3)
    return finish(Item::TornTail);
  uint64_t N = Frame[1];
  uint64_t Seq = Frame[2] >> 32;
  uint32_t Crc = static_cast<uint32_t>(Frame[2]);
  if (Frame[0] != DurableSegmentMagic || N > Remaining - 3 || Seq != Segments)
    return finish(Item::TornTail);

  Payload.resize(N);
  if (N && std::fread(Payload.data(), sizeof(uint64_t), N, File) != N)
    return finish(Item::TornTail);
  // Empty payloads checksum a valid (unread) pointer: a freshly-constructed
  // vector's data() may be null.
  if (crc32c(N ? Payload.data() : Frame, N * sizeof(uint64_t)) != Crc)
    return finish(Item::TornTail);

  if (N == 0 && Pos + 3 == TotalWords)
    return finish(Item::CleanClose);

  Pos += 3 + N;
  ++Segments;
  return Item::Segment;
}

SegmentScan light::scanDurableLog(const std::string &Path) {
  SegmentScan Out;
  DurableLogCursor Cursor(Path);
  if (!Cursor.ok()) {
    Out.Error = Cursor.error();
    return Out;
  }
  Out.HeaderOk = true;
  std::vector<uint64_t> Payload;
  for (;;) {
    switch (Cursor.next(Payload)) {
    case DurableLogCursor::Item::Segment:
      Out.Segments.push_back(Payload);
      continue;
    case DurableLogCursor::Item::CleanClose:
      Out.Clean = true;
      return Out;
    case DurableLogCursor::Item::TornTail:
      Out.SegmentsDropped = 1;
      Out.WordsDropped = Cursor.wordsDropped();
      return Out;
    case DurableLogCursor::Item::End:
      return Out;
    }
  }
}

//===- support/DurableLog.cpp - Checksummed segmented log files -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/DurableLog.h"

#include "support/Crc32.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace light;

namespace {

/// fsyncs the directory holding \p Path so the freshly created file's
/// directory entry itself is durable. A crash between creating a log file
/// and the directory flush would otherwise leave a file the salvage path
/// cannot even find — data safely on disk, name gone. Returns false on
/// failure (or when the io.dirsync_fail fault fires).
bool syncParentDir(const std::string &Path) {
  if (fault::Injector::global().shouldFire("io.dirsync_fail")) {
    errno = 0;
    return false;
  }
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? std::string(".")
                                               : Path.substr(0, Slash + 1);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

} // namespace

void DurableLogWriter::fail(const std::string &What) {
  Ok = false;
  // errno is 0 when the failure was injected rather than real.
  if (Err.empty())
    Err = What + " '" + Path + "'" +
          (errno ? std::string(": ") + std::strerror(errno) : std::string());
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

DurableLogWriter::DurableLogWriter(std::string PathIn)
    : Path(std::move(PathIn)) {
  fault::Injector &Faults = fault::Injector::global();
  File = Faults.shouldFire("io.open_fail") ? nullptr
                                           : std::fopen(Path.c_str(), "wb");
  if (!File) {
    fail("cannot open durable log");
    return;
  }
  Ok = true;
  uint64_t Magic = DurableFileMagic;
  if (std::fwrite(&Magic, sizeof(Magic), 1, File) != 1) {
    fail("cannot write durable log header to");
    return;
  }
  std::fflush(File);
  // The segments themselves only need to reach the OS (fflush) — the salvage
  // guarantee is against process death, not power loss. The directory entry
  // is different: without fsyncing the parent directory a crash right after
  // creation can lose the *name*, and with it everything salvage depends on.
  if (!syncParentDir(Path)) {
    fail("cannot sync parent directory of");
    return;
  }
  ++Words;
}

DurableLogWriter::~DurableLogWriter() {
  if (File)
    abandon();
}

bool DurableLogWriter::writeSegment(const uint64_t *Payload, size_t N) {
  if (Dead)
    return true; // the simulated-killed process "keeps writing" into the void
  if (!Ok)
    return false;

  uint64_t Frame[3] = {DurableSegmentMagic, N,
                       (Segments << 32) |
                           crc32c(Payload, N * sizeof(uint64_t))};

  fault::Injector &Faults = fault::Injector::global();
  if (Faults.shouldFire("log.crash_at_epoch")) {
    // Simulated hard kill mid-write: a few bytes of the segment reach the
    // disk, then the "process" is gone — later writes are silently lost.
    size_t TornBytes = Faults.param("log.torn_bytes", 12);
    size_t FrameBytes = TornBytes < sizeof(Frame) ? TornBytes : sizeof(Frame);
    std::fwrite(Frame, 1, FrameBytes, File);
    if (TornBytes > sizeof(Frame))
      std::fwrite(Payload, 1, TornBytes - sizeof(Frame), File);
    std::fflush(File);
    Dead = true;
    return true;
  }

  bool Short = Faults.shouldFire("io.short_write");
  if (std::fwrite(Frame, sizeof(uint64_t), 3, File) != 3) {
    fail("short write to durable log");
    return false;
  }
  size_t ToWrite = Short ? N / 2 : N;
  // The clean-close marker has no payload; fwrite requires non-null even
  // for zero items.
  size_t Wrote =
      ToWrite ? std::fwrite(Payload, sizeof(uint64_t), ToWrite, File) : 0;
  if (Short || Wrote != N) {
    std::fflush(File);
    fail("short write to durable log");
    return false;
  }
  std::fflush(File);
  Words += 3 + N;
  ++Segments;
  return true;
}

bool DurableLogWriter::closeClean() {
  if (Dead) {
    abandon();
    return true;
  }
  if (!Ok)
    return false;
  if (!writeSegment(nullptr, 0))
    return false;
  std::FILE *F = File;
  File = nullptr;
  bool CloseFailed = fault::Injector::global().shouldFire("io.close_fail");
  if (std::fclose(F) != 0 || CloseFailed) {
    Ok = false;
    if (Err.empty())
      Err = "cannot close durable log '" + Path + "'";
    return false;
  }
  return true;
}

void DurableLogWriter::abandon() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

SegmentScan light::scanDurableLog(const std::string &Path) {
  SegmentScan Out;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Out.Error = "cannot open '" + Path + "'";
    return Out;
  }
  // fread with 8-byte items drops a torn trailing partial word on its own.
  std::vector<uint64_t> W;
  uint64_t Chunk[4096];
  size_t Got;
  while ((Got = std::fread(Chunk, sizeof(uint64_t), 4096, File)) > 0)
    W.insert(W.end(), Chunk, Chunk + Got);
  std::fclose(File);

  if (W.empty() || W[0] != DurableFileMagic) {
    Out.Error = "'" + Path + "' is not a LIGHT002 durable log";
    return Out;
  }
  Out.HeaderOk = true;

  size_t Pos = 1;
  while (Pos < W.size()) {
    size_t Remaining = W.size() - Pos;
    bool SawCompleteSegment = false;
    if (Remaining >= 3 && W[Pos] == DurableSegmentMagic) {
      uint64_t N = W[Pos + 1];
      uint64_t Meta = W[Pos + 2];
      uint64_t Seq = Meta >> 32;
      uint32_t Crc = static_cast<uint32_t>(Meta);
      if (N <= Remaining - 3 && Seq == Out.Segments.size() &&
          crc32c(W.data() + Pos + 3, N * sizeof(uint64_t)) == Crc) {
        if (N == 0 && Pos + 3 == W.size()) {
          // Trailing clean-close marker.
          Out.Clean = true;
          return Out;
        }
        Out.Segments.emplace_back(W.begin() + Pos + 3,
                                  W.begin() + Pos + 3 + N);
        Pos += 3 + N;
        SawCompleteSegment = true;
      }
    }
    if (!SawCompleteSegment) {
      // Torn or corrupt tail: cut it, keep the validated prefix.
      Out.SegmentsDropped = 1;
      Out.WordsDropped = W.size() - Pos;
      return Out;
    }
  }
  return Out;
}

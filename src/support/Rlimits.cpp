//===- support/Rlimits.cpp - Child-process resource limits ----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/Rlimits.h"

#include <cerrno>
#include <cstring>

#include <sys/resource.h>

using namespace light;

bool light::builtWithSanitizers() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

std::string light::applyChildLimits(const ChildLimits &Limits) {
  auto Apply = [](int Resource, uint64_t Value, const char *Name) {
    struct rlimit RL;
    RL.rlim_cur = static_cast<rlim_t>(Value);
    RL.rlim_max = static_cast<rlim_t>(Value);
    if (::setrlimit(Resource, &RL) != 0)
      return std::string("setrlimit(") + Name +
             "): " + std::strerror(errno);
    return std::string();
  };
  if (Limits.CpuSeconds) {
    std::string Err = Apply(RLIMIT_CPU, Limits.CpuSeconds, "RLIMIT_CPU");
    if (!Err.empty())
      return Err;
  }
  if (Limits.MemoryBytes && !builtWithSanitizers()) {
    std::string Err = Apply(RLIMIT_AS, Limits.MemoryBytes, "RLIMIT_AS");
    if (!Err.empty())
      return Err;
  }
  return std::string();
}

uint64_t light::peakRssBytes() {
  struct rusage RU;
  if (::getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<uint64_t>(RU.ru_maxrss) * 1024;
}

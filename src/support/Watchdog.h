//===- support/Watchdog.h - Monotonic deadline watchdog ---------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic-clock watchdog for the resilient CI pipeline. One Watchdog
/// owns one background thread that waits on two independent timers:
///
///  * an absolute *deadline* (steady_clock, immune to wall-clock steps), and
///  * a *no-progress* window that kick() keeps pushing forward — a stage
///    that stops calling kick() is declared hung even while it still burns
///    CPU.
///
/// When either expires the OnFire callback runs exactly once on the
/// watchdog thread (typical callbacks: SIGKILL a sandboxed child, set an
/// abort flag a search loop polls). cancel()/destruction stops the thread
/// without firing; both are safe to call after a fire.
///
/// Belt-and-braces: a sandboxed child can additionally arm the in-process
/// SIGALRM fallback (armSigalrmFallback) so it dies even if the parent —
/// and with it the watchdog thread — is gone.
///
/// Fault site (support/FaultInjection.h):
///   ci.watchdog_fire   the watchdog fires immediately on start, before any
///                      timer elapses — the deterministic hang-edge test
///
/// Every fire bumps the `watchdog.fires` counter.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_WATCHDOG_H
#define LIGHT_SUPPORT_WATCHDOG_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace light {

/// Deadline + no-progress watchdog over one background thread.
class Watchdog {
public:
  enum class FireReason { None, Deadline, NoProgress, FaultInjected };

  struct Options {
    /// Absolute budget from start() in seconds; 0 disables the deadline.
    double DeadlineSeconds = 0;
    /// Maximum seconds between kick() calls; 0 disables progress tracking.
    double NoProgressSeconds = 0;
    /// Runs once on the watchdog thread when a timer expires.
    std::function<void()> OnFire;
  };

  explicit Watchdog(Options Opts);
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Records progress: pushes the no-progress window forward.
  void kick();

  /// Stops the watchdog without firing (no-op after a fire).
  void cancel();

  /// True once OnFire ran (or was due — the callback may be empty).
  bool fired() const;

  /// Why the watchdog fired; None while it has not.
  FireReason reason() const;

  /// Arms a plain alarm(2) whose default SIGALRM disposition kills the
  /// calling process after ceil(\p Seconds). For forked children: the
  /// kernel delivers it even when the parent that owns the Watchdog is
  /// gone. Pass 0 to cancel a pending alarm.
  static void armSigalrmFallback(double Seconds);

private:
  Options Opts;
  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::thread Thread;
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point LastKick;
  bool Stop = false;
  bool Fired = false;
  FireReason Why = FireReason::None;

  void loop();
};

} // namespace light

#endif // LIGHT_SUPPORT_WATCHDOG_H

//===- support/Table.cpp - Plain-text table rendering --------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdint>
#include <cstdio>

using namespace light;

Table::Table(std::vector<std::string> Header) : NumCols(Header.size()) {
  assert(NumCols > 0 && "a table needs at least one column");
  Rows.push_back(std::move(Header));
  addSeparator();
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == NumCols && "row arity must match the header");
  Rows.push_back(std::move(Cells));
}

void Table::addSeparator() { Rows.push_back({}); }

std::string Table::render() const {
  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  std::string Out;
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      // Separator.
      for (size_t I = 0; I < NumCols; ++I) {
        Out += (I == 0 ? "+" : "+");
        Out.append(Widths[I] + 2, '-');
      }
      Out += "+\n";
      continue;
    }
    for (size_t I = 0; I < NumCols; ++I) {
      Out += "| ";
      Out += Row[I];
      Out.append(Widths[I] - Row[I].size() + 1, ' ');
    }
    Out += "|\n";
  }
  return Out;
}

std::string Table::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string Table::fmtInt(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count && Count % 3 == 0)
      Out.insert(Out.begin(), ',');
    Out.insert(Out.begin(), *It);
    ++Count;
  }
  return Out;
}

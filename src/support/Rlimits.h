//===- support/Rlimits.h - Child-process resource limits --------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// setrlimit(2) helpers the CI sandbox applies inside a freshly forked
/// child, before it touches the program under test: a CPU-time ceiling
/// (SIGXCPU/SIGKILL from the kernel — the last line of defense behind the
/// parent's Watchdog) and an address-space ceiling that turns a runaway
/// allocation into a catchable failure instead of taking the host down.
///
/// The address-space limit is skipped in sanitizer builds: ASan/TSan
/// reserve terabytes of shadow address space up front, so any useful
/// RLIMIT_AS value would kill the child before it ran a single
/// instruction.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_RLIMITS_H
#define LIGHT_SUPPORT_RLIMITS_H

#include <cstdint>
#include <string>

namespace light {

/// Resource ceilings for a sandboxed child. Zero disables a limit.
struct ChildLimits {
  /// RLIMIT_CPU in seconds (kernel sends SIGXCPU at the soft limit).
  uint64_t CpuSeconds = 0;
  /// RLIMIT_AS in bytes (allocations beyond it fail). Ignored under
  /// sanitizers — see the file comment.
  uint64_t MemoryBytes = 0;
};

/// True when this binary is built under ASan or TSan (the builds where
/// RLIMIT_AS must not be applied).
bool builtWithSanitizers();

/// Applies \p Limits to the calling process. Returns an empty string on
/// success, else a description of the first setrlimit failure.
std::string applyChildLimits(const ChildLimits &Limits);

/// Peak resident set size of the calling process in bytes (getrusage).
uint64_t peakRssBytes();

} // namespace light

#endif // LIGHT_SUPPORT_RLIMITS_H

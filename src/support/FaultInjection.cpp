//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "obs/Metrics.h"

#include <cstdlib>
#include <mutex>
#include <vector>

using namespace light;
using namespace light::fault;

namespace {

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

} // namespace

struct Injector::Impl {
  enum class Mode { Always, Nth, FromNth, Prob };

  struct Rule {
    std::string Site;
    Mode How = Mode::Always;
    uint64_t N = 0;      ///< hit threshold for Nth/FromNth; raw param value
    double P = 0;        ///< probability for Prob
    uint64_t Hits = 0;
    uint64_t Fires = 0;
    obs::Counter FiredMetric; ///< fault.injected.<site>
  };

  std::mutex M;
  std::vector<Rule> Rules;
  uint64_t RngState = 0x5eedfau;
  uint64_t TotalFires = 0;

  Rule *find(std::string_view Site) {
    for (Rule &R : Rules)
      if (R.Site == Site)
        return &R;
    return nullptr;
  }
};

Injector::Injector() : I(new Impl) {}
Injector::~Injector() { delete I; }

Injector &Injector::global() {
  static Injector *G = [] {
    Injector *Inj = new Injector; // intentionally leaked; outlives exit
    if (const char *Spec = std::getenv("LIGHT_FAULT"))
      Inj->configure(Spec);
    return Inj;
  }();
  return *G;
}

std::string Injector::configure(const std::string &Spec) {
  std::lock_guard<std::mutex> Guard(I->M);
  I->Rules.clear();
  I->TotalFires = 0;
  I->RngState = 0x5eedfau;
  Armed.store(false, std::memory_order_relaxed);

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find_first_of(",;", Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Clause = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    // Trim surrounding spaces.
    size_t B = Clause.find_first_not_of(" \t");
    size_t E = Clause.find_last_not_of(" \t");
    if (B == std::string::npos)
      continue;
    Clause = Clause.substr(B, E - B + 1);

    size_t Eq = Clause.find('=');
    std::string Site = Clause.substr(0, Eq);
    std::string Arg = Eq == std::string::npos ? "" : Clause.substr(Eq + 1);
    if (Site.empty())
      return "fault spec: empty site name in clause '" + Clause + "'";

    if (Site == "seed") {
      char *EndP = nullptr;
      uint64_t Seed = std::strtoull(Arg.c_str(), &EndP, 10);
      if (Arg.empty() || *EndP)
        return "fault spec: seed wants an integer, got '" + Arg + "'";
      I->RngState = Seed ^ 0x5eedfau;
      continue;
    }

    Impl::Rule R;
    R.Site = Site;
    if (Arg.empty()) {
      R.How = Impl::Mode::Always;
    } else if (Arg[0] == 'p') {
      char *EndP = nullptr;
      R.P = std::strtod(Arg.c_str() + 1, &EndP);
      if (EndP == Arg.c_str() + 1 || *EndP || R.P < 0 || R.P > 1)
        return "fault spec: '" + Site + "' wants p<0..1>, got '" + Arg + "'";
      R.How = Impl::Mode::Prob;
    } else {
      bool From = Arg.back() == '+';
      std::string Num = From ? Arg.substr(0, Arg.size() - 1) : Arg;
      char *EndP = nullptr;
      R.N = std::strtoull(Num.c_str(), &EndP, 10);
      if (Num.empty() || *EndP || R.N == 0)
        return "fault spec: '" + Site + "' wants a positive hit count, got '" +
               Arg + "'";
      R.How = From ? Impl::Mode::FromNth : Impl::Mode::Nth;
    }
    R.FiredMetric =
        obs::Registry::global().counter("fault.injected." + Site);
    // Replace an earlier clause for the same site (last one wins).
    if (Impl::Rule *Old = I->find(Site))
      *Old = std::move(R);
    else
      I->Rules.push_back(std::move(R));
  }
  Armed.store(!I->Rules.empty(), std::memory_order_relaxed);
  return std::string();
}

void Injector::reset() { configure(std::string()); }

bool Injector::shouldFireSlow(std::string_view Site) {
  std::lock_guard<std::mutex> Guard(I->M);
  Impl::Rule *R = I->find(Site);
  if (!R)
    return false;
  ++R->Hits;
  bool Fire = false;
  switch (R->How) {
  case Impl::Mode::Always:
    Fire = true;
    break;
  case Impl::Mode::Nth:
    Fire = R->Hits == R->N;
    break;
  case Impl::Mode::FromNth:
    Fire = R->Hits >= R->N;
    break;
  case Impl::Mode::Prob:
    Fire = (splitmix64(I->RngState) >> 11) * 0x1.0p-53 < R->P;
    break;
  }
  if (Fire) {
    ++R->Fires;
    ++I->TotalFires;
    R->FiredMetric.add(1);
  }
  return Fire;
}

uint64_t Injector::param(std::string_view Site, uint64_t Default) const {
  std::lock_guard<std::mutex> Guard(I->M);
  Impl::Rule *R = I->find(Site);
  return R && R->N ? R->N : Default;
}

bool Injector::armed(std::string_view Site) const {
  std::lock_guard<std::mutex> Guard(I->M);
  return I->find(Site) != nullptr;
}

uint64_t Injector::firesTotal() const {
  std::lock_guard<std::mutex> Guard(I->M);
  return I->TotalFires;
}

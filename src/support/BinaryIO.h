//===- support/BinaryIO.h - Long-integer log serialization ------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary writers/readers for recording logs. All three recording schemes in
/// the paper (Light, Leap, Stride) dump their logs to disk as sequences of
/// long integers; the evaluation counts space in "Long-integer" units
/// (Section 5.2). LongWriter both serializes and counts those units so the
/// space figures come directly from the bytes that actually hit the disk.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_BINARYIO_H
#define LIGHT_SUPPORT_BINARYIO_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace light {

/// Appends 64-bit little-endian words to a file, buffering in memory and
/// flushing once the buffer exceeds a threshold — the same buffered dump
/// scheme all three tools were configured with in Section 5.2 to avoid
/// out-of-memory crashes in long-running benchmarks.
class LongWriter {
  std::string Path;
  std::FILE *File = nullptr;
  std::vector<uint64_t> Buffer;
  size_t FlushThreshold;
  uint64_t Written = 0;

public:
  /// Opens \p Path for writing. \p FlushThresholdWords bounds the in-memory
  /// buffer; 0 keeps everything buffered until finish().
  explicit LongWriter(std::string Path, size_t FlushThresholdWords = 1 << 16);
  ~LongWriter();

  LongWriter(const LongWriter &) = delete;
  LongWriter &operator=(const LongWriter &) = delete;

  /// Appends one long-integer unit.
  void put(uint64_t Word) {
    Buffer.push_back(Word);
    ++Written;
    if (FlushThreshold && Buffer.size() >= FlushThreshold)
      flush();
  }

  /// Forces buffered words to disk.
  void flush();

  /// Flushes and closes the file. Returns the total long-integer count.
  uint64_t finish();

  /// Total long-integer units written so far (including buffered ones).
  uint64_t wordsWritten() const { return Written; }
};

/// Reads back a file produced by LongWriter.
class LongReader {
  std::vector<uint64_t> Words;
  size_t Pos = 0;

public:
  /// Loads the whole file; ok() reports whether the open succeeded.
  explicit LongReader(const std::string &Path);

  bool ok() const { return Loaded; }
  bool atEnd() const { return Pos >= Words.size(); }
  size_t size() const { return Words.size(); }

  /// Returns the next word; must not be called at end.
  uint64_t get();

private:
  bool Loaded = false;
};

/// Returns a fresh unique path under the system temporary directory.
std::string makeTempPath(const std::string &Stem);

} // namespace light

#endif // LIGHT_SUPPORT_BINARYIO_H

//===- support/BinaryIO.h - Long-integer log serialization ------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary writers/readers for recording logs. All three recording schemes in
/// the paper (Light, Leap, Stride) dump their logs to disk as sequences of
/// long integers; the evaluation counts space in "Long-integer" units
/// (Section 5.2). LongWriter both serializes and counts those units so the
/// space figures come directly from the bytes that actually hit the disk.
///
/// I/O failures are propagated, not asserted: a writer that fails to open or
/// suffers a short write reports it through ok()/error() (and keeps
/// accepting puts, which are counted but dropped — the caller decides
/// whether a lossy log is fatal), and a reader that is drained past its end
/// reports overran() instead of invoking undefined behavior. The
/// fault-injection sites io.open_fail, io.short_write, and io.close_fail
/// (support/FaultInjection.h) exercise exactly these paths.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_BINARYIO_H
#define LIGHT_SUPPORT_BINARYIO_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace light {

/// Appends 64-bit little-endian words to a file, buffering in memory and
/// flushing once the buffer exceeds a threshold — the same buffered dump
/// scheme all three tools were configured with in Section 5.2 to avoid
/// out-of-memory crashes in long-running benchmarks.
class LongWriter {
  std::string Path;
  std::FILE *File = nullptr;
  std::vector<uint64_t> Buffer;
  size_t FlushThreshold;
  uint64_t Written = 0;
  bool Failed = false;
  std::string Err;

public:
  /// Opens \p Path for writing. \p FlushThresholdWords bounds the in-memory
  /// buffer; 0 keeps everything buffered until finish(). A failed open is
  /// reported through ok()/error(), not asserted.
  explicit LongWriter(std::string Path, size_t FlushThresholdWords = 1 << 16);
  ~LongWriter();

  LongWriter(const LongWriter &) = delete;
  LongWriter &operator=(const LongWriter &) = delete;

  /// True while no open/write/close failure has occurred.
  bool ok() const { return !Failed; }

  /// Description of the first failure (empty while ok()).
  const std::string &error() const { return Err; }

  /// Appends one long-integer unit. Accepted (and counted) even after a
  /// failure so space accounting stays meaningful; the words are dropped.
  void put(uint64_t Word) {
    Buffer.push_back(Word);
    ++Written;
    if (FlushThreshold && Buffer.size() >= FlushThreshold)
      flush();
  }

  /// Forces buffered words to disk. Returns false (and records the error)
  /// on a short write or an earlier open failure.
  bool flush();

  /// Flushes and closes the file. Returns the total long-integer count;
  /// check ok() to learn whether all of them actually reached the disk.
  uint64_t finish();

  /// Total long-integer units written so far (including buffered ones).
  uint64_t wordsWritten() const { return Written; }
};

/// Reads back a file produced by LongWriter.
class LongReader {
  std::vector<uint64_t> Words;
  size_t Pos = 0;

public:
  /// Loads the whole file; ok() reports whether the open succeeded.
  explicit LongReader(const std::string &Path);

  bool ok() const { return Loaded; }
  bool atEnd() const { return Pos >= Words.size(); }
  size_t size() const { return Words.size(); }

  /// Returns the next word. Reading past the end returns 0 and latches
  /// overran() — a checked error, not UB; parsers test it once at the end
  /// instead of guarding every get().
  uint64_t get() {
    if (Pos >= Words.size()) {
      Overran = true;
      return 0;
    }
    return Words[Pos++];
  }

  /// True once any get() was issued past the end of the data.
  bool overran() const { return Overran; }

private:
  bool Loaded = false;
  bool Overran = false;
};

/// Returns a fresh unique path under the system temporary directory. Unique
/// across concurrent processes: the name mixes in the PID alongside the
/// per-process serial.
std::string makeTempPath(const std::string &Stem);

} // namespace light

#endif // LIGHT_SUPPORT_BINARYIO_H

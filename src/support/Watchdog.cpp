//===- support/Watchdog.cpp - Monotonic deadline watchdog -----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/Watchdog.h"

#include "obs/Metrics.h"
#include "support/FaultInjection.h"

#include <cmath>

#include <unistd.h>

using namespace light;

Watchdog::Watchdog(Options OptsIn) : Opts(std::move(OptsIn)) {
  Start = std::chrono::steady_clock::now();
  LastKick = Start;
  if (fault::Injector::global().shouldFire("ci.watchdog_fire")) {
    // Deterministic hang-edge test: fire before any timer elapses, on the
    // constructing thread (no background thread is started at all).
    Fired = true;
    Why = FireReason::FaultInjected;
    obs::Registry::global().counter("watchdog.fires").add(1);
    if (Opts.OnFire)
      Opts.OnFire();
    return;
  }
  if (Opts.DeadlineSeconds <= 0 && Opts.NoProgressSeconds <= 0)
    return; // nothing to watch
  Thread = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() { cancel(); }

void Watchdog::loop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (Stop || Fired)
      return;
    auto Now = std::chrono::steady_clock::now();
    auto Never = Now + std::chrono::hours(24 * 365);
    auto DeadlineAt =
        Opts.DeadlineSeconds > 0
            ? Start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(Opts.DeadlineSeconds))
            : Never;
    auto ProgressAt =
        Opts.NoProgressSeconds > 0
            ? LastKick + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 Opts.NoProgressSeconds))
            : Never;
    auto WakeAt = DeadlineAt < ProgressAt ? DeadlineAt : ProgressAt;
    if (Now >= WakeAt) {
      Fired = true;
      Why = Now >= DeadlineAt ? FireReason::Deadline : FireReason::NoProgress;
      obs::Registry::global().counter("watchdog.fires").add(1);
      std::function<void()> Fn = Opts.OnFire;
      Lock.unlock();
      if (Fn)
        Fn();
      return;
    }
    Cv.wait_until(Lock, WakeAt);
  }
}

void Watchdog::kick() {
  std::lock_guard<std::mutex> Lock(Mu);
  LastKick = std::chrono::steady_clock::now();
  Cv.notify_all();
}

void Watchdog::cancel() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
    Cv.notify_all();
  }
  if (Thread.joinable())
    Thread.join();
}

bool Watchdog::fired() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Fired;
}

Watchdog::FireReason Watchdog::reason() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Why;
}

void Watchdog::armSigalrmFallback(double Seconds) {
  if (Seconds <= 0) {
    ::alarm(0);
    return;
  }
  ::alarm(static_cast<unsigned>(std::ceil(Seconds)));
}

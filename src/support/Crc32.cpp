//===- support/Crc32.cpp - CRC32C checksums for durable logs --------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "support/Crc32.h"

namespace {

struct Crc32cTable {
  uint32_t T[256];
  constexpr Crc32cTable() : T{} {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (0x82f63b78u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
  }
};

constexpr Crc32cTable Table;

} // namespace

uint32_t light::crc32c(const void *Data, size_t Len, uint32_t Seed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint32_t C = ~Seed;
  for (size_t I = 0; I < Len; ++I)
    C = Table.T[(C ^ P[I]) & 0xff] ^ (C >> 8);
  return ~C;
}

//===- support/Crc32.h - CRC32C checksums for durable logs ------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over byte
/// ranges. Every LIGHT002 log segment carries one of these so a torn tail or
/// a flipped bit is detected at load time instead of silently corrupting the
/// replay schedule. Software table implementation — checksums are computed
/// once per epoch segment, far off the recording hot path, so there is no
/// need for hardware CRC instructions.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_CRC32_H
#define LIGHT_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>

namespace light {

/// CRC32C of \p Len bytes at \p Data, continuing from \p Seed (pass the
/// previous return value to checksum a range in chunks; 0 starts fresh).
uint32_t crc32c(const void *Data, size_t Len, uint32_t Seed = 0);

} // namespace light

#endif // LIGHT_SUPPORT_CRC32_H

//===- support/FunctionRef.h - Non-owning callable reference ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight, non-owning reference to a callable, in the style of
/// llvm::function_ref. Used on the instrumentation hot path so that recorder
/// implementations can wrap the program's memory access inside whatever
/// atomic section they require without a std::function allocation.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_FUNCTIONREF_H
#define LIGHT_SUPPORT_FUNCTIONREF_H

#include <cstdint>
#include <type_traits>
#include <utility>

namespace light {

template <typename Fn> class FunctionRef;

/// A type-erased reference to a callable object. The referenced callable must
/// outlive the FunctionRef; FunctionRef is intended purely for parameter
/// passing, never for storage.
template <typename Ret, typename... Params> class FunctionRef<Ret(Params...)> {
  Ret (*Callback)(intptr_t Callee, Params... Ps) = nullptr;
  intptr_t Callee = 0;

  template <typename Callable>
  static Ret callbackFn(intptr_t C, Params... Ps) {
    return (*reinterpret_cast<Callable *>(C))(std::forward<Params>(Ps)...);
  }

public:
  FunctionRef() = default;

  template <typename Callable>
  FunctionRef(Callable &&C,
              std::enable_if_t<!std::is_same_v<std::remove_cvref_t<Callable>,
                                               FunctionRef>> * = nullptr)
      : Callback(callbackFn<std::remove_reference_t<Callable>>),
        Callee(reinterpret_cast<intptr_t>(&C)) {}

  Ret operator()(Params... Ps) const {
    return Callback(Callee, std::forward<Params>(Ps)...);
  }

  explicit operator bool() const { return Callback; }
};

} // namespace light

#endif // LIGHT_SUPPORT_FUNCTIONREF_H

//===- support/Table.h - Plain-text table rendering -------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fixed-width table renderer. Every bench binary regenerates one of
/// the paper's tables or figures as rows on stdout; this helper keeps their
/// formatting uniform.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_TABLE_H
#define LIGHT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace light {

/// Accumulates rows of strings and renders them with aligned columns.
class Table {
  std::vector<std::vector<std::string>> Rows;
  size_t NumCols;

public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table to a string (trailing newline included).
  std::string render() const;

  /// Formats \p Value with \p Precision digits after the decimal point.
  static std::string fmt(double Value, int Precision = 2);

  /// Formats an integer quantity with thousands separators.
  static std::string fmtInt(uint64_t Value);
};

} // namespace light

#endif // LIGHT_SUPPORT_TABLE_H

//===- support/Random.h - Deterministic PRNG --------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, fully deterministic PRNG (splitmix64 seeded xoshiro256**).
/// All schedule exploration, workload generation, and property tests draw
/// randomness from this generator so that every run is reproducible from a
/// single 64-bit seed.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_RANDOM_H
#define LIGHT_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace light {

/// Deterministic xoshiro256** generator with splitmix64 seeding.
class Rng {
  uint64_t State[4];

  static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the generator from \p Seed via splitmix64.
  void reseed(uint64_t Seed) {
    for (uint64_t &S : State) {
      Seed += 0x9e3779b97f4a7c15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      S = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t *S = State;
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a nonzero bound");
    // Multiply-shift bounded rejection is unnecessary for simulation use;
    // modulo bias is negligible for the bounds we draw.
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Returns a double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

} // namespace light

#endif // LIGHT_SUPPORT_RANDOM_H

//===- support/Timer.h - Wall-clock stopwatch -------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A steady-clock stopwatch used by the bench harness to measure recording
/// overhead, constraint solving time, and replay time (Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SUPPORT_TIMER_H
#define LIGHT_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace light {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
  std::chrono::steady_clock::time_point Start;

public:
  Stopwatch() : Start(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Returns elapsed time in seconds since construction or the last reset().
  double seconds() const {
    auto Delta = std::chrono::steady_clock::now() - Start;
    return std::chrono::duration<double>(Delta).count();
  }

  /// Returns elapsed time in nanoseconds.
  uint64_t nanos() const {
    auto Delta = std::chrono::steady_clock::now() - Start;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Delta).count());
  }
};

} // namespace light

#endif // LIGHT_SUPPORT_TIMER_H

//===- mir/Builder.h - Fluent MIR construction -------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder API for assembling MIR programs in C++: the bug programs
/// of Section 5.3, the random programs of the property tests, and the
/// examples are all written against this interface.
///
/// Typical shape:
/// \code
///   ProgramBuilder PB;
///   ClassId Cache = PB.addClass("Cache", {"_createTime", "_value"});
///   FunctionBuilder FB = PB.beginFunction("put", /*params=*/1);
///   Reg Obj = FB.param(0);
///   Reg Time = FB.newReg();
///   FB.sysTime(Time);
///   FB.putField(Obj, /*field=*/0, Time);
///   FB.ret();
///   PB.endFunction(FB);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_MIR_BUILDER_H
#define LIGHT_MIR_BUILDER_H

#include "mir/Program.h"

#include <cassert>
#include <string>

namespace light {
namespace mir {

class ProgramBuilder;

/// Marker for a not-yet-emitted branch destination.
struct Label {
  int32_t Id = -1;
};

/// Builds one function. Obtain from ProgramBuilder::beginFunction and commit
/// with ProgramBuilder::endFunction.
class FunctionBuilder {
  friend class ProgramBuilder;

  Function Fn;
  std::vector<int32_t> LabelPositions;           ///< label -> instr index
  std::vector<std::pair<size_t, int32_t>> Fixups; ///< (instr, label) x Target
  std::vector<std::pair<size_t, int32_t>> Fixups2;

  FunctionBuilder(std::string Name, uint16_t NumParams) {
    Fn.Name = std::move(Name);
    Fn.NumParams = NumParams;
    Fn.NumRegs = NumParams;
  }

  size_t emit(Instr I) {
    Fn.Body.push_back(std::move(I));
    return Fn.Body.size() - 1;
  }

public:
  /// Returns the register holding parameter \p I.
  Reg param(uint16_t I) const {
    assert(I < Fn.NumParams && "parameter index out of range");
    return I;
  }

  /// Allocates a fresh register.
  Reg newReg() {
    assert(Fn.NumRegs < NoReg && "register file exhausted");
    return Fn.NumRegs++;
  }

  /// Creates a label to be placed later with place().
  Label makeLabel() {
    LabelPositions.push_back(-1);
    return Label{static_cast<int32_t>(LabelPositions.size() - 1)};
  }

  /// Binds \p L to the next emitted instruction.
  void place(Label L) {
    assert(L.Id >= 0 && LabelPositions[L.Id] == -1 && "label placed twice");
    LabelPositions[L.Id] = static_cast<int32_t>(Fn.Body.size());
  }

  // --- Straight-line emission helpers -----------------------------------

  void constInt(Reg Dst, int64_t V) {
    emit({.Op = Opcode::ConstInt, .A = Dst, .Imm = V});
  }
  void constNull(Reg Dst) { emit({.Op = Opcode::ConstNull, .A = Dst}); }
  void move(Reg Dst, Reg Src) {
    emit({.Op = Opcode::Move, .A = Dst, .B = Src});
  }
  void arith(Opcode Op, Reg Dst, Reg L, Reg R) {
    emit({.Op = Op, .A = Dst, .B = L, .C = R});
  }
  void add(Reg Dst, Reg L, Reg R) { arith(Opcode::Add, Dst, L, R); }
  void sub(Reg Dst, Reg L, Reg R) { arith(Opcode::Sub, Dst, L, R); }
  void mul(Reg Dst, Reg L, Reg R) { arith(Opcode::Mul, Dst, L, R); }
  void div(Reg Dst, Reg L, Reg R) { arith(Opcode::Div, Dst, L, R); }
  void mod(Reg Dst, Reg L, Reg R) { arith(Opcode::Mod, Dst, L, R); }
  void cmpEq(Reg Dst, Reg L, Reg R) { arith(Opcode::CmpEq, Dst, L, R); }
  void cmpNe(Reg Dst, Reg L, Reg R) { arith(Opcode::CmpNe, Dst, L, R); }
  void cmpLt(Reg Dst, Reg L, Reg R) { arith(Opcode::CmpLt, Dst, L, R); }
  void cmpLe(Reg Dst, Reg L, Reg R) { arith(Opcode::CmpLe, Dst, L, R); }
  void logicalNot(Reg Dst, Reg Src) {
    emit({.Op = Opcode::Not, .A = Dst, .B = Src});
  }

  void jmp(Label L) {
    Fixups.push_back({emit({.Op = Opcode::Jmp}), L.Id});
  }
  void br(Reg Cond, Label IfTrue, Label IfFalse) {
    size_t I = emit({.Op = Opcode::Br, .A = Cond});
    Fixups.push_back({I, IfTrue.Id});
    Fixups2.push_back({I, IfFalse.Id});
  }

  void call(Reg Dst, FuncId Callee, std::vector<Reg> Args = {}) {
    emit({.Op = Opcode::Call,
          .A = Dst,
          .Imm = static_cast<int64_t>(Callee),
          .Args = std::move(Args)});
  }
  void ret() { emit({.Op = Opcode::Ret, .A = NoReg}); }
  void ret(Reg Src) { emit({.Op = Opcode::Ret, .A = Src}); }

  void newObject(Reg Dst, ClassId Cls) {
    emit({.Op = Opcode::New, .A = Dst, .Imm = static_cast<int64_t>(Cls)});
  }
  void getField(Reg Dst, Reg Obj, uint32_t Field) {
    emit({.Op = Opcode::GetField,
          .A = Dst,
          .B = Obj,
          .Imm = static_cast<int64_t>(Field)});
  }
  void putField(Reg Obj, uint32_t Field, Reg Src) {
    emit({.Op = Opcode::PutField,
          .A = Obj,
          .B = Src,
          .Imm = static_cast<int64_t>(Field)});
  }
  void getGlobal(Reg Dst, uint32_t Global) {
    emit({.Op = Opcode::GetGlobal,
          .A = Dst,
          .Imm = static_cast<int64_t>(Global)});
  }
  void putGlobal(uint32_t Global, Reg Src) {
    emit({.Op = Opcode::PutGlobal,
          .A = Src,
          .Imm = static_cast<int64_t>(Global)});
  }
  void newArray(Reg Dst, Reg Len) {
    emit({.Op = Opcode::NewArray, .A = Dst, .B = Len});
  }
  void aload(Reg Dst, Reg Arr, Reg Idx) {
    emit({.Op = Opcode::ALoad, .A = Dst, .B = Arr, .C = Idx});
  }
  void astore(Reg Arr, Reg Idx, Reg Src) {
    emit({.Op = Opcode::AStore, .A = Arr, .B = Idx, .C = Src});
  }
  void arrayLen(Reg Dst, Reg Arr) {
    emit({.Op = Opcode::ArrayLen, .A = Dst, .B = Arr});
  }

  void mapNew(Reg Dst) { emit({.Op = Opcode::MapNew, .A = Dst}); }
  void mapPut(Reg Map, Reg Key, Reg Val) {
    emit({.Op = Opcode::MapPut, .A = Map, .B = Key, .C = Val});
  }
  void mapGet(Reg Dst, Reg Map, Reg Key) {
    emit({.Op = Opcode::MapGet, .A = Dst, .B = Map, .C = Key});
  }
  void mapContains(Reg Dst, Reg Map, Reg Key) {
    emit({.Op = Opcode::MapContains, .A = Dst, .B = Map, .C = Key});
  }
  void mapRemove(Reg Map, Reg Key) {
    emit({.Op = Opcode::MapRemove, .A = Map, .B = Key});
  }

  void monitorEnter(Reg Obj) {
    emit({.Op = Opcode::MonitorEnter, .A = Obj});
  }
  void monitorExit(Reg Obj) { emit({.Op = Opcode::MonitorExit, .A = Obj}); }
  void wait(Reg Obj) { emit({.Op = Opcode::Wait, .A = Obj}); }
  void notifyOne(Reg Obj) { emit({.Op = Opcode::Notify, .A = Obj}); }
  void notifyAll(Reg Obj) { emit({.Op = Opcode::NotifyAll, .A = Obj}); }

  void rwRdLock(Reg Obj) { emit({.Op = Opcode::RwRdLock, .A = Obj}); }
  void rwRdUnlock(Reg Obj) { emit({.Op = Opcode::RwRdUnlock, .A = Obj}); }
  void rwWrLock(Reg Obj) { emit({.Op = Opcode::RwWrLock, .A = Obj}); }
  void rwWrUnlock(Reg Obj) { emit({.Op = Opcode::RwWrUnlock, .A = Obj}); }

  void barrierInit(Reg Obj, int64_t Parties) {
    emit({.Op = Opcode::BarrierInit, .A = Obj, .Imm = Parties});
  }
  void barrierWait(Reg Obj) {
    emit({.Op = Opcode::BarrierWait, .A = Obj});
  }

  void timedWait(Reg TimedOutDst, Reg Obj, int64_t Deadline) {
    emit({.Op = Opcode::TimedWait,
          .A = TimedOutDst,
          .B = Obj,
          .Imm = Deadline});
  }

  void cas(Reg SuccessDst, Reg Expected, Reg New, uint32_t Global) {
    emit({.Op = Opcode::AtomicCas,
          .A = SuccessDst,
          .B = Expected,
          .C = New,
          .Imm = static_cast<int64_t>(Global)});
  }
  void xchg(Reg OldDst, Reg New, uint32_t Global) {
    emit({.Op = Opcode::AtomicXchg,
          .A = OldDst,
          .B = New,
          .Imm = static_cast<int64_t>(Global)});
  }

  void chanMake(Reg Capacity, uint32_t Chan) {
    emit({.Op = Opcode::ChanMake,
          .A = Capacity,
          .B = NoReg,
          .Imm = static_cast<int64_t>(Chan)});
  }
  void send(Reg Val, uint32_t Chan) {
    emit({.Op = Opcode::ChanSend,
          .A = Val,
          .B = NoReg,
          .Imm = static_cast<int64_t>(Chan)});
  }
  void recv(Reg Dst, uint32_t Chan) {
    emit({.Op = Opcode::ChanRecv,
          .A = Dst,
          .B = NoReg,
          .Imm = static_cast<int64_t>(Chan)});
  }
  void tryRecv(Reg GotDst, Reg ValDst, uint32_t Chan) {
    emit({.Op = Opcode::ChanTryRecv,
          .A = GotDst,
          .B = ValDst,
          .Imm = static_cast<int64_t>(Chan)});
  }

  void threadStart(Reg Dst, FuncId Fn, Reg Arg = NoReg) {
    emit({.Op = Opcode::ThreadStart,
          .A = Dst,
          .B = Arg,
          .Imm = static_cast<int64_t>(Fn)});
  }
  void threadJoin(Reg Tid) { emit({.Op = Opcode::ThreadJoin, .A = Tid}); }

  void assertTrue(Reg Cond, int64_t BugId) {
    emit({.Op = Opcode::AssertTrue, .A = Cond, .Imm = BugId});
  }
  void assertNonNull(Reg Val, int64_t BugId) {
    emit({.Op = Opcode::AssertNonNull, .A = Val, .Imm = BugId});
  }

  void sysTime(Reg Dst) { emit({.Op = Opcode::SysTime, .A = Dst}); }
  void sysRand(Reg Dst, int64_t Bound) {
    emit({.Op = Opcode::SysRand, .A = Dst, .Imm = Bound});
  }
  void print(Reg Src) { emit({.Op = Opcode::Print, .A = Src}); }
  void burnCpu(int64_t Units) {
    emit({.Op = Opcode::BurnCpu, .Imm = Units});
  }
};

/// Builds a whole Program.
class ProgramBuilder {
  Program Prog;

public:
  ClassId addClass(std::string Name, std::vector<std::string> Fields) {
    Prog.Classes.push_back({std::move(Name), std::move(Fields)});
    return static_cast<ClassId>(Prog.Classes.size() - 1);
  }

  uint32_t addGlobal(std::string Name) {
    Prog.Globals.push_back(std::move(Name));
    return static_cast<uint32_t>(Prog.Globals.size() - 1);
  }

  uint32_t addChannel(std::string Name) {
    Prog.Channels.push_back(std::move(Name));
    return static_cast<uint32_t>(Prog.Channels.size() - 1);
  }

  /// Reserves a function id before its body exists, enabling forward
  /// references (thread entry points, mutual recursion).
  FuncId declareFunction(std::string Name, uint16_t NumParams) {
    Function F;
    F.Name = std::move(Name);
    F.NumParams = NumParams;
    F.NumRegs = NumParams;
    Prog.Functions.push_back(std::move(F));
    return static_cast<FuncId>(Prog.Functions.size() - 1);
  }

  FunctionBuilder beginFunction(std::string Name, uint16_t NumParams) {
    return FunctionBuilder(std::move(Name), NumParams);
  }

  /// Commits \p FB as a new function and returns its id.
  FuncId endFunction(FunctionBuilder &FB) {
    FuncId Id = static_cast<FuncId>(Prog.Functions.size());
    Prog.Functions.emplace_back();
    fillFunction(Id, FB);
    return Id;
  }

  /// Commits \p FB into the previously declared slot \p Id.
  void defineFunction(FuncId Id, FunctionBuilder &FB) {
    assert(Id < Prog.Functions.size() && "undeclared function id");
    assert(Prog.Functions[Id].Body.empty() && "function defined twice");
    fillFunction(Id, FB);
  }

  void setEntry(FuncId F) { Prog.Entry = F; }

  /// Finalizes and returns the program (verify() is the caller's business).
  Program take() { return std::move(Prog); }

private:
  void fillFunction(FuncId Id, FunctionBuilder &FB) {
    for (auto &[InstrIdx, LabelId] : FB.Fixups) {
      assert(FB.LabelPositions[LabelId] >= 0 && "label never placed");
      FB.Fn.Body[InstrIdx].Target = FB.LabelPositions[LabelId];
    }
    for (auto &[InstrIdx, LabelId] : FB.Fixups2) {
      assert(FB.LabelPositions[LabelId] >= 0 && "label never placed");
      FB.Fn.Body[InstrIdx].Target2 = FB.LabelPositions[LabelId];
    }
    std::string Name = FB.Fn.Name;
    uint16_t Params = FB.Fn.NumParams;
    Prog.Functions[Id] = std::move(FB.Fn);
    Prog.Functions[Id].Name = std::move(Name);
    Prog.Functions[Id].NumParams = Params;
  }
};

} // namespace mir
} // namespace light

#endif // LIGHT_MIR_BUILDER_H

//===- mir/Program.cpp - MIR structure, verifier, printer -----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "mir/Program.h"

using namespace light;
using namespace light::mir;

const char *light::mir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
    return "const";
  case Opcode::ConstNull:
    return "null";
  case Opcode::Move:
    return "move";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::Not:
    return "not";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Br:
    return "br";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::New:
    return "new";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetGlobal:
    return "getglobal";
  case Opcode::PutGlobal:
    return "putglobal";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::ArrayLen:
    return "arraylen";
  case Opcode::MapNew:
    return "mapnew";
  case Opcode::MapPut:
    return "mapput";
  case Opcode::MapGet:
    return "mapget";
  case Opcode::MapContains:
    return "mapcontains";
  case Opcode::MapRemove:
    return "mapremove";
  case Opcode::MonitorEnter:
    return "monitorenter";
  case Opcode::MonitorExit:
    return "monitorexit";
  case Opcode::Wait:
    return "wait";
  case Opcode::Notify:
    return "notify";
  case Opcode::NotifyAll:
    return "notifyall";
  case Opcode::RwRdLock:
    return "rwrdlock";
  case Opcode::RwRdUnlock:
    return "rwrdunlock";
  case Opcode::RwWrLock:
    return "rwwrlock";
  case Opcode::RwWrUnlock:
    return "rwwrunlock";
  case Opcode::BarrierInit:
    return "barrierinit";
  case Opcode::BarrierWait:
    return "barrierwait";
  case Opcode::TimedWait:
    return "timedwait";
  case Opcode::AtomicCas:
    return "cas";
  case Opcode::AtomicXchg:
    return "xchg";
  case Opcode::ChanMake:
    return "chanmake";
  case Opcode::ChanSend:
    return "send";
  case Opcode::ChanRecv:
    return "recv";
  case Opcode::ChanTryRecv:
    return "tryrecv";
  case Opcode::ThreadStart:
    return "start";
  case Opcode::ThreadJoin:
    return "join";
  case Opcode::AssertTrue:
    return "assert";
  case Opcode::AssertNonNull:
    return "assertnonnull";
  case Opcode::SysTime:
    return "systime";
  case Opcode::SysRand:
    return "sysrand";
  case Opcode::Print:
    return "print";
  case Opcode::BurnCpu:
    return "burncpu";
  case Opcode::Nop:
    return "nop";
  }
  return "<bad-op>";
}

bool light::mir::isHeapAccess(Opcode Op) {
  switch (Op) {
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetGlobal:
  case Opcode::PutGlobal:
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::MapPut:
  case Opcode::MapGet:
  case Opcode::MapContains:
  case Opcode::MapRemove:
  case Opcode::AtomicCas:
  case Opcode::AtomicXchg:
    return true;
  default:
    return false;
  }
}

bool light::mir::isSyncOp(Opcode Op) {
  switch (Op) {
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
  case Opcode::Wait:
  case Opcode::Notify:
  case Opcode::NotifyAll:
  case Opcode::RwRdLock:
  case Opcode::RwRdUnlock:
  case Opcode::RwWrLock:
  case Opcode::RwWrUnlock:
  case Opcode::BarrierInit:
  case Opcode::BarrierWait:
  case Opcode::TimedWait:
  case Opcode::ChanMake:
  case Opcode::ChanSend:
  case Opcode::ChanRecv:
  case Opcode::ChanTryRecv:
  case Opcode::ThreadStart:
  case Opcode::ThreadJoin:
    return true;
  default:
    return false;
  }
}

std::string Instr::str() const {
  std::string Out = opcodeName(Op);
  auto R = [](Reg X) {
    return X == NoReg ? std::string("_") : "r" + std::to_string(X);
  };
  switch (Op) {
  case Opcode::ConstInt:
    Out += " " + R(A) + ", " + std::to_string(Imm);
    break;
  case Opcode::Jmp:
    Out += " @" + std::to_string(Target);
    break;
  case Opcode::Br:
    Out += " " + R(A) + ", @" + std::to_string(Target) + ", @" +
           std::to_string(Target2);
    break;
  case Opcode::Call: {
    Out += " " + R(A) + ", f" + std::to_string(Imm) + "(";
    for (size_t I = 0; I < Args.size(); ++I)
      Out += (I ? ", " : "") + R(Args[I]);
    Out += ")";
    break;
  }
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetGlobal:
  case Opcode::PutGlobal:
  case Opcode::New:
  case Opcode::AssertTrue:
  case Opcode::AssertNonNull:
  case Opcode::ThreadStart:
  case Opcode::SysRand:
  case Opcode::BurnCpu:
  case Opcode::BarrierInit:
  case Opcode::TimedWait:
  case Opcode::AtomicXchg:
  case Opcode::ChanMake:
  case Opcode::ChanSend:
  case Opcode::ChanRecv:
  case Opcode::ChanTryRecv:
    Out += " " + R(A) + ", " + R(B) + ", #" + std::to_string(Imm);
    break;
  case Opcode::AtomicCas:
    Out += " " + R(A) + ", " + R(B) + ", " + R(C) + ", #" +
           std::to_string(Imm);
    break;
  default:
    Out += " " + R(A) + ", " + R(B) + ", " + R(C);
    break;
  }
  return Out;
}

FuncId Program::findFunction(const std::string &Name) const {
  for (size_t I = 0; I < Functions.size(); ++I)
    if (Functions[I].Name == Name)
      return static_cast<FuncId>(I);
  return ~0u;
}

std::string Program::verify() const {
  auto Err = [](const std::string &Where, const std::string &What) {
    return Where + ": " + What;
  };

  if (Entry >= Functions.size())
    return "entry function id out of range";

  for (size_t FI = 0; FI < Functions.size(); ++FI) {
    const Function &F = Functions[FI];
    std::string Where = "function '" + F.Name + "'";
    if (F.NumParams > F.NumRegs)
      return Err(Where, "more parameters than registers");
    if (F.Body.empty())
      return Err(Where, "empty body (missing ret?)");
    if (F.Body.back().Op != Opcode::Ret && F.Body.back().Op != Opcode::Jmp)
      return Err(Where, "body does not end in ret or jmp");

    int64_t N = static_cast<int64_t>(F.Body.size());
    for (size_t II = 0; II < F.Body.size(); ++II) {
      const Instr &I = F.Body[II];
      std::string At = Where + " @" + std::to_string(II);

      auto CheckReg = [&](Reg X, bool AllowNone) -> bool {
        return (AllowNone && X == NoReg) || X < F.NumRegs;
      };

      switch (I.Op) {
      case Opcode::Jmp:
        if (I.Target < 0 || I.Target >= N)
          return Err(At, "jmp target out of range");
        break;
      case Opcode::Br:
        if (I.Target < 0 || I.Target >= N || I.Target2 < 0 || I.Target2 >= N)
          return Err(At, "br target out of range");
        if (!CheckReg(I.A, false))
          return Err(At, "condition register out of range");
        break;
      case Opcode::Call: {
        if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= Functions.size())
          return Err(At, "call of unknown function");
        const Function &Callee = Functions[I.Imm];
        if (I.Args.size() != Callee.NumParams)
          return Err(At, "call arity mismatch for '" + Callee.Name + "'");
        for (Reg Arg : I.Args)
          if (!CheckReg(Arg, false))
            return Err(At, "call argument register out of range");
        if (!CheckReg(I.A, true))
          return Err(At, "call result register out of range");
        break;
      }
      case Opcode::Ret:
        if (!CheckReg(I.A, true))
          return Err(At, "return register out of range");
        break;
      case Opcode::New:
        if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= Classes.size())
          return Err(At, "new of unknown class");
        if (!CheckReg(I.A, false))
          return Err(At, "destination register out of range");
        break;
      case Opcode::GetField:
      case Opcode::PutField:
        if (!CheckReg(I.A, false) || !CheckReg(I.B, false))
          return Err(At, "field access register out of range");
        break;
      case Opcode::GetGlobal:
      case Opcode::PutGlobal:
        if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= Globals.size())
          return Err(At, "unknown global");
        if (!CheckReg(I.A, false))
          return Err(At, "global access register out of range");
        break;
      case Opcode::BarrierInit:
        if (I.Imm < 1)
          return Err(At, "barrier must have at least one party");
        if (!CheckReg(I.A, false))
          return Err(At, "barrier register out of range");
        break;
      case Opcode::TimedWait:
        if (I.Imm < 0)
          return Err(At, "timed wait deadline must be non-negative");
        if (!CheckReg(I.A, false) || !CheckReg(I.B, false))
          return Err(At, "timed wait register out of range");
        break;
      case Opcode::AtomicCas:
      case Opcode::AtomicXchg:
        if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= Globals.size())
          return Err(At, "unknown global");
        if (!CheckReg(I.A, false) || !CheckReg(I.B, false) ||
            !CheckReg(I.C, I.Op == Opcode::AtomicXchg))
          return Err(At, "atomic access register out of range");
        break;
      case Opcode::ChanMake:
      case Opcode::ChanSend:
      case Opcode::ChanRecv:
      case Opcode::ChanTryRecv:
        if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= Channels.size())
          return Err(At, "unknown channel");
        if (!CheckReg(I.A, false))
          return Err(At, "channel register out of range");
        if (!CheckReg(I.B, I.Op != Opcode::ChanTryRecv))
          return Err(At, "channel value register out of range");
        break;
      case Opcode::ThreadStart:
        if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= Functions.size())
          return Err(At, "thread start of unknown function");
        if (Functions[I.Imm].NumParams > 1)
          return Err(At, "thread entry takes at most one parameter");
        if (Functions[I.Imm].NumParams == 1 && I.B == NoReg)
          return Err(At, "thread entry expects an argument");
        if (!CheckReg(I.A, false) || !CheckReg(I.B, true))
          return Err(At, "thread start register out of range");
        break;
      default: {
        // Generic register checks for remaining three-register forms.
        if (!CheckReg(I.A, true) || !CheckReg(I.B, true) ||
            !CheckReg(I.C, true))
          return Err(At, "register out of range");
        break;
      }
      }
    }
  }
  return std::string();
}

std::string Program::str() const {
  std::string Out;
  for (size_t CI = 0; CI < Classes.size(); ++CI) {
    Out += "class " + Classes[CI].Name + " {";
    for (size_t FI = 0; FI < Classes[CI].Fields.size(); ++FI)
      Out += (FI ? ", " : " ") + Classes[CI].Fields[FI];
    Out += " }\n";
  }
  for (size_t GI = 0; GI < Globals.size(); ++GI)
    Out += "global " + std::to_string(GI) + " " + Globals[GI] + "\n";
  for (size_t CI = 0; CI < Channels.size(); ++CI)
    Out += "chan " + std::to_string(CI) + " " + Channels[CI] + "\n";
  for (size_t FI = 0; FI < Functions.size(); ++FI) {
    const Function &F = Functions[FI];
    Out += "func f" + std::to_string(FI) + " " + F.Name + "(params=" +
           std::to_string(F.NumParams) +
           ", regs=" + std::to_string(F.NumRegs) + ")" +
           (Entry == FI ? " [entry]" : "") + "\n";
    for (size_t II = 0; II < F.Body.size(); ++II)
      Out += "  @" + std::to_string(II) + ": " + F.Body[II].str() + "\n";
  }
  return Out;
}

//===- mir/Instr.h - MIR instruction set ------------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the MIR concurrent mini-language. MIR is the
/// stand-in for Java bytecode in this reproduction: it has heap objects with
/// fields, arrays, hash-map intrinsics, monitors (synchronized regions),
/// wait/notify, read-write locks, barriers, timed waits, lock-free atomics
/// (CAS/exchange), thread start/join, nondeterministic syscalls, and explicit
/// assertion points where "buggy usage" of an illegal value manifests
/// (Definition 3.2 of the paper).
///
/// Statements are three-address style over per-frame registers, matching the
/// paper's simple-statement assumption in Section 3.1.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_MIR_INSTR_H
#define LIGHT_MIR_INSTR_H

#include <cstdint>
#include <string>
#include <vector>

namespace light {
namespace mir {

/// Register index within a frame.
using Reg = uint16_t;

/// Sentinel meaning "no register" (e.g. a Call with ignored result).
constexpr Reg NoReg = 0xffff;

/// MIR opcodes.
enum class Opcode : uint8_t {
  // Constants and moves.
  ConstInt,  ///< A <- Imm
  ConstNull, ///< A <- null
  Move,      ///< A <- B

  // Integer arithmetic / comparison (operands must be ints).
  Add, ///< A <- B + C
  Sub, ///< A <- B - C
  Mul, ///< A <- B * C
  Div, ///< A <- B / C; C == 0 raises a DivideByZero bug
  Mod, ///< A <- B % C; C == 0 raises a DivideByZero bug
  CmpEq, ///< A <- (B == C), works on refs too
  CmpNe, ///< A <- (B != C), works on refs too
  CmpLt, ///< A <- (B < C)
  CmpLe, ///< A <- (B <= C)
  Not,   ///< A <- !truthy(B)

  // Control flow.
  Jmp, ///< goto Target
  Br,  ///< if truthy(A) goto Target else goto Target2
  Call, ///< A(opt) <- call Imm(Args...)
  Ret,  ///< return A (or nothing when A == NoReg)

  // Heap.
  New,      ///< A <- new object of class Imm
  GetField, ///< A <- B.field[Imm]   (global read; instrumented if shared)
  PutField, ///< A.field[Imm] <- B   (global write)
  GetGlobal, ///< A <- global[Imm]
  PutGlobal, ///< global[Imm] <- A
  NewArray, ///< A <- new array of length reg B
  ALoad,    ///< A <- B[C]
  AStore,   ///< A[B] <- C
  ArrayLen, ///< A <- length(B)

  // Hash-map intrinsics: the "data types without native solver support"
  // that defeat computation-based replay (Section 5.3). Keys are ints.
  MapNew,      ///< A <- new map
  MapPut,      ///< A[key B] <- C
  MapGet,      ///< A <- B[key C]; missing key yields null
  MapContains, ///< A <- (key C in B)
  MapRemove,   ///< remove key B from map A

  // Synchronization (modeled as ghost shared accesses per Section 4.3).
  MonitorEnter, ///< acquire monitor of object A (reentrant)
  MonitorExit,  ///< release monitor of object A
  Wait,         ///< wait on monitor A (must be held)
  Notify,       ///< notify one waiter of monitor A
  NotifyAll,    ///< notify all waiters of monitor A

  // Read-write lock on object A's ghost rwlock word. Readers are admitted
  // concurrently; a writer excludes readers and other writers. Write
  // acquisition is reentrant; a sole reader may upgrade.
  RwRdLock,   ///< acquire A's rwlock for reading (blocks on a writer)
  RwRdUnlock, ///< release one read hold of A's rwlock
  RwWrLock,   ///< acquire A's rwlock for writing (exclusive)
  RwWrUnlock, ///< release one write hold of A's rwlock

  // Cyclic barrier over object A's ghost barrier word, with generations:
  // the Imm-th arrival releases the generation and the count resets.
  BarrierInit, ///< initialize A as a barrier for Imm parties
  BarrierWait, ///< arrive at barrier A; block until the generation turns

  // Timed wait on monitor A (held, like Wait) with a deterministic
  // virtual-time deadline: the timeout is a schedulable decision point, so
  // exploration can drive both the notified and the timed-out arm.
  TimedWait, ///< A <- timed out? after waiting on B for at most Imm ticks

  // Lock-free atomics on a global cell (CAS-loop building blocks). Both
  // are recorded as one read+write flow dependence (a ghost RMW).
  AtomicCas,  ///< A <- (global[Imm] == B ? (global[Imm] = C, 1) : 0)
  AtomicXchg, ///< A <- global[Imm]; global[Imm] <- B

  // Message-passing channels (declared with `chan N name`, like globals).
  // Payloads are ints; every endpoint operation is recorded as a ghost RMW
  // on the channel's loc::chan word, so a send->recv pair is an ordinary
  // recorded flow dependence carrying a per-channel sequence number — Eq. 1
  // constraint generation needs no new constraint forms. In multi-node runs
  // the channel is backed by a process-crossing transport and each message
  // additionally lands in the node's durable message log.
  ChanMake,    ///< set channel Imm's capacity to the value in reg A
  ChanSend,    ///< send value in reg A on channel Imm (blocks when full)
  ChanRecv,    ///< A <- receive from channel Imm (blocks when empty)
  ChanTryRecv, ///< A <- got message? ; B <- value (arm recorded as input)

  // Threading.
  ThreadStart, ///< A <- start thread running function Imm with arg reg B
  ThreadJoin,  ///< join thread whose id is in reg A

  // Bug manifestation points (Definition 3.2).
  AssertTrue,    ///< raise AssertionFailure(bug Imm) when !truthy(A)
  AssertNonNull, ///< raise NullPointer(bug Imm) when A is null

  // Environment nondeterminism, recorded and substituted per Section 3.2.
  SysTime, ///< A <- current (virtual) time
  SysRand, ///< A <- recorded-random in [0, Imm)

  // Miscellaneous.
  Print,   ///< append value A to the machine's output transcript
  BurnCpu, ///< spin for Imm units of local work (workload kernels)
  Nop,
};

/// One MIR instruction. Field roles depend on the opcode; see Opcode docs.
struct Instr {
  Opcode Op = Opcode::Nop;
  Reg A = 0;
  Reg B = 0;
  Reg C = 0;
  int64_t Imm = 0;
  int32_t Target = 0;
  int32_t Target2 = 0;
  std::vector<Reg> Args; ///< Call arguments only.

  /// Set by SharedAccessAnalysis: false means the access provably touches
  /// thread-local data and is left uninstrumented (Section 3.2's shared
  /// location restriction). Meaningful only for heap/global/map opcodes.
  bool SharedAccess = true;

  std::string str() const;
};

/// Returns the mnemonic of \p Op.
const char *opcodeName(Opcode Op);

/// Returns true if \p Op reads or writes the global heap (and is therefore
/// subject to instrumentation when marked shared).
bool isHeapAccess(Opcode Op);

/// Returns true if \p Op is a synchronization or threading operation.
bool isSyncOp(Opcode Op);

} // namespace mir
} // namespace light

#endif // LIGHT_MIR_INSTR_H

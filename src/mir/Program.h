//===- mir/Program.h - MIR functions, classes, programs ---------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static program structure of the MIR mini-language: class definitions
/// (field layouts), functions (register machines over Instr), global
/// variables, and the whole Program. Programs are constructed with
/// mir/Builder and checked by verify().
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_MIR_PROGRAM_H
#define LIGHT_MIR_PROGRAM_H

#include "mir/Instr.h"

#include <string>
#include <vector>

namespace light {
namespace mir {

using FuncId = uint32_t;
using ClassId = uint32_t;

/// A class: just a named field layout (methods are free functions in MIR).
struct ClassDef {
  std::string Name;
  std::vector<std::string> Fields;

  uint32_t numFields() const { return static_cast<uint32_t>(Fields.size()); }
};

/// A function: fixed-size register frame plus an instruction vector.
/// Parameters arrive in registers [0, NumParams).
struct Function {
  std::string Name;
  uint16_t NumParams = 0;
  uint16_t NumRegs = 0;
  std::vector<Instr> Body;
};

/// A complete MIR program.
struct Program {
  std::vector<ClassDef> Classes;
  std::vector<Function> Functions;
  std::vector<std::string> Globals;
  /// Message channels, declared like globals (`chan N name`). The index is
  /// the channel id used by ChanMake/ChanSend/ChanRecv/ChanTryRecv.
  std::vector<std::string> Channels;
  FuncId Entry = 0;

  const Function &function(FuncId F) const { return Functions[F]; }
  const ClassDef &classDef(ClassId C) const { return Classes[C]; }

  /// Looks up a function by name; returns ~0u when absent.
  FuncId findFunction(const std::string &Name) const;

  /// Structural sanity checks (register bounds, branch targets, class and
  /// function references, monitor pairing heuristics). Returns an empty
  /// string when the program is well-formed, else a diagnostic.
  std::string verify() const;

  /// Pretty-prints the whole program (for examples and debugging).
  std::string str() const;
};

} // namespace mir
} // namespace light

#endif // LIGHT_MIR_PROGRAM_H

//===- mir/Parser.cpp - Textual MIR parsing ---------------------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "mir/Parser.h"

#include <cctype>
#include <cstring>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

using namespace light;
using namespace light::mir;

namespace {

/// Minimal cursor over one line.
class LineCursor {
  const std::string &S;
  size_t Pos = 0;

public:
  explicit LineCursor(const std::string &Line) : S(Line) {}

  void skipSpace() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= S.size();
  }

  bool literal(const char *Lit) {
    skipSpace();
    size_t Len = std::strlen(Lit);
    if (S.compare(Pos, Len, Lit) != 0)
      return false;
    Pos += Len;
    return true;
  }

  /// Parses an identifier-ish token (letters, digits, -, _, .).
  bool ident(std::string &Out) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '_' || S[Pos] == '-' || S[Pos] == '.'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = S.substr(Start, Pos - Start);
    return true;
  }

  bool integer(int64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    size_t DigitStart = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos == DigitStart) {
      Pos = Start;
      return false;
    }
    Out = std::strtoll(S.substr(Start, Pos - Start).c_str(), nullptr, 10);
    return true;
  }

  /// `rN` or `_`.
  bool reg(Reg &Out) {
    skipSpace();
    if (Pos < S.size() && S[Pos] == '_') {
      ++Pos;
      Out = NoReg;
      return true;
    }
    if (Pos >= S.size() || S[Pos] != 'r')
      return false;
    ++Pos;
    int64_t N;
    if (!integer(N) || N < 0 || N >= NoReg)
      return false;
    Out = static_cast<Reg>(N);
    return true;
  }

  /// `@N`.
  bool target(int32_t &Out) {
    skipSpace();
    if (Pos >= S.size() || S[Pos] != '@')
      return false;
    ++Pos;
    int64_t N;
    if (!integer(N) || N < 0)
      return false;
    Out = static_cast<int32_t>(N);
    return true;
  }

  /// `fN`.
  bool funcRef(int64_t &Out) {
    skipSpace();
    if (Pos >= S.size() || S[Pos] != 'f')
      return false;
    ++Pos;
    return integer(Out) && Out >= 0;
  }

  /// 1-based column of the cursor — the position of the offending token
  /// when a match just failed (matchers skip leading space first).
  int column() const { return static_cast<int>(Pos) + 1; }
};

const std::unordered_map<std::string, Opcode> &mnemonicTable() {
  static const std::unordered_map<std::string, Opcode> Table = [] {
    std::unordered_map<std::string, Opcode> T;
    for (int Op = 0; Op <= static_cast<int>(Opcode::Nop); ++Op)
      T[opcodeName(static_cast<Opcode>(Op))] = static_cast<Opcode>(Op);
    return T;
  }();
  return Table;
}

/// Operand shape groups, mirroring Instr::str().
enum class Shape { DstImm, Jump, Branch, Call, RegRegImm, ThreeRegImm,
                   ThreeReg };

Shape shapeOf(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
    return Shape::DstImm;
  case Opcode::Jmp:
    return Shape::Jump;
  case Opcode::Br:
    return Shape::Branch;
  case Opcode::Call:
    return Shape::Call;
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetGlobal:
  case Opcode::PutGlobal:
  case Opcode::New:
  case Opcode::AssertTrue:
  case Opcode::AssertNonNull:
  case Opcode::ThreadStart:
  case Opcode::SysRand:
  case Opcode::BurnCpu:
  case Opcode::BarrierInit:
  case Opcode::TimedWait:
  case Opcode::AtomicXchg:
  case Opcode::ChanMake:
  case Opcode::ChanSend:
  case Opcode::ChanRecv:
  case Opcode::ChanTryRecv:
    return Shape::RegRegImm;
  case Opcode::AtomicCas:
    return Shape::ThreeRegImm;
  default:
    return Shape::ThreeReg;
  }
}

} // namespace

ParseResult light::mir::parseProgram(const std::string &Text) {
  ParseResult Out;
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  Function *CurFn = nullptr;
  const LineCursor *Active = nullptr;

  auto Fail = [&](const std::string &What) {
    Out.Ok = false;
    Out.Line = LineNo;
    Out.Col = Active ? Active->column() : 1;
    Out.Error = "line " + std::to_string(LineNo) + ", col " +
                std::to_string(Out.Col) + ": " + What;
    return Out;
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    LineCursor C(Line);
    Active = &C;
    if (C.atEnd())
      continue;

    // `;` starts a comment line (used by repro dumps for metadata).
    if (C.literal(";"))
      continue;

    if (C.literal("class ")) {
      std::string Name;
      if (!C.ident(Name) || !C.literal("{"))
        return Fail("expected `class Name { fields }`");
      ClassDef Cls;
      Cls.Name = Name;
      std::string Field;
      while (C.ident(Field)) {
        Cls.Fields.push_back(Field);
        if (!C.literal(","))
          break;
      }
      if (!C.literal("}"))
        return Fail("unterminated class field list");
      Out.Prog.Classes.push_back(std::move(Cls));
      continue;
    }

    if (C.literal("global ")) {
      int64_t Index;
      std::string Name;
      if (!C.integer(Index) || !C.ident(Name))
        return Fail("expected `global N name`");
      if (static_cast<size_t>(Index) != Out.Prog.Globals.size())
        return Fail("globals must be declared in order");
      Out.Prog.Globals.push_back(Name);
      continue;
    }

    if (C.literal("chan ")) {
      int64_t Index;
      std::string Name;
      if (!C.integer(Index) || !C.ident(Name))
        return Fail("expected `chan N name`");
      if (static_cast<size_t>(Index) != Out.Prog.Channels.size())
        return Fail("channels must be declared in order");
      Out.Prog.Channels.push_back(Name);
      continue;
    }

    if (C.literal("func ")) {
      int64_t Id;
      std::string Name;
      int64_t Params, Regs;
      if (!C.funcRef(Id) || !C.ident(Name) || !C.literal("(") ||
          !C.literal("params=") || !C.integer(Params) || !C.literal(",") ||
          !C.literal("regs=") || !C.integer(Regs) || !C.literal(")"))
        return Fail("expected `func fN name(params=P, regs=R)`");
      if (static_cast<size_t>(Id) != Out.Prog.Functions.size())
        return Fail("functions must be declared in order");
      Function F;
      F.Name = Name;
      F.NumParams = static_cast<uint16_t>(Params);
      F.NumRegs = static_cast<uint16_t>(Regs);
      Out.Prog.Functions.push_back(std::move(F));
      CurFn = &Out.Prog.Functions.back();
      if (C.literal("[entry]"))
        Out.Prog.Entry = static_cast<FuncId>(Id);
      continue;
    }

    if (C.literal("@")) {
      if (!CurFn)
        return Fail("instruction outside a function");
      int64_t Index;
      if (!C.integer(Index) || !C.literal(":"))
        return Fail("expected `@N: op ...`");
      if (static_cast<size_t>(Index) != CurFn->Body.size())
        return Fail("instructions must be numbered consecutively");
      std::string Mnemonic;
      if (!C.ident(Mnemonic))
        return Fail("missing opcode mnemonic");
      auto It = mnemonicTable().find(Mnemonic);
      if (It == mnemonicTable().end())
        return Fail("unknown opcode '" + Mnemonic + "'");
      Instr I;
      I.Op = It->second;

      switch (shapeOf(I.Op)) {
      case Shape::DstImm:
        if (!C.reg(I.A) || !C.literal(",") || !C.integer(I.Imm))
          return Fail("expected `" + Mnemonic + " rA, imm`");
        break;
      case Shape::Jump:
        if (!C.target(I.Target))
          return Fail("expected `jmp @N`");
        break;
      case Shape::Branch:
        if (!C.reg(I.A) || !C.literal(",") || !C.target(I.Target) ||
            !C.literal(",") || !C.target(I.Target2))
          return Fail("expected `br rA, @T, @F`");
        break;
      case Shape::Call: {
        if (!C.reg(I.A) || !C.literal(",") || !C.funcRef(I.Imm) ||
            !C.literal("("))
          return Fail("expected `call rA, fN(args)`");
        Reg Arg;
        while (C.reg(Arg)) {
          I.Args.push_back(Arg);
          if (!C.literal(","))
            break;
        }
        if (!C.literal(")"))
          return Fail("unterminated call argument list");
        break;
      }
      case Shape::RegRegImm:
        if (!C.reg(I.A) || !C.literal(",") || !C.reg(I.B) ||
            !C.literal(",") || !C.literal("#") || !C.integer(I.Imm))
          return Fail("expected `" + Mnemonic + " rA, rB, #imm`");
        break;
      case Shape::ThreeRegImm:
        if (!C.reg(I.A) || !C.literal(",") || !C.reg(I.B) ||
            !C.literal(",") || !C.reg(I.C) || !C.literal(",") ||
            !C.literal("#") || !C.integer(I.Imm))
          return Fail("expected `" + Mnemonic + " rA, rB, rC, #imm`");
        break;
      case Shape::ThreeReg:
        if (!C.reg(I.A) || !C.literal(",") || !C.reg(I.B) ||
            !C.literal(",") || !C.reg(I.C))
          return Fail("expected `" + Mnemonic + " rA, rB, rC`");
        break;
      }
      if (!C.atEnd())
        return Fail("trailing characters after instruction");
      CurFn->Body.push_back(std::move(I));
      continue;
    }

    return Fail("unrecognized line");
  }

  Active = nullptr;
  if (Out.Prog.Functions.empty())
    return Fail("no functions");
  Out.Ok = true;
  return Out;
}

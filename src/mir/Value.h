//===- mir/Value.h - MIR runtime values -------------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of the MIR concurrent mini-language: 64-bit integers and
/// heap references (with null). This mirrors the semantic domain of
/// Section 3.1 of the paper, Val = O ∪ {null} extended with integers so the
/// bug programs can compute.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_MIR_VALUE_H
#define LIGHT_MIR_VALUE_H

#include "trace/Ids.h"

#include <cstdint>
#include <string>

namespace light {
namespace mir {

/// Discriminator for Value.
enum class ValueKind : uint8_t { Int, Ref };

/// A runtime value: tagged int64 or object reference.
struct Value {
  ValueKind Kind = ValueKind::Int;
  int64_t Int = 0;
  ObjectId Ref;

  Value() = default;

  static Value intVal(int64_t I) {
    Value V;
    V.Kind = ValueKind::Int;
    V.Int = I;
    return V;
  }

  static Value ref(ObjectId O) {
    Value V;
    V.Kind = ValueKind::Ref;
    V.Ref = O;
    return V;
  }

  static Value null() { return ref(ObjectId()); }

  bool isInt() const { return Kind == ValueKind::Int; }
  bool isRef() const { return Kind == ValueKind::Ref; }
  bool isNull() const { return isRef() && Ref.isNull(); }

  /// Truthiness for branches: nonzero int or non-null ref.
  bool truthy() const { return isInt() ? Int != 0 : !Ref.isNull(); }

  friend bool operator==(const Value &A, const Value &B) {
    if (A.Kind != B.Kind)
      return false;
    if (A.isInt())
      return A.Int == B.Int;
    return A.Ref == B.Ref;
  }
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

  std::string str() const {
    if (isInt())
      return std::to_string(Int);
    return Ref.str();
  }
};

} // namespace mir
} // namespace light

#endif // LIGHT_MIR_VALUE_H

//===- mir/Parser.h - Textual MIR parsing -----------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual MIR format emitted by Program::str(), so programs
/// can be written, stored, and replayed as plain files (used by the
/// light-replay CLI and the round-trip tests). The grammar, line-oriented:
///
/// \code
///   class Name { field1, field2 }
///   global 0 name
///   func f0 main(params=0, regs=3) [entry]
///     @0: const r0, 42
///     @1: br r0, @3, @2
///     @2: call r1, f1(r0)
///     @3: ret _, _, _
/// \endcode
///
/// Registers are `rN` or `_` (no register); branch targets `@N`;
/// immediates are bare integers or `#N`; function references `fN`.
/// Lines starting with `;` are comments (repro dumps carry their schedule
/// and seed metadata in them).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_MIR_PARSER_H
#define LIGHT_MIR_PARSER_H

#include "mir/Program.h"

#include <string>

namespace light {
namespace mir {

/// Result of parsing: either a program or a diagnostic. Diagnostics are
/// structured — Line/Col locate the error (1-based) — and the rendered
/// Error string carries the same position for log output.
struct ParseResult {
  bool Ok = false;
  Program Prog;
  std::string Error; ///< "line N, col C: message" when !Ok
  int Line = 0;      ///< 1-based error line, 0 when Ok
  int Col = 0;       ///< 1-based error column, 0 when Ok
};

/// Parses the textual MIR format. The result still needs
/// Program::verify() — the parser checks syntax, not semantics.
ParseResult parseProgram(const std::string &Text);

} // namespace mir
} // namespace light

#endif // LIGHT_MIR_PARSER_H

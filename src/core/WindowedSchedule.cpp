//===- core/WindowedSchedule.cpp - Incremental windowed solving -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "core/WindowedSchedule.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/ShardedSolver.h"

#include <algorithm>

using namespace light;

WindowedScheduleBuilder::WindowedScheduleBuilder(WindowedOptions O)
    : Opts(std::move(O)) {
  if (!Opts.SpillPath.empty())
    Spill = std::make_unique<LongWriter>(Opts.SpillPath);
}

WindowedScheduleBuilder::~WindowedScheduleBuilder() = default;

void WindowedScheduleBuilder::fail(std::string Why) {
  if (Error.empty())
    Error = std::move(Why);
}

void WindowedScheduleBuilder::failTooSmall(WindowTooSmall::Kind What,
                                           std::string Detail) {
  if (!TooSmall.fired()) {
    TooSmall.What = What;
    TooSmall.Detail = Detail;
  }
  fail("window too small: " + std::move(Detail));
  obs::Registry::global().counter("schedule.window_too_small").add(1);
}

bool WindowedScheduleBuilder::addSpans(const RecordingLog &Log) {
  if (!ok())
    return false;
  for (size_t I = SeenSpans; I < Log.Spans.size(); ++I) {
    Arrived[Log.Spans[I].Thread].push_back(Log.Spans[I]);
    ++ArrivedCount;
  }
  SeenSpans = Log.Spans.size();
  drainReady(/*Force=*/false);
  while (Pending.size() >= Opts.WindowSpans && !Pending.empty()) {
    if (!solveWindow(std::max<size_t>(Opts.WindowSpans, 1)))
      return false;
    drainReady(/*Force=*/false);
  }
  return true;
}

void WindowedScheduleBuilder::drainReady(bool Force) {
  // Round-robin over the per-thread queues until a full pass drains
  // nothing: draining one thread's span can unblock another's (the
  // reads-from relation points back in time, so this terminates with
  // every queue empty once the stream is complete).
  bool Progress = true;
  while (Progress && ArrivedCount) {
    Progress = false;
    for (auto &[T, Queue] : Arrived) {
      while (!Queue.empty()) {
        const DepSpan &S = Queue.front();
        if (!Force && S.Src.valid() && S.Src.Thread != T &&
            S.Src.Count > DrainedLast[S.Src.Thread])
          break; // source's covering span not drained yet
        Counter &High = DrainedLast[T];
        High = std::max(High, S.Last);
        Pending.push_back(S);
        Queue.pop_front();
        --ArrivedCount;
        Progress = true;
      }
    }
  }
}

bool WindowedScheduleBuilder::finish() {
  if (!ok())
    return false;
  if (Finished)
    return true;
  Finished = true;
  drainReady(/*Force=*/true);
  while (!Pending.empty())
    if (!solveWindow(std::min(Pending.size(),
                              std::max<size_t>(Opts.WindowSpans, 1))))
      return false;
  Aggregate.Outcome = smt::SolveResult::Status::Sat;
  if (Spill) {
    Spill->finish();
    if (!Spill->ok())
      fail("order spill failed: " + Spill->error());
  }
  obs::Registry::global().counter("schedule.windows").add(Windows);
  return ok();
}

bool WindowedScheduleBuilder::solveWindow(size_t Count) {
  obs::TraceSpan Phase("schedule.window_solve", "solve");
  Phase.arg("spans", Count);

  smt::OrderSystem Sys;
  std::vector<AccessId> VarAccess;
  std::unordered_map<uint64_t, smt::Var> AccessVar;
  auto HorizonOf = [&](ThreadId T) -> Counter {
    return T < FrozenHorizon.size() ? FrozenHorizon[T] : 0;
  };
  auto GetVar = [&](AccessId A) -> smt::Var {
    auto [It, Inserted] = AccessVar.try_emplace(A.pack(), 0);
    if (Inserted) {
      It->second = Sys.newVar(A.str());
      VarAccess.push_back(A);
    }
    return It->second;
  };

  // Variables per span, with the frontier admission checks (see the header
  // for the soundness argument). Identical var/constraint construction to
  // buildScheduleProblem otherwise.
  std::unordered_map<LocationId, std::vector<SpanVarRefs>> ByLoc;
  for (size_t I = 0; I < Count; ++I) {
    const DepSpan &S = Pending[I];
    if (S.First <= HorizonOf(S.Thread)) {
      failTooSmall(WindowTooSmall::Kind::StragglerSpan,
                   "span " + S.str() + " starts at or below thread " +
                       std::to_string(S.Thread) + "'s frozen horizon " +
                       std::to_string(HorizonOf(S.Thread)));
      return false;
    }
    SpanVarRefs SV;
    SV.S = &S;
    if (S.Src.valid()) {
      if (S.Src.Count <= HorizonOf(S.Src.Thread)) {
        // The source was frozen; only the newest frozen write on this
        // location is still a legal thing to read.
        SV.SrcFrozen = true;
        const LocFrontier &F = Frontier[S.Loc];
        if (S.Src.pack() != F.NewestWritePacked) {
          failTooSmall(WindowTooSmall::Kind::StaleSource,
                       "span " + S.str() +
                           " reads a frozen write that is no longer the "
                           "newest on its location");
          return false;
        }
      } else {
        SV.Src = GetVar(S.Src);
      }
    }
    if (S.Kind == SpanKind::Init && Frontier[S.Loc].HasWriteOrDep) {
      failTooSmall(WindowTooSmall::Kind::InitAfterWrite,
                   "init span " + S.str() +
                       " on a location with a frozen write");
      return false;
    }
    SV.First = GetVar(S.first());
    SV.Last = S.Last == S.First ? SV.First : GetVar(S.last());
    ByLoc[S.Loc].push_back(SV);
  }

  // Intra-thread order chains over this window's variables. Chains to
  // frozen variables hold by construction: frozen values < NextBase and
  // the straggler check keeps window counters above frozen ones.
  {
    std::unordered_map<ThreadId, std::vector<AccessId>> PerThread;
    for (const AccessId &A : VarAccess)
      PerThread[A.Thread].push_back(A);
    std::vector<ThreadId> Threads;
    Threads.reserve(PerThread.size());
    for (const auto &Entry : PerThread)
      Threads.push_back(Entry.first);
    std::sort(Threads.begin(), Threads.end());
    for (ThreadId T : Threads) {
      std::vector<AccessId> &List = PerThread[T];
      std::sort(List.begin(), List.end(),
                [](const AccessId &X, const AccessId &Y) {
                  return X.Count < Y.Count;
                });
      for (size_t I = 1; I < List.size(); ++I)
        Sys.addLess(AccessVar[List[I - 1].pack()],
                    AccessVar[List[I].pack()]);
    }
  }

  // Dependence + noninterference constraints per location, ascending.
  std::vector<LocationId> Locs;
  Locs.reserve(ByLoc.size());
  for (const auto &Entry : ByLoc)
    Locs.push_back(Entry.first);
  std::sort(Locs.begin(), Locs.end());
  for (LocationId Loc : Locs) {
    std::vector<SpanVarRefs> &Spans = ByLoc[Loc];
    for (const SpanVarRefs &SV : Spans)
      if (SV.S->Src.valid() && !SV.SrcFrozen)
        Sys.addLess(SV.Src, SV.First);
    for (size_t I = 0; I < Spans.size(); ++I)
      for (size_t J = I + 1; J < Spans.size(); ++J)
        emitSpanPairConstraints(Sys, Spans[I], Spans[J]);
  }

  Phase.arg("vars", Sys.numVars());
  Phase.arg("clauses", Sys.clauses().size());
  smt::SolveResult R =
      Opts.SolverShards == 1
          ? smt::solveOrder(Sys, Opts.Engine, Opts.Limits)
          : smt::solveSharded(Sys, Opts.Engine, Opts.Limits,
                              Opts.SolverShards);
  Aggregate.Decisions += R.Decisions;
  Aggregate.Propagations += R.Propagations;
  Aggregate.Conflicts += R.Conflicts;
  Aggregate.CycleChecks += R.CycleChecks;
  Aggregate.ScanSteps += R.ScanSteps;
  Aggregate.SolveSeconds += R.SolveSeconds;
  Aggregate.Shards = std::max(Aggregate.Shards, R.Shards);
  if (!R.sat()) {
    fail(R.failed()
             ? "window solve failed (" + R.failReasonStr() +
                   "): " + R.Message
             : "window constraint system unsatisfiable (malformed log?)");
    return false;
  }

  // Offset-stack the window's model strictly above every frozen value,
  // then freeze: emit the fragment and advance the frontier.
  int64_t MinV = R.Values[0], MaxV = R.Values[0];
  for (smt::Var V = 1; V < Sys.numVars(); ++V) {
    MinV = std::min(MinV, R.Values[V]);
    MaxV = std::max(MaxV, R.Values[V]);
  }
  int64_t Offset = NextBase - MinV;
  NextBase = MaxV + Offset + 1;

  std::vector<uint32_t> Perm(VarAccess.size());
  for (uint32_t I = 0; I < Perm.size(); ++I)
    Perm[I] = I;
  std::sort(Perm.begin(), Perm.end(), [&](uint32_t X, uint32_t Y) {
    if (R.Values[X] != R.Values[Y])
      return R.Values[X] < R.Values[Y];
    return VarAccess[X].pack() < VarAccess[Y].pack();
  });
  for (uint32_t I : Perm) {
    if (Spill)
      Spill->put(VarAccess[I].pack());
    else
      OrderMem.push_back(VarAccess[I]);
    ++OrderCount;
  }

  for (const AccessId &A : VarAccess) {
    if (A.Thread >= FrozenHorizon.size())
      FrozenHorizon.resize(A.Thread + 1, 0);
    FrozenHorizon[A.Thread] = std::max(FrozenHorizon[A.Thread], A.Count);
  }
  for (LocationId Loc : Locs) {
    LocFrontier &F = Frontier[Loc];
    for (const SpanVarRefs &SV : ByLoc[Loc]) {
      if (SV.hasWrites() || SV.S->Src.valid())
        F.HasWriteOrDep = true;
      auto Consider = [&](AccessId Id, smt::Var V) {
        int64_t Val = R.Values[V] + Offset;
        if (!F.NewestWritePacked || Val > F.NewestWriteValue ||
            (Val == F.NewestWriteValue && Id.pack() > F.NewestWritePacked)) {
          F.NewestWritePacked = Id.pack();
          F.NewestWriteValue = Val;
        }
      };
      if (SV.hasWrites())
        Consider(SV.S->last(), SV.Last);
      if (SV.S->Src.valid() && !SV.SrcFrozen)
        Consider(SV.S->Src, SV.Src);
    }
  }

  ++Windows;
  Pending.erase(Pending.begin(), Pending.begin() + Count);
  return true;
}

std::vector<AccessId> WindowedScheduleBuilder::solvedOrder() const {
  if (Spill)
    return loadSpilledOrder(Opts.SpillPath);
  return OrderMem;
}

ReplaySchedule
WindowedScheduleBuilder::takeSchedule(const RecordingLog &Log) const {
  return ReplaySchedule::fromSolvedOrder(Log, solvedOrder(), Aggregate);
}

std::vector<AccessId> light::loadSpilledOrder(const std::string &Path) {
  std::vector<AccessId> Order;
  LongReader Reader(Path);
  if (!Reader.ok())
    return Order;
  Order.reserve(Reader.size());
  while (!Reader.atEnd())
    Order.push_back(AccessId::unpack(Reader.get()));
  return Order;
}

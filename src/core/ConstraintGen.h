//===- core/ConstraintGen.h - Equation 1 over span intervals ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a RecordingLog into the replay constraint system of Section 4.2:
///
///  * one order variable O(c) per recorded access (span endpoints and
///    dependence sources),
///  * intra-thread order: O(c1) < O(c2) for same-thread accesses with
///    c1 < c2,
///  * dependence constraints O(c_w) < O(c_r),
///  * noninterference (Equation 1), generalized from single dependences to
///    the span intervals produced by the prec map and O1: two spans on the
///    same location must not overlap unless they read the same source
///    write. The rules are derived in trace/DepSpan.h and below.
///
/// The resulting system is pure Integer Difference Logic and is handed to
/// smt::IdlSolver or the Z3 backend.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CORE_CONSTRAINTGEN_H
#define LIGHT_CORE_CONSTRAINTGEN_H

#include "smt/OrderSystem.h"
#include "trace/RecordingLog.h"

#include <unordered_map>

namespace light {

/// A constraint system plus the access <-> variable correspondence.
struct ScheduleProblem {
  smt::OrderSystem System;
  std::vector<AccessId> VarAccess;                   ///< var -> access
  std::unordered_map<uint64_t, smt::Var> AccessVar;  ///< packed -> var

  /// Connected components of System: accesses in different components
  /// share no constraint (no common thread chain, no common location), so
  /// their sub-systems can be solved independently (smt::solveSharded).
  smt::ComponentInfo Components;

  smt::Var varOf(AccessId A) const {
    auto It = AccessVar.find(A.pack());
    return It == AccessVar.end() ? ~0u : It->second;
  }
};

/// Builds the constraint system for \p Log.
ScheduleProblem buildScheduleProblem(const RecordingLog &Log);

} // namespace light

#endif // LIGHT_CORE_CONSTRAINTGEN_H

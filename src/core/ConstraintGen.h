//===- core/ConstraintGen.h - Equation 1 over span intervals ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a RecordingLog into the replay constraint system of Section 4.2:
///
///  * one order variable O(c) per recorded access (span endpoints and
///    dependence sources),
///  * intra-thread order: O(c1) < O(c2) for same-thread accesses with
///    c1 < c2,
///  * dependence constraints O(c_w) < O(c_r),
///  * noninterference (Equation 1), generalized from single dependences to
///    the span intervals produced by the prec map and O1: two spans on the
///    same location must not overlap unless they read the same source
///    write. The rules are derived in trace/DepSpan.h and below.
///
/// The resulting system is pure Integer Difference Logic and is handed to
/// smt::IdlSolver or the Z3 backend.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CORE_CONSTRAINTGEN_H
#define LIGHT_CORE_CONSTRAINTGEN_H

#include "smt/OrderSystem.h"
#include "trace/RecordingLog.h"

#include <unordered_map>

namespace light {

/// A constraint system plus the access <-> variable correspondence.
struct ScheduleProblem {
  smt::OrderSystem System;
  std::vector<AccessId> VarAccess;                   ///< var -> access
  std::unordered_map<uint64_t, smt::Var> AccessVar;  ///< packed -> var

  /// Connected components of System: accesses in different components
  /// share no constraint (no common thread chain, no common location), so
  /// their sub-systems can be solved independently (smt::solveSharded).
  smt::ComponentInfo Components;

  smt::Var varOf(AccessId A) const {
    auto It = AccessVar.find(A.pack());
    return It == AccessVar.end() ? ~0u : It->second;
  }
};

/// Builds the constraint system for \p Log.
ScheduleProblem buildScheduleProblem(const RecordingLog &Log);

/// One span with its order variables — the operand of the pairwise
/// noninterference rules R1-R6 (derivation in ConstraintGen.cpp). Shared
/// between the monolithic builder above and the windowed incremental
/// builder (core/WindowedSchedule.h), which must emit bit-identical
/// in-window constraints.
struct SpanVarRefs {
  const DepSpan *S = nullptr;
  smt::Var Src = ~0u; ///< valid when S->Src.valid() && !SrcFrozen
  smt::Var First = 0;
  smt::Var Last = 0;

  /// Windowed builds only: the span's source write belongs to an
  /// already-frozen window, so it has a final order value *below* every
  /// variable of the current window and no Var in this system. The
  /// monolithic builder always leaves this false.
  bool SrcFrozen = false;

  bool readOnly() const { return S->Kind != SpanKind::Own; }
  bool hasWrites() const { return S->Kind == SpanKind::Own; }

  /// The order variable at which this span's interval begins. With a
  /// frozen source the interval start is pinned below the window; First is
  /// the nearest in-system variable.
  smt::Var startVar() const {
    return S->Src.valid() && !SrcFrozen ? Src : First;
  }
};

/// Emits the R1-R6 noninterference constraints for the unordered
/// same-location span pair (A, B) into \p Sys. Exactly one rule applies;
/// R1/R3-read-only/R5 emit nothing.
///
/// Frozen sources (windowed builds): a disjunct of the form
/// O(x) < O(frozen source) can never hold — frozen values lie below the
/// whole window — so R6 drops it and emits the surviving disjunct as a
/// hard constraint, which is strictly stronger than the monolithic clause
/// and therefore sound.
void emitSpanPairConstraints(smt::OrderSystem &Sys, const SpanVarRefs &A,
                             const SpanVarRefs &B);

} // namespace light

#endif // LIGHT_CORE_CONSTRAINTGEN_H

//===- core/LightRecorder.cpp - Algorithm 1 with O1/O2 --------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "core/LightRecorder.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "trace/SegmentCodec.h"

#include <cassert>
#include <mutex>

using namespace light;

/// One epoch segment under construction. Dispatches each section to the
/// LIGHT002 word encoders or the LIGHT003 varint encoder; either way a
/// failed section leaves the draft unchanged and latches Overflow, so the
/// segment that reaches disk holds exactly the sections that fit the wire.
struct LightRecorder::SegmentDraft {
  explicit SegmentDraft(bool Compressed) : Compressed(Compressed) {}

  bool Compressed;
  std::vector<uint64_t> Words; ///< LIGHT002 path
  CompressedSegmentEncoder Enc; ///< LIGHT003 path
  bool Overflow = false;

  bool empty() const { return Compressed ? Enc.empty() : Words.empty(); }
  std::vector<uint64_t> finish() const {
    return Compressed ? Enc.finish() : Words;
  }

  void spans(const DepSpan *S, size_t N) {
    Overflow |= !(Compressed ? Enc.addSpans(S, N)
                             : encodeSpanSection(Words, S, N));
  }
  void syscalls(const SyscallRecord *Calls, size_t N) {
    if (Compressed)
      Overflow |= !Enc.addSyscalls(Calls, N);
    else
      encodeSyscallSection(Words, Calls, N);
  }
  void spawns(const std::vector<SpawnRecord> &Spawns) {
    if (Compressed)
      Overflow |= !Enc.addSpawns(Spawns);
    else
      encodeSpawnSection(Words, Spawns);
  }
  void counters(const std::vector<std::pair<ThreadId, Counter>> &Updates) {
    Overflow |= !(Compressed ? Enc.addCounters(Updates)
                             : encodeCounterSection(Words, Updates));
  }
  void guards(const GuardSpec &G) {
    if (Compressed)
      Overflow |= !Enc.addGuards(G);
    else
      encodeGuardSections(Words, G);
  }
};

LightRecorder::LightRecorder(LightOptions O) : Opts(std::move(O)) {
  Threads.reserve(MaxThreads);
  for (uint32_t I = 0; I < MaxThreads; ++I)
    Threads.push_back(std::make_unique<PerThread>());
  EpochsOn = Opts.EpochSpans != 0 || Opts.EpochMs != 0;
}

LightRecorder::~LightRecorder() = default;

void LightRecorder::setGuards(GuardSpec Spec) { Guards = std::move(Spec); }

void LightRecorder::attachRegistry(const ThreadRegistry *Registry) {
  SpawnSource = Registry;
}

Counter LightRecorder::counterOf(ThreadId T) const { return state(T).Ctr; }

LightRecorder::OpenSpan &LightRecorder::spanFor(PerThread &S, LocationId L) {
  // unordered_map references are stable across inserts, so the one-entry
  // cache stays valid until the map is cleared.
  if (S.CachedLoc == L && S.CachedSpan)
    return *S.CachedSpan;
  OpenSpan &Sp = S.Open[L];
  S.CachedLoc = L;
  S.CachedSpan = &Sp;
  return Sp;
}


void LightRecorder::closeSpan(PerThread &S, ThreadId T, LocationId L,
                              OpenSpan &Sp) {
  if (!Sp.Active)
    return;
  // A single plain write with no incoming dependence carries no ordering
  // obligation of its own: if some thread read it, that reader's recorded
  // dependence names it (making it a gated source); otherwise it is blind.
  // Dropping it keeps O1 from ever logging more than Algorithm 1 does.
  if (Sp.Kind == SpanKind::Own && !Sp.HeadIsRmw && Sp.SrcPacked == 0 &&
      Sp.First == Sp.Last) {
    Sp.Active = false;
    return;
  }
  DepSpan D;
  D.Loc = L;
  D.Kind = Sp.Kind;
  if (Sp.SrcPacked)
    D.Src = AccessId::unpack(Sp.SrcPacked);
  D.Thread = T;
  D.First = Sp.First;
  D.Last = Sp.Last;
  S.Buffer.push_back(D);
  Sp.Active = false;
  obs::Tracer &Tr = obs::Tracer::global();
  if (Tr.enabled())
    Tr.instant("record.span", "record", T, {"loc", L},
               {"len", Sp.Last - Sp.First + 1});
  maybeFlush(S, T);
  if (EpochsOn)
    maybeEpochFlush(S, T);
}

void LightRecorder::maybeFlush(PerThread &S, ThreadId T) {
  if (!Opts.WriteToDisk || S.Buffer.size() < Opts.FlushThresholdSpans)
    return;
  if (!S.Writer) {
    std::string Stem = "light-t" + std::to_string(T);
    std::string Path = Opts.LogDir.empty()
                           ? makeTempPath(Stem)
                           : Opts.LogDir + "/" + Stem + ".log";
    S.Writer = std::make_unique<LongWriter>(Path);
  }
  for (const DepSpan &D : S.Buffer) {
    S.Writer->put(D.Loc);
    S.Writer->put(D.Src.valid() ? D.Src.pack() : 0);
    S.Writer->put(AccessId(D.Thread, D.First).pack() |
                  (static_cast<uint64_t>(D.Kind) << 62));
    S.Writer->put(D.Last);
  }
  S.Writer->flush();
  S.Archived.insert(S.Archived.end(), S.Buffer.begin(), S.Buffer.end());
  S.Buffer.clear();
}

// --- Epoch durability -------------------------------------------------------
//
// Everything below is reached only from span-close and syscall paths when
// EpochSpans/EpochMs enable it — never from the per-access protocol — so the
// recording overhead the paper measures is untouched by default.

void LightRecorder::maybeEpochFlush(PerThread &S, ThreadId T) {
  size_t Pending = S.Archived.size() + S.Buffer.size() - S.DurableSpans +
                   (S.Syscalls.size() - S.DurableSyscalls);
  if (!Pending)
    return;
  bool Due = Opts.EpochSpans && Pending >= Opts.EpochSpans;
  if (!Due && Opts.EpochMs)
    Due = std::chrono::steady_clock::now() - S.LastEpoch >=
          std::chrono::milliseconds(Opts.EpochMs);
  if (Due)
    flushEpoch(S, T);
}

void LightRecorder::appendPendingSections(SegmentDraft &Draft, PerThread &S,
                                          ThreadId T) {
  size_t Total = S.Archived.size() + S.Buffer.size();
  if (S.DurableSpans < Total) {
    // Spans emit in stable Archived-then-Buffer order; gather the suffix
    // that postdates the last durable flush.
    std::vector<DepSpan> Fresh;
    Fresh.reserve(Total - S.DurableSpans);
    for (size_t I = S.DurableSpans; I < Total; ++I)
      Fresh.push_back(I < S.Archived.size()
                          ? S.Archived[I]
                          : S.Buffer[I - S.Archived.size()]);
    Draft.spans(Fresh.data(), Fresh.size());
    S.DurableSpans = Total;
  }
  if (S.DurableSyscalls < S.Syscalls.size()) {
    Draft.syscalls(S.Syscalls.data() + S.DurableSyscalls,
                   S.Syscalls.size() - S.DurableSyscalls);
    S.DurableSyscalls = S.Syscalls.size();
  }
  Draft.counters({{T, S.Ctr}});
  S.LastEpoch = std::chrono::steady_clock::now();
}

void LightRecorder::flushEpoch(PerThread &S, ThreadId T) {
  SegmentDraft Draft(Opts.CompressedEpochs);
  appendPendingSections(Draft, S, T);
  // The spawn table rides along on every epoch (replace semantics) so a
  // salvaged prefix can still map replay threads to recorded ones.
  if (SpawnSource)
    Draft.spawns(SpawnSource->spawnTable());
  writeDurableSegment(Draft);
}

bool LightRecorder::writeDurableSegment(SegmentDraft &Draft) {
  if (Draft.Overflow)
    noteOverflow("an epoch section exceeded a wire width and was dropped "
                 "from the durable log");
  std::lock_guard<std::mutex> Guard(EpochMutex);
  if (!Durable) {
    std::string Path = Opts.DurableLogPath.empty() ? makeTempPath("durable")
                                                   : Opts.DurableLogPath;
    Durable = std::make_unique<DurableLogWriter>(
        std::move(Path),
        Opts.CompressedEpochs ? CompressedFileMagic : DurableFileMagic);
  }
  if (!Durable->ok())
    return false;
  // One durable segment == one recording epoch reaching disk; the progress
  // heartbeat watches this to show long runs advancing through epochs.
  obs::Registry::global().counter("record.epochs").add(1);
  if (!GuardsEmitted) {
    GuardsEmitted = true;
    if (Opts.EnableO2 && !Guards.empty()) {
      SegmentDraft GuardDraft(Opts.CompressedEpochs);
      GuardDraft.guards(Guards);
      if (!Durable->writeSegment(GuardDraft.finish()))
        return false;
    }
  }
  return Durable->writeSegment(Draft.finish());
}

void LightRecorder::noteOverflow(const std::string &What, bool BumpMetric) {
  if (OverflowSticky.exchange(true, std::memory_order_relaxed))
    return;
  // The section encoders bump record.overflow themselves; only the counter
  // saturation path needs the bump here.
  if (BumpMetric)
    obs::Registry::global().counter("record.overflow").add(1);
  std::lock_guard<std::mutex> Guard(OverflowMutex);
  OverflowWhat = What;
}

void LightRecorder::counterSaturated(ThreadId T) {
  // Past MaxAccessCounter the packed AccessId would alias an earlier access
  // of the same thread (pack() masks). Perform the access uninstrumented
  // and fail the recording with a structured error — the old behavior was
  // an assert in debug builds and silent aliasing in release ones.
  noteOverflow("thread " + std::to_string(T) +
                   " access counter exceeded MaxAccessCounter; the "
                   "recording is incomplete from that access on",
               /*BumpMetric=*/true);
}

std::string LightRecorder::overflowError() const {
  if (!overflowed())
    return std::string();
  std::lock_guard<std::mutex> Guard(OverflowMutex);
  return OverflowWhat;
}

bool LightRecorder::crashFlush() {
  if (!EpochsOn)
    return false;
  SegmentDraft Draft(Opts.CompressedEpochs);
  for (uint32_t T = 0; T < MaxThreads; ++T) {
    PerThread &S = *Threads[T];
    for (auto &[L, Sp] : S.Open)
      closeSpan(S, static_cast<ThreadId>(T), L, Sp);
    S.Open.clear();
    S.CachedLoc = InvalidLocation;
    S.CachedSpan = nullptr;
    if (S.Ctr || S.DurableSyscalls < S.Syscalls.size())
      appendPendingSections(Draft, S, static_cast<ThreadId>(T));
  }
  if (SpawnSource)
    Draft.spawns(SpawnSource->spawnTable());
  // An empty trailing zero-payload segment would masquerade as the
  // clean-close marker; with nothing to save, leave only what is already
  // durable on disk.
  bool Ok = Draft.empty() ? true : writeDurableSegment(Draft);
  std::lock_guard<std::mutex> Guard(EpochMutex);
  if (!Durable)
    return false;
  Durable->abandon(); // deliberately no clean-close marker
  // The message side log needs no crash handling: every append already
  // reached the OS, and its missing close marker is exactly the torn-tail
  // shape loadMessageLog salvages.
  return Ok;
}

// --- The recording protocol ------------------------------------------------

void LightRecorder::onWrite(ThreadId T, LocationId L, LocMeta &M,
                            FunctionRef<void()> Perform) {
  PerThread &S = state(T);
  Counter C = ++S.Ctr;
  if (C > MaxAccessCounter) {
    counterSaturated(T);
    Perform();
    return;
  }
  if (isGuarded(L)) {
    // O2: the lock operation order subsumes this location's dependences
    // (Lemma 4.2); perform the access uninstrumented.
    ++S.GuardedElided;
    Perform();
    return;
  }
  uint32_t PrevAccessor;
  {
    // "The simple update (lw_l = n) is placed in the same atomic section
    // with the shared access from [the] program" — Section 2.3.
    std::unique_lock<std::mutex> Guard(Stripes.stripeFor(L),
                                       std::defer_lock);
    // Contention probe, sampled 1/64 by the per-thread access counter: an
    // unconditional try_lock costs ~40% on this fast path (pthread trylock
    // is slower than the lock fast path), which would distort the very
    // overhead Figs. 4/7 measure. Sampling keeps the signal within the
    // <= 1% telemetry budget; finish() publishes the raw sampled count.
    if (Opts.Telemetry && (C & 63) == 0) {
      if (!Guard.try_lock()) {
        ++S.StripeContended;
        Guard.lock();
      }
    } else {
      Guard.lock();
    }
    Perform();
    M.LastWrite.store(AccessId(T, C).pack());
    PrevAccessor = M.LastAccessor.exchange(T + 1u);
  }
  noteWrite(S, T, L, C, PrevAccessor);
}

void LightRecorder::onRead(ThreadId T, LocationId L, LocMeta &M,
                           FunctionRef<void()> Perform) {
  PerThread &S = state(T);
  Counter C = ++S.Ctr;
  if (C > MaxAccessCounter) {
    counterSaturated(T);
    Perform();
    return;
  }
  if (isGuarded(L)) {
    ++S.GuardedElided;
    Perform();
    return;
  }
  // Optimistic write/read matching (Section 2.3): snapshot lw, perform the
  // read, re-check lw; retry when a write slipped in between. Only a
  // *foreign* reader leaves the last-accessor mark (it is the one event
  // that must close the writer's O1 span); the common same-thread burst
  // path stays free of shared stores.
  uint64_t N1, N2;
  while (true) {
    N1 = M.LastWrite.load();
    if (N1 != 0 && AccessId::unpack(N1).Thread != T)
      M.LastAccessor.store(T + 1u);
    Perform();
    N2 = M.LastWrite.load();
    if (N1 == N2)
      break;
    ++S.Retries;
    obs::Tracer &Tr = obs::Tracer::global();
    if (Tr.enabled())
      Tr.instant("record.read_retry", "record", T, {"loc", L});
  }
  noteRead(S, T, L, N1, C, M.LastAccessor.load(std::memory_order_relaxed));
}

void LightRecorder::onRmw(ThreadId T, LocationId L, LocMeta &M,
                          FunctionRef<void()> Perform) {
  PerThread &S = state(T);
  Counter C = ++S.Ctr;
  if (C > MaxAccessCounter) {
    counterSaturated(T);
    Perform();
    return;
  }
  if (isGuarded(L)) {
    ++S.GuardedElided;
    Perform();
    return;
  }
  // Lock acquisition et al.: the ghost read+write run inside the lock
  // region, which already provides the atomicity Algorithm 1 needs
  // (Section 4.3) — no striped lock required.
  Perform();
  uint64_t Src = M.LastWrite.load();
  M.LastWrite.store(AccessId(T, C).pack());
  uint32_t PrevAccessor = M.LastAccessor.exchange(T + 1u);
  noteRmw(S, T, L, Src, C, PrevAccessor);
}

// --- Thread-local span maintenance (no synchronization) ---------------------

void LightRecorder::noteRead(PerThread &S, ThreadId T, LocationId L,
                             uint64_t Src, Counter C, uint32_t PrevAccessor) {
  OpenSpan &Sp = spanFor(S, L);
  if (Sp.Active) {
    // prec hit (Algorithm 1 lines 7-9): same source as the previous read.
    if ((Sp.Kind == SpanKind::Read || Sp.Kind == SpanKind::Init) &&
        Sp.SrcPacked == Src) {
      Sp.Last = C;
      ++S.SpanMerges;
      return;
    }
    // O1 extension: reading my own write from the current uninterleaved
    // span, with no other thread having touched the location meanwhile.
    if (Opts.EnableO1 && Sp.Kind == SpanKind::Own && Src != 0) {
      AccessId SrcId = AccessId::unpack(Src);
      if (SrcId.Thread == T && SrcId.Count >= Sp.First &&
          SrcId.Count <= Sp.Last &&
          (PrevAccessor == 0 || PrevAccessor == T + 1u)) {
        Sp.Last = C;
        ++S.SpanMerges;
        return;
      }
    }
    closeSpan(S, T, L, Sp);
  }
  Sp.Active = true;
  Sp.HeadIsRmw = false;
  Sp.SrcPacked = Src;
  Sp.Kind = Src ? SpanKind::Read : SpanKind::Init;
  Sp.First = Sp.Last = C;
}

void LightRecorder::noteWrite(PerThread &S, ThreadId T, LocationId L,
                              Counter C, uint32_t PrevAccessor) {
  OpenSpan &Sp = spanFor(S, L);
  if (Sp.Active) {
    if (Opts.EnableO1 && Sp.Kind == SpanKind::Own &&
        (PrevAccessor == 0 || PrevAccessor == T + 1u)) {
      Sp.Last = C;
      ++S.SpanMerges;
      return;
    }
    closeSpan(S, T, L, Sp);
  }
  if (!Opts.EnableO1)
    return; // Plain writes are only recorded as dependence sources.
  Sp.Active = true;
  Sp.HeadIsRmw = false;
  Sp.Kind = SpanKind::Own;
  Sp.SrcPacked = 0;
  Sp.First = Sp.Last = C;
}

void LightRecorder::noteRmw(PerThread &S, ThreadId T, LocationId L,
                            uint64_t Src, Counter C, uint32_t PrevAccessor) {
  OpenSpan &Sp = spanFor(S, L);
  // Channel ghost RMWs are the anchor points of cross-node send->recv edges
  // (dist/NodeSet): each must surface as its own span endpoint — i.e. an
  // order variable in the merged constraint system — so O1 never compresses
  // a run of message operations into one span.
  bool Anchor = loc::kindOf(L) == LocationKind::Chan;
  if (Sp.Active) {
    if (!Anchor && Opts.EnableO1 && Sp.Kind == SpanKind::Own &&
        (PrevAccessor == 0 || PrevAccessor == T + 1u)) {
      // Reentrant own sequence (e.g. repeated acquisitions with no
      // contention in between).
      Sp.Last = C;
      ++S.SpanMerges;
      return;
    }
    closeSpan(S, T, L, Sp);
  }
  // An RMW always heads a new span: it reads Src and writes, so the span is
  // Own-kind with an (optional) incoming dependence.
  Sp.Active = true;
  Sp.HeadIsRmw = true;
  Sp.Kind = SpanKind::Own;
  Sp.SrcPacked = Src;
  Sp.First = Sp.Last = C;
  if (!Opts.EnableO1 || Anchor) {
    // Without O1 (or for an anchor access) the span must not grow: emit it
    // immediately.
    closeSpan(S, T, L, Sp);
  }
}

uint64_t LightRecorder::onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
  uint64_t Value = Compute();
  PerThread &S = state(T);
  S.Syscalls.push_back({T, Value});
  if (EpochsOn)
    maybeEpochFlush(S, T);
  return Value;
}

void LightRecorder::attachMessageLog(const std::string &Path) {
  std::lock_guard<std::mutex> Guard(MsgMutex);
  MsgLog = std::make_unique<MessageLogWriter>(Path);
}

void LightRecorder::onMessage(ThreadId T, uint32_t Chan, uint64_t Seq,
                              int64_t Value, bool IsSend) {
  std::lock_guard<std::mutex> Guard(MsgMutex);
  if (!MsgLog)
    return;
  MessageRecord R;
  R.Chan = Chan;
  R.IsSend = IsSend;
  R.Seq = Seq;
  R.Value = Value;
  // The caller fires this right after the ghost chan RMW, so the thread's
  // current counter *is* that RMW's AccessId — the correlation key the
  // NodeSetLoader uses to anchor cross-node edges in the span stream.
  R.Access = AccessId{T, state(T).Ctr};
  MsgLog->append(R);
}

void LightRecorder::onThreadFinish(ThreadId T) {
  PerThread &S = state(T);
  for (auto &[L, Sp] : S.Open)
    closeSpan(S, T, L, Sp);
  S.Open.clear();
  S.CachedLoc = InvalidLocation;
  S.CachedSpan = nullptr;
}

RecordingLog LightRecorder::finish(const ThreadRegistry *Registry) {
  RecordingLog Log;
  Counter MaxThread = 0;
  for (uint32_t T = 0; T < MaxThreads; ++T) {
    PerThread &S = *Threads[T];
    for (auto &[L, Sp] : S.Open)
      closeSpan(S, static_cast<ThreadId>(T), L, Sp);
    S.Open.clear();
    S.CachedLoc = InvalidLocation;
    S.CachedSpan = nullptr;
    if (S.Ctr)
      MaxThread = T;
    Log.Spans.insert(Log.Spans.end(), S.Archived.begin(), S.Archived.end());
    Log.Spans.insert(Log.Spans.end(), S.Buffer.begin(), S.Buffer.end());
    Log.Syscalls.insert(Log.Syscalls.end(), S.Syscalls.begin(),
                        S.Syscalls.end());
    if (S.Writer) {
      S.Writer->finish();
      S.Writer.reset();
    }
  }
  Log.FinalCounters.resize(MaxThread + 1, 0);
  for (uint32_t T = 0; T <= MaxThread; ++T)
    Log.FinalCounters[T] = Threads[T]->Ctr;
  if (const ThreadRegistry *Reg = Registry ? Registry : SpawnSource)
    Log.Spawns = Reg->spawnTable();
  if (Opts.EnableO2)
    Log.Guards = Guards;

  if (EpochsOn) {
    // Final durable segment: whatever each thread still holds, the complete
    // counter table and spawn table, then the clean-close marker.
    SegmentDraft Draft(Opts.CompressedEpochs);
    for (uint32_t T = 0; T < MaxThreads; ++T) {
      PerThread &S = *Threads[T];
      if (S.Ctr || S.DurableSpans < S.Archived.size() + S.Buffer.size() ||
          S.DurableSyscalls < S.Syscalls.size())
        appendPendingSections(Draft, S, static_cast<ThreadId>(T));
    }
    if (!Log.Spawns.empty())
      Draft.spawns(Log.Spawns);
    writeDurableSegment(Draft);
    std::lock_guard<std::mutex> Guard(EpochMutex);
    if (Durable)
      Durable->closeClean();
  }

  {
    std::lock_guard<std::mutex> Guard(MsgMutex);
    if (MsgLog)
      MsgLog->finish();
  }

  // Publish the per-thread tallies into the process registry. This is the
  // only place recording telemetry touches shared metric storage.
  uint64_t Accesses = 0, Merges = 0, Retries = 0, Elided = 0, Contended = 0;
  for (const auto &S : Threads) {
    Accesses += S->Ctr;
    Merges += S->SpanMerges;
    Retries += S->Retries;
    Elided += S->GuardedElided;
    Contended += S->StripeContended;
  }
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("record.accesses").add(Accesses);
  Reg.counter("record.spans").add(Log.Spans.size());
  Reg.counter("record.span_merges").add(Merges);
  Reg.counter("record.read_retries").add(Retries);
  Reg.counter("record.elided_guarded").add(Elided);
  Reg.counter("record.stripe_contention").add(Contended);
  Reg.counter("record.syscalls").add(Log.Syscalls.size());
  Reg.counter("record.long_integers").add(longIntegersRecorded());
  return Log;
}

uint64_t LightRecorder::longIntegersRecorded() const {
  uint64_t Total = 0;
  for (const auto &S : Threads)
    Total += (S->Archived.size() + S->Buffer.size()) * 4 +
             S->Syscalls.size() * 2;
  return Total;
}

uint64_t LightRecorder::readRetries() const {
  uint64_t Total = 0;
  for (const auto &S : Threads)
    Total += S->Retries;
  return Total;
}

uint64_t LightRecorder::stripeContentions() const {
  uint64_t Total = 0;
  for (const auto &S : Threads)
    Total += S->StripeContended;
  return Total;
}

//===- core/ReplayDirector.h - Schedule-enforcing hook ----------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay-phase access hook: enforces the solved total order over gated
/// accesses ("our scheduler enforces [the computed global order]
/// faithfully", Section 4.2), lets span-interior and O2-guarded accesses run
/// freely, suppresses blind writes, substitutes recorded syscall values, and
/// — in validation mode — checks that every read observes exactly the write
/// the recording promised (the property Theorem 1 guarantees).
///
/// Works in two modes:
///  * cooperative (MIR interpreter): the machine always runs the turn
///    thread, so a gated access arriving out of turn is a divergence;
///  * real threads (runtime API): gated accesses block on a condition
///    variable until their turn arrives (with a watchdog timeout so broken
///    schedules fail tests instead of hanging them).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CORE_REPLAYDIRECTOR_H
#define LIGHT_CORE_REPLAYDIRECTOR_H

#include "core/ReplaySchedule.h"
#include "runtime/AccessHook.h"
#include "runtime/TurnSource.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>

namespace light {

/// Why a replay run diverged from the recorded schedule. Every divergence
/// the director can detect has a distinct cause, so callers (and the
/// crashtest harness) can react structurally instead of parsing messages.
enum class DivergenceCause {
  None,               ///< no divergence
  WrongTurn,          ///< cooperative gated access arrived out of turn
  SkippedTurn,        ///< real-thread gate woke past its own turn
  GateTimeout,        ///< watchdog expired waiting for the turn
  ReadSourceMismatch, ///< validated read/rmw observed the wrong write
  UnknownRead,        ///< unrecorded read under validation
  UnknownWrite,       ///< write the schedule cannot classify
  MissingRmw,         ///< rmw missing from the recording
};

/// Printable name of a DivergenceCause ("wrong-turn", "gate-timeout"...).
std::string divergenceCauseStr(DivergenceCause Cause);

/// Structured divergence report: the cause, where it happened, and the
/// human-readable message the director previously reported alone.
struct DivergenceInfo {
  DivergenceCause Cause = DivergenceCause::None;
  ThreadId Thread = 0;  ///< diverging thread
  Counter Count = 0;    ///< its access counter at divergence (0 if n/a)
  uint32_t Turn = 0;    ///< schedule turn at divergence
  std::string Message;

  bool diverged() const { return Cause != DivergenceCause::None; }

  /// "[cause] message" (empty when no divergence).
  std::string str() const;
};

/// Replay statistics surfaced to tests and benches (a point-in-time
/// snapshot; the director maintains them as relaxed atomics).
struct ReplayStats {
  uint64_t GatedAccesses = 0;
  uint64_t InteriorAccesses = 0;
  uint64_t GuardedAccesses = 0;
  uint64_t BlindSuppressed = 0;
  uint64_t ValidatedReads = 0;
  uint64_t Turns = 0;       ///< schedule turns executed
  uint64_t Stalls = 0;      ///< gate waits that actually blocked
  uint64_t Divergences = 0; ///< divergence events (0 or 1 per run)
};

/// Drives one replay run from a ReplaySchedule.
class ReplayDirector : public AccessHook, public TurnSource {
public:
  /// \p RealThreads selects blocking gates (true) or cooperative mode.
  /// \p Validate enables read-source checking.
  ReplayDirector(const ReplaySchedule &Schedule, bool RealThreads,
                 bool Validate = true);

  // AccessHook interface.
  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;

  // TurnSource interface.
  AccessId currentTurn() const override;
  bool failed() const override { return Diverged.load(); }

  /// Divergence diagnostics (the human-readable message).
  const std::string &divergence() const { return Info.Message; }

  /// Structured divergence diagnostics; Cause is None while !failed().
  const DivergenceInfo &divergenceInfo() const { return Info; }

  /// True when every turn in the schedule has executed.
  bool complete() const;

  /// Point-in-time snapshot of the replay statistics.
  ReplayStats stats() const;

  /// Adds this run's statistics to the global metrics registry under the
  /// replay.* counter names.
  void publishMetrics() const;

private:
  const ReplaySchedule &Plan;
  bool RealThreads;
  bool Validate;

  PerThreadCounters Counters;
  std::atomic<uint32_t> Turn{0};
  std::atomic<bool> Diverged{false};
  DivergenceInfo Info;

  mutable std::mutex GateM;
  std::condition_variable GateCv;

  /// Relaxed atomic counters: every access path bumps one, so a per-bump
  /// mutex would serialize the replay hot path for bookkeeping.
  struct AtomicStats {
    std::atomic<uint64_t> GatedAccesses{0};
    std::atomic<uint64_t> InteriorAccesses{0};
    std::atomic<uint64_t> GuardedAccesses{0};
    std::atomic<uint64_t> BlindSuppressed{0};
    std::atomic<uint64_t> ValidatedReads{0};
    std::atomic<uint64_t> Stalls{0};
    std::atomic<uint64_t> Divergences{0};
  };
  AtomicStats Stats;
  std::mutex SyscallM;
  std::vector<size_t> SyscallPos;

  /// Blocks (or checks, in cooperative mode) until \p TurnIdx is current.
  /// Returns false on divergence/timeout.
  bool waitForTurn(uint32_t TurnIdx, ThreadId T);
  void advanceTurn();
  void diverge(DivergenceCause Cause, ThreadId T, Counter C,
               const std::string &Message);
  void bumpStat(std::atomic<uint64_t> AtomicStats::*Field) {
    (Stats.*Field).fetch_add(1, std::memory_order_relaxed);
  }
};

} // namespace light

#endif // LIGHT_CORE_REPLAYDIRECTOR_H

//===- core/ConstraintGen.cpp - Equation 1 over span intervals ------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
//
// Pairwise noninterference rules (per location, unordered span pair A, B):
//
//  R1. Both read-only (Read/Init) with the same source: compatible — reads
//      of one write may interleave freely. No constraint.
//  R2. Same source, exactly one side contains writes (a ReadSpan of w vs an
//      RMW-headed OwnSpan reading w): the reads must complete before the
//      overwrite. Hard: O(reader.Last) < O(writer.First).
//  R3. A span whose source write lies *inside* an OwnSpan of the writing
//      thread (a foreign read of the span's final write):
//        - read-only consumer: compatible (the own span's tail after the
//          source contains only reads of that same write). No constraint.
//        - write-bearing consumer: hard O(own.Last) < O(consumer.First).
//  R4. An Init span (reads of the never-written initial value) against any
//      span containing or implying a write: every write must come after the
//      init reads. Hard: O(init.Last) < O(other.Start).
//  R5. Same thread, and both spans' start vars belong to that thread: the
//      intra-thread order chain already serializes them. No constraint.
//  R6. Otherwise: interval disjointness, the span generalization of
//      Equation 1:  O(A.Last) < O(B.Start)  or  O(B.Last) < O(A.Start),
//      where Start is the source write when present, else the first access.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintGen.h"

#include <algorithm>
#include <cassert>

using namespace light;

namespace {

/// True when \p Consumer's source write lies inside \p Own (rule R3).
bool sourceInside(const SpanVarRefs &Consumer, const SpanVarRefs &Own) {
  if (!Own.hasWrites() || !Consumer.S->Src.valid())
    return false;
  const AccessId &Src = Consumer.S->Src;
  return Src.Thread == Own.S->Thread && Src.Count >= Own.S->First &&
         Src.Count <= Own.S->Last;
}

} // namespace

void light::emitSpanPairConstraints(smt::OrderSystem &Sys,
                                    const SpanVarRefs &A,
                                    const SpanVarRefs &B) {
  bool SameSrc = A.S->Src.valid() == B.S->Src.valid() &&
                 (!A.S->Src.valid() || A.S->Src == B.S->Src);

  // R1: shared source, read-only on both sides.
  if (SameSrc && A.readOnly() && B.readOnly())
    return;

  // R2: shared *valid* source, exactly one side writes.
  if (SameSrc && A.S->Src.valid() && A.readOnly() != B.readOnly()) {
    const SpanVarRefs &Reader = A.readOnly() ? A : B;
    const SpanVarRefs &Writer = A.readOnly() ? B : A;
    Sys.addLess(Reader.Last, Writer.First);
    return;
  }

  // R3: a consumer whose source lies inside the other (own) span.
  if (sourceInside(A, B) || sourceInside(B, A)) {
    const SpanVarRefs &Own = sourceInside(A, B) ? B : A;
    const SpanVarRefs &Consumer = sourceInside(A, B) ? A : B;
    if (Consumer.hasWrites())
      Sys.addLess(Own.Last, Consumer.First);
    return;
  }

  // R4: init reads precede every write-implying span.
  if (A.S->Kind == SpanKind::Init || B.S->Kind == SpanKind::Init) {
    const SpanVarRefs &Init = A.S->Kind == SpanKind::Init ? A : B;
    const SpanVarRefs &Other = A.S->Kind == SpanKind::Init ? B : A;
    // Other is not Init (both-Init hits R1) and therefore contains or
    // depends on a write.
    Sys.addLess(Init.Last, Other.startVar());
    return;
  }

  // R5: both intervals fully owned by one thread's chain.
  if (A.S->Thread == B.S->Thread &&
      (!A.S->Src.valid() || A.S->Src.Thread == A.S->Thread) &&
      (!B.S->Src.valid() || B.S->Src.Thread == B.S->Thread))
    return;

  // R6: interval disjointness (Equation 1 generalized). A frozen source
  // kills the disjunct that would place the other span before it; the
  // survivor becomes a hard constraint (stronger than the clause, sound).
  if (A.SrcFrozen && A.S->Src.valid() && !(B.SrcFrozen && B.S->Src.valid())) {
    Sys.addLess(A.Last, B.startVar());
    return;
  }
  if (B.SrcFrozen && B.S->Src.valid() && !(A.SrcFrozen && A.S->Src.valid())) {
    Sys.addLess(B.Last, A.startVar());
    return;
  }
  Sys.addEitherLess(A.Last, B.startVar(), B.Last, A.startVar());
}

ScheduleProblem light::buildScheduleProblem(const RecordingLog &Log) {
  ScheduleProblem P;

  auto GetVar = [&](AccessId A) -> smt::Var {
    auto [It, Inserted] = P.AccessVar.try_emplace(A.pack(), 0);
    if (Inserted) {
      It->second = P.System.newVar(A.str());
      P.VarAccess.push_back(A);
    }
    return It->second;
  };

  // 1. Order variables for every recorded access, grouped per location.
  std::unordered_map<LocationId, std::vector<SpanVarRefs>> ByLoc;
  for (const DepSpan &S : Log.Spans) {
    SpanVarRefs SV;
    SV.S = &S;
    if (S.Src.valid())
      SV.Src = GetVar(S.Src);
    SV.First = GetVar(S.first());
    SV.Last = S.Last == S.First ? SV.First : GetVar(S.last());
    ByLoc[S.Loc].push_back(SV);
  }

  // 2. Intra-thread order chains: same-thread accesses keep their counter
  //    order ("for two accesses c1 and c2 within the same thread ... we
  //    further assert O(c1) < O(c2)", Section 4.2).
  {
    std::unordered_map<ThreadId, std::vector<AccessId>> PerThread;
    for (const AccessId &A : P.VarAccess)
      PerThread[A.Thread].push_back(A);
    // unordered_map iteration order is a stdlib implementation detail;
    // emit chains in ascending thread order so clause order — and with it
    // solver decision order and the produced schedule — is identical
    // across runs and platforms.
    std::vector<ThreadId> Threads;
    Threads.reserve(PerThread.size());
    for (const auto &Entry : PerThread)
      Threads.push_back(Entry.first);
    std::sort(Threads.begin(), Threads.end());
    for (ThreadId T : Threads) {
      std::vector<AccessId> &List = PerThread[T];
      std::sort(List.begin(), List.end(),
                [](const AccessId &X, const AccessId &Y) {
                  return X.Count < Y.Count;
                });
      for (size_t I = 1; I < List.size(); ++I)
        P.System.addLess(P.AccessVar[List[I - 1].pack()],
                         P.AccessVar[List[I].pack()]);
    }
  }

  // 3. Dependence + noninterference constraints per location, in ascending
  //    location order for the same determinism reason as the chains above.
  std::vector<LocationId> Locs;
  Locs.reserve(ByLoc.size());
  for (const auto &Entry : ByLoc)
    Locs.push_back(Entry.first);
  std::sort(Locs.begin(), Locs.end());
  for (LocationId Loc : Locs) {
    std::vector<SpanVarRefs> &Spans = ByLoc[Loc];
    // Single-dependence constraints: O(c_w) < O(c_r).
    for (const SpanVarRefs &SV : Spans)
      if (SV.S->Src.valid())
        P.System.addLess(SV.Src, SV.First);

    for (size_t I = 0; I < Spans.size(); ++I)
      for (size_t J = I + 1; J < Spans.size(); ++J)
        emitSpanPairConstraints(P.System, Spans[I], Spans[J]);
  }

  // Component metadata for sharded solving: which variables can interact.
  P.Components = smt::connectedComponents(P.System);

  return P;
}

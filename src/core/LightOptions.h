//===- core/LightOptions.h - Recorder configuration --------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the Light recorder, including the two optimizations the
/// evaluation ablates in Section 5.4: O1 (uninterleaved-sequence spans,
/// Lemma 4.3) and O2 (lock-order subsumption of consistently guarded
/// locations, Lemma 4.2). The three versions measured in Figure 7 are:
///
///   V_basic: EnableO1 = false, EnableO2 = false
///   V_O1:    EnableO1 = true,  EnableO2 = false
///   V_both:  EnableO1 = true,  EnableO2 = true
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CORE_LIGHTOPTIONS_H
#define LIGHT_CORE_LIGHTOPTIONS_H

#include <cstddef>
#include <string>

namespace light {

/// Tuning knobs for LightRecorder.
struct LightOptions {
  /// Optimization O1 (Lemma 4.3): compress uninterleaved same-thread access
  /// sequences into [start, end] spans instead of per-dependence records.
  bool EnableO1 = true;

  /// Optimization O2 (Lemma 4.2): skip field-level recording for locations
  /// that the guard analysis proved consistently lock-protected; the
  /// recorded lock operation order subsumes their dependences.
  bool EnableO2 = true;

  /// Dump the log to disk with the buffered scheme of Section 5.2 (flush
  /// once the in-memory buffer exceeds FlushThresholdSpans). Disabled in
  /// unit tests that only inspect the in-memory log.
  bool WriteToDisk = true;

  /// Per-thread span-buffer capacity before a disk flush.
  size_t FlushThresholdSpans = 1 << 14;

  /// Directory for log files; empty selects the system temp directory.
  std::string LogDir;

  /// Epoch durability (crash tolerance): when nonzero, the recorder streams
  /// every completed epoch into a LIGHT002 durable log (see
  /// support/DurableLog.h) as a checksummed segment, flushed to the OS at
  /// the epoch boundary — a crashed or SIGKILL'd process leaves a
  /// salvageable prefix covering all closed epochs. An epoch closes once
  /// this many records (spans + syscalls) are pending in a thread; 0
  /// disables the count trigger. Epoch durability is on when either
  /// EpochSpans or EpochMs is set, and the machinery stays off the
  /// per-access hot path either way.
  size_t EpochSpans = 0;

  /// Also close an epoch once this many milliseconds have passed since the
  /// thread's last durable flush (checked when spans close, so an idle
  /// thread writes nothing). 0 disables the time trigger.
  uint64_t EpochMs = 0;

  /// Target file for the durable epoch log; empty selects a temp path.
  /// Only consulted when EpochSpans or EpochMs is set.
  std::string DurableLogPath;

  /// Emit durable epoch segments in the compressed LIGHT003 format
  /// (trace/SegmentCodec.h varint stream) instead of LIGHT002's
  /// word-oriented sections. Same container, same salvage guarantees;
  /// roughly 3-6x smaller on bursty span traffic. Only consulted when
  /// epoch durability is on.
  bool CompressedEpochs = false;

  /// Collect the optional hot-path telemetry (stripe-contention counting via
  /// a try_lock probe sampled on 1/64 accesses). Everything else — span
  /// merges, retries, O2 elisions — rides on fields the recorder maintains
  /// anyway; this flag only gates the sampled probe in the write critical
  /// section. The overhead budget for the whole layer is <= 1% on
  /// bench_micro_recorders.
  bool Telemetry = true;

  /// Named presets matching the paper's ablation (Section 5.4).
  static LightOptions basic() {
    LightOptions O;
    O.EnableO1 = false;
    O.EnableO2 = false;
    return O;
  }
  static LightOptions o1Only() {
    LightOptions O;
    O.EnableO1 = true;
    O.EnableO2 = false;
    return O;
  }
  static LightOptions both() { return LightOptions(); }
};

} // namespace light

#endif // LIGHT_CORE_LIGHTOPTIONS_H

//===- core/WindowedSchedule.h - Incremental windowed solving ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Windowed constraint generation and incremental solving for traces too
/// large to solve monolithically (the 10^8-access scale runs of
/// bench_scale). The builder consumes spans in stream order — typically as
/// trace/SegmentReader.h yields epoch segments — and solves one *window*
/// of spans at a time:
///
///  * Each window becomes its own OrderSystem (same variables, same R1-R6
///    rules via emitSpanPairConstraints) and is solved independently.
///  * Solved windows are *frozen*: their order values are final. Window
///    k+1's values are offset-stacked strictly above window k's, so every
///    cross-window constraint of the form O(frozen) < O(new) holds by
///    construction.
///  * Cross-window constraints that would need O(new) < O(frozen) cannot
///    be honored anymore; the builder detects every such case from a small
///    per-location frontier plus a per-thread horizon, and fails with the
///    structured WindowTooSmall error instead of producing a wrong
///    schedule. The caller's remedy is a larger window.
///  * Completed order fragments can be spilled to disk (LongWriter of
///    packed AccessIds), so peak memory holds one window's constraint
///    system plus the O(locations + threads) frontier, not the whole
///    order.
///
/// Soundness of the frontier checks (the monolithic system's cross-window
/// constraints, given frozen < new):
///
///  * Intra-thread chains and straggler spans: every new variable (T, c)
///    must have c > FrozenHorizon[T], the largest frozen counter of T —
///    otherwise the chain O(c) < O(c') for a frozen c' > c is violated.
///  * R2/R6 stale readers: a new span reading source w while the frontier
///    already froze a *newer* write on the location would have to run
///    before that write. A new span's frozen source must therefore be the
///    frontier's newest write exactly.
///  * R4 late initializers: a new Init span on a location with any frozen
///    write (or write-implying dependence) would have to precede it.
///
/// Inductively, the frontier's newest write has the maximum order value of
/// any write event on its location, and every frozen span not containing
/// it ends before it — so a new span anchored on the newest write
/// satisfies R1/R2/R3/R6 against all frozen spans. The
/// WindowedScheduleTest property suite validates windowed orders against
/// the monolithic OrderSystem via satisfiedBy().
///
/// Stream reordering: the recorder flushes each thread's spans at that
/// thread's own epoch boundaries, so the stream interleaves per-thread
/// batches with arbitrary skew — a span can reference a source write whose
/// covering span is still buffered in its owner thread. Solving the
/// reference first would freeze a variable *inside* the not-yet-seen span
/// and turn that span into a straggler. The builder therefore drains
/// arrived spans *topologically*: per-thread FIFO queues, and a span
/// leaves its queue only once the source thread has drained past the
/// source counter (reads-from edges always point back in time, so the
/// drain order exists). Spans a thread emits out of First order — possible
/// when a span stays open across many epochs — still fail with
/// StragglerSpan; the remedy is a larger window.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CORE_WINDOWEDSCHEDULE_H
#define LIGHT_CORE_WINDOWEDSCHEDULE_H

#include "core/ReplaySchedule.h"
#include "support/BinaryIO.h"

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace light {

/// Configuration of one windowed build.
struct WindowedOptions {
  smt::SolverEngine Engine = smt::SolverEngine::Idl;
  smt::SolverLimits Limits = {};

  /// Sharded solving within each window; same semantics as
  /// ReplaySchedule::build.
  unsigned SolverShards = 1;

  /// Spans per window: solving starts once this many spans are pending and
  /// each window takes exactly this many (the final window takes the
  /// remainder), so one window bounds the live constraint-system size no
  /// matter how large the arriving batches are. 0 behaves as 1.
  size_t WindowSpans = 1 << 15;

  /// When non-empty, stream solved order fragments (packed AccessIds) to
  /// this file instead of accumulating them in memory.
  std::string SpillPath;
};

/// Why a windowed build refused to continue. The window was provably too
/// small: a constraint against an already-frozen window cannot be honored.
struct WindowTooSmall {
  enum class Kind {
    None,
    StragglerSpan, ///< new span/source at or below a thread's frozen horizon
    StaleSource,   ///< new span reads a frozen write that is not the newest
    InitAfterWrite ///< new Init span on a location with a frozen write
  };
  Kind What = Kind::None;
  std::string Detail;

  bool fired() const { return What != Kind::None; }
};

/// Builds a replay schedule window by window. Typical use:
///
///   WindowedScheduleBuilder B(Opts);
///   TraceSegmentReader Reader(Path);
///   RecordingLog Log;
///   while (Reader.next(Log) && B.addSpans(Log))
///     ;
///   Reader.finish(Log);
///   if (B.addSpans(Log) && B.finish())
///     ReplaySchedule RS = B.takeSchedule(Log);
class WindowedScheduleBuilder {
public:
  explicit WindowedScheduleBuilder(WindowedOptions Opts = {});
  ~WindowedScheduleBuilder();

  /// Consumes every span of \p Log past the last consumed index and solves
  /// full windows. Returns false once the build has failed.
  bool addSpans(const RecordingLog &Log);

  /// Solves the final partial window. Call once, after the last addSpans.
  bool finish();

  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }

  /// The structured too-small condition (fired() == false when the failure
  /// was a solver failure instead, or when ok()).
  const WindowTooSmall &tooSmall() const { return TooSmall; }

  size_t windowsSolved() const { return Windows; }

  /// Aggregated solver statistics across all windows.
  const smt::SolveResult &stats() const { return Aggregate; }

  /// Total accesses in the solved order so far.
  uint64_t orderSize() const { return OrderCount; }

  /// The concatenated solved order; reads the spill file back when
  /// spilling. Only valid after finish().
  std::vector<AccessId> solvedOrder() const;

  /// Assembles the executable schedule via ReplaySchedule::fromSolvedOrder.
  /// Only valid after finish() on an ok() build.
  ReplaySchedule takeSchedule(const RecordingLog &Log) const;

private:
  struct LocFrontier {
    bool HasWriteOrDep = false;     ///< any frozen write or dependence
    uint64_t NewestWritePacked = 0; ///< newest frozen write (0 = none)
    int64_t NewestWriteValue = 0;   ///< its global order value
  };

  WindowedOptions Opts;
  std::string Error;
  WindowTooSmall TooSmall;
  size_t Windows = 0;
  smt::SolveResult Aggregate;

  size_t SeenSpans = 0;          ///< spans consumed from the log so far
  std::vector<DepSpan> Pending;  ///< drained spans awaiting their window
  /// Arrived spans not yet drained: per-thread FIFOs plus the per-thread
  /// high-water Last counter already drained (the topological-drain
  /// watermark; see the file comment).
  std::unordered_map<ThreadId, std::deque<DepSpan>> Arrived;
  std::unordered_map<ThreadId, Counter> DrainedLast;
  size_t ArrivedCount = 0;       ///< spans waiting across all queues
  int64_t NextBase = 0;          ///< first order value of the next window
  std::vector<Counter> FrozenHorizon;              ///< per thread
  std::unordered_map<LocationId, LocFrontier> Frontier;

  /// Moves topologically-ready spans from Arrived to Pending; \p Force
  /// drains everything in arrival order (finish(), when the stream is
  /// complete and unresolvable sources mean a truncated/partial log).
  void drainReady(bool Force);

  uint64_t OrderCount = 0;
  std::vector<AccessId> OrderMem;          ///< when not spilling
  std::unique_ptr<LongWriter> Spill;       ///< when spilling
  bool Finished = false;

  /// Solves the first \p Count pending spans as one window.
  bool solveWindow(size_t Count);
  void fail(std::string Why);
  void failTooSmall(WindowTooSmall::Kind What, std::string Detail);
};

/// Reads a spilled order fragment file back (packed AccessIds in order).
std::vector<AccessId> loadSpilledOrder(const std::string &Path);

} // namespace light

#endif // LIGHT_CORE_WINDOWEDSCHEDULE_H

//===- core/LightRecorder.h - Algorithm 1 with O1/O2 ------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Light recording scheme (Algorithm 1 of the paper) with both
/// optimizations:
///
///  * Every shared access bumps the thread-local counter D(t).
///  * Writes update the location's last-write word lw inside a striped-lock
///    atomic section (Section 4.1).
///  * Reads obtain lw via the optimistic retry protocol of Section 2.3
///    (snapshot lw, perform the read, re-check lw, retry on change).
///  * Detected flow dependences are recorded in *thread-local* buffers
///    without synchronization — the paper's key cost insight — and merged
///    only at finish().
///  * The prec map (Algorithm 1 lines 7-9) and optimization O1 (Lemma 4.3)
///    are realized as open spans per (thread, location); see trace/DepSpan.h
///    for the span semantics.
///  * Optimization O2 (Lemma 4.2) skips recording entirely for locations
///    declared consistently guarded by the analysis (counters still bump so
///    replay correlation is preserved).
///  * Buffers are flushed to disk once they exceed a threshold, mirroring
///    the buffered dump configuration of Section 5.2; the long-integer
///    space accounting comes from the serialized words.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CORE_LIGHTRECORDER_H
#define LIGHT_CORE_LIGHTRECORDER_H

#include "core/LightOptions.h"
#include "runtime/AccessHook.h"
#include "runtime/LockStripes.h"
#include "runtime/ThreadRegistry.h"
#include "support/BinaryIO.h"
#include "support/DurableLog.h"
#include "trace/MessageLog.h"
#include "trace/RecordingLog.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace light {

/// The Light recorder. Thread-safe; one instance records one execution.
class LightRecorder : public AccessHook {
public:
  explicit LightRecorder(LightOptions Opts = LightOptions());
  ~LightRecorder() override;

  /// Declares the consistently guarded locations (from the lock-consistency
  /// analysis); only consulted when O2 is enabled. \p Spec must be sealed.
  void setGuards(GuardSpec Spec);

  // AccessHook interface.
  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  void onMessage(ThreadId T, uint32_t Chan, uint64_t Seq, int64_t Value,
                 bool IsSend) override;
  void onThreadFinish(ThreadId T) override;
  Counter counterOf(ThreadId T) const override;

  /// Opens the durable message side log of a multi-node node at \p Path.
  /// Every onMessage appends one record keyed by the calling thread's
  /// current access counter (the ghost chan RMW it rode on), flushed to the
  /// OS immediately — node death loses at most one record.
  void attachMessageLog(const std::string &Path);

  /// The message side log (nullptr when attachMessageLog was never called).
  const MessageLogWriter *messageLog() const { return MsgLog.get(); }

  /// Supplies the spawn table for durable epoch segments (and as the
  /// default for finish()), so a mid-run crash still leaves the
  /// thread-identity table on disk. Only consulted at epoch boundaries.
  void attachRegistry(const ThreadRegistry *Registry);

  /// Closes all open spans, merges every thread's local buffer, and builds
  /// the RecordingLog. \p Registry (optional) supplies the spawn table;
  /// when omitted, an attachRegistry() registry is used. With epoch
  /// durability on, also writes the final segment and the clean-close
  /// marker to the durable log.
  RecordingLog finish(const ThreadRegistry *Registry = nullptr);

  /// Crash-handler path: closes every open span and writes everything not
  /// yet durable — spans, syscalls, counters, spawn table, guards — as one
  /// final segment, then closes the durable log *without* its clean-close
  /// marker, exactly as a crash-signal handler would leave it. The caller
  /// guarantees all worker threads are quiescent. Returns false when no
  /// durable log is configured or the write failed. The process is expected
  /// to exit afterwards; the recorder is not reusable.
  bool crashFlush();

  /// The durable epoch log (nullptr until the first durable write, or when
  /// epoch durability is off). Valid until the recorder is destroyed.
  const DurableLogWriter *durableLog() const { return Durable.get(); }

  /// Path of the durable epoch log ("" until the first durable write).
  std::string durableLogPath() const {
    return Durable ? Durable->path() : std::string();
  }

  /// Long-integer units written (spans * 4 + syscalls * 2), the unit of the
  /// paper's space measurements.
  uint64_t longIntegersRecorded() const;

  /// Number of optimistic read-protocol retries observed (Section 2.3 notes
  /// the loop yields few retries in practice; tests check that).
  uint64_t readRetries() const;

  /// Sampled write-stripe try_lock misses (1-in-64 probe, Telemetry only).
  /// Multiply by 64 for an order-of-magnitude contention estimate.
  uint64_t stripeContentions() const;

  /// True once any record exceeded a wire width (the trace/Ids.h Max*
  /// limits): the access counter saturated, or an epoch section failed to
  /// encode. The offending data is dropped (the access still performs,
  /// uninstrumented), record.overflow is bumped, and this sticky flag set —
  /// the structured replacement for what used to be release-build packing
  /// UB. A recording with this flag set must not be trusted for replay.
  bool overflowed() const {
    return OverflowSticky.load(std::memory_order_relaxed);
  }

  /// Human-readable description of the first overflow ("" when none).
  std::string overflowError() const;

  /// Test seam: pre-positions thread \p T's access counter so the
  /// counter-saturation guard is reachable without 2^48 real accesses.
  void debugSetCounter(ThreadId T, Counter C) { state(T).Ctr = C; }

private:
  struct OpenSpan {
    bool Active = false;
    bool HeadIsRmw = false; ///< RMW-headed spans are always emitted
    SpanKind Kind = SpanKind::Read;
    uint64_t SrcPacked = 0;
    Counter First = 0;
    Counter Last = 0;
  };

  struct alignas(64) PerThread {
    Counter Ctr = 0;
    /// One-entry cache over Open: bursty access runs (Figure 2) hit the
    /// same location repeatedly, skipping the hash lookup.
    LocationId CachedLoc = InvalidLocation;
    OpenSpan *CachedSpan = nullptr;
    std::unordered_map<LocationId, OpenSpan> Open;
    std::vector<DepSpan> Buffer;
    std::vector<DepSpan> Archived; ///< flushed to disk, kept for finish()
    std::vector<SyscallRecord> Syscalls;
    std::unique_ptr<LongWriter> Writer;
    uint64_t Retries = 0;
    // Epoch durability bookkeeping: how much of this thread's output is
    // already in the durable log. DurableSpans indexes the stable
    // Archived-then-Buffer emission order.
    size_t DurableSpans = 0;
    size_t DurableSyscalls = 0;
    std::chrono::steady_clock::time_point LastEpoch =
        std::chrono::steady_clock::now();
    // Telemetry tallies. Plain fields on the already thread-local struct —
    // the recording hot path never touches shared metric storage; the
    // registry sees these only when finish() publishes them.
    uint64_t SpanMerges = 0;      ///< O1/prec extensions of an open span
    uint64_t GuardedElided = 0;   ///< accesses skipped via O2 (Lemma 4.2)
    uint64_t StripeContended = 0; ///< write-stripe try_lock misses
  };

  LightOptions Opts;
  LockStripes Stripes;
  std::vector<std::unique_ptr<PerThread>> Threads;
  GuardSpec Guards;

  /// True when EpochSpans/EpochMs enable the durable epoch log. Cached so
  /// span-close paths pay one bool test when the feature is off.
  bool EpochsOn = false;
  std::mutex EpochMutex; ///< serializes segment writes across threads
  std::unique_ptr<DurableLogWriter> Durable; ///< guarded by EpochMutex
  bool GuardsEmitted = false;                ///< guarded by EpochMutex
  const ThreadRegistry *SpawnSource = nullptr;

  std::atomic<bool> OverflowSticky{false};
  mutable std::mutex OverflowMutex; ///< guards OverflowWhat
  std::string OverflowWhat;

  std::mutex MsgMutex; ///< serializes message-log appends across threads
  std::unique_ptr<MessageLogWriter> MsgLog; ///< guarded by MsgMutex

  /// One epoch segment being assembled, in whichever format
  /// Opts.CompressedEpochs selects. Defined in the .cpp.
  struct SegmentDraft;

  PerThread &state(ThreadId T) { return *Threads[T]; }
  const PerThread &state(ThreadId T) const { return *Threads[T]; }

  bool isGuarded(LocationId L) const {
    return Opts.EnableO2 && !Guards.empty() && Guards.covers(L);
  }

  OpenSpan &spanFor(PerThread &S, LocationId L);
  void closeSpan(PerThread &S, ThreadId T, LocationId L, OpenSpan &Sp);
  void maybeFlush(PerThread &S, ThreadId T);
  void maybeEpochFlush(PerThread &S, ThreadId T);
  void flushEpoch(PerThread &S, ThreadId T);
  void appendPendingSections(SegmentDraft &Draft, PerThread &S, ThreadId T);
  bool writeDurableSegment(SegmentDraft &Draft);
  void noteOverflow(const std::string &What, bool BumpMetric = false);
  void counterSaturated(ThreadId T);
  void noteRead(PerThread &S, ThreadId T, LocationId L, uint64_t Src,
                Counter C, uint32_t PrevAccessor);
  void noteWrite(PerThread &S, ThreadId T, LocationId L, Counter C,
                 uint32_t PrevAccessor);
  void noteRmw(PerThread &S, ThreadId T, LocationId L, uint64_t Src,
               Counter C, uint32_t PrevAccessor);
};

} // namespace light

#endif // LIGHT_CORE_LIGHTRECORDER_H

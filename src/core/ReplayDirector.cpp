//===- core/ReplayDirector.cpp - Schedule-enforcing hook -------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "core/ReplayDirector.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <chrono>

using namespace light;

ReplayDirector::ReplayDirector(const ReplaySchedule &Schedule,
                               bool RealThreadsIn, bool ValidateIn)
    : Plan(Schedule), RealThreads(RealThreadsIn), Validate(ValidateIn) {}

Counter ReplayDirector::counterOf(ThreadId T) const { return Counters.get(T); }

AccessId ReplayDirector::currentTurn() const {
  uint32_t I = Turn.load();
  if (I >= Plan.order().size())
    return AccessId();
  return Plan.order()[I];
}

bool ReplayDirector::complete() const {
  return !Diverged.load() && Turn.load() >= Plan.order().size();
}

std::string light::divergenceCauseStr(DivergenceCause Cause) {
  switch (Cause) {
  case DivergenceCause::None:
    return "none";
  case DivergenceCause::WrongTurn:
    return "wrong-turn";
  case DivergenceCause::SkippedTurn:
    return "skipped-turn";
  case DivergenceCause::GateTimeout:
    return "gate-timeout";
  case DivergenceCause::ReadSourceMismatch:
    return "read-source-mismatch";
  case DivergenceCause::UnknownRead:
    return "unknown-read";
  case DivergenceCause::UnknownWrite:
    return "unknown-write";
  case DivergenceCause::MissingRmw:
    return "missing-rmw";
  }
  return "unknown";
}

std::string DivergenceInfo::str() const {
  if (!diverged())
    return std::string();
  return "[" + divergenceCauseStr(Cause) + "] " + Message;
}

void ReplayDirector::diverge(DivergenceCause Cause, ThreadId T, Counter C,
                             const std::string &Message) {
  bool Expected = false;
  if (Diverged.compare_exchange_strong(Expected, true)) {
    Info.Cause = Cause;
    Info.Thread = T;
    Info.Count = C;
    Info.Turn = Turn.load();
    Info.Message = Message;
    bumpStat(&AtomicStats::Divergences);
    obs::Tracer &Tr = obs::Tracer::global();
    if (Tr.enabled())
      Tr.instant("replay.divergence", "replay", T, {"turn", Turn.load()});
  }
  if (RealThreads) {
    std::lock_guard<std::mutex> Guard(GateM);
    GateCv.notify_all();
  }
}

ReplayStats ReplayDirector::stats() const {
  ReplayStats S;
  S.GatedAccesses = Stats.GatedAccesses.load(std::memory_order_relaxed);
  S.InteriorAccesses = Stats.InteriorAccesses.load(std::memory_order_relaxed);
  S.GuardedAccesses = Stats.GuardedAccesses.load(std::memory_order_relaxed);
  S.BlindSuppressed = Stats.BlindSuppressed.load(std::memory_order_relaxed);
  S.ValidatedReads = Stats.ValidatedReads.load(std::memory_order_relaxed);
  S.Turns = Turn.load(std::memory_order_relaxed);
  S.Stalls = Stats.Stalls.load(std::memory_order_relaxed);
  S.Divergences = Stats.Divergences.load(std::memory_order_relaxed);
  return S;
}

void ReplayDirector::publishMetrics() const {
  ReplayStats S = stats();
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("replay.runs").add(1);
  Reg.counter("replay.gated_accesses").add(S.GatedAccesses);
  Reg.counter("replay.interior_accesses").add(S.InteriorAccesses);
  Reg.counter("replay.guarded_accesses").add(S.GuardedAccesses);
  Reg.counter("replay.blind_suppressed").add(S.BlindSuppressed);
  Reg.counter("replay.validated_reads").add(S.ValidatedReads);
  Reg.counter("replay.turns").add(S.Turns);
  Reg.counter("replay.stalls").add(S.Stalls);
  Reg.counter("replay.divergences").add(S.Divergences);
}

bool ReplayDirector::waitForTurn(uint32_t TurnIdx, ThreadId T) {
  if (Diverged.load())
    return false;
  if (!RealThreads) {
    // Cooperative mode: the interpreter must have scheduled exactly the
    // turn thread; anything else is a divergence.
    if (Turn.load() != TurnIdx) {
      diverge(DivergenceCause::WrongTurn, T, 0,
              "gated access of thread " + std::to_string(T) +
                  " arrived at turn " + std::to_string(Turn.load()) +
                  " instead of " + std::to_string(TurnIdx));
      return false;
    }
    return true;
  }
  std::unique_lock<std::mutex> Lock(GateM);
  if (!Diverged.load() && Turn.load() < TurnIdx)
    bumpStat(&AtomicStats::Stalls);
  bool Ok = GateCv.wait_for(Lock, std::chrono::seconds(60), [&] {
    return Diverged.load() || Turn.load() >= TurnIdx;
  });
  if (!Ok) {
    Lock.unlock();
    diverge(DivergenceCause::GateTimeout, T, 0,
            "replay gate timeout waiting for turn " + std::to_string(TurnIdx));
    return false;
  }
  if (Diverged.load())
    return false;
  if (Turn.load() != TurnIdx) {
    Lock.unlock();
    diverge(DivergenceCause::SkippedTurn, T, 0,
            "replay turn " + std::to_string(TurnIdx) + " was skipped");
    return false;
  }
  return true;
}

void ReplayDirector::advanceTurn() {
  obs::Tracer &Tr = obs::Tracer::global();
  if (Tr.enabled()) {
    AccessId Cur = currentTurn();
    Tr.instant("replay.turn", "replay", Cur.Thread, {"turn", Turn.load()},
               {"count", Cur.Count});
  }
  if (!RealThreads) {
    Turn.fetch_add(1);
    return;
  }
  {
    std::lock_guard<std::mutex> Guard(GateM);
    Turn.fetch_add(1);
  }
  GateCv.notify_all();
}

void ReplayDirector::onWrite(ThreadId T, LocationId L, LocMeta &M,
                             FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  uint32_t TurnIdx;
  uint64_t Expected;
  switch (Plan.classify(T, L, C, /*IsWrite=*/true, TurnIdx, Expected)) {
  case AccessClass::BeyondHorizon:
    Perform();
    return;
  case AccessClass::Guarded:
    Perform();
    bumpStat(&AtomicStats::GuardedAccesses);
    return;
  case AccessClass::Gated:
    if (!waitForTurn(TurnIdx, T))
      return;
    Perform();
    M.LastWrite.store(AccessId(T, C).pack());
    bumpStat(&AtomicStats::GatedAccesses);
    advanceTurn();
    return;
  case AccessClass::Interior:
    Perform();
    M.LastWrite.store(AccessId(T, C).pack());
    bumpStat(&AtomicStats::InteriorAccesses);
    return;
  case AccessClass::Blind:
    // "Light adopts the simple solution of avoiding execution of blind
    // writes" (Section 4.2): no read depends on this value.
    bumpStat(&AtomicStats::BlindSuppressed);
    return;
  case AccessClass::Unknown:
    diverge(DivergenceCause::UnknownWrite, T, C,
            "write classified as Unknown (corrupt schedule)");
    return;
  }
}

void ReplayDirector::onRead(ThreadId T, LocationId L, LocMeta &M,
                            FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  uint32_t TurnIdx;
  uint64_t Expected;
  AccessClass Cls = Plan.classify(T, L, C, /*IsWrite=*/false, TurnIdx,
                                  Expected);
  if (Cls == AccessClass::BeyondHorizon) {
    Perform();
    return;
  }
  if (Cls == AccessClass::Guarded) {
    Perform();
    bumpStat(&AtomicStats::GuardedAccesses);
    return;
  }
  if (Cls == AccessClass::Unknown) {
    if (Validate) {
      diverge(DivergenceCause::UnknownRead, T, C,
              "unrecorded read of " + loc::str(L) + " by thread " +
                  std::to_string(T));
      return;
    }
    Perform();
    return;
  }
  if (Cls == AccessClass::Gated && !waitForTurn(TurnIdx, T))
    return;

  uint64_t Actual = M.LastWrite.load();
  Perform();
  if (Validate) {
    bool SourceOk =
        Expected == ReplaySchedule::OwnSpanSource
            ? (Actual != 0 && AccessId::unpack(Actual).Thread == T)
            : Actual == Expected;
    if (!SourceOk) {
      diverge(DivergenceCause::ReadSourceMismatch, T, C,
              "read " + AccessId(T, C).str() + " of " + loc::str(L) +
                  " observed source " + AccessId::unpack(Actual).str() +
                  " but the recording promised " +
                  (Expected == ReplaySchedule::OwnSpanSource
                       ? std::string("an own-span write")
                       : AccessId::unpack(Expected).str()));
      return;
    }
    bumpStat(&AtomicStats::ValidatedReads);
  }
  if (Cls == AccessClass::Gated) {
    bumpStat(&AtomicStats::GatedAccesses);
    advanceTurn();
  } else {
    bumpStat(&AtomicStats::InteriorAccesses);
  }
}

void ReplayDirector::onRmw(ThreadId T, LocationId L, LocMeta &M,
                           FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  uint32_t TurnIdx;
  uint64_t Expected;
  AccessClass Cls =
      Plan.classify(T, L, C, /*IsWrite=*/true, TurnIdx, Expected);
  switch (Cls) {
  case AccessClass::BeyondHorizon:
    Perform();
    return;
  case AccessClass::Guarded:
    Perform();
    bumpStat(&AtomicStats::GuardedAccesses);
    return;
  case AccessClass::Gated: {
    if (!waitForTurn(TurnIdx, T))
      return;
    Perform();
    uint64_t Actual = M.LastWrite.load();
    if (Validate && Expected != ReplaySchedule::OwnSpanSource &&
        Actual != Expected) {
      diverge(DivergenceCause::ReadSourceMismatch, T, C,
              "rmw " + AccessId(T, C).str() + " of " + loc::str(L) +
                  " observed source " + AccessId::unpack(Actual).str() +
                  " but the recording promised " +
                  AccessId::unpack(Expected).str());
      return;
    }
    M.LastWrite.store(AccessId(T, C).pack());
    bumpStat(&AtomicStats::GatedAccesses);
    advanceTurn();
    return;
  }
  case AccessClass::Interior:
    Perform();
    M.LastWrite.store(AccessId(T, C).pack());
    bumpStat(&AtomicStats::InteriorAccesses);
    return;
  case AccessClass::Blind:
  case AccessClass::Unknown:
    diverge(DivergenceCause::MissingRmw, T, C,
            "rmw " + AccessId(T, C).str() + " of " + loc::str(L) +
                " missing from the recording");
    return;
  }
}

uint64_t ReplayDirector::onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
  // Substitute the recorded value (Section 3.2). Positions are keyed by the
  // (replay-stable) thread id, guarded for real-thread mode.
  {
    std::lock_guard<std::mutex> Guard(SyscallM);
    if (SyscallPos.size() <= T)
      SyscallPos.resize(T + 1, 0);
    const auto &Queues = Plan.syscalls();
    if (T >= Queues.size() || SyscallPos[T] >= Queues[T].size()) {
      // Past the recorded horizon (the original run stopped at the bug
      // before this syscall); compute a fresh value.
      return Compute();
    }
    return Queues[T][SyscallPos[T]++];
  }
}

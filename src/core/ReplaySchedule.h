//===- core/ReplaySchedule.h - Solved replay schedules ----------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product of the offline replay phase: a total order over all recorded
/// (gated) accesses computed by the solver, plus the side information the
/// replay director needs to classify the accesses the recording *didn't*
/// log:
///
///  * span-interior accesses (compressed away by prec / O1) run freely
///    between their gated span endpoints,
///  * accesses to O2-guarded locations run freely under their locks,
///  * blind writes — writes in no dependence and no span — are suppressed
///    (Section 4.2: "Light adopts the simple solution of avoiding execution
///    of blind writes"),
///  * recorded syscall values are substituted (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CORE_REPLAYSCHEDULE_H
#define LIGHT_CORE_REPLAYSCHEDULE_H

#include "core/ConstraintGen.h"
#include "smt/Z3Backend.h"
#include "trace/RecordingLog.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace light {

/// How the replay director should treat one dynamic access.
enum class AccessClass : uint8_t {
  Gated,    ///< in the solved order; must wait for its turn
  Interior, ///< inside a recorded span; runs freely
  Guarded,  ///< O2 location; lock order subsumes it
  Blind,    ///< unrecorded write; suppressed
  Unknown,  ///< unrecorded read; only legal for guarded/unshared data
  /// Past the thread's recorded horizon: the original run stopped (at the
  /// bug) before the thread got this far, so the access is outside the
  /// guarantee and runs unvalidated.
  BeyondHorizon,
};

/// A solved, executable replay schedule.
class ReplaySchedule {
public:
  /// Builds the constraint system for \p Log, solves it with \p Engine
  /// under \p Limits (falling back to the other engine once on
  /// timeout/error, see smt::solveOrder), and assembles the schedule. Fails
  /// (ok() == false) if the system is unsatisfiable — which Lemma 4.1 rules
  /// out for well-formed logs — or if both solver engines gave up;
  /// solveStats() distinguishes the two.
  ///
  /// \p SolverShards controls sharded solving (smt::solveSharded): 1 is
  /// the monolithic path bit-for-bit, 0 means auto (hardware concurrency),
  /// N > 1 solves up to N independent constraint shards concurrently. The
  /// assembled schedule is deterministic for every setting.
  static ReplaySchedule build(const RecordingLog &Log,
                              smt::SolverEngine Engine = smt::SolverEngine::Idl,
                              smt::SolverLimits Limits = {},
                              unsigned SolverShards = 1);

  /// Assembles a schedule from an externally solved total order — the
  /// windowed incremental path (core/WindowedSchedule.h), which solves
  /// epoch windows one at a time and concatenates the fragments. Skips
  /// constraint generation and solving; \p Order is trusted to satisfy the
  /// monolithic system (the windowed builder's frontier checks guarantee
  /// it). \p Stats carries the aggregated solver statistics for reporting.
  static ReplaySchedule fromSolvedOrder(const RecordingLog &Log,
                                        std::vector<AccessId> Order,
                                        smt::SolveResult Stats = {});

  bool ok() const { return Satisfiable; }
  const std::string &error() const { return Error; }

  /// The solved total order of gated accesses.
  const std::vector<AccessId> &order() const { return Order; }

  /// Solver statistics of the build.
  const smt::SolveResult &solveStats() const { return Stats; }

  /// Classifies a dynamic access during replay. For Gated, \p TurnOut gets
  /// the access's position in order(). For reads, \p ExpectedSrcOut gets the
  /// packed source write the read must observe (0 = initial value,
  /// ~0ull = own-span write, unknown exact id).
  AccessClass classify(ThreadId T, LocationId L, Counter C, bool IsWrite,
                       uint32_t &TurnOut, uint64_t &ExpectedSrcOut) const;

  /// Per-thread recorded syscall values in order.
  const std::vector<std::vector<uint64_t>> &syscalls() const {
    return SyscallValues;
  }

  const std::vector<SpawnRecord> &spawns() const { return Spawns; }

  /// Sentinel for "expected source is some write of the owning span".
  static constexpr uint64_t OwnSpanSource = ~0ull;

private:
  struct SpanInfo {
    Counter First, Last;
    SpanKind Kind;
    uint64_t SrcPacked;
  };

  /// Builds TurnOf and the classification side tables from \p Log; Order
  /// must already be set. Shared by build() and fromSolvedOrder().
  void assemble(const RecordingLog &Log);

  bool Satisfiable = false;
  std::string Error;
  smt::SolveResult Stats;
  std::vector<AccessId> Order;
  std::unordered_map<uint64_t, uint32_t> TurnOf; ///< packed access -> index

  /// Thread -> (location -> spans sorted by First).
  std::vector<std::unordered_map<LocationId, std::vector<SpanInfo>>> Spans;
  GuardSpec Guards;
  std::vector<std::vector<uint64_t>> SyscallValues;
  std::vector<SpawnRecord> Spawns;
  std::vector<Counter> FinalCounters;
};

} // namespace light

#endif // LIGHT_CORE_REPLAYSCHEDULE_H

//===- core/ReplaySchedule.cpp - Solved replay schedules -------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "core/ReplaySchedule.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/ShardedSolver.h"

#include <algorithm>
#include <cassert>

using namespace light;

ReplaySchedule ReplaySchedule::build(const RecordingLog &Log,
                                     smt::SolverEngine Engine,
                                     smt::SolverLimits Limits,
                                     unsigned SolverShards) {
  ReplaySchedule RS;

  ScheduleProblem P = [&] {
    obs::TraceSpan Span("schedule.constraint_gen", "solve");
    ScheduleProblem Problem = buildScheduleProblem(Log);
    Span.arg("vars", Problem.System.numVars());
    Span.arg("clauses", Problem.System.clauses().size());
    Span.arg("components", Problem.Components.NumComponents);
    return Problem;
  }();
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("schedule.order_vars").add(P.System.numVars());
  Reg.counter("schedule.clauses").add(P.System.clauses().size());
  Reg.gauge("schedule.components")
      .set(static_cast<int64_t>(P.Components.NumComponents));
  RS.Stats = SolverShards == 1
                 ? smt::solveOrder(P.System, Engine, Limits)
                 : smt::solveSharded(P.System, Engine, Limits, SolverShards);
  if (!RS.Stats.sat()) {
    RS.Error = RS.Stats.failed()
                   ? "schedule solve failed (" + RS.Stats.failReasonStr() +
                         "): " + RS.Stats.Message
                   : "replay constraint system unsatisfiable (malformed log?)";
    return RS;
  }
  RS.Satisfiable = true;

  // Total order: sort order variables by model value; ties are
  // unconstrained and broken deterministically by access id.
  std::vector<uint32_t> Perm(P.VarAccess.size());
  for (uint32_t I = 0; I < Perm.size(); ++I)
    Perm[I] = I;
  std::sort(Perm.begin(), Perm.end(), [&](uint32_t X, uint32_t Y) {
    int64_t VX = RS.Stats.Values[X], VY = RS.Stats.Values[Y];
    if (VX != VY)
      return VX < VY;
    return P.VarAccess[X].pack() < P.VarAccess[Y].pack();
  });
  RS.Order.reserve(Perm.size());
  for (uint32_t I : Perm)
    RS.Order.push_back(P.VarAccess[I]);

  RS.assemble(Log);
  return RS;
}

ReplaySchedule ReplaySchedule::fromSolvedOrder(const RecordingLog &Log,
                                               std::vector<AccessId> Order,
                                               smt::SolveResult Stats) {
  ReplaySchedule RS;
  RS.Satisfiable = true;
  RS.Stats = std::move(Stats);
  RS.Stats.Outcome = smt::SolveResult::Status::Sat;
  RS.Order = std::move(Order);
  RS.assemble(Log);
  return RS;
}

void ReplaySchedule::assemble(const RecordingLog &Log) {
  TurnOf.reserve(Order.size());
  for (size_t I = 0; I < Order.size(); ++I)
    TurnOf[Order[I].pack()] = static_cast<uint32_t>(I);

  // Span index for interior classification.
  size_t NumThreads = Log.FinalCounters.size();
  for (const DepSpan &S : Log.Spans)
    NumThreads = std::max(NumThreads, static_cast<size_t>(S.Thread) + 1);
  Spans.resize(NumThreads);
  for (const DepSpan &S : Log.Spans)
    Spans[S.Thread][S.Loc].push_back(
        {S.First, S.Last, S.Kind, S.Src.valid() ? S.Src.pack() : 0});
  for (auto &PerThread : Spans)
    for (auto &[L, List] : PerThread)
      std::sort(List.begin(), List.end(),
                [](const SpanInfo &A, const SpanInfo &B) {
                  return A.First < B.First;
                });

  Guards = Log.Guards;

  SyscallValues.resize(NumThreads);
  for (const SyscallRecord &R : Log.Syscalls)
    if (R.Thread < NumThreads)
      SyscallValues[R.Thread].push_back(R.Value);

  Spawns = Log.Spawns;
  FinalCounters = Log.FinalCounters;
}

AccessClass ReplaySchedule::classify(ThreadId T, LocationId L, Counter C,
                                     bool IsWrite, uint32_t &TurnOut,
                                     uint64_t &ExpectedSrcOut) const {
  TurnOut = 0;
  ExpectedSrcOut = 0;
  if (T >= FinalCounters.size() || C > FinalCounters[T])
    return AccessClass::BeyondHorizon;
  if (!Guards.empty() && Guards.covers(L))
    return AccessClass::Guarded;

  // Locate the span (if any) covering counter C on (T, L).
  const SpanInfo *Covering = nullptr;
  if (T < Spans.size()) {
    auto It = Spans[T].find(L);
    if (It != Spans[T].end()) {
      const std::vector<SpanInfo> &List = It->second;
      // Last span with First <= C.
      auto Pos = std::upper_bound(
          List.begin(), List.end(), C,
          [](Counter Val, const SpanInfo &S) { return Val < S.First; });
      if (Pos != List.begin()) {
        const SpanInfo &Cand = *std::prev(Pos);
        if (C <= Cand.Last)
          Covering = &Cand;
      }
    }
  }

  if (Covering) {
    if (Covering->Kind == SpanKind::Own) {
      // The span head reads its recorded source; every later access reads
      // some write of the span itself.
      ExpectedSrcOut =
          C == Covering->First ? Covering->SrcPacked : OwnSpanSource;
    } else {
      ExpectedSrcOut = Covering->SrcPacked;
    }
  }

  auto TurnIt = TurnOf.find(AccessId(T, C).pack());
  if (TurnIt != TurnOf.end()) {
    TurnOut = TurnIt->second;
    return AccessClass::Gated;
  }

  if (Covering)
    return AccessClass::Interior;
  return IsWrite ? AccessClass::Blind : AccessClass::Unknown;
}

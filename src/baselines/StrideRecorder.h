//===- baselines/StrideRecorder.h - The Stride baseline ---------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of Stride [Zhou et al., ICSE 2012], the second
/// record-based baseline of Section 5.2. Stride records:
///
///  * per location, a globally ordered (synchronized) *write* list plus a
///    write version counter;
///  * per read, thread-locally, the (location, version) pair observed —
///    obtained with a version-validation retry so the pair is consistent.
///
/// Offline, each read links to the version-th write of its location
/// ("bounded linkage", polynomial-time reconstruction — exact here because
/// versions are precise). Space: one long per write plus two per read,
/// reflecting the paper's accounting where Stride's ints count as half
/// longs; time: writes pay the same synchronized-append cost as Leap while
/// reads pay version validation plus a thread-local append.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_BASELINES_STRIDERECORDER_H
#define LIGHT_BASELINES_STRIDERECORDER_H

#include "runtime/AccessHook.h"
#include "trace/DepSpan.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace light {

/// Stride's recording, before linkage reconstruction.
struct StrideLog {
  /// Location -> packed AccessIds of writes, in version order.
  std::unordered_map<LocationId, std::vector<uint64_t>> WriteLists;
  /// Per-read records: (location, version, packed reader AccessId).
  struct ReadRecord {
    LocationId Loc;
    uint32_t Version; ///< 0 = initial value, k = k-th write
    uint64_t Reader;
  };
  std::vector<ReadRecord> Reads;
  std::vector<SyscallRecord> Syscalls;

  uint64_t spaceLongs() const {
    uint64_t Total = 0;
    for (const auto &[L, V] : WriteLists)
      Total += V.size();
    return Total + Reads.size() * 2 + Syscalls.size() * 2;
  }
};

/// A reconstructed read-to-write linkage (the offline phase's output).
struct StrideLinkage {
  /// Reader access -> source write access (0 = initial value).
  std::unordered_map<uint64_t, uint64_t> SourceOf;
};

/// The Stride recording hook.
class StrideRecorder : public AccessHook {
public:
  StrideRecorder();
  ~StrideRecorder() override;

  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;

  StrideLog finish();

  uint64_t longIntegersRecorded() const;

  /// Version-validation retries observed by onRead (the analogue of
  /// LightRecorder::readRetries for cross-recorder contention tables).
  uint64_t readRetries() const;

  /// Sampled write-shard try_lock misses (1-in-64 probe).
  uint64_t lockContentions() const;

  /// The polynomial-time offline linkage reconstruction: read with version
  /// v on location l reads the v-th write in l's write list.
  static StrideLinkage reconstruct(const StrideLog &Log);

private:
  static constexpr uint32_t NumShards = 256;
  struct LocState {
    std::atomic<uint32_t> Version{0};
    std::vector<uint64_t> Writes;
  };
  struct alignas(64) Shard {
    std::mutex M;
    std::unordered_map<LocationId, std::unique_ptr<LocState>> Locs;
    std::atomic<uint64_t> Contended{0}; ///< bumped outside M on probe miss
  };
  struct alignas(64) PerThread {
    std::vector<StrideLog::ReadRecord> Reads;
    std::vector<SyscallRecord> Syscalls;
    uint64_t Retries = 0; ///< version-validation re-reads
  };

  PerThreadCounters Counters;
  std::vector<Shard> Shards;
  std::vector<std::unique_ptr<PerThread>> Threads;

  Shard &shardFor(LocationId L) {
    return Shards[(loc::stripeKey(L) * 0x9e3779b1u >> 16) % NumShards];
  }
  LocState &stateFor(LocationId L);
};

} // namespace light

#endif // LIGHT_BASELINES_STRIDERECORDER_H

//===- baselines/ChimeraEngine.cpp - The Chimera baseline ------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "baselines/ChimeraEngine.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

using namespace light;
using namespace light::mir;

// --- Patching ---------------------------------------------------------------

namespace {

/// Rewrites \p Fn so its whole body runs under the monitor of the object in
/// global \p LockGlobal.
void wrapFunction(Function &Fn, uint32_t LockGlobal) {
  assert(Fn.NumRegs < NoReg - 1 && "register file exhausted by patching");
  Reg LockReg = Fn.NumRegs++;

  // New index of each original instruction: 2 prologue instructions, plus
  // one extra MonitorExit before every Ret already emitted.
  std::vector<int32_t> NewIndex(Fn.Body.size());
  int32_t Shift = 2;
  for (size_t I = 0; I < Fn.Body.size(); ++I) {
    NewIndex[I] = static_cast<int32_t>(I) + Shift;
    if (Fn.Body[I].Op == Opcode::Ret)
      ++Shift; // the exit inserted before this Ret shifts everything after
  }

  std::vector<Instr> NewBody;
  NewBody.reserve(Fn.Body.size() + Shift);
  NewBody.push_back({.Op = Opcode::GetGlobal,
                     .A = LockReg,
                     .Imm = static_cast<int64_t>(LockGlobal)});
  NewBody.push_back({.Op = Opcode::MonitorEnter, .A = LockReg});
  for (Instr I : Fn.Body) {
    if (I.Op == Opcode::Jmp || I.Op == Opcode::Br)
      I.Target = NewIndex[I.Target];
    if (I.Op == Opcode::Br)
      I.Target2 = NewIndex[I.Target2];
    if (I.Op == Opcode::Ret)
      NewBody.push_back({.Op = Opcode::MonitorExit, .A = LockReg});
    NewBody.push_back(std::move(I));
  }
  Fn.Body = std::move(NewBody);
}

/// Prepends \p Prologue to \p Fn (used on main to create chimera locks).
void prependInstrs(Function &Fn, const std::vector<Instr> &Prologue) {
  int32_t Shift = static_cast<int32_t>(Prologue.size());
  std::vector<Instr> NewBody(Prologue.begin(), Prologue.end());
  NewBody.reserve(Fn.Body.size() + Prologue.size());
  for (Instr I : Fn.Body) {
    if (I.Op == Opcode::Jmp || I.Op == Opcode::Br)
      I.Target += Shift;
    if (I.Op == Opcode::Br)
      I.Target2 += Shift;
    NewBody.push_back(std::move(I));
  }
  Fn.Body = std::move(NewBody);
}

} // namespace

ChimeraPatch light::chimeraPatch(const Program &P,
                                 const std::vector<analysis::RacePair> &Races) {
  ChimeraPatch Out;
  Out.Patched = P;

  // Union racy functions into components; each component gets one lock.
  std::vector<uint32_t> Parent(P.Functions.size());
  std::iota(Parent.begin(), Parent.end(), 0);
  std::function<uint32_t(uint32_t)> Find = [&](uint32_t X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  };
  std::unordered_set<uint32_t> Racy;
  for (const analysis::RacePair &R : Races) {
    if (R.A.Func == P.Entry || R.B.Func == P.Entry)
      continue; // cannot wrap main (it creates the locks)
    Racy.insert(R.A.Func);
    Racy.insert(R.B.Func);
    Parent[Find(R.A.Func)] = Find(R.B.Func);
  }
  if (Racy.empty())
    return Out;

  // One chimera class + one lock global per component.
  ClassId LockCls = static_cast<ClassId>(Out.Patched.Classes.size());
  Out.Patched.Classes.push_back({"ChimeraLock", {"pad"}});

  std::unordered_map<uint32_t, uint32_t> LockGlobalOfComponent;
  std::vector<Instr> Prologue;
  Function &Main = Out.Patched.Functions[Out.Patched.Entry];
  for (uint32_t F : Racy) {
    uint32_t Root = Find(F);
    if (LockGlobalOfComponent.count(Root))
      continue;
    uint32_t G = static_cast<uint32_t>(Out.Patched.Globals.size());
    Out.Patched.Globals.push_back("chimera_lock_" +
                                  std::to_string(Out.NumChimeraLocks++));
    LockGlobalOfComponent[Root] = G;
    assert(Main.NumRegs < NoReg - 1 && "main register file exhausted");
    Reg Tmp = Main.NumRegs++;
    Prologue.push_back({.Op = Opcode::New,
                        .A = Tmp,
                        .Imm = static_cast<int64_t>(LockCls)});
    Prologue.push_back(
        {.Op = Opcode::PutGlobal, .A = Tmp, .Imm = static_cast<int64_t>(G)});
  }

  std::vector<uint32_t> Sorted(Racy.begin(), Racy.end());
  std::sort(Sorted.begin(), Sorted.end());
  for (uint32_t F : Sorted) {
    wrapFunction(Out.Patched.Functions[F], LockGlobalOfComponent[Find(F)]);
    Out.SerializedFunctions.push_back(Out.Patched.Functions[F].Name);
  }
  prependInstrs(Main, Prologue);
  return Out;
}

// --- Recording ---------------------------------------------------------------

ChimeraRecorder::ChimeraRecorder() : Syscalls(MaxThreads) {}

Counter ChimeraRecorder::counterOf(ThreadId T) const {
  return Counters.get(T);
}

void ChimeraRecorder::onWrite(ThreadId T, LocationId L, LocMeta &Meta,
                              FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  if (!loc::isGhost(L)) {
    Perform();
    return;
  }
  std::lock_guard<std::mutex> Guard(M);
  Perform();
  SyncOrder.push_back(AccessId(T, C));
}

void ChimeraRecorder::onRead(ThreadId T, LocationId L, LocMeta &Meta,
                             FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  if (!loc::isGhost(L)) {
    Perform();
    return;
  }
  std::lock_guard<std::mutex> Guard(M);
  Perform();
  SyncOrder.push_back(AccessId(T, C));
}

void ChimeraRecorder::onRmw(ThreadId T, LocationId L, LocMeta &Meta,
                            FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  if (!loc::isGhost(L)) {
    Perform();
    return;
  }
  std::lock_guard<std::mutex> Guard(M);
  Perform();
  SyncOrder.push_back(AccessId(T, C));
}

uint64_t ChimeraRecorder::onSyscall(ThreadId T,
                                    FunctionRef<uint64_t()> Compute) {
  uint64_t V = Compute();
  Syscalls[T].push_back(V);
  return V;
}

ChimeraLog ChimeraRecorder::finish() {
  ChimeraLog Log;
  Log.SyncOrder = SyncOrder;
  size_t MaxT = 0;
  for (size_t T = 0; T < Syscalls.size(); ++T)
    if (!Syscalls[T].empty())
      MaxT = T;
  Log.SyscallValues.assign(Syscalls.begin(), Syscalls.begin() + MaxT + 1);
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("baseline.chimera.sync_ops").add(Log.SyncOrder.size());
  Reg.counter("baseline.chimera.long_integers").add(Log.spaceLongs());
  return Log;
}

// --- Replay -------------------------------------------------------------------

ChimeraDirector::ChimeraDirector(const ChimeraLog &Log)
    : Order(Log.SyncOrder), SyscallQueues(Log.SyscallValues) {
  for (uint32_t I = 0; I < Order.size(); ++I) {
    TurnOf[Order[I].pack()] = I;
    if (Horizon.size() <= Order[I].Thread)
      Horizon.resize(Order[I].Thread + 1, 0);
    Horizon[Order[I].Thread] =
        std::max(Horizon[Order[I].Thread], Order[I].Count);
  }
  SyscallPos.assign(std::max<size_t>(SyscallQueues.size(), 1), 0);
}

Counter ChimeraDirector::counterOf(ThreadId T) const {
  return Counters.get(T);
}

AccessId ChimeraDirector::currentTurn() const {
  uint32_t I = Turn.load();
  return I < Order.size() ? Order[I] : AccessId();
}

void ChimeraDirector::diverge(const std::string &Message) {
  bool Expected = false;
  if (Diverged.compare_exchange_strong(Expected, true))
    Error = Message;
}

void ChimeraDirector::gate(ThreadId T, LocationId L,
                           FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  if (!loc::isGhost(L)) {
    Perform(); // data access: race-free by patching, lock order decides
    return;
  }
  if (T >= Horizon.size() || C > Horizon[T]) {
    Perform(); // past the recorded horizon
    return;
  }
  auto It = TurnOf.find(AccessId(T, C).pack());
  if (It == TurnOf.end()) {
    diverge("sync access " + AccessId(T, C).str() +
            " missing from the Chimera log");
    return;
  }
  if (Turn.load() != It->second) {
    diverge("Chimera replay out of order at " + AccessId(T, C).str());
    return;
  }
  Perform();
  Turn.fetch_add(1);
}

void ChimeraDirector::onWrite(ThreadId T, LocationId L, LocMeta &M,
                              FunctionRef<void()> Perform) {
  gate(T, L, Perform);
}

void ChimeraDirector::onRead(ThreadId T, LocationId L, LocMeta &M,
                             FunctionRef<void()> Perform) {
  gate(T, L, Perform);
}

void ChimeraDirector::onRmw(ThreadId T, LocationId L, LocMeta &M,
                            FunctionRef<void()> Perform) {
  gate(T, L, Perform);
}

uint64_t ChimeraDirector::onSyscall(ThreadId T,
                                    FunctionRef<uint64_t()> Compute) {
  if (T < SyscallQueues.size() && SyscallPos[T] < SyscallQueues[T].size())
    return SyscallQueues[T][SyscallPos[T]++];
  return Compute();
}

//===- baselines/ClapEngine.cpp - The Clap baseline ------------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
//
// The offline phase mirrors Clap's pipeline:
//
//   1. A points-to oracle pass (standing in for Clap's static analysis)
//      runs the program once concretely and records, per shared location,
//      whether it only ever holds one reference value; such reads are
//      resolved concretely, everything else becomes symbolic.
//   2. Each thread is re-executed *in isolation* along its recorded branch
//      trace. Shared integer reads become fresh symbolic variables; writes
//      record symbolic value expressions; monitor operations record
//      critical sections; branches assert their recorded outcomes; the
//      recorded failure point asserts the illegal value condition.
//   3. Everything is discharged to Z3: per-thread program order,
//      read-to-write value matching with noninterference, lock mutual
//      exclusion, and the failure condition. A model yields the replay
//      schedule.
//
// Any operation without solver support aborts the analysis as Unsupported —
// the inherent limitation Section 5.3 evaluates.
//
//===----------------------------------------------------------------------===//

#include "baselines/ClapEngine.h"

#include "obs/Metrics.h"

#include "support/Timer.h"

#include <z3++.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

using namespace light;
using namespace light::mir;

// --- Recorder ---------------------------------------------------------------

ClapRecorder::ClapRecorder() {
  Syscalls.reserve(MaxThreads);
  for (uint32_t I = 0; I < MaxThreads; ++I)
    Syscalls.push_back(std::make_unique<std::vector<uint64_t>>());
}

ClapRecorder::~ClapRecorder() = default;

void ClapRecorder::onWrite(ThreadId T, LocationId L, LocMeta &M,
                           FunctionRef<void()> Perform) {
  Counters.bump(T);
  Perform();
}

void ClapRecorder::onRead(ThreadId T, LocationId L, LocMeta &M,
                          FunctionRef<void()> Perform) {
  Counters.bump(T);
  Perform();
}

void ClapRecorder::onRmw(ThreadId T, LocationId L, LocMeta &M,
                         FunctionRef<void()> Perform) {
  Counters.bump(T);
  Perform();
}

uint64_t ClapRecorder::onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
  uint64_t V = Compute();
  Syscalls[T]->push_back(V);
  return V;
}

Counter ClapRecorder::counterOf(ThreadId T) const { return Counters.get(T); }

ClapRecording ClapRecorder::finish() {
  ClapRecording R;
  Counter MaxT = 0;
  for (uint32_t T = 0; T < MaxThreads; ++T)
    if (Counters.get(T) || !Syscalls[T]->empty())
      MaxT = T;
  R.FinalCounters.resize(MaxT + 1, 0);
  R.SyscallValues.resize(MaxT + 1);
  for (uint32_t T = 0; T <= MaxT; ++T) {
    R.FinalCounters[T] = Counters.get(T);
    R.SyscallValues[T] = *Syscalls[T];
  }
  uint64_t Accesses = 0;
  for (Counter C : R.FinalCounters)
    Accesses += C;
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("baseline.clap.accesses").add(Accesses);
  return R;
}

uint64_t ClapRecording::spaceLongs() const {
  uint64_t Bits = 0;
  for (const auto &T : Branches.PerThread)
    Bits += T.size();
  uint64_t Inputs = 0;
  for (const auto &T : SyscallValues)
    Inputs += T.size();
  return (Bits + 63) / 64 + Inputs * 2;
}

// --- Symbolic analysis ------------------------------------------------------

namespace {

/// Points-to oracle: per shared location, the reference facts gathered from
/// one concrete run (the stand-in for Clap's static points-to analysis).
struct Oracle : Machine::WriteObserver {
  struct Fact {
    bool Written = false;
    bool Ref = false;
    bool Single = true;
    Value Val;
  };
  std::unordered_map<LocationId, Fact> Facts;

  void onSharedWrite(LocationId L, const Value &V) override {
    Fact &F = Facts[L];
    if (!F.Written) {
      F.Written = true;
      F.Ref = V.isRef();
      F.Val = V;
      return;
    }
    if (!(F.Val == V))
      F.Single = false;
    F.Ref = F.Ref || V.isRef();
  }
};

struct SymVal {
  int32_t Expr = -1; ///< >= 0: symbolic expression index
  Value Conc;
  bool isSym() const { return Expr >= 0; }

  static SymVal conc(Value V) {
    SymVal S;
    S.Conc = V;
    return S;
  }
  static SymVal sym(int32_t E) {
    SymVal S;
    S.Expr = E;
    return S;
  }
};

/// Expression arena node.
struct SE {
  char Kind; ///< 'v' var, 'k' const, '+','-','*','/','%','=','!','<','L','N'
  int64_t K = 0;
  int32_t A = -1, B = -1;
};

/// One recorded symbolic event.
struct Ev {
  char Kind; ///< 'r' read, 'w' write, 'a' acquire, 'l' release
  ThreadId T;
  Counter C;
  LocationId Loc;
  int32_t ValExpr = -1; ///< write value / read variable (when symbolic)
  int64_t ConcVal = 0;  ///< concrete value otherwise
  bool Concrete = true;
};

class SymbolicRun {
public:
  const Program &P;
  const ClapRecording &R;
  Oracle &Ora;

  std::vector<SE> Exprs;
  std::vector<Ev> Events;
  /// (expression, required truth value) branch/bug constraints.
  std::vector<std::pair<int32_t, bool>> PathConstraints;

  bool Unsupported = false;
  std::string Why;

  SymbolicRun(const Program &Prog, const ClapRecording &Rec, Oracle &O)
      : P(Prog), R(Rec), Ora(O) {}

  int32_t mkExpr(SE E) {
    Exprs.push_back(E);
    return static_cast<int32_t>(Exprs.size()) - 1;
  }
  int32_t mkConst(int64_t K) { return mkExpr({'k', K, -1, -1}); }
  int32_t mkVar() { return mkExpr({'v', 0, -1, -1}); }

  void bail(std::string Reason) {
    if (!Unsupported) {
      Unsupported = true;
      Why = std::move(Reason);
    }
  }

  // --- per-thread execution state ---
  struct Frame {
    FuncId Func = 0;
    int32_t PC = 0;
    Reg RetReg = NoReg;
    std::vector<SymVal> Regs;
  };
  struct LocalObj {
    char Kind; ///< 'p' plain, 'a' array, 'm' map
    ClassId Class = 0;
    std::vector<SymVal> Fields;
    std::unordered_map<int64_t, SymVal> Map;
  };
  struct ThreadExec {
    ThreadId Id = 0;
    Counter Ctr = 0;
    std::vector<Frame> Stack;
    std::unordered_map<uint64_t, LocalObj> Local;
    uint32_t AllocCount = 0;
    uint32_t SpawnCount = 0;
    size_t BranchPos = 0;
    size_t SyscallPos = 0;
    bool Stopped = false;
  };

  std::deque<ThreadExec> Pending;
  std::unordered_map<uint64_t, ThreadId> SpawnTable; ///< (parent,idx)->child

  void run() {
    for (const SpawnRecord &S : R.Spawns)
      SpawnTable[(static_cast<uint64_t>(S.Parent) << 32) | S.SpawnIndex] =
          S.Child;

    // Main thread.
    spawnExec(0, P.Entry, SymVal::conc(Value::intVal(0)), false);
    while (!Pending.empty() && !Unsupported) {
      ThreadExec T = std::move(Pending.front());
      Pending.pop_front();
      execThread(T);
    }
  }

private:
  Counter horizonOf(ThreadId T) const {
    return T < R.FinalCounters.size() ? R.FinalCounters[T] : 0;
  }

  void spawnExec(ThreadId Id, FuncId Entry, SymVal Arg, bool HasArg) {
    ThreadExec T;
    T.Id = Id;
    Frame F;
    F.Func = Entry;
    F.Regs.assign(P.function(Entry).NumRegs, SymVal::conc(Value::intVal(0)));
    if (HasArg && P.function(Entry).NumParams == 1)
      F.Regs[0] = Arg;
    T.Stack.push_back(std::move(F));
    Pending.push_back(std::move(T));
  }

  /// Bumps the counter; returns false when the thread crossed its horizon
  /// (the recorded run never got this far) and must stop.
  bool tick(ThreadExec &T) {
    if (T.Ctr + 1 > horizonOf(T.Id)) {
      T.Stopped = true;
      return false;
    }
    ++T.Ctr;
    return true;
  }

  void emit(char Kind, ThreadExec &T, LocationId L, SymVal Val) {
    Ev E;
    E.Kind = Kind;
    E.T = T.Id;
    E.C = T.Ctr;
    E.Loc = L;
    if (Val.isSym()) {
      E.Concrete = false;
      E.ValExpr = Val.Expr;
    } else {
      E.Concrete = true;
      E.ConcVal = Val.Conc.isInt()
                      ? Val.Conc.Int
                      : static_cast<int64_t>(Val.Conc.Ref.pack());
    }
    Events.push_back(E);
  }

  /// A shared read of \p L: concrete via the oracle for stable references,
  /// else a fresh symbolic variable.
  SymVal sharedRead(ThreadExec &T, LocationId L) {
    if (!tick(T))
      return SymVal::conc(Value::intVal(0));
    auto It = Ora.Facts.find(L);
    if (It != Ora.Facts.end() && It->second.Ref) {
      if (!It->second.Single) {
        bail("reference-valued location " + loc::str(L) +
             " with multiple targets (symbolic references unsupported)");
        return SymVal::conc(Value::null());
      }
      SymVal V = SymVal::conc(It->second.Val);
      emit('r', T, L, V);
      return V;
    }
    SymVal V = SymVal::sym(mkVar());
    emit('r', T, L, V);
    return V;
  }

  void sharedWrite(ThreadExec &T, LocationId L, SymVal V) {
    if (!tick(T))
      return;
    if (V.isSym() ? false : V.Conc.isRef()) {
      // Reference writes are order-only facts; value is the packed id.
    }
    emit('w', T, L, V);
  }

  bool requireConcreteInt(const SymVal &V, int64_t &Out, const char *What) {
    if (V.isSym()) {
      bail(std::string("symbolic ") + What + " unsupported by the solver");
      return false;
    }
    if (!V.Conc.isInt()) {
      bail(std::string(What) + " is not an integer");
      return false;
    }
    Out = V.Conc.Int;
    return true;
  }

  bool requireConcreteRef(const SymVal &V, ObjectId &Out, const char *What) {
    if (V.isSym() || !V.Conc.isRef()) {
      bail(std::string("symbolic reference as ") + What +
           " (no native solver support)");
      return false;
    }
    Out = V.Conc.Ref;
    return true;
  }

  /// Integer view of a SymVal as an expression id (-1 with K set for
  /// concrete handled by caller). Returns an expr id always.
  int32_t exprOf(const SymVal &V) {
    if (V.isSym())
      return V.Expr;
    int64_t K =
        V.Conc.isInt() ? V.Conc.Int : static_cast<int64_t>(V.Conc.Ref.pack());
    return mkConst(K);
  }

  void execThread(ThreadExec &T);
};

void SymbolicRun::execThread(ThreadExec &T) {
  uint64_t Budget = 10000000;
  const auto &Trace = T.Id < R.Branches.PerThread.size()
                          ? R.Branches.PerThread[T.Id]
                          : std::vector<uint8_t>();

  // Spawned threads first read their ghost start token.
  if (T.Id != 0) {
    if (!tick(T))
      return;
    // Ghost tokens carry value 1 so the initial-value matching case can
    // never swallow the happens-before edge.
    emit('r', T, loc::threadStart(T.Id), SymVal::conc(Value::intVal(1)));
  }

  while (!T.Stopped && !Unsupported && !T.Stack.empty()) {
    if (Budget-- == 0) {
      bail("symbolic execution budget exhausted");
      return;
    }
    Frame &F = T.Stack.back();
    const Function &Fn = P.function(F.Func);
    const Instr &I = Fn.Body[F.PC];

    // The recorded failure point: assert the illegal-value condition.
    if (R.Bug.happened() && T.Id == R.Bug.Thread && F.Func == R.Bug.Func &&
        F.PC == R.Bug.Instr && T.Ctr == R.Bug.AccessCount) {
      switch (R.Bug.What) {
      case BugReport::Kind::AssertionFailure:
        PathConstraints.push_back({exprOf(F.Regs[I.A]), false});
        break;
      case BugReport::Kind::DivideByZero:
        PathConstraints.push_back({exprOf(F.Regs[I.C]), false});
        break;
      default:
        bail("failure kind outside Clap's value model");
        break;
      }
      return; // the thread stops at the failure
    }

    auto Bin = [&](char Op) {
      SymVal A = F.Regs[I.B], B = F.Regs[I.C];
      if (!A.isSym() && !B.isSym()) {
        int64_t X = A.Conc.Int, Y = B.Conc.Int;
        int64_t Out = 0;
        switch (Op) {
        case '+':
          Out = X + Y;
          break;
        case '-':
          Out = X - Y;
          break;
        case '*':
          Out = X * Y;
          break;
        case '/':
          Out = Y ? X / Y : 0;
          break;
        case '%':
          Out = Y ? X % Y : 0;
          break;
        case '<':
          Out = X < Y;
          break;
        case 'L':
          Out = X <= Y;
          break;
        }
        F.Regs[I.A] = SymVal::conc(Value::intVal(Out));
        return;
      }
      if (Op == '*' && A.isSym() && B.isSym()) {
        bail("nonlinear arithmetic (symbolic * symbolic)");
        return;
      }
      if ((Op == '/' || Op == '%') && B.isSym()) {
        bail("symbolic divisor");
        return;
      }
      F.Regs[I.A] = SymVal::sym(mkExpr({Op, 0, exprOf(A), exprOf(B)}));
    };

    switch (I.Op) {
    case Opcode::Nop:
      ++F.PC;
      break;
    case Opcode::ConstInt:
      F.Regs[I.A] = SymVal::conc(Value::intVal(I.Imm));
      ++F.PC;
      break;
    case Opcode::ConstNull:
      F.Regs[I.A] = SymVal::conc(Value::null());
      ++F.PC;
      break;
    case Opcode::Move:
      F.Regs[I.A] = F.Regs[I.B];
      ++F.PC;
      break;
    case Opcode::Add:
      Bin('+');
      ++F.PC;
      break;
    case Opcode::Sub:
      Bin('-');
      ++F.PC;
      break;
    case Opcode::Mul:
      Bin('*');
      ++F.PC;
      break;
    case Opcode::Div:
      Bin('/');
      ++F.PC;
      break;
    case Opcode::Mod:
      Bin('%');
      ++F.PC;
      break;
    case Opcode::CmpLt:
      Bin('<');
      ++F.PC;
      break;
    case Opcode::CmpLe:
      Bin('L');
      ++F.PC;
      break;
    case Opcode::CmpEq:
    case Opcode::CmpNe: {
      SymVal A = F.Regs[I.B], B = F.Regs[I.C];
      if (!A.isSym() && !B.isSym()) {
        bool Eq = A.Conc == B.Conc;
        F.Regs[I.A] = SymVal::conc(
            Value::intVal(I.Op == Opcode::CmpEq ? Eq : !Eq));
      } else {
        char Op = I.Op == Opcode::CmpEq ? '=' : '!';
        F.Regs[I.A] = SymVal::sym(mkExpr({Op, 0, exprOf(A), exprOf(B)}));
      }
      ++F.PC;
      break;
    }
    case Opcode::Not: {
      SymVal A = F.Regs[I.B];
      if (!A.isSym())
        F.Regs[I.A] = SymVal::conc(Value::intVal(!A.Conc.truthy()));
      else
        F.Regs[I.A] = SymVal::sym(mkExpr({'N', 0, A.Expr, -1}));
      ++F.PC;
      break;
    }

    case Opcode::Jmp:
      F.PC = I.Target;
      break;
    case Opcode::Br: {
      if (T.BranchPos >= Trace.size()) {
        T.Stopped = true; // recorded run ended mid-flight here
        return;
      }
      bool Taken = Trace[T.BranchPos++] != 0;
      SymVal Cond = F.Regs[I.A];
      if (Cond.isSym())
        PathConstraints.push_back({Cond.Expr, Taken});
      else if (Cond.Conc.truthy() != Taken) {
        bail("concrete branch contradicts the recorded trace");
        return;
      }
      F.PC = Taken ? I.Target : I.Target2;
      break;
    }

    case Opcode::Call: {
      const Function &Callee = P.function(static_cast<FuncId>(I.Imm));
      Frame NF;
      NF.Func = static_cast<FuncId>(I.Imm);
      NF.RetReg = I.A;
      NF.Regs.assign(Callee.NumRegs, SymVal::conc(Value::intVal(0)));
      for (size_t A = 0; A < I.Args.size(); ++A)
        NF.Regs[A] = F.Regs[I.Args[A]];
      ++F.PC;
      T.Stack.push_back(std::move(NF));
      break;
    }
    case Opcode::Ret: {
      SymVal Result = I.A == NoReg ? SymVal::conc(Value::intVal(0))
                                   : F.Regs[I.A];
      Reg RetTo = F.RetReg;
      T.Stack.pop_back();
      if (T.Stack.empty()) {
        if (tick(T))
          emit('w', T, loc::threadTerm(T.Id),
               SymVal::conc(Value::intVal(1)));
        return;
      }
      if (RetTo != NoReg)
        T.Stack.back().Regs[RetTo] = Result;
      break;
    }

    case Opcode::New: {
      LocalObj O;
      O.Kind = 'p';
      O.Class = static_cast<ClassId>(I.Imm);
      O.Fields.assign(P.classDef(O.Class).numFields(),
                      SymVal::conc(Value::intVal(0)));
      ObjectId Id(T.Id, ++T.AllocCount);
      T.Local.emplace(Id.pack(), std::move(O));
      F.Regs[I.A] = SymVal::conc(Value::ref(Id));
      ++F.PC;
      break;
    }
    case Opcode::NewArray: {
      int64_t Len;
      if (!requireConcreteInt(F.Regs[I.B], Len, "array length"))
        return;
      LocalObj O;
      O.Kind = 'a';
      O.Fields.assign(static_cast<size_t>(Len),
                      SymVal::conc(Value::intVal(0)));
      ObjectId Id(T.Id, ++T.AllocCount);
      T.Local.emplace(Id.pack(), std::move(O));
      F.Regs[I.A] = SymVal::conc(Value::ref(Id));
      ++F.PC;
      break;
    }

    case Opcode::MapNew:
    case Opcode::MapPut:
    case Opcode::MapGet:
    case Opcode::MapContains:
    case Opcode::MapRemove:
      // The paper's headline limitation: "data types that do not have
      // native solver support, such as HashMap".
      bail("hash-map intrinsic (no native solver support)");
      return;

    case Opcode::GetField: {
      ObjectId Obj;
      if (!requireConcreteRef(F.Regs[I.B], Obj, "field base"))
        return;
      LocationId L = loc::field(Obj, static_cast<uint32_t>(I.Imm));
      if (I.SharedAccess) {
        F.Regs[I.A] = sharedRead(T, L);
        if (T.Stopped)
          return;
      } else {
        auto It = T.Local.find(Obj.pack());
        if (It == T.Local.end()) {
          bail("unshared read of a foreign object");
          return;
        }
        F.Regs[I.A] = It->second.Fields[I.Imm];
      }
      ++F.PC;
      break;
    }
    case Opcode::PutField: {
      ObjectId Obj;
      if (!requireConcreteRef(F.Regs[I.A], Obj, "field base"))
        return;
      LocationId L = loc::field(Obj, static_cast<uint32_t>(I.Imm));
      if (I.SharedAccess) {
        sharedWrite(T, L, F.Regs[I.B]);
        if (T.Stopped)
          return;
      } else {
        auto It = T.Local.find(Obj.pack());
        if (It == T.Local.end()) {
          bail("unshared write of a foreign object");
          return;
        }
        It->second.Fields[I.Imm] = F.Regs[I.B];
      }
      ++F.PC;
      break;
    }
    case Opcode::GetGlobal: {
      if (I.SharedAccess) {
        F.Regs[I.A] = sharedRead(T, loc::var(static_cast<uint32_t>(I.Imm)));
        if (T.Stopped)
          return;
      } else {
        // Unshared global: main-only data; concrete simulation suffices.
        F.Regs[I.A] = T.Local.count(~static_cast<uint64_t>(I.Imm))
                          ? T.Local[~static_cast<uint64_t>(I.Imm)].Fields[0]
                          : SymVal::conc(Value::intVal(0));
      }
      ++F.PC;
      break;
    }
    case Opcode::PutGlobal: {
      if (I.SharedAccess) {
        sharedWrite(T, loc::var(static_cast<uint32_t>(I.Imm)), F.Regs[I.A]);
        if (T.Stopped)
          return;
      } else {
        LocalObj &O = T.Local[~static_cast<uint64_t>(I.Imm)];
        O.Kind = 'p';
        O.Fields.assign(1, F.Regs[I.A]);
      }
      ++F.PC;
      break;
    }
    case Opcode::ALoad:
    case Opcode::AStore: {
      ObjectId Obj;
      Reg ArrReg = I.Op == Opcode::ALoad ? I.B : I.A;
      if (!requireConcreteRef(F.Regs[ArrReg], Obj, "array base"))
        return;
      int64_t Idx;
      if (!requireConcreteInt(
              F.Regs[I.Op == Opcode::ALoad ? I.C : I.B], Idx, "array index"))
        return;
      LocationId L = loc::arrayElem(Obj, static_cast<uint32_t>(Idx));
      if (I.SharedAccess) {
        if (I.Op == Opcode::ALoad) {
          F.Regs[I.A] = sharedRead(T, L);
        } else {
          sharedWrite(T, L, F.Regs[I.C]);
        }
        if (T.Stopped)
          return;
      } else {
        auto It = T.Local.find(Obj.pack());
        if (It == T.Local.end()) {
          bail("unshared array access on a foreign object");
          return;
        }
        if (I.Op == Opcode::ALoad)
          F.Regs[I.A] = It->second.Fields[Idx];
        else
          It->second.Fields[Idx] = F.Regs[I.C];
      }
      ++F.PC;
      break;
    }
    case Opcode::ArrayLen: {
      ObjectId Obj;
      if (!requireConcreteRef(F.Regs[I.B], Obj, "array base"))
        return;
      auto It = T.Local.find(Obj.pack());
      if (It == T.Local.end()) {
        bail("length of a foreign array");
        return;
      }
      F.Regs[I.A] = SymVal::conc(
          Value::intVal(static_cast<int64_t>(It->second.Fields.size())));
      ++F.PC;
      break;
    }

    case Opcode::MonitorEnter:
    case Opcode::MonitorExit: {
      ObjectId Obj;
      if (!requireConcreteRef(F.Regs[I.A], Obj, "monitor operand"))
        return;
      if (!tick(T))
        return;
      emit(I.Op == Opcode::MonitorEnter ? 'a' : 'l', T, loc::lock(Obj),
           SymVal::conc(Value::intVal(0)));
      ++F.PC;
      break;
    }

    case Opcode::Wait:
    case Opcode::Notify:
    case Opcode::NotifyAll:
      bail("wait/notify outside the symbolic model");
      return;

    case Opcode::TimedWait:
      // Strictly harder than wait/notify: the timeout arm depends on the
      // schedule, which per-thread re-execution cannot see.
      bail("timed wait outside the symbolic model");
      return;

    case Opcode::RwRdLock:
    case Opcode::RwRdUnlock:
    case Opcode::RwWrLock:
    case Opcode::RwWrUnlock:
      // Encoding shared/exclusive admission would need a dedicated theory;
      // treating them as plain mutexes would forbid feasible schedules
      // (concurrent readers), so bail instead of risking bogus UNSAT.
      bail("read-write locks outside the symbolic model");
      return;

    case Opcode::BarrierInit:
    case Opcode::BarrierWait:
      bail("barriers outside the symbolic model");
      return;

    case Opcode::AtomicCas:
    case Opcode::AtomicXchg:
      // The success arm of a CAS is schedule-dependent; modeling it would
      // need totally-ordered RMW events, which this encoding lacks.
      bail("lock-free atomics outside the symbolic model");
      return;

    case Opcode::ChanMake:
    case Opcode::ChanSend:
    case Opcode::ChanRecv:
    case Opcode::ChanTryRecv:
      // Message passing pairs a send with a schedule-chosen receive; the
      // path-constraint encoding has no ordered message store to draw on.
      bail("channel operations outside the symbolic model");
      return;

    case Opcode::ThreadStart: {
      uint64_t Key = (static_cast<uint64_t>(T.Id) << 32) | T.SpawnCount++;
      auto It = SpawnTable.find(Key);
      if (It == SpawnTable.end()) {
        T.Stopped = true; // spawn past the recorded structure
        return;
      }
      ThreadId Child = It->second;
      const Function &Entry = P.function(static_cast<FuncId>(I.Imm));
      SymVal Arg = SymVal::conc(Value::intVal(0));
      if (Entry.NumParams == 1) {
        if (F.Regs[I.B].isSym()) {
          bail("symbolic thread argument");
          return;
        }
        Arg = F.Regs[I.B];
      }
      if (!tick(T))
        return;
      emit('w', T, loc::threadStart(Child), SymVal::conc(Value::intVal(1)));
      spawnExec(Child, static_cast<FuncId>(I.Imm), Arg,
                Entry.NumParams == 1);
      F.Regs[I.A] = SymVal::conc(Value::intVal(Child));
      ++F.PC;
      break;
    }
    case Opcode::ThreadJoin: {
      int64_t Target;
      if (!requireConcreteInt(F.Regs[I.A], Target, "join target"))
        return;
      if (!tick(T))
        return;
      emit('r', T, loc::threadTerm(static_cast<ThreadId>(Target)),
           SymVal::conc(Value::intVal(1)));
      ++F.PC;
      break;
    }

    case Opcode::AssertTrue: {
      // A passing assertion on a symbolic value is a path fact.
      SymVal V = F.Regs[I.A];
      if (V.isSym())
        PathConstraints.push_back({V.Expr, true});
      ++F.PC;
      break;
    }
    case Opcode::AssertNonNull:
      ++F.PC; // references are concrete here; a null would be the bug site
      break;

    case Opcode::SysTime:
    case Opcode::SysRand: {
      const auto &Queue = T.Id < R.SyscallValues.size()
                              ? R.SyscallValues[T.Id]
                              : std::vector<uint64_t>();
      if (T.SyscallPos >= Queue.size()) {
        T.Stopped = true;
        return;
      }
      F.Regs[I.A] = SymVal::conc(
          Value::intVal(static_cast<int64_t>(Queue[T.SyscallPos++])));
      ++F.PC;
      break;
    }

    case Opcode::Print:
      ++F.PC;
      break;
    case Opcode::BurnCpu:
      ++F.PC;
      break;
    }
  }
}

} // namespace

// --- Constraint generation & solving ----------------------------------------

ClapSolveResult light::clapSolve(const Program &P, const ClapRecording &R) {
  Stopwatch Timer;
  ClapSolveResult Out;

  // 1. Points-to oracle pass (stand-in for Clap's static analysis).
  Oracle Ora;
  {
    NullHook Null;
    Machine M(P, Null);
    M.setWriteObserver(&Ora);
    RandomScheduler Sched(0xC1A9);
    M.run(Sched);
  }

  // 2. Per-thread symbolic re-execution.
  SymbolicRun Run(P, R, Ora);
  Run.run();
  if (Run.Unsupported) {
    Out.UnsupportedWhy = Run.Why;
    Out.SolveSeconds = Timer.seconds();
    return Out;
  }
  Out.Supported = true;

  // 3. Encode to Z3.
  z3::context Ctx;
  z3::solver Solver(Ctx);

  // Expression translation.
  std::vector<std::unique_ptr<z3::expr>> ZE(Run.Exprs.size());
  std::function<z3::expr(int32_t)> Tr = [&](int32_t Id) -> z3::expr {
    if (ZE[Id])
      return *ZE[Id];
    const SE &E = Run.Exprs[Id];
    z3::expr Result = Ctx.int_val(0);
    switch (E.Kind) {
    case 'v':
      Result = Ctx.int_const(("sv" + std::to_string(Id)).c_str());
      break;
    case 'k':
      Result = Ctx.int_val(E.K);
      break;
    case '+':
      Result = Tr(E.A) + Tr(E.B);
      break;
    case '-':
      Result = Tr(E.A) - Tr(E.B);
      break;
    case '*':
      Result = Tr(E.A) * Tr(E.B);
      break;
    case '/':
      Result = Tr(E.A) / Tr(E.B);
      break;
    case '%':
      Result = z3::mod(Tr(E.A), Tr(E.B));
      break;
    case '=':
      Result = z3::ite(Tr(E.A) == Tr(E.B), Ctx.int_val(1), Ctx.int_val(0));
      break;
    case '!':
      Result = z3::ite(Tr(E.A) != Tr(E.B), Ctx.int_val(1), Ctx.int_val(0));
      break;
    case '<':
      Result = z3::ite(Tr(E.A) < Tr(E.B), Ctx.int_val(1), Ctx.int_val(0));
      break;
    case 'L':
      Result = z3::ite(Tr(E.A) <= Tr(E.B), Ctx.int_val(1), Ctx.int_val(0));
      break;
    case 'N':
      Result = z3::ite(Tr(E.A) == 0, Ctx.int_val(1), Ctx.int_val(0));
      break;
    }
    ZE[Id] = std::make_unique<z3::expr>(Result);
    return Result;
  };

  // Order variables per event.
  std::vector<z3::expr> O;
  O.reserve(Run.Events.size());
  for (size_t I = 0; I < Run.Events.size(); ++I)
    O.push_back(Ctx.int_const(("o" + std::to_string(I)).c_str()));

  // Program order.
  {
    std::unordered_map<ThreadId, std::vector<size_t>> ByThread;
    for (size_t I = 0; I < Run.Events.size(); ++I)
      ByThread[Run.Events[I].T].push_back(I);
    for (auto &[T, List] : ByThread) {
      std::sort(List.begin(), List.end(), [&](size_t X, size_t Y) {
        return Run.Events[X].C < Run.Events[Y].C;
      });
      for (size_t I = 1; I < List.size(); ++I)
        Solver.add(O[List[I - 1]] < O[List[I]]);
    }
  }

  // Read-to-write matching with noninterference, per location.
  {
    std::unordered_map<LocationId, std::vector<size_t>> Reads, Writes;
    for (size_t I = 0; I < Run.Events.size(); ++I) {
      const Ev &E = Run.Events[I];
      if (E.Kind == 'r')
        Reads[E.Loc].push_back(I);
      else if (E.Kind == 'w')
        Writes[E.Loc].push_back(I);
    }
    for (auto &[L, Rs] : Reads) {
      const std::vector<size_t> &Ws = Writes[L];
      for (size_t RI : Rs) {
        const Ev &Rd = Run.Events[RI];
        z3::expr_vector Cases(Ctx);
        z3::expr ReadVal = Rd.Concrete ? Ctx.int_val(Rd.ConcVal)
                                       : Tr(Rd.ValExpr);
        // Initial-value case: the read precedes every write; value 0.
        {
          z3::expr Case = ReadVal == 0;
          for (size_t WI : Ws)
            Case = Case && O[RI] < O[WI];
          Cases.push_back(Case);
        }
        for (size_t WI : Ws) {
          const Ev &Wr = Run.Events[WI];
          z3::expr WVal =
              Wr.Concrete ? Ctx.int_val(Wr.ConcVal) : Tr(Wr.ValExpr);
          z3::expr Case = (ReadVal == WVal) && (O[WI] < O[RI]);
          for (size_t WJ : Ws) {
            if (WJ == WI)
              continue;
            Case = Case && (O[WJ] < O[WI] || O[RI] < O[WJ]);
          }
          Cases.push_back(Case);
        }
        Solver.add(z3::mk_or(Cases));
      }
    }
  }

  // Lock mutual exclusion.
  {
    struct Section {
      size_t Acq;
      size_t Rel;
      bool Open;
    };
    std::unordered_map<LocationId, std::vector<Section>> Sections;
    // Per (thread, loc): depth counting over acquire/release events in
    // counter order.
    std::map<std::pair<ThreadId, LocationId>, std::vector<size_t>> PerTL;
    for (size_t I = 0; I < Run.Events.size(); ++I) {
      const Ev &E = Run.Events[I];
      if (E.Kind == 'a' || E.Kind == 'l')
        PerTL[{E.T, E.Loc}].push_back(I);
    }
    for (auto &[Key, List] : PerTL) {
      std::sort(List.begin(), List.end(), [&](size_t X, size_t Y) {
        return Run.Events[X].C < Run.Events[Y].C;
      });
      int Depth = 0;
      size_t OpenAcq = 0;
      for (size_t I : List) {
        if (Run.Events[I].Kind == 'a') {
          if (Depth++ == 0)
            OpenAcq = I;
        } else if (Depth > 0 && --Depth == 0) {
          Sections[Key.second].push_back({OpenAcq, I, false});
        }
      }
      if (Depth > 0)
        Sections[Key.second].push_back({OpenAcq, 0, true});
    }
    for (auto &[L, Secs] : Sections) {
      for (size_t I = 0; I < Secs.size(); ++I) {
        for (size_t J = I + 1; J < Secs.size(); ++J) {
          const Section &A = Secs[I];
          const Section &B = Secs[J];
          if (Run.Events[A.Acq].T == Run.Events[B.Acq].T)
            continue; // program order handles same-thread sections
          if (A.Open && B.Open) {
            Solver.add(Ctx.bool_val(false));
          } else if (A.Open) {
            Solver.add(O[B.Rel] < O[A.Acq]);
          } else if (B.Open) {
            Solver.add(O[A.Rel] < O[B.Acq]);
          } else {
            Solver.add(O[A.Rel] < O[B.Acq] || O[B.Rel] < O[A.Acq]);
          }
        }
      }
    }
  }

  // Recorded control flow and the failure condition.
  for (auto &[ExprId, MustBeTrue] : Run.PathConstraints) {
    z3::expr V = Tr(ExprId);
    Solver.add(MustBeTrue ? V != 0 : V == 0);
  }

  if (Solver.check() != z3::sat) {
    Out.Solved = false;
    Out.SolveSeconds = Timer.seconds();
    return Out;
  }
  Out.Solved = true;

  // 4. Extract the schedule.
  z3::model Model = Solver.get_model();
  std::vector<std::pair<int64_t, size_t>> Keyed;
  Keyed.reserve(Run.Events.size());
  for (size_t I = 0; I < Run.Events.size(); ++I) {
    int64_t V = Model.eval(O[I], true).get_numeral_int64();
    Keyed.push_back({V, I});
  }
  std::sort(Keyed.begin(), Keyed.end(), [&](const auto &A, const auto &B) {
    if (A.first != B.first)
      return A.first < B.first;
    const Ev &X = Run.Events[A.second];
    const Ev &Y = Run.Events[B.second];
    return AccessId(X.T, X.C).pack() < AccessId(Y.T, Y.C).pack();
  });
  for (auto &[V, I] : Keyed)
    Out.Order.push_back(AccessId(Run.Events[I].T, Run.Events[I].C));

  Out.SolveSeconds = Timer.seconds();
  return Out;
}

RunResult light::clapReplay(const Program &P, const ClapRecording &R,
                            const ClapSolveResult &Solved) {
  TotalOrderDirector Director(Solved.Order, R.SyscallValues);
  Machine M(P, Director);
  M.prepareReplay(R.Spawns);
  return M.runReplay(Director);
}

//===- baselines/LeapRecorder.cpp - The Leap baseline ----------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "baselines/LeapRecorder.h"

#include "obs/Metrics.h"

#include "support/BinaryIO.h"

using namespace light;

LeapRecorder::LeapRecorder() : Shards(NumShards) {}

LeapRecorder::~LeapRecorder() = default;

Counter LeapRecorder::counterOf(ThreadId T) const { return Counters.get(T); }

void LeapRecorder::record(ThreadId T, LocationId L,
                          FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  Shard &S = shardFor(L);
  // Leap's critical section: the program access and the access-vector
  // append run under the location's lock so the recorded order reflects
  // the true access order (Section 2.2).
  std::lock_guard<std::mutex> Guard(S.M);
  Perform();
  S.Vectors[L].push_back(AccessId(T, C).pack());
  ++S.Count;
}

void LeapRecorder::onWrite(ThreadId T, LocationId L, LocMeta &M,
                           FunctionRef<void()> Perform) {
  record(T, L, Perform);
}

void LeapRecorder::onRead(ThreadId T, LocationId L, LocMeta &M,
                          FunctionRef<void()> Perform) {
  record(T, L, Perform);
}

void LeapRecorder::onRmw(ThreadId T, LocationId L, LocMeta &M,
                         FunctionRef<void()> Perform) {
  // Lock acquisitions must perform first (taking the program's mutex
  // inside our shard lock would invert the lock order against guarded
  // data accesses and deadlock). The region we just entered serializes
  // the append, so the recorded order still reflects the true order.
  Counter C = Counters.bump(T);
  Perform();
  Shard &S = shardFor(L);
  std::lock_guard<std::mutex> Guard(S.M);
  S.Vectors[L].push_back(AccessId(T, C).pack());
  ++S.Count;
}

uint64_t LeapRecorder::onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
  uint64_t Value = Compute();
  std::lock_guard<std::mutex> Guard(SyscallM);
  Syscalls.push_back({T, Value});
  return Value;
}

LeapLog LeapRecorder::finish(const std::string &DumpPath) {
  LeapLog Log;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    for (auto &[L, V] : S.Vectors)
      Log.AccessVectors[L] = V;
  }
  Log.Syscalls = Syscalls;
  if (!DumpPath.empty()) {
    LongWriter Writer(DumpPath);
    for (const auto &[L, V] : Log.AccessVectors) {
      Writer.put(L);
      Writer.put(V.size());
      for (uint64_t A : V)
        Writer.put(A);
    }
    Writer.finish();
  }
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("baseline.leap.access_vectors").add(Log.AccessVectors.size());
  Reg.counter("baseline.leap.long_integers").add(longIntegersRecorded());
  return Log;
}

uint64_t LeapRecorder::longIntegersRecorded() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Count;
  return Total + Syscalls.size() * 2;
}

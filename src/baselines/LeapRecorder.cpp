//===- baselines/LeapRecorder.cpp - The Leap baseline ----------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "baselines/LeapRecorder.h"

#include "obs/Metrics.h"

#include "support/BinaryIO.h"

using namespace light;

LeapRecorder::LeapRecorder() : Shards(NumShards) {}

LeapRecorder::~LeapRecorder() = default;

Counter LeapRecorder::counterOf(ThreadId T) const { return Counters.get(T); }

void LeapRecorder::record(ThreadId T, LocationId L,
                          FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  Shard &S = shardFor(L);
  // Leap's critical section: the program access and the access-vector
  // append run under the location's lock so the recorded order reflects
  // the true access order (Section 2.2). Contention probe sampled 1-in-64
  // by the per-thread counter, mirroring LightRecorder's stripe probe so
  // the bench_contention collision columns are comparable.
  std::unique_lock<std::mutex> Guard(S.M, std::defer_lock);
  if ((C & 63) == 0) {
    if (!Guard.try_lock()) {
      S.Contended.fetch_add(1, std::memory_order_relaxed);
      Guard.lock();
    }
  } else {
    Guard.lock();
  }
  Perform();
  S.Vectors[L].push_back(AccessId(T, C).pack());
  ++S.Count;
}

void LeapRecorder::onWrite(ThreadId T, LocationId L, LocMeta &M,
                           FunctionRef<void()> Perform) {
  record(T, L, Perform);
}

void LeapRecorder::onRead(ThreadId T, LocationId L, LocMeta &M,
                          FunctionRef<void()> Perform) {
  record(T, L, Perform);
}

void LeapRecorder::onRmw(ThreadId T, LocationId L, LocMeta &M,
                         FunctionRef<void()> Perform) {
  // Lock acquisitions must perform first (taking the program's mutex
  // inside our shard lock would invert the lock order against guarded
  // data accesses and deadlock). The region we just entered serializes
  // the append, so the recorded order still reflects the true order.
  Counter C = Counters.bump(T);
  Perform();
  Shard &S = shardFor(L);
  std::lock_guard<std::mutex> Guard(S.M);
  S.Vectors[L].push_back(AccessId(T, C).pack());
  ++S.Count;
}

uint64_t LeapRecorder::onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
  uint64_t Value = Compute();
  std::lock_guard<std::mutex> Guard(SyscallM);
  Syscalls.push_back({T, Value});
  return Value;
}

LeapLog LeapRecorder::finish(const std::string &DumpPath) {
  LeapLog Log;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    for (auto &[L, V] : S.Vectors)
      Log.AccessVectors[L] = V;
  }
  Log.Syscalls = Syscalls;
  if (!DumpPath.empty()) {
    LongWriter Writer(DumpPath);
    for (const auto &[L, V] : Log.AccessVectors) {
      Writer.put(L);
      Writer.put(V.size());
      for (uint64_t A : V)
        Writer.put(A);
    }
    Writer.finish();
  }
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("baseline.leap.access_vectors").add(Log.AccessVectors.size());
  Reg.counter("baseline.leap.long_integers").add(longIntegersRecorded());
  Reg.counter("baseline.leap.lock_contention").add(lockContentions());
  return Log;
}

uint64_t LeapRecorder::longIntegersRecorded() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Count;
  return Total + Syscalls.size() * 2;
}

uint64_t LeapRecorder::lockContentions() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Contended.load(std::memory_order_relaxed);
  return Total;
}

//===- baselines/ChimeraEngine.h - The Chimera baseline ---------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of Chimera [Lee et al., PLDI 2012], the hybrid
/// baseline of Section 5.3. Chimera statically detects racing statement
/// pairs, then *patches* the program — wrapping the enclosing methods of
/// each racy pair in a pair lock, transforming it into race-free code — and
/// at runtime records only the order of lock operations, which suffices for
/// deterministic replay of race-free programs (cheap!).
///
/// The paper's evaluation exposes the cost of this design: when the racing
/// methods rarely run in parallel, the patch serializes them outright, and
/// bugs that require an interleaving *inside* those method bodies can no
/// longer manifest at all — Chimera "hides" them (Cache4j, Tomcat-37458,
/// Tomcat-50885 in Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_BASELINES_CHIMERAENGINE_H
#define LIGHT_BASELINES_CHIMERAENGINE_H

#include "analysis/RaceDetector.h"
#include "interp/Machine.h"
#include "runtime/TotalOrderDirector.h"

#include <string>
#include <vector>

namespace light {

/// Result of Chimera's patching phase.
struct ChimeraPatch {
  mir::Program Patched;
  /// Functions that were wrapped in a chimera lock, by name.
  std::vector<std::string> SerializedFunctions;
  uint32_t NumChimeraLocks = 0;
};

/// Detects races in \p P and wraps each racy pair's enclosing functions
/// with a per-component chimera lock (connected components over the
/// function-race graph share one lock).
ChimeraPatch chimeraPatch(const mir::Program &P,
                          const std::vector<analysis::RacePair> &Races);

/// Chimera's recording: the global order of synchronization operations
/// (all ghost accesses), nothing at the field level.
struct ChimeraLog {
  std::vector<AccessId> SyncOrder;
  std::vector<std::vector<uint64_t>> SyscallValues;
  std::vector<SpawnRecord> Spawns;

  uint64_t spaceLongs() const {
    uint64_t Inputs = 0;
    for (const auto &T : SyscallValues)
      Inputs += T.size();
    return SyncOrder.size() + Inputs * 2;
  }
};

/// The Chimera runtime hook: appends every ghost synchronization access to
/// a global order (cheap — sync ops are rare), passes data accesses
/// through untouched.
class ChimeraRecorder : public AccessHook {
  PerThreadCounters Counters;
  std::mutex M;
  std::vector<AccessId> SyncOrder;
  std::vector<std::vector<uint64_t>> Syscalls;

public:
  ChimeraRecorder();

  void onWrite(ThreadId T, LocationId L, LocMeta &Meta,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &Meta,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &Meta,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;

  ChimeraLog finish();
};

/// Replay director: gates ghost (synchronization) accesses by the recorded
/// sync order; data accesses run free — sound only because the patched
/// program is race-free.
class ChimeraDirector : public AccessHook, public TurnSource {
public:
  explicit ChimeraDirector(const ChimeraLog &Log);

  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;

  AccessId currentTurn() const override;
  bool failed() const override { return Diverged.load(); }
  const std::string &divergence() const { return Error; }

private:
  std::vector<AccessId> Order;
  std::unordered_map<uint64_t, uint32_t> TurnOf;
  std::vector<Counter> Horizon;
  PerThreadCounters Counters;
  std::atomic<uint32_t> Turn{0};
  std::atomic<bool> Diverged{false};
  std::string Error;
  std::vector<std::vector<uint64_t>> SyscallQueues;
  std::vector<size_t> SyscallPos;

  void gate(ThreadId T, LocationId L, FunctionRef<void()> Perform);
  void diverge(const std::string &Message);
};

} // namespace light

#endif // LIGHT_BASELINES_CHIMERAENGINE_H

//===- baselines/LeapReplayer.cpp - Leap-style replay ----------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "baselines/LeapReplayer.h"

#include <algorithm>
#include <unordered_map>

using namespace light;

LeapOrder light::linearizeLeapLog(const LeapLog &Log) {
  LeapOrder Out;

  struct Entry {
    LocationId Loc;
    AccessId Id;
    uint32_t PosInLoc;
  };
  std::vector<Entry> All;
  size_t MaxThread = 0;
  for (const auto &[L, V] : Log.AccessVectors) {
    for (uint32_t P = 0; P < V.size(); ++P) {
      AccessId Id = AccessId::unpack(V[P]);
      All.push_back({L, Id, P});
      MaxThread = std::max(MaxThread, static_cast<size_t>(Id.Thread));
    }
  }

  std::vector<std::vector<Entry>> PerThread(MaxThread + 1);
  for (const Entry &E : All)
    PerThread[E.Id.Thread].push_back(E);
  for (auto &Seq : PerThread)
    std::sort(Seq.begin(), Seq.end(), [](const Entry &A, const Entry &B) {
      return A.Id.Count < B.Id.Count;
    });

  // Greedy merge: emit a thread's next access when it heads its location's
  // queue. The original execution witnesses such a linearization, so the
  // merge succeeds on well-formed logs.
  std::unordered_map<LocationId, uint32_t> LocHead;
  std::vector<size_t> ThreadHead(PerThread.size(), 0);
  Out.Order.reserve(All.size());
  while (Out.Order.size() < All.size()) {
    bool Progress = false;
    for (size_t T = 0; T < PerThread.size(); ++T) {
      while (ThreadHead[T] < PerThread[T].size()) {
        const Entry &E = PerThread[T][ThreadHead[T]];
        uint32_t &Head = LocHead[E.Loc];
        if (E.PosInLoc != Head)
          break;
        Out.Order.push_back(E.Id);
        ++Head;
        ++ThreadHead[T];
        Progress = true;
      }
    }
    if (!Progress) {
      Out.Error =
          "Leap log vectors are mutually inconsistent (no linearization)";
      return Out;
    }
  }

  Out.SyscallValues.resize(MaxThread + 2);
  for (const SyscallRecord &R : Log.Syscalls) {
    if (Out.SyscallValues.size() <= R.Thread)
      Out.SyscallValues.resize(R.Thread + 1);
    Out.SyscallValues[R.Thread].push_back(R.Value);
  }
  Out.Ok = true;
  return Out;
}

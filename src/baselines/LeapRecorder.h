//===- baselines/LeapRecorder.h - The Leap baseline -------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of Leap [Huang et al., FSE 2010], the representative
/// shared-access record-based baseline of the paper's evaluation
/// (Sections 2.2, 5.2): for every shared location, a globally ordered
/// access vector is maintained under synchronization, recording the
/// happens-before order of *all* accesses (reads and writes alike — i.e.
/// flow, anti, and output dependences). The per-access cost is a shard
/// lock, a map lookup, and a vector append ("the data recording is
/// expensive, e.g., it manipulates or even resizes the complex data
/// structure"), which is exactly the overhead Light's thread-local scheme
/// avoids.
///
/// Space unit: one long integer per access (the packed thread/counter id
/// appended to the location's vector), matching the paper's accounting.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_BASELINES_LEAPRECORDER_H
#define LIGHT_BASELINES_LEAPRECORDER_H

#include "runtime/AccessHook.h"
#include "trace/DepSpan.h"

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace light {

/// Leap's on-disk/in-memory recording: per-location access sequences.
struct LeapLog {
  /// Location -> packed AccessIds in global (synchronized) access order.
  std::unordered_map<LocationId, std::vector<uint64_t>> AccessVectors;
  std::vector<SyscallRecord> Syscalls;
  std::vector<SpawnRecord> Spawns;

  /// Long-integer units: one per recorded access.
  uint64_t spaceLongs() const {
    uint64_t Total = 0;
    for (const auto &[L, V] : AccessVectors)
      Total += V.size();
    return Total + Syscalls.size() * 2;
  }
};

/// The Leap recording hook.
class LeapRecorder : public AccessHook {
public:
  LeapRecorder();
  ~LeapRecorder() override;

  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;

  /// Merges the shards into a LeapLog (also serializes to \p DumpPath when
  /// non-empty, for timing parity with the other recorders).
  LeapLog finish(const std::string &DumpPath = std::string());

  uint64_t longIntegersRecorded() const;

  /// Sampled shard-lock try_lock misses (1-in-64 probe, same sampling as
  /// LightRecorder's stripe probe so the two are directly comparable).
  uint64_t lockContentions() const;

private:
  static constexpr uint32_t NumShards = 256;
  struct alignas(64) Shard {
    std::mutex M;
    std::unordered_map<LocationId, std::vector<uint64_t>> Vectors;
    uint64_t Count = 0;
    std::atomic<uint64_t> Contended{0}; ///< bumped outside M on probe miss
  };

  PerThreadCounters Counters;
  std::vector<Shard> Shards;
  std::mutex SyscallM;
  std::vector<SyscallRecord> Syscalls;

  Shard &shardFor(LocationId L) {
    return Shards[(loc::stripeKey(L) * 0x9e3779b1u >> 16) % NumShards];
  }

  void record(ThreadId T, LocationId L, FunctionRef<void()> Perform);
};

} // namespace light

#endif // LIGHT_BASELINES_LEAPRECORDER_H

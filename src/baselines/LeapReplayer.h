//===- baselines/LeapReplayer.h - Leap-style replay --------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replay for the Leap baseline: the recorded per-location access vectors
/// are merged (offline, respecting per-thread counter order) into a total
/// order over all shared accesses, enforced by a TotalOrderDirector. No
/// solver is needed — Leap recorded the complete order — at the recording
/// cost the paper's evaluation quantifies.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_BASELINES_LEAPREPLAYER_H
#define LIGHT_BASELINES_LEAPREPLAYER_H

#include "baselines/LeapRecorder.h"
#include "runtime/TotalOrderDirector.h"

#include <string>
#include <vector>

namespace light {

/// Result of linearizing a LeapLog.
struct LeapOrder {
  bool Ok = false;
  std::string Error;
  std::vector<AccessId> Order;
  std::vector<std::vector<uint64_t>> SyscallValues;
};

/// Merges the per-location vectors of \p Log into one total order,
/// respecting per-thread counter order. Fails when the vectors are
/// mutually inconsistent (no linearization exists).
LeapOrder linearizeLeapLog(const LeapLog &Log);

} // namespace light

#endif // LIGHT_BASELINES_LEAPREPLAYER_H

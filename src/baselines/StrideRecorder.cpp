//===- baselines/StrideRecorder.cpp - The Stride baseline ------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "baselines/StrideRecorder.h"

#include "obs/Metrics.h"

using namespace light;

StrideRecorder::StrideRecorder() : Shards(NumShards) {
  Threads.reserve(MaxThreads);
  for (uint32_t I = 0; I < MaxThreads; ++I)
    Threads.push_back(std::make_unique<PerThread>());
}

StrideRecorder::~StrideRecorder() = default;

Counter StrideRecorder::counterOf(ThreadId T) const { return Counters.get(T); }

StrideRecorder::LocState &StrideRecorder::stateFor(LocationId L) {
  Shard &S = shardFor(L);
  std::lock_guard<std::mutex> Guard(S.M);
  std::unique_ptr<LocState> &Slot = S.Locs[L];
  if (!Slot)
    Slot = std::make_unique<LocState>();
  return *Slot;
}

void StrideRecorder::onWrite(ThreadId T, LocationId L, LocMeta &M,
                             FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  Shard &S = shardFor(L);
  // Writes are globally ordered per location under synchronization, like
  // Leap's vectors. Same 1-in-64 sampled contention probe as the other
  // recorders so the bench_contention collision columns line up.
  std::unique_lock<std::mutex> Guard(S.M, std::defer_lock);
  if ((C & 63) == 0) {
    if (!Guard.try_lock()) {
      S.Contended.fetch_add(1, std::memory_order_relaxed);
      Guard.lock();
    }
  } else {
    Guard.lock();
  }
  std::unique_ptr<LocState> &Slot = S.Locs[L];
  if (!Slot)
    Slot = std::make_unique<LocState>();
  Perform();
  Slot->Writes.push_back(AccessId(T, C).pack());
  Slot->Version.store(static_cast<uint32_t>(Slot->Writes.size()));
}

void StrideRecorder::onRead(ThreadId T, LocationId L, LocMeta &M,
                            FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  LocState &State = stateFor(L);
  // Version-validated read: retry until the version is stable across the
  // program read, so (value, version) is a consistent pair.
  uint32_t V1, V2;
  PerThread &Me = *Threads[T];
  while (true) {
    V1 = State.Version.load();
    Perform();
    V2 = State.Version.load();
    if (V1 == V2)
      break;
    ++Me.Retries;
  }
  Me.Reads.push_back({L, V1, AccessId(T, C).pack()});
}

void StrideRecorder::onRmw(ThreadId T, LocationId L, LocMeta &M,
                           FunctionRef<void()> Perform) {
  // An RMW is a read (of the current version) plus a write. Perform first:
  // lock acquisitions must not run inside our shard lock (lock-order
  // inversion against guarded data accesses); the acquired region itself
  // serializes the version bump.
  Counter C = Counters.bump(T);
  Perform();
  Shard &S = shardFor(L);
  std::lock_guard<std::mutex> Guard(S.M);
  std::unique_ptr<LocState> &Slot = S.Locs[L];
  if (!Slot)
    Slot = std::make_unique<LocState>();
  uint32_t V = Slot->Version.load();
  Threads[T]->Reads.push_back({L, V, AccessId(T, C).pack()});
  Slot->Writes.push_back(AccessId(T, C).pack());
  Slot->Version.store(static_cast<uint32_t>(Slot->Writes.size()));
}

uint64_t StrideRecorder::onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
  uint64_t Value = Compute();
  Threads[T]->Syscalls.push_back({T, Value});
  return Value;
}

StrideLog StrideRecorder::finish() {
  StrideLog Log;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    for (auto &[L, State] : S.Locs)
      Log.WriteLists[L] = State->Writes;
  }
  for (auto &T : Threads) {
    Log.Reads.insert(Log.Reads.end(), T->Reads.begin(), T->Reads.end());
    Log.Syscalls.insert(Log.Syscalls.end(), T->Syscalls.begin(),
                        T->Syscalls.end());
  }
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("baseline.stride.reads").add(Log.Reads.size());
  Reg.counter("baseline.stride.long_integers").add(longIntegersRecorded());
  Reg.counter("baseline.stride.read_retries").add(readRetries());
  Reg.counter("baseline.stride.lock_contention").add(lockContentions());
  return Log;
}

uint64_t StrideRecorder::longIntegersRecorded() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    for (const auto &[L, State] : S.Locs)
      Total += State->Writes.size();
  for (const auto &T : Threads)
    Total += T->Reads.size() * 2 + T->Syscalls.size() * 2;
  return Total;
}

uint64_t StrideRecorder::readRetries() const {
  uint64_t Total = 0;
  for (const auto &T : Threads)
    Total += T->Retries;
  return Total;
}

uint64_t StrideRecorder::lockContentions() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Contended.load(std::memory_order_relaxed);
  return Total;
}

StrideLinkage StrideRecorder::reconstruct(const StrideLog &Log) {
  StrideLinkage Linkage;
  for (const StrideLog::ReadRecord &R : Log.Reads) {
    if (R.Version == 0) {
      Linkage.SourceOf[R.Reader] = 0;
      continue;
    }
    auto It = Log.WriteLists.find(R.Loc);
    if (It == Log.WriteLists.end() || R.Version > It->second.size())
      continue; // malformed record; leave unlinked
    Linkage.SourceOf[R.Reader] = It->second[R.Version - 1];
  }
  return Linkage;
}

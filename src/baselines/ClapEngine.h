//===- baselines/ClapEngine.h - The Clap baseline ----------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of Clap [Huang et al., PLDI 2013], the representative
/// *computation-based* replay baseline of Section 5.3. Clap records almost
/// nothing at runtime — per-thread branch outcomes and environment inputs —
/// and reconstructs the schedule offline by symbolically re-executing each
/// thread in isolation: every shared read becomes a fresh symbolic
/// variable, and a solver (Z3) searches for read-to-write matchings plus a
/// global order that reproduces the recorded control flow and the failure.
///
/// This inherits the approach's fundamental limitation the paper evaluates
/// ("63% of the real bugs ... are outside the scope"): whenever the
/// symbolic re-execution meets an operation without native solver support —
/// hash-map intrinsics, nonlinear arithmetic, symbolic references, symbolic
/// array indices, wait/notify — Clap reports the program unsupported and
/// fails to reproduce the bug. Light, which never reasons about values,
/// has no such limitation.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_BASELINES_CLAPENGINE_H
#define LIGHT_BASELINES_CLAPENGINE_H

#include "interp/Machine.h"
#include "runtime/TotalOrderDirector.h"

#include <memory>
#include <string>
#include <vector>

namespace light {

/// Everything Clap logs during the original run: branch outcomes, input
/// values, thread structure, and where the failure occurred.
struct ClapRecording {
  BranchTrace Branches;
  std::vector<std::vector<uint64_t>> SyscallValues; ///< per thread, in order
  std::vector<SpawnRecord> Spawns;
  std::vector<Counter> FinalCounters;
  BugReport Bug;

  /// Long-integer accounting: branch outcomes are bits; count them packed,
  /// plus two longs per recorded input.
  uint64_t spaceLongs() const;
};

/// Clap's runtime hook: pure pass-through with counters and input logging.
/// Pair with Machine::setBranchTracer for the branch trace.
class ClapRecorder : public AccessHook {
  PerThreadCounters Counters;
  std::vector<std::unique_ptr<std::vector<uint64_t>>> Syscalls;

public:
  ClapRecorder();
  ~ClapRecorder() override;

  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;

  /// Builds the recording; Branches must be filled by the caller from the
  /// machine's tracer, Spawns from its registry, Bug from the run result.
  ClapRecording finish();
};

/// Outcome of Clap's offline symbolic analysis.
struct ClapSolveResult {
  /// False when the program used operations outside solver support; the
  /// bug is then *not reproducible* by Clap (the paper's H2 failures).
  bool Supported = false;
  std::string UnsupportedWhy;

  /// Whether the constraint system was satisfiable.
  bool Solved = false;

  /// The reconstructed total schedule over instrumented accesses.
  std::vector<AccessId> Order;

  double SolveSeconds = 0;
};

/// Runs the offline phase: per-thread symbolic re-execution along the
/// recorded branch traces, constraint generation, Z3 solving.
ClapSolveResult clapSolve(const mir::Program &Program,
                          const ClapRecording &Recording);

/// Convenience: replays \p Program under the solved schedule and returns
/// the run result (validate against the recorded bug with sameAs()).
RunResult clapReplay(const mir::Program &Program,
                     const ClapRecording &Recording,
                     const ClapSolveResult &Solved);

} // namespace light

#endif // LIGHT_BASELINES_CLAPENGINE_H

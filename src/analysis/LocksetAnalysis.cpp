//===- analysis/LocksetAnalysis.cpp - Lock-consistency analysis -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "analysis/LocksetAnalysis.h"

#include <cassert>
#include <functional>
#include <map>
#include <unordered_map>

using namespace light;
using namespace light::analysis;
using namespace light::mir;

namespace {

/// The register defined by \p I, or NoReg.
Reg defRegOf(const Instr &I) {
  switch (I.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstNull:
  case Opcode::Move:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::Not:
  case Opcode::New:
  case Opcode::NewArray:
  case Opcode::MapNew:
  case Opcode::GetField:
  case Opcode::GetGlobal:
  case Opcode::ALoad:
  case Opcode::ArrayLen:
  case Opcode::MapGet:
  case Opcode::MapContains:
  case Opcode::ThreadStart:
  case Opcode::SysTime:
  case Opcode::SysRand:
  case Opcode::TimedWait:
  case Opcode::AtomicCas:
  case Opcode::AtomicXchg:
  // ChanTryRecv also defines I.B (the value); regs only ever carry ints
  // through channels, so losing that def costs nothing lock-wise.
  case Opcode::ChanRecv:
  case Opcode::ChanTryRecv:
    return I.A;
  case Opcode::Call:
    return I.A; // may be NoReg
  default:
    return NoReg;
  }
}

using LockMask = uint64_t;

} // namespace

LocksetAnalysis::LocksetAnalysis(const Program &P) : Prog(P) {
  // --- 1. Lock abstractions: single-assignment globals used as monitors.
  std::vector<uint32_t> GlobalWriteCount(P.Globals.size(), 0);
  for (const Function &F : P.Functions)
    for (const Instr &I : F.Body)
      if (I.Op == Opcode::PutGlobal)
        ++GlobalWriteCount[I.Imm];

  // global id -> lock id (only for monitored single-assignment globals).
  std::unordered_map<uint32_t, LockId> LockOfGlobal;

  // For every function: map register -> unique defining GetGlobal global id
  // (or ~0 when the register has zero or multiple defs / non-global def).
  std::vector<std::vector<uint32_t>> UniqueGlobalDef(P.Functions.size());
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const Function &Fn = P.Functions[F];
    std::vector<int> DefCount(Fn.NumRegs, 0);
    std::vector<uint32_t> DefGlobal(Fn.NumRegs, ~0u);
    for (const Instr &I : Fn.Body) {
      Reg D = defRegOf(I);
      if (D == NoReg || D >= Fn.NumRegs)
        continue;
      if (++DefCount[D] == 1 && I.Op == Opcode::GetGlobal)
        DefGlobal[D] = static_cast<uint32_t>(I.Imm);
      else
        DefGlobal[D] = ~0u;
    }
    UniqueGlobalDef[F] = std::move(DefGlobal);
  }

  auto LockIdAt = [&](FuncId F, const Instr &I) -> LockId {
    if (I.A >= UniqueGlobalDef[F].size())
      return NoLock;
    uint32_t G = UniqueGlobalDef[F][I.A];
    if (G == ~0u || GlobalWriteCount[G] != 1)
      return NoLock;
    auto [It, Inserted] = LockOfGlobal.try_emplace(G, 0);
    if (Inserted) {
      It->second = static_cast<LockId>(LockNames.size());
      LockNames.push_back(Prog.Globals[G]);
    }
    return It->second;
  };

  // Pre-resolve monitor operands so the number of locks is known.
  std::vector<std::vector<LockId>> MonitorLock(P.Functions.size());
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const Function &Fn = P.Functions[F];
    MonitorLock[F].assign(Fn.Body.size(), NoLock);
    for (size_t I = 0; I < Fn.Body.size(); ++I) {
      const Instr &In = Fn.Body[I];
      if (In.Op == Opcode::MonitorEnter || In.Op == Opcode::MonitorExit)
        MonitorLock[F][I] = LockIdAt(static_cast<FuncId>(F), In);
    }
  }
  assert(LockNames.size() <= 64 && "lockset bitmask limited to 64 locks");

  // --- 2. Flow-sensitive held-lockset propagation per (function, entry
  //        context), with a program-wide per-site intersection.
  LockMask Top = LockNames.empty() ? 0 : ~0ull >> (64 - LockNames.size());

  Held.resize(P.Functions.size());
  std::vector<std::vector<LockMask>> SiteMask(P.Functions.size());
  std::vector<std::vector<bool>> SiteSeen(P.Functions.size());
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    SiteMask[F].assign(P.Functions[F].Body.size(), Top);
    SiteSeen[F].assign(P.Functions[F].Body.size(), false);
  }

  // Memoized contexts: (func, entry mask) -> exit mask (or pending marker).
  std::map<std::pair<FuncId, LockMask>, LockMask> Contexts;

  // Recursive context analysis. MIR programs are small; recursion depth is
  // the call-graph depth.
  std::function<LockMask(FuncId, LockMask)> Analyze =
      [&](FuncId F, LockMask Entry) -> LockMask {
    auto Key = std::make_pair(F, Entry);
    auto It = Contexts.find(Key);
    if (It != Contexts.end())
      return It->second;
    // Break recursion cycles conservatively: assume the callee clobbers
    // every lock until a fixpoint result exists.
    Contexts[Key] = 0;

    const Function &Fn = P.Functions[F];
    size_t N = Fn.Body.size();
    std::vector<LockMask> In(N, Top);
    std::vector<bool> Reached(N, false);
    In[0] = Entry;
    Reached[0] = true;
    std::vector<uint32_t> Work{0};
    LockMask ExitMask = Top;
    bool SawRet = false;

    auto Propagate = [&](uint32_t To, LockMask M) {
      LockMask Merged = Reached[To] ? (In[To] & M) : M;
      if (!Reached[To] || Merged != In[To]) {
        Reached[To] = true;
        In[To] = Merged;
        Work.push_back(To);
      }
    };

    while (!Work.empty()) {
      uint32_t Idx = Work.back();
      Work.pop_back();
      const Instr &I = Fn.Body[Idx];
      LockMask M = In[Idx];

      // Record the fact at this site (intersected across all contexts).
      SiteMask[F][Idx] = SiteSeen[F][Idx] ? (SiteMask[F][Idx] & M) : M;
      SiteSeen[F][Idx] = true;

      LockMask Out = M;
      switch (I.Op) {
      case Opcode::MonitorEnter:
        if (MonitorLock[F][Idx] != NoLock)
          Out |= 1ull << MonitorLock[F][Idx];
        break;
      case Opcode::MonitorExit:
        if (MonitorLock[F][Idx] != NoLock)
          Out &= ~(1ull << MonitorLock[F][Idx]);
        else
          Out = 0; // unknown release: drop every fact
        break;
      case Opcode::Call: {
        LockMask CalleeExit = Analyze(static_cast<FuncId>(I.Imm), M);
        Out = M & CalleeExit;
        break;
      }
      default:
        break;
      }

      if (I.Op == Opcode::Ret) {
        ExitMask &= M;
        SawRet = true;
        continue;
      }
      if (I.Op == Opcode::Jmp) {
        Propagate(static_cast<uint32_t>(I.Target), Out);
        continue;
      }
      if (I.Op == Opcode::Br) {
        Propagate(static_cast<uint32_t>(I.Target), Out);
        Propagate(static_cast<uint32_t>(I.Target2), Out);
        continue;
      }
      if (Idx + 1 < N)
        Propagate(Idx + 1, Out);
    }

    LockMask Result = SawRet ? ExitMask : Entry;
    Contexts[Key] = Result;
    return Result;
  };

  Analyze(P.Entry, 0);
  for (const Function &F : P.Functions)
    for (const Instr &I : F.Body)
      if (I.Op == Opcode::ThreadStart)
        Analyze(static_cast<FuncId>(I.Imm), 0);

  // --- 3. Materialize per-site lock lists.
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    Held[F].resize(P.Functions[F].Body.size());
    for (size_t I = 0; I < Held[F].size(); ++I) {
      if (!SiteSeen[F][I])
        continue; // unreachable code: no facts
      LockMask M = SiteMask[F][I];
      for (LockId L = 0; L < LockNames.size(); ++L)
        if (M & (1ull << L))
          Held[F][I].push_back(L);
    }
  }
}

const std::vector<LocksetAnalysis::LockId> &
LocksetAnalysis::heldAt(FuncId F, uint32_t Idx) const {
  if (F >= Held.size() || Idx >= Held[F].size())
    return Empty;
  return Held[F][Idx];
}

GuardSpec LocksetAnalysis::consistentlyGuarded() const {
  // Intersect held locksets across all *shared* accesses of each location
  // abstraction; a nonempty intersection certifies Lemma 4.2's premise.
  std::unordered_map<uint64_t, LockMask> Common; // abstraction -> mask
  constexpr uint64_t GlobalTag = 1ull << 62;
  constexpr uint64_t FieldTag = 2ull << 62;

  // Simple may-happen-in-parallel facts for the entry function: accesses
  // made while no spawned thread can be alive (before the first start /
  // after the last join on every path) cannot race and are excluded from
  // the guard intersection. This admits the ubiquitous "main initializes,
  // spawns, joins, reads results" idiom.
  std::vector<bool> SoloInMain = soloSitesInEntry();

  for (size_t F = 0; F < Prog.Functions.size(); ++F) {
    const Function &Fn = Prog.Functions[F];
    for (size_t I = 0; I < Fn.Body.size(); ++I) {
      const Instr &In = Fn.Body[I];
      uint64_t Abs;
      switch (In.Op) {
      case Opcode::GetGlobal:
      case Opcode::PutGlobal:
        Abs = GlobalTag | static_cast<uint64_t>(In.Imm);
        break;
      case Opcode::GetField:
      case Opcode::PutField:
        Abs = FieldTag | static_cast<uint64_t>(In.Imm);
        break;
      default:
        continue;
      }
      if (!In.SharedAccess)
        continue;
      if (F == Prog.Entry && I < SoloInMain.size() && SoloInMain[I])
        continue;
      LockMask M = 0;
      for (LockId L : heldAt(static_cast<FuncId>(F), static_cast<uint32_t>(I)))
        M |= 1ull << L;
      auto [It, Inserted] = Common.try_emplace(Abs, M);
      if (!Inserted)
        It->second &= M;
    }
  }

  GuardSpec Spec;
  for (auto &[Abs, Mask] : Common) {
    if (!Mask)
      continue;
    if ((Abs >> 62) == 1)
      Spec.GlobalIds.push_back(Abs & ~GlobalTag);
    else
      Spec.FieldIndices.push_back(static_cast<uint32_t>(Abs & 0xfffff));
  }
  Spec.seal();
  return Spec;
}

std::vector<bool> LocksetAnalysis::soloSitesInEntry() const {
  // Forward dataflow over the entry function: (max threads started, min
  // threads joined) per path; a site is solo when started == joined on
  // every path reaching it. Conservative under merges.
  const Function &Fn = Prog.Functions[Prog.Entry];
  size_t N = Fn.Body.size();
  std::vector<int> Started(N, 0), Joined(N, 0);
  std::vector<bool> Reached(N, false);
  std::vector<uint32_t> Work{0};
  Reached[0] = true;

  auto Propagate = [&](uint32_t To, int S, int J) {
    int NewS = Reached[To] ? std::max(Started[To], S) : S;
    int NewJ = Reached[To] ? std::min(Joined[To], J) : J;
    if (!Reached[To] || NewS != Started[To] || NewJ != Joined[To]) {
      Reached[To] = true;
      Started[To] = NewS;
      Joined[To] = NewJ;
      Work.push_back(To);
    }
  };

  while (!Work.empty()) {
    uint32_t Idx = Work.back();
    Work.pop_back();
    const Instr &I = Fn.Body[Idx];
    int S = Started[Idx], J = Joined[Idx];
    if (I.Op == Opcode::ThreadStart)
      ++S;
    if (I.Op == Opcode::ThreadJoin)
      ++J;
    if (I.Op == Opcode::Ret)
      continue;
    if (I.Op == Opcode::Jmp) {
      Propagate(static_cast<uint32_t>(I.Target), S, J);
      continue;
    }
    if (I.Op == Opcode::Br) {
      Propagate(static_cast<uint32_t>(I.Target), S, J);
      Propagate(static_cast<uint32_t>(I.Target2), S, J);
      continue;
    }
    if (Idx + 1 < N)
      Propagate(Idx + 1, S, J);
  }

  std::vector<bool> Solo(N, false);
  for (size_t I = 0; I < N; ++I)
    Solo[I] = Reached[I] && Started[I] <= Joined[I];
  return Solo;
}

//===- analysis/RaceDetector.cpp - Static race detection -------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetector.h"

#include "analysis/CallGraph.h"

#include <unordered_map>

using namespace light;
using namespace light::analysis;
using namespace light::mir;

namespace {

bool isWriteOp(Opcode Op) {
  switch (Op) {
  case Opcode::PutGlobal:
  case Opcode::PutField:
  case Opcode::AStore:
  case Opcode::MapPut:
  case Opcode::MapRemove:
    return true;
  default:
    return false;
  }
}

bool isAccessOp(Opcode Op) { return isHeapAccess(Op); }

uint64_t abstractionOf(const Instr &I) {
  constexpr uint64_t GlobalTag = 1ull << 62;
  constexpr uint64_t FieldTag = 2ull << 62;
  constexpr uint64_t ArrayTag = 3ull << 62;
  switch (I.Op) {
  case Opcode::GetGlobal:
  case Opcode::PutGlobal:
    return GlobalTag | static_cast<uint64_t>(I.Imm);
  case Opcode::GetField:
  case Opcode::PutField:
    return FieldTag | static_cast<uint64_t>(I.Imm);
  default:
    return ArrayTag;
  }
}

} // namespace

std::vector<RacePair> light::analysis::detectRaces(const Program &P,
                                                   const LocksetAnalysis &LA) {
  CallGraph CG(P);
  std::vector<std::pair<FuncId, uint32_t>> Entries = threadEntries(P);

  struct ClassInfo {
    std::vector<bool> Reach;
    bool Multi;
  };
  std::vector<ClassInfo> Classes;
  Classes.push_back({CG.reachableFrom({P.Entry}), false});
  for (auto &[Entry, Sites] : Entries)
    Classes.push_back({CG.reachableFrom({Entry}), true});

  auto ClassMask = [&](FuncId F) {
    uint32_t Mask = 0;
    for (size_t C = 0; C < Classes.size(); ++C)
      if (Classes[C].Reach[F])
        Mask |= 1u << C;
    return Mask;
  };
  auto MultiMask = [&] {
    uint32_t Mask = 0;
    for (size_t C = 0; C < Classes.size(); ++C)
      if (Classes[C].Multi)
        Mask |= 1u << C;
    return Mask;
  }();

  // Gather shared access sites per abstraction, with lockset masks.
  struct Site {
    RaceSite RS;
    uint64_t LockMask;
    uint32_t Classes;
  };
  std::vector<bool> SoloInMain = LA.entrySoloSites();
  std::unordered_map<uint64_t, std::vector<Site>> ByAbs;
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const Function &Fn = P.Functions[F];
    uint32_t Mask = ClassMask(static_cast<FuncId>(F));
    for (size_t I = 0; I < Fn.Body.size(); ++I) {
      const Instr &In = Fn.Body[I];
      if (!isAccessOp(In.Op) || !In.SharedAccess)
        continue;
      // Entry-function accesses while no spawned thread is alive cannot
      // race (main's init/teardown idiom).
      if (F == P.Entry && I < SoloInMain.size() && SoloInMain[I])
        continue;
      uint64_t LockMask = 0;
      for (auto L : LA.heldAt(static_cast<FuncId>(F), static_cast<uint32_t>(I)))
        LockMask |= 1ull << L;
      ByAbs[abstractionOf(In)].push_back(
          {{static_cast<FuncId>(F), static_cast<uint32_t>(I),
            isWriteOp(In.Op)},
           LockMask,
           Mask});
    }
  }

  std::vector<RacePair> Races;
  for (auto &[Abs, Sites] : ByAbs) {
    for (size_t I = 0; I < Sites.size(); ++I) {
      for (size_t J = I; J < Sites.size(); ++J) {
        const Site &A = Sites[I];
        const Site &B = Sites[J];
        if (!A.RS.IsWrite && !B.RS.IsWrite)
          continue;
        if (A.LockMask & B.LockMask)
          continue; // a common lock serializes them
        // May-happen-in-parallel: the two sites can run in distinct thread
        // classes, or in two instances of one multi-instance class.
        if (!A.Classes || !B.Classes)
          continue; // unreachable code
        bool SingleSameClass =
            A.Classes == B.Classes && (A.Classes & (A.Classes - 1)) == 0;
        bool CrossClass = !SingleSameClass;
        bool SameMultiClass = (A.Classes & B.Classes & MultiMask) != 0;
        if (!CrossClass && !SameMultiClass)
          continue;
        RacePair R;
        R.A = A.RS;
        R.B = B.RS;
        R.Abstraction = Abs;
        R.What = P.Functions[A.RS.Func].Name + "@" +
                 std::to_string(A.RS.Instr) + " vs " +
                 P.Functions[B.RS.Func].Name + "@" +
                 std::to_string(B.RS.Instr);
        Races.push_back(std::move(R));
      }
    }
  }
  return Races;
}

//===- analysis/LocksetAnalysis.h - Lock-consistency analysis ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conservative static analysis of Section 4.3: "we used a conservative
/// static analysis to determine if a location is consistently guarded by
/// some lock. When the analysis fails to reach a definitive answer, we
/// simply disable the optimization w.r.t. accesses to the given location."
///
/// Lock abstraction: MIR programs name locks through single-assignment
/// globals holding the lock object; a MonitorEnter whose operand is not
/// traceable to such a global contributes no lockset facts (conservative).
/// Held-lockset facts are computed flow-sensitively per instruction with
/// intersection at control-flow joins, propagated through calls by context
/// (entry lockset) memoization.
///
/// Results feed optimization O2 (as a GuardSpec) and the static race
/// detector behind the Chimera baseline.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_ANALYSIS_LOCKSETANALYSIS_H
#define LIGHT_ANALYSIS_LOCKSETANALYSIS_H

#include "mir/Program.h"
#include "trace/GuardSpec.h"

#include <map>
#include <vector>

namespace light {
namespace analysis {

/// Per-site lockset facts for one program.
class LocksetAnalysis {
public:
  /// Lock abstraction id: index into lockNames().
  using LockId = uint32_t;
  static constexpr uint32_t NoLock = ~0u;

  explicit LocksetAnalysis(const mir::Program &P);

  /// Locks definitely held at instruction \p Idx of function \p F
  /// (meaningful for heap-access instructions).
  const std::vector<LockId> &heldAt(mir::FuncId F, uint32_t Idx) const;

  /// Human-readable name of a lock abstraction (the lock global).
  const std::string &lockName(LockId L) const { return LockNames[L]; }
  size_t numLocks() const { return LockNames.size(); }

  /// Locations consistently guarded by some common lock across every shared
  /// access (Lemma 4.2's precondition), as a sealed GuardSpec.
  GuardSpec consistentlyGuarded() const;

  /// Entry-function sites where no spawned thread can be alive (before the
  /// first start / after the last join). Such accesses cannot race.
  std::vector<bool> entrySoloSites() const { return soloSitesInEntry(); }

private:
  const mir::Program &Prog;
  std::vector<std::string> LockNames;
  /// (func, instr) -> sorted held lockset.
  std::vector<std::vector<std::vector<LockId>>> Held;
  std::vector<LockId> Empty;

  /// Sites in the entry function where no spawned thread may be alive.
  std::vector<bool> soloSitesInEntry() const;

  friend class RaceDetectorImpl;
};

} // namespace analysis
} // namespace light

#endif // LIGHT_ANALYSIS_LOCKSETANALYSIS_H

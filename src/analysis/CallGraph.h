//===- analysis/CallGraph.h - MIR call graph utilities ----------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call-graph helpers shared by the analyses: direct-call edges, thread
/// entry points (main + ThreadStart targets), and reachability.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_ANALYSIS_CALLGRAPH_H
#define LIGHT_ANALYSIS_CALLGRAPH_H

#include "mir/Program.h"

#include <vector>

namespace light {
namespace analysis {

/// Direct call graph over a MIR program (MIR has no indirect calls).
class CallGraph {
  std::vector<std::vector<mir::FuncId>> Callees;

public:
  explicit CallGraph(const mir::Program &P);

  const std::vector<mir::FuncId> &calleesOf(mir::FuncId F) const {
    return Callees[F];
  }

  /// Functions reachable from \p Roots (inclusive).
  std::vector<bool> reachableFrom(const std::vector<mir::FuncId> &Roots) const;
};

/// Entry points of spawned threads: all ThreadStart targets in \p P.
/// Each pair is (entry function, number of syntactic spawn sites).
std::vector<std::pair<mir::FuncId, uint32_t>>
threadEntries(const mir::Program &P);

} // namespace analysis
} // namespace light

#endif // LIGHT_ANALYSIS_CALLGRAPH_H

//===- analysis/SharedAccessAnalysis.cpp - Shared-location detection ------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SharedAccessAnalysis.h"

#include "analysis/CallGraph.h"

#include <unordered_map>
#include <unordered_set>

using namespace light;
using namespace light::analysis;
using namespace light::mir;

CallGraph::CallGraph(const Program &P) {
  Callees.resize(P.Functions.size());
  for (size_t F = 0; F < P.Functions.size(); ++F)
    for (const Instr &I : P.Functions[F].Body)
      if (I.Op == Opcode::Call || I.Op == Opcode::ThreadStart)
        Callees[F].push_back(static_cast<FuncId>(I.Imm));
}

std::vector<bool>
CallGraph::reachableFrom(const std::vector<FuncId> &Roots) const {
  std::vector<bool> Seen(Callees.size(), false);
  std::vector<FuncId> Work(Roots);
  for (FuncId R : Roots)
    Seen[R] = true;
  while (!Work.empty()) {
    FuncId F = Work.back();
    Work.pop_back();
    for (FuncId C : Callees[F])
      if (!Seen[C]) {
        Seen[C] = true;
        Work.push_back(C);
      }
  }
  return Seen;
}

std::vector<std::pair<FuncId, uint32_t>>
light::analysis::threadEntries(const Program &P) {
  std::unordered_map<FuncId, uint32_t> Sites;
  for (const Function &F : P.Functions)
    for (const Instr &I : F.Body)
      if (I.Op == Opcode::ThreadStart)
        ++Sites[static_cast<FuncId>(I.Imm)];
  std::vector<std::pair<FuncId, uint32_t>> Out(Sites.begin(), Sites.end());
  return Out;
}

namespace {

/// Coarse location abstraction: kind tag in the top bits.
enum AbsKind : uint64_t {
  AbsGlobal = 1ull << 62,
  AbsField = 2ull << 62,
  AbsArray = 3ull << 62, // single abstraction for all array/map contents
};

uint64_t abstractionOf(const Instr &I) {
  switch (I.Op) {
  case Opcode::GetGlobal:
  case Opcode::PutGlobal:
  case Opcode::AtomicCas:
  case Opcode::AtomicXchg:
    return AbsGlobal | static_cast<uint64_t>(I.Imm);
  case Opcode::GetField:
  case Opcode::PutField:
    return AbsField | static_cast<uint64_t>(I.Imm);
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::MapGet:
  case Opcode::MapPut:
  case Opcode::MapContains:
  case Opcode::MapRemove:
    return AbsArray;
  default:
    return 0;
  }
}

} // namespace

SharedAccessStats light::analysis::markSharedAccesses(Program &P) {
  CallGraph CG(P);

  // Thread classes: main, plus every ThreadStart target. A class spawned
  // from a site that may execute repeatedly is conservatively treated as
  // multi-instance; MIR has loops, so any spawned class counts as
  // multi-instance unless proven otherwise — we keep the conservative
  // reading and only rely on the cross-class criterion below plus the
  // multi-instance flag for spawned classes.
  std::vector<std::pair<FuncId, uint32_t>> Entries = threadEntries(P);

  struct ClassInfo {
    std::vector<bool> Reach;
    bool MultiInstance;
  };
  std::vector<ClassInfo> Classes;
  Classes.push_back({CG.reachableFrom({P.Entry}), false}); // main
  for (auto &[Entry, Sites] : Entries)
    Classes.push_back({CG.reachableFrom({Entry}), true});

  // Which thread classes access each abstraction.
  std::unordered_map<uint64_t, uint32_t> AccessedBy; // abstraction -> bitmask
  std::unordered_map<uint64_t, bool> MultiAccess;    // by a multi-instance?
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    uint32_t Mask = 0;
    bool Multi = false;
    for (size_t C = 0; C < Classes.size(); ++C)
      if (Classes[C].Reach[F]) {
        Mask |= 1u << C;
        Multi |= Classes[C].MultiInstance;
      }
    for (const Instr &I : P.Functions[F].Body) {
      uint64_t Abs = abstractionOf(I);
      if (!Abs)
        continue;
      AccessedBy[Abs] |= Mask;
      MultiAccess[Abs] = MultiAccess[Abs] || Multi;
    }
  }

  auto IsShared = [&](uint64_t Abs) {
    uint32_t Mask = AccessedBy[Abs];
    bool MultipleClasses = (Mask & (Mask - 1)) != 0;
    return MultipleClasses || MultiAccess[Abs];
  };

  SharedAccessStats Stats;
  for (Function &F : P.Functions) {
    for (Instr &I : F.Body) {
      uint64_t Abs = abstractionOf(I);
      if (!Abs)
        continue;
      I.SharedAccess = IsShared(Abs);
      if (I.SharedAccess)
        ++Stats.InstrumentedSites;
      else
        ++Stats.SuppressedSites;
    }
  }
  return Stats;
}

//===- analysis/RaceDetector.h - Static race detection ----------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static race detector in the style of Chord [26], used by the Chimera
/// baseline (Section 5.3): pairs of statements that may access the same
/// location abstraction from different threads, at least one writing, with
/// disjoint held locksets. Chimera patches the enclosing methods of every
/// reported pair with a pair-specific lock.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_ANALYSIS_RACEDETECTOR_H
#define LIGHT_ANALYSIS_RACEDETECTOR_H

#include "analysis/LocksetAnalysis.h"
#include "mir/Program.h"

#include <string>
#include <vector>

namespace light {
namespace analysis {

/// One side of a potential race.
struct RaceSite {
  mir::FuncId Func = 0;
  uint32_t Instr = 0;
  bool IsWrite = false;
};

/// A statically detected race pair.
struct RacePair {
  RaceSite A, B;
  uint64_t Abstraction = 0;
  std::string What; ///< human-readable location description
};

/// Runs the detector. \p LA supplies the lockset facts; thread-parallelism
/// facts are recomputed from the program's spawn structure.
std::vector<RacePair> detectRaces(const mir::Program &P,
                                  const LocksetAnalysis &LA);

} // namespace analysis
} // namespace light

#endif // LIGHT_ANALYSIS_RACEDETECTOR_H

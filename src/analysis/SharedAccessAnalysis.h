//===- analysis/SharedAccessAnalysis.h - Shared-location detection -*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stand-in for the Soot/Chord analyses the paper uses to detect shared
/// locations (Section 3.2: "Restricting the replay algorithm only to shared
/// locations is a natural yet significant performance optimization").
///
/// Location abstractions are coarse and conservative: global ids, object
/// field indices, and a single abstraction each for array and map contents.
/// An abstraction is *shared* when it is accessed by code reachable from a
/// spawned-thread entry point and by at least one other thread class (or by
/// a thread class that can be instantiated more than once). Accesses whose
/// every abstraction is unshared have their SharedAccess flag cleared and
/// run uninstrumented.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_ANALYSIS_SHAREDACCESSANALYSIS_H
#define LIGHT_ANALYSIS_SHAREDACCESSANALYSIS_H

#include "mir/Program.h"

#include <cstdint>

namespace light {
namespace analysis {

/// Result summary of markSharedAccesses.
struct SharedAccessStats {
  uint32_t InstrumentedSites = 0;
  uint32_t SuppressedSites = 0;
};

/// Computes shared-location abstractions and clears Instr::SharedAccess on
/// provably thread-local accesses. Conservative: when in doubt, keeps the
/// access instrumented.
SharedAccessStats markSharedAccesses(mir::Program &Program);

} // namespace analysis
} // namespace light

#endif // LIGHT_ANALYSIS_SHAREDACCESSANALYSIS_H

//===- smt/ShardedSolver.h - Sharded parallel order solving -----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sharded schedule construction: partition an OrderSystem into its
/// connected components (see smt::connectedComponents — variables in
/// different components share no constraint, so any combination of
/// per-component models satisfies the whole system), pack the components
/// into at most N shards, solve each shard concurrently with the regular
/// engines, and merge the sub-models into one result.
///
/// The plan is fully deterministic: component ids are numbered by smallest
/// member variable, components are packed greedily (largest clause count
/// first) onto the least-loaded shard with every tie broken by index, and
/// the merge walks shards in index order. Thread scheduling can change
/// *when* a shard finishes, never *what* the merged result is.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SMT_SHARDEDSOLVER_H
#define LIGHT_SMT_SHARDEDSOLVER_H

#include "smt/Z3Backend.h"

namespace light {
namespace smt {

/// The deterministic partition of an OrderSystem into solver shards.
/// Exposed separately from solveSharded so tests and benchmarks can
/// inspect the packing.
struct ShardPlan {
  struct Shard {
    /// Global variable ids in this shard, ascending. Local variable j of
    /// the shard's sub-system is Vars[j].
    std::vector<Var> Vars;
    /// Indexes into the original clause list, ascending.
    std::vector<uint32_t> Clauses;
  };
  std::vector<Shard> Shards;
  ComponentInfo Components;

  /// Materializes the sub-OrderSystem for shard \p I: the shard's
  /// variables renumbered densely (keeping their debug names) and its
  /// clauses remapped onto the local numbering.
  OrderSystem subSystem(const OrderSystem &System, size_t I) const;
};

/// Packs the components of \p System into at most \p ShardCount shards
/// (>= 1). Produces fewer shards when there are fewer components.
ShardPlan planShards(const OrderSystem &System, unsigned ShardCount);

/// The shard count "auto" resolves to: hardware concurrency, minimum 1.
unsigned autoShardCount();

/// Solves \p System by solving its constraint shards concurrently on a
/// bounded thread pool (one thread per shard, at most \p ShardCount).
///
///   * ShardCount == 0 means auto (hardware concurrency).
///   * ShardCount == 1 — or a system with a single component — falls
///     through to the monolithic solveOrder path bit-for-bit.
///
/// Budget carving: WallSeconds applies to every shard unchanged (shards
/// run concurrently under the same deadline); a nonzero MaxConflicts is
/// split across shards proportional to their clause share (minimum 1).
///
/// Merge rule, in precedence order: any Unsat shard makes the whole
/// system Unsat (its constraints are a subset); otherwise the first
/// failed shard (by index) surfaces its Timeout/Error; otherwise the
/// verdict is Sat and the per-shard models are written back through each
/// shard's variable map. Statistics are summed across shards,
/// SolveSeconds is the driver's wall time, and Shards records the actual
/// shard count.
SolveResult solveSharded(const OrderSystem &System, SolverEngine Engine,
                         SolverLimits Limits = {}, unsigned ShardCount = 0);

} // namespace smt
} // namespace light

#endif // LIGHT_SMT_SHARDEDSOLVER_H

//===- smt/ShardedSolver.cpp - Sharded parallel order solving ------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "smt/ShardedSolver.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

using namespace light;
using namespace light::smt;

unsigned light::smt::autoShardCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ShardPlan light::smt::planShards(const OrderSystem &System,
                                 unsigned ShardCount) {
  assert(ShardCount >= 1 && "resolve auto before planning");
  ShardPlan Plan;
  Plan.Components = connectedComponents(System);
  uint32_t NumComps = Plan.Components.NumComponents;
  size_t NumShards = std::min<size_t>(ShardCount, std::max<uint32_t>(NumComps, 1));
  Plan.Shards.resize(NumShards);
  if (NumComps == 0)
    return Plan;

  // Per-component weights. A clause belongs to the component of its first
  // atom (all atoms of a clause are in one component by construction).
  std::vector<uint64_t> CompClauses(NumComps, 0), CompVars(NumComps, 0);
  for (const Clause &C : System.clauses())
    ++CompClauses[Plan.Components.CompOfVar[C.front().U]];
  for (Var V = 0; V < System.numVars(); ++V)
    ++CompVars[Plan.Components.CompOfVar[V]];

  // Greedy longest-processing-time packing: heaviest component first onto
  // the least-loaded shard. Every tie breaks toward the lower index, so
  // the packing is a pure function of the system.
  std::vector<uint32_t> Order(NumComps);
  for (uint32_t I = 0; I < NumComps; ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    if (CompClauses[A] != CompClauses[B])
      return CompClauses[A] > CompClauses[B];
    if (CompVars[A] != CompVars[B])
      return CompVars[A] > CompVars[B];
    return A < B;
  });
  std::vector<uint64_t> Load(NumShards, 0);
  std::vector<uint32_t> ShardOfComp(NumComps, 0);
  for (uint32_t Comp : Order) {
    size_t Best = 0;
    for (size_t S = 1; S < NumShards; ++S)
      if (Load[S] < Load[Best])
        Best = S;
    ShardOfComp[Comp] = static_cast<uint32_t>(Best);
    // Weigh by clauses (the solve cost driver) plus one so clause-free
    // singleton components still spread instead of piling on shard 0.
    Load[Best] += CompClauses[Comp] + 1;
  }

  for (Var V = 0; V < System.numVars(); ++V)
    Plan.Shards[ShardOfComp[Plan.Components.CompOfVar[V]]].Vars.push_back(V);
  for (uint32_t CI = 0; CI < System.clauses().size(); ++CI) {
    uint32_t Comp =
        Plan.Components.CompOfVar[System.clauses()[CI].front().U];
    Plan.Shards[ShardOfComp[Comp]].Clauses.push_back(CI);
  }
  return Plan;
}

OrderSystem ShardPlan::subSystem(const OrderSystem &System, size_t I) const {
  const Shard &S = Shards[I];
  OrderSystem Sub;
  std::vector<Var> LocalOf(System.numVars(), 0);
  for (size_t Local = 0; Local < S.Vars.size(); ++Local) {
    LocalOf[S.Vars[Local]] = static_cast<Var>(Local);
    Sub.newVar(System.name(S.Vars[Local]));
  }
  for (uint32_t CI : S.Clauses) {
    Clause C = System.clauses()[CI];
    for (Atom &A : C) {
      A.U = LocalOf[A.U];
      A.V = LocalOf[A.V];
    }
    Sub.addClause(std::move(C));
  }
  return Sub;
}

SolveResult light::smt::solveSharded(const OrderSystem &System,
                                     SolverEngine Engine, SolverLimits Limits,
                                     unsigned ShardCount) {
  unsigned Want = ShardCount == 0 ? autoShardCount() : ShardCount;
  if (Want <= 1)
    return solveOrder(System, Engine, Limits);
  ShardPlan Plan = planShards(System, Want);
  size_t N = Plan.Shards.size();
  if (N <= 1)
    return solveOrder(System, Engine, Limits);

  obs::TraceSpan Span("solver.solve.sharded", "solver");
  Span.arg("shards", N);
  Stopwatch Timer;

  // Carve the budget: wall clock passes through (shards run concurrently
  // under the same deadline); the conflict budget splits proportional to
  // each shard's clause share, minimum 1 so no shard starts exhausted.
  std::vector<SolverLimits> ShardLimits(N, Limits);
  if (Limits.MaxConflicts > 0) {
    size_t TotalClauses = std::max<size_t>(System.clauses().size(), 1);
    for (size_t I = 0; I < N; ++I)
      ShardLimits[I].MaxConflicts = std::max<uint64_t>(
          Limits.MaxConflicts * Plan.Shards[I].Clauses.size() / TotalClauses,
          1);
  }

  // One pool thread per shard, bounded by the shard count itself (N was
  // already clamped to the requested width). Work-stealing via a shared
  // cursor; results land in per-shard slots so the merge below is
  // independent of completion order.
  std::vector<SolveResult> Results(N);
  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      obs::TraceSpan ShardSpan("solver.shard", "solver");
      ShardSpan.arg("shard", I);
      ShardSpan.arg("vars", Plan.Shards[I].Vars.size());
      ShardSpan.arg("clauses", Plan.Shards[I].Clauses.size());
      OrderSystem Sub = Plan.subSystem(System, I);
      Results[I] = solveOrder(Sub, Engine, ShardLimits[I]);
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(N - 1);
  for (size_t T = 1; T < N; ++T)
    Pool.emplace_back(Work);
  Work();
  for (std::thread &T : Pool)
    T.join();

  SolveResult R;
  R.Outcome = SolveResult::Status::Sat;
  R.Shards = static_cast<uint32_t>(N);
  for (const SolveResult &S : Results) {
    R.Decisions += S.Decisions;
    R.Propagations += S.Propagations;
    R.Conflicts += S.Conflicts;
    R.CycleChecks += S.CycleChecks;
    R.ScanSteps += S.ScanSteps;
  }
  // Verdict precedence: Unsat beats failure (an unsat shard is a subset of
  // the whole system, so the whole system is unsat no matter what the
  // other shards did); otherwise the first failed shard by index wins.
  auto ShardMessage = [&](size_t I, const SolveResult &S) {
    return "shard " + std::to_string(I) + "/" + std::to_string(N) +
           (S.Message.empty() ? "" : ": " + S.Message);
  };
  for (size_t I = 0; I < N; ++I)
    if (Results[I].Outcome == SolveResult::Status::Unsat) {
      R.Outcome = SolveResult::Status::Unsat;
      R.Message = ShardMessage(I, Results[I]);
      break;
    }
  if (R.Outcome == SolveResult::Status::Sat)
    for (size_t I = 0; I < N; ++I)
      if (Results[I].failed()) {
        R.Outcome = Results[I].Outcome;
        R.Reason = Results[I].Reason;
        R.Message = ShardMessage(I, Results[I]);
        break;
      }
  if (R.sat()) {
    R.Values.assign(System.numVars(), 0);
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < Plan.Shards[I].Vars.size(); ++J)
        R.Values[Plan.Shards[I].Vars[J]] = Results[I].Values[J];
    assert(System.satisfiedBy(R.Values) &&
           "merged shard models must satisfy the full system");
  }
  R.SolveSeconds = Timer.seconds();

  // Shard-level telemetry. Per-shard engine solves already published the
  // regular solver.* stats themselves; only the shard extras go here.
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("solver.sharded_solves").add(1);
  Reg.counter("solver.shard.solves").add(N);
  Reg.gauge("solver.shards").set(static_cast<int64_t>(N));
  obs::Histogram ShardNs = Reg.histogram("solver.shard.solve_ns");
  for (const SolveResult &S : Results) {
    ShardNs.record(static_cast<uint64_t>(S.SolveSeconds * 1e9));
    Reg.counter(S.sat()      ? "solver.shard.sat"
                : S.failed() ? "solver.shard.failed"
                             : "solver.shard.unsat")
        .add(1);
  }
  return R;
}

//===- smt/Z3Backend.cpp - Z3-based order solving --------------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "smt/Z3Backend.h"

#include "obs/Trace.h"
#include "smt/IdlSolver.h"
#include "support/Timer.h"

#include <z3++.h>

using namespace light;
using namespace light::smt;

SolveResult light::smt::solveWithZ3(const OrderSystem &System) {
  obs::TraceSpan Span("solver.solve.z3", "solver");
  Stopwatch Timer;
  SolveResult Result;

  z3::context Ctx;
  z3::solver Solver(Ctx, "QF_IDL");

  std::vector<z3::expr> Vars;
  Vars.reserve(System.numVars());
  for (uint32_t I = 0; I < System.numVars(); ++I)
    Vars.push_back(Ctx.int_const(("o" + std::to_string(I)).c_str()));

  for (const Clause &C : System.clauses()) {
    z3::expr_vector Disjuncts(Ctx);
    for (const Atom &A : C)
      Disjuncts.push_back(Vars[A.U] - Vars[A.V] <=
                          Ctx.int_val(static_cast<int64_t>(A.K)));
    Solver.add(z3::mk_or(Disjuncts));
  }

  if (Solver.check() != z3::sat) {
    Result.Outcome = SolveResult::Status::Unsat;
    Result.SolveSeconds = Timer.seconds();
    publishSolveStats(Result);
    return Result;
  }

  z3::model Model = Solver.get_model();
  Result.Outcome = SolveResult::Status::Sat;
  Result.Values.resize(System.numVars(), 0);
  for (uint32_t I = 0; I < System.numVars(); ++I) {
    z3::expr Value = Model.eval(Vars[I], /*model_completion=*/true);
    Result.Values[I] = Value.get_numeral_int64();
  }
  Result.SolveSeconds = Timer.seconds();
  publishSolveStats(Result);
  return Result;
}

SolveResult light::smt::solveOrder(const OrderSystem &System,
                                   SolverEngine Engine) {
  if (Engine == SolverEngine::Z3)
    return solveWithZ3(System);
  return solveWithIdl(System);
}

//===- smt/Z3Backend.cpp - Z3-based order solving --------------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "smt/Z3Backend.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/IdlSolver.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <z3++.h>

using namespace light;
using namespace light::smt;

SolveResult light::smt::solveWithZ3(const OrderSystem &System,
                                    SolverLimits Limits) {
  obs::TraceSpan Span("solver.solve.z3", "solver");
  Stopwatch Timer;
  SolveResult Result;

  if (fault::Injector::global().shouldFire("solver.z3_unavailable")) {
    Result.Outcome = SolveResult::Status::Error;
    Result.Reason = SolveResult::FailReason::EngineUnavailable;
    Result.Message = "injected fault: solver.z3_unavailable";
    publishSolveStats(Result);
    return Result;
  }

  try {
    z3::context Ctx;
    z3::solver Solver(Ctx, "QF_IDL");
    if (Limits.WallSeconds > 0) {
      z3::params Params(Ctx);
      Params.set("timeout",
                 static_cast<unsigned>(Limits.WallSeconds * 1000.0));
      Solver.set(Params);
    }

    std::vector<z3::expr> Vars;
    Vars.reserve(System.numVars());
    for (uint32_t I = 0; I < System.numVars(); ++I)
      Vars.push_back(Ctx.int_const(("o" + std::to_string(I)).c_str()));

    for (const Clause &C : System.clauses()) {
      z3::expr_vector Disjuncts(Ctx);
      for (const Atom &A : C)
        Disjuncts.push_back(Vars[A.U] - Vars[A.V] <=
                            Ctx.int_val(static_cast<int64_t>(A.K)));
      Solver.add(z3::mk_or(Disjuncts));
    }

    z3::check_result Verdict = Solver.check();
    if (Verdict == z3::unknown) {
      // Z3 reports budget exhaustion (and any internal give-up) as unknown.
      Result.Outcome = SolveResult::Status::Timeout;
      Result.Reason = SolveResult::FailReason::WallClock;
      Result.Message = "z3 gave up: " + Solver.reason_unknown();
      Result.SolveSeconds = Timer.seconds();
      publishSolveStats(Result);
      return Result;
    }
    if (Verdict != z3::sat) {
      Result.Outcome = SolveResult::Status::Unsat;
      Result.SolveSeconds = Timer.seconds();
      publishSolveStats(Result);
      return Result;
    }

    z3::model Model = Solver.get_model();
    Result.Outcome = SolveResult::Status::Sat;
    Result.Values.resize(System.numVars(), 0);
    for (uint32_t I = 0; I < System.numVars(); ++I) {
      z3::expr Value = Model.eval(Vars[I], /*model_completion=*/true);
      Result.Values[I] = Value.get_numeral_int64();
    }
    Result.SolveSeconds = Timer.seconds();
    publishSolveStats(Result);
    return Result;
  } catch (const z3::exception &E) {
    Result.Outcome = SolveResult::Status::Error;
    Result.Reason = SolveResult::FailReason::EngineError;
    Result.Message = std::string("z3 exception: ") + E.msg();
    Result.Values.clear();
    Result.SolveSeconds = Timer.seconds();
    publishSolveStats(Result);
    return Result;
  }
}

SolveResult light::smt::solveOrder(const OrderSystem &System,
                                   SolverEngine Engine, SolverLimits Limits) {
  auto Run = [&](SolverEngine E) {
    return E == SolverEngine::Z3 ? solveWithZ3(System, Limits)
                                 : solveWithIdl(System, Limits);
  };
  SolveResult First = Run(Engine);
  if (!First.failed())
    return First;

  // Graceful degradation: one bounded retry on the other engine. Both
  // engines implement identical semantics over the same fragment, so any
  // definitive verdict from the fallback is as good as the original.
  SolverEngine Other =
      Engine == SolverEngine::Z3 ? SolverEngine::Idl : SolverEngine::Z3;
  obs::Registry::global().counter("solver.fallbacks").add(1);
  SolveResult Second = Run(Other);
  if (!Second.failed())
    return Second;
  Second.Message = "both engines failed: [" +
                   (First.Message.empty() ? First.failReasonStr()
                                          : First.Message) +
                   "] then [" +
                   (Second.Message.empty() ? Second.failReasonStr()
                                           : Second.Message) +
                   "]";
  return Second;
}

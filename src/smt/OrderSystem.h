//===- smt/OrderSystem.h - Difference-logic constraint systems --*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint-system vocabulary the replay phase discharges to a solver.
///
/// Section 4.2 of the paper encodes the replay schedule as ordering
/// constraints over order variables O(c): single-dependence constraints
/// O(c_w) < O(c_r), noninterference disjunctions
/// (O(c2_r) < O(c1_w) or O(c1_r) < O(c2_w)), and intra-thread order chains.
/// All of these are clauses over Integer Difference Logic atoms
/// x_u - x_v <= k, solved via the IDL theory (the paper uses Z3's IDL; we
/// provide both our own DPLL(T) IDL solver and a Z3 backend).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SMT_ORDERSYSTEM_H
#define LIGHT_SMT_ORDERSYSTEM_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace light {
namespace smt {

/// Index of an integer-valued order variable.
using Var = uint32_t;

/// One difference-logic atom: x_U - x_V <= K.
struct Atom {
  Var U = 0;
  Var V = 0;
  int64_t K = 0;

  /// Convenience constructor for the strict order x_U < x_V, i.e.
  /// x_U - x_V <= -1.
  static Atom less(Var U, Var V) { return Atom{U, V, -1}; }

  friend bool operator==(const Atom &A, const Atom &B) {
    return A.U == B.U && A.V == B.V && A.K == B.K;
  }
};

/// A disjunction of atoms. The replay encoding only ever produces positive
/// clauses: unit clauses for dependences and thread order, binary clauses
/// for noninterference (Equation 1).
using Clause = std::vector<Atom>;

/// A complete constraint system plus optional debug names for variables.
class OrderSystem {
  uint32_t NumVariables = 0;
  std::vector<Clause> Clauses;
  std::vector<std::string> Names;

public:
  /// Creates a fresh order variable. \p Name is kept for diagnostics only.
  Var newVar(std::string Name = std::string()) {
    Names.push_back(std::move(Name));
    return NumVariables++;
  }

  /// Adds a disjunction of atoms. Empty clauses are rejected (they would be
  /// trivially unsatisfiable and indicate a generator bug).
  void addClause(Clause C);

  /// Adds the unit constraint x_U < x_V.
  void addLess(Var U, Var V) { addClause({Atom::less(U, V)}); }

  /// Adds the binary noninterference disjunction
  /// (x_A < x_B) or (x_C < x_D).
  void addEitherLess(Var A, Var B, Var C, Var D) {
    addClause({Atom::less(A, B), Atom::less(C, D)});
  }

  uint32_t numVars() const { return NumVariables; }
  const std::vector<Clause> &clauses() const { return Clauses; }
  const std::string &name(Var V) const { return Names[V]; }

  /// Two systems are equal when they declare the same variables (same
  /// names, same order) and the same clauses in the same order. Used by the
  /// determinism tests: two builds of one RecordingLog must compare equal.
  friend bool operator==(const OrderSystem &A, const OrderSystem &B) {
    return A.NumVariables == B.NumVariables && A.Clauses == B.Clauses &&
           A.Names == B.Names;
  }

  /// Checks a candidate assignment against every clause; used by tests and
  /// by the replayer's paranoid mode to validate solver models.
  bool satisfiedBy(const std::vector<int64_t> &Values) const;

  std::string str() const;
};

/// The connected components of a constraint system over its
/// variable/constraint graph (two variables are connected when some clause
/// mentions both). Variables in different components share no constraint —
/// directly or transitively — so their sub-systems can be solved
/// independently and any combination of the sub-models satisfies the whole
/// system. This is what makes sharded schedule construction sound: replay
/// locations that share no order variable (no common thread chain segment,
/// no cross-location constraint) land in different components.
struct ComponentInfo {
  /// Component id per variable. Ids are assigned deterministically in order
  /// of each component's smallest variable, so id 0 contains variable 0.
  std::vector<uint32_t> CompOfVar;
  uint32_t NumComponents = 0;
};

/// Computes the connected components of \p System (union-find over the
/// clause list; near-linear in clause literals).
ComponentInfo connectedComponents(const OrderSystem &System);

/// Resource budget for one solve call. Zero fields mean unlimited; an
/// exhausted budget yields Status::Timeout, never a wrong verdict.
struct SolverLimits {
  /// Wall-clock budget in seconds. Checked on a sampled cadence inside the
  /// search *and* unconditionally on every conflict, so an over-budget run
  /// stops at the next conflict even when MaxConflicts is unlimited.
  double WallSeconds = 0;

  /// Conflict budget: the search gives up after this many conflicts.
  uint64_t MaxConflicts = 0;

  bool unlimited() const { return WallSeconds <= 0 && MaxConflicts == 0; }
};

/// Solver verdict plus model and statistics.
struct SolveResult {
  /// Sat/Unsat are definitive verdicts. Timeout means a budget
  /// (SolverLimits) was exhausted before a verdict; Error means the engine
  /// itself failed (unavailable backend, internal exception). Neither
  /// failure outcome says anything about satisfiability.
  enum class Status { Sat, Unsat, Timeout, Error } Outcome = Status::Unsat;

  /// Structured cause for Timeout/Error outcomes.
  enum class FailReason {
    None,              ///< Sat or Unsat
    WallClock,         ///< SolverLimits::WallSeconds exhausted
    ConflictBudget,    ///< SolverLimits::MaxConflicts exhausted
    EngineUnavailable, ///< the requested backend cannot run at all
    EngineError,       ///< the backend threw / reported an internal error
  };
  FailReason Reason = FailReason::None;

  /// Human-readable diagnostic; set for Timeout/Error outcomes.
  std::string Message;

  /// Model: one integer per variable (valid when Outcome == Sat).
  std::vector<int64_t> Values;

  // Statistics.
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Conflicts = 0;
  /// Negative-cycle detections triggered in the difference-constraint
  /// theory (relaxation passes that found an infeasible edge). Zero for the
  /// Z3 backend, which does not expose the equivalent statistic.
  uint64_t CycleChecks = 0;
  /// Clause-scan loop iterations of the IDL search (each visits one clause
  /// to test satisfaction / pick a decision). The conflict-rescan fix is
  /// asserted through this statistic: resuming from the backjump's lowest
  /// invalidated clause instead of clause 0 must not change
  /// Decisions/Conflicts while this number drops. Zero for Z3.
  uint64_t ScanSteps = 0;
  /// Number of shards the solve ran across (1 for a monolithic solve; set
  /// by smt::solveSharded when it actually partitioned the system).
  uint32_t Shards = 1;
  double SolveSeconds = 0;

  bool sat() const { return Outcome == Status::Sat; }

  /// True when no verdict was reached (Timeout or Error).
  bool failed() const {
    return Outcome == Status::Timeout || Outcome == Status::Error;
  }

  /// Short name of the failure cause ("wall-clock", "conflict-budget"...).
  std::string failReasonStr() const;
};

/// The canonical (name, value) statistics of one solve, with the metric
/// names every consumer must use — bench_smt_solver, bench_table1_replay,
/// and the registry all report solver effort under exactly these keys:
/// solver.decisions, solver.propagations, solver.conflicts,
/// solver.cycle_checks, solver.scan_steps, solver.shards, solver.solve_ms.
std::vector<std::pair<std::string, double>>
solveStatEntries(const SolveResult &R);

/// Adds one solve's statistics to the global metrics registry (counters
/// under the solveStatEntries names, plus the solver.solve_ns histogram).
void publishSolveStats(const SolveResult &R);

} // namespace smt
} // namespace light

#endif // LIGHT_SMT_ORDERSYSTEM_H

//===- smt/Z3Backend.h - Z3-based order solving ------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges an OrderSystem to the real Z3 SMT solver, exactly as the
/// paper's prototype does ("Our modeling is efficiently solved via the
/// Integer Difference Logic (IDL) theory provided by Z3", Section 5.1).
/// The in-tree IdlSolver is the default engine; this backend exists to
/// (a) mirror the paper's setup and (b) differentially validate IdlSolver
/// in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SMT_Z3BACKEND_H
#define LIGHT_SMT_Z3BACKEND_H

#include "smt/OrderSystem.h"

namespace light {
namespace smt {

/// Solves \p System with Z3. Semantics identical to solveWithIdl.
SolveResult solveWithZ3(const OrderSystem &System);

/// Which engine a client wants schedules computed with.
enum class SolverEngine { Idl, Z3 };

/// Dispatches on \p Engine.
SolveResult solveOrder(const OrderSystem &System, SolverEngine Engine);

} // namespace smt
} // namespace light

#endif // LIGHT_SMT_Z3BACKEND_H

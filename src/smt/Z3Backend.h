//===- smt/Z3Backend.h - Z3-based order solving ------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges an OrderSystem to the real Z3 SMT solver, exactly as the
/// paper's prototype does ("Our modeling is efficiently solved via the
/// Integer Difference Logic (IDL) theory provided by Z3", Section 5.1).
/// The in-tree IdlSolver is the default engine; this backend exists to
/// (a) mirror the paper's setup and (b) differentially validate IdlSolver
/// in the test suite.
///
/// solveOrder() adds graceful degradation between the engines: when the
/// requested engine times out or errors (including the injected
/// solver.timeout / solver.z3_unavailable faults), the other engine is
/// retried once under the same limits, bumping the solver.fallbacks
/// counter. Only when both fail does the failure reach the caller.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SMT_Z3BACKEND_H
#define LIGHT_SMT_Z3BACKEND_H

#include "smt/OrderSystem.h"

namespace light {
namespace smt {

/// Solves \p System with Z3. Semantics identical to solveWithIdl: a budget
/// in \p Limits maps onto Z3's own timeout, an exhausted budget or an
/// engine failure comes back as Status::Timeout/Error with the structured
/// reason.
SolveResult solveWithZ3(const OrderSystem &System, SolverLimits Limits = {});

/// Which engine a client wants schedules computed with.
enum class SolverEngine { Idl, Z3 };

/// Dispatches on \p Engine. A Timeout/Error outcome triggers one bounded
/// retry on the other engine (same limits) before the failure is returned.
SolveResult solveOrder(const OrderSystem &System, SolverEngine Engine,
                       SolverLimits Limits = {});

} // namespace smt
} // namespace light

#endif // LIGHT_SMT_Z3BACKEND_H

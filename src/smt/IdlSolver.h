//===- smt/IdlSolver.h - DPLL(T) difference-logic solver --------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained SMT solver for the Integer Difference Logic fragment the
/// replay constraint system lives in (Section 4.2). It combines:
///
///   * a DPLL search over clause literals with chronological backtracking
///     and decision flipping,
///   * an incremental difference-constraint theory: asserted atoms become
///     weighted edges; feasibility is maintained via potential functions and
///     incremental Bellman-Ford relaxation with negative-cycle detection,
///   * conflict learning from negative-cycle explanations.
///
/// The paper discharges the same constraints to Z3's IDL theory; this solver
/// plays that role by default, and smt/Z3Backend provides the actual Z3 for
/// differential validation.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_SMT_IDLSOLVER_H
#define LIGHT_SMT_IDLSOLVER_H

#include "smt/OrderSystem.h"

#include <memory>

namespace light {
namespace smt {

/// Search tuning; the defaults are the production configuration.
struct IdlTuning {
  /// Restart the clause scan from clause 0 after every conflict — the
  /// pre-fix O(conflicts × clauses) behavior — instead of resuming from the
  /// lowest clause index the backjump invalidated. Both settings make the
  /// identical decision sequence (the skipped prefix is provably still
  /// satisfied), so tests assert Decisions/Conflicts are unchanged while
  /// ScanSteps drop. Exists only for those differential assertions.
  bool FullRescan = false;
};

/// Solves an OrderSystem. A fresh instance should be created per solve call.
class IdlSolver {
  struct Impl;
  std::unique_ptr<Impl> I;

public:
  /// \p Limits bounds the search; an exhausted budget yields
  /// Status::Timeout with the structured reason, never a wrong verdict.
  explicit IdlSolver(const OrderSystem &System, SolverLimits Limits = {},
                     IdlTuning Tuning = {});
  ~IdlSolver();

  IdlSolver(const IdlSolver &) = delete;
  IdlSolver &operator=(const IdlSolver &) = delete;

  /// Runs the search. On Sat the result holds a model that
  /// OrderSystem::satisfiedBy accepts.
  SolveResult solve();
};

/// Convenience wrapper: construct, solve, return.
SolveResult solveWithIdl(const OrderSystem &System, SolverLimits Limits = {},
                         IdlTuning Tuning = {});

} // namespace smt
} // namespace light

#endif // LIGHT_SMT_IDLSOLVER_H

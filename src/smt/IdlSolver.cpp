//===- smt/IdlSolver.cpp - DPLL(T) difference-logic solver ----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "smt/IdlSolver.h"

#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

using namespace light;
using namespace light::smt;

namespace {

using AtomId = uint32_t;

/// A literal: atom index with a sign bit. Positive literal asserts the atom
/// x_U - x_V <= K; negative asserts its negation x_V - x_U <= -K - 1.
using Lit = uint32_t;

inline Lit posLit(AtomId A) { return A << 1; }
inline Lit negLit(AtomId A) { return (A << 1) | 1; }
inline AtomId atomOf(Lit L) { return L >> 1; }
inline bool isNeg(Lit L) { return L & 1; }
inline Lit negate(Lit L) { return L ^ 1; }

} // namespace

struct IdlSolver::Impl {
  const OrderSystem &Sys;
  SolverLimits Limits;
  IdlTuning Tuning;

  struct IAtom {
    Var U, V;
    int64_t K;
  };
  std::vector<IAtom> Atoms;
  /// Canonicalization map keyed on (U, V); collisions on K resolved by the
  /// short list behind each key.
  std::unordered_map<uint64_t, std::vector<AtomId>> AtomIndex;

  struct IClause {
    std::vector<Lit> Lits;
  };
  std::vector<IClause> Clauses;

  /// Per-atom occurrence lists: clauses containing the positive / negative
  /// literal of the atom.
  std::vector<std::vector<uint32_t>> OccPos, OccNeg;

  /// Lowest clause index mentioning the atom (either polarity). Unassigning
  /// an atom can only change the satisfied-status of clauses from this
  /// index on, so the post-conflict scan resumes from the minimum over the
  /// unassigned atoms instead of from clause 0.
  std::vector<uint32_t> MinOcc;

  /// Lowest clause index whose scanned-satisfied status the backtracking
  /// since the last scan resume may have invalidated. Maintained by
  /// undoTo(); consumed (and reset) when the scan resumes after a conflict.
  size_t RescanFloor = SIZE_MAX;

  /// Per-atom assignment: 0 unassigned, +1 true, -1 false.
  std::vector<int8_t> Val;

  struct TrailStep {
    Lit L;
    bool HasEdge;
    Var EdgeFrom;
  };
  std::vector<TrailStep> Trail;
  /// Decision stack: trail position at decision time plus the decided
  /// literal (which may have failed to assert and thus be absent from the
  /// trail itself).
  struct Decision {
    uint32_t TrailPos;
    Lit L;
  };
  std::vector<Decision> Decisions;

  /// Difference-constraint graph: edge (From -> To, W) models the
  /// constraint x_To - x_From <= W... maintained with potentials Pot such
  /// that Pot[To] <= Pot[From] + W for every asserted edge.
  struct Edge {
    Var To;
    int64_t W;
    Lit L;
  };
  std::vector<std::vector<Edge>> Adj;
  std::vector<int64_t> Pot;

  // Relaxation scratch.
  std::vector<std::pair<Var, int64_t>> TouchedPot;
  std::vector<Var> RelaxQueue;
  std::vector<Var> ParentFrom;
  std::vector<Lit> ParentLit;

  SolveResult Result;

  /// Sampled wall-clock probing: reading the clock on every decision would
  /// dominate small solves, so the budget check only consults the clock on
  /// 1/256 of probes (plus every conflict, which is already expensive).
  uint32_t BudgetProbe = 0;

  explicit Impl(const OrderSystem &S, SolverLimits L, IdlTuning T)
      : Sys(S), Limits(L), Tuning(T) {
    Adj.resize(Sys.numVars());
    Pot.assign(Sys.numVars(), 0);
    ParentFrom.assign(Sys.numVars(), 0);
    ParentLit.assign(Sys.numVars(), 0);
    for (const Clause &C : Sys.clauses()) {
      IClause IC;
      IC.Lits.reserve(C.size());
      for (const Atom &A : C)
        IC.Lits.push_back(posLit(internAtom(A)));
      addClauseInternal(std::move(IC));
    }
  }

  AtomId internAtom(const Atom &A) {
    uint64_t Key = (static_cast<uint64_t>(A.U) << 32) | A.V;
    auto &Bucket = AtomIndex[Key];
    for (AtomId Id : Bucket)
      if (Atoms[Id].K == A.K)
        return Id;
    AtomId Id = static_cast<AtomId>(Atoms.size());
    Atoms.push_back({A.U, A.V, A.K});
    Val.push_back(0);
    OccPos.emplace_back();
    OccNeg.emplace_back();
    MinOcc.push_back(~0u);
    Bucket.push_back(Id);
    return Id;
  }

  void addClauseInternal(IClause IC) {
    uint32_t Index = static_cast<uint32_t>(Clauses.size());
    for (Lit L : IC.Lits) {
      (isNeg(L) ? OccNeg : OccPos)[atomOf(L)].push_back(Index);
      MinOcc[atomOf(L)] = std::min(MinOcc[atomOf(L)], Index);
    }
    Clauses.push_back(std::move(IC));
  }

  int8_t litValue(Lit L) const {
    int8_t V = Val[atomOf(L)];
    return isNeg(L) ? static_cast<int8_t>(-V) : V;
  }

  /// The difference-graph edge asserted by making \p L true.
  /// Positive atom (U,V,K): x_U - x_V <= K  => edge V -> U, weight K.
  /// Negative: x_V - x_U <= -K-1            => edge U -> V, weight -K-1.
  void edgeFor(Lit L, Var &From, Var &To, int64_t &W) const {
    const IAtom &A = Atoms[atomOf(L)];
    if (!isNeg(L)) {
      From = A.V;
      To = A.U;
      W = A.K;
    } else {
      From = A.U;
      To = A.V;
      W = -A.K - 1;
    }
  }

  /// Adds the theory edge for \p L. On a negative cycle, restores the
  /// potentials, removes the edge again, fills \p ConflictLits with the true
  /// literals forming the cycle, and returns false.
  bool addEdge(Lit L, std::vector<Lit> &ConflictLits, bool &AddedEdge) {
    Var From, To;
    int64_t W;
    edgeFor(L, From, To, W);
    Adj[From].push_back({To, W, L});
    AddedEdge = true;
    if (Pot[To] <= Pot[From] + W)
      return true;

    ++Result.CycleChecks;
    TouchedPot.clear();
    RelaxQueue.clear();
    TouchedPot.push_back({To, Pot[To]});
    Pot[To] = Pot[From] + W;
    ParentFrom[To] = From;
    ParentLit[To] = L;
    RelaxQueue.push_back(To);

    for (size_t Head = 0; Head < RelaxQueue.size(); ++Head) {
      Var A = RelaxQueue[Head];
      int64_t Base = Pot[A];
      for (const Edge &E : Adj[A]) {
        if (Pot[E.To] <= Base + E.W)
          continue;
        if (E.To == From) {
          // Negative cycle through the new edge: collect its literals by
          // walking the relaxation parents from A back to From.
          ConflictLits.clear();
          ConflictLits.push_back(E.L);
          Var Cur = A;
          while (Cur != From) {
            ConflictLits.push_back(ParentLit[Cur]);
            Cur = ParentFrom[Cur];
          }
          // Roll back potentials and the new edge.
          for (auto It = TouchedPot.rbegin(); It != TouchedPot.rend(); ++It)
            Pot[It->first] = It->second;
          Adj[From].pop_back();
          AddedEdge = false;
          return false;
        }
        TouchedPot.push_back({E.To, Pot[E.To]});
        Pot[E.To] = Base + E.W;
        ParentFrom[E.To] = A;
        ParentLit[E.To] = E.L;
        RelaxQueue.push_back(E.To);
      }
    }
    return true;
  }

  /// Assigns \p L true, updates the theory, and performs boolean unit
  /// propagation. Returns false on conflict; \p ConflictLits then holds a
  /// (possibly empty) set of true literals that cannot all hold.
  bool enqueueAndPropagate(Lit L, std::vector<Lit> &ConflictLits) {
    std::vector<Lit> Pending{L};
    while (!Pending.empty()) {
      Lit Cur = Pending.back();
      Pending.pop_back();
      int8_t V = litValue(Cur);
      if (V > 0)
        continue;
      if (V < 0) {
        // Boolean conflict; no cycle explanation available here.
        ConflictLits.clear();
        return false;
      }
      bool AddedEdge = false;
      Val[atomOf(Cur)] = isNeg(Cur) ? -1 : 1;
      if (!addEdge(Cur, ConflictLits, AddedEdge)) {
        Val[atomOf(Cur)] = 0;
        return false;
      }
      Trail.push_back({Cur, AddedEdge, 0});
      if (AddedEdge) {
        Var From, To;
        int64_t W;
        edgeFor(Cur, From, To, W);
        Trail.back().EdgeFrom = From;
      }
      ++Result.Propagations;

      // Clauses where Cur just became false may now be unit or empty.
      Lit Falsified = negate(Cur);
      const auto &Occ =
          (isNeg(Falsified) ? OccNeg : OccPos)[atomOf(Falsified)];
      for (uint32_t CI : Occ) {
        const IClause &C = Clauses[CI];
        Lit Unit = 0;
        bool Satisfied = false;
        unsigned Unassigned = 0;
        for (Lit CL : C.Lits) {
          int8_t CV = litValue(CL);
          if (CV > 0) {
            Satisfied = true;
            break;
          }
          if (CV == 0) {
            ++Unassigned;
            Unit = CL;
          }
        }
        if (Satisfied)
          continue;
        if (Unassigned == 0) {
          ConflictLits.clear();
          return false;
        }
        if (Unassigned == 1)
          Pending.push_back(Unit);
      }
    }
    return true;
  }

  void undoTo(size_t TrailSize) {
    while (Trail.size() > TrailSize) {
      TrailStep &S = Trail.back();
      if (S.HasEdge)
        Adj[S.EdgeFrom].pop_back();
      AtomId A = atomOf(S.L);
      Val[A] = 0;
      RescanFloor = std::min(RescanFloor, static_cast<size_t>(MinOcc[A]));
      Trail.pop_back();
    }
  }

  SolveResult run() {
    obs::TraceSpan Span("solver.solve", "solver");
    SolveResult R = runInner();
    Span.arg("decisions", R.Decisions);
    Span.arg("conflicts", R.Conflicts);
    publishSolveStats(R);
    return R;
  }

  /// Checks the solve budget: the conflict count always, the wall clock on
  /// a 1/256 sampled cadence — except right after a conflict
  /// (\p AtConflict), where the clock is read unconditionally. The sampled
  /// probe alone let a run with MaxConflicts == 0 overshoot WallSeconds by
  /// arbitrarily long propagation bursts; a conflict is already expensive,
  /// so the extra clock read is free and bounds the overshoot to one
  /// inter-conflict stretch. On exhaustion fills the Timeout outcome and
  /// returns true; the search must stop without a verdict.
  bool overBudget(Stopwatch &Timer, bool AtConflict = false) {
    if (Limits.MaxConflicts && Result.Conflicts >= Limits.MaxConflicts) {
      Result.Outcome = SolveResult::Status::Timeout;
      Result.Reason = SolveResult::FailReason::ConflictBudget;
      Result.Message = "conflict budget of " +
                       std::to_string(Limits.MaxConflicts) + " exhausted";
      return true;
    }
    if (Limits.WallSeconds > 0 &&
        (AtConflict || (++BudgetProbe & 255) == 0) &&
        Timer.seconds() > Limits.WallSeconds) {
      Result.Outcome = SolveResult::Status::Timeout;
      Result.Reason = SolveResult::FailReason::WallClock;
      Result.Message = "wall-clock budget of " +
                       std::to_string(Limits.WallSeconds) + "s exhausted";
      return true;
    }
    return false;
  }

  SolveResult runInner() {
    Stopwatch Timer;

    if (fault::Injector::global().shouldFire("solver.timeout")) {
      Result.Outcome = SolveResult::Status::Timeout;
      Result.Reason = SolveResult::FailReason::WallClock;
      Result.Message = "injected fault: solver.timeout";
      Result.SolveSeconds = Timer.seconds();
      return Result;
    }

    // Assert all unit input clauses up front.
    std::vector<Lit> ConflictLits;
    size_t NumInput = Clauses.size();
    for (size_t CI = 0; CI < NumInput; ++CI) {
      if (Clauses[CI].Lits.size() != 1)
        continue;
      if (!enqueueAndPropagate(Clauses[CI].Lits[0], ConflictLits)) {
        if (!resolveConflict(ConflictLits)) {
          Result.Outcome = SolveResult::Status::Unsat;
          Result.SolveSeconds = Timer.seconds();
          return Result;
        }
        if (!Limits.unlimited() && overBudget(Timer, /*AtConflict=*/true)) {
          Result.SolveSeconds = Timer.seconds();
          return Result;
        }
      }
    }

    // Where to resume the clause scan after a conflict: every clause below
    // RescanFloor (the lowest index touching an atom the backjump
    // unassigned) is provably still satisfied, so rescanning them — the
    // old `CI = 0` behavior — was O(conflicts × clauses) of pure overhead.
    // The resume point never exceeds the conflicting clause itself, which
    // must always be revisited.
    auto ResumePoint = [&](size_t CurCI) {
      size_t R = Tuning.FullRescan ? 0 : std::min(CurCI, RescanFloor);
      RescanFloor = SIZE_MAX;
      return R;
    };
    RescanFloor = SIZE_MAX; // undo during the unit phase precedes the scan

    size_t CI = 0;
    while (CI < Clauses.size()) {
      if (!Limits.unlimited() && overBudget(Timer)) {
        Result.SolveSeconds = Timer.seconds();
        return Result;
      }
      ++Result.ScanSteps;
      const IClause &C = Clauses[CI];
      bool Satisfied = false;
      Lit Choice = 0;
      bool HaveChoice = false;
      for (Lit L : C.Lits) {
        int8_t V = litValue(L);
        if (V > 0) {
          Satisfied = true;
          break;
        }
        if (V == 0 && !HaveChoice) {
          Choice = L;
          HaveChoice = true;
        }
      }
      if (Satisfied) {
        ++CI;
        continue;
      }
      if (!HaveChoice) {
        // All literals false: conflict discovered lazily.
        if (!resolveConflict(ConflictLits)) {
          Result.Outcome = SolveResult::Status::Unsat;
          Result.SolveSeconds = Timer.seconds();
          return Result;
        }
        CI = ResumePoint(CI);
        if (!Limits.unlimited() && overBudget(Timer, /*AtConflict=*/true)) {
          Result.SolveSeconds = Timer.seconds();
          return Result;
        }
        continue;
      }
      ++Result.Decisions;
      Decisions.push_back({static_cast<uint32_t>(Trail.size()), Choice});
      if (!enqueueAndPropagate(Choice, ConflictLits)) {
        if (!resolveConflict(ConflictLits)) {
          Result.Outcome = SolveResult::Status::Unsat;
          Result.SolveSeconds = Timer.seconds();
          return Result;
        }
        CI = ResumePoint(CI);
        if (!Limits.unlimited() && overBudget(Timer, /*AtConflict=*/true)) {
          Result.SolveSeconds = Timer.seconds();
          return Result;
        }
        continue;
      }
      ++CI;
    }

    // Model extraction: the potentials already satisfy every asserted atom;
    // unconstrained variables keep potential 0.
    Result.Outcome = SolveResult::Status::Sat;
    Result.Values.assign(Pot.begin(), Pot.end());
    Result.SolveSeconds = Timer.seconds();
    assert(Sys.satisfiedBy(Result.Values) && "model does not satisfy system");
    return Result;
  }

  /// Chronological backtracking with decision flipping. Learns the
  /// negative-cycle clause when one is available. Returns false when no
  /// decision is left to flip (UNSAT).
  bool resolveConflict(std::vector<Lit> &ConflictLits) {
    ++Result.Conflicts;
    if (ConflictLits.size() > 1) {
      // Learn the negation of the cycle: at least one of its literals must
      // be false in any model.
      IClause Learned;
      Learned.Lits.reserve(ConflictLits.size());
      for (Lit L : ConflictLits)
        Learned.Lits.push_back(negate(L));
      addClauseInternal(std::move(Learned));
    }
    while (true) {
      if (Decisions.empty())
        return false;
      Decision D = Decisions.back();
      Decisions.pop_back();
      undoTo(D.TrailPos);
      std::vector<Lit> SubConflict;
      if (enqueueAndPropagate(negate(D.L), SubConflict))
        return true;
      ++Result.Conflicts;
      if (SubConflict.size() > 1) {
        IClause Learned;
        for (Lit L : SubConflict)
          Learned.Lits.push_back(negate(L));
        addClauseInternal(std::move(Learned));
      }
    }
  }
};

IdlSolver::IdlSolver(const OrderSystem &System, SolverLimits Limits,
                     IdlTuning Tuning)
    : I(std::make_unique<Impl>(System, Limits, Tuning)) {}

IdlSolver::~IdlSolver() = default;

SolveResult IdlSolver::solve() { return I->run(); }

SolveResult light::smt::solveWithIdl(const OrderSystem &System,
                                     SolverLimits Limits, IdlTuning Tuning) {
  IdlSolver Solver(System, Limits, Tuning);
  return Solver.solve();
}

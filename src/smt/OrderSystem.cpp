//===- smt/OrderSystem.cpp - Difference-logic constraint systems ---------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "smt/OrderSystem.h"

#include "obs/Metrics.h"

#include <cassert>

using namespace light;
using namespace light::smt;

void OrderSystem::addClause(Clause C) {
  assert(!C.empty() && "empty clause would make the system trivially unsat");
  for ([[maybe_unused]] const Atom &A : C) {
    assert(A.U < NumVariables && A.V < NumVariables &&
           "atom references an undeclared variable");
  }
  Clauses.push_back(std::move(C));
}

bool OrderSystem::satisfiedBy(const std::vector<int64_t> &Values) const {
  if (Values.size() < NumVariables)
    return false;
  for (const Clause &C : Clauses) {
    bool Holds = false;
    for (const Atom &A : C) {
      if (Values[A.U] - Values[A.V] <= A.K) {
        Holds = true;
        break;
      }
    }
    if (!Holds)
      return false;
  }
  return true;
}

std::string OrderSystem::str() const {
  auto VarName = [&](Var V) {
    return Names[V].empty() ? "v" + std::to_string(V) : Names[V];
  };
  std::string Out;
  for (const Clause &C : Clauses) {
    for (size_t I = 0; I < C.size(); ++I) {
      if (I)
        Out += " \\/ ";
      const Atom &A = C[I];
      if (A.K == -1)
        Out += VarName(A.U) + " < " + VarName(A.V);
      else
        Out += VarName(A.U) + " - " + VarName(A.V) +
               " <= " + std::to_string(A.K);
    }
    Out += "\n";
  }
  return Out;
}

std::string SolveResult::failReasonStr() const {
  switch (Reason) {
  case FailReason::None:
    return "none";
  case FailReason::WallClock:
    return "wall-clock";
  case FailReason::ConflictBudget:
    return "conflict-budget";
  case FailReason::EngineUnavailable:
    return "engine-unavailable";
  case FailReason::EngineError:
    return "engine-error";
  }
  return "unknown";
}

std::vector<std::pair<std::string, double>>
light::smt::solveStatEntries(const SolveResult &R) {
  return {
      {"solver.decisions", static_cast<double>(R.Decisions)},
      {"solver.propagations", static_cast<double>(R.Propagations)},
      {"solver.conflicts", static_cast<double>(R.Conflicts)},
      {"solver.cycle_checks", static_cast<double>(R.CycleChecks)},
      {"solver.solve_ms", R.SolveSeconds * 1000.0},
  };
}

void light::smt::publishSolveStats(const SolveResult &R) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("solver.solves").add(1);
  Reg.counter("solver.decisions").add(R.Decisions);
  Reg.counter("solver.propagations").add(R.Propagations);
  Reg.counter("solver.conflicts").add(R.Conflicts);
  Reg.counter("solver.cycle_checks").add(R.CycleChecks);
  Reg.counter(R.sat() ? "solver.sat"
              : R.failed() ? "solver.failed"
                           : "solver.unsat")
      .add(1);
  Reg.histogram("solver.solve_ns")
      .record(static_cast<uint64_t>(R.SolveSeconds * 1e9));
}

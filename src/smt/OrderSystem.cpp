//===- smt/OrderSystem.cpp - Difference-logic constraint systems ---------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "smt/OrderSystem.h"

#include "obs/Metrics.h"

#include <cassert>

using namespace light;
using namespace light::smt;

void OrderSystem::addClause(Clause C) {
  assert(!C.empty() && "empty clause would make the system trivially unsat");
  for ([[maybe_unused]] const Atom &A : C) {
    assert(A.U < NumVariables && A.V < NumVariables &&
           "atom references an undeclared variable");
  }
  Clauses.push_back(std::move(C));
}

bool OrderSystem::satisfiedBy(const std::vector<int64_t> &Values) const {
  if (Values.size() < NumVariables)
    return false;
  for (const Clause &C : Clauses) {
    bool Holds = false;
    for (const Atom &A : C) {
      if (Values[A.U] - Values[A.V] <= A.K) {
        Holds = true;
        break;
      }
    }
    if (!Holds)
      return false;
  }
  return true;
}

std::string OrderSystem::str() const {
  auto VarName = [&](Var V) {
    return Names[V].empty() ? "v" + std::to_string(V) : Names[V];
  };
  std::string Out;
  for (const Clause &C : Clauses) {
    for (size_t I = 0; I < C.size(); ++I) {
      if (I)
        Out += " \\/ ";
      const Atom &A = C[I];
      if (A.K == -1)
        Out += VarName(A.U) + " < " + VarName(A.V);
      else
        Out += VarName(A.U) + " - " + VarName(A.V) +
               " <= " + std::to_string(A.K);
    }
    Out += "\n";
  }
  return Out;
}

ComponentInfo light::smt::connectedComponents(const OrderSystem &System) {
  uint32_t N = System.numVars();
  std::vector<Var> Parent(N);
  for (Var V = 0; V < N; ++V)
    Parent[V] = V;
  auto Find = [&](Var V) {
    while (Parent[V] != V) {
      Parent[V] = Parent[Parent[V]];
      V = Parent[V];
    }
    return V;
  };
  // Union toward the smaller root so each root is its component's minimum;
  // that makes the final id numbering independent of union order.
  auto Union = [&](Var A, Var B) {
    A = Find(A);
    B = Find(B);
    if (A == B)
      return;
    if (A < B)
      Parent[B] = A;
    else
      Parent[A] = B;
  };
  for (const Clause &C : System.clauses()) {
    Var First = C.front().U;
    for (const Atom &A : C) {
      Union(First, A.U);
      Union(First, A.V);
    }
  }

  ComponentInfo Info;
  Info.CompOfVar.assign(N, 0);
  // Roots are component minima, so scanning variables in ascending order
  // hands out ids in order of each component's smallest variable.
  std::vector<uint32_t> IdOfRoot(N, ~0u);
  for (Var V = 0; V < N; ++V) {
    Var Root = Find(V);
    if (IdOfRoot[Root] == ~0u)
      IdOfRoot[Root] = Info.NumComponents++;
    Info.CompOfVar[V] = IdOfRoot[Root];
  }
  return Info;
}

std::string SolveResult::failReasonStr() const {
  switch (Reason) {
  case FailReason::None:
    return "none";
  case FailReason::WallClock:
    return "wall-clock";
  case FailReason::ConflictBudget:
    return "conflict-budget";
  case FailReason::EngineUnavailable:
    return "engine-unavailable";
  case FailReason::EngineError:
    return "engine-error";
  }
  return "unknown";
}

std::vector<std::pair<std::string, double>>
light::smt::solveStatEntries(const SolveResult &R) {
  return {
      {"solver.decisions", static_cast<double>(R.Decisions)},
      {"solver.propagations", static_cast<double>(R.Propagations)},
      {"solver.conflicts", static_cast<double>(R.Conflicts)},
      {"solver.cycle_checks", static_cast<double>(R.CycleChecks)},
      {"solver.scan_steps", static_cast<double>(R.ScanSteps)},
      {"solver.shards", static_cast<double>(R.Shards)},
      {"solver.solve_ms", R.SolveSeconds * 1000.0},
  };
}

void light::smt::publishSolveStats(const SolveResult &R) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("solver.solves").add(1);
  Reg.counter("solver.decisions").add(R.Decisions);
  Reg.counter("solver.propagations").add(R.Propagations);
  Reg.counter("solver.conflicts").add(R.Conflicts);
  Reg.counter("solver.cycle_checks").add(R.CycleChecks);
  Reg.counter("solver.scan_steps").add(R.ScanSteps);
  Reg.counter(R.sat() ? "solver.sat"
              : R.failed() ? "solver.failed"
                           : "solver.unsat")
      .add(1);
  Reg.histogram("solver.solve_ns")
      .record(static_cast<uint64_t>(R.SolveSeconds * 1e9));
}

//===- obs/BenchReport.cpp - Machine-readable bench output -----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchReport.h"

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <cstdio>
#include <fstream>

using namespace light;
using namespace light::obs;

BenchReport::BenchReport(std::string BenchName) : Bench(std::move(BenchName)) {}

BenchReport::Row &BenchReport::row() {
  Rows.emplace_back();
  return Rows.back();
}

void BenchReport::aggregate(std::string Key, double Value) {
  Aggregates.emplace_back(std::move(Key), Value);
}

std::string BenchReport::defaultPath(const std::string &BenchName) {
  return "BENCH_" + BenchName + ".json";
}

std::string BenchReport::json() const {
  JsonWriter W;
  W.beginObject();
  W.field("schema", "light-bench-v1");
  W.field("bench", Bench);
  W.key("rows");
  W.beginArray();
  for (const Row &R : Rows) {
    W.beginObject();
    for (const auto &[Key, C] : R.Cells) {
      switch (C.What) {
      case Cell::Kind::Str:
        W.field(Key, C.S);
        break;
      case Cell::Kind::Num:
        W.field(Key, C.N);
        break;
      case Cell::Kind::Bool:
        W.field(Key, C.B);
        break;
      }
    }
    W.endObject();
  }
  W.endArray();
  W.key("aggregates");
  W.beginObject();
  for (const auto &[Key, V] : Aggregates)
    W.field(Key, V);
  W.endObject();
  W.field("ok", Ok);
  if (IncludeMetrics) {
    W.key("metrics");
    W.raw(Registry::global().snapshot().json());
  }
  W.endObject();
  return W.take();
}

bool BenchReport::write(const std::string &Path) const {
  std::string Target = Path.empty() ? defaultPath(Bench) : Path;
  std::ofstream Out(Target, std::ios::trunc);
  if (!Out)
    return false;
  Out << json() << "\n";
  if (!Out)
    return false;
  std::printf("bench report written -> %s\n", Target.c_str());
  return true;
}

//===- obs/Trace.cpp - Ring-buffer event tracer (Chrome trace) -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

using namespace light;
using namespace light::obs;

struct Tracer::Impl {
  struct Shard {
    std::mutex M;
    std::vector<TraceEvent> Ring;
    size_t Next = 0;      ///< next write slot
    size_t Count = 0;     ///< valid slots (<= Ring.size())
    uint64_t Dropped = 0; ///< overwritten events
  };

  Shard Shards[MetricShards];
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  /// Registered on start(); every ring overwrite bumps it so exported
  /// metrics snapshots reveal a too-small trace buffer.
  Counter DroppedMetric;

  void push(const TraceEvent &E) {
    Shard &S = Shards[shardIndex()];
    std::lock_guard<std::mutex> Guard(S.M);
    if (S.Ring.empty())
      return;
    if (S.Count == S.Ring.size()) {
      ++S.Dropped;
      DroppedMetric.add(1);
    } else {
      ++S.Count;
    }
    S.Ring[S.Next] = E;
    S.Next = (S.Next + 1) % S.Ring.size();
  }
};

Tracer::Tracer() : I(new Impl) {}

Tracer::~Tracer() {
  if (this != &global())
    delete I;
}

Tracer &Tracer::global() {
  static Tracer *G = new Tracer();
  return *G;
}

void Tracer::start(size_t Capacity) {
  size_t PerShard = std::max<size_t>(16, Capacity / MetricShards);
  for (Impl::Shard &S : I->Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    S.Ring.assign(PerShard, TraceEvent());
    S.Next = S.Count = 0;
    S.Dropped = 0;
  }
  I->Epoch = std::chrono::steady_clock::now();
  I->DroppedMetric = Registry::global().counter("obs.trace.dropped");
  Enabled.store(true, std::memory_order_release);
}

void Tracer::stop() { Enabled.store(false, std::memory_order_release); }

uint64_t Tracer::now() const {
  auto Delta = std::chrono::steady_clock::now() - I->Epoch;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Delta).count());
}

void Tracer::instant(const char *Name, const char *Cat, uint32_t Tid,
                     TraceArg A0, TraceArg A1) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'i';
  E.Tid = Tid;
  E.TsNanos = now();
  if (A0.Name)
    E.Args[E.NumArgs++] = A0;
  if (A1.Name)
    E.Args[E.NumArgs++] = A1;
  I->push(E);
}

void Tracer::complete(const char *Name, const char *Cat, uint32_t Tid,
                      uint64_t TsNanos, uint64_t DurNanos, TraceArg A0,
                      TraceArg A1) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'X';
  E.Tid = Tid;
  E.TsNanos = TsNanos;
  E.DurNanos = DurNanos;
  if (A0.Name)
    E.Args[E.NumArgs++] = A0;
  if (A1.Name)
    E.Args[E.NumArgs++] = A1;
  I->push(E);
}

size_t Tracer::size() const {
  size_t Total = 0;
  for (Impl::Shard &S : I->Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    Total += S.Count;
  }
  return Total;
}

uint64_t Tracer::dropped() const {
  uint64_t Total = 0;
  for (Impl::Shard &S : I->Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    Total += S.Dropped;
  }
  return Total;
}

void Tracer::clear() {
  for (Impl::Shard &S : I->Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    S.Next = S.Count = 0;
    S.Dropped = 0;
  }
}

std::string Tracer::chromeJson() const {
  std::vector<TraceEvent> All;
  for (Impl::Shard &S : I->Shards) {
    std::lock_guard<std::mutex> Guard(S.M);
    if (S.Ring.empty())
      continue;
    // Oldest-first: the ring's logical order starts at Next when full.
    size_t Start = S.Count == S.Ring.size() ? S.Next : 0;
    for (size_t K = 0; K < S.Count; ++K)
      All.push_back(S.Ring[(Start + K) % S.Ring.size()]);
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TsNanos < B.TsNanos;
                   });

  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  auto Us = [](uint64_t Nanos) { return static_cast<double>(Nanos) / 1000.0; };
  for (const TraceEvent &E : All) {
    W.beginObject();
    W.field("name", E.Name ? E.Name : "?");
    W.field("cat", E.Cat ? E.Cat : "light");
    char Ph[2] = {E.Phase, 0};
    W.field("ph", Ph);
    W.field("ts", Us(E.TsNanos));
    if (E.Phase == 'X')
      W.field("dur", Us(E.DurNanos));
    if (E.Phase == 'i')
      W.field("s", "t"); // thread-scoped instant
    W.field("pid", static_cast<int64_t>(1));
    W.field("tid", static_cast<int64_t>(E.Tid));
    if (E.NumArgs) {
      W.key("args");
      W.beginObject();
      for (uint32_t A = 0; A < E.NumArgs; ++A)
        W.field(E.Args[A].Name, E.Args[A].Value);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.field("displayTimeUnit", "ns");
  // Footer: how much the ring forgot. A nonzero dropped count means the
  // oldest spans are missing from the view above.
  W.key("metadata");
  W.beginObject();
  W.field("light.trace.buffered", static_cast<int64_t>(All.size()));
  W.field("light.trace.dropped", static_cast<int64_t>(dropped()));
  W.endObject();
  W.endObject();
  return W.take();
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << chromeJson() << "\n";
  return static_cast<bool>(Out);
}

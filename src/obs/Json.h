//===- obs/Json.h - Minimal JSON writer and parser --------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON layer for the telemetry subsystem: a
/// streaming writer (metrics snapshots, Chrome trace events, bench reports)
/// and a strict recursive-descent parser (round-trip validation in tests and
/// the bench-schema smoke checker). Not a general-purpose JSON library —
/// exactly the subset the observability layer needs.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_JSON_H
#define LIGHT_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace light {
namespace obs {

/// Streaming JSON writer. Callers drive structure with begin/end calls; the
/// writer tracks comma placement. Invalid nesting is the caller's bug (it
/// produces malformed output rather than throwing).
class JsonWriter {
  std::string Out;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> HasElement;
  bool PendingKey = false;

  void separate();

public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Writes an object key; the next value call supplies its value.
  void key(std::string_view K);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(double D);
  void value(uint64_t U);
  void value(int64_t I);
  void value(int I) { value(static_cast<int64_t>(I)); }
  void value(bool B);
  void valueNull();

  /// Splices an already-serialized JSON value verbatim (e.g. a nested
  /// snapshot document). The caller guarantees \p Json is valid.
  void raw(std::string_view Json);

  /// key() + value() in one call.
  template <typename T> void field(std::string_view K, T V) {
    key(K);
    value(V);
  }

  /// Escapes \p S per RFC 8259 (quotes, backslash, control characters).
  static std::string escape(std::string_view S);

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }
};

/// A parsed JSON value (object members keep insertion order).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind What = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;                            ///< Array
  std::vector<std::pair<std::string, JsonValue>> Members;  ///< Object

  bool isObject() const { return What == Kind::Object; }
  bool isArray() const { return What == Kind::Array; }
  bool isNumber() const { return What == Kind::Number; }
  bool isString() const { return What == Kind::String; }
  bool isBool() const { return What == Kind::Bool; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Key) const;
};

/// Outcome of parseJson.
struct JsonParseResult {
  bool Ok = false;
  std::string Error; ///< message with character offset when !Ok
  JsonValue Value;
};

/// Parses \p Text as a single JSON document (trailing garbage is an error).
JsonParseResult parseJson(std::string_view Text);

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_JSON_H

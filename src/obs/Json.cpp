//===- obs/Json.cpp - Minimal JSON writer and parser -----------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace light;
using namespace light::obs;

// --- Writer ------------------------------------------------------------------

void JsonWriter::separate() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (!HasElement.empty()) {
    if (HasElement.back())
      Out.push_back(',');
    HasElement.back() = true;
  }
}

void JsonWriter::beginObject() {
  separate();
  Out.push_back('{');
  HasElement.push_back(false);
}

void JsonWriter::endObject() {
  if (!HasElement.empty())
    HasElement.pop_back();
  Out.push_back('}');
}

void JsonWriter::beginArray() {
  separate();
  Out.push_back('[');
  HasElement.push_back(false);
}

void JsonWriter::endArray() {
  if (!HasElement.empty())
    HasElement.pop_back();
  Out.push_back(']');
}

void JsonWriter::key(std::string_view K) {
  separate();
  Out.push_back('"');
  Out += escape(K);
  Out += "\":";
  PendingKey = true;
}

void JsonWriter::value(std::string_view S) {
  separate();
  Out.push_back('"');
  Out += escape(S);
  Out.push_back('"');
}

void JsonWriter::value(double D) {
  separate();
  if (!std::isfinite(D)) {
    // JSON has no Inf/NaN; clamp to null so documents always parse.
    Out += "null";
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
}

void JsonWriter::value(uint64_t U) {
  separate();
  Out += std::to_string(U);
}

void JsonWriter::value(int64_t I) {
  separate();
  Out += std::to_string(I);
}

void JsonWriter::value(bool B) {
  separate();
  Out += B ? "true" : "false";
}

void JsonWriter::valueNull() {
  separate();
  Out += "null";
}

void JsonWriter::raw(std::string_view Json) {
  separate();
  Out += Json;
}

std::string JsonWriter::escape(std::string_view S) {
  std::string E;
  E.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      E += "\\\"";
      break;
    case '\\':
      E += "\\\\";
      break;
    case '\n':
      E += "\\n";
      break;
    case '\r':
      E += "\\r";
      break;
    case '\t':
      E += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        E += Buf;
      } else {
        E.push_back(Ch);
      }
    }
  }
  return E;
}

// --- Parser ------------------------------------------------------------------

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (What != Kind::Object)
    return nullptr;
  for (const auto &[K, V] : Members)
    if (K == Key)
      return &V;
  return nullptr;
}

namespace {

struct Parser {
  std::string_view Text;
  size_t Pos = 0;
  std::string Error;

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += H - '0';
          else if (H >= 'a' && H <= 'f')
            Code += 10 + H - 'a';
          else if (H >= 'A' && H <= 'F')
            Code += 10 + H - 'A';
          else
            return fail("bad \\u escape digit");
        }
        // Telemetry strings are ASCII; encode the low byte and drop the
        // rest rather than implementing full UTF-16 surrogate handling.
        Out.push_back(static_cast<char>(Code & 0x7f));
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &V) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      V.What = JsonValue::Kind::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        std::string Key;
        skipWs();
        if (!parseString(Key))
          return false;
        if (!consume(':'))
          return false;
        JsonValue Member;
        if (!parseValue(Member))
          return false;
        V.Members.emplace_back(std::move(Key), std::move(Member));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      V.What = JsonValue::Kind::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue Item;
        if (!parseValue(Item))
          return false;
        V.Items.push_back(std::move(Item));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      V.What = JsonValue::Kind::String;
      return parseString(V.Str);
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      V.What = JsonValue::Kind::Bool;
      V.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      V.What = JsonValue::Kind::Bool;
      V.B = false;
      Pos += 5;
      return true;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      V.What = JsonValue::Kind::Null;
      Pos += 4;
      return true;
    }
    // Number.
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool SawDigit = false;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+')) {
      SawDigit |= std::isdigit(static_cast<unsigned char>(Text[Pos])) != 0;
      ++Pos;
    }
    if (!SawDigit) {
      Pos = Start;
      return fail("invalid value");
    }
    V.What = JsonValue::Kind::Number;
    V.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                        nullptr);
    return true;
  }
};

} // namespace

JsonParseResult light::obs::parseJson(std::string_view Text) {
  Parser P{Text};
  JsonParseResult R;
  if (!P.parseValue(R.Value)) {
    R.Error = P.Error;
    return R;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    R.Error = "trailing characters at offset " + std::to_string(P.Pos);
    return R;
  }
  R.Ok = true;
  return R;
}

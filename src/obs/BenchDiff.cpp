//===- obs/BenchDiff.cpp - light-bench-v1 regression comparator ------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

using namespace light;
using namespace light::obs;

namespace {

bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

bool contains(std::string_view S, std::string_view Needle) {
  return S.find(Needle) != std::string_view::npos;
}

const char *const ConfigNames[] = {"threads",     "ops",     "iterations",
                                   "repeats",     "seed",    "locations",
                                   "workers",     "shards",  "benchmarks_run",
                                   "write_pct"};

} // namespace

MetricClass light::obs::classifyMetric(std::string_view Name) {
  for (const char *C : ConfigNames)
    if (Name == C)
      return MetricClass::Config;
  if (contains(Name, "per_sec") || contains(Name, "per_second"))
    return MetricClass::Rate;
  if (endsWith(Name, "_ns") || contains(Name, "ns_per") ||
      endsWith(Name, "_seconds") || endsWith(Name, "_ms") ||
      contains(Name, "_ns_"))
    return MetricClass::Time;
  return MetricClass::Count;
}

std::string light::obs::rowKey(const JsonValue &Row) {
  std::string Key;
  for (const auto &[Name, V] : Row.Members) {
    bool Identity = V.isString();
    if (V.isNumber() && classifyMetric(Name) == MetricClass::Config)
      Identity = true;
    if (!Identity)
      continue;
    if (!Key.empty())
      Key += " ";
    Key += Name + "=";
    if (V.isString())
      Key += V.Str;
    else {
      std::ostringstream Os;
      Os << V.Num;
      Key += Os.str();
    }
  }
  return Key.empty() ? "(row)" : Key;
}

namespace {

/// Numeric (metric, value) pairs of one row/aggregate object, Config and
/// non-numeric cells excluded.
std::vector<std::pair<std::string, double>> metricsOf(const JsonValue &Obj) {
  std::vector<std::pair<std::string, double>> Out;
  for (const auto &[Name, V] : Obj.Members)
    if (V.isNumber() && classifyMetric(Name) != MetricClass::Config)
      Out.emplace_back(Name, V.Num);
  return Out;
}

void compareObjects(const std::string &Key, const JsonValue &OldObj,
                    const JsonValue &NewObj, const DiffThresholds &T,
                    DiffResult &R) {
  auto NewMetrics = metricsOf(NewObj);
  for (const auto &[Metric, OldV] : metricsOf(OldObj)) {
    DiffEntry E;
    E.Row = Key;
    E.Metric = Metric;
    E.Class = classifyMetric(Metric);
    E.Old = OldV;
    auto It = std::find_if(NewMetrics.begin(), NewMetrics.end(),
                           [&, M = Metric](const auto &P) {
                             return P.first == M;
                           });
    if (It == NewMetrics.end()) {
      E.What = DiffEntry::Verdict::Missing;
      ++R.Missing;
      R.Entries.push_back(std::move(E));
      continue;
    }
    E.New = It->second;
    ++R.Compared;

    double Rel, Floor;
    bool LargerIsWorse = true;
    switch (E.Class) {
    case MetricClass::Time:
      Rel = T.TimeRel;
      Floor = T.TimeFloor;
      break;
    case MetricClass::Rate:
      Rel = T.RateRel;
      Floor = T.RateFloor;
      LargerIsWorse = false;
      break;
    default:
      Rel = T.CountRel;
      Floor = T.CountFloor;
      break;
    }
    double Worse = LargerIsWorse ? E.New - E.Old : E.Old - E.New;
    double Base = std::fabs(E.Old);
    if (Worse > Base * Rel && Worse > Floor) {
      E.What = DiffEntry::Verdict::Regression;
      ++R.Regressions;
    } else if (-Worse > Base * Rel && -Worse > Floor) {
      E.What = DiffEntry::Verdict::Improvement;
      ++R.Improvements;
    } else {
      E.What = DiffEntry::Verdict::WithinNoise;
    }
    R.Entries.push_back(std::move(E));
  }
  // Metrics only the new report has are informational, not gating.
  auto OldMetrics = metricsOf(OldObj);
  for (const auto &[Metric, NewV] : NewMetrics) {
    bool Known = std::any_of(OldMetrics.begin(), OldMetrics.end(),
                             [&, M = Metric](const auto &P) {
                               return P.first == M;
                             });
    if (Known)
      continue;
    DiffEntry E;
    E.Row = Key;
    E.Metric = Metric;
    E.Class = classifyMetric(Metric);
    E.New = NewV;
    E.What = DiffEntry::Verdict::Added;
    R.Entries.push_back(std::move(E));
  }
}

const JsonValue *requireReport(const JsonValue &Doc, std::string &Error,
                               const char *Which) {
  if (!Doc.isObject()) {
    Error = std::string(Which) + " report: root is not an object";
    return nullptr;
  }
  const JsonValue *Schema = Doc.find("schema");
  if (!Schema || !Schema->isString() || Schema->Str != "light-bench-v1") {
    Error = std::string(Which) + " report: not a light-bench-v1 document";
    return nullptr;
  }
  return &Doc;
}

} // namespace

DiffResult light::obs::diffReports(const JsonValue &Old, const JsonValue &New,
                                   const DiffThresholds &T) {
  DiffResult R;
  if (!requireReport(Old, R.Error, "baseline") ||
      !requireReport(New, R.Error, "new"))
    return R;
  const JsonValue *OldBench = Old.find("bench");
  const JsonValue *NewBench = New.find("bench");
  if (!OldBench || !NewBench || !OldBench->isString() ||
      !NewBench->isString() || OldBench->Str != NewBench->Str) {
    R.Error = "bench name mismatch: '" +
              (OldBench && OldBench->isString() ? OldBench->Str : "?") +
              "' vs '" +
              (NewBench && NewBench->isString() ? NewBench->Str : "?") + "'";
    return R;
  }
  R.Bench = OldBench->Str;
  R.Ok = true;

  const JsonValue *OldRows = Old.find("rows");
  const JsonValue *NewRows = New.find("rows");
  if (OldRows && OldRows->isArray()) {
    for (const JsonValue &Row : OldRows->Items) {
      if (!Row.isObject())
        continue;
      std::string Key = rowKey(Row);
      const JsonValue *Match = nullptr;
      if (NewRows && NewRows->isArray())
        for (const JsonValue &Cand : NewRows->Items)
          if (Cand.isObject() && rowKey(Cand) == Key) {
            Match = &Cand;
            break;
          }
      if (!Match) {
        DiffEntry E;
        E.Row = Key;
        E.Metric = "(row)";
        E.What = DiffEntry::Verdict::Missing;
        ++R.Missing;
        R.Entries.push_back(std::move(E));
        continue;
      }
      compareObjects(Key, Row, *Match, T, R);
    }
  }

  const JsonValue *OldAgg = Old.find("aggregates");
  const JsonValue *NewAgg = New.find("aggregates");
  if (OldAgg && OldAgg->isObject()) {
    static const JsonValue EmptyObj = [] {
      JsonValue V;
      V.What = JsonValue::Kind::Object;
      return V;
    }();
    compareObjects("(aggregates)", *OldAgg,
                   NewAgg && NewAgg->isObject() ? *NewAgg : EmptyObj, T, R);
  }
  return R;
}

DiffResult light::obs::diffReportFiles(const std::string &OldPath,
                                       const std::string &NewPath,
                                       const DiffThresholds &T) {
  DiffResult R;
  auto Load = [&R](const std::string &Path, JsonValue &Out) {
    std::ifstream In(Path);
    if (!In) {
      R.Error = "cannot open '" + Path + "'";
      return false;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    JsonParseResult Parsed = parseJson(Buf.str());
    if (!Parsed.Ok) {
      R.Error = Path + ": " + Parsed.Error;
      return false;
    }
    Out = std::move(Parsed.Value);
    return true;
  };
  JsonValue Old, New;
  if (!Load(OldPath, Old) || !Load(NewPath, New))
    return R;
  return diffReports(Old, New, T);
}

// --- Serialization & perturbation -------------------------------------------

namespace {

void writeValue(JsonWriter &W, const JsonValue &V) {
  switch (V.What) {
  case JsonValue::Kind::Null:
    W.valueNull();
    break;
  case JsonValue::Kind::Bool:
    W.value(V.B);
    break;
  case JsonValue::Kind::Number:
    W.value(V.Num);
    break;
  case JsonValue::Kind::String:
    W.value(V.Str);
    break;
  case JsonValue::Kind::Array:
    W.beginArray();
    for (const JsonValue &Item : V.Items)
      writeValue(W, Item);
    W.endArray();
    break;
  case JsonValue::Kind::Object:
    W.beginObject();
    for (const auto &[Name, Member] : V.Members) {
      W.key(Name);
      writeValue(W, Member);
    }
    W.endObject();
    break;
  }
}

void perturbObject(JsonValue &Obj, double Factor) {
  for (auto &[Name, V] : Obj.Members) {
    if (!V.isNumber())
      continue;
    MetricClass C = classifyMetric(Name);
    if (C == MetricClass::Time)
      V.Num *= Factor;
    else if (C == MetricClass::Rate && Factor != 0)
      V.Num /= Factor;
  }
}

} // namespace

std::string light::obs::writeJsonValue(const JsonValue &V) {
  JsonWriter W;
  writeValue(W, V);
  return W.take();
}

std::string light::obs::perturbReport(const JsonValue &Doc, double Factor,
                                      std::string *Error) {
  std::string Err;
  if (!requireReport(Doc, Err, "input")) {
    if (Error)
      *Error = Err;
    return std::string();
  }
  JsonValue Copy = Doc;
  for (auto &[Name, V] : Copy.Members) {
    if (Name == "rows" && V.isArray())
      for (JsonValue &Row : V.Items)
        if (Row.isObject())
          perturbObject(Row, Factor);
    if (Name == "aggregates" && V.isObject())
      perturbObject(V, Factor);
  }
  return writeJsonValue(Copy);
}

//===- obs/Args.h - Position-independent CLI flag scanner -------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny position-independent argv scanner shared by the light-replay
/// driver and every bench binary. It replaced the brittle fixed-position
/// parsing (`--z3` used to be recognized only as argv[4]): flags may now
/// appear anywhere, in any order, mixed with positional operands.
///
/// Tokens starting with "--" are flags; a flag listed as value-taking
/// consumes the following token as its value (unless that token is itself a
/// flag, in which case the value is empty — useful for flags with an
/// optional value like `--json [file]`). `--flag=value` attaches the value
/// inline, which is the only way to give an optional-value flag a value
/// that follows another flag (`--progress=5 --z3`). Everything else is
/// positional.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_ARGS_H
#define LIGHT_OBS_ARGS_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace light {
namespace obs {

/// Scanned argv. Unknown flags are collected (callers decide whether to
/// reject them) rather than silently treated as positionals.
class ArgList {
  std::vector<std::string> Positionals;
  std::vector<std::pair<std::string, std::string>> Flags; ///< name -> value
  std::vector<std::string> Unknown;

  static bool isFlag(const std::string &S) {
    return S.size() > 2 && S[0] == '-' && S[1] == '-';
  }

public:
  /// Scans argv[Begin..argc). \p ValueFlags lists the value-taking flags,
  /// \p BoolFlags the known no-value flags (both without the "--" prefix).
  ArgList(int Argc, char **Argv,
          std::initializer_list<const char *> ValueFlags,
          std::initializer_list<const char *> BoolFlags, int Begin = 1) {
    auto Listed = [](std::initializer_list<const char *> L,
                     const std::string &Name) {
      for (const char *F : L)
        if (Name == F)
          return true;
      return false;
    };
    for (int I = Begin; I < Argc; ++I) {
      std::string Tok = Argv[I];
      if (!isFlag(Tok)) {
        Positionals.push_back(std::move(Tok));
        continue;
      }
      std::string Name = Tok.substr(2);
      size_t Eq = Name.find('=');
      if (Eq != std::string::npos) {
        std::string Inline = Name.substr(Eq + 1);
        Name.resize(Eq);
        if (Listed(ValueFlags, Name))
          Flags.emplace_back(std::move(Name), std::move(Inline));
        else
          Unknown.push_back(std::move(Tok));
        continue;
      }
      if (Listed(ValueFlags, Name)) {
        std::string Value;
        if (I + 1 < Argc && !isFlag(Argv[I + 1]))
          Value = Argv[++I];
        Flags.emplace_back(std::move(Name), std::move(Value));
      } else if (Listed(BoolFlags, Name)) {
        Flags.emplace_back(std::move(Name), std::string());
      } else {
        Unknown.push_back(std::move(Tok));
      }
    }
  }

  bool has(const std::string &Name) const {
    for (const auto &[F, V] : Flags)
      if (F == Name)
        return true;
    return false;
  }

  /// The flag's value; \p Default when absent, \p IfEmpty when present with
  /// no value (covers `--json` without a path).
  std::string get(const std::string &Name, const std::string &Default = "",
                  const std::string &IfEmpty = "") const {
    for (const auto &[F, V] : Flags)
      if (F == Name)
        return V.empty() ? (IfEmpty.empty() ? V : IfEmpty) : V;
    return Default;
  }

  size_t size() const { return Positionals.size(); }
  const std::string &positional(size_t I) const { return Positionals[I]; }
  std::string positionalOr(size_t I, const std::string &Default) const {
    return I < Positionals.size() ? Positionals[I] : Default;
  }

  const std::vector<std::string> &unknown() const { return Unknown; }
};

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_ARGS_H

//===- obs/BenchDiff.h - light-bench-v1 regression comparator ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The noise-aware comparator behind `tools/bench_diff` and the ctest
/// bench-regression gate: given two light-bench-v1 reports (a committed
/// baseline and a fresh run), match rows by identity columns, compare every
/// measured metric, and classify each delta as within-noise, improvement,
/// or regression.
///
/// Noise model: a delta only counts when it clears *both* a relative
/// threshold and a per-metric-class absolute floor — a 9.7ns/op read
/// doubling to 19ns matters, a 0.2ns blip on the same metric does not, and
/// a retry count going 2 -> 5 is scheduling noise while 100 -> 10000 is
/// not. Metric classes are inferred from the column name:
///
///   Time   *_ns, *_ns_per_iter, *ns_per_op, *_seconds, *_ms — larger is
///          worse
///   Rate   *_per_sec, *_per_second — larger is better (direction flips)
///   Config threads, ops, iterations, seed, ... — identity, never compared
///   Count  everything else numeric — larger is worse, generous thresholds
///
/// A metric or row present in the baseline but missing from the new report
/// is a finding of its own (Missing), fatal by default: silently dropping a
/// measurement is how regressions hide.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_BENCHDIFF_H
#define LIGHT_OBS_BENCHDIFF_H

#include "obs/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace light {
namespace obs {

/// Metric classification by column name (see file comment).
enum class MetricClass { Time, Rate, Count, Config, Skip };
MetricClass classifyMetric(std::string_view Name);

/// Per-class noise thresholds. A regression requires the relative delta
/// AND the absolute floor to both be exceeded.
struct DiffThresholds {
  double TimeRel = 0.35;    ///< 35%: same-host run-to-run jitter margin
  double TimeFloor = 5.0;   ///< nanoseconds (or seconds*1e0 for *_seconds)
  double RateRel = 0.35;
  double RateFloor = 0.0;
  double CountRel = 2.0;    ///< counts are schedule-dependent; 3x to trip
  double CountFloor = 100.0;
  bool FailOnMissing = true;
};

/// One compared (row, metric) pair.
struct DiffEntry {
  enum class Verdict { WithinNoise, Improvement, Regression, Missing, Added };
  std::string Row;    ///< row identity key; "(aggregates)" for aggregates
  std::string Metric;
  MetricClass Class = MetricClass::Count;
  Verdict What = Verdict::WithinNoise;
  double Old = 0;
  double New = 0;

  /// (New - Old) / Old; 0 when Old == 0.
  double relDelta() const { return Old != 0 ? (New - Old) / Old : 0; }
};

/// Outcome of one comparison.
struct DiffResult {
  bool Ok = false;    ///< inputs parsed and were comparable reports
  std::string Error;  ///< set when !Ok
  std::string Bench;
  std::vector<DiffEntry> Entries;
  uint64_t Compared = 0;
  uint64_t Regressions = 0;
  uint64_t Improvements = 0;
  uint64_t Missing = 0;

  /// The gate verdict: true when the new report regressed.
  bool regressed(const DiffThresholds &T) const {
    return Regressions > 0 || (T.FailOnMissing && Missing > 0);
  }
};

/// The identity key a report row is matched by: its string cells plus the
/// Config-class numeric cells, in column order.
std::string rowKey(const JsonValue &Row);

/// Compares two parsed light-bench-v1 documents.
DiffResult diffReports(const JsonValue &Old, const JsonValue &New,
                       const DiffThresholds &T = {});

/// Convenience: load, parse, and compare two report files.
DiffResult diffReportFiles(const std::string &OldPath,
                           const std::string &NewPath,
                           const DiffThresholds &T = {});

/// Multiplies every Time-class metric (rows and aggregates) by \p Factor
/// and divides every Rate-class metric by it — the synthetic "regression"
/// used to prove the gate fires. Returns the perturbed document as JSON
/// text ("" plus \p Error set on malformed input).
std::string perturbReport(const JsonValue &Doc, double Factor,
                          std::string *Error = nullptr);

/// Serializes a parsed JsonValue back to JSON text (used by --perturb).
std::string writeJsonValue(const JsonValue &V);

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_BENCHDIFF_H

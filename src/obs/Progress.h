//===- obs/Progress.h - Heartbeat progress sampler --------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heartbeat sampler behind `light-replay --progress[=N]`: a background
/// thread that wakes every N seconds, snapshots the metrics registry, and
/// prints one structured status line — elapsed time, RSS, and the watched
/// metrics (epochs flushed, solver conflicts, schedules/s, ...) with
/// per-interval rates. Long `solve` / `explore` / `crashtest` runs stop
/// being silent black boxes.
///
/// The sampler is also the durability path for `--metrics-json`: when a
/// metrics path is configured, every tick rewrites the snapshot file, so a
/// crashed or SIGKILLed run still leaves its last-heartbeat metrics on disk
/// (the same salvage philosophy as the durable epoch log — the artifact on
/// disk is always at most one heartbeat stale).
///
/// Each tick additionally publishes `obs.progress.ticks` (counter) and
/// `obs.progress.rss_bytes` (gauge) so exported snapshots carry the
/// memory trajectory.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_PROGRESS_H
#define LIGHT_OBS_PROGRESS_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace light {
namespace obs {

/// Resident set size of this process in bytes (0 when unavailable).
uint64_t currentRssBytes();

/// Configuration for one ProgressSampler.
struct ProgressOptions {
  /// Heartbeat period. Sub-second periods are honored (tests use them).
  double IntervalSeconds = 1.0;
  /// Tag printed on every line, conventionally the subcommand name.
  std::string Label = "run";
  /// When non-empty, every tick rewrites this metrics-JSON snapshot.
  std::string MetricsJsonPath;
  /// Status sink; nullptr means stderr.
  std::FILE *Sink = nullptr;
  /// Counters worth narrating, printed when nonzero with a delta rate.
  /// The default list covers the long-running phases end to end.
  std::vector<std::string> Watch = {
      "record.accesses",  "record.epochs",      "solver.conflicts",
      "solver.shard.solves", "explore.schedules", "replay.turns",
      "interp.instructions"};
};

/// The heartbeat sampler thread. start() launches it; stop() (or the
/// destructor) joins it and emits one final tick so short runs still get a
/// line and a metrics flush.
class ProgressSampler {
public:
  explicit ProgressSampler(ProgressOptions Opts);
  ~ProgressSampler();
  ProgressSampler(const ProgressSampler &) = delete;
  ProgressSampler &operator=(const ProgressSampler &) = delete;

  void start();
  void stop();

  /// Heartbeats emitted so far (including the final stop() tick).
  uint64_t ticks() const { return Ticks.load(std::memory_order_relaxed); }

private:
  ProgressOptions Opts;
  std::thread Worker;
  std::mutex M;
  std::condition_variable Cv;
  bool StopRequested = false;
  std::atomic<uint64_t> Ticks{0};
  std::chrono::steady_clock::time_point Epoch;
  /// Last-tick values of the watched counters, for rate computation.
  std::vector<uint64_t> Last;
  double LastElapsed = 0;

  void run();
  void tick();
};

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_PROGRESS_H

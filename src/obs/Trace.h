//===- obs/Trace.h - Ring-buffer event tracer (Chrome trace) ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event tracer behind `light-replay --trace-out`: a bounded, sharded
/// ring buffer of timestamped events exported as Chrome trace-event JSON
/// (load in chrome://tracing or https://ui.perfetto.dev). Events show
/// per-thread record activity, read-retry storms, span compression, solver
/// phases, and replay turn hand-offs — the self-observability a production
/// replay system needs (rr treats trace dumps the same way).
///
/// Cost model: when tracing is disabled (the default) every record call is
/// one relaxed atomic load and a branch. When enabled, a call takes its
/// shard's (almost always uncontended) lock and writes one fixed-size slot;
/// the ring never allocates after start(). Event name/category strings must
/// be string literals (the tracer stores the pointers).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_TRACE_H
#define LIGHT_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace light {
namespace obs {

/// One numeric event argument (rendered into the Chrome "args" object).
struct TraceArg {
  const char *Name = nullptr;
  uint64_t Value = 0;
};

/// One trace event slot. Phase follows the Chrome trace-event vocabulary:
/// 'X' = complete (has DurNanos), 'i' = instant.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Cat = nullptr;
  char Phase = 'i';
  uint32_t Tid = 0;
  uint64_t TsNanos = 0;
  uint64_t DurNanos = 0;
  uint32_t NumArgs = 0;
  TraceArg Args[2];
};

/// The process-wide tracer. start() arms it with a fixed capacity; each of
/// the MetricShards shards owns capacity/shards slots and wraps
/// independently (oldest events in a shard are overwritten), so a hot
/// thread cannot evict every other thread's history.
class Tracer {
  struct Impl;
  Impl *I;
  std::atomic<bool> Enabled{false};

public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  static Tracer &global();

  /// Arms the tracer with room for \p Capacity events (rounded up to a
  /// multiple of the shard count) and resets the clock to zero.
  void start(size_t Capacity = 1 << 16);

  /// Disarms the tracer; recorded events stay available for export.
  void stop();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Nanoseconds since start() on the steady clock.
  uint64_t now() const;

  /// Records an instant event ('i').
  void instant(const char *Name, const char *Cat, uint32_t Tid,
               TraceArg A0 = {}, TraceArg A1 = {});

  /// Records a complete event ('X') covering [TsNanos, TsNanos+DurNanos].
  void complete(const char *Name, const char *Cat, uint32_t Tid,
                uint64_t TsNanos, uint64_t DurNanos, TraceArg A0 = {},
                TraceArg A1 = {});

  /// Number of events currently buffered (across shards).
  size_t size() const;
  /// Events overwritten because a shard's ring wrapped.
  uint64_t dropped() const;
  /// Clears all buffered events (keeps the armed/disarmed state).
  void clear();

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ns"}.
  /// Events are sorted by timestamp; ts/dur are in microseconds per the
  /// trace-event spec.
  std::string chromeJson() const;

  /// Writes chromeJson() to \p Path; false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;
};

/// RAII complete-event: records an 'X' span over the scope's lifetime when
/// the tracer is armed (construction cost is one relaxed load otherwise).
class TraceSpan {
  Tracer &T;
  const char *Name;
  const char *Cat;
  uint32_t Tid;
  uint64_t Ts = 0;
  bool Armed;
  TraceArg A0{}, A1{};

public:
  TraceSpan(const char *NameIn, const char *CatIn, uint32_t TidIn = 0,
            Tracer &Tr = Tracer::global())
      : T(Tr), Name(NameIn), Cat(CatIn), Tid(TidIn), Armed(Tr.enabled()) {
    if (Armed)
      Ts = T.now();
  }

  /// Attaches up to two numeric args, rendered when the span closes.
  void arg(const char *ArgName, uint64_t Value) {
    if (!A0.Name)
      A0 = {ArgName, Value};
    else
      A1 = {ArgName, Value};
  }

  ~TraceSpan() {
    if (Armed)
      T.complete(Name, Cat, Tid, Ts, T.now() - Ts, A0, A1);
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
};

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_TRACE_H

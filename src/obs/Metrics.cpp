//===- obs/Metrics.cpp - Lock-free process-wide metrics registry -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <bit>
#include <deque>
#include <fstream>
#include <mutex>
#include <unordered_map>

using namespace light;
using namespace light::obs;

uint32_t light::obs::shardIndex() {
  static std::atomic<uint32_t> NextShard{0};
  thread_local uint32_t Shard =
      NextShard.fetch_add(1, std::memory_order_relaxed) & (MetricShards - 1);
  return Shard;
}

uint64_t Counter::value() const {
  if (!C)
    return 0;
  uint64_t Total = 0;
  for (const detail::CounterCell &Cell : C->Cells)
    Total += Cell.V.load(std::memory_order_relaxed);
  return Total;
}

uint32_t Histogram::bucketOf(uint64_t V) {
  if (V == 0)
    return 0;
  uint32_t B = static_cast<uint32_t>(64 - std::countl_zero(V));
  return B < HistogramBuckets ? B : HistogramBuckets - 1;
}

uint64_t Histogram::bucketLowerBound(uint32_t I) {
  if (I == 0)
    return 0;
  return 1ull << (I - 1);
}

// --- Registry ----------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex M;
  /// Deques give pointer stability across registration.
  std::deque<detail::CounterCells> CounterStore;
  std::deque<detail::GaugeCell> GaugeStore;
  std::deque<detail::HistogramCells> HistogramStore;
  /// Name -> index, plus ordered name lists for deterministic snapshots.
  std::unordered_map<std::string, size_t> CounterIndex, GaugeIndex,
      HistogramIndex;
  std::vector<std::string> CounterNames, GaugeNames, HistogramNames;
};

Registry::Registry() : I(new Impl) {}

Registry::~Registry() {
  // The global registry is intentionally leaked (handles may be used from
  // static destructors); private instances clean up.
  if (this != &global())
    delete I;
}

Registry &Registry::global() {
  static Registry *G = new Registry();
  return *G;
}

Counter Registry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Guard(I->M);
  std::string Key(Name);
  auto It = I->CounterIndex.find(Key);
  if (It == I->CounterIndex.end()) {
    It = I->CounterIndex.emplace(Key, I->CounterStore.size()).first;
    I->CounterStore.emplace_back();
    I->CounterNames.push_back(Key);
  }
  Counter H;
  H.C = &I->CounterStore[It->second];
  return H;
}

Gauge Registry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Guard(I->M);
  std::string Key(Name);
  auto It = I->GaugeIndex.find(Key);
  if (It == I->GaugeIndex.end()) {
    It = I->GaugeIndex.emplace(Key, I->GaugeStore.size()).first;
    I->GaugeStore.emplace_back();
    I->GaugeNames.push_back(Key);
  }
  Gauge H;
  H.G = &I->GaugeStore[It->second];
  return H;
}

Histogram Registry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Guard(I->M);
  std::string Key(Name);
  auto It = I->HistogramIndex.find(Key);
  if (It == I->HistogramIndex.end()) {
    It = I->HistogramIndex.emplace(Key, I->HistogramStore.size()).first;
    I->HistogramStore.emplace_back();
    I->HistogramNames.push_back(Key);
  }
  Histogram H;
  H.H = &I->HistogramStore[It->second];
  return H;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> Guard(I->M);
  Snapshot S;
  S.Counters.reserve(I->CounterNames.size());
  for (size_t N = 0; N < I->CounterNames.size(); ++N) {
    uint64_t Total = 0;
    for (const detail::CounterCell &Cell : I->CounterStore[N].Cells)
      Total += Cell.V.load(std::memory_order_relaxed);
    S.Counters.push_back({I->CounterNames[N], Total});
  }
  S.Gauges.reserve(I->GaugeNames.size());
  for (size_t N = 0; N < I->GaugeNames.size(); ++N)
    S.Gauges.push_back(
        {I->GaugeNames[N], I->GaugeStore[N].V.load(std::memory_order_relaxed)});
  S.Histograms.reserve(I->HistogramNames.size());
  for (size_t N = 0; N < I->HistogramNames.size(); ++N) {
    Snapshot::HistogramRow Row;
    Row.Name = I->HistogramNames[N];
    Row.Buckets.assign(HistogramBuckets, 0);
    for (const detail::HistogramShard &Sh : I->HistogramStore[N].Shards) {
      Row.Count += Sh.Count.load(std::memory_order_relaxed);
      Row.Sum += Sh.Sum.load(std::memory_order_relaxed);
      for (uint32_t B = 0; B < HistogramBuckets; ++B)
        Row.Buckets[B] += Sh.Buckets[B].load(std::memory_order_relaxed);
    }
    S.Histograms.push_back(std::move(Row));
  }
  return S;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Guard(I->M);
  for (detail::CounterCells &C : I->CounterStore)
    for (detail::CounterCell &Cell : C.Cells)
      Cell.V.store(0, std::memory_order_relaxed);
  for (detail::GaugeCell &G : I->GaugeStore)
    G.V.store(0, std::memory_order_relaxed);
  for (detail::HistogramCells &H : I->HistogramStore)
    for (detail::HistogramShard &Sh : H.Shards) {
      Sh.Count.store(0, std::memory_order_relaxed);
      Sh.Sum.store(0, std::memory_order_relaxed);
      for (std::atomic<uint64_t> &B : Sh.Buckets)
        B.store(0, std::memory_order_relaxed);
    }
}

bool Registry::writeJson(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << snapshot().json() << "\n";
  return static_cast<bool>(Out);
}

// --- Snapshot ----------------------------------------------------------------

uint64_t Snapshot::counter(std::string_view Name) const {
  for (const CounterRow &R : Counters)
    if (R.Name == Name)
      return R.Value;
  return 0;
}

int64_t Snapshot::gauge(std::string_view Name) const {
  for (const GaugeRow &R : Gauges)
    if (R.Name == Name)
      return R.Value;
  return 0;
}

const Snapshot::HistogramRow *
Snapshot::histogram(std::string_view Name) const {
  for (const HistogramRow &R : Histograms)
    if (R.Name == Name)
      return &R;
  return nullptr;
}

std::string Snapshot::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const CounterRow &R : Counters)
    W.field(R.Name, R.Value);
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const GaugeRow &R : Gauges)
    W.field(R.Name, R.Value);
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const HistogramRow &R : Histograms) {
    W.key(R.Name);
    W.beginObject();
    W.field("count", R.Count);
    W.field("sum", R.Sum);
    W.key("buckets");
    W.beginArray();
    // Trailing all-zero buckets are elided to keep snapshots compact; the
    // bucket index still identifies the range (lower bound 2^(i-1)).
    size_t Last = R.Buckets.size();
    while (Last > 0 && R.Buckets[Last - 1] == 0)
      --Last;
    for (size_t B = 0; B < Last; ++B)
      W.value(R.Buckets[B]);
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return W.take();
}

//===- obs/BenchReport.h - Machine-readable bench output --------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable JSON schema every bench binary emits under `--json`, so CI can
/// track the perf trajectory across commits (`BENCH_<name>.json` files).
///
/// Schema `light-bench-v1`:
///   {
///     "schema":     "light-bench-v1",
///     "bench":      "<bench name>",
///     "rows":       [ {<column>: <string|number|bool>, ...}, ... ],
///     "aggregates": { "<stat>": <number>, ... },
///     "ok":         <bool>,        // the bench's shape check
///     "metrics":    {...}          // optional Registry snapshot
///   }
///
/// tools/check_bench_json validates this shape; the ctest smoke target runs
/// one bench with --json and checks the file.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_BENCHREPORT_H
#define LIGHT_OBS_BENCHREPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace light {
namespace obs {

/// Builder for one light-bench-v1 report.
class BenchReport {
public:
  /// One row cell value.
  struct Cell {
    enum class Kind { Str, Num, Bool } What = Kind::Num;
    std::string S;
    double N = 0;
    bool B = false;
  };

  /// One report row under construction.
  class Row {
    friend class BenchReport;
    std::vector<std::pair<std::string, Cell>> Cells;

  public:
    Row &set(std::string Key, std::string V) {
      Cells.push_back({std::move(Key), {Cell::Kind::Str, std::move(V)}});
      return *this;
    }
    Row &set(std::string Key, const char *V) {
      return set(std::move(Key), std::string(V));
    }
    Row &set(std::string Key, double V) {
      Cell C;
      C.What = Cell::Kind::Num;
      C.N = V;
      Cells.push_back({std::move(Key), std::move(C)});
      return *this;
    }
    Row &set(std::string Key, uint64_t V) {
      return set(std::move(Key), static_cast<double>(V));
    }
    Row &set(std::string Key, int V) {
      return set(std::move(Key), static_cast<double>(V));
    }
    Row &set(std::string Key, bool V) {
      Cell C;
      C.What = Cell::Kind::Bool;
      C.B = V;
      Cells.push_back({std::move(Key), std::move(C)});
      return *this;
    }
  };

  explicit BenchReport(std::string BenchName);

  /// Appends and returns a fresh row.
  Row &row();

  /// Sets one aggregate statistic.
  void aggregate(std::string Key, double Value);

  /// Records the bench's shape-check verdict (serialized as "ok").
  void ok(bool Holds) { Ok = Holds; }

  /// Includes the global metrics-registry snapshot under "metrics".
  void withMetrics() { IncludeMetrics = true; }

  /// Conventional output path: BENCH_<name>.json in the working directory.
  static std::string defaultPath(const std::string &BenchName);

  std::string json() const;

  /// Writes json() to \p Path (empty selects defaultPath()); false on I/O
  /// failure.
  bool write(const std::string &Path = std::string()) const;

private:
  std::string Bench;
  std::vector<Row> Rows;
  std::vector<std::pair<std::string, double>> Aggregates;
  bool Ok = true;
  bool IncludeMetrics = false;
};

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_BENCHREPORT_H

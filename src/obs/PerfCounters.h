//===- obs/PerfCounters.h - perf_event_open profiling hooks -----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware profiling hooks for the perf observatory: a per-thread wrapper
/// over Linux `perf_event_open` counting cycles, instructions, cache misses
/// and context switches, with a graceful clock/rdtsc fallback when the
/// syscall is unavailable (seccomp'd container, perf_event_paranoid, or a
/// kernel without the event). The fallback keeps the *shape* of the data —
/// wall nanoseconds always, TSC cycles where the architecture exposes them —
/// so benches emit the same light-bench-v1 columns everywhere and downstream
/// tooling (bench_diff, check_bench_json) never branches on host capability.
///
/// Two layers:
///
///  * PerfCounters — opens one counter group for the *calling thread*
///    (pid=0, cpu=-1). Construction never fails: when any event cannot be
///    opened the object silently degrades to the fallback source and
///    records why. The fault-injection site `obs.perf_open_fail` forces the
///    fallback deterministically, so tests cover both paths on any host.
///
///  * PerfScope — RAII: samples at construction and destruction, publishes
///    the delta as `perf.<scope>.{cycles,instructions,cache_misses,
///    context_switches,wall_ns}` counters in the global metrics registry
///    and emits a Chrome-trace 'X' span when the tracer is armed. The scope
///    name must be a string literal (the tracer stores the pointer).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_PERFCOUNTERS_H
#define LIGHT_OBS_PERFCOUNTERS_H

#include <cstdint>
#include <string>

namespace light {
namespace obs {

/// One reading of the profiled quantities. All values are totals since the
/// owning PerfCounters was constructed (or last reset()).
struct PerfSample {
  uint64_t Cycles = 0;          ///< CPU cycles (TSC delta in fallback)
  uint64_t Instructions = 0;    ///< retired instructions (0 in fallback)
  uint64_t CacheMisses = 0;     ///< LLC misses (0 in fallback)
  uint64_t ContextSwitches = 0; ///< context switches (0 in fallback)
  uint64_t WallNanos = 0;       ///< steady-clock wall time, always valid
  bool Hardware = false;        ///< true when perf_event_open backs this

  /// Component-wise End - Begin (saturating at 0 per field).
  static PerfSample delta(const PerfSample &Begin, const PerfSample &End);
};

/// Per-thread profiling counters. Thread affinity: the constructor binds
/// the counters to the *calling* thread; read() may be called from any
/// thread (a sampler thread can read a worker's counters through the
/// worker's instance).
class PerfCounters {
public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters &) = delete;
  PerfCounters &operator=(const PerfCounters &) = delete;

  /// True when the perf_event_open group is live; false on the fallback.
  bool hardware() const { return Hardware; }

  /// Human-readable reason the fallback was taken ("" when hardware()).
  const std::string &fallbackReason() const { return FallbackWhy; }

  /// Re-baselines all counters to zero.
  void reset();

  /// Current totals since construction / reset().
  PerfSample read() const;

private:
  struct Fds {
    int Cycles = -1;
    int Instructions = -1;
    int CacheMisses = -1;
    int ContextSwitches = -1;
  };
  Fds Events;
  bool Hardware = false;
  std::string FallbackWhy;
  // Fallback baselines (also used to re-zero hardware counters on kernels
  // where the reset ioctl is unavailable).
  uint64_t BaseWallNanos = 0;
  uint64_t BaseTsc = 0;
  PerfSample HwBase; ///< hardware totals at the last reset()

  void openAll();
  void closeAll();
  PerfSample readRaw() const;
};

/// RAII profiling scope: publishes the counter delta over its lifetime into
/// the global metrics registry and the tracer. \p ScopeName must be a
/// string literal.
class PerfScope {
  PerfCounters &PC;
  const char *Name;
  uint32_t Tid;
  PerfSample Begin;
  uint64_t TraceTs = 0;
  bool TraceArmed = false;

public:
  /// Profiles with \p Counters (reuse one PerfCounters across scopes on the
  /// same thread — opening the group is the expensive part).
  PerfScope(PerfCounters &Counters, const char *ScopeName, uint32_t TidIn = 0);
  ~PerfScope();

  PerfScope(const PerfScope &) = delete;
  PerfScope &operator=(const PerfScope &) = delete;
};

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_PERFCOUNTERS_H

//===- obs/Progress.cpp - Heartbeat progress sampler -----------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "obs/Progress.h"

#include "obs/Metrics.h"

#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

using namespace light;
using namespace light::obs;

uint64_t light::obs::currentRssBytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Size = 0, Resident = 0;
  int Got = std::fscanf(F, "%llu %llu", &Size, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0;
  long Page = ::sysconf(_SC_PAGESIZE);
  return Resident * static_cast<uint64_t>(Page > 0 ? Page : 4096);
#else
  return 0;
#endif
}

ProgressSampler::ProgressSampler(ProgressOptions O) : Opts(std::move(O)) {
  if (!Opts.Sink)
    Opts.Sink = stderr;
  if (Opts.IntervalSeconds <= 0)
    Opts.IntervalSeconds = 1.0;
  Last.assign(Opts.Watch.size(), 0);
}

ProgressSampler::~ProgressSampler() { stop(); }

void ProgressSampler::start() {
  if (Worker.joinable())
    return;
  {
    std::lock_guard<std::mutex> Guard(M);
    StopRequested = false;
  }
  Epoch = std::chrono::steady_clock::now();
  LastElapsed = 0;
  Worker = std::thread([this] { run(); });
}

void ProgressSampler::stop() {
  if (!Worker.joinable())
    return;
  {
    std::lock_guard<std::mutex> Guard(M);
    StopRequested = true;
  }
  Cv.notify_all();
  Worker.join();
  // Final heartbeat: short runs get at least one line, and the metrics
  // file on disk ends exactly at the run's last state.
  tick();
}

void ProgressSampler::run() {
  std::unique_lock<std::mutex> Guard(M);
  auto Interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(Opts.IntervalSeconds));
  while (!StopRequested) {
    if (Cv.wait_for(Guard, Interval, [this] { return StopRequested; }))
      break;
    Guard.unlock();
    tick();
    Guard.lock();
  }
}

void ProgressSampler::tick() {
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Epoch)
                       .count();
  uint64_t Rss = currentRssBytes();

  Registry &Reg = Registry::global();
  Reg.counter("obs.progress.ticks").add(1);
  Reg.gauge("obs.progress.rss_bytes").set(static_cast<int64_t>(Rss));
  Snapshot Snap = Reg.snapshot();

  std::string Line;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "[progress] %s t=%.1fs rss=%.1fMB",
                Opts.Label.c_str(), Elapsed, Rss / (1024.0 * 1024.0));
  Line += Buf;
  double Dt = Elapsed - LastElapsed;
  for (size_t I = 0; I < Opts.Watch.size(); ++I) {
    uint64_t V = Snap.counter(Opts.Watch[I]);
    if (V == 0)
      continue;
    uint64_t Delta = V >= Last[I] ? V - Last[I] : 0;
    if (Dt > 1e-9 && Delta)
      std::snprintf(Buf, sizeof(Buf), " %s=%llu (+%.0f/s)",
                    Opts.Watch[I].c_str(), static_cast<unsigned long long>(V),
                    Delta / Dt);
    else
      std::snprintf(Buf, sizeof(Buf), " %s=%llu", Opts.Watch[I].c_str(),
                    static_cast<unsigned long long>(V));
    Line += Buf;
    Last[I] = V;
  }
  LastElapsed = Elapsed;
  std::fprintf(Opts.Sink, "%s\n", Line.c_str());
  std::fflush(Opts.Sink);
  Ticks.fetch_add(1, std::memory_order_relaxed);

  if (!Opts.MetricsJsonPath.empty())
    Reg.writeJson(Opts.MetricsJsonPath);
}

//===- obs/Metrics.h - Lock-free process-wide metrics registry --*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide metrics registry behind `light-replay --metrics-json`
/// and the bench JSON reports. Three metric kinds:
///
///  * Counter — monotonically increasing. Increments go to one of a fixed
///    set of cache-line-padded shard cells selected by a thread-local shard
///    index, so the hot path is a single relaxed fetch_add on a line that is
///    (almost always) owned by the incrementing core. Values merge on
///    snapshot, mirroring how LightRecorder's own thread-local buffers merge
///    at finish() — observability follows the paper's recording cost model.
///  * Gauge — a settable signed value (last write wins).
///  * Histogram — fixed power-of-two buckets (no dynamic resizing, no locks
///    on the record path) with per-shard bucket arrays merged on snapshot.
///    Bucket i counts values in [2^(i-1), 2^i), bucket 0 counts zero.
///
/// Handles are cheap POD-like wrappers over registry-owned storage; look a
/// metric up once and keep the handle. The registry itself is append-only
/// (metrics are never unregistered); registration and snapshot take a lock,
/// the update paths never do.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_OBS_METRICS_H
#define LIGHT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace light {
namespace obs {

/// Number of shard cells per counter/histogram. Power of two; threads map
/// onto cells by a thread-local index, so contention only appears when more
/// than MetricShards threads update one metric simultaneously.
constexpr uint32_t MetricShards = 16;

/// Number of histogram buckets: bucket 0 holds zeros, bucket i (i >= 1)
/// holds values in [2^(i-1), 2^i), the last bucket is open-ended.
constexpr uint32_t HistogramBuckets = 44;

/// This thread's shard slot (stable for the thread's lifetime).
uint32_t shardIndex();

namespace detail {

struct alignas(64) CounterCell {
  std::atomic<uint64_t> V{0};
};

struct CounterCells {
  CounterCell Cells[MetricShards];
};

struct GaugeCell {
  std::atomic<int64_t> V{0};
};

struct alignas(64) HistogramShard {
  std::atomic<uint64_t> Buckets[HistogramBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
};

struct HistogramCells {
  HistogramShard Shards[MetricShards];
};

} // namespace detail

/// Handle to a registered counter. Default-constructed handles are inert
/// (add() is a no-op), so telemetry can be compiled in unconditionally.
class Counter {
  detail::CounterCells *C = nullptr;
  friend class Registry;

public:
  Counter() = default;

  void add(uint64_t N = 1) {
    if (C)
      C->Cells[shardIndex()].V.fetch_add(N, std::memory_order_relaxed);
  }

  /// Merged value across all shards.
  uint64_t value() const;
};

/// Handle to a registered gauge.
class Gauge {
  detail::GaugeCell *G = nullptr;
  friend class Registry;

public:
  Gauge() = default;

  void set(int64_t V) {
    if (G)
      G->V.store(V, std::memory_order_relaxed);
  }
  void add(int64_t V) {
    if (G)
      G->V.fetch_add(V, std::memory_order_relaxed);
  }
  int64_t value() const {
    return G ? G->V.load(std::memory_order_relaxed) : 0;
  }
};

/// Handle to a registered fixed-bucket histogram.
class Histogram {
  detail::HistogramCells *H = nullptr;
  friend class Registry;

public:
  Histogram() = default;

  /// Bucket index for \p V (0 for 0, otherwise 1 + floor(log2 V), capped).
  static uint32_t bucketOf(uint64_t V);

  /// Inclusive lower bound of bucket \p I.
  static uint64_t bucketLowerBound(uint32_t I);

  void record(uint64_t V) {
    if (!H)
      return;
    detail::HistogramShard &S = H->Shards[shardIndex()];
    S.Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    S.Count.fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(V, std::memory_order_relaxed);
  }
};

/// Point-in-time merged view of every registered metric.
struct Snapshot {
  struct CounterRow {
    std::string Name;
    uint64_t Value = 0;
  };
  struct GaugeRow {
    std::string Name;
    int64_t Value = 0;
  };
  struct HistogramRow {
    std::string Name;
    uint64_t Count = 0;
    uint64_t Sum = 0;
    std::vector<uint64_t> Buckets; ///< HistogramBuckets entries
  };

  std::vector<CounterRow> Counters;
  std::vector<GaugeRow> Gauges;
  std::vector<HistogramRow> Histograms;

  /// Counter value by name (0 when absent).
  uint64_t counter(std::string_view Name) const;
  /// Gauge value by name (0 when absent).
  int64_t gauge(std::string_view Name) const;
  /// Histogram row by name (nullptr when absent).
  const HistogramRow *histogram(std::string_view Name) const;

  /// Serializes the snapshot as a JSON object:
  /// {"counters":{name:value,...},"gauges":{...},
  ///  "histograms":{name:{"count":..,"sum":..,"buckets":[..]},...}}
  std::string json() const;
};

/// The metrics registry. One process-wide instance (global()); tests may
/// construct private instances.
class Registry {
  struct Impl;
  Impl *I; ///< never freed for the global instance (metrics outlive exit)

public:
  Registry();
  ~Registry();
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// The process-wide registry.
  static Registry &global();

  /// Finds or registers a metric. Handles stay valid for the registry's
  /// lifetime; repeated lookups of one name return the same storage.
  Counter counter(std::string_view Name);
  Gauge gauge(std::string_view Name);
  Histogram histogram(std::string_view Name);

  /// Merged point-in-time view of everything registered so far.
  Snapshot snapshot() const;

  /// Zeroes every value (registrations and live handles stay valid). Used
  /// by tests and by bench binaries between measurement phases.
  void reset();

  /// Writes snapshot().json() to \p Path; false on I/O failure.
  bool writeJson(const std::string &Path) const;
};

} // namespace obs
} // namespace light

#endif // LIGHT_OBS_METRICS_H

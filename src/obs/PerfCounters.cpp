//===- obs/PerfCounters.cpp - perf_event_open profiling hooks --------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfCounters.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define LIGHT_HAVE_PERF_EVENT 1
#else
#define LIGHT_HAVE_PERF_EVENT 0
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

using namespace light;
using namespace light::obs;

namespace {

uint64_t steadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Cycle counter where the architecture exposes one without a syscall;
/// 0 elsewhere (the sample's Cycles column then stays 0 in fallback mode).
uint64_t readTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t V;
  asm volatile("mrs %0, cntvct_el0" : "=r"(V));
  return V;
#else
  return 0;
#endif
}

#if LIGHT_HAVE_PERF_EVENT
int perfOpen(uint32_t Type, uint64_t Config) {
  perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.size = sizeof(Attr);
  Attr.type = Type;
  Attr.config = Config;
  Attr.disabled = 0;
  Attr.exclude_kernel = 1; // counts open without CAP_PERFMON on most hosts
  Attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, on whatever CPU it runs.
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &Attr, 0, -1, -1, 0));
}

uint64_t readFd(int Fd) {
  if (Fd < 0)
    return 0;
  uint64_t V = 0;
  if (::read(Fd, &V, sizeof(V)) != static_cast<ssize_t>(sizeof(V)))
    return 0;
  return V;
}
#endif

} // namespace

PerfSample PerfSample::delta(const PerfSample &Begin, const PerfSample &End) {
  auto Sub = [](uint64_t A, uint64_t B) { return A > B ? A - B : 0; };
  PerfSample D;
  D.Cycles = Sub(End.Cycles, Begin.Cycles);
  D.Instructions = Sub(End.Instructions, Begin.Instructions);
  D.CacheMisses = Sub(End.CacheMisses, Begin.CacheMisses);
  D.ContextSwitches = Sub(End.ContextSwitches, Begin.ContextSwitches);
  D.WallNanos = Sub(End.WallNanos, Begin.WallNanos);
  D.Hardware = End.Hardware;
  return D;
}

PerfCounters::PerfCounters() {
  openAll();
  reset();
}

PerfCounters::~PerfCounters() { closeAll(); }

void PerfCounters::openAll() {
  // Deterministic fallback for tests: the injection site fires *before* the
  // syscall so the fallback path is identical to a host without perf.
  if (fault::Injector::global().shouldFire("obs.perf_open_fail")) {
    FallbackWhy = "fault-injected (obs.perf_open_fail)";
    return;
  }
#if LIGHT_HAVE_PERF_EVENT
  Events.Cycles = perfOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (Events.Cycles < 0) {
    FallbackWhy = std::string("perf_event_open: ") + std::strerror(errno);
    return;
  }
  Events.Instructions =
      perfOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  Events.CacheMisses = perfOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  Events.ContextSwitches =
      perfOpen(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES);
  // The cycle counter is the gating event; the siblings are best-effort
  // (an FD of -1 simply reads 0).
  Hardware = true;
#else
  FallbackWhy = "perf_event_open unavailable on this platform";
#endif
}

void PerfCounters::closeAll() {
#if LIGHT_HAVE_PERF_EVENT
  for (int Fd : {Events.Cycles, Events.Instructions, Events.CacheMisses,
                 Events.ContextSwitches})
    if (Fd >= 0)
      ::close(Fd);
#endif
  Events = Fds();
}

PerfSample PerfCounters::readRaw() const {
  PerfSample S;
  S.WallNanos = steadyNanos();
  if (Hardware) {
#if LIGHT_HAVE_PERF_EVENT
    S.Cycles = readFd(Events.Cycles);
    S.Instructions = readFd(Events.Instructions);
    S.CacheMisses = readFd(Events.CacheMisses);
    S.ContextSwitches = readFd(Events.ContextSwitches);
#endif
    S.Hardware = true;
  } else {
    S.Cycles = readTsc();
  }
  return S;
}

void PerfCounters::reset() {
  PerfSample Now = readRaw();
  HwBase = Now;
  BaseWallNanos = Now.WallNanos;
  BaseTsc = Now.Cycles;
}

PerfSample PerfCounters::read() const {
  return PerfSample::delta(HwBase, readRaw());
}

// --- PerfScope ---------------------------------------------------------------

PerfScope::PerfScope(PerfCounters &Counters, const char *ScopeName,
                     uint32_t TidIn)
    : PC(Counters), Name(ScopeName), Tid(TidIn),
      TraceArmed(Tracer::global().enabled()) {
  Begin = PC.read();
  if (TraceArmed)
    TraceTs = Tracer::global().now();
}

PerfScope::~PerfScope() {
  PerfSample D = PerfSample::delta(Begin, PC.read());
  Registry &Reg = Registry::global();
  std::string Prefix = std::string("perf.") + Name;
  Reg.counter(Prefix + ".wall_ns").add(D.WallNanos);
  Reg.counter(Prefix + ".cycles").add(D.Cycles);
  if (D.Hardware) {
    Reg.counter(Prefix + ".instructions").add(D.Instructions);
    Reg.counter(Prefix + ".cache_misses").add(D.CacheMisses);
    Reg.counter(Prefix + ".context_switches").add(D.ContextSwitches);
  }
  if (TraceArmed)
    Tracer::global().complete(Name, "perf", Tid, TraceTs,
                              Tracer::global().now() - TraceTs,
                              {"cycles", D.Cycles},
                              {"instructions", D.Instructions});
}

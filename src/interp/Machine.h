//===- interp/Machine.h - The MIR concurrent interpreter --------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative interpreter for MIR programs — the stand-in for the
/// instrumented JVM in this reproduction. Every shared heap access, ghost
/// synchronization access (Section 4.3 modeling), and nondeterministic
/// syscall flows through the attached AccessHook, so the same Machine runs:
///
///   * free executions under a Scheduler (bug search / recording),
///   * directed executions under a TurnSource (replay of a solved schedule).
///
/// Heap object identities and thread ids are replay-stable (per-thread
/// allocation indices; spawn-structure thread keys), which is what makes
/// the (thread, counter) correlation of Definition 3.3 meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_INTERP_MACHINE_H
#define LIGHT_INTERP_MACHINE_H

#include "interp/Scheduler.h"
#include "mir/Program.h"
#include "mir/Value.h"
#include "runtime/AccessHook.h"
#include "runtime/MetaTable.h"
#include "runtime/ThreadRegistry.h"
#include "runtime/TurnSource.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace light {

class ChannelTransport;

/// A detected bug (Definition 3.2: use of an illegal value) or execution
/// anomaly.
struct BugReport {
  enum class Kind {
    None,
    DivideByZero,
    NullPointer,
    ArrayBounds,
    AssertionFailure,
    Deadlock,
    ReplayDivergence,
    RuntimeError,
  };

  Kind What = Kind::None;
  ThreadId Thread = 0;
  /// D(t) at the failure point — the correlation key of Definition 3.3.
  Counter AccessCount = 0;
  mir::FuncId Func = 0;
  int32_t Instr = 0;
  int64_t BugId = 0;
  /// The illegal value that was used (Theorem 1 guarantees replay
  /// reproduces exactly this value at this use).
  mir::Value Illegal;
  std::string Detail;

  bool happened() const { return What != Kind::None; }

  /// Theorem 1's correlation: same kind, same statement, same thread, same
  /// thread-local counter, same illegal value.
  bool sameAs(const BugReport &O) const {
    return What == O.What && Thread == O.Thread &&
           AccessCount == O.AccessCount && Func == O.Func &&
           Instr == O.Instr && BugId == O.BugId && Illegal == O.Illegal;
  }

  std::string str() const;
};

/// Outcome of one Machine run.
struct RunResult {
  bool Completed = false; ///< all threads finished without a bug
  BugReport Bug;
  std::vector<std::string> OutputByThread; ///< Print transcripts
  uint64_t InstructionsExecuted = 0;
  uint64_t SharedAccesses = 0;
};

/// Per-thread branch-outcome traces, the only control-flow information the
/// computation-based Clap baseline records (Section 1: "record little
/// runtime information (e.g., only branch outcomes)").
struct BranchTrace {
  std::vector<std::vector<uint8_t>> PerThread;

  void record(ThreadId T, bool Taken) {
    if (PerThread.size() <= T)
      PerThread.resize(T + 1);
    PerThread[T].push_back(Taken ? 1 : 0);
  }
};

/// The interpreter. One instance executes one run.
class Machine {
public:
  /// \p Hook receives every instrumented access; pass a NullHook for plain
  /// functional runs.
  Machine(const mir::Program &Program, AccessHook &Hook);

  /// Seeds the environment (SysRand/SysTime) generator; only meaningful for
  /// recording runs (replay substitutes logged values).
  void seedEnvironment(uint64_t Seed);

  /// Preloads recorded spawn structure for a replay run.
  void prepareReplay(const std::vector<SpawnRecord> &Spawns);

  /// Attaches a branch-outcome sink (Clap recording mode).
  void setBranchTracer(BranchTrace *Tracer) { Branches = Tracer; }

  /// Attaches a process-crossing channel transport (multi-node recording, or
  /// per-node replay with redelivered messages). Without one, channels are
  /// in-process queues and blocked endpoints are scheduler decision points;
  /// with one, delivery uses bounded retry-with-backoff and the attempt
  /// count is recorded as a syscall input. \p Node namespaces the ghost chan
  /// words (loc::chan) so merged per-node logs never alias.
  void setChannelTransport(ChannelTransport *T, uint32_t Node) {
    Transport = T;
    NodeIndex = Node;
  }

  /// Observer for shared heap writes (value-level). Used by the Clap
  /// engine's points-to oracle pass.
  class WriteObserver {
  public:
    virtual ~WriteObserver();
    virtual void onSharedWrite(LocationId L, const mir::Value &V) = 0;
  };
  void setWriteObserver(WriteObserver *Obs) { Observer = Obs; }

  /// Free run under \p Sched.
  RunResult run(Scheduler &Sched, uint64_t MaxInstructions = 100000000ull);

  /// Directed run following \p Turns (the replay phase).
  RunResult runReplay(TurnSource &Turns,
                      uint64_t MaxInstructions = 100000000ull);

  ThreadRegistry &registry() { return Registry; }

private:
  struct Frame {
    mir::FuncId Func = 0;
    int32_t PC = 0;
    mir::Reg RetReg = mir::NoReg;
    std::vector<mir::Value> Regs;
  };

  enum class TStatus : uint8_t {
    Unborn,      ///< created, has not yet issued its ghost start read
    Ready,
    BlockedLock, ///< waiting to acquire BlockObj's monitor
    Waiting,     ///< in BlockObj's wait set
    TimedWaiting, ///< in BlockObj's wait set with a deadline: always
                  ///< schedulable, so the scheduler decides notify/timeout
    Woken,       ///< consumed a notify token; must reacquire BlockObj
    BlockedJoin, ///< waiting for JoinTarget to finish
    BlockedRwRead,  ///< waiting for BlockObj's rwlock writer to release
    BlockedRwWrite, ///< waiting for BlockObj's rwlock to be free of
                    ///< readers and other writers
    BlockedBarrier, ///< arrived at BlockObj's barrier; waiting for the
                    ///< generation to turn
    BlockedSend,    ///< channel BlockChan is at capacity (in-process mode)
    BlockedRecv,    ///< channel BlockChan is empty (in-process mode)
    Finished,
  };

  struct ThreadCtx {
    ThreadId Id = 0;
    TStatus St = TStatus::Unborn;
    std::vector<Frame> Stack;
    ObjectId BlockObj;
    ThreadId JoinTarget = 0;
    uint32_t BlockChan = 0; ///< channel a BlockedSend/BlockedRecv waits on
    uint32_t SavedLockCount = 0;
    uint64_t SavedBarrierGen = 0; ///< generation observed on barrier arrival
    bool TimedOut = false;        ///< outcome of the last timed wait
    uint32_t AllocCount = 0;
    std::string Output;
  };

  struct NotifyToken {
    std::vector<ThreadId> Eligible;
  };

  struct HeapObject {
    enum class Kind : uint8_t { Plain, Array, Map } What = Kind::Plain;
    mir::ClassId Class = 0;
    std::vector<mir::Value> Fields; ///< plain fields or array elements
    std::unordered_map<int64_t, mir::Value> Map;

    // Monitor state.
    ThreadId Owner = 0;
    bool Locked = false;
    uint32_t LockCount = 0;
    std::vector<ThreadId> WaitSet;
    std::vector<NotifyToken> Tokens;

    // Read-write-lock state: one reentrant writer excludes everyone;
    // readers stack up (duplicates = reentrant read holds).
    ThreadId RwWriter = 0;
    uint32_t RwWriteCount = 0;
    std::vector<ThreadId> RwReaders;

    // Barrier state: BarrierCount arrivals this generation; the
    // Parties-th arrival bumps the generation and resets the count.
    uint32_t BarrierParties = 0;
    uint32_t BarrierCount = 0;
    uint64_t BarrierGen = 0;
  };

  /// In-process state of one message channel: a FIFO of (value, seqno)
  /// pairs. Capacity 0 means unbounded.
  struct ChannelState {
    uint64_t Capacity = 0;
    std::deque<std::pair<int64_t, uint64_t>> Queue;
    uint64_t NextSeq = 0;
  };

  const mir::Program &Prog;
  AccessHook *Hook;
  ThreadRegistry Registry;
  MetaTable Meta;

  /// Deque for reference stability: ThreadStart grows this while the parent
  /// context is live.
  std::deque<ThreadCtx> Threads;
  std::unordered_map<uint64_t, HeapObject> Heap; ///< ObjectId.pack -> object
  std::vector<mir::Value> Globals;
  std::vector<ChannelState> Chans; ///< in-process channels (no transport)
  ChannelTransport *Transport = nullptr;
  uint32_t NodeIndex = 0;

  BranchTrace *Branches = nullptr;
  WriteObserver *Observer = nullptr;
  Rng EnvRng{0x5eedull};
  uint64_t VirtualClock = 0;
  uint64_t Instructions = 0;
  uint64_t SharedAccessCount = 0;
  uint64_t MaxInstr = 0;
  uint64_t SchedPicks = 0;       ///< scheduler decisions this run
  uint64_t ContextSwitches = 0;  ///< picks that changed the running thread
  ThreadId LastPicked = 0;
  BugReport Pending;

  // --- helpers ---
  ThreadCtx &ctx(ThreadId T) { return Threads[T]; }
  HeapObject *resolve(ObjectId O);
  bool isRunnable(const ThreadCtx &C) const;
  std::vector<ThreadId> runnableThreads() const;

  /// Executes thread \p T until it completes one scheduling-relevant
  /// operation, blocks, finishes, or trips a bug. Returns false when the
  /// run must stop (bug pending or instruction budget exhausted).
  bool stepThread(ThreadCtx &C);

  /// Executes one instruction; sets \p DidSchedulingOp when the instruction
  /// was a scheduling-relevant operation. Returns false to stop the thread's
  /// current step loop (blocked / finished / bug).
  bool execInstr(ThreadCtx &C, bool &DidSchedulingOp);

  // Instrumented heap helpers.
  mir::Value readLoc(ThreadCtx &C, LocationId L, bool Shared,
                     FunctionRef<mir::Value()> Load);
  void writeLoc(ThreadCtx &C, LocationId L, bool Shared,
                FunctionRef<void()> Store);

  /// Fires the interp.thread_crash fault site (if armed): reports a
  /// RuntimeError bug simulating the thread dying mid-access and returns
  /// true; the access must then be skipped.
  bool injectThreadCrash(ThreadCtx &C);

  void bug(ThreadCtx &C, BugReport::Kind K, const mir::Instr &I,
           mir::Value Illegal, std::string Detail);

  bool acquireMonitor(ThreadCtx &C, ObjectId Obj);  ///< ghost RMW included
  void releaseMonitor(ThreadCtx &C, ObjectId Obj);  ///< ghost write included

  RunResult finishResult(bool Completed);
};

} // namespace light

#endif // LIGHT_INTERP_MACHINE_H

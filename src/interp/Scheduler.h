//===- interp/Scheduler.h - Cooperative thread schedulers -------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling policies for the cooperative MIR interpreter. The interpreter
/// consults the scheduler at every scheduling-relevant operation (shared
/// access, synchronization, syscall), realizing the nondeterministic [NoDet]
/// rule of the paper's execution model (Section 3.1). Different random seeds
/// explore different interleavings — this is how the bug harness finds the
/// buggy schedules of Section 5.3.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_INTERP_SCHEDULER_H
#define LIGHT_INTERP_SCHEDULER_H

#include "support/Random.h"
#include "trace/Ids.h"

#include <vector>

namespace light {

/// Picks which runnable thread performs the next scheduling-relevant step.
class Scheduler {
public:
  virtual ~Scheduler();

  /// \p Runnable is never empty. Returns one of its elements.
  virtual ThreadId pick(const std::vector<ThreadId> &Runnable) = 0;
};

/// Uniform random scheduling from a deterministic seed.
class RandomScheduler : public Scheduler {
  Rng R;

public:
  explicit RandomScheduler(uint64_t Seed) : R(Seed) {}
  ThreadId pick(const std::vector<ThreadId> &Runnable) override {
    return Runnable[R.below(Runnable.size())];
  }
};

/// Runs the lowest-id runnable thread until it blocks — a degenerate,
/// maximally unfair policy, useful in tests for pinning schedules.
class FifoScheduler : public Scheduler {
public:
  ThreadId pick(const std::vector<ThreadId> &Runnable) override {
    ThreadId Min = Runnable[0];
    for (ThreadId T : Runnable)
      if (T < Min)
        Min = T;
    return Min;
  }
};

/// Sticky random scheduling: keeps running the same thread for a random
/// burst before switching. Produces the long uninterleaved runs (Figure 2's
/// access pattern) that optimization O1 exploits.
class BurstScheduler : public Scheduler {
  Rng R;
  ThreadId Current = 0;
  uint32_t Remaining = 0;
  uint32_t MaxBurst;

public:
  explicit BurstScheduler(uint64_t Seed, uint32_t MaxBurstLen = 32)
      : R(Seed), MaxBurst(MaxBurstLen) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable) override {
    if (Remaining > 0)
      for (ThreadId T : Runnable)
        if (T == Current) {
          --Remaining;
          return T;
        }
    Current = Runnable[R.below(Runnable.size())];
    Remaining = static_cast<uint32_t>(R.below(MaxBurst)) + 1;
    return Current;
  }
};

} // namespace light

#endif // LIGHT_INTERP_SCHEDULER_H

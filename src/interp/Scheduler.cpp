//===- interp/Scheduler.cpp - Cooperative thread schedulers ---------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "interp/Scheduler.h"

using namespace light;

Scheduler::~Scheduler() = default;

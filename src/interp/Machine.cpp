//===- interp/Machine.cpp - The MIR concurrent interpreter ----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "interp/Machine.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/ChannelTransport.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>

using namespace light;
using namespace light::mir;

namespace {

/// Keys of map intrinsics double as element locations and must fit the
/// 20-bit element index of LocationId (see trace/Ids.h). Collisions would
/// merge distinct keys into one recorded location and break value
/// determinism, so out-of-range keys are a runtime error.
constexpr int64_t MaxMapKey = (1 << 20) - 1;

std::string bugKindName(BugReport::Kind K) {
  switch (K) {
  case BugReport::Kind::None:
    return "none";
  case BugReport::Kind::DivideByZero:
    return "divide-by-zero";
  case BugReport::Kind::NullPointer:
    return "null-pointer";
  case BugReport::Kind::ArrayBounds:
    return "array-bounds";
  case BugReport::Kind::AssertionFailure:
    return "assertion-failure";
  case BugReport::Kind::Deadlock:
    return "deadlock";
  case BugReport::Kind::ReplayDivergence:
    return "replay-divergence";
  case BugReport::Kind::RuntimeError:
    return "runtime-error";
  }
  return "?";
}

} // namespace

std::string BugReport::str() const {
  if (!happened())
    return "no bug";
  return bugKindName(What) + " in f" + std::to_string(Func) + "@" +
         std::to_string(Instr) + " thread t" + std::to_string(Thread) +
         " D(t)=" + std::to_string(AccessCount) + " bugId=" +
         std::to_string(BugId) + " illegal=" + Illegal.str() +
         (Detail.empty() ? "" : (" (" + Detail + ")"));
}

Machine::Machine(const Program &P, AccessHook &H) : Prog(P), Hook(&H) {
  Globals.assign(Prog.Globals.size(), Value::intVal(0));
  Chans.assign(Prog.Channels.size(), ChannelState());
}

Machine::WriteObserver::~WriteObserver() = default;

void Machine::seedEnvironment(uint64_t Seed) { EnvRng.reseed(Seed); }

void Machine::prepareReplay(const std::vector<SpawnRecord> &Spawns) {
  Registry.loadForReplay(Spawns);
}

Machine::HeapObject *Machine::resolve(ObjectId O) {
  auto It = Heap.find(O.pack());
  return It == Heap.end() ? nullptr : &It->second;
}

bool Machine::isRunnable(const ThreadCtx &C) const {
  switch (C.St) {
  case TStatus::Unborn:
  case TStatus::Ready:
    return true;
  case TStatus::Finished:
    return false;
  case TStatus::BlockedLock: {
    auto It = Heap.find(C.BlockObj.pack());
    if (It == Heap.end())
      return false;
    return !It->second.Locked || It->second.Owner == C.Id;
  }
  case TStatus::Waiting: {
    auto It = Heap.find(C.BlockObj.pack());
    if (It == Heap.end())
      return false;
    for (const NotifyToken &Tok : It->second.Tokens)
      if (std::find(Tok.Eligible.begin(), Tok.Eligible.end(), C.Id) !=
          Tok.Eligible.end())
        return true;
    return false;
  }
  case TStatus::TimedWaiting:
    // Always schedulable: stepping the thread either consumes an eligible
    // notify token or fires the timeout, so both arms are decision points
    // the scheduler (and exploration) can choose between.
    return true;
  case TStatus::BlockedRwRead: {
    auto It = Heap.find(C.BlockObj.pack());
    if (It == Heap.end())
      return false;
    const HeapObject &O = It->second;
    return O.RwWriteCount == 0 || O.RwWriter == C.Id;
  }
  case TStatus::BlockedRwWrite: {
    auto It = Heap.find(C.BlockObj.pack());
    if (It == Heap.end())
      return false;
    const HeapObject &O = It->second;
    if (O.RwWriteCount && O.RwWriter != C.Id)
      return false;
    for (ThreadId R : O.RwReaders)
      if (R != C.Id)
        return false; // sole-reader upgrade is allowed; others must drain
    return true;
  }
  case TStatus::BlockedBarrier: {
    auto It = Heap.find(C.BlockObj.pack());
    if (It == Heap.end())
      return false;
    return It->second.BarrierGen != C.SavedBarrierGen;
  }
  case TStatus::BlockedSend: {
    const ChannelState &CS = Chans[C.BlockChan];
    return CS.Capacity == 0 || CS.Queue.size() < CS.Capacity;
  }
  case TStatus::BlockedRecv:
    return !Chans[C.BlockChan].Queue.empty();
  case TStatus::Woken:
    // Must reacquire the monitor.
    return !Heap.at(C.BlockObj.pack()).Locked ||
           Heap.at(C.BlockObj.pack()).Owner == C.Id;
  case TStatus::BlockedJoin:
    return C.JoinTarget < Threads.size() &&
           Threads[C.JoinTarget].St == TStatus::Finished;
  }
  return false;
}

std::vector<ThreadId> Machine::runnableThreads() const {
  std::vector<ThreadId> Out;
  for (const ThreadCtx &C : Threads)
    if (isRunnable(C))
      Out.push_back(C.Id);
  return Out;
}

void Machine::bug(ThreadCtx &C, BugReport::Kind K, const Instr &I,
                  Value Illegal, std::string Detail) {
  if (Pending.happened())
    return;
  Pending.What = K;
  Pending.Thread = C.Id;
  Pending.AccessCount = Hook->counterOf(C.Id);
  Pending.Func = C.Stack.empty() ? 0 : C.Stack.back().Func;
  Pending.Instr = C.Stack.empty() ? 0 : C.Stack.back().PC;
  Pending.Illegal = Illegal;
  Pending.Detail = std::move(Detail);
  // BugId for assertion opcodes.
  if (I.Op == Opcode::AssertTrue || I.Op == Opcode::AssertNonNull)
    Pending.BugId = I.Imm;
}

bool Machine::injectThreadCrash(ThreadCtx &C) {
  if (!fault::Injector::global().shouldFire("interp.thread_crash"))
    return false;
  // Simulated thread death mid-run: surface it as a runtime-error report
  // (never an application bug, so bug-hunting harnesses ignore it) and stop
  // the machine, like an uncaught exception killing the run.
  static const mir::Instr CrashSite;
  bug(C, BugReport::Kind::RuntimeError, CrashSite, Value(),
      "injected fault: interp.thread_crash on thread " +
          std::to_string(C.Id));
  return true;
}

Value Machine::readLoc(ThreadCtx &C, LocationId L, bool Shared,
                       FunctionRef<Value()> Load) {
  if (!Shared)
    return Load();
  if (injectThreadCrash(C))
    return Value();
  ++SharedAccessCount;
  Value V;
  Hook->onRead(C.Id, L, Meta.get(L), [&] { V = Load(); });
  return V;
}

void Machine::writeLoc(ThreadCtx &C, LocationId L, bool Shared,
                       FunctionRef<void()> Store) {
  if (!Shared) {
    Store();
    return;
  }
  if (injectThreadCrash(C))
    return;
  ++SharedAccessCount;
  Hook->onWrite(C.Id, L, Meta.get(L), Store);
}

bool Machine::acquireMonitor(ThreadCtx &C, ObjectId Obj) {
  HeapObject *O = resolve(Obj);
  assert(O && "acquireMonitor on dangling object");
  if (O->Locked && O->Owner != C.Id)
    return false;
  O->Locked = true;
  O->Owner = C.Id;
  ++O->LockCount;
  // Ghost RMW of the lock word, inside the (virtual) lock region.
  LocationId L = loc::lock(Obj);
  ++SharedAccessCount;
  Hook->onRmw(C.Id, L, Meta.get(L), [] {});
  return true;
}

void Machine::releaseMonitor(ThreadCtx &C, ObjectId Obj) {
  HeapObject *O = resolve(Obj);
  assert(O && O->Locked && O->Owner == C.Id && "invalid monitor release");
  LocationId L = loc::lock(Obj);
  ++SharedAccessCount;
  Hook->onWrite(C.Id, L, Meta.get(L), [] {});
  if (--O->LockCount == 0) {
    O->Locked = false;
    O->Owner = 0;
  }
}

bool Machine::stepThread(ThreadCtx &C) {
  // Status-machine phases that are scheduling operations by themselves.
  switch (C.St) {
  case TStatus::Unborn: {
    // The thread's first transition reads the ghost start token written by
    // its spawner (Section 4.3).
    LocationId L = loc::threadStart(C.Id);
    ++SharedAccessCount;
    Hook->onRead(C.Id, L, Meta.get(L), [] {});
    C.St = TStatus::Ready;
    return !Pending.happened();
  }
  case TStatus::Waiting: {
    HeapObject *O = resolve(C.BlockObj);
    assert(O && "wait set on dangling object");
    // Consume an eligible notify token and issue the ghost condition read
    // (the wait_after wake-up edge: notify -> wait).
    for (size_t I = 0; I < O->Tokens.size(); ++I) {
      auto &El = O->Tokens[I].Eligible;
      auto It = std::find(El.begin(), El.end(), C.Id);
      if (It == El.end())
        continue;
      O->Tokens.erase(O->Tokens.begin() + I);
      O->WaitSet.erase(
          std::find(O->WaitSet.begin(), O->WaitSet.end(), C.Id));
      LocationId L = loc::cond(C.BlockObj);
      ++SharedAccessCount;
      Hook->onRead(C.Id, L, Meta.get(L), [] {});
      C.St = TStatus::Woken;
      return !Pending.happened();
    }
    assert(false && "stepped a Waiting thread with no eligible token");
    return false;
  }
  case TStatus::TimedWaiting: {
    HeapObject *O = resolve(C.BlockObj);
    assert(O && "timed wait set on dangling object");
    // Stepping a timed waiter resolves the race between notify and the
    // deadline: consume an eligible token when one exists (the notified
    // arm), otherwise fire the timeout. Either way the thread leaves the
    // wait set, issues the ghost condition read (ordering it against
    // notify writes), and goes to Woken to reacquire the monitor.
    //
    // The arm itself is recorded as a nondeterministic input (like
    // SysTime): a notify whose ghost condition write no read sourced is a
    // blind write, unordered in the replay schedule, so during replay its
    // token can surface while this thread is still in the wait set. The
    // recorded arm keeps such a floating token from flipping a recorded
    // timeout into a wake-up (the flag is observable program state).
    size_t TokenIdx = O->Tokens.size();
    for (size_t I = 0; I < O->Tokens.size(); ++I) {
      auto &El = O->Tokens[I].Eligible;
      if (std::find(El.begin(), El.end(), C.Id) != El.end()) {
        TokenIdx = I;
        break;
      }
    }
    bool Notified = Hook->onSyscall(C.Id, [&]() -> uint64_t {
                      return TokenIdx != O->Tokens.size() ? 1 : 0;
                    }) != 0;
    if (Notified && TokenIdx != O->Tokens.size())
      O->Tokens.erase(O->Tokens.begin() + TokenIdx);
    O->WaitSet.erase(
        std::find(O->WaitSet.begin(), O->WaitSet.end(), C.Id));
    LocationId L = loc::cond(C.BlockObj);
    ++SharedAccessCount;
    Hook->onRead(C.Id, L, Meta.get(L), [] {});
    if (!Notified) {
      // The timeout arm consumes the instruction's deadline in virtual
      // time, so SysTime-visible time reflects the wait.
      const mir::Instr &WI =
          Prog.function(C.Stack.back().Func).Body[C.Stack.back().PC];
      VirtualClock += static_cast<uint64_t>(WI.Imm);
    }
    C.TimedOut = !Notified;
    C.St = TStatus::Woken;
    return !Pending.happened();
  }
  case TStatus::Woken: {
    HeapObject *O = resolve(C.BlockObj);
    if (O->Locked && O->Owner != C.Id)
      return true; // not actually runnable; caller picked wrongly
    // Reacquire with the saved reentrancy count: ghost RMW once.
    O->Locked = true;
    O->Owner = C.Id;
    O->LockCount = C.SavedLockCount;
    LocationId L = loc::lock(C.BlockObj);
    ++SharedAccessCount;
    Hook->onRmw(C.Id, L, Meta.get(L), [] {});
    const mir::Instr &WI =
        Prog.function(C.Stack.back().Func).Body[C.Stack.back().PC];
    if (WI.Op == Opcode::TimedWait)
      C.Stack.back().Regs[WI.A] = Value::intVal(C.TimedOut ? 1 : 0);
    C.St = TStatus::Ready;
    ++C.Stack.back().PC; // move past the Wait / TimedWait instruction
    return !Pending.happened();
  }
  case TStatus::BlockedBarrier: {
    HeapObject *O = resolve(C.BlockObj);
    assert(O && "barrier arrival on dangling object");
    if (O->BarrierGen == C.SavedBarrierGen)
      return true; // not actually runnable; caller picked wrongly
    // The generation turned: the ghost read sources the releasing
    // arrival's RMW, ordering this thread's release after it.
    LocationId L = loc::barrier(C.BlockObj);
    ++SharedAccessCount;
    Hook->onRead(C.Id, L, Meta.get(L), [] {});
    C.St = TStatus::Ready;
    ++C.Stack.back().PC; // move past the BarrierWait instruction
    return !Pending.happened();
  }
  case TStatus::Finished:
    return true;
  default:
    break;
  }

  // Ready / BlockedLock / BlockedJoin: run instructions until one
  // scheduling-relevant operation completes.
  bool DidSchedulingOp = false;
  while (!DidSchedulingOp) {
    if (Pending.happened())
      return false;
    if (Instructions >= MaxInstr) {
      if (!C.Stack.empty())
        bug(C, BugReport::Kind::RuntimeError,
            Prog.function(C.Stack.back().Func).Body[C.Stack.back().PC],
            Value::intVal(0), "instruction budget exhausted");
      return false;
    }
    if (!execInstr(C, DidSchedulingOp))
      return !Pending.happened();
  }
  return !Pending.happened();
}

bool Machine::execInstr(ThreadCtx &C, bool &DidSchedulingOp) {
  Frame &F = C.Stack.back();
  const Function &Fn = Prog.function(F.Func);
  assert(F.PC >= 0 && static_cast<size_t>(F.PC) < Fn.Body.size() &&
         "program counter out of range");
  const Instr &I = Fn.Body[F.PC];
  ++Instructions;

  auto Regs = [&]() -> std::vector<Value> & { return C.Stack.back().Regs; };
  auto RV = [&](Reg R) -> Value & { return Regs()[R]; };

  auto RequireInt = [&](Reg R, int64_t &Out) -> bool {
    const Value &V = RV(R);
    if (!V.isInt()) {
      bug(C, BugReport::Kind::RuntimeError, I, V, "expected an integer");
      return false;
    }
    Out = V.Int;
    return true;
  };

  auto RequireObject = [&](Reg R, ObjectId &Obj,
                           HeapObject *&O) -> bool {
    const Value &V = RV(R);
    if (!V.isRef() || V.isNull()) {
      bug(C, BugReport::Kind::NullPointer, I, V,
          V.isRef() ? "null dereference" : "non-reference dereference");
      return false;
    }
    Obj = V.Ref;
    O = resolve(Obj);
    if (!O) {
      bug(C, BugReport::Kind::RuntimeError, I, V, "dangling reference");
      return false;
    }
    return true;
  };

  switch (I.Op) {
  case Opcode::Nop:
    ++F.PC;
    return true;
  case Opcode::ConstInt:
    RV(I.A) = Value::intVal(I.Imm);
    ++F.PC;
    return true;
  case Opcode::ConstNull:
    RV(I.A) = Value::null();
    ++F.PC;
    return true;
  case Opcode::Move:
    RV(I.A) = RV(I.B);
    ++F.PC;
    return true;

  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::CmpLt:
  case Opcode::CmpLe: {
    int64_t L, R;
    if (!RequireInt(I.B, L) || !RequireInt(I.C, R))
      return false;
    int64_t Out = 0;
    switch (I.Op) {
    case Opcode::Add:
      Out = L + R;
      break;
    case Opcode::Sub:
      Out = L - R;
      break;
    case Opcode::Mul:
      Out = L * R;
      break;
    case Opcode::Div:
    case Opcode::Mod:
      if (R == 0) {
        // Definition 3.2's canonical illegal-value bug.
        bug(C, BugReport::Kind::DivideByZero, I, Value::intVal(R),
            "division by zero");
        return false;
      }
      Out = I.Op == Opcode::Div ? L / R : L % R;
      break;
    case Opcode::CmpLt:
      Out = L < R;
      break;
    case Opcode::CmpLe:
      Out = L <= R;
      break;
    default:
      break;
    }
    RV(I.A) = Value::intVal(Out);
    ++F.PC;
    return true;
  }

  case Opcode::CmpEq:
    RV(I.A) = Value::intVal(RV(I.B) == RV(I.C));
    ++F.PC;
    return true;
  case Opcode::CmpNe:
    RV(I.A) = Value::intVal(RV(I.B) != RV(I.C));
    ++F.PC;
    return true;
  case Opcode::Not:
    RV(I.A) = Value::intVal(!RV(I.B).truthy());
    ++F.PC;
    return true;

  case Opcode::Jmp:
    F.PC = I.Target;
    return true;
  case Opcode::Br: {
    bool Taken = RV(I.A).truthy();
    if (Branches)
      Branches->record(C.Id, Taken);
    F.PC = Taken ? I.Target : I.Target2;
    return true;
  }

  case Opcode::Call: {
    const Function &Callee = Prog.function(static_cast<FuncId>(I.Imm));
    Frame NF;
    NF.Func = static_cast<FuncId>(I.Imm);
    NF.PC = 0;
    NF.RetReg = I.A;
    NF.Regs.assign(Callee.NumRegs, Value::intVal(0));
    for (size_t P = 0; P < I.Args.size(); ++P)
      NF.Regs[P] = RV(I.Args[P]);
    ++F.PC; // return address
    C.Stack.push_back(std::move(NF));
    return true;
  }

  case Opcode::Ret: {
    Value Result = I.A == NoReg ? Value::intVal(0) : RV(I.A);
    Reg RetTo = F.RetReg;
    C.Stack.pop_back();
    if (C.Stack.empty()) {
      // Thread termination: ghost write of the termination token.
      LocationId L = loc::threadTerm(C.Id);
      ++SharedAccessCount;
      Hook->onWrite(C.Id, L, Meta.get(L), [] {});
      Hook->onThreadFinish(C.Id);
      C.St = TStatus::Finished;
      DidSchedulingOp = true;
      return false;
    }
    if (RetTo != NoReg)
      C.Stack.back().Regs[RetTo] = Result;
    return true;
  }

  case Opcode::New: {
    HeapObject O;
    O.What = HeapObject::Kind::Plain;
    O.Class = static_cast<ClassId>(I.Imm);
    O.Fields.assign(Prog.classDef(O.Class).numFields(), Value::intVal(0));
    ObjectId Id(C.Id, ++C.AllocCount);
    Heap.emplace(Id.pack(), std::move(O));
    RV(I.A) = Value::ref(Id);
    ++F.PC;
    return true;
  }

  case Opcode::NewArray: {
    int64_t Len;
    if (!RequireInt(I.B, Len))
      return false;
    if (Len < 0 || Len > MaxMapKey) {
      bug(C, BugReport::Kind::RuntimeError, I, Value::intVal(Len),
          "invalid array length");
      return false;
    }
    HeapObject O;
    O.What = HeapObject::Kind::Array;
    O.Fields.assign(static_cast<size_t>(Len), Value::intVal(0));
    ObjectId Id(C.Id, ++C.AllocCount);
    Heap.emplace(Id.pack(), std::move(O));
    RV(I.A) = Value::ref(Id);
    ++F.PC;
    return true;
  }

  case Opcode::MapNew: {
    HeapObject O;
    O.What = HeapObject::Kind::Map;
    ObjectId Id(C.Id, ++C.AllocCount);
    Heap.emplace(Id.pack(), std::move(O));
    RV(I.A) = Value::ref(Id);
    ++F.PC;
    return true;
  }

  case Opcode::GetField: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.B, Obj, O))
      return false;
    uint32_t Field = static_cast<uint32_t>(I.Imm);
    assert(Field < O->Fields.size() && "field index out of range");
    RV(I.A) = readLoc(C, loc::field(Obj, Field), I.SharedAccess,
                      [&]() -> Value { return O->Fields[Field]; });
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::PutField: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    uint32_t Field = static_cast<uint32_t>(I.Imm);
    assert(Field < O->Fields.size() && "field index out of range");
    Value V = RV(I.B);
    if (Observer && I.SharedAccess)
      Observer->onSharedWrite(loc::field(Obj, Field), V);
    writeLoc(C, loc::field(Obj, Field), I.SharedAccess,
             [&] { O->Fields[Field] = V; });
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::GetGlobal: {
    uint32_t G = static_cast<uint32_t>(I.Imm);
    RV(I.A) = readLoc(C, loc::var(G), I.SharedAccess,
                      [&]() -> Value { return Globals[G]; });
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::PutGlobal: {
    uint32_t G = static_cast<uint32_t>(I.Imm);
    Value V = RV(I.A);
    if (Observer && I.SharedAccess)
      Observer->onSharedWrite(loc::var(G), V);
    writeLoc(C, loc::var(G), I.SharedAccess, [&] { Globals[G] = V; });
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::ALoad:
  case Opcode::AStore: {
    ObjectId Obj;
    HeapObject *O;
    Reg ArrReg = I.Op == Opcode::ALoad ? I.B : I.A;
    if (!RequireObject(ArrReg, Obj, O))
      return false;
    int64_t Idx;
    if (!RequireInt(I.Op == Opcode::ALoad ? I.C : I.B, Idx))
      return false;
    if (Idx < 0 || static_cast<size_t>(Idx) >= O->Fields.size()) {
      bug(C, BugReport::Kind::ArrayBounds, I, Value::intVal(Idx),
          "array index out of bounds");
      return false;
    }
    LocationId L = loc::arrayElem(Obj, static_cast<uint32_t>(Idx));
    if (I.Op == Opcode::ALoad) {
      RV(I.A) = readLoc(C, L, I.SharedAccess,
                        [&]() -> Value { return O->Fields[Idx]; });
    } else {
      Value V = RV(I.C);
      if (Observer && I.SharedAccess)
        Observer->onSharedWrite(L, V);
      writeLoc(C, L, I.SharedAccess, [&] { O->Fields[Idx] = V; });
    }
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::ArrayLen: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.B, Obj, O))
      return false;
    RV(I.A) = Value::intVal(static_cast<int64_t>(O->Fields.size()));
    ++F.PC;
    return true;
  }

  case Opcode::MapPut:
  case Opcode::MapGet:
  case Opcode::MapContains:
  case Opcode::MapRemove: {
    Reg MapReg = I.Op == Opcode::MapGet || I.Op == Opcode::MapContains ? I.B
                                                                       : I.A;
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(MapReg, Obj, O))
      return false;
    Reg KeyReg = I.Op == Opcode::MapPut ? I.B
                 : I.Op == Opcode::MapRemove ? I.B
                                             : I.C;
    int64_t Key;
    if (!RequireInt(KeyReg, Key))
      return false;
    if (Key < 0 || Key > MaxMapKey) {
      bug(C, BugReport::Kind::RuntimeError, I, Value::intVal(Key),
          "map key outside the recordable range");
      return false;
    }
    LocationId L = loc::arrayElem(Obj, static_cast<uint32_t>(Key));
    switch (I.Op) {
    case Opcode::MapPut: {
      Value V = RV(I.C);
      if (Observer && I.SharedAccess)
        Observer->onSharedWrite(L, V);
      writeLoc(C, L, I.SharedAccess, [&] { O->Map[Key] = V; });
      break;
    }
    case Opcode::MapGet:
      RV(I.A) = readLoc(C, L, I.SharedAccess, [&]() -> Value {
        auto It = O->Map.find(Key);
        return It == O->Map.end() ? Value::null() : It->second;
      });
      break;
    case Opcode::MapContains:
      RV(I.A) = readLoc(C, L, I.SharedAccess, [&]() -> Value {
        return Value::intVal(O->Map.count(Key) != 0);
      });
      break;
    case Opcode::MapRemove:
      writeLoc(C, L, I.SharedAccess, [&] { O->Map.erase(Key); });
      break;
    default:
      break;
    }
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::MonitorEnter: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    if (O->Locked && O->Owner != C.Id) {
      C.St = TStatus::BlockedLock;
      C.BlockObj = Obj;
      return false; // yield; instruction retried once the lock frees up
    }
    if (C.St == TStatus::BlockedLock)
      C.St = TStatus::Ready;
    acquireMonitor(C, Obj);
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::MonitorExit: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    if (!O->Locked || O->Owner != C.Id) {
      bug(C, BugReport::Kind::RuntimeError, I, RV(I.A),
          "monitor exit without ownership");
      return false;
    }
    releaseMonitor(C, Obj);
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::Wait: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    if (!O->Locked || O->Owner != C.Id) {
      bug(C, BugReport::Kind::RuntimeError, I, RV(I.A),
          "wait without monitor ownership");
      return false;
    }
    // wait_before (Section 4.3): release the monitor entirely; the ghost
    // release write carries the happens-before edge.
    C.SavedLockCount = O->LockCount;
    LocationId L = loc::lock(Obj);
    ++SharedAccessCount;
    Hook->onWrite(C.Id, L, Meta.get(L), [] {});
    O->LockCount = 0;
    O->Locked = false;
    O->Owner = 0;
    O->WaitSet.push_back(C.Id);
    C.BlockObj = Obj;
    C.St = TStatus::Waiting;
    DidSchedulingOp = true;
    return false; // PC advances when the wake-up completes (Woken phase)
  }

  case Opcode::Notify:
  case Opcode::NotifyAll: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    if (!O->Locked || O->Owner != C.Id) {
      bug(C, BugReport::Kind::RuntimeError, I, RV(I.A),
          "notify without monitor ownership");
      return false;
    }
    // Ghost write of the condition word: the notify side of the recorded
    // notify -> wait order.
    LocationId L = loc::cond(Obj);
    ++SharedAccessCount;
    Hook->onWrite(C.Id, L, Meta.get(L), [] {});
    if (!O->WaitSet.empty()) {
      if (I.Op == Opcode::Notify) {
        O->Tokens.push_back({O->WaitSet});
      } else {
        for (ThreadId W : O->WaitSet)
          O->Tokens.push_back({{W}});
      }
    }
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::RwRdLock: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    if (O->RwWriteCount && O->RwWriter != C.Id) {
      C.St = TStatus::BlockedRwRead;
      C.BlockObj = Obj;
      return false; // retried once the writer releases
    }
    if (C.St == TStatus::BlockedRwRead)
      C.St = TStatus::Ready;
    O->RwReaders.push_back(C.Id);
    // Reader critical sections are Read spans over the rwlock word: R1
    // lets concurrent readers interleave freely, while R2 orders every
    // reader block against the next writer's ghost RMW.
    LocationId L = loc::rwlock(Obj);
    ++SharedAccessCount;
    Hook->onRead(C.Id, L, Meta.get(L), [] {});
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::RwRdUnlock: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    auto It = std::find(O->RwReaders.begin(), O->RwReaders.end(), C.Id);
    if (It == O->RwReaders.end()) {
      bug(C, BugReport::Kind::RuntimeError, I, RV(I.A),
          "read-unlock without a read hold");
      return false;
    }
    O->RwReaders.erase(It);
    // Closing read of the reader span: keeps the whole read-side critical
    // section inside one Read span of the last writer release.
    LocationId L = loc::rwlock(Obj);
    ++SharedAccessCount;
    Hook->onRead(C.Id, L, Meta.get(L), [] {});
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::RwWrLock: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    bool OtherWriter = O->RwWriteCount && O->RwWriter != C.Id;
    bool OtherReader = false;
    for (ThreadId R : O->RwReaders)
      if (R != C.Id)
        OtherReader = true;
    if (OtherWriter || OtherReader) {
      C.St = TStatus::BlockedRwWrite;
      C.BlockObj = Obj;
      return false; // retried once readers drain and the writer releases
    }
    if (C.St == TStatus::BlockedRwWrite)
      C.St = TStatus::Ready;
    O->RwWriter = C.Id;
    ++O->RwWriteCount;
    // Writer acquisition is a ghost RMW: it reads the previous release
    // (or the reader block) and writes the new ownership epoch.
    LocationId L = loc::rwlock(Obj);
    ++SharedAccessCount;
    Hook->onRmw(C.Id, L, Meta.get(L), [] {});
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::RwWrUnlock: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    if (!O->RwWriteCount || O->RwWriter != C.Id) {
      bug(C, BugReport::Kind::RuntimeError, I, RV(I.A),
          "write-unlock without write ownership");
      return false;
    }
    if (--O->RwWriteCount == 0)
      O->RwWriter = 0;
    // Ghost release write: the span every subsequent reader block sources.
    LocationId L = loc::rwlock(Obj);
    ++SharedAccessCount;
    Hook->onWrite(C.Id, L, Meta.get(L), [] {});
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::BarrierInit: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    O->BarrierParties = static_cast<uint32_t>(I.Imm);
    O->BarrierCount = 0;
    O->BarrierGen = 0;
    // Ghost write: initialization happens-before every arrival.
    LocationId L = loc::barrier(Obj);
    ++SharedAccessCount;
    Hook->onWrite(C.Id, L, Meta.get(L), [] {});
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::BarrierWait: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.A, Obj, O))
      return false;
    if (!O->BarrierParties) {
      bug(C, BugReport::Kind::RuntimeError, I, RV(I.A),
          "barrier wait before initialization");
      return false;
    }
    // Arrival: ghost RMW chains this arrival after the previous one (and
    // after the blocked threads' release reads of earlier generations).
    LocationId L = loc::barrier(Obj);
    ++SharedAccessCount;
    Hook->onRmw(C.Id, L, Meta.get(L), [] {});
    if (++O->BarrierCount == O->BarrierParties) {
      // Last arrival releases the generation and proceeds immediately.
      O->BarrierCount = 0;
      ++O->BarrierGen;
      DidSchedulingOp = true;
      ++F.PC;
      return true;
    }
    C.SavedBarrierGen = O->BarrierGen;
    C.BlockObj = Obj;
    C.St = TStatus::BlockedBarrier;
    DidSchedulingOp = true;
    return false; // PC advances in the BlockedBarrier release phase
  }

  case Opcode::TimedWait: {
    ObjectId Obj;
    HeapObject *O;
    if (!RequireObject(I.B, Obj, O))
      return false;
    if (!O->Locked || O->Owner != C.Id) {
      bug(C, BugReport::Kind::RuntimeError, I, RV(I.B),
          "timed wait without monitor ownership");
      return false;
    }
    // Like Wait: release the monitor entirely; the ghost release write
    // carries the happens-before edge. The thread parks as TimedWaiting,
    // which stays schedulable — the scheduler decides notify vs timeout.
    C.SavedLockCount = O->LockCount;
    LocationId L = loc::lock(Obj);
    ++SharedAccessCount;
    Hook->onWrite(C.Id, L, Meta.get(L), [] {});
    O->LockCount = 0;
    O->Locked = false;
    O->Owner = 0;
    O->WaitSet.push_back(C.Id);
    C.BlockObj = Obj;
    C.St = TStatus::TimedWaiting;
    DidSchedulingOp = true;
    return false; // PC advances when the wake-up completes (Woken phase)
  }

  case Opcode::AtomicCas: {
    uint32_t G = static_cast<uint32_t>(I.Imm);
    Value Expected = RV(I.B), Desired = RV(I.C);
    bool Success = false;
    if (!I.SharedAccess) {
      Success = Globals[G] == Expected;
      if (Success)
        Globals[G] = Desired;
    } else {
      if (injectThreadCrash(C))
        return false;
      ++SharedAccessCount;
      // One read+write flow dependence regardless of the outcome: a failed
      // CAS still read the cell, and recording it as an RMW keeps the
      // ordering conservative (and value-deterministic) for both arms.
      LocationId L = loc::var(G);
      Hook->onRmw(C.Id, L, Meta.get(L), [&] {
        Success = Globals[G] == Expected;
        if (Success)
          Globals[G] = Desired;
      });
      if (Observer && Success)
        Observer->onSharedWrite(L, Desired);
    }
    RV(I.A) = Value::intVal(Success);
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::AtomicXchg: {
    uint32_t G = static_cast<uint32_t>(I.Imm);
    Value Desired = RV(I.B);
    Value Old;
    if (!I.SharedAccess) {
      Old = Globals[G];
      Globals[G] = Desired;
    } else {
      if (injectThreadCrash(C))
        return false;
      ++SharedAccessCount;
      LocationId L = loc::var(G);
      Hook->onRmw(C.Id, L, Meta.get(L), [&] {
        Old = Globals[G];
        Globals[G] = Desired;
      });
      if (Observer)
        Observer->onSharedWrite(L, Desired);
    }
    RV(I.A) = Old;
    DidSchedulingOp = I.SharedAccess;
    ++F.PC;
    return true;
  }

  case Opcode::ChanMake: {
    int64_t Cap;
    if (!RequireInt(I.A, Cap))
      return false;
    if (Cap < 0) {
      bug(C, BugReport::Kind::RuntimeError, I, Value::intVal(Cap),
          "negative channel capacity");
      return false;
    }
    uint32_t Ch = static_cast<uint32_t>(I.Imm);
    Chans[Ch].Capacity = static_cast<uint64_t>(Cap);
    if (Transport)
      Transport->setCapacity(Ch, static_cast<uint64_t>(Cap));
    if (injectThreadCrash(C))
      return false;
    // Ghost write: the capacity set happens-before every endpoint op.
    LocationId L = loc::chan(Ch, NodeIndex);
    ++SharedAccessCount;
    Hook->onWrite(C.Id, L, Meta.get(L), [] {});
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::ChanSend: {
    int64_t Val;
    if (!RequireInt(I.A, Val))
      return false;
    uint32_t Ch = static_cast<uint32_t>(I.Imm);
    uint64_t Seq = 0;
    if (Transport) {
      if (injectThreadCrash(C))
        return false;
      // Process-crossing delivery: bounded retry-with-backoff, the attempt
      // count recorded as a syscall input so replay matches the recorded
      // run attempt-for-attempt (the lambda is skipped under substitution
      // and the replay transport accepts directly).
      bool Accepted = false, LiveRan = false;
      Hook->onSyscall(C.Id, [&]() -> uint64_t {
        LiveRan = true;
        uint64_t N = 0;
        while (true) {
          if (Transport->trySend(C.Id, Ch, Val, Seq)) {
            Accepted = true;
            break;
          }
          if (++N > MaxChanAttempts)
            break;
          Transport->backoff(N);
        }
        return N;
      });
      if (!LiveRan)
        Accepted = Transport->trySend(C.Id, Ch, Val, Seq);
      if (!Accepted) {
        bug(C, BugReport::Kind::RuntimeError, I, Value::intVal(Val),
            "channel " + std::to_string(Ch) +
                " still full after bounded retry");
        return false;
      }
      LocationId L = loc::chan(Ch, NodeIndex);
      ++SharedAccessCount;
      Hook->onRmw(C.Id, L, Meta.get(L), [] {});
      Hook->onMessage(C.Id, Ch, Seq, Val, /*IsSend=*/true);
      DidSchedulingOp = true;
      ++F.PC;
      return true;
    }
    // In-process channel: a full channel parks the sender as a scheduler
    // decision point, like a contended monitor.
    ChannelState &CS = Chans[Ch];
    if (CS.Capacity && CS.Queue.size() >= CS.Capacity) {
      C.St = TStatus::BlockedSend;
      C.BlockChan = Ch;
      return false; // retried when the channel drains
    }
    if (C.St == TStatus::BlockedSend)
      C.St = TStatus::Ready;
    if (injectThreadCrash(C))
      return false;
    Seq = CS.NextSeq++;
    // Ghost RMW of the chan word: chains this send after every earlier
    // endpoint op, so the matching recv's RMW is an ordinary recorded flow
    // dependence (Eq. 1 needs no new constraint forms).
    LocationId L = loc::chan(Ch, NodeIndex);
    ++SharedAccessCount;
    Hook->onRmw(C.Id, L, Meta.get(L),
                [&] { CS.Queue.push_back({Val, Seq}); });
    Hook->onMessage(C.Id, Ch, Seq, Val, /*IsSend=*/true);
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::ChanRecv: {
    uint32_t Ch = static_cast<uint32_t>(I.Imm);
    int64_t Val = 0;
    uint64_t Seq = 0;
    if (Transport) {
      if (injectThreadCrash(C))
        return false;
      bool Got = false, LiveRan = false;
      Hook->onSyscall(C.Id, [&]() -> uint64_t {
        LiveRan = true;
        uint64_t N = 0;
        while (true) {
          if (Transport->tryRecv(C.Id, Ch, Val, Seq)) {
            Got = true;
            break;
          }
          if (++N > MaxChanAttempts)
            break;
          Transport->backoff(N);
        }
        return N;
      });
      if (!LiveRan)
        Got = Transport->tryRecv(C.Id, Ch, Val, Seq);
      if (!Got) {
        // A survivable failure edge, not an assertion: a lost message (or a
        // dead peer) starves the receiver after the bounded retry budget.
        bug(C, BugReport::Kind::RuntimeError, I, Value::intVal(0),
            "channel " + std::to_string(Ch) +
                " starved after bounded retry");
        return false;
      }
      LocationId L = loc::chan(Ch, NodeIndex);
      ++SharedAccessCount;
      Hook->onRmw(C.Id, L, Meta.get(L), [] {});
      RV(I.A) = Value::intVal(Val);
      Hook->onMessage(C.Id, Ch, Seq, Val, /*IsSend=*/false);
      DidSchedulingOp = true;
      ++F.PC;
      return true;
    }
    ChannelState &CS = Chans[Ch];
    if (CS.Queue.empty()) {
      C.St = TStatus::BlockedRecv;
      C.BlockChan = Ch;
      return false; // retried when a message arrives
    }
    if (C.St == TStatus::BlockedRecv)
      C.St = TStatus::Ready;
    if (injectThreadCrash(C))
      return false;
    // Ghost RMW whose read sources the matching send's RMW — the recorded
    // send->recv flow dependence.
    LocationId L = loc::chan(Ch, NodeIndex);
    ++SharedAccessCount;
    Hook->onRmw(C.Id, L, Meta.get(L), [&] {
      Val = CS.Queue.front().first;
      Seq = CS.Queue.front().second;
      CS.Queue.pop_front();
    });
    RV(I.A) = Value::intVal(Val);
    Hook->onMessage(C.Id, Ch, Seq, Val, /*IsSend=*/false);
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::ChanTryRecv: {
    uint32_t Ch = static_cast<uint32_t>(I.Imm);
    int64_t Val = 0;
    uint64_t Seq = 0;
    if (injectThreadCrash(C))
      return false;
    bool Got = false;
    if (Transport) {
      // Single attempt; the got/empty arm is recorded as an input (the
      // timed-wait mechanism), so a message that arrives at a different
      // moment during replay cannot flip a recorded empty poll.
      bool LiveRan = false;
      uint64_t Arm = Hook->onSyscall(C.Id, [&]() -> uint64_t {
        LiveRan = true;
        Got = Transport->tryRecv(C.Id, Ch, Val, Seq);
        return Got ? 1 : 0;
      });
      if (!LiveRan && Arm != 0)
        Got = Transport->tryRecv(C.Id, Ch, Val, Seq);
      LocationId L = loc::chan(Ch, NodeIndex);
      ++SharedAccessCount;
      Hook->onRmw(C.Id, L, Meta.get(L), [] {});
      if (Got)
        Hook->onMessage(C.Id, Ch, Seq, Val, /*IsSend=*/false);
    } else {
      ChannelState &CS = Chans[Ch];
      Got = Hook->onSyscall(C.Id, [&]() -> uint64_t {
              return CS.Queue.empty() ? 0 : 1;
            }) != 0;
      if (Got && CS.Queue.empty()) {
        bug(C, BugReport::Kind::ReplayDivergence, I, Value::intVal(0),
            "recorded tryrecv arm found channel " + std::to_string(Ch) +
                " empty");
        return false;
      }
      // Conservative ghost RMW on both arms (like a failed CAS): the empty
      // poll still ordered itself against the channel's endpoint chain.
      LocationId L = loc::chan(Ch, NodeIndex);
      ++SharedAccessCount;
      Hook->onRmw(C.Id, L, Meta.get(L), [&] {
        if (Got) {
          Val = CS.Queue.front().first;
          Seq = CS.Queue.front().second;
          CS.Queue.pop_front();
        }
      });
      if (Got)
        Hook->onMessage(C.Id, Ch, Seq, Val, /*IsSend=*/false);
    }
    RV(I.A) = Value::intVal(Got ? 1 : 0);
    RV(I.B) = Value::intVal(Got ? Val : 0);
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::ThreadStart: {
    ThreadId Child = Registry.registerSpawn(C.Id);
    if (Child == 0) {
      bug(C, BugReport::Kind::ReplayDivergence, I, Value::intVal(0),
          "spawn structure diverged from the recording");
      return false;
    }
    const Function &Entry = Prog.function(static_cast<FuncId>(I.Imm));
    if (Threads.size() <= Child)
      Threads.resize(Child + 1);
    ThreadCtx &CC = Threads[Child];
    CC.Id = Child;
    CC.St = TStatus::Unborn;
    Frame NF;
    NF.Func = static_cast<FuncId>(I.Imm);
    NF.PC = 0;
    NF.Regs.assign(Entry.NumRegs, Value::intVal(0));
    if (Entry.NumParams == 1)
      NF.Regs[0] = RV(I.B);
    CC.Stack.push_back(std::move(NF));
    // Ghost start token write by the spawner (Section 4.3).
    LocationId L = loc::threadStart(Child);
    ++SharedAccessCount;
    Hook->onWrite(C.Id, L, Meta.get(L), [] {});
    RV(I.A) = Value::intVal(Child);
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::ThreadJoin: {
    int64_t Target;
    if (!RequireInt(I.A, Target))
      return false;
    if (Target <= 0 || static_cast<size_t>(Target) >= Threads.size()) {
      bug(C, BugReport::Kind::RuntimeError, I, Value::intVal(Target),
          "join of unknown thread");
      return false;
    }
    ThreadId TT = static_cast<ThreadId>(Target);
    if (Threads[TT].St != TStatus::Finished) {
      C.St = TStatus::BlockedJoin;
      C.JoinTarget = TT;
      return false; // retried once the target finishes
    }
    if (C.St == TStatus::BlockedJoin)
      C.St = TStatus::Ready;
    // Ghost read of the termination token: join's happens-before edge.
    LocationId L = loc::threadTerm(TT);
    ++SharedAccessCount;
    Hook->onRead(C.Id, L, Meta.get(L), [] {});
    DidSchedulingOp = true;
    ++F.PC;
    return true;
  }

  case Opcode::AssertTrue: {
    if (!RV(I.A).truthy()) {
      bug(C, BugReport::Kind::AssertionFailure, I, RV(I.A),
          "assertion failed");
      return false;
    }
    ++F.PC;
    return true;
  }
  case Opcode::AssertNonNull: {
    if (RV(I.A).isNull()) {
      bug(C, BugReport::Kind::NullPointer, I, RV(I.A),
          "assertNonNull failed");
      return false;
    }
    ++F.PC;
    return true;
  }

  case Opcode::SysTime: {
    uint64_t V = Hook->onSyscall(C.Id, [&]() -> uint64_t {
      return ++VirtualClock;
    });
    RV(I.A) = Value::intVal(static_cast<int64_t>(V));
    ++F.PC;
    return true;
  }
  case Opcode::SysRand: {
    uint64_t Bound = I.Imm > 0 ? static_cast<uint64_t>(I.Imm) : 1;
    uint64_t V = Hook->onSyscall(C.Id, [&]() -> uint64_t {
      return EnvRng.below(Bound);
    });
    RV(I.A) = Value::intVal(static_cast<int64_t>(V));
    ++F.PC;
    return true;
  }

  case Opcode::Print:
    C.Output += RV(I.A).str() + "\n";
    ++F.PC;
    return true;

  case Opcode::BurnCpu: {
    // Local CPU work for the workload kernels; no shared effects.
    volatile int64_t Sink = 0;
    for (int64_t K = 0; K < I.Imm; ++K)
      Sink = Sink + K;
    Instructions += static_cast<uint64_t>(I.Imm);
    ++F.PC;
    return true;
  }
  }
  assert(false && "unhandled opcode");
  return false;
}

RunResult Machine::finishResult(bool Completed) {
  RunResult R;
  R.Completed = Completed && !Pending.happened();
  R.Bug = Pending;
  R.InstructionsExecuted = Instructions;
  R.SharedAccesses = SharedAccessCount;
  R.OutputByThread.reserve(Threads.size());
  for (ThreadCtx &C : Threads)
    R.OutputByThread.push_back(C.Output);

  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("interp.runs").add(1);
  Reg.counter("interp.instructions").add(Instructions);
  Reg.counter("interp.shared_accesses").add(SharedAccessCount);
  Reg.counter("interp.sched_picks").add(SchedPicks);
  Reg.counter("interp.context_switches").add(ContextSwitches);
  Reg.counter("interp.threads").add(Threads.size());
  return R;
}

RunResult Machine::run(Scheduler &Sched, uint64_t MaxInstructions) {
  obs::TraceSpan Span("interp.run", "interp");
  MaxInstr = MaxInstructions;
  SchedPicks = 0;
  ContextSwitches = 0;
  LastPicked = 0;
  Threads.clear();
  Threads.resize(1);
  ThreadCtx &Main = Threads[0];
  Main.Id = 0;
  Main.St = TStatus::Ready;
  Frame MF;
  MF.Func = Prog.Entry;
  MF.PC = 0;
  MF.Regs.assign(Prog.function(Prog.Entry).NumRegs, Value::intVal(0));
  Main.Stack.push_back(std::move(MF));

  while (true) {
    if (Pending.happened())
      return finishResult(false);
    std::vector<ThreadId> Runnable = runnableThreads();
    if (Runnable.empty()) {
      bool AllDone = true;
      for (const ThreadCtx &C : Threads)
        if (C.St != TStatus::Finished)
          AllDone = false;
      if (AllDone)
        return finishResult(true);
      Pending.What = BugReport::Kind::Deadlock;
      Pending.Detail = "no runnable thread";
      return finishResult(false);
    }
    ThreadId T = Sched.pick(Runnable);
    if (SchedPicks++ && T != LastPicked)
      ++ContextSwitches;
    LastPicked = T;
    stepThread(ctx(T));
  }
}

RunResult Machine::runReplay(TurnSource &Turns, uint64_t MaxInstructions) {
  obs::TraceSpan Span("interp.run_replay", "interp");
  MaxInstr = MaxInstructions;
  SchedPicks = 0;
  ContextSwitches = 0;
  LastPicked = 0;
  Threads.clear();
  Threads.resize(1);
  ThreadCtx &Main = Threads[0];
  Main.Id = 0;
  Main.St = TStatus::Ready;
  Frame MF;
  MF.Func = Prog.Entry;
  MF.PC = 0;
  MF.Regs.assign(Prog.function(Prog.Entry).NumRegs, Value::intVal(0));
  Main.Stack.push_back(std::move(MF));

  auto Diverge = [&](const std::string &Why) {
    if (!Pending.happened()) {
      Pending.What = BugReport::Kind::ReplayDivergence;
      Pending.Detail = Why;
    }
    return finishResult(false);
  };

  while (true) {
    if (Pending.happened())
      return finishResult(false);
    if (Turns.failed())
      return Diverge("replay director reported divergence");

    AccessId Turn = Turns.currentTurn();
    if (!Turn.valid()) {
      // Solved order exhausted: drain remaining threads deterministically.
      std::vector<ThreadId> Runnable = runnableThreads();
      if (Runnable.empty()) {
        bool AllDone = true;
        for (const ThreadCtx &C : Threads)
          if (C.St != TStatus::Finished)
            AllDone = false;
        if (AllDone)
          return finishResult(true);
        // Every gated access was replayed and the leftover threads are
        // blocked on application state (locks, joins, wait sets,
        // barriers) — the same condition the live run reports as a
        // deadlock. Reporting it identically preserves the Theorem 1
        // correlation for recordings that ended deadlocked.
        Pending.What = BugReport::Kind::Deadlock;
        Pending.Detail = "no runnable thread";
        return finishResult(false);
      }
      stepThread(ctx(Runnable[0]));
      continue;
    }

    if (Turn.Thread >= Threads.size()) {
      // A salvaged prefix log can gate a thread whose spawning ghost
      // accesses were lost with the torn tail: the spawn is beyond some
      // surviving thread's horizon and happens freely, so run the
      // existing threads forward until it does. Diverge only when nothing
      // can make progress (a genuinely infeasible schedule).
      std::vector<ThreadId> Runnable = runnableThreads();
      if (Runnable.empty())
        return Diverge("turn thread has not been spawned");
      stepThread(ctx(Runnable[0]));
      continue;
    }
    ThreadCtx &C = ctx(Turn.Thread);
    if (C.St == TStatus::Finished)
      return Diverge("turn thread already finished");
    if (!isRunnable(C))
      return Diverge("turn thread is not runnable (infeasible schedule?)");
    if (SchedPicks++ && Turn.Thread != LastPicked)
      ++ContextSwitches;
    LastPicked = Turn.Thread;
    stepThread(C);
  }
}

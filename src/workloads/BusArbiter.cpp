//===- workloads/BusArbiter.cpp - Bus-arbiter MIR workload ----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "workloads/BusArbiter.h"

#include "analysis/SharedAccessAnalysis.h"
#include "mir/Builder.h"

#include <cassert>

using namespace light;
using namespace light::mir;

namespace {

/// Emits `for (i = 0; i < N; ++i) { body }`. \p Body receives the loop
/// counter register.
template <typename Fn>
void emitLoop(FunctionBuilder &FB, int64_t N, Fn Body) {
  Reg I = FB.newReg(), Bound = FB.newReg(), One = FB.newReg();
  Reg Cond = FB.newReg();
  FB.constInt(I, 0);
  FB.constInt(Bound, N);
  FB.constInt(One, 1);
  Label Head = FB.makeLabel(), BodyL = FB.makeLabel(), Done = FB.makeLabel();
  FB.place(Head);
  FB.cmpLt(Cond, I, Bound);
  FB.br(Cond, BodyL, Done);
  FB.place(BodyL);
  Body(I);
  FB.add(I, I, One);
  FB.jmp(Head);
  FB.place(Done);
}

} // namespace

Program light::workloads::busArbiterProgram(int Producers,
                                            int OpsPerProducer) {
  assert(Producers >= 1 && OpsPerProducer >= 1 && "degenerate arbiter");
  const int64_t Total =
      static_cast<int64_t>(Producers) * OpsPerProducer;

  ProgramBuilder PB;
  ClassId Pad = PB.addClass("Pad", {"pad"});
  uint32_t GTicket = PB.addGlobal("ticket");
  uint32_t GDone = PB.addGlobal("done");
  uint32_t GVals = PB.addGlobal("vals");
  uint32_t GLog = PB.addGlobal("log");
  uint32_t GBus = PB.addGlobal("bus");
  uint32_t GMon = PB.addGlobal("mon");
  uint32_t GBar = PB.addGlobal("bar");

  FuncId Producer = PB.declareFunction("producer", 0);
  FuncId Arbiter = PB.declareFunction("arbiter", 0);
  FuncId Watchdog = PB.declareFunction("watchdog", 0);

  // producer: barrier-synchronized start, then OpsPerProducer rounds of
  // { CAS-claim a ticket; publish the op; bump done under the monitor }.
  {
    FunctionBuilder FB = PB.beginFunction("producer", 0);
    Reg Vals = FB.newReg(), Mon = FB.newReg(), Bar = FB.newReg();
    Reg One = FB.newReg(), T = FB.newReg(), T1 = FB.newReg();
    Reg Ok = FB.newReg(), V = FB.newReg(), C = FB.newReg();
    Reg C1 = FB.newReg();
    FB.getGlobal(Vals, GVals);
    FB.getGlobal(Mon, GMon);
    FB.getGlobal(Bar, GBar);
    FB.constInt(One, 1);
    FB.barrierWait(Bar); // all producers start the contention together
    emitLoop(FB, OpsPerProducer, [&](Reg) {
      Label Retry = FB.makeLabel(), Got = FB.makeLabel();
      FB.place(Retry);
      FB.getGlobal(T, GTicket);
      FB.add(T1, T, One);
      FB.cas(Ok, T, T1, GTicket); // claim commit slot T
      FB.br(Ok, Got, Retry);      // contended: someone else took it
      FB.place(Got);
      FB.add(V, T, One); // the op's payload: slot + 1 (never zero)
      FB.astore(Vals, T, V);
      FB.monitorEnter(Mon);
      FB.getGlobal(C, GDone);
      FB.add(C1, C, One);
      FB.putGlobal(GDone, C1);
      FB.notifyAll(Mon);
      FB.monitorExit(Mon);
    });
    FB.ret();
    PB.defineFunction(Producer, FB);
  }

  // arbiter: wait (plain wait loop — re-checks under the monitor) until
  // all ops are in, then commit them in ticket order under the bus write
  // lock.
  {
    FunctionBuilder FB = PB.beginFunction("arbiter", 0);
    Reg Vals = FB.newReg(), Log = FB.newReg(), Mon = FB.newReg();
    Reg Bus = FB.newReg(), TotalR = FB.newReg(), One = FB.newReg();
    Reg C = FB.newReg(), Eq = FB.newReg(), V = FB.newReg();
    Reg V1 = FB.newReg();
    FB.getGlobal(Vals, GVals);
    FB.getGlobal(Log, GLog);
    FB.getGlobal(Mon, GMon);
    FB.getGlobal(Bus, GBus);
    FB.constInt(TotalR, Total);
    FB.constInt(One, 1);
    Label Loop = FB.makeLabel(), Go = FB.makeLabel();
    Label DoWait = FB.makeLabel();
    FB.monitorEnter(Mon);
    FB.place(Loop);
    FB.getGlobal(C, GDone);
    FB.cmpEq(Eq, C, TotalR);
    FB.br(Eq, Go, DoWait);
    FB.place(DoWait);
    FB.wait(Mon);
    FB.jmp(Loop);
    FB.place(Go);
    FB.monitorExit(Mon);
    FB.rwWrLock(Bus); // exclusive commit phase
    emitLoop(FB, Total, [&](Reg I) {
      FB.aload(V, Vals, I);
      FB.add(V1, V, One);
      FB.astore(Log, I, V1);
    });
    FB.rwWrUnlock(Bus);
    FB.ret();
    PB.defineFunction(Arbiter, FB);
  }

  // watchdog: one bounded timed wait (either arm is clean), then a
  // read-locked sample of the log — concurrent with nothing or with the
  // arbiter's write lock, never torn either way.
  {
    FunctionBuilder FB = PB.beginFunction("watchdog", 0);
    Reg Mon = FB.newReg(), Bus = FB.newReg(), Log = FB.newReg();
    Reg Zero = FB.newReg(), To = FB.newReg(), V = FB.newReg();
    FB.getGlobal(Mon, GMon);
    FB.getGlobal(Bus, GBus);
    FB.getGlobal(Log, GLog);
    FB.constInt(Zero, 0);
    FB.monitorEnter(Mon);
    FB.timedWait(To, Mon, /*Deadline=*/20);
    FB.monitorExit(Mon);
    FB.rwRdLock(Bus);
    FB.aload(V, Log, Zero);
    FB.print(V);
    FB.rwRdUnlock(Bus);
    FB.ret();
    PB.defineFunction(Watchdog, FB);
  }

  // main: build the arena, race everyone, then validate the committed log.
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Bus = FB.newReg(), Mon = FB.newReg(), Bar = FB.newReg();
    Reg Vals = FB.newReg(), Log = FB.newReg(), Len = FB.newReg();
    Reg Zero = FB.newReg(), V = FB.newReg();
    FB.newObject(Bus, Pad);
    FB.newObject(Mon, Pad);
    FB.newObject(Bar, Pad);
    FB.barrierInit(Bar, Producers);
    FB.constInt(Len, Total);
    FB.newArray(Vals, Len);
    FB.newArray(Log, Len);
    FB.constInt(Zero, 0);
    FB.putGlobal(GTicket, Zero);
    FB.putGlobal(GDone, Zero);
    FB.putGlobal(GBus, Bus);
    FB.putGlobal(GMon, Mon);
    FB.putGlobal(GBar, Bar);
    FB.putGlobal(GVals, Vals);
    FB.putGlobal(GLog, Log);
    std::vector<Reg> Tids;
    for (int P = 0; P < Producers; ++P) {
      Reg T = FB.newReg();
      FB.threadStart(T, Producer);
      Tids.push_back(T);
    }
    Reg TA = FB.newReg(), TW = FB.newReg();
    FB.threadStart(TA, Arbiter);
    FB.threadStart(TW, Watchdog);
    Tids.push_back(TA);
    Tids.push_back(TW);
    for (Reg T : Tids)
      FB.threadJoin(T);
    // Every slot committed exactly once: log[i] = i + 2, never zero.
    emitLoop(FB, Total, [&](Reg I) {
      FB.aload(V, Log, I);
      FB.assertTrue(V, /*BugId=*/99); // holds on every schedule
      FB.print(V);
    });
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }

  Program P = PB.take();
  assert(P.verify().empty() && "bus arbiter failed verification");
  analysis::markSharedAccesses(P);
  return P;
}

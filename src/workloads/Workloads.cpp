//===- workloads/Workloads.cpp - The 24 overhead benchmarks ---------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
//
// Profile rationale (per suite):
//
//  * JGF kernels are compute-heavy with phase-wise sharing: large LocalWork
//    (shared ops are sparse), long bursts.
//  * STAMP ports are transaction-shaped: much of the traffic runs inside
//    critical sections on consistently guarded data (O2 territory), with
//    moderate bursts.
//  * Server applications (the paper's Cache4j profile of Figure 2) are
//    bursty and lock-heavy with read-mostly tables.
//  * DaCapo programs span the spectrum: from the nearly-uninstrumentable
//    (sunflow: private rays, rare sharing) to write-heavy shared indices
//    (h2, xalan) where record-based overheads explode.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace light;
using namespace light::workloads;

const std::vector<WorkloadSpec> &light::workloads::paperWorkloads() {
  static const std::vector<WorkloadSpec> Specs = [] {
    std::vector<WorkloadSpec> W;
    auto Add = [&](std::string Name, std::string Suite, int Ops, int Vars,
                   int GuardedVars, int ReadPct, int Burst, int Local,
                   int GuardedPct) {
      WorkloadSpec S;
      S.Name = std::move(Name);
      S.Suite = std::move(Suite);
      S.OpsPerThread = Ops;
      S.NumVars = Vars;
      S.NumGuardedVars = GuardedVars;
      S.ReadPct = ReadPct;
      S.BurstLen = Burst;
      S.LocalWork = Local;
      S.GuardedPct = GuardedPct;
      S.Seed = 0x9e3779b9u + W.size();
      W.push_back(std::move(S));
    };

    // --- Java Grande Forum (3): compute kernels, sparse bursty sharing.
    Add("jgf-moldyn", "JGF", 24000, 48, 8, 60, 48, 90, 10);
    Add("jgf-montecarlo", "JGF", 20000, 32, 8, 85, 64, 120, 8);
    Add("jgf-raytracer", "JGF", 20000, 24, 4, 90, 96, 110, 5);

    // --- STAMP (8): transactional, guarded-heavy.
    Add("stamp-bayes", "STAMP", 16000, 64, 32, 70, 12, 40, 55);
    Add("stamp-genome", "STAMP", 20000, 96, 32, 75, 16, 30, 45);
    Add("stamp-intruder", "STAMP", 24000, 64, 24, 55, 6, 22, 40);
    Add("stamp-kmeans", "STAMP", 24000, 32, 16, 65, 24, 18, 35);
    Add("stamp-labyrinth", "STAMP", 14000, 128, 32, 60, 32, 60, 50);
    Add("stamp-ssca2", "STAMP", 28000, 160, 16, 50, 4, 18, 15);
    Add("stamp-vacation", "STAMP", 18000, 96, 48, 75, 10, 25, 60);
    Add("stamp-yada", "STAMP", 16000, 80, 24, 55, 8, 20, 35);

    // --- Server / crawler applications (7): bursty, lock-heavy tables.
    Add("cache4j", "Server", 22000, 40, 24, 85, 40, 30, 45);
    Add("ftpserver", "Server", 16000, 48, 24, 70, 24, 45, 55);
    Add("hedc", "Server", 14000, 32, 12, 80, 32, 50, 35);
    Add("jigsaw", "Server", 18000, 64, 24, 80, 28, 35, 40);
    Add("openjms", "Server", 16000, 48, 24, 65, 20, 30, 50);
    Add("tomcat", "Server", 20000, 80, 32, 75, 24, 25, 45);
    Add("weblech", "Server", 12000, 24, 12, 70, 36, 55, 40);

    // --- DaCapo (6): mixed regimes.
    Add("dacapo-avrora", "DaCapo", 26000, 64, 16, 60, 8, 24, 20);
    Add("dacapo-h2", "DaCapo", 24000, 96, 32, 55, 4, 20, 30);
    Add("dacapo-luindex", "DaCapo", 16000, 48, 16, 70, 40, 70, 25);
    Add("dacapo-lusearch", "DaCapo", 20000, 48, 16, 90, 56, 60, 15);
    Add("dacapo-sunflow", "DaCapo", 18000, 24, 4, 92, 80, 140, 5);
    Add("dacapo-xalan", "DaCapo", 26000, 72, 24, 45, 6, 20, 25);
    return W;
  }();
  return Specs;
}

const WorkloadSpec *light::workloads::findWorkload(const std::string &Name) {
  for (const WorkloadSpec &S : paperWorkloads())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

//===- workloads/OverheadHarness.cpp - Figure 4/5/7 measurements ----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "workloads/OverheadHarness.h"

#include "baselines/LeapRecorder.h"
#include "baselines/StrideRecorder.h"
#include "core/LightRecorder.h"
#include "runtime/Runtime.h"
#include "support/BinaryIO.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace light;
using namespace light::workloads;

const char *light::workloads::schemeName(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::Light:
    return "light";
  case Scheme::LightO1:
    return "light-o1";
  case Scheme::LightBasic:
    return "light-basic";
  case Scheme::Leap:
    return "leap";
  case Scheme::Stride:
    return "stride";
  }
  return "?";
}

namespace {

/// The kernel: each thread alternates local arithmetic with shared
/// accesses. Unguarded traffic runs in bursts over NumVars variables
/// (Figure 2's pattern); guarded traffic acquires the variable's lock and
/// touches a consistently protected variable.
void kernelBody(Runtime &RT, ThreadId Self, const WorkloadSpec &Spec,
                std::vector<std::unique_ptr<SharedVar>> &Vars,
                std::vector<std::unique_ptr<SharedVar>> &GuardedVars,
                std::vector<std::unique_ptr<InstrumentedMutex>> &Locks) {
  Rng R(Spec.Seed * 1315423911ull + Self * 2654435761ull);
  int Var = 0;
  int Burst = 0;
  volatile int64_t Sink = 0;

  for (int Op = 0; Op < Spec.OpsPerThread; ++Op) {
    for (int W = 0; W < Spec.LocalWork; ++W)
      Sink = Sink + W;

    if (Spec.NumGuardedVars > 0 &&
        R.below(100) < static_cast<uint64_t>(Spec.GuardedPct)) {
      // Transactional section: lock, read-modify-write a guarded var.
      int G = static_cast<int>(R.below(Spec.NumGuardedVars));
      InstrumentedMutex &Mu = *Locks[G % Spec.NumLocks];
      InstrumentedGuard Guard(RT, Mu, Self);
      int64_t V = GuardedVars[G]->read(RT, Self);
      GuardedVars[G]->write(RT, Self, V + 1);
      continue;
    }

    if (Burst == 0) {
      Var = static_cast<int>(R.below(Spec.NumVars));
      Burst = 1 + static_cast<int>(R.below(Spec.BurstLen));
    }
    --Burst;
    if (R.below(100) < static_cast<uint64_t>(Spec.ReadPct)) {
      Sink = Sink + Vars[Var]->read(RT, Self);
    } else {
      Vars[Var]->write(RT, Self, Op);
    }
  }
}

struct SchemeHook {
  std::unique_ptr<AccessHook> Hook;
  LightRecorder *Light = nullptr;
  LeapRecorder *Leap = nullptr;
  StrideRecorder *Stride = nullptr;
};

SchemeHook makeHook(Scheme S) {
  SchemeHook H;
  switch (S) {
  case Scheme::Baseline:
    H.Hook = std::make_unique<NullHook>();
    break;
  case Scheme::Light:
  case Scheme::LightO1:
  case Scheme::LightBasic: {
    LightOptions Opts = S == Scheme::Light      ? LightOptions::both()
                        : S == Scheme::LightO1 ? LightOptions::o1Only()
                                                : LightOptions::basic();
    Opts.WriteToDisk = false; // symmetric in-memory logs for all schemes
    auto Rec = std::make_unique<LightRecorder>(Opts);
    H.Light = Rec.get();
    H.Hook = std::move(Rec);
    break;
  }
  case Scheme::Leap: {
    auto Rec = std::make_unique<LeapRecorder>();
    H.Leap = Rec.get();
    H.Hook = std::move(Rec);
    break;
  }
  case Scheme::Stride: {
    auto Rec = std::make_unique<StrideRecorder>();
    H.Stride = Rec.get();
    H.Hook = std::move(Rec);
    break;
  }
  }
  return H;
}

} // namespace

Measurement light::workloads::runWorkload(const WorkloadSpec &Spec,
                                          Scheme S) {
  SchemeHook H = makeHook(S);
  Runtime RT(*H.Hook);

  std::vector<std::unique_ptr<SharedVar>> Vars, GuardedVars;
  std::vector<std::unique_ptr<InstrumentedMutex>> Locks;
  for (int I = 0; I < Spec.NumVars; ++I)
    Vars.push_back(std::make_unique<SharedVar>(/*Id=*/1000 + I));
  for (int I = 0; I < Spec.NumGuardedVars; ++I)
    GuardedVars.push_back(std::make_unique<SharedVar>(/*Id=*/5000 + I));
  for (int I = 0; I < Spec.NumLocks; ++I)
    Locks.push_back(std::make_unique<InstrumentedMutex>(/*Id=*/9000 + I));

  // O2's guard set: the analysis-certified guarded variables. The dynamic
  // lock discipline of the kernel guarantees the premise of Lemma 4.2.
  if (H.Light) {
    GuardSpec Guards;
    for (const auto &GV : GuardedVars)
      Guards.Exact.push_back(GV->location());
    Guards.seal();
    H.Light->setGuards(std::move(Guards));
  }

  Measurement M;
  Stopwatch Timer;
  {
    std::vector<Runtime::Handle> Handles;
    Handles.reserve(Spec.Threads);
    for (int T = 0; T < Spec.Threads; ++T)
      Handles.push_back(RT.spawn(Runtime::MainThread, [&](ThreadId Self) {
        kernelBody(RT, Self, Spec, Vars, GuardedVars, Locks);
      }));
    for (Runtime::Handle &Handle : Handles)
      RT.join(Runtime::MainThread, Handle);
  }
  M.Seconds = Timer.seconds();

  if (H.Light) {
    // Space is measured on the finished, serializable log so every section
    // counts (spans, syscalls, spawns, counters, guards) — the live
    // longIntegersRecorded() counter covers the span/syscall stream only
    // and under-reported the Figure 5 columns.
    M.Retries = H.Light->readRetries();
    RecordingLog Log = H.Light->finish(&RT.registry());
    M.SpaceLongs = Log.spaceLongs();
    // The compressed size of the identical log: LIGHT003 via a throwaway
    // file, since the varint sections only exist serialized.
    std::string Tmp = makeTempPath("fig5-light3");
    M.CompactLongs = Log.saveCompact(Tmp);
    std::remove(Tmp.c_str());
  } else if (H.Leap) {
    M.SpaceLongs = H.Leap->longIntegersRecorded();
  } else if (H.Stride) {
    M.SpaceLongs = H.Stride->longIntegersRecorded();
  }
  for (int T = 0; T <= Spec.Threads; ++T)
    M.SharedOps += H.Hook->counterOf(static_cast<ThreadId>(T));
  return M;
}

double light::workloads::measureOverhead(const WorkloadSpec &Spec, Scheme S,
                                         int Repeats) {
  double BestBase = 1e99, BestScheme = 1e99;
  for (int I = 0; I < Repeats; ++I) {
    BestBase = std::min(BestBase, runWorkload(Spec, Scheme::Baseline).Seconds);
    BestScheme = std::min(BestScheme, runWorkload(Spec, S).Seconds);
  }
  return BestScheme / BestBase;
}

//===- workloads/OverheadHarness.h - Figure 4/5/7 measurements --*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a workload kernel on real std::threads under a chosen recording
/// scheme and reports wall time plus the long-integer space consumed —
/// the raw measurements behind Figure 4 (time overhead), Figure 5 (space),
/// the aggregate tables of Section 5.2, and the ablation of Figure 7.
///
/// Overhead is normalized against the Baseline scheme (the uninstrumented
/// pass-through hook): overhead = time(scheme)/time(baseline) - 1.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_WORKLOADS_OVERHEADHARNESS_H
#define LIGHT_WORKLOADS_OVERHEADHARNESS_H

#include "workloads/Workloads.h"

#include <cstdint>

namespace light {
namespace workloads {

/// The measurable recording schemes.
enum class Scheme {
  Baseline,   ///< NullHook (uninstrumented reference)
  Light,      ///< V_both: Algorithm 1 + O1 + O2
  LightO1,    ///< V_O1: Algorithm 1 + O1
  LightBasic, ///< V_basic: Algorithm 1 only
  Leap,
  Stride,
};

const char *schemeName(Scheme S);

/// One measurement.
struct Measurement {
  double Seconds = 0;
  uint64_t SpaceLongs = 0;
  /// The same finished log serialized as compressed LIGHT003 (long units
  /// including framing; Light scheme only). Space ratio vs SpaceLongs is
  /// the Figure 5 compression column.
  uint64_t CompactLongs = 0;
  uint64_t SharedOps = 0;
  uint64_t Retries = 0; ///< optimistic-read retries (Light only)
};

/// Runs \p Spec once under \p S. Deterministic kernel; wall time varies.
Measurement runWorkload(const WorkloadSpec &Spec, Scheme S);

/// Runs baseline plus \p S \p Repeats times each and returns the best-of
/// ratio time(S)/time(Baseline) (best-of damps scheduler noise).
double measureOverhead(const WorkloadSpec &Spec, Scheme S, int Repeats = 3);

} // namespace workloads
} // namespace light

#endif // LIGHT_WORKLOADS_OVERHEADHARNESS_H

//===- workloads/BusArbiter.h - Bus-arbiter MIR workload --------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Saturnis-style bus-arbiter workload exercising every synchronization
/// primitive at once: N producers claim commit slots with a CAS ticket
/// loop, publish timestamped operations, and signal completion through a
/// monitor; one arbiter waits for all operations, then commits them to the
/// log in ticket order under the bus write lock; a watchdog does one
/// bounded timed wait and then samples the log under the bus read lock.
///
/// The program is *clean on every schedule* — its final assertions hold
/// regardless of interleaving — which makes it the cross-engine oracle's
/// stress workload for the new primitives rather than a bug kernel.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_WORKLOADS_BUSARBITER_H
#define LIGHT_WORKLOADS_BUSARBITER_H

#include "mir/Program.h"

namespace light {
namespace workloads {

/// Builds the bus-arbiter program, verified and shared-access-marked.
/// \p Producers worker threads each submit \p OpsPerProducer operations.
mir::Program busArbiterProgram(int Producers = 2, int OpsPerProducer = 2);

} // namespace workloads
} // namespace light

#endif // LIGHT_WORKLOADS_BUSARBITER_H

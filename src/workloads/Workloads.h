//===- workloads/Workloads.h - The 24 overhead benchmarks -------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 24-benchmark overhead suite of Section 5.2: 3 Java Grande kernels,
/// 8 STAMP ports, 7 server/crawler applications, and 6 DaCapo programs.
/// The originals are Java applications; what determines recording overhead
/// is their *shared-access profile* — thread count, access density,
/// read/write mix, run-length of same-thread bursts (Figure 2's pattern,
/// which O1 exploits), and lock discipline (which O2 exploits). Each paper
/// benchmark is represented by a synthetic kernel with a matching profile,
/// running on real std::threads through the instrumented runtime API.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_WORKLOADS_WORKLOADS_H
#define LIGHT_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

namespace light {
namespace workloads {

/// Profile of one benchmark.
struct WorkloadSpec {
  std::string Name;
  std::string Suite; ///< JGF / STAMP / Server / DaCapo

  int Threads = 8; ///< the paper's concurrency level
  int OpsPerThread = 20000;

  int NumVars = 64;        ///< unguarded shared locations
  int NumGuardedVars = 16; ///< consistently lock-protected locations
  int NumLocks = 4;

  int ReadPct = 70;    ///< reads among data ops
  int BurstLen = 16;   ///< same-location run length per thread
  int LocalWork = 24;  ///< local arithmetic units between shared ops
  int GuardedPct = 20; ///< ops executed on guarded vars inside locks

  uint64_t Seed = 1;
};

/// The 24 paper benchmarks with their profiles.
const std::vector<WorkloadSpec> &paperWorkloads();

/// Looks a workload up by name; nullptr if unknown.
const WorkloadSpec *findWorkload(const std::string &Name);

} // namespace workloads
} // namespace light

#endif // LIGHT_WORKLOADS_WORKLOADS_H

//===- ci/Sandbox.cpp - Forked child sandbox for first contact -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "ci/Sandbox.h"

#include "obs/Metrics.h"
#include "support/FaultInjection.h"
#include "support/Rlimits.h"
#include "support/Timer.h"
#include "support/Watchdog.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace light;
using namespace light::ci;

SandboxResult light::ci::runInSandbox(const SandboxOptions &Opts,
                                      const std::function<int()> &Body) {
  SandboxResult Out;
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("ci.sandbox.runs").add(1);

  if (fault::Injector::global().shouldFire("ci.spawn_fail")) {
    Out.End = SandboxEnd::SpawnFailed;
    Out.Error = "injected spawn failure (ci.spawn_fail)";
    Reg.counter("ci.sandbox.spawn_failures").add(1);
    return Out;
  }

  Stopwatch Timer;
  // Fork BEFORE starting the watchdog thread: the child must be born
  // single-threaded (a multithreaded fork leaves orphaned locks in the
  // child's copies of any mutex held by another thread at fork time).
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Out.End = SandboxEnd::SpawnFailed;
    Out.Error = std::string("fork: ") + std::strerror(errno);
    Reg.counter("ci.sandbox.spawn_failures").add(1);
    return Out;
  }

  if (Pid == 0) {
    // Child. Apply ceilings first, then the suicide alarm, then the work.
    ChildLimits Limits;
    Limits.CpuSeconds = Opts.CpuSeconds;
    Limits.MemoryBytes = Opts.MemoryBytes;
    applyChildLimits(Limits); // best-effort: a failed setrlimit is not fatal
    if (Opts.SigalrmFallback && Opts.DeadlineSeconds > 0)
      Watchdog::armSigalrmFallback(2 * Opts.DeadlineSeconds);
    ::_exit(Body());
  }

  // Parent: watch the deadline; on expiry SIGKILL the child. The child is
  // reaped below either way, so a fire can never leak a zombie.
  std::atomic<bool> Killed{false};
  Watchdog::Options WOpts;
  WOpts.DeadlineSeconds = Opts.DeadlineSeconds;
  WOpts.OnFire = [Pid, &Killed] {
    Killed.store(true, std::memory_order_relaxed);
    ::kill(Pid, SIGKILL);
  };
  {
    Watchdog Dog(WOpts);
    int Status = 0;
    pid_t Reaped;
    do {
      Reaped = ::waitpid(Pid, &Status, 0);
    } while (Reaped < 0 && errno == EINTR);
    Dog.cancel();
    Out.Seconds = Timer.seconds();
    Out.WatchdogFired = Dog.fired();
    if (Reaped != Pid) {
      Out.End = SandboxEnd::SpawnFailed;
      Out.Error = std::string("waitpid: ") + std::strerror(errno);
      Reg.counter("ci.sandbox.spawn_failures").add(1);
      return Out;
    }
    if (Killed.load(std::memory_order_relaxed)) {
      // The watchdog's SIGKILL may race a natural exit; the kill flag wins
      // only when the child actually died by our signal.
      if (WIFSIGNALED(Status) && WTERMSIG(Status) == SIGKILL) {
        Out.End = SandboxEnd::DeadlineKilled;
        Out.Signal = SIGKILL;
        Reg.counter("ci.sandbox.deadline_kills").add(1);
        return Out;
      }
    }
    if (WIFEXITED(Status)) {
      Out.End = SandboxEnd::Exited;
      Out.ExitCode = WEXITSTATUS(Status);
      return Out;
    }
    Out.End = SandboxEnd::Signaled;
    Out.Signal = WIFSIGNALED(Status) ? WTERMSIG(Status) : 0;
    Reg.counter("ci.sandbox.signaled").add(1);
    return Out;
  }
}

//===- ci/CiOrchestrator.h - Resilient corpus CI pipeline -------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus-driven CI orchestrator behind `light-replay ci`: for each
/// `.mir` program it runs the resilient pipeline
///
///   record (fork sandbox) -> salvage -> explore (in-situ) -> shrink
///     -> verify
///
/// and reduces the outcome to one of five verdicts (ci/Verdict.h). The
/// design splits trust by execution count:
///
///  * First contact happens in a sandboxed child (ci/Sandbox.h): rlimits,
///    a parent watchdog deadline, and an in-child alarm(2) fallback mean a
///    crashing, spinning, or allocating program only ever costs one
///    disposable process. The child records through the durable LIGHT002
///    epoch log, so whatever kills it leaves a salvageable prefix.
///  * Every later execution — failure confirmation, schedule exploration,
///    ddmin shrinking, repro verification — runs *in-situ*, in-process,
///    under the interpreter's instruction budget (an iReplayer-style
///    re-execution fast path: no fork, no solver, just a TraceScheduler).
///    The budget makes even a spinning program terminate deterministically,
///    which is what makes in-process re-execution safe after first contact.
///
/// Failure handling is classified, not best-effort:
///
///  * infra-class failures (fork failure, child exit 50 = durable-log I/O
///    failure) are retried with bounded exponential backoff;
///  * program-class failures (bug, crash, hang, oom) are never retried —
///    they are the signal, and the pipeline degrades gracefully instead:
///    explore timeout keeps the best-so-far schedule, shrink timeout ships
///    the unshrunk repro, verify divergence downgrades the verdict to
///    salvaged-partial.
///
/// Child exit protocol (the record stage's failure-class wire format):
///   0 = clean; 40 = application bug; 41 = hang (instruction budget);
///   42 = runtime anomaly (crash-class); 50 = child-side infra failure
///   (retryable). Signals: watchdog SIGKILL = hang, SIGXCPU = hang,
///   SIGABRT under a memory ceiling = oom, anything else = crash.
///
/// Fault sites driving the failure edges deterministically (see
/// support/FaultInjection.h): ci.spawn_fail, ci.kill_child.start,
/// ci.kill_child.record, ci.kill_child.flush, ci.salvage_truncate,
/// ci.explore_timeout, ci.shrink_timeout, ci.verify_diverge,
/// ci.watchdog_fire.
///
/// A corpus program may carry a `; ci-fault: <spec>` comment directive: the
/// spec is armed inside the recording child only (replacing any inherited
/// spec there), which is how the corpus encodes "this program's recorder
/// crashes" without perturbing the parent harness.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CI_CIORCHESTRATOR_H
#define LIGHT_CI_CIORCHESTRATOR_H

#include "ci/Verdict.h"
#include "explore/ExplorationDriver.h"

#include <string>
#include <vector>

namespace light {
namespace ci {

/// Orchestrator knobs.
struct CiOptions {
  /// Wall-clock deadline per sandboxed recording attempt; the watchdog
  /// SIGKILLs the child past it (ends within 2x this bound: the deadline
  /// itself plus signal delivery/reap slack).
  double DeadlineSeconds = 5;
  /// RLIMIT_CPU for the child (0 = none).
  uint64_t CpuSeconds = 30;
  /// RLIMIT_AS for the child (0 = none; ignored under sanitizers).
  uint64_t MemoryBytes = 0;

  /// Maximum retries for infra-class failures. Program-class failures are
  /// never retried.
  uint32_t MaxInfraRetries = 2;
  /// First backoff delay; doubles per retry.
  double BackoffInitialSeconds = 0.05;

  /// Exploration strategy: "pct" or "dfs".
  std::string Strategy = "pct";
  /// Wall budget for the in-situ schedule search per program.
  double ExploreBudgetSeconds = 2.0;
  /// Search knobs (budget, seeds, depth, preemption bound). EnvSeed,
  /// MaxInstructions, WallBudgetSeconds, and TreatHangAsBug are overridden
  /// by the orchestrator.
  explore::ExploreOptions Explore;

  /// Where durable logs and repros land. "" = a fresh temp directory.
  std::string ArtifactDir;
  /// Scheduler/environment seed for the recording run.
  uint64_t RecordSeed = 1;
  /// Interpreter budget in the recording child — deliberately huge so a
  /// spin is classified by the wall-clock watchdog, with the budget as the
  /// in-child backstop (exit 41).
  uint64_t ChildInstructionBudget = 400000000ull;
  /// Interpreter budget for in-situ re-executions; exhausting it IS the
  /// in-situ definition of a hang.
  uint64_t InsituInstructionBudget = 200000;
  /// Durable epoch log flush threshold (spans per thread).
  size_t EpochSpans = 4;

  /// Measure fork-vs-in-situ schedule throughput and report it per
  /// program (the `calibration` JSON object).
  bool Calibrate = false;
  uint64_t CalibrationForkRuns = 12;
  uint64_t CalibrationInsituSchedules = 150;
};

/// Runs the full pipeline on one corpus program file.
ProgramVerdict runProgramCi(const std::string &Path, const CiOptions &Opts);

/// Runs the pipeline over every path in \p Paths and aggregates.
CorpusSummary runCorpusCi(const std::vector<std::string> &Paths,
                          const CiOptions &Opts);

/// Lists the `.mir` files directly inside \p Dir, sorted by name. Returns
/// false (and sets \p Error) when the directory cannot be read.
bool listCorpusDir(const std::string &Dir, std::vector<std::string> &Out,
                   std::string &Error);

} // namespace ci
} // namespace light

#endif // LIGHT_CI_CIORCHESTRATOR_H

//===- ci/Verdict.h - CI verdicts and the light-ci-v1 schema ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict model of the resilient CI pipeline and its JSON wire format
/// (schema `light-ci-v1`). One ProgramVerdict captures everything the
/// record -> salvage -> explore -> shrink -> verify pipeline learned about
/// one corpus program; a CorpusSummary aggregates a run.
///
/// Verdict semantics (see DESIGN.md section 9 for the full state machine):
///
///   pass              recorded clean and exploration found no failure
///   flaky             recorded clean, but exploration found a *verified*
///                     failing schedule nearby
///   reproduced        the recording failed (bug / crash / hang / oom) and
///                     the pipeline emitted a repro whose replay exhibits
///                     the same failure class
///   salvaged-partial  the recording failed and a valid durable-log prefix
///                     was salvaged, but no verified repro exists (explore
///                     exhausted, shrink skipped, or verification diverged)
///   infra-error       the harness itself failed and NO valid log prefix
///                     exists. By construction this verdict is impossible
///                     while salvage holds a usable prefix — the validator
///                     enforces it.
///
/// validateCiSummaryJson is the single deep validator for the schema; both
/// the `check_ci_json` CLI tool and the ctest suites call it, so the wire
/// format cannot drift from the checker.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CI_VERDICT_H
#define LIGHT_CI_VERDICT_H

#include <cstdint>
#include <string>
#include <vector>

namespace light {
namespace ci {

/// Final per-program verdict.
enum class Verdict {
  Pass,
  Flaky,
  Reproduced,
  SalvagedPartial,
  InfraError,
};

/// How the first-contact recording run failed (None when it was clean).
enum class FailureClass {
  None,  ///< recorded clean
  Bug,   ///< application bug (assertion, null use, ... — Definition 3.2)
  Crash, ///< the child died abruptly (signal or runtime anomaly)
  Hang,  ///< watchdog deadline, SIGXCPU, or instruction-budget exhaustion
  Oom,   ///< the memory ceiling killed it
  Infra, ///< the harness failed (spawn/IO); retried, never a program bug
};

const char *verdictName(Verdict V);
const char *failureClassName(FailureClass C);

/// Record stage: the final (post-retry) sandboxed recording attempt.
struct RecordPhase {
  FailureClass Failure = FailureClass::None;
  std::string Outcome;        ///< "clean", "bug", "crash", "hang", "oom",
                              ///< "spawn-failed", "io-failed"
  uint32_t Attempts = 0;      ///< sandboxed runs including infra retries
  int ExitCode = -1;
  int Signal = 0;
  bool WatchdogFired = false;
  double Seconds = 0;
};

/// Salvage stage: what the durable-log scavenger recovered.
struct SalvagePhase {
  bool Attempted = false;
  bool Loaded = false;
  bool UsablePrefix = false; ///< the predicate infra-error is gated on
  bool CleanClose = false;
  bool Salvaged = false;     ///< a torn tail was cut
  uint64_t Spans = 0;
  uint64_t Syscalls = 0;
  uint64_t SegmentsRecovered = 0;
  uint64_t SegmentsDropped = 0;
  std::string Error;
};

/// Explore stage: the in-situ schedule search.
struct ExplorePhase {
  bool Ran = false;
  std::string Strategy;      ///< "pct" or "dfs"
  uint64_t SchedulesRun = 0;
  uint64_t Deadlocks = 0;
  uint64_t Hangs = 0;
  bool BugFound = false;
  bool HangFound = false;
  bool TimedOut = false;     ///< wall budget expired; best-so-far was used
  double Seconds = 0;
  double SchedulesPerSecond = 0;
};

/// Shrink stage: ddmin minimization of the failing pair.
struct ShrinkPhase {
  bool Ran = false;
  bool TimedOut = false;     ///< budget expired; the unshrunk repro ships
  uint32_t OriginalStatements = 0;
  uint32_t ShrunkStatements = 0;
  uint64_t Probes = 0;
  std::string ReproPath;     ///< where the .mir repro was written ("" none)
};

/// Verify stage: replay of the emitted repro.
struct VerifyPhase {
  bool Ran = false;
  bool Reproduced = false;   ///< the repro exhibits the same failure class
  bool Diverged = false;     ///< it ran but showed something else
  std::string Detail;
};

/// Fork-vs-in-situ throughput calibration (only on request).
struct CalibrationInfo {
  bool Ran = false;
  uint64_t ForkRuns = 0;
  uint64_t InsituRuns = 0;
  double ForkSchedulesPerSecond = 0;
  double InsituSchedulesPerSecond = 0;
  double Speedup = 0;        ///< insitu / fork
};

/// Everything the pipeline decided about one corpus program.
struct ProgramVerdict {
  std::string Name;
  std::string Path;
  Verdict What = Verdict::InfraError;
  FailureClass Failure = FailureClass::None;
  std::string Why;           ///< one-line human-readable justification

  RecordPhase Record;
  SalvagePhase Salvage;
  ExplorePhase Explore;
  ShrinkPhase Shrink;
  VerifyPhase Verify;
  CalibrationInfo Calibration;

  uint32_t InfraRetries = 0; ///< retries consumed by infra-class failures
  double Seconds = 0;
};

/// One CI run over a corpus.
struct CorpusSummary {
  std::string Strategy;      ///< explore strategy used
  double DeadlineSeconds = 0;
  std::vector<ProgramVerdict> Programs;
  double Seconds = 0;

  uint64_t count(Verdict V) const;
  /// True when no program ended in infra-error (the harness exit gate).
  bool clean() const { return count(Verdict::InfraError) == 0; }
};

/// Serializes \p S as a `light-ci-v1` JSON document.
std::string ciSummaryToJson(const CorpusSummary &S);

/// Deep-validates a `light-ci-v1` document: structure, enum domains, count
/// consistency, and the cross-field invariants (an infra-error verdict with
/// a usable salvaged prefix is a schema violation). Returns "" when valid,
/// else the first problem found.
std::string validateCiSummaryJson(const std::string &Text);

} // namespace ci
} // namespace light

#endif // LIGHT_CI_VERDICT_H

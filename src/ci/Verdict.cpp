//===- ci/Verdict.cpp - CI verdicts and the light-ci-v1 schema -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "ci/Verdict.h"

#include "obs/Json.h"

using namespace light;
using namespace light::ci;
using obs::JsonValue;

const char *light::ci::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Pass:
    return "pass";
  case Verdict::Flaky:
    return "flaky";
  case Verdict::Reproduced:
    return "reproduced";
  case Verdict::SalvagedPartial:
    return "salvaged-partial";
  case Verdict::InfraError:
    return "infra-error";
  }
  return "infra-error";
}

const char *light::ci::failureClassName(FailureClass C) {
  switch (C) {
  case FailureClass::None:
    return "none";
  case FailureClass::Bug:
    return "bug";
  case FailureClass::Crash:
    return "crash";
  case FailureClass::Hang:
    return "hang";
  case FailureClass::Oom:
    return "oom";
  case FailureClass::Infra:
    return "infra";
  }
  return "none";
}

uint64_t CorpusSummary::count(Verdict V) const {
  uint64_t N = 0;
  for (const ProgramVerdict &P : Programs)
    if (P.What == V)
      ++N;
  return N;
}

namespace {

void writeRecord(obs::JsonWriter &W, const RecordPhase &R) {
  W.beginObject();
  W.field("outcome", R.Outcome);
  W.field("failure_class", failureClassName(R.Failure));
  W.field("attempts", static_cast<uint64_t>(R.Attempts));
  W.field("exit_code", static_cast<int64_t>(R.ExitCode));
  W.field("signal", static_cast<int64_t>(R.Signal));
  W.field("watchdog_fired", R.WatchdogFired);
  W.field("seconds", R.Seconds);
  W.endObject();
}

void writeSalvage(obs::JsonWriter &W, const SalvagePhase &S) {
  W.beginObject();
  W.field("attempted", S.Attempted);
  W.field("loaded", S.Loaded);
  W.field("usable_prefix", S.UsablePrefix);
  W.field("clean_close", S.CleanClose);
  W.field("salvaged", S.Salvaged);
  W.field("spans", S.Spans);
  W.field("syscalls", S.Syscalls);
  W.field("segments_recovered", S.SegmentsRecovered);
  W.field("segments_dropped", S.SegmentsDropped);
  W.field("error", S.Error);
  W.endObject();
}

void writeExplore(obs::JsonWriter &W, const ExplorePhase &E) {
  W.beginObject();
  W.field("ran", E.Ran);
  W.field("strategy", E.Strategy);
  W.field("schedules", E.SchedulesRun);
  W.field("deadlocks", E.Deadlocks);
  W.field("hangs", E.Hangs);
  W.field("bug_found", E.BugFound);
  W.field("hang_found", E.HangFound);
  W.field("timed_out", E.TimedOut);
  W.field("seconds", E.Seconds);
  W.field("schedules_per_second", E.SchedulesPerSecond);
  W.endObject();
}

void writeShrink(obs::JsonWriter &W, const ShrinkPhase &S) {
  W.beginObject();
  W.field("ran", S.Ran);
  W.field("timed_out", S.TimedOut);
  W.field("original_statements", static_cast<uint64_t>(S.OriginalStatements));
  W.field("shrunk_statements", static_cast<uint64_t>(S.ShrunkStatements));
  W.field("probes", S.Probes);
  W.field("repro_path", S.ReproPath);
  W.endObject();
}

void writeVerify(obs::JsonWriter &W, const VerifyPhase &V) {
  W.beginObject();
  W.field("ran", V.Ran);
  W.field("reproduced", V.Reproduced);
  W.field("diverged", V.Diverged);
  W.field("detail", V.Detail);
  W.endObject();
}

void writeCalibration(obs::JsonWriter &W, const CalibrationInfo &C) {
  W.beginObject();
  W.field("ran", C.Ran);
  W.field("fork_runs", C.ForkRuns);
  W.field("insitu_runs", C.InsituRuns);
  W.field("fork_schedules_per_second", C.ForkSchedulesPerSecond);
  W.field("insitu_schedules_per_second", C.InsituSchedulesPerSecond);
  W.field("insitu_speedup", C.Speedup);
  W.endObject();
}

} // namespace

std::string light::ci::ciSummaryToJson(const CorpusSummary &S) {
  obs::JsonWriter W;
  W.beginObject();
  W.field("schema", "light-ci-v1");
  W.field("strategy", S.Strategy);
  W.field("deadline_seconds", S.DeadlineSeconds);
  W.key("programs");
  W.beginArray();
  for (const ProgramVerdict &P : S.Programs) {
    W.beginObject();
    W.field("name", P.Name);
    W.field("path", P.Path);
    W.field("verdict", verdictName(P.What));
    W.field("failure_class", failureClassName(P.Failure));
    W.field("why", P.Why);
    W.key("record");
    writeRecord(W, P.Record);
    W.key("salvage");
    writeSalvage(W, P.Salvage);
    W.key("explore");
    writeExplore(W, P.Explore);
    W.key("shrink");
    writeShrink(W, P.Shrink);
    W.key("verify");
    writeVerify(W, P.Verify);
    W.key("calibration");
    writeCalibration(W, P.Calibration);
    W.field("infra_retries", static_cast<uint64_t>(P.InfraRetries));
    W.field("seconds", P.Seconds);
    W.endObject();
  }
  W.endArray();
  W.key("counts");
  W.beginObject();
  W.field("pass", S.count(Verdict::Pass));
  W.field("flaky", S.count(Verdict::Flaky));
  W.field("reproduced", S.count(Verdict::Reproduced));
  W.field("salvaged-partial", S.count(Verdict::SalvagedPartial));
  W.field("infra-error", S.count(Verdict::InfraError));
  W.endObject();
  W.field("programs_total", static_cast<uint64_t>(S.Programs.size()));
  W.field("seconds", S.Seconds);
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

namespace {

/// Validation cursor: the first error wins; further checks are skipped.
struct Check {
  std::string Error;

  bool failed() const { return !Error.empty(); }
  void fail(const std::string &What) {
    if (Error.empty())
      Error = What;
  }

  const JsonValue *object(const JsonValue &V, const std::string &Key,
                          const std::string &Where) {
    if (failed())
      return nullptr;
    const JsonValue *M = V.find(Key);
    if (!M) {
      fail(Where + ": missing member '" + Key + "'");
      return nullptr;
    }
    if (!M->isObject()) {
      fail(Where + ": '" + Key + "' is not an object");
      return nullptr;
    }
    return M;
  }

  void boolean(const JsonValue &V, const std::string &Key,
               const std::string &Where) {
    if (failed())
      return;
    const JsonValue *M = V.find(Key);
    if (!M)
      fail(Where + ": missing member '" + Key + "'");
    else if (!M->isBool())
      fail(Where + ": '" + Key + "' is not a boolean");
  }

  double number(const JsonValue &V, const std::string &Key,
                const std::string &Where, bool NonNegative = true) {
    if (failed())
      return 0;
    const JsonValue *M = V.find(Key);
    if (!M) {
      fail(Where + ": missing member '" + Key + "'");
      return 0;
    }
    if (!M->isNumber()) {
      fail(Where + ": '" + Key + "' is not a number");
      return 0;
    }
    if (NonNegative && M->Num < 0)
      fail(Where + ": '" + Key + "' is negative");
    return M->Num;
  }

  std::string string(const JsonValue &V, const std::string &Key,
                     const std::string &Where) {
    if (failed())
      return "";
    const JsonValue *M = V.find(Key);
    if (!M) {
      fail(Where + ": missing member '" + Key + "'");
      return "";
    }
    if (!M->isString()) {
      fail(Where + ": '" + Key + "' is not a string");
      return "";
    }
    return M->Str;
  }

  bool getBool(const JsonValue &V, const std::string &Key) {
    const JsonValue *M = V.find(Key);
    return M && M->isBool() && M->B;
  }
};

bool validVerdict(const std::string &S) {
  return S == "pass" || S == "flaky" || S == "reproduced" ||
         S == "salvaged-partial" || S == "infra-error";
}

bool validFailureClass(const std::string &S) {
  return S == "none" || S == "bug" || S == "crash" || S == "hang" ||
         S == "oom" || S == "infra";
}

void checkProgram(Check &C, const JsonValue &P, size_t Index,
                  uint64_t Counts[5]) {
  std::string Where = "programs[" + std::to_string(Index) + "]";
  if (!P.isObject()) {
    C.fail(Where + ": not an object");
    return;
  }
  std::string Name = C.string(P, "name", Where);
  if (!C.failed() && Name.empty())
    C.fail(Where + ": empty program name");
  C.string(P, "path", Where);
  std::string V = C.string(P, "verdict", Where);
  if (!C.failed() && !validVerdict(V))
    C.fail(Where + ": unknown verdict '" + V + "'");
  std::string F = C.string(P, "failure_class", Where);
  if (!C.failed() && !validFailureClass(F))
    C.fail(Where + ": unknown failure_class '" + F + "'");
  C.string(P, "why", Where);
  C.number(P, "infra_retries", Where);
  C.number(P, "seconds", Where);
  if (C.failed())
    return;

  if (V == "pass")
    ++Counts[0];
  else if (V == "flaky")
    ++Counts[1];
  else if (V == "reproduced")
    ++Counts[2];
  else if (V == "salvaged-partial")
    ++Counts[3];
  else
    ++Counts[4];

  const JsonValue *Rec = C.object(P, "record", Where);
  if (Rec) {
    std::string RW = Where + ".record";
    C.string(*Rec, "outcome", RW);
    std::string RF = C.string(*Rec, "failure_class", RW);
    if (!C.failed() && !validFailureClass(RF))
      C.fail(RW + ": unknown failure_class '" + RF + "'");
    double Attempts = C.number(*Rec, "attempts", RW);
    if (!C.failed() && Attempts < 1)
      C.fail(RW + ": attempts < 1 (every program is attempted at least once)");
    C.number(*Rec, "exit_code", RW, /*NonNegative=*/false);
    C.number(*Rec, "signal", RW);
    C.boolean(*Rec, "watchdog_fired", RW);
    C.number(*Rec, "seconds", RW);
  }

  const JsonValue *Sal = C.object(P, "salvage", Where);
  if (Sal) {
    std::string SW = Where + ".salvage";
    C.boolean(*Sal, "attempted", SW);
    C.boolean(*Sal, "loaded", SW);
    C.boolean(*Sal, "usable_prefix", SW);
    C.boolean(*Sal, "clean_close", SW);
    C.boolean(*Sal, "salvaged", SW);
    C.number(*Sal, "spans", SW);
    C.number(*Sal, "syscalls", SW);
    C.number(*Sal, "segments_recovered", SW);
    C.number(*Sal, "segments_dropped", SW);
    C.string(*Sal, "error", SW);
  }

  const JsonValue *Exp = C.object(P, "explore", Where);
  if (Exp) {
    std::string EW = Where + ".explore";
    C.boolean(*Exp, "ran", EW);
    C.string(*Exp, "strategy", EW);
    C.number(*Exp, "schedules", EW);
    C.number(*Exp, "deadlocks", EW);
    C.number(*Exp, "hangs", EW);
    C.boolean(*Exp, "bug_found", EW);
    C.boolean(*Exp, "hang_found", EW);
    C.boolean(*Exp, "timed_out", EW);
    C.number(*Exp, "seconds", EW);
    C.number(*Exp, "schedules_per_second", EW);
  }

  const JsonValue *Shr = C.object(P, "shrink", Where);
  if (Shr) {
    std::string SW = Where + ".shrink";
    C.boolean(*Shr, "ran", SW);
    C.boolean(*Shr, "timed_out", SW);
    C.number(*Shr, "original_statements", SW);
    C.number(*Shr, "shrunk_statements", SW);
    C.number(*Shr, "probes", SW);
    C.string(*Shr, "repro_path", SW);
  }

  const JsonValue *Ver = C.object(P, "verify", Where);
  if (Ver) {
    std::string VW = Where + ".verify";
    C.boolean(*Ver, "ran", VW);
    C.boolean(*Ver, "reproduced", VW);
    C.boolean(*Ver, "diverged", VW);
    C.string(*Ver, "detail", VW);
  }

  const JsonValue *Cal = C.object(P, "calibration", Where);
  if (Cal) {
    std::string CW = Where + ".calibration";
    C.boolean(*Cal, "ran", CW);
    C.number(*Cal, "fork_runs", CW);
    C.number(*Cal, "insitu_runs", CW);
    C.number(*Cal, "fork_schedules_per_second", CW);
    C.number(*Cal, "insitu_schedules_per_second", CW);
    C.number(*Cal, "insitu_speedup", CW);
  }
  if (C.failed())
    return;

  // Cross-field invariants — the contract the robustness tests lean on.
  if (V == "infra-error" && Sal && C.getBool(*Sal, "usable_prefix"))
    C.fail(Where + ": verdict is infra-error but salvage.usable_prefix is "
                   "true (a usable prefix must degrade gracefully, never "
                   "surface as an infra failure)");
  if (V == "reproduced" && Ver && !C.getBool(*Ver, "reproduced"))
    C.fail(Where + ": verdict is reproduced but verify.reproduced is false");
  if (V == "flaky" && Exp && Ver &&
      !(C.getBool(*Exp, "bug_found") || C.getBool(*Exp, "hang_found")))
    C.fail(Where + ": verdict is flaky but exploration found nothing");
  if (V == "pass" && F != "none")
    C.fail(Where + ": verdict is pass but failure_class is '" + F + "'");
}

} // namespace

std::string light::ci::validateCiSummaryJson(const std::string &Text) {
  obs::JsonParseResult R = obs::parseJson(Text);
  if (!R.Ok)
    return "not valid JSON: " + R.Error;
  const JsonValue &Top = R.Value;
  Check C;
  if (!Top.isObject())
    return "top level is not an object";
  std::string Schema = C.string(Top, "schema", "top");
  if (!C.failed() && Schema != "light-ci-v1")
    C.fail("top: schema is '" + Schema + "', want 'light-ci-v1'");
  C.string(Top, "strategy", "top");
  C.number(Top, "deadline_seconds", "top");
  C.number(Top, "seconds", "top");
  if (C.failed())
    return C.Error;

  const JsonValue *Programs = Top.find("programs");
  if (!Programs)
    return "top: missing member 'programs'";
  if (!Programs->isArray())
    return "top: 'programs' is not an array";

  uint64_t Counts[5] = {0, 0, 0, 0, 0};
  for (size_t I = 0; I < Programs->Items.size(); ++I) {
    checkProgram(C, Programs->Items[I], I, Counts);
    if (C.failed())
      return C.Error;
  }

  double Total = C.number(Top, "programs_total", "top");
  if (!C.failed() && Total != static_cast<double>(Programs->Items.size()))
    C.fail("top: programs_total does not match the programs array length");

  const JsonValue *CountsObj = C.object(Top, "counts", "top");
  if (CountsObj) {
    const char *Keys[5] = {"pass", "flaky", "reproduced", "salvaged-partial",
                           "infra-error"};
    for (int I = 0; I < 5; ++I) {
      double N = C.number(*CountsObj, Keys[I], "counts");
      if (!C.failed() && N != static_cast<double>(Counts[I]))
        C.fail(std::string("counts: '") + Keys[I] +
               "' disagrees with the per-program verdicts");
    }
  }
  return C.Error;
}

//===- ci/CiOrchestrator.cpp - Resilient corpus CI pipeline ----------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "ci/CiOrchestrator.h"

#include "analysis/SharedAccessAnalysis.h"
#include "ci/Sandbox.h"
#include "core/LightRecorder.h"
#include "explore/ProgramShrinker.h"
#include "interp/Machine.h"
#include "mir/Parser.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/BinaryIO.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>

using namespace light;
using namespace light::ci;
using namespace light::explore;

namespace {

// Child exit protocol (see the header comment).
constexpr int ExitClean = 0;
constexpr int ExitBug = 40;
constexpr int ExitHang = 41;
constexpr int ExitCrash = 42;
constexpr int ExitInfra = 50;

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Name =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Name.rfind(".mir");
  if (Dot != std::string::npos && Dot + 4 == Name.size())
    Name.resize(Dot);
  return Name;
}

/// Extracts the `; ci-fault: <spec>` directive from program text ("" when
/// absent). Only the first directive counts.
std::string ciFaultDirective(const std::string &Text) {
  static const char Marker[] = "; ci-fault:";
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Pos = Line.find_first_not_of(" \t");
    if (Pos == std::string::npos)
      continue;
    if (Line.compare(Pos, sizeof(Marker) - 1, Marker) == 0) {
      std::string Spec = Line.substr(Pos + sizeof(Marker) - 1);
      size_t B = Spec.find_first_not_of(" \t");
      size_t E = Spec.find_last_not_of(" \t\r");
      if (B == std::string::npos)
        return "";
      return Spec.substr(B, E - B + 1);
    }
  }
  return "";
}

/// A Scheduler that delegates to RandomScheduler while recording every
/// choice — how the in-situ confirmation run turns the recording seed into
/// a replayable DecisionTrace.
class CapturingRandomScheduler : public Scheduler {
  RandomScheduler Inner;
  DecisionTrace Choices;

public:
  explicit CapturingRandomScheduler(uint64_t Seed) : Inner(Seed) {}
  ThreadId pick(const std::vector<ThreadId> &Runnable) override {
    ThreadId T = Inner.pick(Runnable);
    Choices.push_back(T);
    return T;
  }
  const DecisionTrace &choices() const { return Choices; }
};

/// The recording child's whole life, run inside the fork sandbox. Returns
/// the protocol exit code; the kill sites die harder than any return.
int recordChildBody(const mir::Program &Prog, const CiOptions &Opts,
                    const std::string &LogPath,
                    const std::string &Directive) {
  fault::Injector &Faults = fault::Injector::global();
  if (!Directive.empty())
    Faults.configure(Directive); // child-only: the fork isolates this
  if (Faults.shouldFire("ci.kill_child.start"))
    ::raise(SIGKILL); // dies before the durable log exists

  LightOptions LO;
  LO.WriteToDisk = false;
  LO.EpochSpans = Opts.EpochSpans;
  LO.DurableLogPath = LogPath;
  LightRecorder Rec(LO);
  Machine M(Prog, Rec);
  Rec.attachRegistry(&M.registry());
  M.seedEnvironment(Opts.RecordSeed ^ 0x5a5a);
  RandomScheduler Sched(Opts.RecordSeed);
  RunResult R = M.run(Sched, Opts.ChildInstructionBudget);

  if (Faults.shouldFire("ci.kill_child.record"))
    ::raise(SIGKILL); // dies after the run, with only epoch flushes on disk

  if (R.Completed) {
    Rec.finish(&M.registry());
    const DurableLogWriter *DL = Rec.durableLog();
    if (!DL || !DL->ok())
      return ExitInfra; // durable write failed: harness trouble, retryable
    if (Faults.shouldFire("ci.kill_child.flush"))
      ::raise(SIGKILL);
    return ExitClean;
  }

  // The run failed: persist everything crash-handler style (final segment,
  // no clean-close marker) and report the failure class via the exit code.
  Rec.crashFlush();
  if (Faults.shouldFire("ci.kill_child.flush"))
    ::raise(SIGKILL);
  if (isApplicationBug(R.Bug))
    return ExitBug;
  bool Hang = R.Bug.What == BugReport::Kind::RuntimeError &&
              R.InstructionsExecuted >= Opts.ChildInstructionBudget;
  return Hang ? ExitHang : ExitCrash;
}

/// Maps a sandbox result onto the record-phase failure classification.
void classifyRecord(const SandboxResult &SR, const CiOptions &Opts,
                    RecordPhase &Out) {
  Out.ExitCode = SR.ExitCode;
  Out.Signal = SR.Signal;
  Out.WatchdogFired = SR.WatchdogFired;
  Out.Seconds = SR.Seconds;
  switch (SR.End) {
  case SandboxEnd::SpawnFailed:
    Out.Failure = FailureClass::Infra;
    Out.Outcome = "spawn-failed";
    return;
  case SandboxEnd::DeadlineKilled:
    Out.Failure = FailureClass::Hang;
    Out.Outcome = "hang";
    return;
  case SandboxEnd::Signaled:
    if (SR.Signal == SIGXCPU) {
      Out.Failure = FailureClass::Hang;
      Out.Outcome = "hang";
    } else if (SR.Signal == SIGABRT && Opts.MemoryBytes > 0) {
      Out.Failure = FailureClass::Oom;
      Out.Outcome = "oom";
    } else {
      Out.Failure = FailureClass::Crash;
      Out.Outcome = "crash";
    }
    return;
  case SandboxEnd::Exited:
    switch (SR.ExitCode) {
    case ExitClean:
      Out.Failure = FailureClass::None;
      Out.Outcome = "clean";
      return;
    case ExitBug:
      Out.Failure = FailureClass::Bug;
      Out.Outcome = "bug";
      return;
    case ExitHang:
      Out.Failure = FailureClass::Hang;
      Out.Outcome = "hang";
      return;
    case ExitInfra:
      Out.Failure = FailureClass::Infra;
      Out.Outcome = "io-failed";
      return;
    default:
      Out.Failure = FailureClass::Crash;
      Out.Outcome = "crash";
      return;
    }
  }
}

/// What the in-situ search phase produced.
struct SearchOutcome {
  bool Found = false;
  bool IsHang = false;
  DecisionTrace Trace;
  BugReport Bug; ///< valid when Found && !IsHang
};

/// True when \p R is an in-situ hang under \p Budget instructions.
bool isInsituHang(const RunResult &R, uint64_t Budget) {
  return !R.Completed && R.Bug.What == BugReport::Kind::RuntimeError &&
         R.InstructionsExecuted >= Budget;
}

/// One in-situ execution of \p Trace (prefix + non-preemptive default).
RunResult runTrace(const mir::Program &Prog, const DecisionTrace &Trace,
                   uint64_t EnvSeed, uint64_t Budget) {
  NullHook Null;
  Machine M(Prog, Null);
  M.seedEnvironment(EnvSeed ^ 0x5a5a);
  TraceScheduler Sched(Trace);
  return M.run(Sched, Budget);
}

/// The explore stage: confirm the recorded failure in-situ when there was
/// one, otherwise (or on a miss) search nearby schedules. Every execution
/// here is in-process and instruction-bounded — the fast path.
SearchOutcome exploreStage(const mir::Program &Prog, const CiOptions &Opts,
                           FailureClass RecordFailure, ExplorePhase &Phase,
                           ShrinkPhase &Shrink) {
  SearchOutcome Out;
  Phase.Ran = true;
  Phase.Strategy = Opts.Strategy;
  Stopwatch Timer;
  fault::Injector &Faults = fault::Injector::global();

  if (Faults.shouldFire("ci.explore_timeout")) {
    // Deterministic timeout edge: no search happens; degrade to the
    // best-so-far schedule, which with zero schedules run is the baseline.
    Phase.TimedOut = true;
    Phase.Seconds = Timer.seconds();
    return Out;
  }

  // In-situ confirmation: the recording seed deterministically pins the
  // schedule, so one bounded re-execution usually recovers the failing
  // trace without any search.
  if (RecordFailure != FailureClass::None &&
      RecordFailure != FailureClass::Infra) {
    NullHook Null;
    Machine M(Prog, Null);
    M.seedEnvironment(Opts.RecordSeed ^ 0x5a5a);
    CapturingRandomScheduler Sched(Opts.RecordSeed);
    RunResult R = M.run(Sched, Opts.InsituInstructionBudget);
    ++Phase.SchedulesRun;
    bool Hang = isInsituHang(R, Opts.InsituInstructionBudget);
    if (Hang)
      ++Phase.Hangs;
    if (R.Bug.What == BugReport::Kind::Deadlock)
      ++Phase.Deadlocks;
    bool Confirmed = false;
    switch (RecordFailure) {
    case FailureClass::Bug:
      Confirmed = isApplicationBug(R.Bug);
      break;
    case FailureClass::Hang:
      Confirmed = Hang || R.Bug.What == BugReport::Kind::Deadlock;
      break;
    case FailureClass::Crash:
      Confirmed = R.Bug.What == BugReport::Kind::RuntimeError && !Hang;
      break;
    default:
      break;
    }
    if (Confirmed) {
      Out.Found = true;
      Out.IsHang = Hang && !isApplicationBug(R.Bug);
      Out.Trace = Sched.choices();
      Out.Bug = R.Bug;
      Phase.BugFound = isApplicationBug(R.Bug);
      Phase.HangFound = Out.IsHang;
      Phase.Seconds = Timer.seconds();
      Phase.SchedulesPerSecond =
          Phase.Seconds > 0 ? Phase.SchedulesRun / Phase.Seconds : 0;
      obs::Registry::global().counter("ci.insitu_confirms").add(1);
      return Out;
    }
  }

  ExploreOptions EO = Opts.Explore;
  EO.EnvSeed = Opts.RecordSeed;
  EO.MaxInstructions = Opts.InsituInstructionBudget;
  EO.WallBudgetSeconds = Opts.ExploreBudgetSeconds;
  EO.TreatHangAsBug = true;
  EO.StopAtFirstBug = true;
  ExploreReport Report = Opts.Strategy == "dfs" ? exploreDfs(Prog, EO)
                                                : explorePct(Prog, EO);
  Phase.SchedulesRun += Report.SchedulesRun;
  Phase.Deadlocks += Report.Deadlocks;
  Phase.Hangs += Report.Hangs;
  Phase.BugFound = Report.BugFound;
  Phase.HangFound = Report.HangFound;
  Phase.TimedOut = Report.TimedOut;
  Phase.Seconds = Timer.seconds();
  Phase.SchedulesPerSecond =
      Phase.Seconds > 0 ? Phase.SchedulesRun / Phase.Seconds : 0;

  if (Report.BugFound) {
    Out.Found = true;
    Out.Trace = Report.FailingTrace;
    Out.Bug = Report.Bug;
  } else if (Report.HangFound) {
    Out.Found = true;
    Out.IsHang = true;
    Out.Trace = Report.HangTrace;
  } else if (Report.TimedOut && !Report.BestTrace.empty()) {
    // Timed out empty-handed: remember the most adversarial schedule seen
    // so the shrink/verify stages have *something* to attach to artifacts.
    Shrink.ReproPath = ""; // nothing verified; recorded via Why upstream
    Out.Trace = Report.BestTrace;
  }
  return Out;
}

/// The shrink + dump stage. Returns the repro actually written (empty
/// schedule + original program when shrinking was skipped).
Repro shrinkStage(const mir::Program &Prog, const CiOptions &Opts,
                  const SearchOutcome &Found, const std::string &ReproPath,
                  ShrinkPhase &Phase) {
  fault::Injector &Faults = fault::Injector::global();
  Repro Out;
  Out.Prog = Prog;
  Out.Schedule = Found.Trace;
  Out.EnvSeed = Opts.RecordSeed;
  Out.Note = Found.IsHang ? "hang: instruction budget exhausted"
                          : "bug: " + Found.Bug.str();
  Phase.OriginalStatements = statementCount(Prog);
  Phase.ShrunkStatements = Phase.OriginalStatements;

  if (Faults.shouldFire("ci.shrink_timeout")) {
    // Deterministic shrink-budget edge: ship the unshrunk repro.
    Phase.TimedOut = true;
  } else {
    Phase.Ran = true;
    uint64_t Budget = Opts.InsituInstructionBudget;
    FailPredicate StillFails;
    if (Found.IsHang) {
      StillFails = [&](const mir::Program &P, const DecisionTrace &S) {
        return isInsituHang(runTrace(P, S, Opts.RecordSeed, Budget), Budget);
      };
    } else {
      BugReport::Kind Want = Found.Bug.What;
      StillFails = [&, Want](const mir::Program &P, const DecisionTrace &S) {
        return runTrace(P, S, Opts.RecordSeed, Budget).Bug.What == Want;
      };
    }
    // Hangs pay the full budget on every probe, so they get a tighter cap.
    ShrinkOptions SO;
    SO.MaxProbes = Found.IsHang ? 48 : 300;
    SO.MaxRounds = Found.IsHang ? 2 : 3;
    ShrinkResult SR = explore::shrink(Prog, Found.Trace, StillFails, SO);
    Phase.ShrunkStatements = SR.ShrunkStatements;
    Phase.Probes = SR.ProbesRun;
    Out.Prog = SR.Shrunk;
    Out.Schedule = SR.Schedule;
  }

  std::string Err = dumpRepro(ReproPath, Out);
  if (Err.empty())
    Phase.ReproPath = ReproPath;
  return Out;
}

/// The verify stage: reload the dumped repro and re-execute it in-situ,
/// expecting the same failure class.
void verifyStage(const CiOptions &Opts, const SearchOutcome &Found,
                 const std::string &ReproPath, VerifyPhase &Phase) {
  Phase.Ran = true;
  fault::Injector &Faults = fault::Injector::global();
  std::string Err;
  std::optional<Repro> R = loadRepro(ReproPath, &Err);
  if (!R) {
    Phase.Diverged = true;
    Phase.Detail = "repro unreadable: " + Err;
    return;
  }
  RunResult Run = runTrace(R->Prog, R->Schedule, R->EnvSeed,
                           Opts.InsituInstructionBudget);
  bool Match =
      Found.IsHang
          ? isInsituHang(Run, Opts.InsituInstructionBudget) ||
                Run.Bug.What == BugReport::Kind::Deadlock
          : Run.Bug.What == Found.Bug.What;
  if (Faults.shouldFire("ci.verify_diverge")) {
    Match = false;
    Phase.Detail = "injected divergence (ci.verify_diverge)";
  }
  if (Match) {
    Phase.Reproduced = true;
  } else {
    Phase.Diverged = true;
    if (Phase.Detail.empty())
      Phase.Detail = Run.Completed
                         ? "repro ran clean"
                         : "repro failed differently: " + Run.Bug.str();
  }
}

/// Fork-vs-in-situ throughput calibration on \p Prog.
void calibrate(const mir::Program &Prog, const CiOptions &Opts,
               CalibrationInfo &Out) {
  ExploreOptions EO = Opts.Explore;
  EO.EnvSeed = Opts.RecordSeed;
  EO.MaxInstructions = Opts.InsituInstructionBudget;
  EO.StopAtFirstBug = false;
  EO.WallBudgetSeconds = 0;

  // Fork path: one sandboxed process per schedule, the cost the in-situ
  // fast path avoids.
  SandboxOptions SO;
  SO.DeadlineSeconds = Opts.DeadlineSeconds;
  SO.CpuSeconds = Opts.CpuSeconds;
  Stopwatch ForkTimer;
  uint64_t ForkOk = 0;
  for (uint64_t I = 1; I <= Opts.CalibrationForkRuns; ++I) {
    SandboxResult SR = runInSandbox(SO, [&Prog, &EO, I] {
      ExplorationDriver Driver(Prog, EO);
      Driver.runPct(I, EO.PctDepth, 64);
      return 0;
    });
    if (SR.End == SandboxEnd::Exited)
      ++ForkOk;
  }
  double ForkSeconds = ForkTimer.seconds();

  // In-situ path: the same PCT runs, in-process.
  ExploreOptions IO = EO;
  IO.ScheduleBudget = Opts.CalibrationInsituSchedules;
  IO.PctSeeds = Opts.CalibrationInsituSchedules;
  ExploreReport Insitu = explorePct(Prog, IO);

  Out.Ran = true;
  Out.ForkRuns = ForkOk;
  Out.InsituRuns = Insitu.SchedulesRun;
  Out.ForkSchedulesPerSecond = ForkSeconds > 0 ? ForkOk / ForkSeconds : 0;
  Out.InsituSchedulesPerSecond = Insitu.schedulesPerSecond();
  Out.Speedup = Out.ForkSchedulesPerSecond > 0
                    ? Out.InsituSchedulesPerSecond / Out.ForkSchedulesPerSecond
                    : 0;
  obs::Registry &Reg = obs::Registry::global();
  Reg.gauge("ci.calibration.insitu_speedup_x")
      .set(static_cast<int64_t>(Out.Speedup));
}

bool ensureDir(const std::string &Dir) {
  struct stat St;
  if (::stat(Dir.c_str(), &St) == 0)
    return S_ISDIR(St.st_mode);
  return ::mkdir(Dir.c_str(), 0755) == 0;
}

} // namespace

ProgramVerdict light::ci::runProgramCi(const std::string &Path,
                                       const CiOptions &Opts) {
  obs::TraceSpan Span("ci.program", "ci");
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("ci.programs").add(1);
  Stopwatch Total;

  ProgramVerdict PV;
  PV.Name = baseName(Path);
  PV.Path = Path;

  std::string ArtifactDir =
      Opts.ArtifactDir.empty() ? makeTempPath("ci-artifacts")
                               : Opts.ArtifactDir;
  if (!ensureDir(ArtifactDir)) {
    PV.What = Verdict::InfraError;
    PV.Failure = FailureClass::Infra;
    PV.Why = "cannot create artifact directory '" + ArtifactDir + "'";
    PV.Record.Outcome = "io-failed";
    PV.Record.Failure = FailureClass::Infra;
    PV.Record.Attempts = 1;
    PV.Seconds = Total.seconds();
    return PV;
  }

  // Load + analyze the program. A parse failure is an infra error by
  // definition: nothing ran, nothing can be salvaged.
  std::ifstream In(Path);
  std::stringstream Buf;
  if (In)
    Buf << In.rdbuf();
  std::string Text = Buf.str();
  mir::ParseResult Parsed = mir::parseProgram(Text);
  std::string VerifyErr = Parsed.Ok ? Parsed.Prog.verify() : "";
  if (!In || !Parsed.Ok || !VerifyErr.empty()) {
    PV.What = Verdict::InfraError;
    PV.Failure = FailureClass::Infra;
    PV.Why = !In ? "cannot read '" + Path + "'"
                 : "unparseable program: " +
                       (Parsed.Ok ? VerifyErr : Parsed.Error);
    PV.Record.Outcome = "io-failed";
    PV.Record.Failure = FailureClass::Infra;
    PV.Record.Attempts = 1;
    PV.Seconds = Total.seconds();
    Reg.counter("ci.verdict.infra-error").add(1);
    return PV;
  }
  mir::Program Prog = std::move(Parsed.Prog);
  analysis::markSharedAccesses(Prog);
  std::string Directive = ciFaultDirective(Text);

  std::string LogPath = ArtifactDir + "/" + PV.Name + ".lightlog";
  std::string ReproPath = ArtifactDir + "/" + PV.Name + ".repro.mir";

  // --- Record stage: sandboxed first contact, infra failures retried with
  // exponential backoff, program failures taken as the signal. ---
  SandboxOptions SBO;
  SBO.DeadlineSeconds = Opts.DeadlineSeconds;
  SBO.CpuSeconds = Opts.CpuSeconds;
  SBO.MemoryBytes = Opts.MemoryBytes;
  double Backoff = Opts.BackoffInitialSeconds;
  for (uint32_t Attempt = 1;; ++Attempt) {
    PV.Record.Attempts = Attempt;
    std::remove(LogPath.c_str());
    SandboxResult SR = runInSandbox(SBO, [&Prog, &Opts, &LogPath,
                                          &Directive] {
      return recordChildBody(Prog, Opts, LogPath, Directive);
    });
    classifyRecord(SR, Opts, PV.Record);
    if (PV.Record.Failure != FailureClass::Infra)
      break;
    if (Attempt > Opts.MaxInfraRetries)
      break;
    ++PV.InfraRetries;
    Reg.counter("ci.retries").add(1);
    std::this_thread::sleep_for(std::chrono::duration<double>(Backoff));
    Backoff *= 2;
  }
  PV.Failure = PV.Record.Failure;

  // --- Salvage stage: whenever the recording did not end cleanly, scavenge
  // whatever the child left on disk. Even a final infra failure may sit on
  // top of a perfectly usable prefix from an earlier attempt's epochs. ---
  bool RecordedClean = PV.Record.Failure == FailureClass::None;
  if (!RecordedClean) {
    PV.Salvage.Attempted = true;
    SalvageOutcome S = salvageRecording(LogPath);
    PV.Salvage.Loaded = S.Loaded;
    PV.Salvage.UsablePrefix = S.UsablePrefix;
    PV.Salvage.CleanClose = S.Report.CleanClose;
    PV.Salvage.Salvaged = S.Report.Salvaged;
    PV.Salvage.Spans = S.Log.Spans.size();
    PV.Salvage.Syscalls = S.Log.Syscalls.size();
    PV.Salvage.SegmentsRecovered = S.Report.SegmentsRecovered;
    PV.Salvage.SegmentsDropped = S.Report.SegmentsDropped;
    PV.Salvage.Error = S.Error;
  }

  // --- Explore / shrink / verify: all in-situ. Infra-final outcomes skip
  // the search (the program itself was never the problem). ---
  SearchOutcome Found;
  if (PV.Record.Failure != FailureClass::Infra) {
    Found = exploreStage(Prog, Opts, PV.Record.Failure, PV.Explore,
                         PV.Shrink);
    if (Found.Found) {
      shrinkStage(Prog, Opts, Found, ReproPath, PV.Shrink);
      verifyStage(Opts, Found, ReproPath, PV.Verify);
    }
  }

  // --- Verdict assembly (the state machine of DESIGN.md section 9). ---
  if (RecordedClean) {
    if (Found.Found && PV.Verify.Reproduced) {
      PV.What = Verdict::Flaky;
      PV.Why = "recorded clean, but a nearby schedule fails (verified): " +
               (Found.IsHang ? std::string("hang") : Found.Bug.str());
    } else if (Found.Found) {
      PV.What = Verdict::Pass;
      PV.Why = "recorded clean; a candidate failing schedule did not "
               "verify and was discarded";
    } else {
      PV.What = Verdict::Pass;
      PV.Why = PV.Explore.TimedOut
                   ? "recorded clean; exploration hit its wall budget "
                     "without a failure"
                   : "recorded clean; no failing schedule within budget";
    }
  } else if (PV.Record.Failure == FailureClass::Infra) {
    if (PV.Salvage.UsablePrefix) {
      PV.What = Verdict::SalvagedPartial;
      PV.Why = "harness failed after " +
               std::to_string(PV.Record.Attempts) +
               " attempt(s), but a usable log prefix was salvaged";
    } else {
      PV.What = Verdict::InfraError;
      PV.Why = "harness failure (" + PV.Record.Outcome + ") after " +
               std::to_string(PV.Record.Attempts) + " attempt(s)";
    }
  } else if (Found.Found && PV.Verify.Reproduced) {
    PV.What = Verdict::Reproduced;
    PV.Why = std::string(failureClassName(PV.Record.Failure)) +
             " reproduced by a verified repro" +
             (PV.Shrink.TimedOut ? " (unshrunk: shrink budget expired)"
                                 : "");
  } else if (PV.Salvage.UsablePrefix) {
    PV.What = Verdict::SalvagedPartial;
    PV.Why = std::string(failureClassName(PV.Record.Failure)) +
             " at record; log prefix salvaged but no verified repro (" +
             (Found.Found ? "verify diverged" : "explore found nothing") +
             ")";
  } else {
    PV.What = Verdict::InfraError;
    PV.Why = std::string(failureClassName(PV.Record.Failure)) +
             " at record and the child left no usable recording";
  }

  if (Opts.Calibrate)
    calibrate(Prog, Opts, PV.Calibration);

  PV.Seconds = Total.seconds();
  Reg.counter(std::string("ci.verdict.") + verdictName(PV.What)).add(1);
  return PV;
}

CorpusSummary light::ci::runCorpusCi(const std::vector<std::string> &Paths,
                                     const CiOptions &Opts) {
  obs::TraceSpan Span("ci.corpus", "ci");
  Stopwatch Total;
  CorpusSummary Out;
  Out.Strategy = Opts.Strategy;
  Out.DeadlineSeconds = Opts.DeadlineSeconds;
  for (const std::string &P : Paths)
    Out.Programs.push_back(runProgramCi(P, Opts));
  Out.Seconds = Total.seconds();
  return Out;
}

bool light::ci::listCorpusDir(const std::string &Dir,
                              std::vector<std::string> &Out,
                              std::string &Error) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    Error = "cannot open directory '" + Dir + "'";
    return false;
  }
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".mir") == 0)
      Out.push_back(Dir + "/" + Name);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return true;
}

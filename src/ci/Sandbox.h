//===- ci/Sandbox.h - Forked child sandbox for first contact ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CI harness's process sandbox: runs a callable in a freshly forked
/// child under resource ceilings (RLIMIT_CPU, RLIMIT_AS) and a parent-side
/// monotonic Watchdog that SIGKILLs the child when its wall-clock deadline
/// expires. The fork happens *before* the watchdog thread starts, so the
/// child is always single-threaded at birth (no multithreaded-fork
/// hazards); the child additionally arms an in-process alarm(2) fallback so
/// it dies even if the parent is gone.
///
/// This is the "first contact" path: the first execution of an untrusted
/// corpus program always happens here, where a crash, a runaway allocation,
/// or a genuine spin loop can only take down the disposable child. Repeat
/// executions (schedule exploration, shrinking, verification) use the
/// in-situ in-process fast path instead — see ci/CiOrchestrator.
///
/// Fault sites (support/FaultInjection.h):
///   ci.spawn_fail      fork is not attempted; the result is SpawnFailed —
///                      the retryable infra-failure edge
///   ci.watchdog_fire   (in support/Watchdog) the parent watchdog fires
///                      immediately — the deterministic deadline-kill edge
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_CI_SANDBOX_H
#define LIGHT_CI_SANDBOX_H

#include <cstdint>
#include <functional>
#include <string>

namespace light {
namespace ci {

/// Sandbox knobs. Zero disables the corresponding limit.
struct SandboxOptions {
  /// Parent-side wall-clock deadline in seconds; on expiry the child is
  /// SIGKILLed and the result is DeadlineKilled.
  double DeadlineSeconds = 10;
  /// RLIMIT_CPU for the child in seconds (kernel SIGXCPU backstop).
  uint64_t CpuSeconds = 0;
  /// RLIMIT_AS for the child in bytes. Skipped in sanitizer builds (see
  /// support/Rlimits.h).
  uint64_t MemoryBytes = 0;
  /// Child arms alarm(ceil(2 * DeadlineSeconds)) so it dies even without
  /// the parent — belt and braces behind the Watchdog.
  bool SigalrmFallback = true;
};

/// How the sandboxed child ended.
enum class SandboxEnd {
  Exited,         ///< normal _exit; ExitCode is valid
  Signaled,       ///< killed by a signal the sandbox did not send
  DeadlineKilled, ///< the parent watchdog SIGKILLed it past the deadline
  SpawnFailed,    ///< fork failed (or ci.spawn_fail fired); retryable
};

/// Outcome of one sandboxed run.
struct SandboxResult {
  SandboxEnd End = SandboxEnd::SpawnFailed;
  int ExitCode = -1;      ///< valid when End == Exited
  int Signal = 0;         ///< valid when End == Signaled / DeadlineKilled
  bool WatchdogFired = false;
  double Seconds = 0;     ///< wall-clock time from fork to reap
  std::string Error;      ///< set when End == SpawnFailed

  bool exitedWith(int Code) const {
    return End == SandboxEnd::Exited && ExitCode == Code;
  }
};

/// Forks and runs \p Body in the child under \p Opts; the child exits with
/// Body's return value (via _exit — no atexit handlers, no stream flush,
/// matching how a crashed recorder dies). Blocks until the child is reaped.
/// Never throws.
SandboxResult runInSandbox(const SandboxOptions &Opts,
                           const std::function<int()> &Body);

} // namespace ci
} // namespace light

#endif // LIGHT_CI_SANDBOX_H

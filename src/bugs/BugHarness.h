//===- bugs/BugHarness.h - Record/solve/replay drivers ----------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers reproducing a bug benchmark with each of the three tools of
/// Section 5.3 — Light, Clap, Chimera — plus the schedule search that finds
/// a failing interleaving in the first place. Used by the Figure 6 matrix
/// bench, the Table 1 bench, and the bug-suite tests.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_BUGS_BUGHARNESS_H
#define LIGHT_BUGS_BUGHARNESS_H

#include "bugs/BugPrograms.h"
#include "core/LightOptions.h"
#include "interp/Machine.h"
#include "smt/Z3Backend.h"

#include <optional>
#include <string>

namespace light {
namespace bugs {

/// Outcome of one tool's reproduction attempt.
struct ToolAttempt {
  /// Did the bug manifest at all during the (possibly patched) recording?
  bool BugFound = false;
  /// Did the replay reproduce the correlated failure (Definition 3.3)?
  bool Reproduced = false;
  std::string Note;

  uint64_t Seed = 0;
  double RecordSeconds = 0;
  double SolveSeconds = 0;
  double ReplaySeconds = 0;
  uint64_t SpaceLongs = 0;

  /// Solver statistics of the schedule solve (Values cleared; only the
  /// counts and timing are kept). Zero for tools that do not solve a
  /// constraint system. Report these via smt::solveStatEntries so every
  /// bench uses the same metric names.
  smt::SolveResult SolverStats;
};

/// Searches seeds [1, MaxSeeds] for a schedule where \p Prog fails with an
/// application bug (not a runtime anomaly). Returns the seed, and the
/// report via \p Out when non-null.
std::optional<uint64_t> findBuggySeed(const mir::Program &Prog,
                                      uint64_t MaxSeeds,
                                      BugReport *Out = nullptr);

/// Record with Light (options + engine), solve, replay with validation.
/// \p SolverShards is forwarded to ReplaySchedule::build (1 = monolithic,
/// 0 = auto, N = up to N concurrent constraint shards).
ToolAttempt lightReproduce(const BugBenchmark &Bench, uint64_t Seed,
                           LightOptions Opts = LightOptions(),
                           smt::SolverEngine Engine = smt::SolverEngine::Idl,
                           unsigned SolverShards = 1);

/// Record branch traces, run the symbolic analysis, replay if supported.
ToolAttempt clapReproduce(const BugBenchmark &Bench, uint64_t Seed);

/// Patch, search up to \p MaxSeeds for a failing schedule of the patched
/// program, record lock order, replay. BugFound == false means the patch
/// hid the bug (the paper's Chimera misses).
ToolAttempt chimeraReproduce(const BugBenchmark &Bench,
                             uint64_t MaxSeeds = 60);

} // namespace bugs
} // namespace light

#endif // LIGHT_BUGS_BUGHARNESS_H

//===- bugs/DistBugPrograms.cpp - Distributed message-passing bug kernels -===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
//
// Schedule-dependent kernels over the channel surface, written to the
// multi-node convention of dist/DistRunner.h: each program defines a unary
// `node(index)` function, and its own entry spawns node(i) threads so the
// same program runs in-process (explorer, oracle, shrinker, this suite's
// record/replay matrix) and across forked node processes (light-replay
// record --nodes N). Every kernel has both clean and failing schedules.
//
//===----------------------------------------------------------------------===//

#include "bugs/BugPrograms.h"

#include "analysis/SharedAccessAnalysis.h"
#include "mir/Builder.h"

#include <cassert>

using namespace light;
using namespace light::bugs;
using namespace light::mir;

namespace {

/// Emits `for (i = 0; i < N; ++i) { body }`. \p Body receives the loop
/// counter register.
template <typename Fn>
void emitLoop(FunctionBuilder &FB, int64_t N, Fn Body) {
  Reg I = FB.newReg(), Bound = FB.newReg(), One = FB.newReg();
  Reg Cond = FB.newReg();
  FB.constInt(I, 0);
  FB.constInt(Bound, N);
  FB.constInt(One, 1);
  Label Head = FB.makeLabel(), BodyL = FB.makeLabel(), Done = FB.makeLabel();
  FB.place(Head);
  FB.cmpLt(Cond, I, Bound);
  FB.br(Cond, BodyL, Done);
  FB.place(BodyL);
  Body(I);
  FB.add(I, I, One);
  FB.jmp(Head);
  FB.place(Done);
}

/// Emits the `node(i)` dispatcher — a chain of `if (i == k) role_k()` —
/// and the entry function that spawns one `node(i)` thread per node and
/// joins them. \p Roles[k] runs as node k.
void emitNodeConvention(ProgramBuilder &PB, FuncId NodeFn,
                        const std::vector<FuncId> &Roles) {
  {
    FunctionBuilder FB = PB.beginFunction("node", 1);
    Reg Idx = FB.param(0);
    Reg K = FB.newReg(), IsK = FB.newReg();
    for (size_t R = 0; R + 1 < Roles.size(); ++R) {
      Label Hit = FB.makeLabel(), Next = FB.makeLabel();
      FB.constInt(K, static_cast<int64_t>(R));
      FB.cmpEq(IsK, Idx, K);
      FB.br(IsK, Hit, Next);
      FB.place(Hit);
      FB.call(NoReg, Roles[R]);
      FB.ret();
      FB.place(Next);
    }
    FB.call(NoReg, Roles.back());
    FB.ret();
    PB.defineFunction(NodeFn, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    std::vector<Reg> Tids;
    Reg Idx = FB.newReg();
    for (size_t R = 0; R < Roles.size(); ++R) {
      Reg T = FB.newReg();
      FB.constInt(Idx, static_cast<int64_t>(R));
      FB.threadStart(T, NodeFn, Idx);
      Tids.push_back(T);
    }
    for (Reg T : Tids)
      FB.threadJoin(T);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
}

} // namespace

// --- Dist-Reorder: cross-sender delivery order assumed, never promised ------
//
// Node 1 announces the initial value, node 2 the update, both on the same
// bus; node 0 applies them in arrival order assuming the announcement
// lands first. Per-sender FIFO holds, but nothing orders the two senders
// against each other: a schedule where node 2's send wins the race
// delivers update-before-init and the receiver applies them backwards.
Program light::bugs::distReorder() {
  ProgramBuilder PB;
  uint32_t Bus = PB.addChannel("bus");

  FuncId Receiver = PB.declareFunction("receiver", 0);
  FuncId InitSender = PB.declareFunction("init_sender", 0);
  FuncId UpdSender = PB.declareFunction("upd_sender", 0);
  FuncId NodeFn = PB.declareFunction("node", 1);
  {
    FunctionBuilder FB = PB.beginFunction("receiver", 0);
    Reg M1 = FB.newReg(), M2 = FB.newReg();
    Reg Init = FB.newReg(), Ok = FB.newReg();
    FB.recv(M1, Bus);
    FB.recv(M2, Bus);
    FB.constInt(Init, 1);
    FB.cmpEq(Ok, M1, Init);
    FB.assertTrue(Ok, /*BugId=*/20); // update arrived before init
    FB.ret();
    PB.defineFunction(Receiver, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("init_sender", 0);
    Reg V = FB.newReg();
    FB.constInt(V, 1);
    FB.send(V, Bus);
    FB.ret();
    PB.defineFunction(InitSender, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("upd_sender", 0);
    Reg V = FB.newReg();
    FB.constInt(V, 2);
    FB.send(V, Bus);
    FB.ret();
    PB.defineFunction(UpdSender, FB);
  }
  emitNodeConvention(PB, NodeFn, {Receiver, InitSender, UpdSender});
  return PB.take();
}

// --- Dist-Counter: read-modify-write through messages loses updates ---------
//
// Node 0 owns a replicated counter; clients 1 and 2 each increment it via
// a GET/PUT message pair instead of an atomic increment request. When the
// two GETs interleave before either PUT, both clients compute 0+1 and the
// second PUT overwrites the first — the classic lost update, here spread
// across a message round-trip. Request encoding on the shared request
// channel: value k in {1,2} is a GET from client k (reply on that
// client's channel); value 10+v is a PUT of v.
Program light::bugs::distCounter() {
  ProgramBuilder PB;
  uint32_t Req = PB.addChannel("req");
  uint32_t Rep1 = PB.addChannel("rep1");
  uint32_t Rep2 = PB.addChannel("rep2");

  FuncId Server = PB.declareFunction("server", 0);
  FuncId Client1 = PB.declareFunction("client1", 0);
  FuncId Client2 = PB.declareFunction("client2", 0);
  FuncId NodeFn = PB.declareFunction("node", 1);
  {
    FunctionBuilder FB = PB.beginFunction("server", 0);
    Reg Counter = FB.newReg(), M = FB.newReg();
    Reg Ten = FB.newReg(), NegTen = FB.newReg(), One = FB.newReg();
    Reg Two = FB.newReg(), IsGet = FB.newReg(), IsC1 = FB.newReg();
    Reg Ok = FB.newReg();
    FB.constInt(Counter, 0);
    FB.constInt(Ten, 10);
    FB.constInt(NegTen, -10);
    FB.constInt(One, 1);
    FB.constInt(Two, 2);
    emitLoop(FB, 4, [&](Reg) {
      Label GetL = FB.makeLabel(), PutL = FB.makeLabel();
      Label C1L = FB.makeLabel(), C2L = FB.makeLabel();
      Label Cont = FB.makeLabel();
      FB.recv(M, Req);
      FB.cmpLt(IsGet, M, Ten);
      FB.br(IsGet, GetL, PutL);
      FB.place(GetL);
      FB.cmpEq(IsC1, M, One);
      FB.br(IsC1, C1L, C2L);
      FB.place(C1L);
      FB.send(Counter, Rep1);
      FB.jmp(Cont);
      FB.place(C2L);
      FB.send(Counter, Rep2);
      FB.jmp(Cont);
      FB.place(PutL);
      FB.add(Counter, M, NegTen);
      FB.place(Cont);
    });
    FB.cmpEq(Ok, Counter, Two);
    FB.assertTrue(Ok, /*BugId=*/21); // an increment was lost
    FB.ret();
    PB.defineFunction(Server, FB);
  }
  auto BuildClient = [&](FuncId Fn, const char *Name, int64_t Tag,
                         uint32_t Reply) {
    FunctionBuilder FB = PB.beginFunction(Name, 0);
    Reg T = FB.newReg(), V = FB.newReg(), Nv = FB.newReg();
    Reg One = FB.newReg(), Ten = FB.newReg(), Msg = FB.newReg();
    FB.constInt(T, Tag);
    FB.constInt(One, 1);
    FB.constInt(Ten, 10);
    FB.send(T, Req);    // GET
    FB.recv(V, Reply);  // current value
    FB.add(Nv, V, One); // ...the window where the other client's PUT lands
    FB.add(Msg, Nv, Ten);
    FB.send(Msg, Req); // PUT(v+1)
    FB.ret();
    PB.defineFunction(Fn, FB);
  };
  BuildClient(Client1, "client1", 1, Rep1);
  BuildClient(Client2, "client2", 2, Rep2);
  emitNodeConvention(PB, NodeFn, {Server, Client1, Client2});
  return PB.take();
}

// --- Dist-RetryStorm: retry without dedup double-applies the increment ------
//
// Node 0 sends one increment and polls once for the ack; no ack yet means
// "lost", so it resends — but the message was only slow, not lost, and
// the receiver applies both copies because nothing carries a dedup token.
// Clean schedules (receiver applies and acks before the sender's poll)
// sit next to failing ones (poll races ahead of the ack).
Program light::bugs::distRetryStorm() {
  ProgramBuilder PB;
  uint32_t Msg = PB.addChannel("msg");
  uint32_t Ack = PB.addChannel("ack");

  FuncId Sender = PB.declareFunction("sender", 0);
  FuncId Receiver = PB.declareFunction("receiver", 0);
  FuncId NodeFn = PB.declareFunction("node", 1);
  {
    FunctionBuilder FB = PB.beginFunction("sender", 0);
    Reg One = FB.newReg(), Got = FB.newReg(), V = FB.newReg();
    Label Done = FB.makeLabel(), Retry = FB.makeLabel();
    FB.constInt(One, 1);
    FB.send(One, Msg);
    FB.tryRecv(Got, V, Ack); // one poll stands in for an ack timeout
    FB.br(Got, Done, Retry);
    FB.place(Retry);
    FB.send(One, Msg); // BUG: same payload again, no attempt number
    FB.place(Done);
    FB.ret();
    PB.defineFunction(Sender, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("receiver", 0);
    Reg Applied = FB.newReg(), Got = FB.newReg(), V = FB.newReg();
    Reg One = FB.newReg(), Two = FB.newReg(), Ok = FB.newReg();
    FB.constInt(Applied, 0);
    FB.constInt(One, 1);
    FB.constInt(Two, 2);
    emitLoop(FB, 8, [&](Reg) {
      Label Apply = FB.makeLabel(), Skip = FB.makeLabel();
      FB.tryRecv(Got, V, Msg);
      FB.br(Got, Apply, Skip);
      FB.place(Apply);
      FB.add(Applied, Applied, V); // applies duplicates blindly
      FB.send(One, Ack);
      FB.place(Skip);
    });
    FB.cmpLt(Ok, Applied, Two);
    FB.assertTrue(Ok, /*BugId=*/22); // the increment landed twice
    FB.ret();
    PB.defineFunction(Receiver, FB);
  }
  emitNodeConvention(PB, NodeFn, {Sender, Receiver});
  return PB.take();
}

// --- Dist-Broadcast: probe answered from a stale replica mid-broadcast ------
//
// Node 0 broadcasts a config value to workers 1 and 2, waits for worker
// 1's ack alone, then probes worker 2 — assuming a broadcast is atomic.
// Worker 2 polls its config channel only once before serving probes, so
// a config that lands after that poll leaves the probe answered from the
// stale replica. Clean schedules exist whenever worker 2's poll runs
// after the broadcast.
Program light::bugs::distBroadcast() {
  ProgramBuilder PB;
  uint32_t Cfg1 = PB.addChannel("cfg1");
  uint32_t Cfg2 = PB.addChannel("cfg2");
  uint32_t Done = PB.addChannel("done");
  uint32_t Probe = PB.addChannel("probe");
  uint32_t Reply = PB.addChannel("reply");

  FuncId Caster = PB.declareFunction("broadcaster", 0);
  FuncId W1 = PB.declareFunction("worker1", 0);
  FuncId W2 = PB.declareFunction("worker2", 0);
  FuncId NodeFn = PB.declareFunction("node", 1);
  {
    FunctionBuilder FB = PB.beginFunction("broadcaster", 0);
    Reg Cfg = FB.newReg(), One = FB.newReg(), D = FB.newReg();
    Reg R = FB.newReg(), Ok = FB.newReg();
    FB.constInt(Cfg, 7);
    FB.constInt(One, 1);
    FB.send(Cfg, Cfg1);
    FB.send(Cfg, Cfg2);
    FB.recv(D, Done); // worker 1 applied; "surely worker 2 did too"
    FB.send(One, Probe);
    FB.recv(R, Reply);
    FB.cmpEq(Ok, R, Cfg);
    FB.assertTrue(Ok, /*BugId=*/23); // probed a stale replica
    FB.ret();
    PB.defineFunction(Caster, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("worker1", 0);
    Reg C = FB.newReg(), One = FB.newReg();
    FB.recv(C, Cfg1);
    FB.constInt(One, 1);
    FB.send(One, Done);
    FB.ret();
    PB.defineFunction(W1, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("worker2", 0);
    Reg Replica = FB.newReg(), PV = FB.newReg();
    Reg CG = FB.newReg(), CV = FB.newReg();
    FB.constInt(Replica, 0);
    // BUG: one early poll stands in for "apply the broadcast" — a config
    // that lands after this poll is applied too late for the probe below,
    // which is answered from the stale replica.
    FB.tryRecv(CG, CV, Cfg2);
    Label Apply = FB.makeLabel(), Skip = FB.makeLabel();
    FB.br(CG, Apply, Skip);
    FB.place(Apply);
    FB.move(Replica, CV);
    FB.place(Skip);
    FB.recv(PV, Probe);
    FB.send(Replica, Reply);
    FB.ret();
    PB.defineFunction(W2, FB);
  }
  emitNodeConvention(PB, NodeFn, {Caster, W1, W2});
  return PB.take();
}

std::vector<BugBenchmark> light::bugs::makeDistBugSuite() {
  std::vector<BugBenchmark> Suite;
  auto Add = [&](std::string Name, Program P, bool Clap, bool Chimera,
                 uint32_t Scale) {
    assert(P.verify().empty() && "dist bug program failed verification");
    analysis::markSharedAccesses(P);
    Suite.push_back({std::move(Name), std::move(P), Clap, Chimera, Scale});
  };
  // Clap bails on every channel op (ClapEngine.cpp): there is no ordered
  // message store in its path constraints, so ClapExpected is false
  // across the suite. Chimera *does* reproduce them: channel endpoints
  // are ghost RMWs (loc::isGhost covers Chan), and Chimera records the
  // complete global sync order, which subsumes every message race; its
  // race patch is simply a no-op here (no shared-memory race to
  // serialize). Chimera's capability gap is on the memory-race suites
  // (fig6); on channel-only kernels the tools differ in recording shape,
  // not outcome — bench_dist reports both log sizes per kernel.
  Add("Dist-Reorder", distReorder(), /*Clap=*/false, /*Chimera=*/true, 1);
  Add("Dist-Counter", distCounter(), /*Clap=*/false, /*Chimera=*/true, 1);
  Add("Dist-RetryStorm", distRetryStorm(), /*Clap=*/false, /*Chimera=*/true,
      1);
  Add("Dist-Broadcast", distBroadcast(), /*Clap=*/false, /*Chimera=*/true,
      1);
  return Suite;
}

//===- bugs/BugPrograms.h - The 8 real-world bugs of Section 5 --*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIR reconstructions of the eight Apache-database concurrency bugs the
/// paper evaluates (Figure 6, Table 1). Each program reproduces the bug's
/// *interleaving shape* and failure mode, and is designed to sit in the
/// same cell of the paper's tool-comparison matrix:
///
///   bug            failure shape                            Clap  Chimera
///   Cache4j        torn put() seen inside get() (TOCTOU)     yes     no
///   Ftpserver      close-before-write on a connection map    no      yes
///   Lucene-481     cache invalidation vs. search (map)       no      yes
///   Lucene-651     commit clears doc table under reader      no      yes
///   Tomcat-37458   connector stop tears ready/val pair       yes     no
///   Tomcat-50885   log rotation tears len/cap pair           yes     no
///   Tomcat-53498   session expiry vs. access (map)           no      yes
///   Weblech        stop-notify wakes consumer on empty queue no      yes
///
/// "yes/no" = whether the baseline is expected to reproduce it, per the
/// paper: Clap fails where hash maps / wait-notify leave the solver's
/// value model; Chimera fails where its race patch serializes the racing
/// methods and hides intra-method interleavings. Light reproduces all 8
/// (Theorem 1).
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_BUGS_BUGPROGRAMS_H
#define LIGHT_BUGS_BUGPROGRAMS_H

#include "mir/Program.h"

#include <string>
#include <vector>

namespace light {
namespace bugs {

/// One entry of the bug suite.
struct BugBenchmark {
  std::string Name;
  mir::Program Prog;
  /// Paper expectations (Figure 6).
  bool ClapExpected = false;
  bool ChimeraExpected = false;
  /// Relative workload scale (drives Table 1's space/solve gradient).
  uint32_t Scale = 1;
};

mir::Program cache4j();
mir::Program ftpserver();
mir::Program lucene481();
mir::Program lucene651();
mir::Program tomcat37458();
mir::Program tomcat50885();
mir::Program tomcat53498();
mir::Program weblech();

/// The full 8-bug suite, verified, with shared-access analysis applied.
std::vector<BugBenchmark> makeBugSuite();

// --- Synchronization-primitive bug kernels (SyncBugPrograms.cpp) ------------
//
// Four schedule-dependent kernels exercising the rwlock / barrier /
// timed-wait / CAS surface:
//
//   bug               failure shape                              BugId
//   RwLock-Downgrade  writer gap between wrunlock and rdlock       10
//   Barrier-Reuse     round N+1 write races round N read           11
//   TimedWait-Flake   timeout arm skips the predicate recheck      12
//   Cas-Aba           top pointer recycled inside the CAS window   13
//
// All four sit outside Clap's symbolic model (the engine bails on every
// one of these primitives), so ClapExpected is false across the board.

mir::Program rwlockDowngrade();
mir::Program barrierReuse();
mir::Program timedWaitFlake();
mir::Program casAba();

/// The 4-kernel synchronization suite, verified, with shared-access
/// analysis applied.
std::vector<BugBenchmark> makeSyncBugSuite();

// --- Distributed message-passing bug kernels (DistBugPrograms.cpp) ----------
//
// Four schedule-dependent kernels over the channel surface, each written
// to the multi-node `node(index)` convention of dist/DistRunner.h so the
// same program runs in-process and across forked node processes:
//
//   bug              failure shape                                BugId
//   Dist-Reorder     cross-sender delivery order assumed            20
//   Dist-Counter     GET/PUT message round-trip loses an update     21
//   Dist-RetryStorm  retry without dedup double-applies             22
//   Dist-Broadcast   probe answered from a stale replica            23
//
// Channel ops sit outside Clap's symbolic model, and Chimera's race patch
// serializes only *memory* races (these kernels have none), so both
// baseline expectations are false across the suite.

mir::Program distReorder();
mir::Program distCounter();
mir::Program distRetryStorm();
mir::Program distBroadcast();

/// The 4-kernel distributed suite, verified, with shared-access analysis
/// applied.
std::vector<BugBenchmark> makeDistBugSuite();

} // namespace bugs
} // namespace light

#endif // LIGHT_BUGS_BUGPROGRAMS_H

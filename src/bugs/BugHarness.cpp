//===- bugs/BugHarness.cpp - Record/solve/replay drivers -------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "bugs/BugHarness.h"

#include "analysis/LocksetAnalysis.h"
#include "analysis/RaceDetector.h"
#include "baselines/ChimeraEngine.h"
#include "baselines/ClapEngine.h"
#include "core/LightRecorder.h"
#include "core/ReplayDirector.h"
#include "core/ReplaySchedule.h"
#include "obs/Trace.h"
#include "support/Timer.h"

using namespace light;
using namespace light::bugs;

namespace {

/// True for failures that count as application bugs (Definition 3.2), as
/// opposed to replay anomalies.
bool isApplicationBug(const BugReport &B) {
  switch (B.What) {
  case BugReport::Kind::AssertionFailure:
  case BugReport::Kind::NullPointer:
  case BugReport::Kind::DivideByZero:
  case BugReport::Kind::ArrayBounds:
  case BugReport::Kind::Deadlock:
    return true;
  default:
    return false;
  }
}

} // namespace

std::optional<uint64_t> light::bugs::findBuggySeed(const mir::Program &Prog,
                                                   uint64_t MaxSeeds,
                                                   BugReport *Out) {
  for (uint64_t Seed = 1; Seed <= MaxSeeds; ++Seed) {
    NullHook Null;
    Machine M(Prog, Null);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    RunResult R = M.run(Sched);
    if (R.Bug.happened() && isApplicationBug(R.Bug)) {
      if (Out)
        *Out = R.Bug;
      return Seed;
    }
  }
  return std::nullopt;
}

ToolAttempt light::bugs::lightReproduce(const BugBenchmark &Bench,
                                        uint64_t Seed, LightOptions Opts,
                                        smt::SolverEngine Engine,
                                        unsigned SolverShards) {
  ToolAttempt Out;
  Out.Seed = Seed;

  // O2 guards from the lock-consistency analysis (Lemma 4.2).
  analysis::LocksetAnalysis LA(Bench.Prog);
  GuardSpec Guards = LA.consistentlyGuarded();

  Opts.WriteToDisk = false;
  LightRecorder Rec(Opts);
  if (Opts.EnableO2)
    Rec.setGuards(Guards);

  Stopwatch RecordTimer;
  RunResult Recorded;
  RecordingLog Log;
  {
    obs::TraceSpan Phase("harness.record", "harness");
    Machine M(Bench.Prog, Rec);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    Recorded = M.run(Sched);
    Log = Rec.finish(&M.registry());
    Phase.arg("spans", Log.Spans.size());
  }
  Out.RecordSeconds = RecordTimer.seconds();
  Out.SpaceLongs = Log.spaceLongs();
  Out.BugFound = Recorded.Bug.happened();
  if (!Out.BugFound) {
    Out.Note = "bug did not manifest under this seed";
    return Out;
  }

  Stopwatch SolveTimer;
  ReplaySchedule RS = ReplaySchedule::build(Log, Engine, {}, SolverShards);
  Out.SolveSeconds = SolveTimer.seconds();
  Out.SolverStats = RS.solveStats();
  Out.SolverStats.Values.clear();
  if (!RS.ok()) {
    Out.Note = "constraint system unsatisfiable: " + RS.error();
    return Out;
  }

  Stopwatch ReplayTimer;
  obs::TraceSpan ReplayPhase("harness.replay", "harness");
  ReplayDirector Director(RS, /*RealThreads=*/false, /*Validate=*/true);
  Machine RM(Bench.Prog, Director);
  RM.prepareReplay(Log.Spawns);
  RunResult Replayed = RM.runReplay(Director);
  Director.publishMetrics();
  Out.ReplaySeconds = ReplayTimer.seconds();

  Out.Reproduced = Recorded.Bug.sameAs(Replayed.Bug);
  if (!Out.Reproduced)
    Out.Note = "replayed " + Replayed.Bug.str() + " instead of " +
               Recorded.Bug.str() +
               (Director.failed() ? (" (" + Director.divergence() + ")")
                                  : std::string());
  return Out;
}

ToolAttempt light::bugs::clapReproduce(const BugBenchmark &Bench,
                                       uint64_t Seed) {
  ToolAttempt Out;
  Out.Seed = Seed;

  ClapRecorder Rec;
  BranchTrace Trace;
  Stopwatch RecordTimer;
  Machine M(Bench.Prog, Rec);
  M.setBranchTracer(&Trace);
  M.seedEnvironment(Seed ^ 0x5a5a);
  RandomScheduler Sched(Seed);
  RunResult Recorded = M.run(Sched);
  ClapRecording Recording = Rec.finish();
  Recording.Branches = Trace;
  Recording.Spawns = M.registry().spawnTable();
  Recording.Bug = Recorded.Bug;
  Out.RecordSeconds = RecordTimer.seconds();
  Out.SpaceLongs = Recording.spaceLongs();
  Out.BugFound = Recorded.Bug.happened();
  if (!Out.BugFound) {
    Out.Note = "bug did not manifest under this seed";
    return Out;
  }

  ClapSolveResult Solved = clapSolve(Bench.Prog, Recording);
  Out.SolveSeconds = Solved.SolveSeconds;
  if (!Solved.Supported) {
    Out.Note = "outside the solver model: " + Solved.UnsupportedWhy;
    return Out;
  }
  if (!Solved.Solved) {
    Out.Note = "symbolic constraint system unsatisfiable";
    return Out;
  }

  Stopwatch ReplayTimer;
  RunResult Replayed = clapReplay(Bench.Prog, Recording, Solved);
  Out.ReplaySeconds = ReplayTimer.seconds();
  Out.Reproduced = Recorded.Bug.sameAs(Replayed.Bug);
  if (!Out.Reproduced)
    Out.Note = "replayed " + Replayed.Bug.str() + " instead of " +
               Recorded.Bug.str();
  return Out;
}

ToolAttempt light::bugs::chimeraReproduce(const BugBenchmark &Bench,
                                          uint64_t MaxSeeds) {
  ToolAttempt Out;

  analysis::LocksetAnalysis LA(Bench.Prog);
  std::vector<analysis::RacePair> Races =
      analysis::detectRaces(Bench.Prog, LA);
  ChimeraPatch Patch = chimeraPatch(Bench.Prog, Races);

  // The matrix asks whether Chimera reproduces the *benchmark's* failure,
  // so pin down what that failure looks like on the unpatched program.
  // Serializing methods can introduce new failures of its own (a patch
  // lock held across a barrier arrival deadlocks every schedule); those
  // must not count as finding the bug.
  BugReport Ref;
  findBuggySeed(Bench.Prog, MaxSeeds, &Ref);

  // Search for a schedule of the *patched* program that still fails.
  for (uint64_t Seed = 1; Seed <= MaxSeeds; ++Seed) {
    ChimeraRecorder Rec;
    Stopwatch RecordTimer;
    Machine M(Patch.Patched, Rec);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    RunResult Recorded = M.run(Sched);
    if (!Recorded.Bug.happened() || !isApplicationBug(Recorded.Bug))
      continue;
    // Loose match against the reference failure (kind + assertion id):
    // patched code shifts PCs, so the exact-location correlation of
    // sameAs() cannot transfer across the patch.
    if (Ref.happened() && (Recorded.Bug.What != Ref.What ||
                           Recorded.Bug.BugId != Ref.BugId))
      continue;

    Out.Seed = Seed;
    Out.BugFound = true;
    ChimeraLog Log = Rec.finish();
    Log.Spawns = M.registry().spawnTable();
    Out.RecordSeconds = RecordTimer.seconds();
    Out.SpaceLongs = Log.spaceLongs();

    Stopwatch ReplayTimer;
    ChimeraDirector Director(Log);
    Machine RM(Patch.Patched, Director);
    RM.prepareReplay(Log.Spawns);
    RunResult Replayed = RM.runReplay(Director);
    Out.ReplaySeconds = ReplayTimer.seconds();
    Out.Reproduced = Recorded.Bug.sameAs(Replayed.Bug);
    if (!Out.Reproduced)
      Out.Note = "replayed " + Replayed.Bug.str() + " instead of " +
                 Recorded.Bug.str();
    return Out;
  }

  Out.Note = Patch.SerializedFunctions.empty()
                 ? "bug did not manifest in " + std::to_string(MaxSeeds) +
                       " schedules"
                 : "patch serialized " +
                       std::to_string(Patch.SerializedFunctions.size()) +
                       " methods; bug hidden";
  return Out;
}

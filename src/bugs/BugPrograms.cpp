//===- bugs/BugPrograms.cpp - The 8 real-world bugs of Section 5 ----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "bugs/BugPrograms.h"

#include "analysis/SharedAccessAnalysis.h"
#include "mir/Builder.h"

#include <cassert>

using namespace light;
using namespace light::bugs;
using namespace light::mir;

namespace {

/// Emits `for (i = 0; i < N; ++i) { body }`. \p Body receives the loop
/// counter register.
template <typename Fn>
void emitLoop(FunctionBuilder &FB, int64_t N, Fn Body) {
  Reg I = FB.newReg(), Bound = FB.newReg(), One = FB.newReg();
  Reg Cond = FB.newReg();
  FB.constInt(I, 0);
  FB.constInt(Bound, N);
  FB.constInt(One, 1);
  Label Head = FB.makeLabel(), BodyL = FB.makeLabel(), Done = FB.makeLabel();
  FB.place(Head);
  FB.cmpLt(Cond, I, Bound);
  FB.br(Cond, BodyL, Done);
  FB.place(BodyL);
  Body(I);
  FB.add(I, I, One);
  FB.jmp(Head);
  FB.place(Done);
}

} // namespace

// --- Cache4j: the paper's running example (Section 2.1) ---------------------
//
// put() resets _createTime then _value without synchronization; get() reads
// _createTime, the value, and re-validates _createTime (the valid() check).
// A put() landing inside get() tears the pair — the illegal value is the
// mismatched timestamp. Integer flow only: Clap handles it; Chimera
// serializes put/get and hides it.
Program light::bugs::cache4j() {
  ProgramBuilder PB;
  ClassId CacheObj = PB.addClass("CacheObject", {"_createTime", "_value"});
  uint32_t GCache = PB.addGlobal("cache");

  FuncId Putter = PB.declareFunction("put", 0);
  FuncId Getter = PB.declareFunction("get", 0);
  {
    FunctionBuilder FB = PB.beginFunction("put", 0);
    Reg Obj = FB.newReg(), Now = FB.newReg();
    FB.getGlobal(Obj, GCache);
    emitLoop(FB, 10, [&](Reg I) {
      FB.sysTime(Now);
      FB.putField(Obj, 0, Now); // resetCacheObject(): _createTime = now
      FB.putField(Obj, 1, I);   // ... and the payload
    });
    FB.ret();
    PB.defineFunction(Putter, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("get", 0);
    Reg Obj = FB.newReg(), T1 = FB.newReg(), V = FB.newReg();
    Reg T2 = FB.newReg(), Same = FB.newReg();
    FB.getGlobal(Obj, GCache);
    emitLoop(FB, 10, [&](Reg I) {
      FB.getField(T1, Obj, 0); // timestamp before the read
      FB.getField(V, Obj, 1);  // the cached value
      FB.getField(T2, Obj, 0); // valid(): timestamp must be unchanged
      FB.cmpEq(Same, T1, T2);
      FB.assertTrue(Same, /*BugId=*/1); // torn entry observed
      FB.print(V);
    });
    FB.ret();
    PB.defineFunction(Getter, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Obj = FB.newReg(), Zero = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg();
    FB.newObject(Obj, CacheObj);
    FB.constInt(Zero, 0);
    FB.putField(Obj, 0, Zero);
    FB.putField(Obj, 1, Zero);
    FB.putGlobal(GCache, Obj);
    FB.threadStart(T1, Putter);
    FB.threadStart(T2, Getter);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

// --- Tomcat 37458: connector stop tears the (ready, val) pair ----------------
Program light::bugs::tomcat37458() {
  ProgramBuilder PB;
  ClassId Conn = PB.addClass("Connector", {"ready", "val"});
  uint32_t GConn = PB.addGlobal("connector");

  FuncId Handler = PB.declareFunction("handleRequest", 0);
  FuncId Stopper = PB.declareFunction("stop", 0);
  {
    FunctionBuilder FB = PB.beginFunction("handleRequest", 0);
    Reg Obj = FB.newReg(), Ready = FB.newReg(), V = FB.newReg();
    FB.getGlobal(Obj, GConn);
    emitLoop(FB, 8, [&](Reg I) {
      Label Use = FB.makeLabel(), Skip = FB.makeLabel();
      FB.getField(Ready, Obj, 0);
      FB.br(Ready, Use, Skip);
      FB.place(Use);
      // stop() clears val *before* ready: a request passing the ready
      // check can read the already-cleared endpoint — the NPE of 37458,
      // modeled as use of the illegal zero handle.
      FB.getField(V, Obj, 1);
      FB.assertTrue(V, /*BugId=*/5);
      FB.place(Skip);
    });
    FB.ret();
    PB.defineFunction(Handler, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("stop", 0);
    Reg Obj = FB.newReg(), Zero = FB.newReg();
    FB.getGlobal(Obj, GConn);
    FB.constInt(Zero, 0);
    FB.putField(Obj, 1, Zero); // wrong order: handle first...
    FB.putField(Obj, 0, Zero); // ...then the ready flag
    FB.ret();
    PB.defineFunction(Stopper, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Obj = FB.newReg(), One = FB.newReg(), H = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg();
    FB.newObject(Obj, Conn);
    FB.constInt(One, 1);
    FB.constInt(H, 42);
    FB.putField(Obj, 0, One);
    FB.putField(Obj, 1, H);
    FB.putGlobal(GConn, Obj);
    FB.threadStart(T1, Handler);
    FB.threadStart(T2, Stopper);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

// --- Tomcat 50885: log rotation tears the (len, cap) pair --------------------
Program light::bugs::tomcat50885() {
  ProgramBuilder PB;
  ClassId Log = PB.addClass("LogBuffer", {"len", "cap"});
  uint32_t GLog = PB.addGlobal("log");

  FuncId Worker = PB.declareFunction("append", 0);
  FuncId Rotator = PB.declareFunction("rotate", 0);
  {
    FunctionBuilder FB = PB.beginFunction("append", 0);
    Reg Obj = FB.newReg(), Len = FB.newReg(), Cap = FB.newReg();
    Reg Fits = FB.newReg(), One = FB.newReg(), NewLen = FB.newReg();
    FB.getGlobal(Obj, GLog);
    FB.constInt(One, 1);
    emitLoop(FB, 12, [&](Reg I) {
      FB.getField(Len, Obj, 0);
      FB.getField(Cap, Obj, 1);
      // A rotation between the two reads yields len > cap — the
      // ArrayIndexOutOfBounds of 50885, modeled as the invariant check.
      FB.cmpLe(Fits, Len, Cap);
      FB.assertTrue(Fits, /*BugId=*/6);
      FB.add(NewLen, Len, One);
      FB.putField(Obj, 0, NewLen);
    });
    FB.ret();
    PB.defineFunction(Worker, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("rotate", 0);
    Reg Obj = FB.newReg(), Zero = FB.newReg(), Full = FB.newReg();
    FB.getGlobal(Obj, GLog);
    FB.constInt(Zero, 0);
    FB.constInt(Full, 64);
    emitLoop(FB, 3, [&](Reg I) {
      FB.putField(Obj, 1, Zero); // capacity drops first...
      FB.putField(Obj, 0, Zero); // ...then the length resets
      FB.putField(Obj, 1, Full); // ...and the new file opens
    });
    FB.ret();
    PB.defineFunction(Rotator, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Obj = FB.newReg(), Zero = FB.newReg(), Cap = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg();
    FB.newObject(Obj, Log);
    FB.constInt(Zero, 0);
    FB.constInt(Cap, 64);
    FB.putField(Obj, 0, Zero);
    FB.putField(Obj, 1, Cap);
    FB.putGlobal(GLog, Obj);
    FB.threadStart(T1, Worker);
    FB.threadStart(T2, Rotator);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

// --- Shared shape for the map-based, lock-granularity bugs ------------------
//
// A keyed table protected by one lock; "mutator" threads remove or clear
// entries inside synchronized regions; "reader" threads look entries up
// inside synchronized regions and fail on a missing entry. The failure
// depends only on the order of whole critical sections, so Chimera's
// lock-order recording reproduces it — while the map intrinsics put it
// beyond Clap's solver model.
namespace {

struct MapBugParts {
  ProgramBuilder PB;
  ClassId LockCls;
  uint32_t GTable, GLock;
};

MapBugParts mapBugSkeleton() {
  MapBugParts P;
  P.LockCls = P.PB.addClass("Lock", {"pad"});
  P.GTable = P.PB.addGlobal("table");
  P.GLock = P.PB.addGlobal("tableLock");
  return P;
}

/// reader: loop { lock; v = table[key]; assertNonNull(v); unlock }
FuncId emitMapReader(MapBugParts &P, const std::string &Name, int64_t Key,
                     int64_t Iters, int64_t BugId) {
  FunctionBuilder FB = P.PB.beginFunction(Name, 0);
  Reg Table = FB.newReg(), LockR = FB.newReg(), K = FB.newReg();
  Reg V = FB.newReg();
  FB.getGlobal(Table, P.GTable);
  FB.getGlobal(LockR, P.GLock);
  FB.constInt(K, Key);
  emitLoop(FB, Iters, [&](Reg I) {
    FB.monitorEnter(LockR);
    FB.mapGet(V, Table, K);
    FB.assertNonNull(V, BugId);
    FB.monitorExit(LockR);
  });
  FB.ret();
  return P.PB.endFunction(FB);
}

/// remover: lock; remove table[key]; unlock (optionally after re-putting
/// \p Churn other keys to fatten the log).
FuncId emitMapRemover(MapBugParts &P, const std::string &Name, int64_t Key,
                      int64_t Churn) {
  FunctionBuilder FB = P.PB.beginFunction(Name, 0);
  Reg Table = FB.newReg(), LockR = FB.newReg(), K = FB.newReg();
  Reg CK = FB.newReg(), CV = FB.newReg(), Base = FB.newReg();
  FB.getGlobal(Table, P.GTable);
  FB.getGlobal(LockR, P.GLock);
  FB.constInt(K, Key);
  if (Churn > 0) {
    FB.constInt(Base, 100);
    emitLoop(FB, Churn, [&](Reg I) {
      FB.monitorEnter(LockR);
      FB.add(CK, I, Base);
      FB.constInt(CV, 7);
      FB.mapPut(Table, CK, CV);
      FB.monitorExit(LockR);
    });
  }
  FB.monitorEnter(LockR);
  FB.mapRemove(Table, K);
  FB.monitorExit(LockR);
  FB.ret();
  return P.PB.endFunction(FB);
}

/// main: build the table, spawn the given workers, join.
Program finishMapBug(MapBugParts &P, int64_t NumKeys,
                     const std::vector<FuncId> &Workers) {
  FunctionBuilder FB = P.PB.beginFunction("main", 0);
  Reg Table = FB.newReg(), LockObj = FB.newReg();
  Reg V = FB.newReg();
  FB.mapNew(Table);
  FB.putGlobal(P.GTable, Table);
  FB.newObject(LockObj, P.LockCls);
  FB.putGlobal(P.GLock, LockObj);
  emitLoop(FB, NumKeys, [&](Reg I) {
    FB.constInt(V, 1000);
    FB.mapPut(Table, I, V);
  });
  std::vector<Reg> Tids;
  for (FuncId W : Workers) {
    Reg T = FB.newReg();
    FB.threadStart(T, W);
    Tids.push_back(T);
  }
  for (Reg T : Tids)
    FB.threadJoin(T);
  FB.ret();
  P.PB.setEntry(P.PB.endFunction(FB));
  return P.PB.take();
}

} // namespace

Program light::bugs::ftpserver() {
  // close() removes the connection entry; a concurrent write() fails with
  // the FileNotFound/closed-connection exception when close wins.
  MapBugParts P = mapBugSkeleton();
  FuncId Closer = emitMapRemover(P, "close", /*Key=*/0, /*Churn=*/2);
  FuncId Writer = emitMapReader(P, "write", /*Key=*/0, /*Iters=*/4,
                                /*BugId=*/3);
  return finishMapBug(P, /*NumKeys=*/3, {Closer, Writer});
}

Program light::bugs::lucene481() {
  // FieldCache invalidation vs. a searcher using the cached entry.
  MapBugParts P = mapBugSkeleton();
  FuncId Invalidator = emitMapRemover(P, "invalidate", /*Key=*/2,
                                      /*Churn=*/6);
  FuncId Searcher = emitMapReader(P, "search", /*Key=*/2, /*Iters=*/8,
                                  /*BugId=*/4);
  FuncId Searcher2 = emitMapReader(P, "search2", /*Key=*/1, /*Iters=*/8,
                                   /*BugId=*/41);
  (void)Searcher2;
  return finishMapBug(P, /*NumKeys=*/6, {Invalidator, Searcher});
}

Program light::bugs::lucene651() {
  // commit() clears the pending-document table while readers walk it; the
  // largest workload of Table 1.
  MapBugParts P = mapBugSkeleton();
  FuncId Committer = emitMapRemover(P, "commit", /*Key=*/5, /*Churn=*/20);
  FuncId Reader1 = emitMapReader(P, "reader1", /*Key=*/5, /*Iters=*/20,
                                 /*BugId=*/42);
  FuncId Reader2 = emitMapReader(P, "reader2", /*Key=*/3, /*Iters=*/20,
                                 /*BugId=*/43);
  return finishMapBug(P, /*NumKeys=*/8, {Committer, Reader1, Reader2});
}

Program light::bugs::tomcat53498() {
  // Session expiry removes the session while a request accesses it. The
  // expiry thread churns background sessions first, so schedules where the
  // request completes before expiry (clean runs) exist alongside failing
  // ones.
  MapBugParts P = mapBugSkeleton();
  FuncId Expirer = emitMapRemover(P, "expire", /*Key=*/1, /*Churn=*/4);
  FuncId Accessor = emitMapReader(P, "access", /*Key=*/1, /*Iters=*/3,
                                  /*BugId=*/7);
  return finishMapBug(P, /*NumKeys=*/4, {Expirer, Accessor});
}

// --- Weblech: shutdown notify wakes the consumer on an empty queue -----------
Program light::bugs::weblech() {
  ProgramBuilder PB;
  ClassId LockCls = PB.addClass("Queue", {"pad"});
  uint32_t GQueue = PB.addGlobal("urlQueue");
  uint32_t GLock = PB.addGlobal("queueLock");
  uint32_t GStop = PB.addGlobal("stopped");

  FuncId Producer = PB.declareFunction("spider", 0);
  FuncId Consumer = PB.declareFunction("downloader", 0);
  FuncId Stopper = PB.declareFunction("shutdown", 0);
  {
    FunctionBuilder FB = PB.beginFunction("spider", 0);
    Reg Q = FB.newReg(), L = FB.newReg(), K = FB.newReg(), V = FB.newReg();
    FB.getGlobal(Q, GQueue);
    FB.getGlobal(L, GLock);
    FB.constInt(K, 0);
    FB.constInt(V, 777);
    FB.burnCpu(64); // crawling takes a while before the first URL lands
    FB.monitorEnter(L);
    FB.mapPut(Q, K, V);
    FB.notifyAll(L);
    FB.monitorExit(L);
    FB.ret();
    PB.defineFunction(Producer, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("downloader", 0);
    Reg Q = FB.newReg(), L = FB.newReg(), K = FB.newReg();
    Reg Has = FB.newReg(), St = FB.newReg(), V = FB.newReg();
    FB.getGlobal(Q, GQueue);
    FB.getGlobal(L, GLock);
    FB.constInt(K, 0);
    Label Loop = FB.makeLabel(), Take = FB.makeLabel();
    Label CheckStop = FB.makeLabel(), DoWait = FB.makeLabel();
    FB.monitorEnter(L);
    FB.place(Loop);
    FB.mapContains(Has, Q, K);
    FB.br(Has, Take, CheckStop);
    FB.place(CheckStop);
    FB.getGlobal(St, GStop);
    // The bug: on shutdown the downloader leaves the wait loop and
    // dequeues from the (possibly still empty) queue.
    FB.br(St, Take, DoWait);
    FB.place(DoWait);
    FB.wait(L);
    FB.jmp(Loop);
    FB.place(Take);
    FB.mapGet(V, Q, K);
    FB.assertNonNull(V, /*BugId=*/8);
    FB.print(V);
    FB.monitorExit(L);
    FB.ret();
    PB.defineFunction(Consumer, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("shutdown", 0);
    Reg L = FB.newReg(), One = FB.newReg();
    FB.getGlobal(L, GLock);
    FB.constInt(One, 1);
    FB.monitorEnter(L);
    FB.putGlobal(GStop, One);
    FB.notifyAll(L);
    FB.monitorExit(L);
    FB.ret();
    PB.defineFunction(Stopper, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Q = FB.newReg(), LockObj = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg(), T3 = FB.newReg();
    FB.mapNew(Q);
    FB.putGlobal(GQueue, Q);
    FB.newObject(LockObj, LockCls);
    FB.putGlobal(GLock, LockObj);
    FB.threadStart(T2, Consumer);
    FB.threadStart(T1, Producer);
    FB.threadStart(T3, Stopper);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.threadJoin(T3);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

std::vector<BugBenchmark> light::bugs::makeBugSuite() {
  std::vector<BugBenchmark> Suite;
  auto Add = [&](std::string Name, Program P, bool Clap, bool Chimera,
                 uint32_t Scale) {
    assert(P.verify().empty() && "bug program failed verification");
    analysis::markSharedAccesses(P);
    Suite.push_back({std::move(Name), std::move(P), Clap, Chimera, Scale});
  };
  Add("Cache4j", cache4j(), /*Clap=*/true, /*Chimera=*/false, 4);
  Add("Ftpserver", ftpserver(), /*Clap=*/false, /*Chimera=*/true, 1);
  Add("Lucene-481", lucene481(), /*Clap=*/false, /*Chimera=*/true, 5);
  Add("Lucene-651", lucene651(), /*Clap=*/false, /*Chimera=*/true, 8);
  Add("Tomcat-37458", tomcat37458(), /*Clap=*/true, /*Chimera=*/false, 1);
  Add("Tomcat-50885", tomcat50885(), /*Clap=*/true, /*Chimera=*/false, 3);
  Add("Tomcat-53498", tomcat53498(), /*Clap=*/false, /*Chimera=*/true, 1);
  Add("Weblech", weblech(), /*Clap=*/false, /*Chimera=*/true, 1);
  return Suite;
}

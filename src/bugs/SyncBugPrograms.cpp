//===- bugs/SyncBugPrograms.cpp - Synchronization-primitive bug kernels ---===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
//
// Schedule-dependent kernels for the extended synchronization surface:
// read-write locks, barriers, timed waits, and CAS loops. Each kernel has
// both clean and failing schedules, so exploration has something to find
// and record/replay has something to reproduce.
//
//===----------------------------------------------------------------------===//

#include "bugs/BugPrograms.h"

#include "analysis/SharedAccessAnalysis.h"
#include "mir/Builder.h"

#include <cassert>

using namespace light;
using namespace light::bugs;
using namespace light::mir;

namespace {

/// Emits `for (i = 0; i < N; ++i) { body }`. \p Body receives the loop
/// counter register.
template <typename Fn>
void emitLoop(FunctionBuilder &FB, int64_t N, Fn Body) {
  Reg I = FB.newReg(), Bound = FB.newReg(), One = FB.newReg();
  Reg Cond = FB.newReg();
  FB.constInt(I, 0);
  FB.constInt(Bound, N);
  FB.constInt(One, 1);
  Label Head = FB.makeLabel(), BodyL = FB.makeLabel(), Done = FB.makeLabel();
  FB.place(Head);
  FB.cmpLt(Cond, I, Bound);
  FB.br(Cond, BodyL, Done);
  FB.place(BodyL);
  Body(I);
  FB.add(I, I, One);
  FB.jmp(Head);
  FB.place(Done);
}

} // namespace

// --- RwLock-Downgrade: writer gap between wrunlock and rdlock ---------------
//
// The downgrader means to atomically downgrade its write lock to a read
// lock, but releases the write lock *before* taking the read lock. A
// concurrent writer landing in that gap clobbers the value the downgrader
// just wrote, and the read-side validation sees a foreign value. Clean
// schedules (the clobberer runs entirely before or after) exist alongside
// the failing ones.
Program light::bugs::rwlockDowngrade() {
  ProgramBuilder PB;
  ClassId Shared = PB.addClass("Shared", {"val"});
  uint32_t GObj = PB.addGlobal("shared");

  FuncId Downgrader = PB.declareFunction("downgrade", 0);
  FuncId Clobberer = PB.declareFunction("clobber", 0);
  {
    FunctionBuilder FB = PB.beginFunction("downgrade", 0);
    Reg Obj = FB.newReg(), One = FB.newReg();
    Reg Exp = FB.newReg(), V = FB.newReg(), Same = FB.newReg();
    FB.getGlobal(Obj, GObj);
    FB.constInt(One, 1);
    emitLoop(FB, 3, [&](Reg I) {
      FB.add(Exp, I, One);
      FB.rwWrLock(Obj);
      FB.putField(Obj, 0, Exp);
      FB.rwWrUnlock(Obj); // BUG: the lock is dropped here...
      FB.rwRdLock(Obj);   // ...so this is not a downgrade but a re-acquire
      FB.getField(V, Obj, 0);
      FB.cmpEq(Same, V, Exp);
      FB.assertTrue(Same, /*BugId=*/10); // foreign write seen in the gap
      FB.rwRdUnlock(Obj);
    });
    FB.ret();
    PB.defineFunction(Downgrader, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("clobber", 0);
    Reg Obj = FB.newReg(), Zero = FB.newReg();
    FB.getGlobal(Obj, GObj);
    FB.constInt(Zero, 0);
    FB.rwWrLock(Obj);
    FB.putField(Obj, 0, Zero);
    FB.rwWrUnlock(Obj);
    FB.ret();
    PB.defineFunction(Clobberer, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Obj = FB.newReg(), Zero = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg();
    FB.newObject(Obj, Shared);
    FB.constInt(Zero, 0);
    FB.putField(Obj, 0, Zero);
    FB.putGlobal(GObj, Obj);
    FB.threadStart(T1, Downgrader);
    FB.threadStart(T2, Clobberer);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

// --- Barrier-Reuse: round N+1 write races round N read ----------------------
//
// Two workers exchange slots across rounds with only *one* barrier per
// round (the correct protocol needs a second barrier between the read and
// the next round's write). After the barrier releases round r, a fast
// worker can start round r+1 and overwrite its slot before the slow
// worker has read the round-r value.
Program light::bugs::barrierReuse() {
  ProgramBuilder PB;
  ClassId BarCls = PB.addClass("Barrier", {"pad"});
  uint32_t GSlots = PB.addGlobal("slots");
  uint32_t GBar = PB.addGlobal("bar");

  FuncId Worker = PB.declareFunction("worker", 1);
  {
    FunctionBuilder FB = PB.beginFunction("worker", 1);
    Reg T = FB.param(0);
    Reg Slots = FB.newReg(), Bar = FB.newReg(), One = FB.newReg();
    Reg Other = FB.newReg(), V = FB.newReg(), W = FB.newReg();
    Reg Same = FB.newReg();
    FB.getGlobal(Slots, GSlots);
    FB.getGlobal(Bar, GBar);
    FB.constInt(One, 1);
    FB.sub(Other, One, T); // the peer's slot: 1 - t
    emitLoop(FB, 2, [&](Reg R) {
      FB.add(V, R, One);
      FB.astore(Slots, T, V); // publish round r's value...
      FB.barrierWait(Bar);    // ...and meet the peer
      // BUG: no second barrier before the next round's write, so the
      // peer's round r+1 store can land before this read.
      FB.aload(W, Slots, Other);
      FB.cmpEq(Same, W, V);
      FB.assertTrue(Same, /*BugId=*/11);
    });
    FB.ret();
    PB.defineFunction(Worker, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Slots = FB.newReg(), Bar = FB.newReg(), Len = FB.newReg();
    Reg Zero = FB.newReg(), One = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg();
    FB.constInt(Len, 2);
    FB.newArray(Slots, Len);
    FB.putGlobal(GSlots, Slots);
    FB.newObject(Bar, BarCls);
    FB.barrierInit(Bar, /*Parties=*/2);
    FB.putGlobal(GBar, Bar);
    FB.constInt(Zero, 0);
    FB.constInt(One, 1);
    FB.threadStart(T1, Worker, Zero);
    FB.threadStart(T2, Worker, One);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

// --- TimedWait-Flake: timeout arm skips the predicate recheck ---------------
//
// The consumer waits for box.value with a deadline but uses the woken
// value *without rechecking how it woke*: when the scheduler fires the
// timeout before the producer's store, the consumer reads the still-unset
// value — the classic "flaky timeout" lost-update. Both the notified arm
// and a late-enough timeout arm are clean.
Program light::bugs::timedWaitFlake() {
  ProgramBuilder PB;
  ClassId Box = PB.addClass("Box", {"value"});
  uint32_t GBox = PB.addGlobal("box");

  FuncId Producer = PB.declareFunction("producer", 0);
  FuncId Consumer = PB.declareFunction("consumer", 0);
  {
    FunctionBuilder FB = PB.beginFunction("producer", 0);
    Reg Obj = FB.newReg(), V = FB.newReg();
    FB.getGlobal(Obj, GBox);
    FB.constInt(V, 7);
    FB.burnCpu(32); // producing the value takes a while
    FB.monitorEnter(Obj);
    FB.putField(Obj, 0, V);
    FB.notifyAll(Obj);
    FB.monitorExit(Obj);
    FB.ret();
    PB.defineFunction(Producer, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("consumer", 0);
    Reg Obj = FB.newReg(), V = FB.newReg(), To = FB.newReg();
    FB.getGlobal(Obj, GBox);
    Label HaveIt = FB.makeLabel(), DoWait = FB.makeLabel();
    FB.monitorEnter(Obj);
    FB.getField(V, Obj, 0);
    FB.br(V, HaveIt, DoWait);
    FB.place(DoWait);
    FB.timedWait(To, Obj, /*Deadline=*/50);
    // BUG: uses the value whether the wait was notified or timed out.
    FB.getField(V, Obj, 0);
    FB.assertTrue(V, /*BugId=*/12);
    FB.place(HaveIt);
    FB.print(V);
    FB.monitorExit(Obj);
    FB.ret();
    PB.defineFunction(Consumer, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Obj = FB.newReg(), Zero = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg();
    FB.newObject(Obj, Box);
    FB.constInt(Zero, 0);
    FB.putField(Obj, 0, Zero);
    FB.putGlobal(GBox, Obj);
    FB.threadStart(T1, Consumer);
    FB.threadStart(T2, Producer);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

// --- Cas-Aba: top pointer recycled inside the CAS window --------------------
//
// A Treiber-stack pop (thread P) reads top and top's successor, then CASes
// top. Thread Q pops both nodes, frees one, and pushes the original head
// back: P's CAS still succeeds — same top value — but installs a stale
// successor pointing at the freed node. The assertion observes the freed
// node as the new top. Clean schedules: P completes first (Q's first CAS
// then fails), or Q completes first (P reads the repaired successor).
Program light::bugs::casAba() {
  ProgramBuilder PB;
  uint32_t GTop = PB.addGlobal("top");
  uint32_t GNext = PB.addGlobal("next");
  uint32_t GFreed = PB.addGlobal("freed");

  FuncId Popper = PB.declareFunction("pop", 0);
  FuncId Recycler = PB.declareFunction("recycle", 0);
  {
    FunctionBuilder FB = PB.beginFunction("pop", 0);
    Reg Next = FB.newReg(), Freed = FB.newReg();
    Reg T = FB.newReg(), N = FB.newReg(), Ok = FB.newReg();
    Reg F = FB.newReg(), NotF = FB.newReg();
    FB.getGlobal(Next, GNext);
    FB.getGlobal(Freed, GFreed);
    Label Done = FB.makeLabel(), Check = FB.makeLabel();
    Label Validate = FB.makeLabel();
    FB.getGlobal(T, GTop);   // read top...
    FB.aload(N, Next, T);    // ...and its successor
    FB.cas(Ok, T, N, GTop);  // ABA window: top may have been recycled
    FB.br(Ok, Check, Done);
    FB.place(Check);
    FB.br(N, Validate, Done); // empty new top: nothing to validate
    FB.place(Validate);
    FB.aload(F, Freed, N);
    FB.logicalNot(NotF, F);
    FB.assertTrue(NotF, /*BugId=*/13); // popped a freed node
    FB.place(Done);
    FB.ret();
    PB.defineFunction(Popper, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("recycle", 0);
    Reg Next = FB.newReg(), Freed = FB.newReg();
    Reg C0 = FB.newReg(), C1 = FB.newReg(), C2 = FB.newReg();
    Reg Ok = FB.newReg(), One = FB.newReg();
    FB.getGlobal(Next, GNext);
    FB.getGlobal(Freed, GFreed);
    FB.constInt(C0, 0);
    FB.constInt(C1, 1);
    FB.constInt(C2, 2);
    FB.constInt(One, 1);
    Label S1 = FB.makeLabel(), S2 = FB.makeLabel(), Done = FB.makeLabel();
    FB.cas(Ok, C2, C1, GTop); // pop node 2
    FB.br(Ok, S1, Done);
    FB.place(S1);
    FB.cas(Ok, C1, C0, GTop); // pop node 1
    FB.br(Ok, S2, Done);
    FB.place(S2);
    FB.astore(Freed, C1, One); // free node 1...
    FB.astore(Next, C2, C0);   // ...relink node 2 over it...
    FB.cas(Ok, C0, C2, GTop);  // ...and push node 2 back (the ABA)
    FB.place(Done);
    FB.ret();
    PB.defineFunction(Recycler, FB);
  }
  {
    FunctionBuilder FB = PB.beginFunction("main", 0);
    Reg Next = FB.newReg(), Freed = FB.newReg(), Len = FB.newReg();
    Reg C1 = FB.newReg(), C2 = FB.newReg();
    Reg T1 = FB.newReg(), T2 = FB.newReg();
    FB.constInt(Len, 3);
    FB.newArray(Next, Len);  // next[i] = successor of node i; 0 = nil
    FB.newArray(Freed, Len); // freed[i] = node i was reclaimed
    FB.constInt(C1, 1);
    FB.constInt(C2, 2);
    FB.astore(Next, C2, C1); // stack: 2 -> 1 -> nil
    FB.putGlobal(GNext, Next);
    FB.putGlobal(GFreed, Freed);
    FB.putGlobal(GTop, C2); // stack head: node 2
    FB.threadStart(T1, Popper);
    FB.threadStart(T2, Recycler);
    FB.threadJoin(T1);
    FB.threadJoin(T2);
    FB.ret();
    PB.setEntry(PB.endFunction(FB));
  }
  return PB.take();
}

std::vector<BugBenchmark> light::bugs::makeSyncBugSuite() {
  std::vector<BugBenchmark> Suite;
  auto Add = [&](std::string Name, Program P, bool Clap, bool Chimera,
                 uint32_t Scale) {
    assert(P.verify().empty() && "sync bug program failed verification");
    analysis::markSharedAccesses(P);
    Suite.push_back({std::move(Name), std::move(P), Clap, Chimera, Scale});
  };
  // Clap bails on every one of these primitives (see ClapEngine.cpp), so
  // ClapExpected is false across the suite — the documented limitation.
  // Chimera's race patch serializes the racing methods: that hides the
  // rwlock gap and the CAS window outright, and deadlocks the serialized
  // barrier (the patched recording diverges); only the monitor-shaped
  // timed-wait flake survives patching and replays.
  Add("RwLock-Downgrade", rwlockDowngrade(), /*Clap=*/false,
      /*Chimera=*/false, 1);
  Add("Barrier-Reuse", barrierReuse(), /*Clap=*/false, /*Chimera=*/false, 1);
  Add("TimedWait-Flake", timedWaitFlake(), /*Clap=*/false, /*Chimera=*/true,
      1);
  Add("Cas-Aba", casAba(), /*Clap=*/false, /*Chimera=*/false, 1);
  return Suite;
}

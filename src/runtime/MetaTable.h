//===- runtime/MetaTable.h - LocationId -> LocMeta storage ------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps LocationIds to their LocMeta (the last-write map of Algorithm 1)
/// for the MIR interpreter, where locations are created dynamically. The
/// real-thread runtime instead embeds LocMeta directly in SharedVar /
/// InstrumentedMutex, avoiding any lookup on the hot path.
///
/// The table is sharded and internally synchronized so it can also back
/// dynamically allocated locations under real threads if needed.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_METATABLE_H
#define LIGHT_RUNTIME_METATABLE_H

#include "runtime/AccessHook.h"

#include <memory>
#include <mutex>
#include <unordered_map>

namespace light {

/// Sharded LocationId -> LocMeta map. Pointers returned remain valid for
/// the table's lifetime (values are never erased or moved).
class MetaTable {
  static constexpr uint32_t NumShards = 64;
  struct Shard {
    std::mutex M;
    std::unordered_map<LocationId, std::unique_ptr<LocMeta>> Map;
  };
  Shard Shards[NumShards];

public:
  /// Returns the metadata for \p L, creating it on first use.
  LocMeta &get(LocationId L) {
    Shard &S = Shards[(L ^ (L >> 17)) % NumShards];
    std::lock_guard<std::mutex> Guard(S.M);
    std::unique_ptr<LocMeta> &Slot = S.Map[L];
    if (!Slot)
      Slot = std::make_unique<LocMeta>();
    return *Slot;
  }

  /// Drops all entries (between independent runs on one table).
  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Guard(S.M);
      S.Map.clear();
    }
  }
};

} // namespace light

#endif // LIGHT_RUNTIME_METATABLE_H

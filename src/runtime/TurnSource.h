//===- runtime/TurnSource.h - Replay turn feed -------------------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal interface between a replay director (which owns the solved total
/// order over gated accesses) and a cooperative scheduler (the MIR
/// interpreter), which must always run the thread owning the current turn.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_TURNSOURCE_H
#define LIGHT_RUNTIME_TURNSOURCE_H

#include "trace/Ids.h"

namespace light {

/// Feed of replay turns for cooperative scheduling.
class TurnSource {
public:
  virtual ~TurnSource();

  /// The gated access that must execute next; invalid AccessId when the
  /// solved order is exhausted (remaining threads run freely).
  virtual AccessId currentTurn() const = 0;

  /// True when replay has failed (divergence); the scheduler should stop.
  virtual bool failed() const = 0;
};

} // namespace light

#endif // LIGHT_RUNTIME_TURNSOURCE_H

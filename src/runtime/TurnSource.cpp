//===- runtime/TurnSource.cpp - Replay turn feed ---------------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "runtime/TurnSource.h"

using namespace light;

TurnSource::~TurnSource() = default;

//===- runtime/ChannelTransport.cpp - Process-crossing channels -----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "runtime/ChannelTransport.h"

#include "support/FaultInjection.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

using namespace light;

ChannelTransport::~ChannelTransport() = default;

void ChannelTransport::backoff(uint64_t Attempt) {}

//===----------------------------------------------------------------------===//
// PipeFabric
//===----------------------------------------------------------------------===//

namespace {

/// One wire frame: the message's per-channel seqno plus its payload. 16
/// bytes — far below PIPE_BUF, so concurrent writers never interleave and
/// the pipe always holds a whole number of frames.
struct Frame {
  uint64_t Seq;
  int64_t Value;
};

/// Default in-flight bound for "unbounded" channels: keeps every channel's
/// outstanding frames comfortably inside the kernel pipe buffer (64 KiB =
/// 4096 frames), so a send never hits EAGAIN mid-seqno in practice.
constexpr uint64_t DefaultInFlightBound = 2048;

} // namespace

/// Per-channel counters in the shared anonymous mapping. fetch_add on
/// SendSeq is the global seqno allocator; Delivered tracks consumption so
/// capacity is (SendSeq - Delivered) in-flight frames.
struct PipeFabric::ChanShared {
  std::atomic<uint64_t> SendSeq{0};
  std::atomic<uint64_t> Delivered{0};
  std::atomic<uint64_t> Capacity{0}; ///< 0 = DefaultInFlightBound
};

std::unique_ptr<PipeFabric> PipeFabric::create(size_t NumChannels,
                                               std::string &Err) {
  std::unique_ptr<PipeFabric> F(new PipeFabric());
  F->Channels = NumChannels;
  if (NumChannels == 0)
    return F;

  size_t Bytes = NumChannels * sizeof(ChanShared);
  void *Mem = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED) {
    Err = std::string("mmap of channel counters failed: ") +
          std::strerror(errno);
    return nullptr;
  }
  F->Shared = new (Mem) ChanShared[NumChannels];

  for (size_t I = 0; I < NumChannels; ++I) {
    int Fds[2];
    if (::pipe(Fds) != 0) {
      Err = std::string("pipe creation failed: ") + std::strerror(errno);
      return nullptr; // destructor releases what was made so far
    }
    ::fcntl(Fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(Fds[1], F_SETFL, O_NONBLOCK);
    F->ReadFds.push_back(Fds[0]);
    F->WriteFds.push_back(Fds[1]);
  }
  return F;
}

PipeFabric::~PipeFabric() {
  for (int Fd : ReadFds)
    ::close(Fd);
  for (int Fd : WriteFds)
    ::close(Fd);
  if (Shared)
    ::munmap(Shared, Channels * sizeof(ChanShared));
}

//===----------------------------------------------------------------------===//
// PipeTransport
//===----------------------------------------------------------------------===//

bool PipeTransport::writeFrame(uint32_t Chan, uint64_t Seq, int64_t Value) {
  Frame Fr{Seq, Value};
  ssize_t N = ::write(F.WriteFds[Chan], &Fr, sizeof(Fr));
  return N == static_cast<ssize_t>(sizeof(Fr));
}

bool PipeTransport::trySend(ThreadId T, uint32_t Chan, int64_t Value,
                            uint64_t &Seq) {
  PipeFabric::ChanShared &S = F.Shared[Chan];
  uint64_t Cap = S.Capacity.load(std::memory_order_relaxed);
  if (!Cap)
    Cap = DefaultInFlightBound;
  if (S.SendSeq.load(std::memory_order_relaxed) -
          S.Delivered.load(std::memory_order_relaxed) >=
      Cap)
    return false; // at capacity; the caller retries with backoff

  Seq = S.SendSeq.fetch_add(1, std::memory_order_relaxed);

  fault::Injector &Inj = fault::Injector::global();
  if (Inj.shouldFire("dist.drop_msg")) {
    // The seqno is consumed but the frame never hits the wire: receivers
    // see a gap, exactly what a lost datagram looks like to the offline
    // causal-cut analysis. Delivered is bumped so the in-flight accounting
    // doesn't leak the phantom message.
    S.Delivered.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool Dup = Inj.shouldFire("dist.dup_msg");
  if (Inj.shouldFire("dist.reorder") && !Held.count(Chan)) {
    // Hold this frame back; it rides behind the channel's next send.
    Held[Chan] = {Seq, Value};
    return true;
  }

  bool Ok = writeFrame(Chan, Seq, Value);
  if (Dup)
    writeFrame(Chan, Seq, Value);
  auto It = Held.find(Chan);
  if (It != Held.end()) {
    // Deliver the held-back frame *after* the current one: reordered.
    writeFrame(Chan, It->second.first, It->second.second);
    Held.erase(It);
  }
  if (!Ok) {
    // EAGAIN with a seqno already allocated: the message degrades to a
    // drop (a gap the causal cut will handle), never a torn frame.
    S.Delivered.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool PipeTransport::tryRecv(ThreadId T, uint32_t Chan, int64_t &Value,
                            uint64_t &Seq) {
  Frame Fr;
  size_t Got = 0;
  while (Got < sizeof(Fr)) {
    ssize_t N = ::read(F.ReadFds[Chan],
                       reinterpret_cast<char *>(&Fr) + Got, sizeof(Fr) - Got);
    if (N > 0) {
      Got += static_cast<size_t>(N);
      continue;
    }
    if (Got == 0)
      return false; // empty (EAGAIN) or no writers left
    // A frame head without its tail can only be a transient window between
    // two reads of our own process (writes are atomic); spin it in.
  }
  F.Shared[Chan].Delivered.fetch_add(1, std::memory_order_relaxed);
  Seq = Fr.Seq;
  Value = Fr.Value;
  return true;
}

void PipeTransport::setCapacity(uint32_t Chan, uint64_t Capacity) {
  F.Shared[Chan].Capacity.store(Capacity, std::memory_order_relaxed);
}

void PipeTransport::backoff(uint64_t Attempt) {
  uint64_t Micros = 50 * Attempt;
  if (Micros > 2000)
    Micros = 2000;
  ::usleep(static_cast<useconds_t>(Micros));
}

//===----------------------------------------------------------------------===//
// ReplayChannelTransport
//===----------------------------------------------------------------------===//

ReplayChannelTransport::ReplayChannelTransport(
    const std::vector<MessageRecord> &Records) {
  for (const MessageRecord &R : Records) {
    uint64_t K = key(R.Access.Thread, R.Chan);
    if (R.IsSend)
      Sends[K].push_back(R.Seq);
    else
      Recvs[K].push_back({R.Value, R.Seq});
  }
}

bool ReplayChannelTransport::trySend(ThreadId T, uint32_t Chan, int64_t Value,
                                     uint64_t &Seq) {
  auto It = Sends.find(key(T, Chan));
  if (It != Sends.end() && !It->second.empty()) {
    Seq = It->second.front();
    It->second.pop_front();
  } else {
    Seq = 0; // send beyond the recorded prefix; accepted, unnumbered
  }
  return true;
}

bool ReplayChannelTransport::tryRecv(ThreadId T, uint32_t Chan,
                                     int64_t &Value, uint64_t &Seq) {
  auto It = Recvs.find(key(T, Chan));
  if (It == Recvs.end() || It->second.empty())
    return false; // no recorded delivery: the recorded starvation edge
  Value = It->second.front().first;
  Seq = It->second.front().second;
  It->second.pop_front();
  return true;
}

//===- runtime/Runtime.h - Real-thread instrumented runtime ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-thread execution substrate: workload kernels run on std::thread
/// and perform shared accesses through SharedVar / InstrumentedMutex, which
/// route every access through the attached AccessHook. This is the substrate
/// the overhead evaluation (Figures 4, 5, 7) runs on, where the *relative*
/// cost of each recording scheme's synchronization is what the paper
/// measures.
///
/// Threading primitives are modeled as ghost shared accesses per
/// Section 4.3: spawn = ghost write of the child's start token (read by the
/// child first thing), join = ghost read of the child's termination token
/// (written by the child last thing), lock acquire = ghost RMW inside the
/// region, release = ghost write before unlocking.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_RUNTIME_H
#define LIGHT_RUNTIME_RUNTIME_H

#include "runtime/AccessHook.h"
#include "runtime/MetaTable.h"
#include "runtime/ThreadRegistry.h"

#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace light {

/// Execution context tying a hook, a thread registry, and ghost-location
/// metadata together for one run.
class Runtime {
  AccessHook *Hook;
  ThreadRegistry Registry;
  MetaTable GhostMeta;

public:
  explicit Runtime(AccessHook &H) : Hook(&H) {}

  AccessHook &hook() { return *Hook; }
  ThreadRegistry &registry() { return Registry; }

  /// The id of the main thread.
  static constexpr ThreadId MainThread = 0;

  /// A spawned instrumented thread.
  struct Handle {
    std::thread Thread;
    ThreadId Id = 0;
  };

  /// Spawns \p Body on a new std::thread with a replay-stable ThreadId,
  /// issuing the ghost start access pair.
  Handle spawn(ThreadId Parent, std::function<void(ThreadId)> Body);

  /// Joins \p H from thread \p Joiner, issuing the ghost termination read.
  void join(ThreadId Joiner, Handle &H);

  /// Records/replays a nondeterministic environment value.
  uint64_t syscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
    return Hook->onSyscall(T, Compute);
  }
};

/// An instrumented shared 64-bit variable with embedded last-write metadata.
class SharedVar {
  std::atomic<int64_t> Data{0};
  LocMeta Meta;
  LocationId Loc;

public:
  /// \p Id must be unique among this run's SharedVars.
  explicit SharedVar(uint64_t Id, int64_t Initial = 0)
      : Data(Initial), Loc(loc::var(Id)) {}

  LocationId location() const { return Loc; }

  int64_t read(Runtime &RT, ThreadId T) {
    int64_t V = 0;
    RT.hook().onRead(T, Loc, Meta,
                     [&] { V = Data.load(std::memory_order_relaxed); });
    return V;
  }

  void write(Runtime &RT, ThreadId T, int64_t V) {
    RT.hook().onWrite(T, Loc, Meta,
                      [&] { Data.store(V, std::memory_order_relaxed); });
  }

  /// Raw, uninstrumented access for test assertions after all threads join.
  int64_t peek() const { return Data.load(std::memory_order_relaxed); }
};

/// An instrumented mutex whose acquire/release are modeled as ghost
/// accesses to the lock word (Section 4.3).
class InstrumentedMutex {
  std::mutex M;
  LocMeta Meta;
  LocationId Loc;

public:
  /// \p Id must be unique among this run's mutexes.
  explicit InstrumentedMutex(uint64_t Id)
      : Loc(loc::make(LocationKind::Lock, Id)) {}

  LocationId location() const { return Loc; }

  void lock(Runtime &RT, ThreadId T) {
    RT.hook().onRmw(T, Loc, Meta, [&] { M.lock(); });
  }

  void unlock(Runtime &RT, ThreadId T) {
    RT.hook().onWrite(T, Loc, Meta, [] {});
    M.unlock();
  }
};

/// RAII guard over InstrumentedMutex.
class InstrumentedGuard {
  Runtime &RT;
  InstrumentedMutex &Mu;
  ThreadId T;

public:
  InstrumentedGuard(Runtime &R, InstrumentedMutex &M, ThreadId Tid)
      : RT(R), Mu(M), T(Tid) {
    Mu.lock(RT, T);
  }
  ~InstrumentedGuard() { Mu.unlock(RT, T); }

  InstrumentedGuard(const InstrumentedGuard &) = delete;
  InstrumentedGuard &operator=(const InstrumentedGuard &) = delete;
};

} // namespace light

#endif // LIGHT_RUNTIME_RUNTIME_H

//===- runtime/TotalOrderDirector.h - Full-order replay gate ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A replay director that enforces one *total* order over every
/// instrumented access — the replay discipline of the baselines: Leap
/// (whose recording is already a total per-location order), Stride (after
/// linkage reconstruction), and Clap (whose solver emits a full schedule).
/// Light's own director (core/ReplayDirector) is more refined: it gates
/// only recorded accesses and runs span interiors free.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_TOTALORDERDIRECTOR_H
#define LIGHT_RUNTIME_TOTALORDERDIRECTOR_H

#include "runtime/AccessHook.h"
#include "runtime/TurnSource.h"

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

namespace light {

/// Gates every instrumented access by its position in a given total order;
/// accesses past each thread's recorded horizon run permissively (the
/// original run was truncated by the bug there).
class TotalOrderDirector : public AccessHook, public TurnSource {
public:
  /// \p Order is the full schedule; \p SyscallValues[t] are thread t's
  /// recorded environment values in order.
  TotalOrderDirector(std::vector<AccessId> Order,
                     std::vector<std::vector<uint64_t>> SyscallValues);

  // AccessHook interface.
  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;

  // TurnSource interface.
  AccessId currentTurn() const override;
  bool failed() const override { return Diverged.load(); }

  bool complete() const {
    return !Diverged.load() && Turn.load() >= Order.size();
  }
  const std::string &divergence() const { return Error; }

private:
  std::vector<AccessId> Order;
  std::unordered_map<uint64_t, uint32_t> TurnOf;
  std::vector<Counter> Horizon;

  PerThreadCounters Counters;
  std::atomic<uint32_t> Turn{0};
  std::atomic<bool> Diverged{false};
  std::string Error;

  std::vector<std::vector<uint64_t>> SyscallQueues;
  std::vector<size_t> SyscallPos;

  void gate(ThreadId T, LocationId L, FunctionRef<void()> Perform);
  void diverge(const std::string &Message);
};

} // namespace light

#endif // LIGHT_RUNTIME_TOTALORDERDIRECTOR_H

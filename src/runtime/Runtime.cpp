//===- runtime/Runtime.cpp - Real-thread instrumented runtime -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <cassert>

using namespace light;

Runtime::Handle Runtime::spawn(ThreadId Parent,
                               std::function<void(ThreadId)> Body) {
  ThreadId Child = Registry.registerSpawn(Parent);
  assert(Child != 0 && "spawn diverged from the recorded thread structure");

  // Ghost start token: written by the parent, read by the child as its
  // first transition (Section 4.3), creating the start happens-before edge.
  LocationId StartLoc = loc::threadStart(Child);
  Hook->onWrite(Parent, StartLoc, GhostMeta.get(StartLoc), [] {});

  Handle H;
  H.Id = Child;
  H.Thread = std::thread([this, Child, StartLoc, Body = std::move(Body)] {
    Hook->onRead(Child, StartLoc, GhostMeta.get(StartLoc), [] {});
    Body(Child);
    LocationId TermLoc = loc::threadTerm(Child);
    Hook->onWrite(Child, TermLoc, GhostMeta.get(TermLoc), [] {});
    Hook->onThreadFinish(Child);
  });
  return H;
}

void Runtime::join(ThreadId Joiner, Handle &H) {
  H.Thread.join();
  LocationId TermLoc = loc::threadTerm(H.Id);
  Hook->onRead(Joiner, TermLoc, GhostMeta.get(TermLoc), [] {});
}

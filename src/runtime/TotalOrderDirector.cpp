//===- runtime/TotalOrderDirector.cpp - Full-order replay gate -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "runtime/TotalOrderDirector.h"

#include <algorithm>

using namespace light;

TotalOrderDirector::TotalOrderDirector(
    std::vector<AccessId> OrderIn,
    std::vector<std::vector<uint64_t>> SyscallValues)
    : Order(std::move(OrderIn)), SyscallQueues(std::move(SyscallValues)) {
  for (uint32_t I = 0; I < Order.size(); ++I) {
    TurnOf[Order[I].pack()] = I;
    if (Horizon.size() <= Order[I].Thread)
      Horizon.resize(Order[I].Thread + 1, 0);
    Horizon[Order[I].Thread] =
        std::max(Horizon[Order[I].Thread], Order[I].Count);
  }
  SyscallPos.assign(std::max<size_t>(SyscallQueues.size(), 1), 0);
}

Counter TotalOrderDirector::counterOf(ThreadId T) const {
  return Counters.get(T);
}

AccessId TotalOrderDirector::currentTurn() const {
  uint32_t I = Turn.load();
  return I < Order.size() ? Order[I] : AccessId();
}

void TotalOrderDirector::diverge(const std::string &Message) {
  bool Expected = false;
  if (Diverged.compare_exchange_strong(Expected, true))
    Error = Message;
}

void TotalOrderDirector::gate(ThreadId T, LocationId L,
                              FunctionRef<void()> Perform) {
  Counter C = Counters.bump(T);
  if (T >= Horizon.size() || C > Horizon[T]) {
    Perform(); // past the recorded horizon
    return;
  }
  auto It = TurnOf.find(AccessId(T, C).pack());
  if (It == TurnOf.end()) {
    diverge("access " + AccessId(T, C).str() + " of " + loc::str(L) +
            " missing from the total order");
    return;
  }
  if (Turn.load() != It->second) {
    diverge("total-order replay out of order at " + AccessId(T, C).str());
    return;
  }
  Perform();
  Turn.fetch_add(1);
}

void TotalOrderDirector::onWrite(ThreadId T, LocationId L, LocMeta &M,
                                 FunctionRef<void()> Perform) {
  gate(T, L, Perform);
}

void TotalOrderDirector::onRead(ThreadId T, LocationId L, LocMeta &M,
                                FunctionRef<void()> Perform) {
  gate(T, L, Perform);
}

void TotalOrderDirector::onRmw(ThreadId T, LocationId L, LocMeta &M,
                               FunctionRef<void()> Perform) {
  gate(T, L, Perform);
}

uint64_t TotalOrderDirector::onSyscall(ThreadId T,
                                       FunctionRef<uint64_t()> Compute) {
  if (T < SyscallQueues.size() && SyscallPos[T] < SyscallQueues[T].size())
    return SyscallQueues[T][SyscallPos[T]++];
  return Compute();
}

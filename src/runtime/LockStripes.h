//===- runtime/LockStripes.h - Pre-allocated striped locks ------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 2^10 pre-allocated lock stripes of Section 4.1: "we refrain from
/// fine-grained locking at the granularity of the accessed location, as this
/// results in an excess of locks. Instead, we use lock striping with 2^10
/// pre-allocated locks and a simple hashing function that decides a lock
/// according to the offset of field f within the class definition."
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_LOCKSTRIPES_H
#define LIGHT_RUNTIME_LOCKSTRIPES_H

#include "trace/Ids.h"

#include <mutex>

namespace light {

/// 1024 pre-allocated mutexes indexed by a location hash.
class LockStripes {
public:
  static constexpr uint32_t NumStripes = 1u << 10;

private:
  struct alignas(64) Stripe {
    std::mutex M;
  };
  Stripe Stripes[NumStripes];

public:
  std::mutex &stripeFor(LocationId L) {
    return Stripes[loc::stripeKey(L) & (NumStripes - 1)].M;
  }
};

} // namespace light

#endif // LIGHT_RUNTIME_LOCKSTRIPES_H

//===- runtime/AccessHook.cpp - Instrumentation hook interface ------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "runtime/AccessHook.h"

using namespace light;

AccessHook::~AccessHook() = default;

void AccessHook::onThreadFinish(ThreadId T) {}

void AccessHook::onMessage(ThreadId T, uint32_t Chan, uint64_t Seq,
                           int64_t Value, bool IsSend) {}

NullHook::NullHook() = default;

void NullHook::onWrite(ThreadId T, LocationId L, LocMeta &M,
                       FunctionRef<void()> Perform) {
  Counters.bump(T);
  Perform();
}

void NullHook::onRead(ThreadId T, LocationId L, LocMeta &M,
                      FunctionRef<void()> Perform) {
  Counters.bump(T);
  Perform();
}

void NullHook::onRmw(ThreadId T, LocationId L, LocMeta &M,
                     FunctionRef<void()> Perform) {
  Counters.bump(T);
  Perform();
}

uint64_t NullHook::onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) {
  return Compute();
}

Counter NullHook::counterOf(ThreadId T) const { return Counters.get(T); }

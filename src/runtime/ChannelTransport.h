//===- runtime/ChannelTransport.h - Process-crossing channels ---*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-crossing channel fabric of multi-node recording, and the
/// redelivery transport of per-node replay.
///
/// A multi-node `light-replay record --nodes N` parent creates one
/// PipeFabric *before* forking: per channel, an O_NONBLOCK pipe shared by
/// every node plus a shared-memory word of per-channel atomic sequence
/// counters. A sender allocates the message's per-channel seqno with one
/// fetch_add and writes a fixed 16-byte frame (seq, payload) — frames are
/// below PIPE_BUF, so concurrent writers never interleave. Delivery in the
/// recorded run uses bounded retry-with-backoff on full/empty channels; the
/// Machine records the attempt count as a syscall input so replay matches
/// the recorded run attempt-for-attempt.
///
/// Replay of one node runs against a ReplayChannelTransport instead: sends
/// are accepted without a peer and receives redeliver the node's recorded
/// message-log values in per-thread recorded order (the AirReplay shape —
/// each node replays in isolation with reproducer-redelivered messages).
///
/// Fault surface (support/FaultInjection.h): the record-run sender honors
///   dist.drop_msg    consume the seqno, never write the frame
///   dist.dup_msg     write the frame twice
///   dist.reorder     hold the frame back and deliver it after the next one
/// so lost, duplicated, and reordered delivery are deterministic, seedable
/// scenarios the causal-cut salvage must survive.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_CHANNELTRANSPORT_H
#define LIGHT_RUNTIME_CHANNELTRANSPORT_H

#include "trace/Ids.h"
#include "trace/MessageLog.h"

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace light {

/// Delivery attempts before a send/recv gives up (the bounded retry of the
/// recorded run). Replay substitutes the recorded attempt count, so the
/// bound only has to be generous enough for live runs.
constexpr uint64_t MaxChanAttempts = 400;

/// How a Machine's channel endpoints cross the process boundary. All
/// methods are called from the node's single interpreter thread.
class ChannelTransport {
public:
  virtual ~ChannelTransport();

  /// Attempts to enqueue \p Value on \p Chan; fills \p Seq with the
  /// message's per-channel sequence number on success. False means the
  /// channel is at capacity — the caller retries with backoff.
  virtual bool trySend(ThreadId T, uint32_t Chan, int64_t Value,
                       uint64_t &Seq) = 0;

  /// Attempts to dequeue a message from \p Chan. False means empty.
  virtual bool tryRecv(ThreadId T, uint32_t Chan, int64_t &Value,
                       uint64_t &Seq) = 0;

  /// ChanMake: bounds the channel's in-flight message count (0 = default).
  virtual void setCapacity(uint32_t Chan, uint64_t Capacity) = 0;

  /// Called between delivery attempts (\p Attempt is 1-based). The live
  /// transport sleeps a growing slice; replay never sleeps.
  virtual void backoff(uint64_t Attempt);
};

/// The pre-fork shared state of a multi-node run: per-channel pipes plus a
/// shared anonymous mapping of atomic sequence counters. Create in the
/// parent, then hand to one PipeTransport per node (parent and children
/// share the descriptors across fork).
class PipeFabric {
public:
  /// Creates the fabric for \p NumChannels channels. Returns nullptr and
  /// sets \p Err on resource exhaustion.
  static std::unique_ptr<PipeFabric> create(size_t NumChannels,
                                            std::string &Err);
  ~PipeFabric();

  PipeFabric(const PipeFabric &) = delete;
  PipeFabric &operator=(const PipeFabric &) = delete;

  size_t numChannels() const { return Channels; }

private:
  friend class PipeTransport;
  PipeFabric() = default;

  struct ChanShared; ///< atomic seq counters in the shared mapping
  ChanShared *Shared = nullptr;
  size_t Channels = 0;
  std::vector<int> ReadFds, WriteFds;
};

/// The live (record-run) transport over a PipeFabric.
class PipeTransport : public ChannelTransport {
public:
  explicit PipeTransport(PipeFabric &Fabric) : F(Fabric) {}

  bool trySend(ThreadId T, uint32_t Chan, int64_t Value,
               uint64_t &Seq) override;
  bool tryRecv(ThreadId T, uint32_t Chan, int64_t &Value,
               uint64_t &Seq) override;
  void setCapacity(uint32_t Chan, uint64_t Capacity) override;
  void backoff(uint64_t Attempt) override;

private:
  PipeFabric &F;
  /// dist.reorder stash: one held-back frame per channel, delivered after
  /// the next send on that channel.
  std::unordered_map<uint32_t, std::pair<uint64_t, int64_t>> Held;

  bool writeFrame(uint32_t Chan, uint64_t Seq, int64_t Value);
};

/// The per-node replay transport: receives redeliver the node's recorded
/// deliveries in per-thread recorded order; sends are accepted unpeered
/// (their recorded seqnos are replayed for message-log faithfulness).
class ReplayChannelTransport : public ChannelTransport {
public:
  explicit ReplayChannelTransport(const std::vector<MessageRecord> &Records);

  bool trySend(ThreadId T, uint32_t Chan, int64_t Value,
               uint64_t &Seq) override;
  bool tryRecv(ThreadId T, uint32_t Chan, int64_t &Value,
               uint64_t &Seq) override;
  void setCapacity(uint32_t Chan, uint64_t Capacity) override {}
  void backoff(uint64_t Attempt) override {}

private:
  static uint64_t key(ThreadId T, uint32_t Chan) {
    return (static_cast<uint64_t>(T) << 32) | Chan;
  }
  std::unordered_map<uint64_t, std::deque<std::pair<int64_t, uint64_t>>>
      Recvs; ///< (thread, chan) -> FIFO of recorded (value, seq)
  std::unordered_map<uint64_t, std::deque<uint64_t>>
      Sends; ///< (thread, chan) -> FIFO of recorded send seqnos
};

} // namespace light

#endif // LIGHT_RUNTIME_CHANNELTRANSPORT_H

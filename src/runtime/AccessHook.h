//===- runtime/AccessHook.h - Instrumentation hook interface ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between instrumented shared accesses and whatever scheme is
/// attached to the execution: a recorder (Light, Leap, Stride, ...), a
/// replay director, or nothing. Both execution substrates — the MIR
/// interpreter and the real-thread runtime API — funnel every instrumented
/// shared access, ghost synchronization access (Section 4.3), and
/// nondeterministic syscall (Section 3.2) through this interface.
///
/// The hook *wraps* the actual data operation (the Perform callback) so a
/// scheme can establish the atomic section Algorithm 1 requires around the
/// program access: Light takes a striped lock around writes, uses the
/// optimistic retry protocol around reads (re-invoking Perform on retry),
/// Leap takes its per-location vector lock, and the replay director blocks
/// until the access's turn in the solved schedule arrives.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_ACCESSHOOK_H
#define LIGHT_RUNTIME_ACCESSHOOK_H

#include "support/FunctionRef.h"
#include "trace/Ids.h"

#include <atomic>

namespace light {

/// Per-location metadata: the "last-write map lw" of Algorithm 1 plus the
/// last-accessor marker used to detect interleaving for optimization O1
/// (Lemma 4.3). LastWrite is the moral equivalent of the paper's volatile
/// lw(o.f); std::atomic with seq_cst gives the required JMM-volatile
/// ordering.
struct LocMeta {
  /// Packed AccessId of the last write (0 = never written).
  std::atomic<uint64_t> LastWrite{0};
  /// ThreadId + 1 of the last accessing thread (0 = none). Used only to
  /// close O1 spans when another thread touches the location.
  std::atomic<uint32_t> LastAccessor{0};

  LocMeta() = default;
  LocMeta(const LocMeta &) = delete;
  LocMeta &operator=(const LocMeta &) = delete;
};

/// The instrumentation hook. Implementations must be thread-safe for use by
/// the real-thread runtime; the cooperative MIR interpreter calls them from
/// a single host thread.
class AccessHook {
public:
  virtual ~AccessHook();

  /// A shared write by thread \p T to location \p L. \p Perform executes the
  /// actual store; the hook decides how to synchronize around it (and, in
  /// replay, whether to execute it at all — blind writes are suppressed per
  /// Section 4.2).
  virtual void onWrite(ThreadId T, LocationId L, LocMeta &M,
                       FunctionRef<void()> Perform) = 0;

  /// A shared read. \p Perform executes the actual load and must be safe to
  /// invoke repeatedly (the optimistic read protocol of Section 2.3 retries
  /// it when the last write changed mid-flight).
  virtual void onRead(ThreadId T, LocationId L, LocMeta &M,
                      FunctionRef<void()> Perform) = 0;

  /// An atomic read-modify-write: lock acquisition (ghost read + write of
  /// the lock word, Section 4.3) and similar. Counts as a single access.
  /// Atomicity across Perform and the metadata update is the caller's
  /// context (e.g. the lock region itself).
  virtual void onRmw(ThreadId T, LocationId L, LocMeta &M,
                     FunctionRef<void()> Perform) = 0;

  /// A nondeterministic environment read (time(), random input). Recording
  /// schemes invoke \p Compute and log the value; replay returns the logged
  /// value without invoking \p Compute (Section 3.2).
  virtual uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) = 0;

  /// A channel endpoint operation by thread \p T: message \p Seq on channel
  /// \p Chan was sent (\p IsSend) or delivered, carrying integer payload
  /// \p Value. Invoked immediately after the operation's ghost chan RMW, so
  /// counterOf(T) is the access counter of that RMW — the correlation key a
  /// durable message log needs to match messages back to recorded accesses.
  /// Default: ignored (only multi-node recording attaches a message log).
  virtual void onMessage(ThreadId T, uint32_t Chan, uint64_t Seq,
                         int64_t Value, bool IsSend);

  /// Thread \p T finished; flush its thread-local state.
  virtual void onThreadFinish(ThreadId T);

  /// Current access counter D(T) (0 if the thread never accessed anything).
  virtual Counter counterOf(ThreadId T) const = 0;
};

/// Upper bound on concurrently known thread ids across one execution.
constexpr uint32_t MaxThreads = 1024;

/// Cache-line padded per-thread access counters D(t) (Algorithm 1). The
/// padding keeps counter bumps free of false sharing — counters are the one
/// piece of state every scheme touches on every access.
struct PerThreadCounters {
  struct alignas(64) Slot {
    std::atomic<Counter> Value{0};
  };
  Slot Slots[MaxThreads];

  /// Increments and returns the new counter for \p T. Relaxed: the slot is
  /// only written by thread T itself.
  Counter bump(ThreadId T) {
    Counter C = Slots[T].Value.load(std::memory_order_relaxed) + 1;
    Slots[T].Value.store(C, std::memory_order_relaxed);
    return C;
  }

  Counter get(ThreadId T) const {
    return Slots[T].Value.load(std::memory_order_relaxed);
  }
};

/// Pass-through hook: executes accesses directly. Used for baseline
/// (uninstrumented-overhead) measurements and plain functional runs. Still
/// maintains per-thread counters so bug reports correlate across schemes.
class NullHook : public AccessHook {
  PerThreadCounters Counters;

public:
  NullHook();

  void onWrite(ThreadId T, LocationId L, LocMeta &M,
               FunctionRef<void()> Perform) override;
  void onRead(ThreadId T, LocationId L, LocMeta &M,
              FunctionRef<void()> Perform) override;
  void onRmw(ThreadId T, LocationId L, LocMeta &M,
             FunctionRef<void()> Perform) override;
  uint64_t onSyscall(ThreadId T, FunctionRef<uint64_t()> Compute) override;
  Counter counterOf(ThreadId T) const override;
};

} // namespace light

#endif // LIGHT_RUNTIME_ACCESSHOOK_H

//===- runtime/ThreadRegistry.h - Replay-stable thread identity -*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns ThreadIds that are stable across the record run and the replay
/// run. A thread is identified structurally by (parent thread, per-parent
/// spawn index); by thread determinism each thread performs the same spawn
/// sequence in both runs, so this key names "the same" thread even though
/// the global spawn order differs between schedules.
///
/// In record mode ids are assigned on demand and the (key -> id) table is
/// saved into the RecordingLog; in replay mode the table is preloaded so
/// every thread receives its recorded id.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_RUNTIME_THREADREGISTRY_H
#define LIGHT_RUNTIME_THREADREGISTRY_H

#include "trace/DepSpan.h"

#include <mutex>
#include <unordered_map>
#include <vector>

namespace light {

/// Thread-identity table. Thread 0 is always the main thread.
class ThreadRegistry {
  mutable std::mutex M;
  std::unordered_map<uint64_t, ThreadId> Table; ///< key(parent,idx) -> child
  std::vector<uint32_t> SpawnCounts;            ///< per parent
  std::vector<SpawnRecord> Spawns;
  ThreadId NextId = 1;
  bool ReplayMode = false;

  static uint64_t key(ThreadId Parent, uint32_t SpawnIndex) {
    return (static_cast<uint64_t>(Parent) << 32) | SpawnIndex;
  }

public:
  ThreadRegistry() : SpawnCounts(1, 0) {}

  /// Preloads the table from a recording; subsequent registrations must
  /// match recorded spawns exactly.
  void loadForReplay(const std::vector<SpawnRecord> &Recorded) {
    std::lock_guard<std::mutex> Guard(M);
    ReplayMode = true;
    for (const SpawnRecord &R : Recorded)
      Table[key(R.Parent, R.SpawnIndex)] = R.Child;
  }

  /// Registers the next spawn of \p Parent and returns the child's stable
  /// id. In replay mode an unrecorded spawn returns 0 cast as failure — the
  /// caller reports divergence (thread determinism violated).
  ThreadId registerSpawn(ThreadId Parent) {
    std::lock_guard<std::mutex> Guard(M);
    if (SpawnCounts.size() <= Parent)
      SpawnCounts.resize(Parent + 1, 0);
    uint32_t Index = SpawnCounts[Parent]++;
    uint64_t K = key(Parent, Index);
    if (ReplayMode) {
      auto It = Table.find(K);
      return It == Table.end() ? 0 : It->second;
    }
    ThreadId Child = NextId++;
    Table[K] = Child;
    Spawns.push_back({Parent, Index, Child});
    return Child;
  }

  /// Number of threads registered so far (including main).
  ThreadId numThreads() const {
    std::lock_guard<std::mutex> Guard(M);
    return ReplayMode ? static_cast<ThreadId>(Table.size() + 1) : NextId;
  }

  /// The spawn table to embed into a RecordingLog.
  std::vector<SpawnRecord> spawnTable() const {
    std::lock_guard<std::mutex> Guard(M);
    return Spawns;
  }
};

} // namespace light

#endif // LIGHT_RUNTIME_THREADREGISTRY_H

//===- explore/ExplorationDriver.h - Schedule-space exploration -*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule-exploration engine. An ExplorationDriver executes one MIR
/// program repeatedly under controlled schedulers, deterministically
/// replaying decision prefixes; on top of it sit the two search
/// strategies:
///
///  * explorePct — PCT randomized priority search: per seed, a measurement
///    run estimates the decision count k, then one PctScheduler run with d
///    randomly demoted priorities probes for a depth-d bug. Deterministic
///    per seed.
///
///  * exploreDfs — bounded-preemption systematic search: depth-first
///    enumeration of all schedules reachable from the non-preemptive
///    baseline with at most B preempting context switches, in the style of
///    CHESS [Musuvathi & Qadeer]. Every enumerated schedule is distinct;
///    the search is exhaustive up to the bound when the budget allows.
///
/// Both strategies stop at the first *application* bug (assertion, null
/// use, division, bounds, deadlock) unless asked to keep going, and
/// publish explore.* metrics.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_EXPLORE_EXPLORATIONDRIVER_H
#define LIGHT_EXPLORE_EXPLORATIONDRIVER_H

#include "explore/DecisionTrace.h"
#include "explore/ExploreSchedulers.h"
#include "interp/Machine.h"
#include "mir/Program.h"

#include <cstdint>
#include <string>

namespace light {
namespace explore {

/// True for failures that count as application bugs (Definition 3.2), the
/// kind exploration hunts for — as opposed to replay/runtime anomalies.
bool isApplicationBug(const BugReport &B);

/// One executed schedule.
struct ScheduleRun {
  RunResult Result;
  DecisionTrace Choices;
  uint32_t Preemptions = 0;
};

/// Outcome of a strategy run.
struct ExploreReport {
  bool BugFound = false;
  BugReport Bug;
  /// The failing schedule (valid when BugFound); replaying it under a
  /// TraceScheduler reproduces the bug deterministically.
  DecisionTrace FailingTrace;
  uint64_t FailingSeed = 0; ///< environment seed of the failing run
  uint32_t FailingPreemptions = 0;

  /// First schedule that hung (ran into the per-run instruction budget
  /// without completing). Only hunted when ExploreOptions::TreatHangAsBug
  /// is set; replaying HangTrace hangs again deterministically.
  bool HangFound = false;
  DecisionTrace HangTrace;

  uint64_t SchedulesRun = 0;
  uint64_t DistinctInterleavings = 0;
  /// Schedules that ended in a deadlock (no runnable thread before the
  /// trace ended). They count toward the schedule budget like any other
  /// run, but are tallied separately — a search that spends its budget
  /// deadlocking is a different diagnosis from one that finds nothing.
  uint64_t Deadlocks = 0;
  /// Schedules that exhausted the per-run instruction budget (live hangs).
  uint64_t Hangs = 0;
  /// True when the DFS search exhausted the bounded space before the
  /// budget ran out (the enumeration is complete for this bound).
  bool SpaceExhausted = false;
  /// True when ExploreOptions::WallBudgetSeconds expired first; the report
  /// carries the best-so-far state at that point.
  bool TimedOut = false;
  double Seconds = 0;

  /// Best-so-far checkpoint: the most adversarial schedule observed (most
  /// preemptions, longest on ties) — the failing trace when a bug was
  /// found. A timed-out exploration still hands the caller something
  /// concrete to replay.
  DecisionTrace BestTrace;
  uint32_t BestPreemptions = 0;

  double schedulesPerSecond() const {
    return Seconds > 0 ? static_cast<double>(SchedulesRun) / Seconds : 0;
  }
};

/// Exploration knobs.
struct ExploreOptions {
  /// Maximum schedules to execute (both strategies).
  uint64_t ScheduleBudget = 50000;
  /// DFS: maximum preempting context switches per schedule.
  uint32_t PreemptionBound = 2;
  /// PCT: bug-depth parameter d (d-1 priority change points).
  uint32_t PctDepth = 3;
  /// PCT: number of seeds to try (seeds are 1..PctSeeds).
  uint64_t PctSeeds = 1000;
  /// Stop at the first application bug (else keep exploring the budget and
  /// report the first bug found).
  bool StopAtFirstBug = true;
  /// Environment seed for SysRand/SysTime during exploration runs.
  uint64_t EnvSeed = 1;
  /// Per-run interpreter instruction budget.
  uint64_t MaxInstructions = 20000000ull;
  /// Wall-clock budget for the whole search in seconds (0 = unlimited).
  /// Checked between schedules; on expiry the strategy returns with
  /// TimedOut set and the best-so-far state instead of burning the rest of
  /// the schedule budget.
  double WallBudgetSeconds = 0;
  /// Treat a hanging schedule (instruction budget exhausted) as a failure
  /// worth reporting: stop the search (under StopAtFirstBug) and hand back
  /// HangTrace. A CI harness chasing a watchdog-killed child wants the
  /// hanging interleaving, not a burned budget re-hanging on every probe.
  bool TreatHangAsBug = false;
};

/// Executes single schedules of one program deterministically.
class ExplorationDriver {
public:
  ExplorationDriver(const mir::Program &Prog, const ExploreOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  /// Runs \p Prefix, extending it with the non-preemptive default policy.
  ScheduleRun runPrefix(const DecisionTrace &Prefix,
                        std::vector<Decision> *DecisionsOut = nullptr);

  /// Runs one PCT schedule. \p ExpectedSteps is the k estimate.
  ScheduleRun runPct(uint64_t Seed, uint32_t Depth, uint64_t ExpectedSteps);

  /// True when \p R is a live hang: the run neither completed nor hit a
  /// real bug, it exhausted this driver's per-run instruction budget.
  bool isHang(const RunResult &R) const {
    return !R.Completed && R.Bug.What == BugReport::Kind::RuntimeError &&
           R.InstructionsExecuted >= Opts.MaxInstructions;
  }

  const mir::Program &program() const { return Prog; }
  const ExploreOptions &options() const { return Opts; }

private:
  const mir::Program &Prog;
  ExploreOptions Opts;
};

/// Bounded-preemption systematic DFS over the schedule space.
ExploreReport exploreDfs(const mir::Program &Prog,
                         const ExploreOptions &Opts);

/// PCT randomized priority search over seeds 1..Opts.PctSeeds.
ExploreReport explorePct(const mir::Program &Prog,
                         const ExploreOptions &Opts);

} // namespace explore
} // namespace light

#endif // LIGHT_EXPLORE_EXPLORATIONDRIVER_H

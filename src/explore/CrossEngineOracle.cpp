//===- explore/CrossEngineOracle.cpp - Differential replay oracle ----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
//
// Fault sites (see support/FaultInjection.h):
//   oracle.corrupt_leap_order   swap the first adjacent same-thread pair in
//                               Leap's linearized total order before replay —
//                               a seeded, deterministic divergence used to
//                               exercise the oracle + shrinker pipeline.
//
//===----------------------------------------------------------------------===//

#include "explore/CrossEngineOracle.h"

#include "analysis/LocksetAnalysis.h"
#include "analysis/RaceDetector.h"
#include "analysis/SharedAccessAnalysis.h"
#include "baselines/ChimeraEngine.h"
#include "baselines/ClapEngine.h"
#include "baselines/LeapRecorder.h"
#include "baselines/LeapReplayer.h"
#include "baselines/StrideRecorder.h"
#include "core/LightRecorder.h"
#include "core/ReplayDirector.h"
#include "core/ReplaySchedule.h"
#include "explore/ExplorationDriver.h"
#include "explore/ExploreSchedulers.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"

using namespace light;
using namespace light::explore;

std::string OracleVerdict::str() const {
  std::string Out;
  if (Agreed) {
    Out = "agreed";
  } else {
    Out = "DISAGREED (" + std::to_string(Disagreements.size()) + ")";
    for (const Disagreement &D : Disagreements)
      Out += "\n  " + D.str();
  }
  Out += BugManifested ? "; bug: " + Bug.str() : "; no bug";
  if (!ClapSupported)
    Out += "; clap unsupported";
  return Out;
}

namespace {

/// Compares per-thread print sequences; empty string = equal.
std::string diffOutputs(const RunResult &A, const RunResult &B) {
  if (A.OutputByThread.size() != B.OutputByThread.size())
    return "thread count " + std::to_string(A.OutputByThread.size()) +
           " vs " + std::to_string(B.OutputByThread.size());
  for (size_t T = 0; T < A.OutputByThread.size(); ++T)
    if (A.OutputByThread[T] != B.OutputByThread[T])
      return "thread " + std::to_string(T) + ": \"" + A.OutputByThread[T] +
             "\" vs \"" + B.OutputByThread[T] + "\"";
  return std::string();
}

struct EngineRun {
  RunResult Result;
  std::vector<SpawnRecord> Spawns;
};

/// Runs \p Prog under the reference decision trace with hook \p Hook. Every
/// recorder is a pass-through, so the execution is decision-for-decision the
/// reference execution.
template <typename Hook>
EngineRun runRecorded(const mir::Program &Prog, const DecisionTrace &Full,
                      Hook &H, const OracleConfig &Config,
                      BranchTrace *Branches = nullptr) {
  Machine M(Prog, H);
  if (Branches)
    M.setBranchTracer(Branches);
  M.seedEnvironment(Config.EnvSeed ^ 0x5a5a);
  TraceScheduler Sched(Full);
  EngineRun Out;
  Out.Result = M.run(Sched, Config.MaxInstructions);
  Out.Spawns = M.registry().spawnTable();
  return Out;
}

} // namespace

OracleVerdict CrossEngineOracle::check(const mir::Program &Prog,
                                       const DecisionTrace &Schedule) const {
  obs::TraceSpan Span("explore.oracle", "explore");
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("explore.oracle_pairs").add(1);

  OracleVerdict V;
  auto Disagree = [&](const char *A, const char *B, const char *Aspect,
                      std::string Detail) {
    V.Agreed = false;
    V.Disagreements.push_back({A, B, Aspect, std::move(Detail)});
  };

  // Reference run. The prefix is extended by the deterministic default
  // policy; the full trace it yields is the schedule every engine records.
  DecisionTrace Full;
  RunResult Ref;
  {
    NullHook Null;
    Machine M(Prog, Null);
    M.seedEnvironment(Config.EnvSeed ^ 0x5a5a);
    TraceScheduler Sched(Schedule);
    Ref = M.run(Sched, Config.MaxInstructions);
    Full = Sched.choices();
  }
  V.BugManifested = isApplicationBug(Ref.Bug);
  V.Bug = Ref.Bug;

  // --- Light: record, solve, validated replay ------------------------------
  {
    LightOptions Opts = LightOptions::both();
    Opts.WriteToDisk = false;
    LightRecorder Rec(Opts);
    RecordingLog Log;
    EngineRun Recorded;
    {
      Machine M(Prog, Rec);
      M.seedEnvironment(Config.EnvSeed ^ 0x5a5a);
      TraceScheduler Sched(Full);
      Recorded.Result = M.run(Sched, Config.MaxInstructions);
      Log = Rec.finish(&M.registry());
    }
    if (std::string D = diffOutputs(Ref, Recorded.Result); !D.empty())
      Disagree("recorded", "light", "prints", D);
    if (!Ref.Bug.sameAs(Recorded.Result.Bug))
      Disagree("recorded", "light", "bug",
               Ref.Bug.str() + " vs " + Recorded.Result.Bug.str());

    ReplaySchedule RS = ReplaySchedule::build(Log, Config.LightEngine, {},
                                              Config.SolverShards);
    if (!RS.ok()) {
      Disagree("light", "light", "solve", RS.error());
    } else {
      ReplayDirector Director(RS, /*RealThreads=*/false, /*Validate=*/true);
      Machine M(Prog, Director);
      M.prepareReplay(Log.Spawns);
      RunResult Rep = M.runReplay(Director);
      if (Director.failed())
        Disagree("light", "light", "replay", Director.divergence());
      if (std::string D = diffOutputs(Recorded.Result, Rep); !D.empty())
        Disagree("light", "light-replay", "prints", D);
      if (!Recorded.Result.Bug.sameAs(Rep.Bug))
        Disagree("light", "light-replay", "bug",
                 Recorded.Result.Bug.str() + " vs " + Rep.Bug.str());
    }
  }

  // --- Light V_basic: the explicit read-from ground truth -------------------
  RecordingLog BasicLog;
  {
    LightOptions Opts = LightOptions::basic();
    Opts.WriteToDisk = false;
    LightRecorder Rec(Opts);
    Machine M(Prog, Rec);
    M.seedEnvironment(Config.EnvSeed ^ 0x5a5a);
    TraceScheduler Sched(Full);
    M.run(Sched, Config.MaxInstructions);
    BasicLog = Rec.finish(&M.registry());
  }

  // --- Leap: record, linearize, total-order replay --------------------------
  {
    LeapRecorder Rec;
    EngineRun Recorded = runRecorded(Prog, Full, Rec, Config);
    LeapLog Log = Rec.finish();
    if (std::string D = diffOutputs(Ref, Recorded.Result); !D.empty())
      Disagree("recorded", "leap", "prints", D);
    if (!Ref.Bug.sameAs(Recorded.Result.Bug))
      Disagree("recorded", "leap", "bug",
               Ref.Bug.str() + " vs " + Recorded.Result.Bug.str());

    LeapOrder Order = linearizeLeapLog(Log);
    if (!Order.Ok) {
      Disagree("leap", "leap", "solve", Order.Error);
    } else {
      if (fault::Injector::global().shouldFire("oracle.corrupt_leap_order")) {
        // Swap the first adjacent same-thread pair: per-thread counter
        // order makes the corrupted total order unrealizable, so the
        // replay must diverge — the seeded failure the shrinker tests
        // minimize.
        for (size_t I = 1; I < Order.Order.size(); ++I)
          if (Order.Order[I - 1].Thread == Order.Order[I].Thread) {
            std::swap(Order.Order[I - 1], Order.Order[I]);
            break;
          }
      }
      TotalOrderDirector Director(Order.Order, Order.SyscallValues);
      Machine M(Prog, Director);
      M.prepareReplay(Recorded.Spawns);
      RunResult Rep = M.runReplay(Director);
      if (Director.failed())
        Disagree("leap", "leap", "replay", Director.divergence());
      if (std::string D = diffOutputs(Recorded.Result, Rep); !D.empty())
        Disagree("leap", "leap-replay", "prints", D);
      if (!Recorded.Result.Bug.sameAs(Rep.Bug))
        Disagree("leap", "leap-replay", "bug",
                 Recorded.Result.Bug.str() + " vs " + Rep.Bug.str());
    }
  }

  // --- Stride: record, reconstruct, read-from vs Light V_basic --------------
  {
    StrideRecorder Rec;
    EngineRun Recorded = runRecorded(Prog, Full, Rec, Config);
    StrideLog Log = Rec.finish();
    if (std::string D = diffOutputs(Ref, Recorded.Result); !D.empty())
      Disagree("recorded", "stride", "prints", D);
    if (!Ref.Bug.sameAs(Recorded.Result.Bug))
      Disagree("recorded", "stride", "bug",
               Ref.Bug.str() + " vs " + Recorded.Result.Bug.str());

    StrideLinkage Linkage = StrideRecorder::reconstruct(Log);
    for (const DepSpan &S : BasicLog.Spans) {
      if (S.Kind != SpanKind::Read)
        continue;
      auto It = Linkage.SourceOf.find(S.first().pack());
      if (It == Linkage.SourceOf.end())
        continue;
      ++V.ReadFromChecked;
      if (AccessId::unpack(It->second) != S.Src)
        Disagree("light", "stride", "read-from",
                 "span " + S.str() + " links to " +
                     AccessId::unpack(It->second).str());
    }
  }

  // --- Clap: record, symbolic solve, replay ---------------------------------
  if (Config.RunClap) {
    ClapRecorder Rec;
    BranchTrace Trace;
    EngineRun Recorded = runRecorded(Prog, Full, Rec, Config, &Trace);
    ClapRecording Recording = Rec.finish();
    Recording.Branches = Trace;
    Recording.Spawns = Recorded.Spawns;
    Recording.Bug = Recorded.Result.Bug;
    if (std::string D = diffOutputs(Ref, Recorded.Result); !D.empty())
      Disagree("recorded", "clap", "prints", D);
    if (!Ref.Bug.sameAs(Recorded.Result.Bug))
      Disagree("recorded", "clap", "bug",
               Ref.Bug.str() + " vs " + Recorded.Result.Bug.str());

    ClapSolveResult Solved = clapSolve(Prog, Recording);
    V.ClapSupported = Solved.Supported;
    if (!Solved.Supported) {
      // A documented limitation (Section 5.3), not a disagreement.
      V.ClapNote = Solved.UnsupportedWhy;
      Reg.counter("explore.oracle_clap_unsupported").add(1);
    } else if (!Solved.Solved) {
      Disagree("clap", "clap", "solve",
               "constraints unsatisfiable on a feasible recording");
    } else {
      // Clap's constraints pin the recorded branch outcomes and the
      // failure, not the full value flow: a read that never feeds a branch
      // may legitimately link to a different write, so prints are NOT part
      // of Clap's agreement contract — only bug correlation is.
      RunResult Rep = clapReplay(Prog, Recording, Solved);
      if (!Recorded.Result.Bug.sameAs(Rep.Bug))
        Disagree("clap", "clap-replay", "bug",
                 Recorded.Result.Bug.str() + " vs " + Rep.Bug.str());
    }
  } else {
    V.ClapSupported = false;
    V.ClapNote = "not run";
  }

  // --- Chimera: patch, record the patched program, self-fidelity ------------
  // Chimera records a *different* program (the patch inserts lock
  // operations), so decision traces do not transfer and serialized methods
  // may legitimately hide the bug; the oracle checks that whatever Chimera
  // records, it replays faithfully.
  if (Config.RunChimera) {
    mir::Program Patched = Prog;
    analysis::markSharedAccesses(Patched);
    analysis::LocksetAnalysis LA(Patched);
    std::vector<analysis::RacePair> Races = analysis::detectRaces(Patched, LA);
    ChimeraPatch Patch = chimeraPatch(Patched, Races);
    if (!Patch.Patched.verify().empty()) {
      Disagree("chimera", "chimera", "solve",
               "patched program fails verification: " +
                   Patch.Patched.verify());
    } else {
      V.ChimeraRan = true;
      // Search a few seeds for a run that manifests the bug (when the
      // reference did); otherwise the first recording is checked.
      ChimeraLog Log;
      std::vector<SpawnRecord> Spawns;
      RunResult Recorded;
      bool Have = false;
      for (uint64_t Seed = 1; Seed <= Config.ChimeraMaxSeeds; ++Seed) {
        ChimeraRecorder Rec;
        Machine M(Patch.Patched, Rec);
        M.seedEnvironment(Config.EnvSeed ^ 0x5a5a);
        RandomScheduler Sched(Seed);
        RunResult R = M.run(Sched, Config.MaxInstructions);
        if (!Have || (V.BugManifested && !V.ChimeraBugManifested &&
                      isApplicationBug(R.Bug))) {
          Log = Rec.finish();
          Spawns = M.registry().spawnTable();
          Recorded = R;
          Have = true;
          V.ChimeraBugManifested = isApplicationBug(R.Bug);
        }
        if (!V.BugManifested || V.ChimeraBugManifested)
          break;
      }
      ChimeraDirector Director(Log);
      Machine M(Patch.Patched, Director);
      M.prepareReplay(Spawns);
      RunResult Rep = M.runReplay(Director);
      if (Director.failed())
        Disagree("chimera", "chimera", "replay", Director.divergence());
      if (std::string D = diffOutputs(Recorded, Rep); !D.empty())
        Disagree("chimera", "chimera-replay", "prints", D);
      if (!Recorded.Bug.sameAs(Rep.Bug))
        Disagree("chimera", "chimera-replay", "bug",
                 Recorded.Bug.str() + " vs " + Rep.Bug.str());
    }
  }

  if (!V.Agreed)
    Reg.counter("explore.oracle_disagreements").add(1);
  return V;
}

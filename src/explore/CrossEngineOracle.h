//===- explore/CrossEngineOracle.h - Differential replay oracle -*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-engine differential oracle: for one (program, schedule) pair,
/// record the same execution with Light and the four baselines (Leap,
/// Stride, Clap, Chimera), run every engine's offline phase and replay,
/// and assert agreement — in the iReplayer tradition of validating a
/// replay engine by repeated identical re-execution against itself and its
/// baselines. The agreement definition:
///
///  * recording fidelity — every pass-through recorder observes exactly
///    the reference run (same per-thread print sequences, same bug);
///  * replay fidelity — each engine's replay reproduces its own recording
///    (prints + Theorem 1 bug correlation); Light replays validated;
///  * read-from agreement — Light's V_basic dependence spans and Stride's
///    reconstructed bounded linkage name the same source write for every
///    shared read they both cover;
///  * documented limitations are *not* disagreements: Clap may report the
///    program outside its solver model (maps, arrays, wait/notify,
///    nonlinear arithmetic), and its replay promises only the recorded
///    branch outcomes and the failure — value flow that never feeds a
///    branch may differ, so Clap is held to bug correlation, not prints.
///    Chimera records a *patched* program whose serialized methods may
///    legitimately hide the bug; it is held to self-fidelity (its replay
///    must reproduce its own recording).
///
/// Any disagreement is a finding: either a real divergence between two
/// replay engines or a broken invariant in one of them. The shrinker
/// (ProgramShrinker.h) minimizes the (program, schedule) pair while the
/// disagreement persists.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_EXPLORE_CROSSENGINEORACLE_H
#define LIGHT_EXPLORE_CROSSENGINEORACLE_H

#include "explore/DecisionTrace.h"
#include "interp/Machine.h"
#include "smt/Z3Backend.h"

#include <string>
#include <vector>

namespace light {
namespace explore {

/// One detected disagreement between two engines (or an engine and the
/// reference run, named "recorded").
struct Disagreement {
  std::string EngineA;
  std::string EngineB;
  std::string Aspect; ///< "prints" | "bug" | "read-from" | "replay" | "solve"
  std::string Detail;

  std::string str() const {
    return EngineA + " vs " + EngineB + " [" + Aspect + "]: " + Detail;
  }
};

/// The oracle's verdict for one (program, schedule) pair.
struct OracleVerdict {
  bool Agreed = true;
  std::vector<Disagreement> Disagreements;

  /// Reference-run facts and documented limitations (not disagreements).
  bool BugManifested = false;
  BugReport Bug;
  bool ClapSupported = false;
  std::string ClapNote;
  bool ChimeraRan = false;
  bool ChimeraBugManifested = false;
  uint32_t ReadFromChecked = 0; ///< read-from edges compared Light vs Stride

  std::string str() const;
};

/// Oracle configuration.
struct OracleConfig {
  smt::SolverEngine LightEngine = smt::SolverEngine::Idl;
  unsigned SolverShards = 1;
  /// Clap's offline phase symbolically re-executes through Z3; allow
  /// disabling it for high-volume property runs.
  bool RunClap = true;
  /// Chimera records the patched program under its own schedule search.
  bool RunChimera = true;
  uint64_t ChimeraMaxSeeds = 12;
  uint64_t EnvSeed = 1;
  uint64_t MaxInstructions = 20000000ull;
};

/// The differential oracle. Stateless apart from its configuration; check
/// may be called for many pairs.
class CrossEngineOracle {
public:
  explicit CrossEngineOracle(OracleConfig Config = OracleConfig())
      : Config(Config) {}

  /// Checks one (program, schedule) pair. \p Schedule may be a prefix; the
  /// non-preemptive default policy extends it deterministically.
  OracleVerdict check(const mir::Program &Prog,
                      const DecisionTrace &Schedule) const;

  const OracleConfig &config() const { return Config; }

private:
  OracleConfig Config;
};

} // namespace explore
} // namespace light

#endif // LIGHT_EXPLORE_CROSSENGINEORACLE_H

//===- explore/ExploreSchedulers.h - Adversarial schedulers -----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exploration engine's Scheduler subclasses:
///
///  * TraceScheduler replays a decision prefix exactly, then continues with
///    a deterministic non-preemptive default policy (keep running the
///    current thread; on a forced switch take the lowest id). Every
///    decision — prefix and suffix — is captured, so a run under a
///    TraceScheduler both *re-executes* a known schedule and *extends* it.
///
///  * PctScheduler implements the PCT randomized priority scheduler
///    [Burckhardt et al., ASPLOS 2010]: each thread gets a random distinct
///    priority, the highest-priority runnable thread always runs, and d-1
///    priority-change points are placed uniformly at random over the
///    expected k scheduling steps. For a program with at most n threads
///    and k steps, one PCT run finds any depth-d bug with probability
///    >= 1/(n * k^(d-1)) — the probabilistic guarantee that makes a
///    bounded seed budget meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_EXPLORE_EXPLORESCHEDULERS_H
#define LIGHT_EXPLORE_EXPLORESCHEDULERS_H

#include "explore/DecisionTrace.h"
#include "interp/Scheduler.h"
#include "support/Random.h"

#include <unordered_map>

namespace light {
namespace explore {

/// Replays a choice prefix, then falls back to the non-preemptive default
/// policy. Records every decision made.
class TraceScheduler : public Scheduler {
public:
  explicit TraceScheduler(DecisionTrace Prefix = {})
      : Prefix(std::move(Prefix)) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable) override;

  /// All decisions of the run so far (prefix + default-policy suffix).
  const std::vector<Decision> &decisions() const { return Trace; }

  /// The run's choices as a plain trace.
  DecisionTrace choices() const {
    DecisionTrace Out;
    Out.reserve(Trace.size());
    for (const Decision &D : Trace)
      Out.push_back(D.Chosen);
    return Out;
  }

  /// True when some prefix choice was not runnable at its decision point
  /// (the prefix no longer fits the execution — e.g. after the program was
  /// shrunk). The scheduler recovered with the default policy.
  bool deviated() const { return Deviated; }

private:
  DecisionTrace Prefix;
  std::vector<Decision> Trace;
  size_t Next = 0;
  ThreadId Last = 0;
  bool HaveLast = false;
  bool Deviated = false;

  ThreadId defaultPick(const std::vector<ThreadId> &Runnable) const;
};

/// The PCT randomized priority scheduler.
class PctScheduler : public Scheduler {
public:
  /// \p Depth is the bug-depth parameter d (>= 1); \p ExpectedSteps the
  /// estimate of the run's scheduling-decision count k (change points are
  /// drawn uniformly from [1, k]).
  PctScheduler(uint64_t Seed, uint32_t Depth, uint64_t ExpectedSteps);

  ThreadId pick(const std::vector<ThreadId> &Runnable) override;

  /// Decisions made so far (for handing a buggy schedule to the oracle or
  /// the shrinker).
  const std::vector<Decision> &decisions() const { return Trace; }
  DecisionTrace choices() const {
    DecisionTrace Out;
    Out.reserve(Trace.size());
    for (const Decision &D : Trace)
      Out.push_back(D.Chosen);
    return Out;
  }

  /// Priority-change points actually armed (sorted, 1-based step numbers).
  const std::vector<uint64_t> &changePoints() const { return ChangePoints; }

private:
  Rng R;
  uint32_t Depth;
  /// Thread -> current priority; higher runs first. Initial priorities are
  /// >= Depth, change points assign Depth-1, Depth-2, ... so a demoted
  /// thread sinks below every undemoted one.
  std::unordered_map<ThreadId, uint64_t> Priority;
  std::vector<uint64_t> ChangePoints; ///< sorted ascending
  size_t NextChange = 0;
  uint64_t Step = 0;
  std::vector<Decision> Trace;

  uint64_t priorityOf(ThreadId T);
};

} // namespace explore
} // namespace light

#endif // LIGHT_EXPLORE_EXPLORESCHEDULERS_H

//===- explore/ExplorationDriver.cpp - Schedule-space exploration ----------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "explore/ExplorationDriver.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Timer.h"

#include <unordered_set>

using namespace light;
using namespace light::explore;

bool light::explore::isApplicationBug(const BugReport &B) {
  switch (B.What) {
  case BugReport::Kind::AssertionFailure:
  case BugReport::Kind::NullPointer:
  case BugReport::Kind::DivideByZero:
  case BugReport::Kind::ArrayBounds:
  case BugReport::Kind::Deadlock:
    return true;
  default:
    return false;
  }
}

ScheduleRun ExplorationDriver::runPrefix(const DecisionTrace &Prefix,
                                         std::vector<Decision> *DecisionsOut) {
  NullHook Null;
  Machine M(Prog, Null);
  M.seedEnvironment(Opts.EnvSeed ^ 0x5a5a);
  TraceScheduler Sched(Prefix);
  ScheduleRun Out;
  Out.Result = M.run(Sched, Opts.MaxInstructions);
  Out.Choices = Sched.choices();
  Out.Preemptions = countPreemptions(Sched.decisions());
  if (DecisionsOut)
    *DecisionsOut = Sched.decisions();
  return Out;
}

ScheduleRun ExplorationDriver::runPct(uint64_t Seed, uint32_t Depth,
                                      uint64_t ExpectedSteps) {
  NullHook Null;
  Machine M(Prog, Null);
  M.seedEnvironment(Opts.EnvSeed ^ 0x5a5a);
  PctScheduler Sched(Seed, Depth, ExpectedSteps);
  ScheduleRun Out;
  Out.Result = M.run(Sched, Opts.MaxInstructions);
  Out.Choices = Sched.choices();
  Out.Preemptions = countPreemptions(Sched.decisions());
  return Out;
}

namespace {

void publishReport(const char *Strategy, const ExploreReport &R) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("explore.schedules").add(R.SchedulesRun);
  Reg.counter("explore.distinct_interleavings")
      .add(R.DistinctInterleavings);
  Reg.counter(std::string("explore.") + Strategy + "_runs")
      .add(R.SchedulesRun);
  if (R.BugFound)
    Reg.counter("explore.bugs_found").add(1);
  Reg.counter("explore.deadlocks").add(R.Deadlocks);
  Reg.counter("explore.hangs").add(R.Hangs);
  if (R.HangFound)
    Reg.counter("explore.hangs_reported").add(1);
  if (R.TimedOut)
    Reg.counter("explore.timeouts").add(1);
}

/// Folds one executed schedule into \p Report: the deadlock/hang tallies,
/// the best-so-far checkpoint, and the first-bug / first-hang capture.
/// Returns true when the search should stop (StopAtFirstBug semantics for
/// both bugs and — under TreatHangAsBug — hangs).
bool consumeRun(ExploreReport &Report, const ExplorationDriver &Driver,
                const ScheduleRun &Run, uint64_t Seed) {
  const ExploreOptions &Opts = Driver.options();
  if (Run.Result.Bug.What == BugReport::Kind::Deadlock)
    ++Report.Deadlocks;
  bool Hung = Driver.isHang(Run.Result);
  if (Hung)
    ++Report.Hangs;

  // Best-so-far: most preemptions, longest trace on ties. Checkpointed on
  // every run so a timed-out search still reports a concrete schedule.
  if (Report.BestTrace.empty() || Run.Preemptions > Report.BestPreemptions ||
      (Run.Preemptions == Report.BestPreemptions &&
       Run.Choices.size() > Report.BestTrace.size())) {
    Report.BestTrace = Run.Choices;
    Report.BestPreemptions = Run.Preemptions;
  }

  if (!Report.BugFound && isApplicationBug(Run.Result.Bug)) {
    Report.BugFound = true;
    Report.Bug = Run.Result.Bug;
    Report.FailingTrace = Run.Choices;
    Report.FailingSeed = Seed;
    Report.FailingPreemptions = Run.Preemptions;
    Report.BestTrace = Run.Choices;
    Report.BestPreemptions = Run.Preemptions;
  }
  if (Hung && Opts.TreatHangAsBug && !Report.HangFound) {
    Report.HangFound = true;
    Report.HangTrace = Run.Choices;
  }
  if (Opts.StopAtFirstBug &&
      (Report.BugFound || (Opts.TreatHangAsBug && Report.HangFound)))
    return true;
  return false;
}

/// One node of the DFS stack: a decision point on the current path, the
/// alternatives already explored from it, and the preemption count of the
/// path up to (excluding) this decision.
struct DfsNode {
  std::vector<ThreadId> Runnable;
  ThreadId Chosen = 0;
  std::vector<ThreadId> Tried;
  uint32_t PreemptBefore = 0;

  bool tried(ThreadId T) const {
    for (ThreadId U : Tried)
      if (U == T)
        return true;
    return false;
  }
};

} // namespace

ExploreReport light::explore::exploreDfs(const mir::Program &Prog,
                                         const ExploreOptions &Opts) {
  obs::TraceSpan Span("explore.dfs", "explore");
  Stopwatch Timer;
  ExplorationDriver Driver(Prog, Opts);
  ExploreReport Report;

  auto Consume = [&](const ScheduleRun &Run) {
    ++Report.SchedulesRun;
    ++Report.DistinctInterleavings; // every DFS prefix is a fresh schedule
    return consumeRun(Report, Driver, Run, Opts.EnvSeed);
  };
  auto OverWallBudget = [&] {
    if (Opts.WallBudgetSeconds <= 0 ||
        Timer.seconds() < Opts.WallBudgetSeconds)
      return false;
    Report.TimedOut = true;
    return true;
  };

  std::vector<DfsNode> Stack;
  auto Rebuild = [&](const std::vector<Decision> &Ds, size_t Keep) {
    // Nodes < Keep stay (their Tried sets carry the search state); nodes
    // beyond come from the fresh run, seeded with their own choice.
    Stack.resize(std::min(Keep, Ds.size()));
    for (size_t I = Stack.size(); I < Ds.size(); ++I) {
      DfsNode N;
      N.Runnable = Ds[I].Runnable;
      N.Chosen = Ds[I].Chosen;
      N.Tried.push_back(Ds[I].Chosen);
      Stack.push_back(std::move(N));
    }
    // Recompute the preemption prefix sums along the (possibly new) path.
    uint32_t P = 0;
    for (size_t I = 0; I < Stack.size(); ++I) {
      Stack[I].PreemptBefore = P;
      if (I && Decision::isPreemption(Stack[I].Runnable,
                                      Stack[I - 1].Chosen, Stack[I].Chosen))
        ++P;
    }
  };

  // Baseline: the non-preemptive schedule.
  {
    std::vector<Decision> Ds;
    ScheduleRun Base = Driver.runPrefix({}, &Ds);
    if (Consume(Base)) {
      Report.Seconds = Timer.seconds();
      publishReport("dfs", Report);
      return Report;
    }
    Rebuild(Ds, 0);
  }

  while (Report.SchedulesRun < Opts.ScheduleBudget && !OverWallBudget()) {
    // Backtrack to the deepest node with an untried alternative that
    // stays within the preemption bound.
    bool Found = false;
    DecisionTrace Prefix;
    while (!Stack.empty() && !Found) {
      DfsNode &N = Stack.back();
      ThreadId Prev = Stack.size() >= 2 ? Stack[Stack.size() - 2].Chosen
                                        : N.Chosen;
      bool HasPrev = Stack.size() >= 2;
      for (ThreadId Alt : N.Runnable) {
        if (N.tried(Alt))
          continue;
        uint32_t Cost =
            HasPrev && Decision::isPreemption(N.Runnable, Prev, Alt) ? 1 : 0;
        if (N.PreemptBefore + Cost > Opts.PreemptionBound)
          continue;
        N.Tried.push_back(Alt);
        N.Chosen = Alt;
        Found = true;
        break;
      }
      if (!Found)
        Stack.pop_back();
    }
    if (!Found) {
      Report.SpaceExhausted = true;
      break;
    }

    Prefix.reserve(Stack.size());
    for (const DfsNode &N : Stack)
      Prefix.push_back(N.Chosen);

    std::vector<Decision> Ds;
    ScheduleRun Run = Driver.runPrefix(Prefix, &Ds);
    if (Consume(Run))
      break;
    Rebuild(Ds, Stack.size());
  }

  Report.Seconds = Timer.seconds();
  publishReport("dfs", Report);
  return Report;
}

ExploreReport light::explore::explorePct(const mir::Program &Prog,
                                         const ExploreOptions &Opts) {
  obs::TraceSpan Span("explore.pct", "explore");
  Stopwatch Timer;
  ExplorationDriver Driver(Prog, Opts);
  ExploreReport Report;
  std::unordered_set<uint64_t> Seen;

  // Measurement run: estimates k (the scheduling-decision count) for the
  // change-point distribution, and is itself schedule #1.
  ScheduleRun Base = Driver.runPrefix({});
  ++Report.SchedulesRun;
  Seen.insert(traceHash(Base.Choices));
  uint64_t K = Base.Choices.size() ? Base.Choices.size() : 1;
  if (consumeRun(Report, Driver, Base, Opts.EnvSeed)) {
    Report.DistinctInterleavings = Seen.size();
    Report.Seconds = Timer.seconds();
    publishReport("pct", Report);
    return Report;
  }

  for (uint64_t Seed = 1;
       Seed <= Opts.PctSeeds && Report.SchedulesRun < Opts.ScheduleBudget;
       ++Seed) {
    if (Opts.WallBudgetSeconds > 0 &&
        Timer.seconds() >= Opts.WallBudgetSeconds) {
      Report.TimedOut = true;
      break;
    }
    ScheduleRun Run = Driver.runPct(Seed, Opts.PctDepth, K);
    ++Report.SchedulesRun;
    Seen.insert(traceHash(Run.Choices));
    if (consumeRun(Report, Driver, Run, Seed))
      break;
  }

  Report.DistinctInterleavings = Seen.size();
  Report.Seconds = Timer.seconds();
  publishReport("pct", Report);
  return Report;
}

//===- explore/ExploreSchedulers.cpp - Adversarial schedulers --------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "explore/ExploreSchedulers.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

using namespace light;
using namespace light::explore;

std::string light::explore::traceToString(const DecisionTrace &Trace) {
  std::string Out;
  for (size_t I = 0; I < Trace.size(); ++I) {
    if (I)
      Out += ' ';
    Out += std::to_string(Trace[I]);
  }
  return Out;
}

std::optional<DecisionTrace>
light::explore::traceFromString(const std::string &Text) {
  DecisionTrace Out;
  std::istringstream In(Text);
  std::string Tok;
  while (In >> Tok) {
    char *End = nullptr;
    unsigned long V = std::strtoul(Tok.c_str(), &End, 10);
    if (End == Tok.c_str() || *End != '\0' || V > 0xffffu)
      return std::nullopt;
    Out.push_back(static_cast<ThreadId>(V));
  }
  return Out;
}

uint64_t light::explore::traceHash(const DecisionTrace &Trace) {
  // FNV-1a over the choice words; order-sensitive by construction.
  uint64_t H = 0xcbf29ce484222325ull;
  for (ThreadId T : Trace) {
    H ^= static_cast<uint64_t>(T) + 1;
    H *= 0x100000001b3ull;
  }
  return H;
}

ThreadId TraceScheduler::defaultPick(
    const std::vector<ThreadId> &Runnable) const {
  if (HaveLast)
    for (ThreadId T : Runnable)
      if (T == Last)
        return T;
  return *std::min_element(Runnable.begin(), Runnable.end());
}

ThreadId TraceScheduler::pick(const std::vector<ThreadId> &Runnable) {
  ThreadId Choice;
  if (Next < Prefix.size()) {
    ThreadId Want = Prefix[Next];
    ++Next;
    if (std::find(Runnable.begin(), Runnable.end(), Want) != Runnable.end()) {
      Choice = Want;
    } else {
      Deviated = true;
      Choice = defaultPick(Runnable);
    }
  } else {
    Choice = defaultPick(Runnable);
  }
  Trace.push_back({Runnable, Choice});
  Last = Choice;
  HaveLast = true;
  return Choice;
}

PctScheduler::PctScheduler(uint64_t Seed, uint32_t Depth,
                           uint64_t ExpectedSteps)
    : R(Seed * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull), Depth(Depth) {
  if (this->Depth == 0)
    this->Depth = 1;
  uint64_t K = ExpectedSteps ? ExpectedSteps : 1;
  for (uint32_t I = 0; I + 1 < this->Depth; ++I)
    ChangePoints.push_back(1 + R.below(K));
  std::sort(ChangePoints.begin(), ChangePoints.end());
}

uint64_t PctScheduler::priorityOf(ThreadId T) {
  auto It = Priority.find(T);
  if (It != Priority.end())
    return It->second;
  // Fresh threads draw a random initial priority strictly above the
  // change-point band [1, Depth-1]. Ties are broken by thread id in pick,
  // so distinctness is not required for determinism.
  uint64_t P = Depth + R.below(1u << 16);
  Priority.emplace(T, P);
  return P;
}

ThreadId PctScheduler::pick(const std::vector<ThreadId> &Runnable) {
  ++Step;
  ThreadId Best = Runnable[0];
  uint64_t BestP = 0;
  bool First = true;
  for (ThreadId T : Runnable) {
    uint64_t P = priorityOf(T);
    if (First || P > BestP || (P == BestP && T < Best)) {
      Best = T;
      BestP = P;
      First = false;
    }
  }
  // A change point demotes the thread that just won to priority
  // Depth-1-NextChange — below every initial priority and every earlier
  // demotion, realizing the d-1 "priority change points" of PCT.
  if (NextChange < ChangePoints.size() && Step >= ChangePoints[NextChange]) {
    Priority[Best] = Depth - 1 - NextChange;
    ++NextChange;
  }
  Trace.push_back({Runnable, Best});
  return Best;
}

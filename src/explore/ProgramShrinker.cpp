//===- explore/ProgramShrinker.cpp - Delta-debugging minimizer -------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "explore/ProgramShrinker.h"

#include "explore/ExploreSchedulers.h"
#include "mir/Parser.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace light;
using namespace light::explore;
using namespace light::mir;

uint32_t light::explore::statementCount(const Program &P) {
  uint32_t N = 0;
  for (const Function &F : P.Functions)
    for (const Instr &I : F.Body)
      if (I.Op != Opcode::Nop)
        ++N;
  return N;
}

namespace {

/// Instructions the statement pass may neutralize on its own. Control flow,
/// thread structure, and monitor pairing are handled by dedicated passes
/// (or kept) so most probes stay well-formed and terminating.
bool droppableStatement(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Ret:
  case Opcode::Jmp:
  case Opcode::Br:
  case Opcode::ThreadStart:
  case Opcode::ThreadJoin:
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
  case Opcode::RwRdLock:
  case Opcode::RwRdUnlock:
  case Opcode::RwWrLock:
  case Opcode::RwWrUnlock:
  case Opcode::BarrierWait:
  // Blocking channel endpoints pair up like monitors: dropping one side of
  // a send/recv pair turns the probe into a deadlock, not a smaller
  // reproducer. The non-blocking ChanTryRecv stays droppable.
  case Opcode::ChanSend:
  case Opcode::ChanRecv:
    return false;
  default:
    return true;
  }
}

/// A statement site: function index + instruction index.
struct Site {
  uint32_t Fn;
  uint32_t At;
};

class Shrinker {
public:
  Shrinker(const Program &Prog, const DecisionTrace &Schedule,
           const FailPredicate &StillFails, const ShrinkOptions &Opts)
      : Best(Prog), Sched(Schedule), StillFails(StillFails), Opts(Opts) {}

  ShrinkResult run() {
    ShrinkResult Out;
    Out.OriginalStatements = statementCount(Best);

    // The pair must actually fail, or there is nothing to minimize.
    if (!Best.verify().empty() || !StillFails(Best, Sched)) {
      Out.Shrunk = Best;
      Out.Schedule = Sched;
      Out.ShrunkStatements = Out.OriginalStatements;
      Out.ProbesRun = Probes;
      return Out;
    }

    for (uint32_t Round = 0; Round < Opts.MaxRounds; ++Round) {
      bool Changed = false;
      Changed |= dropWorkers();
      Changed |= dropLockPairs();
      Changed |= ddminStatements();
      Changed |= dropGlobals();
      Changed |= truncateSchedule();
      if (!Changed || Probes >= Opts.MaxProbes)
        break;
    }
    compact();

    Out.Shrunk = Best;
    Out.Schedule = Sched;
    Out.ShrunkStatements = statementCount(Best);
    Out.ProbesRun = Probes;
    return Out;
  }

private:
  Program Best;
  DecisionTrace Sched;
  const FailPredicate &StillFails;
  ShrinkOptions Opts;
  uint64_t Probes = 0;

  /// One predicate evaluation, budget- and verify-gated.
  bool probe(const Program &Cand, const DecisionTrace &S) {
    if (Probes >= Opts.MaxProbes)
      return false;
    ++Probes;
    if (!Cand.verify().empty())
      return false;
    return StillFails(Cand, S);
  }

  /// Tries Nopping the instructions at \p Sites; accepts on success.
  bool tryDrop(const std::vector<Site> &Sites) {
    Program Cand = Best;
    for (const Site &S : Sites)
      Cand.Functions[S.Fn].Body[S.At] = Instr(); // Nop
    if (!probe(Cand, Sched))
      return false;
    Best = std::move(Cand);
    return true;
  }

  /// Drops ThreadStart/ThreadJoin pairs one worker at a time.
  bool dropWorkers() {
    bool Changed = false;
    bool Progress = true;
    while (Progress && Probes < Opts.MaxProbes) {
      Progress = false;
      for (uint32_t Fn = 0; !Progress && Fn < Best.Functions.size(); ++Fn) {
        // A successful tryDrop reassigns Best and frees the old function
        // bodies; !Progress must short-circuit before Body is touched.
        const std::vector<Instr> &Body = Best.Functions[Fn].Body;
        for (uint32_t I = 0; !Progress && I < Body.size(); ++I) {
          if (Body[I].Op != Opcode::ThreadStart)
            continue;
          for (uint32_t J = I + 1; J < Body.size(); ++J) {
            if (Body[J].Op != Opcode::ThreadJoin || Body[J].A != Body[I].A)
              continue;
            if (tryDrop({{Fn, I}, {Fn, J}})) {
              Progress = true;
              Changed = true;
            }
            break;
          }
        }
      }
    }
    return Changed;
  }

  /// Drops matched MonitorEnter/MonitorExit pairs (innermost matching by
  /// register, nesting-ordered).
  bool dropLockPairs() {
    bool Changed = false;
    bool Progress = true;
    while (Progress && Probes < Opts.MaxProbes) {
      Progress = false;
      for (uint32_t Fn = 0; !Progress && Fn < Best.Functions.size(); ++Fn) {
        // Same dangling-Body hazard as dropWorkers: check !Progress first.
        const std::vector<Instr> &Body = Best.Functions[Fn].Body;
        std::vector<Site> Stack;
        for (uint32_t I = 0; !Progress && I < Body.size(); ++I) {
          if (Body[I].Op == Opcode::MonitorEnter) {
            Stack.push_back({Fn, I});
          } else if (Body[I].Op == Opcode::MonitorExit) {
            for (size_t S = Stack.size(); S-- > 0;) {
              if (Body[Stack[S].At].A != Body[I].A)
                continue;
              if (tryDrop({Stack[S], {Fn, I}})) {
                Progress = true;
                Changed = true;
              }
              Stack.erase(Stack.begin() + S);
              break;
            }
          }
        }
      }
    }
    return Changed;
  }

  /// Chunked ddmin over droppable statements: try removing chunks of
  /// halving size until single statements.
  bool ddminStatements() {
    bool Changed = false;
    std::vector<Site> Cands = candidates();
    size_t Chunk = Cands.size() / 2;
    if (Chunk == 0 && !Cands.empty())
      Chunk = 1;
    while (Chunk >= 1 && Probes < Opts.MaxProbes) {
      bool Removed = false;
      for (size_t Start = 0; Start < Cands.size(); Start += Chunk) {
        size_t End = std::min(Start + Chunk, Cands.size());
        std::vector<Site> Sub(Cands.begin() + Start, Cands.begin() + End);
        if (tryDrop(Sub)) {
          Cands.erase(Cands.begin() + Start, Cands.begin() + End);
          Start -= Chunk; // re-test the same window
          Removed = true;
          Changed = true;
        }
        if (Probes >= Opts.MaxProbes)
          break;
      }
      if (Chunk == 1 && !Removed)
        break;
      if (!Removed)
        Chunk /= 2;
      else if (Chunk > Cands.size() && !Cands.empty())
        Chunk = Cands.size();
    }
    return Changed;
  }

  std::vector<Site> candidates() const {
    std::vector<Site> Out;
    for (uint32_t Fn = 0; Fn < Best.Functions.size(); ++Fn) {
      const std::vector<Instr> &Body = Best.Functions[Fn].Body;
      for (uint32_t I = 0; I < Body.size(); ++I)
        if (droppableStatement(Body[I].Op))
          Out.push_back({Fn, I});
    }
    return Out;
  }

  /// Drops globals: neutralize every access, erase the declaration, and
  /// renumber the remaining references.
  bool dropGlobals() {
    bool Changed = false;
    for (uint32_t G = 0; G < Best.Globals.size() && Probes < Opts.MaxProbes;) {
      Program Cand = Best;
      Cand.Globals.erase(Cand.Globals.begin() + G);
      for (Function &F : Cand.Functions)
        for (Instr &I : F.Body) {
          if (I.Op != Opcode::GetGlobal && I.Op != Opcode::PutGlobal)
            continue;
          if (I.Imm == static_cast<int64_t>(G))
            I = Instr(); // Nop
          else if (I.Imm > static_cast<int64_t>(G))
            --I.Imm;
        }
      if (probe(Cand, Sched)) {
        Best = std::move(Cand);
        Changed = true;
        // Same index now names the next global.
      } else {
        ++G;
      }
    }
    return Changed;
  }

  /// Truncates the schedule prefix; the default policy extends it.
  bool truncateSchedule() {
    bool Changed = false;
    if (!Sched.empty() && Probes < Opts.MaxProbes) {
      // Best case first: the program fails on the default schedule alone.
      if (probe(Best, {})) {
        Sched.clear();
        return true;
      }
    }
    size_t Cut = Sched.size() / 2;
    while (Cut >= 1 && Probes < Opts.MaxProbes) {
      DecisionTrace Shorter(Sched.begin(), Sched.end() - Cut);
      if (probe(Best, Shorter)) {
        Sched = std::move(Shorter);
        Changed = true;
        if (Cut > Sched.size())
          Cut = Sched.size();
      } else {
        Cut /= 2;
      }
    }
    return Changed;
  }

  /// Removes the accumulated Nops, remapping branch targets to the next
  /// surviving instruction. Kept only when the compacted program still
  /// verifies and fails.
  void compact() {
    Program Cand = Best;
    for (Function &F : Cand.Functions) {
      std::vector<int32_t> NewIndex(F.Body.size() + 1, -1);
      std::vector<Instr> Compacted;
      // NewIndex[I] = index of the first surviving instruction at or after
      // I (computed back-to-front).
      for (size_t I = F.Body.size(); I-- > 0;) {
        if (F.Body[I].Op != Opcode::Nop)
          Compacted.push_back(F.Body[I]);
      }
      std::reverse(Compacted.begin(), Compacted.end());
      int32_t Next = -1;
      uint32_t Survivors = static_cast<uint32_t>(Compacted.size());
      for (size_t I = F.Body.size(); I-- > 0;) {
        if (F.Body[I].Op != Opcode::Nop)
          Next = static_cast<int32_t>(--Survivors);
        NewIndex[I] = Next;
      }
      for (Instr &I : Compacted) {
        if (I.Op != Opcode::Jmp && I.Op != Opcode::Br)
          continue;
        int32_t T = I.Target >= 0 && static_cast<size_t>(I.Target) <
                                         F.Body.size()
                        ? NewIndex[I.Target]
                        : -1;
        int32_t T2 = -1;
        if (I.Op == Opcode::Br)
          T2 = I.Target2 >= 0 &&
                       static_cast<size_t>(I.Target2) < F.Body.size()
                   ? NewIndex[I.Target2]
                   : -1;
        if (T < 0 || (I.Op == Opcode::Br && T2 < 0))
          return; // a branch would fall off the end; keep the Nop form
        I.Target = T;
        I.Target2 = T2;
      }
      F.Body = std::move(Compacted);
    }
    if (probe(Cand, Sched))
      Best = std::move(Cand);
  }
};

} // namespace

ShrinkResult light::explore::shrink(const Program &Prog,
                                    const DecisionTrace &Schedule,
                                    const FailPredicate &StillFails,
                                    const ShrinkOptions &Opts) {
  obs::TraceSpan Span("explore.shrink", "explore");
  ShrinkResult Out = Shrinker(Prog, Schedule, StillFails, Opts).run();
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("explore.shrink_probes").add(Out.ProbesRun);
  Reg.counter("explore.shrink_statements_removed")
      .add(Out.OriginalStatements - Out.ShrunkStatements);
  return Out;
}

// --- Repro files ------------------------------------------------------------

std::string light::explore::reproToString(const Repro &R) {
  std::string Out = "; light repro v1\n";
  if (!R.Note.empty())
    Out += "; note: " + R.Note + "\n";
  Out += "; env-seed: " + std::to_string(R.EnvSeed) + "\n";
  Out += "; schedule: " + traceToString(R.Schedule) + "\n";
  Out += R.Prog.str();
  return Out;
}

std::string light::explore::dumpRepro(const std::string &Path,
                                      const Repro &R) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return "cannot open " + Path + " for writing";
  Out << reproToString(R);
  Out.flush();
  return Out ? std::string() : "write to " + Path + " failed";
}

std::optional<Repro>
light::explore::parseRepro(const std::string &Text, std::string *Error) {
  Repro R;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    auto Starts = [&](const char *Prefix) {
      return Line.rfind(Prefix, 0) == 0;
    };
    if (Starts("; schedule:")) {
      auto Trace = traceFromString(Line.substr(11));
      if (!Trace) {
        if (Error)
          *Error = "bad schedule line: " + Line;
        return std::nullopt;
      }
      R.Schedule = *Trace;
    } else if (Starts("; env-seed:")) {
      R.EnvSeed = std::strtoull(Line.c_str() + 11, nullptr, 10);
    } else if (Starts("; note:")) {
      size_t At = Line.find_first_not_of(' ', 7);
      R.Note = At == std::string::npos ? "" : Line.substr(At);
    }
  }
  mir::ParseResult Parsed = mir::parseProgram(Text);
  if (!Parsed.Ok) {
    if (Error)
      *Error = Parsed.Error;
    return std::nullopt;
  }
  std::string Verify = Parsed.Prog.verify();
  if (!Verify.empty()) {
    if (Error)
      *Error = "repro fails verification: " + Verify;
    return std::nullopt;
  }
  R.Prog = std::move(Parsed.Prog);
  return R;
}

std::optional<Repro> light::explore::loadRepro(const std::string &Path,
                                               std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open " + Path;
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseRepro(Buf.str(), Error);
}

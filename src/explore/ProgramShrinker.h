//===- explore/ProgramShrinker.h - Delta-debugging minimizer ----*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging minimization of a failing (program, schedule) pair, in
/// the ddmin tradition [Zeller & Hildebrandt, TSE 2002]. Given a predicate
/// that decides "does this pair still exhibit the failure?", the shrinker
/// alternates reduction passes until a fixpoint:
///
///  * drop whole workers (a ThreadStart and its matching ThreadJoin);
///  * drop matched MonitorEnter/MonitorExit pairs;
///  * ddmin over the remaining droppable statements;
///  * drop globals nobody needs (erasing the declaration, renumbering
///    references);
///  * truncate the schedule prefix (the default policy extends it).
///
/// Statements are first neutralized to Nop — branch targets stay valid, and
/// registers whose definition disappears read as int 0 — and a final
/// compaction removes the Nops with target remapping. Every candidate must
/// pass Program::verify() *and* the predicate before it is accepted, so the
/// result is always a well-formed program that still fails.
///
/// dumpRepro writes the result as a self-contained `.mir` file whose `;`
/// comment header carries the schedule and environment seed; loadRepro
/// reads one back.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_EXPLORE_PROGRAMSHRINKER_H
#define LIGHT_EXPLORE_PROGRAMSHRINKER_H

#include "explore/DecisionTrace.h"
#include "mir/Program.h"

#include <functional>
#include <optional>
#include <string>

namespace light {
namespace explore {

/// Decides whether a candidate (program, schedule) still exhibits the
/// failure being minimized. Must be deterministic.
using FailPredicate =
    std::function<bool(const mir::Program &, const DecisionTrace &)>;

/// Shrinker limits.
struct ShrinkOptions {
  /// Cap on predicate evaluations; the shrinker stops early when exhausted.
  uint64_t MaxProbes = 2000;
  /// Maximum alternation rounds over the pass list.
  uint32_t MaxRounds = 4;
};

/// Outcome of a shrink.
struct ShrinkResult {
  mir::Program Shrunk;
  DecisionTrace Schedule;
  uint32_t OriginalStatements = 0;
  uint32_t ShrunkStatements = 0;
  uint64_t ProbesRun = 0;

  double ratio() const {
    return OriginalStatements
               ? static_cast<double>(ShrunkStatements) / OriginalStatements
               : 1.0;
  }
};

/// Number of effective (non-Nop) statements in \p P.
uint32_t statementCount(const mir::Program &P);

/// Minimizes \p Prog and \p Schedule while \p StillFails holds. \p Prog
/// must verify and the initial pair must fail the predicate (else the pair
/// is returned unchanged).
ShrinkResult shrink(const mir::Program &Prog, const DecisionTrace &Schedule,
                    const FailPredicate &StillFails,
                    const ShrinkOptions &Opts = ShrinkOptions());

/// A parsed repro file: program + schedule + environment seed.
struct Repro {
  mir::Program Prog;
  DecisionTrace Schedule;
  uint64_t EnvSeed = 1;
  std::string Note;
};

/// Renders \p R as a self-contained textual `.mir` repro (comment header
/// with schedule/seed/note, then the program).
std::string reproToString(const Repro &R);

/// Writes reproToString(R) to \p Path. Returns empty on success, else the
/// error.
std::string dumpRepro(const std::string &Path, const Repro &R);

/// Parses a repro produced by reproToString; nullopt + \p Error on failure.
std::optional<Repro> parseRepro(const std::string &Text, std::string *Error);

/// Reads and parses a repro file.
std::optional<Repro> loadRepro(const std::string &Path, std::string *Error);

} // namespace explore
} // namespace light

#endif // LIGHT_EXPLORE_PROGRAMSHRINKER_H

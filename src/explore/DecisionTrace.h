//===- explore/DecisionTrace.h - Schedule decision traces -------*- C++ -*-===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The currency of the exploration engine: a *decision trace* is the
/// sequence of thread choices a Scheduler made at the interpreter's
/// scheduling-relevant operations. Because the MIR interpreter is
/// cooperative and deterministic, a decision trace (plus the environment
/// seed) pins an execution completely — replaying the same trace replays
/// the same run, bit for bit. That is what lets the DFS explorer enumerate
/// schedules by prefix, the PCT scheduler re-run a buggy seed, and the
/// shrinker carry a failing schedule across program reductions.
///
//===----------------------------------------------------------------------===//

#ifndef LIGHT_EXPLORE_DECISIONTRACE_H
#define LIGHT_EXPLORE_DECISIONTRACE_H

#include "trace/Ids.h"

#include <optional>
#include <string>
#include <vector>

namespace light {
namespace explore {

/// One scheduling decision: the runnable set the interpreter offered (in
/// ascending thread-id order, as Machine::runnableThreads produces it) and
/// the thread that was chosen.
struct Decision {
  std::vector<ThreadId> Runnable;
  ThreadId Chosen = 0;

  /// True when choosing \p Alt instead of Chosen would preempt \p Prev:
  /// Prev is still runnable here and Alt is a different thread. Switching
  /// away from a blocked or finished thread is forced, not a preemption.
  static bool isPreemption(const std::vector<ThreadId> &Runnable,
                           ThreadId Prev, ThreadId Alt) {
    if (Alt == Prev)
      return false;
    for (ThreadId T : Runnable)
      if (T == Prev)
        return true;
    return false;
  }
};

/// A schedule as a plain choice sequence (one ThreadId per decision).
using DecisionTrace = std::vector<ThreadId>;

/// Counts the preemptions along \p Trace given the per-decision runnable
/// sets in \p Decisions (sizes must match a common prefix).
inline uint32_t countPreemptions(const std::vector<Decision> &Decisions) {
  uint32_t N = 0;
  for (size_t I = 1; I < Decisions.size(); ++I)
    if (Decision::isPreemption(Decisions[I].Runnable,
                               Decisions[I - 1].Chosen,
                               Decisions[I].Chosen))
      ++N;
  return N;
}

/// Renders a trace as a space-separated thread-id list: "0 1 1 2 ...".
std::string traceToString(const DecisionTrace &Trace);

/// Parses traceToString's format. Returns nullopt on a malformed token.
std::optional<DecisionTrace> traceFromString(const std::string &Text);

/// A 64-bit order-sensitive hash of a trace, used to count distinct
/// interleavings without storing every schedule.
uint64_t traceHash(const DecisionTrace &Trace);

} // namespace explore
} // namespace light

#endif // LIGHT_EXPLORE_DECISIONTRACE_H

//===- tools/check_bench_json.cpp - light-bench-v1 schema validator --------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Validates a `--json` report written by one of the bench binaries against
/// the light-bench-v1 schema:
///
///   {
///     "schema": "light-bench-v1",
///     "bench": "<name>",
///     "rows": [ { ... }, ... ],
///     "aggregates": { "<key>": <number>, ... },
///     "ok": true|false,
///     "metrics": { "counters": {...}, "gauges": {...},
///                  "histograms": {...} }   // optional
///   }
///
/// Used by the ctest smoke target (bench produces the file, this binary
/// checks it), and handy interactively: `check_bench_json BENCH_fig4.json`.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace light;
using namespace light::obs;

namespace {

int fail(const std::string &Path, const std::string &Why) {
  std::fprintf(stderr, "%s: FAIL: %s\n", Path.c_str(), Why.c_str());
  return 1;
}

/// Deep checks for the contention bench's table: every row names a
/// recorder, carries the required measurement columns, the perf-counter
/// columns are non-negative numbers, and the thread counts of each
/// recorder's rows strictly increase (the scaling table is ordered).
int checkContentionRows(const std::string &Path, const JsonValue &Rows) {
  std::map<std::string, double> LastThreads;
  for (size_t I = 0; I < Rows.Items.size(); ++I) {
    const JsonValue &Row = Rows.Items[I];
    std::string Where = "rows[" + std::to_string(I) + "]";
    const JsonValue *Rec = Row.find("recorder");
    if (!Rec || Rec->What != JsonValue::Kind::String || Rec->Str.empty())
      return fail(Path, Where + " missing string \"recorder\"");
    for (const char *Col : {"threads", "ns_per_op", "ops_per_sec",
                            "read_retries", "lock_collisions_sampled"}) {
      const JsonValue *V = Row.find(Col);
      if (!V || V->What != JsonValue::Kind::Number)
        return fail(Path, Where + " missing numeric \"" + Col + "\"");
    }
    if (Row.find("ns_per_op")->Num <= 0)
      return fail(Path, Where + " has ns_per_op <= 0");
    for (const char *Col : {"cycles_per_op", "instructions_per_op",
                            "cache_misses", "context_switches"}) {
      const JsonValue *V = Row.find(Col);
      if (!V)
        continue; // perf columns are optional but must be sane if present
      if (V->What != JsonValue::Kind::Number || V->Num < 0)
        return fail(Path, Where + " perf column \"" + Col +
                              "\" is not a non-negative number");
    }
    if (const JsonValue *Hw = Row.find("perf_hw"))
      if (Hw->What != JsonValue::Kind::Bool)
        return fail(Path, Where + " \"perf_hw\" is not a bool");
    double Threads = Row.find("threads")->Num;
    auto [It, Fresh] = LastThreads.emplace(Rec->Str, Threads);
    if (!Fresh) {
      if (Threads <= It->second)
        return fail(Path, Where + " thread counts for recorder \"" +
                              Rec->Str + "\" are not strictly increasing");
      It->second = Threads;
    }
  }
  if (LastThreads.empty())
    return fail(Path, "contention report has no rows");
  return 0;
}

/// Deep checks for the scale bench's table: every row carries the
/// streaming-pipeline measurement columns (peak RSS and wall time are the
/// headline claims, so their absence is a schema break, not an omission)
/// and the access counts strictly increase (the scaling table is ordered).
int checkScaleRows(const std::string &Path, const JsonValue &Rows) {
  double LastAccesses = 0;
  for (size_t I = 0; I < Rows.Items.size(); ++I) {
    const JsonValue &Row = Rows.Items[I];
    std::string Where = "rows[" + std::to_string(I) + "]";
    const JsonValue *Cfg = Row.find("config");
    if (!Cfg || Cfg->What != JsonValue::Kind::String || Cfg->Str.empty())
      return fail(Path, Where + " missing string \"config\"");
    for (const char *Col :
         {"accesses", "spans", "windows", "wall_seconds", "solve_seconds",
          "peak_rss_bytes", "light001_bytes", "light003_bytes",
          "compression_vs_light001"}) {
      const JsonValue *V = Row.find(Col);
      if (!V || V->What != JsonValue::Kind::Number)
        return fail(Path, Where + " missing numeric \"" + Col + "\"");
    }
    if (Row.find("peak_rss_bytes")->Num <= 0)
      return fail(Path, Where + " has peak_rss_bytes <= 0");
    if (Row.find("wall_seconds")->Num < 0)
      return fail(Path, Where + " has negative wall_seconds");
    double Accesses = Row.find("accesses")->Num;
    if (Accesses <= LastAccesses)
      return fail(Path, Where + " access counts are not strictly increasing");
    LastAccesses = Accesses;
  }
  if (LastAccesses == 0)
    return fail(Path, "scale report has no rows");
  return 0;
}

/// Deep checks for the bug-matrix table: every row names its suite
/// ("fig6" or "sync") and bug; rows with a found seed carry the three
/// per-tool booleans plus the expectations they are gated on.
int checkBugMatrixRows(const std::string &Path, const JsonValue &Rows) {
  int SyncRows = 0;
  for (size_t I = 0; I < Rows.Items.size(); ++I) {
    const JsonValue &Row = Rows.Items[I];
    std::string Where = "rows[" + std::to_string(I) + "]";
    const JsonValue *Suite = Row.find("suite");
    if (!Suite || Suite->What != JsonValue::Kind::String ||
        (Suite->Str != "fig6" && Suite->Str != "sync"))
      return fail(Path, Where + " missing \"suite\" (want fig6|sync)");
    SyncRows += Suite->Str == "sync";
    const JsonValue *Bug = Row.find("bug");
    if (!Bug || Bug->What != JsonValue::Kind::String || Bug->Str.empty())
      return fail(Path, Where + " missing string \"bug\"");
    const JsonValue *SeedFound = Row.find("seed_found");
    if (!SeedFound || SeedFound->What != JsonValue::Kind::Bool)
      return fail(Path, Where + " missing boolean \"seed_found\"");
    if (!SeedFound->B)
      continue;
    for (const char *Col : {"light", "clap", "chimera", "clap_expected",
                            "chimera_expected"}) {
      const JsonValue *V = Row.find(Col);
      if (!V || V->What != JsonValue::Kind::Bool)
        return fail(Path, Where + " missing boolean \"" + Col + "\"");
    }
  }
  if (Rows.Items.empty())
    return fail(Path, "bug-matrix report has no rows");
  if (SyncRows != 4)
    return fail(Path, "bug-matrix report must carry the 4 sync-kernel rows");
  return 0;
}

/// Deep checks for the multi-node pipeline table: pipeline rows ("clean" /
/// "kill") carry the salvage measurements and must be structured — clean
/// earns a full schedule, a kill must not — and matrix rows extend the
/// bug matrix to the four distributed kernels.
int checkDistRows(const std::string &Path, const JsonValue &Rows) {
  int Pipeline = 0, Matrix = 0;
  for (size_t I = 0; I < Rows.Items.size(); ++I) {
    const JsonValue &Row = Rows.Items[I];
    std::string Where = "rows[" + std::to_string(I) + "]";
    const JsonValue *Scenario = Row.find("scenario");
    if (!Scenario || Scenario->What != JsonValue::Kind::String ||
        (Scenario->Str != "clean" && Scenario->Str != "kill" &&
         Scenario->Str != "matrix"))
      return fail(Path, Where + " missing \"scenario\" (want clean|kill|"
                                "matrix)");
    if (Scenario->Str == "matrix") {
      ++Matrix;
      const JsonValue *Bug = Row.find("bug");
      if (!Bug || Bug->What != JsonValue::Kind::String || Bug->Str.empty())
        return fail(Path, Where + " missing string \"bug\"");
      const JsonValue *SeedFound = Row.find("seed_found");
      if (!SeedFound || SeedFound->What != JsonValue::Kind::Bool)
        return fail(Path, Where + " missing boolean \"seed_found\"");
      if (!SeedFound->B)
        continue;
      for (const char *Col : {"light", "clap", "chimera", "clap_expected",
                              "chimera_expected"}) {
        const JsonValue *V = Row.find(Col);
        if (!V || V->What != JsonValue::Kind::Bool)
          return fail(Path, Where + " missing boolean \"" + Col + "\"");
      }
      for (const char *Col : {"light_space_longs", "chimera_space_longs"}) {
        const JsonValue *V = Row.find(Col);
        if (!V || V->What != JsonValue::Kind::Number || V->Num < 0)
          return fail(Path, Where + " missing non-negative numeric \"" +
                                Col + "\"");
      }
      continue;
    }
    ++Pipeline;
    for (const char *Col : {"nodes", "laps", "messages", "spans",
                            "cross_edges", "cut_entries", "record_seconds",
                            "solve_seconds"}) {
      const JsonValue *V = Row.find(Col);
      if (!V || V->What != JsonValue::Kind::Number || V->Num < 0)
        return fail(Path, Where + " missing non-negative numeric \"" + Col +
                              "\"");
    }
    double Nodes = Row.find("nodes")->Num;
    if (Nodes < 2 || Nodes > 16)
      return fail(Path, Where + " has nodes outside [2, 16]");
    for (const char *Col : {"full_schedule", "structured", "replays_ok"}) {
      const JsonValue *V = Row.find(Col);
      if (!V || V->What != JsonValue::Kind::Bool)
        return fail(Path, Where + " missing boolean \"" + Col + "\"");
    }
    if (!Row.find("structured")->B)
      return fail(Path, Where + " is not a structured outcome");
    if (Row.find("full_schedule")->B != (Scenario->Str == "clean"))
      return fail(Path, Where + " full_schedule does not match scenario \"" +
                            Scenario->Str + "\"");
  }
  if (Pipeline == 0)
    return fail(Path, "dist report has no pipeline rows");
  if (Matrix != 4)
    return fail(Path, "dist report must carry the 4 distributed-kernel "
                      "matrix rows");
  return 0;
}

/// Deep checks for the exploration table: one row per (suite, bug,
/// strategy) with the search outcome and its cost.
int checkExploreRows(const std::string &Path, const JsonValue &Rows) {
  for (size_t I = 0; I < Rows.Items.size(); ++I) {
    const JsonValue &Row = Rows.Items[I];
    std::string Where = "rows[" + std::to_string(I) + "]";
    const JsonValue *Suite = Row.find("suite");
    if (!Suite || Suite->What != JsonValue::Kind::String ||
        (Suite->Str != "fig6" && Suite->Str != "sync"))
      return fail(Path, Where + " missing \"suite\" (want fig6|sync)");
    const JsonValue *Strategy = Row.find("strategy");
    if (!Strategy || Strategy->What != JsonValue::Kind::String ||
        (Strategy->Str != "dfs" && Strategy->Str != "pct"))
      return fail(Path, Where + " missing \"strategy\" (want dfs|pct)");
    const JsonValue *Found = Row.find("bug_found");
    if (!Found || Found->What != JsonValue::Kind::Bool)
      return fail(Path, Where + " missing boolean \"bug_found\"");
    for (const char *Col : {"schedules", "distinct_interleavings",
                            "schedules_per_second", "seconds"}) {
      const JsonValue *V = Row.find(Col);
      if (!V || V->What != JsonValue::Kind::Number || V->Num < 0)
        return fail(Path, Where + " missing non-negative numeric \"" + Col +
                              "\"");
    }
  }
  if (Rows.Items.empty())
    return fail(Path, "explore report has no rows");
  return 0;
}

int checkOne(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return fail(Path, "cannot open file");
  std::stringstream Buf;
  Buf << In.rdbuf();

  JsonParseResult Parsed = parseJson(Buf.str());
  if (!Parsed.Ok)
    return fail(Path, "invalid JSON: " + Parsed.Error);
  const JsonValue &Root = Parsed.Value;
  if (Root.What != JsonValue::Kind::Object)
    return fail(Path, "root is not an object");

  const JsonValue *Schema = Root.find("schema");
  if (!Schema || Schema->What != JsonValue::Kind::String ||
      Schema->Str != "light-bench-v1")
    return fail(Path, "missing or wrong \"schema\" (want light-bench-v1)");

  const JsonValue *Bench = Root.find("bench");
  if (!Bench || Bench->What != JsonValue::Kind::String || Bench->Str.empty())
    return fail(Path, "missing \"bench\" name");

  const JsonValue *Rows = Root.find("rows");
  if (!Rows || Rows->What != JsonValue::Kind::Array)
    return fail(Path, "missing \"rows\" array");
  for (size_t I = 0; I < Rows->Items.size(); ++I)
    if (Rows->Items[I].What != JsonValue::Kind::Object)
      return fail(Path, "rows[" + std::to_string(I) + "] is not an object");

  const JsonValue *Aggregates = Root.find("aggregates");
  if (!Aggregates || Aggregates->What != JsonValue::Kind::Object)
    return fail(Path, "missing \"aggregates\" object");
  for (const auto &[Key, V] : Aggregates->Members)
    if (V.What != JsonValue::Kind::Number &&
        V.What != JsonValue::Kind::Null)
      return fail(Path, "aggregate \"" + Key + "\" is not a number");

  const JsonValue *Ok = Root.find("ok");
  if (!Ok || Ok->What != JsonValue::Kind::Bool)
    return fail(Path, "missing boolean \"ok\"");

  if (Bench->Str == "contention")
    if (int Rc = checkContentionRows(Path, *Rows))
      return Rc;
  if (Bench->Str == "scale")
    if (int Rc = checkScaleRows(Path, *Rows))
      return Rc;
  if (Bench->Str == "fig6_bug_matrix")
    if (int Rc = checkBugMatrixRows(Path, *Rows))
      return Rc;
  if (Bench->Str == "explore")
    if (int Rc = checkExploreRows(Path, *Rows))
      return Rc;
  if (Bench->Str == "dist")
    if (int Rc = checkDistRows(Path, *Rows))
      return Rc;

  if (const JsonValue *Metrics = Root.find("metrics")) {
    if (Metrics->What != JsonValue::Kind::Object)
      return fail(Path, "\"metrics\" is not an object");
    for (const char *Section : {"counters", "gauges", "histograms"}) {
      const JsonValue *S = Metrics->find(Section);
      if (!S || S->What != JsonValue::Kind::Object)
        return fail(Path,
                    std::string("metrics missing \"") + Section + "\"");
    }
  }

  std::printf("%s: OK (bench=%s, %zu rows, %zu aggregates%s)\n", Path.c_str(),
              Bench->Str.c_str(), Rows->Items.size(),
              Aggregates->Members.size(),
              Root.find("metrics") ? ", with metrics" : "");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: check_bench_json <report.json>...\n");
    return 2;
  }
  int Rc = 0;
  for (int I = 1; I < argc; ++I)
    Rc |= checkOne(argv[I]);
  return Rc;
}

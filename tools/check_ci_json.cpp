//===- tools/check_ci_json.cpp - light-ci-v1 schema validator --------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Validates a `light-replay ci --ci-json` summary against the light-ci-v1
/// schema and, optionally, against expected per-program verdicts:
///
///   check_ci_json summary.json \
///       clean_pair=pass racy_counter=reproduced|flaky \
///       spin_hang=reproduced crash_fault=salvaged-partial \
///       --min-speedup 10
///
/// Each `name=verdict` positional asserts the named program's verdict;
/// `|`-separated alternatives accept either (a recording seed that happens
/// to hit a race yields `reproduced` where a clean recording yields
/// `flaky` — both prove the pipeline worked). `--min-speedup N` asserts
/// that at least one program ran calibration and its in-situ fast path
/// beat the fork path by at least N×.
///
/// The deep structural validation is ci::validateCiSummaryJson — the same
/// routine the CI orchestrator self-checks with and the ctest suites call,
/// so the checker cannot drift from the writer.
///
//===----------------------------------------------------------------------===//

#include "ci/Verdict.h"
#include "obs/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace light;
using namespace light::obs;

namespace {

int fail(const std::string &Path, const std::string &Why) {
  std::fprintf(stderr, "%s: FAIL: %s\n", Path.c_str(), Why.c_str());
  return 1;
}

/// One `name=verdict[|verdict...]` expectation.
struct Expect {
  std::string Name;
  std::vector<std::string> Allowed;
};

bool parseExpect(const std::string &Arg, Expect &Out) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Arg.size())
    return false;
  Out.Name = Arg.substr(0, Eq);
  Out.Allowed.clear();
  std::string Rest = Arg.substr(Eq + 1);
  size_t Pos = 0;
  while (Pos <= Rest.size()) {
    size_t Bar = Rest.find('|', Pos);
    std::string V = Rest.substr(Pos, Bar == std::string::npos
                                         ? std::string::npos
                                         : Bar - Pos);
    if (V.empty())
      return false;
    Out.Allowed.push_back(V);
    if (Bar == std::string::npos)
      break;
    Pos = Bar + 1;
  }
  return !Out.Allowed.empty();
}

const JsonValue *findProgram(const JsonValue &Programs,
                             const std::string &Name) {
  for (const JsonValue &P : Programs.Items) {
    const JsonValue *N = P.find("name");
    if (N && N->What == JsonValue::Kind::String && N->Str == Name)
      return &P;
  }
  return nullptr;
}

} // namespace

int main(int argc, char **argv) {
  std::string Path;
  std::vector<Expect> Expects;
  double MinSpeedup = 0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--min-speedup") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --min-speedup wants a number\n");
        return 2;
      }
      MinSpeedup = std::strtod(argv[++I], nullptr);
      continue;
    }
    Expect E;
    if (std::strchr(argv[I], '=') && parseExpect(argv[I], E)) {
      Expects.push_back(E);
      continue;
    }
    if (!Path.empty()) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", argv[I]);
      return 2;
    }
    Path = argv[I];
  }
  if (Path.empty()) {
    std::fprintf(stderr,
                 "usage: check_ci_json <summary.json> [name=verdict|alt...]"
                 " [--min-speedup N]\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In)
    return fail(Path, "cannot open file");
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  // The one true validator: structure, enum domains, count consistency,
  // and the cross-field invariants.
  std::string Invalid = ci::validateCiSummaryJson(Text);
  if (!Invalid.empty())
    return fail(Path, Invalid);

  JsonParseResult Parsed = parseJson(Text);
  const JsonValue &Root = Parsed.Value; // validated above; parse succeeds
  const JsonValue &Programs = *Root.find("programs");

  int Rc = 0;
  for (const Expect &E : Expects) {
    const JsonValue *P = findProgram(Programs, E.Name);
    if (!P) {
      Rc |= fail(Path, "no program named \"" + E.Name + "\" in summary");
      continue;
    }
    const std::string &Got = P->find("verdict")->Str;
    bool Ok = false;
    for (const std::string &A : E.Allowed)
      Ok |= Got == A;
    if (!Ok) {
      std::string Want;
      for (const std::string &A : E.Allowed)
        Want += (Want.empty() ? "" : "|") + A;
      Rc |= fail(Path, "program \"" + E.Name + "\": verdict \"" + Got +
                           "\", expected " + Want);
    }
  }

  if (MinSpeedup > 0) {
    double Best = 0;
    bool AnyRan = false;
    for (const JsonValue &P : Programs.Items) {
      const JsonValue *Cal = P.find("calibration");
      if (!Cal || !Cal->find("ran")->B)
        continue;
      AnyRan = true;
      Best = std::max(Best, Cal->find("insitu_speedup")->Num);
    }
    if (!AnyRan)
      Rc |= fail(Path, "--min-speedup given but no program ran calibration");
    else if (Best < MinSpeedup)
      Rc |= fail(Path, "best in-situ speedup " + std::to_string(Best) +
                           "x is below the required " +
                           std::to_string(MinSpeedup) + "x");
  }

  if (Rc == 0)
    std::printf("%s: OK (%zu programs, %zu expectation(s)%s)\n", Path.c_str(),
                Programs.Items.size(), Expects.size(),
                MinSpeedup > 0 ? ", speedup checked" : "");
  return Rc;
}

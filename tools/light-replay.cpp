//===- tools/light-replay.cpp - The Light command-line driver --------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// The user-facing pipeline driver, mirroring the three components of the
/// paper's prototype (Section 5.1): the *transformer* (here: the MIR
/// loader + shared-access analysis), the *recorder*, and the *replayer*
/// (offline schedule computation + directed re-execution).
///
/// \code
///   light-replay list
///   light-replay print  <bug|file.mir>
///   light-replay run    <bug|file.mir> [seed]      # plain execution
///   light-replay hunt   <bug|file.mir> [max-seeds] # find a failing seed
///   light-replay record <bug|file.mir> <seed> <log>
///   light-replay show   <log>
///   light-replay replay <bug|file.mir> <log> [--z3]
/// \endcode
///
/// A <bug> is one of the built-in Figure-6 benchmarks; anything else is
/// treated as a path to a textual MIR file (see mir/Parser.h).
///
//===----------------------------------------------------------------------===//

#include "analysis/SharedAccessAnalysis.h"
#include "bugs/BugHarness.h"
#include "core/LightRecorder.h"
#include "core/ReplayDirector.h"
#include "core/ReplaySchedule.h"
#include "interp/Machine.h"
#include "mir/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

using namespace light;
using namespace light::bugs;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: light-replay <command> ...\n"
      "  list                                 the built-in bug benchmarks\n"
      "  print  <bug|file.mir>                dump the program\n"
      "  run    <bug|file.mir> [seed]         execute under a random "
      "schedule\n"
      "  hunt   <bug|file.mir> [max-seeds]    search for a failing "
      "schedule\n"
      "  record <bug|file.mir> <seed> <log>   record with Light\n"
      "  show   <log>                         dump a recording\n"
      "  replay <bug|file.mir> <log> [--z3]   solve + validated replay\n");
  return 2;
}

std::optional<mir::Program> loadProgram(const std::string &Name) {
  for (BugBenchmark &B : makeBugSuite())
    if (B.Name == Name)
      return std::move(B.Prog);

  std::ifstream In(Name);
  if (!In) {
    std::fprintf(stderr, "error: no built-in bug and no file named '%s'\n",
                 Name.c_str());
    return std::nullopt;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  mir::ParseResult Parsed = mir::parseProgram(Buf.str());
  if (!Parsed.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", Name.c_str(),
                 Parsed.Error.c_str());
    return std::nullopt;
  }
  std::string Verify = Parsed.Prog.verify();
  if (!Verify.empty()) {
    std::fprintf(stderr, "error: %s: %s\n", Name.c_str(), Verify.c_str());
    return std::nullopt;
  }
  analysis::markSharedAccesses(Parsed.Prog);
  return std::move(Parsed.Prog);
}

void printOutcome(const RunResult &R) {
  if (R.Completed)
    std::printf("run completed cleanly (%llu shared accesses)\n",
                static_cast<unsigned long long>(R.SharedAccesses));
  else
    std::printf("run failed: %s\n", R.Bug.str().c_str());
  for (size_t T = 0; T < R.OutputByThread.size(); ++T)
    if (!R.OutputByThread[T].empty()) {
      std::string Flat = R.OutputByThread[T];
      for (char &Ch : Flat)
        if (Ch == '\n')
          Ch = ' ';
      std::printf("  t%zu printed: %s\n", T, Flat.c_str());
    }
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];

  if (Cmd == "list") {
    for (const BugBenchmark &B : makeBugSuite())
      std::printf("%-14s clap=%s chimera=%s\n", B.Name.c_str(),
                  B.ClapExpected ? "yes" : "no",
                  B.ChimeraExpected ? "yes" : "no");
    return 0;
  }

  if (argc < 3)
    return usage();
  std::optional<mir::Program> Prog = loadProgram(argv[2]);

  if (Cmd == "print") {
    if (!Prog)
      return 1;
    std::printf("%s", Prog->str().c_str());
    return 0;
  }

  if (Cmd == "run") {
    if (!Prog)
      return 1;
    uint64_t Seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    NullHook Null;
    Machine M(*Prog, Null);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    printOutcome(M.run(Sched));
    return 0;
  }

  if (Cmd == "hunt") {
    if (!Prog)
      return 1;
    uint64_t Max = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 300;
    BugReport Bug;
    std::optional<uint64_t> Seed = findBuggySeed(*Prog, Max, &Bug);
    if (!Seed) {
      std::printf("no failing schedule in %llu seeds\n",
                  static_cast<unsigned long long>(Max));
      return 1;
    }
    std::printf("seed %llu fails: %s\n",
                static_cast<unsigned long long>(*Seed), Bug.str().c_str());
    return 0;
  }

  if (Cmd == "record") {
    if (!Prog || argc < 5)
      return usage();
    uint64_t Seed = std::strtoull(argv[3], nullptr, 10);
    LightOptions Opts;
    Opts.WriteToDisk = false;
    LightRecorder Rec(Opts);
    Machine M(*Prog, Rec);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    RunResult R = M.run(Sched);
    RecordingLog Log = Rec.finish(&M.registry());
    uint64_t Words = Log.save(argv[4]);
    printOutcome(R);
    std::printf("recorded %zu spans (%llu long-integers on disk) -> %s\n",
                Log.Spans.size(), static_cast<unsigned long long>(Words),
                argv[4]);
    return 0;
  }

  if (Cmd == "show") {
    RecordingLog Log;
    if (!Log.load(argv[2])) {
      std::fprintf(stderr, "error: cannot load '%s'\n", argv[2]);
      return 1;
    }
    std::printf("%s", Log.str().c_str());
    return 0;
  }

  if (Cmd == "replay") {
    if (!Prog || argc < 4)
      return usage();
    RecordingLog Log;
    if (!Log.load(argv[3])) {
      std::fprintf(stderr, "error: cannot load '%s'\n", argv[3]);
      return 1;
    }
    bool UseZ3 = argc > 4 && std::strcmp(argv[4], "--z3") == 0;
    ReplaySchedule Plan = ReplaySchedule::build(
        Log, UseZ3 ? smt::SolverEngine::Z3 : smt::SolverEngine::Idl);
    if (!Plan.ok()) {
      std::fprintf(stderr, "error: %s\n", Plan.error().c_str());
      return 1;
    }
    std::printf("solved %zu-turn schedule in %.2f ms\n",
                Plan.order().size(), Plan.solveStats().SolveSeconds * 1000);
    ReplayDirector Director(Plan, /*RealThreads=*/false, /*Validate=*/true);
    Machine M(*Prog, Director);
    M.prepareReplay(Log.Spawns);
    RunResult R = M.runReplay(Director);
    printOutcome(R);
    if (Director.failed()) {
      std::printf("REPLAY DIVERGED: %s\n", Director.divergence().c_str());
      return 1;
    }
    std::printf("replay faithful: %llu reads validated, %llu blind writes "
                "suppressed\n",
                static_cast<unsigned long long>(
                    Director.stats().ValidatedReads),
                static_cast<unsigned long long>(
                    Director.stats().BlindSuppressed));
    return 0;
  }

  return usage();
}

//===- tools/light-replay.cpp - The Light command-line driver --------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// The user-facing pipeline driver, mirroring the three components of the
/// paper's prototype (Section 5.1): the *transformer* (here: the MIR
/// loader + shared-access analysis), the *recorder*, and the *replayer*
/// (offline schedule computation + directed re-execution).
///
/// \code
///   light-replay list
///   light-replay print  <bug|file.mir>
///   light-replay run    <bug|file.mir> [seed]      # plain execution
///   light-replay hunt   <bug|file.mir> [max-seeds] # find a failing seed
///   light-replay record <bug|file.mir> [seed] [log]
///   light-replay record <bug|file.mir> [seed] [log] --nodes N
///   light-replay show   <log>
///   light-replay replay <bug|file.mir> <log>
///   light-replay crashtest <bug|file.mir> [seed] [log]
///   light-replay explore <bug|file.mir>            # schedule search
/// \endcode
///
/// Flags are position-independent and accepted by every subcommand:
///
///   --z3                   solve with the Z3 backend instead of the
///                          built-in IDL solver (record verification,
///                          replay)
///   --no-verify            record only; skip the solve + validated replay
///                          pass that `record` runs by default
///   --solver-shards <N|auto>
///                          solve independent constraint shards on up to N
///                          threads (default auto = hardware concurrency;
///                          1 = the monolithic path bit-for-bit)
///   --epoch-spans <N>      durable-log mode: close an epoch after N
///                          pending spans per thread (record, crashtest)
///   --epoch-ms <N>         durable-log mode: close an epoch after N
///                          milliseconds per thread
///   --fault <spec>         arm the deterministic fault injector (same
///                          grammar as the LIGHT_FAULT environment
///                          variable, see support/FaultInjection.h)
///   --metrics-json <file>  write the merged metrics-registry snapshot
///   --trace-out <file>     arm the event tracer and write Chrome
///                          trace-event JSON (chrome://tracing, Perfetto)
///
/// `explore` flags (see src/explore):
///
///   --explore pct|dfs      search strategy: PCT randomized priorities
///                          (default) or bounded-preemption systematic DFS
///   --preemption-bound <N> DFS: max preempting switches per schedule
///   --pct-depth <D>        PCT: bug-depth parameter d
///   --seeds <N>            PCT: seeds to try
///   --budget <N>           max schedules to execute
///   --oracle               run the cross-engine differential oracle on
///                          the failing schedule (or the default schedule
///                          when no bug was found)
///   --shrink               ddmin-minimize the failing (program, schedule)
///                          pair and dump a `.mir` repro
///   --repro-out <file>     where --shrink writes the repro
///                          (default <target>.repro.mir)
///
/// A <bug> is one of the built-in Figure-6 benchmarks; anything else is
/// treated as a path to a textual MIR file (see mir/Parser.h).
///
/// `record --nodes N` is the multi-node pipeline: fork one process per
/// node (the program's unary `node(i)` function), each recording into its
/// own durable epoch + message log over a shared pipe fabric; then salvage
/// every node log independently, compute the maximal causal cut, merge the
/// per-node constraint systems with send->recv cross-node edges, solve one
/// global schedule, and verify each node's projected replay in isolation
/// against redelivered messages. The result is a full global schedule or a
/// structured partial cut — never a wrong schedule.
///
/// `crashtest` is the end-to-end fault-tolerance exercise: it forks a
/// child that records the buggy run with the durable epoch log enabled
/// and dies at the bug *without* closing the log cleanly (crash-handler
/// semantics), then the parent salvages the torn LIGHT002 prefix, solves
/// it, and verifies the replay reproduces the original bug. With
/// `--fault log.crash_at_epoch=N` the child's log write itself is killed
/// mid-epoch (SIGKILL semantics: a torn segment tail on disk), and the
/// parent verifies salvage recovers the valid prefix and replays it
/// without divergence.
///
//===----------------------------------------------------------------------===//

#include "analysis/SharedAccessAnalysis.h"
#include "bugs/BugHarness.h"
#include "ci/CiOrchestrator.h"
#include "explore/CrossEngineOracle.h"
#include "explore/ExplorationDriver.h"
#include "explore/ProgramShrinker.h"
#include "core/LightRecorder.h"
#include "core/ReplayDirector.h"
#include "core/ReplaySchedule.h"
#include "core/WindowedSchedule.h"
#include "dist/DistRunner.h"
#include "dist/NodeSet.h"
#include "runtime/ChannelTransport.h"
#include "trace/SegmentReader.h"
#include "interp/Machine.h"
#include "mir/Parser.h"
#include "obs/Args.h"
#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "obs/Trace.h"
#include "support/BinaryIO.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace light;
using namespace light::bugs;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: light-replay <command> ... [flags]\n"
      "  list                                 the built-in bug benchmarks\n"
      "  print  <bug|file.mir>                dump the program\n"
      "  run    <bug|file.mir> [seed]         execute under a random "
      "schedule\n"
      "  hunt   <bug|file.mir> [max-seeds]    search for a failing "
      "schedule\n"
      "  record <bug|file.mir> [seed] [log]   record with Light, then\n"
      "                                       solve + validated replay\n"
      "                                       (--nodes N: fork N node\n"
      "                                       processes, salvage + causal\n"
      "                                       cut + global solve + per-node\n"
      "                                       replay)\n"
      "  show   <log>                         dump a recording\n"
      "  replay <bug|file.mir> <log>          solve + validated replay\n"
      "  crashtest <bug|file.mir> [seed] [log]\n"
      "                                       crash a recording child "
      "mid-run,\n"
      "                                       salvage the durable log, "
      "verify\n"
      "                                       the replay reproduces the bug\n"
      "  explore <bug|file.mir>               search the schedule space "
      "for a\n"
      "                                       failing interleaving\n"
      "  ci <corpus-dir|file.mir...>          resilient corpus pipeline:\n"
      "                                       sandboxed record -> salvage "
      "->\n"
      "                                       explore -> shrink -> verify\n"
      "flags (any position, any subcommand):\n"
      "  --z3                   use the Z3 solver backend\n"
      "  --no-verify            skip record's solve+replay verification\n"
      "  --solver-shards <N|auto>\n"
      "                         solve independent constraint shards on up\n"
      "                         to N threads (default auto; 1 = monolithic)\n"
      "  --epoch-spans <N>      durable epoch log: flush every N spans\n"
      "  --epoch-ms <N>         durable epoch log: flush every N ms\n"
      "  --compress             write durable epochs in the compressed\n"
      "                         LIGHT003 format (needs --epoch-spans/-ms)\n"
      "  --stream               replay: stream the log segment by segment\n"
      "                         and solve in bounded windows instead of\n"
      "                         loading + solving monolithically\n"
      "  --window-spans <N>     --stream window size in spans "
      "(default 32768);\n"
      "                         on WindowTooSmall the pass retries with a\n"
      "                         doubled window (bounded)\n"
      "  --nodes <N>            record: run N forked node processes (the\n"
      "                         program must define a unary `node`\n"
      "                         function); logs land at <log>.node<i>\n"
      "  --fault <spec>         arm fault injection (LIGHT_FAULT grammar)\n"
      "  --metrics-json <file>  write the metrics snapshot as JSON\n"
      "  --trace-out <file>     write a Chrome trace of the run\n"
      "  --progress[=N]         heartbeat status line every N seconds\n"
      "                         (default 1; also re-flushes --metrics-json\n"
      "                         each tick so killed runs keep a snapshot)\n"
      "explore flags:\n"
      "  --explore pct|dfs      strategy (default pct)\n"
      "  --preemption-bound <N> DFS preemption bound (default 2)\n"
      "  --pct-depth <D>        PCT bug-depth d (default 3)\n"
      "  --seeds <N>            PCT seeds to try (default 1000)\n"
      "  --budget <N>           max schedules (default 50000)\n"
      "  --oracle               cross-engine differential oracle on the\n"
      "                         failing (or default) schedule\n"
      "  --shrink               ddmin-minimize the failure, dump a repro\n"
      "  --repro-out <file>     repro path (default <target>.repro.mir)\n"
      "ci flags:\n"
      "  --ci-json <file>       write the light-ci-v1 summary JSON\n"
      "  --ci-artifacts <dir>   durable logs + repros land here\n"
      "  --ci-deadline <sec>    per-child watchdog deadline (default 5)\n"
      "  --ci-retries <N>       max infra-failure retries (default 2)\n"
      "  --ci-seed <N>          recording seed (default 1)\n"
      "  --ci-explore-budget <sec>\n"
      "                         in-situ search wall budget (default 2)\n"
      "  --ci-calibration       measure fork-vs-in-situ throughput\n");
  return 2;
}

std::optional<mir::Program> loadProgram(const std::string &Name) {
  for (BugBenchmark &B : makeBugSuite())
    if (B.Name == Name)
      return std::move(B.Prog);
  for (BugBenchmark &B : makeSyncBugSuite())
    if (B.Name == Name)
      return std::move(B.Prog);
  for (BugBenchmark &B : makeDistBugSuite())
    if (B.Name == Name)
      return std::move(B.Prog);

  std::ifstream In(Name);
  if (!In) {
    std::fprintf(stderr, "error: no built-in bug and no file named '%s'\n",
                 Name.c_str());
    return std::nullopt;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  mir::ParseResult Parsed = mir::parseProgram(Buf.str());
  if (!Parsed.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", Name.c_str(),
                 Parsed.Error.c_str());
    return std::nullopt;
  }
  std::string Verify = Parsed.Prog.verify();
  if (!Verify.empty()) {
    std::fprintf(stderr, "error: %s: %s\n", Name.c_str(), Verify.c_str());
    return std::nullopt;
  }
  analysis::markSharedAccesses(Parsed.Prog);
  return std::move(Parsed.Prog);
}

void printOutcome(const RunResult &R) {
  if (R.Completed)
    std::printf("run completed cleanly (%llu shared accesses)\n",
                static_cast<unsigned long long>(R.SharedAccesses));
  else
    std::printf("run failed: %s\n", R.Bug.str().c_str());
  for (size_t T = 0; T < R.OutputByThread.size(); ++T)
    if (!R.OutputByThread[T].empty()) {
      std::string Flat = R.OutputByThread[T];
      for (char &Ch : Flat)
        if (Ch == '\n')
          Ch = ' ';
      std::printf("  t%zu printed: %s\n", T, Flat.c_str());
    }
}

/// Prints the durability verdict of a load: format version, clean close
/// vs. salvage, and how much of a torn log was recovered/cut.
void printLoadReport(const LogLoadReport &Report) {
  if (Report.FormatVersion != 2 && Report.FormatVersion != 3)
    return;
  const char *Fmt = Report.FormatVersion == 3 ? "LIGHT003" : "LIGHT002";
  if (Report.CleanClose) {
    std::printf("durable log: %s, closed cleanly, %llu segment(s)\n", Fmt,
                static_cast<unsigned long long>(Report.SegmentsRecovered));
    return;
  }
  std::printf("durable log: %s, SALVAGED %llu segment(s)"
              " (dropped %llu segment(s), %llu words of torn tail)\n",
              Fmt,
              static_cast<unsigned long long>(Report.SegmentsRecovered),
              static_cast<unsigned long long>(Report.SegmentsDropped),
              static_cast<unsigned long long>(Report.WordsDropped));
}

/// Solves \p Log and runs one validated replay, printing the summary.
/// When \p ExpectBug is non-null the replay must additionally end in a
/// bug report matching it (Theorem 1's correlation). \p Validate=false
/// runs best-effort (gates enforced, read sources unchecked) — the right
/// mode for a torn prefix whose open spans died with the recorder.
/// Returns 0 on a faithful replay.
int replayWithPlan(const mir::Program &Prog, const RecordingLog &Log,
                   const ReplaySchedule &Plan,
                   const BugReport *ExpectBug = nullptr,
                   bool Validate = true);

int solveAndReplay(const mir::Program &Prog, const RecordingLog &Log,
                   bool UseZ3, unsigned SolverShards,
                   const BugReport *ExpectBug = nullptr,
                   bool Validate = true) {
  ReplaySchedule Plan = ReplaySchedule::build(
      Log, UseZ3 ? smt::SolverEngine::Z3 : smt::SolverEngine::Idl, {},
      SolverShards);
  if (!Plan.ok()) {
    std::fprintf(stderr, "error: %s\n", Plan.error().c_str());
    return 1;
  }
  std::printf("solved %zu-turn schedule in %.2f ms (%u shard%s)\n",
              Plan.order().size(),
              Plan.solveStats().SolveSeconds * 1000, Plan.solveStats().Shards,
              Plan.solveStats().Shards == 1 ? "" : "s");
  return replayWithPlan(Prog, Log, Plan, ExpectBug, Validate);
}

/// The execution half of solveAndReplay, shared with the streamed
/// (windowed) path: runs one replay of \p Plan and checks faithfulness.
int replayWithPlan(const mir::Program &Prog, const RecordingLog &Log,
                   const ReplaySchedule &Plan, const BugReport *ExpectBug,
                   bool Validate) {
  ReplayDirector Director(Plan, /*RealThreads=*/false, Validate);
  Machine M(Prog, Director);
  M.prepareReplay(Log.Spawns);
  RunResult R = M.runReplay(Director);
  Director.publishMetrics();
  printOutcome(R);
  if (Director.failed()) {
    std::printf("REPLAY DIVERGED: %s\n",
                Director.divergenceInfo().str().c_str());
    return 1;
  }
  // The interpreter detects structural divergence (spawn mismatch, a turn
  // for a thread that never appears) on its own, without the director
  // noticing — that is just as much a failed replay.
  if (R.Bug.What == BugReport::Kind::ReplayDivergence) {
    std::printf("REPLAY DIVERGED: %s\n", R.Bug.str().c_str());
    return 1;
  }
  ReplayStats Stats = Director.stats();
  std::printf("%s: %llu reads validated, %llu blind writes "
              "suppressed\n",
              Validate ? "replay faithful" : "replay completed (unvalidated)",
              static_cast<unsigned long long>(Stats.ValidatedReads),
              static_cast<unsigned long long>(Stats.BlindSuppressed));
  if (ExpectBug) {
    if (R.Bug.sameAs(*ExpectBug)) {
      std::printf("bug reproduced: %s\n", R.Bug.str().c_str());
    } else {
      std::printf("BUG NOT REPRODUCED: wanted %s, got %s\n",
                  ExpectBug->str().c_str(),
                  R.Completed ? "a clean run" : R.Bug.str().c_str());
      return 1;
    }
  }
  return 0;
}

/// `replay --stream`: pulls the durable log one epoch segment at a time
/// and solves it in bounded windows, so peak memory holds one window's
/// constraint system instead of the whole trace's. Salvaged (torn) logs
/// replay unvalidated, matching crashtest's salvage semantics.
///
/// WindowTooSmall is an adaptive, not fatal, condition: a dependence that
/// crosses a frozen window aborts that pass, and the stream restarts from
/// the log with a doubled window. The doubling is bounded — a log whose
/// longest dependence exceeds every retry is a configuration error the
/// user must see, not an infinite loop. Each retry counts into the
/// stream.window_retries metric.
int streamedSolveAndReplay(const mir::Program &Prog, const std::string &Path,
                           bool UseZ3, unsigned SolverShards,
                           size_t WindowSpans) {
  constexpr unsigned MaxWindowRetries = 5;
  for (unsigned Attempt = 0;; ++Attempt) {
    TraceSegmentReader Reader(Path);
    if (!Reader.ok()) {
      std::fprintf(stderr, "error: cannot stream '%s': %s\n", Path.c_str(),
                   Reader.report().Error.c_str());
      return 1;
    }
    WindowedOptions WO;
    WO.Engine = UseZ3 ? smt::SolverEngine::Z3 : smt::SolverEngine::Idl;
    WO.SolverShards = SolverShards;
    WO.WindowSpans = WindowSpans;
    WindowedScheduleBuilder Builder(WO);

    RecordingLog Log;
    while (Reader.next(Log) && Builder.addSpans(Log))
      ;
    Reader.finish(Log);
    Builder.addSpans(Log);
    if (!Builder.finish()) {
      if (Builder.tooSmall().fired() && Attempt < MaxWindowRetries) {
        obs::Registry::global().counter("stream.window_retries").add(1);
        std::printf("window of %zu spans too small (%s); retrying with "
                    "%zu\n",
                    WindowSpans, Builder.error().c_str(), WindowSpans * 2);
        WindowSpans *= 2;
        continue;
      }
      std::fprintf(stderr, "error: %s\n", Builder.error().c_str());
      if (Builder.tooSmall().fired())
        std::fprintf(stderr,
                     "hint: a dependence outlived %u doublings of the "
                     "window; pass a larger --window-spans explicitly\n",
                     MaxWindowRetries);
      return 1;
    }
    printLoadReport(Reader.report());
    std::printf("streamed %zu window(s): solved %llu-turn schedule in "
                "%.2f ms%s\n",
                Builder.windowsSolved(),
                static_cast<unsigned long long>(Builder.orderSize()),
                Builder.stats().SolveSeconds * 1000,
                Attempt ? " (after window retries)" : "");
    ReplaySchedule Plan = Builder.takeSchedule(Log);
    return replayWithPlan(Prog, Log, Plan, nullptr,
                          /*Validate=*/Reader.report().CleanClose);
  }
}

/// Writes the telemetry outputs requested on the command line. Runs on
/// every exit path so a failed replay still leaves its trace behind.
int finishTelemetry(int Rc, const std::string &MetricsPath,
                    const std::string &TracePath) {
  if (!TracePath.empty()) {
    obs::Tracer::global().stop();
    if (obs::Tracer::global().writeChromeTrace(TracePath))
      std::printf("trace written -> %s (%zu events, %llu dropped)\n",
                  TracePath.c_str(), obs::Tracer::global().size(),
                  static_cast<unsigned long long>(
                      obs::Tracer::global().dropped()));
    else
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   TracePath.c_str());
  }
  if (!MetricsPath.empty()) {
    if (obs::Registry::global().writeJson(MetricsPath))
      std::printf("metrics written -> %s\n", MetricsPath.c_str());
    else
      std::fprintf(stderr, "error: cannot write metrics '%s'\n",
                   MetricsPath.c_str());
  }
  return Rc;
}

/// Epoch options parsed from the command line.
struct EpochFlags {
  size_t Spans = 0;
  uint64_t Ms = 0;
  bool on() const { return Spans != 0 || Ms != 0; }
};

/// The child half of `crashtest`: records <Prog> under <Seed> with the
/// durable epoch log at <DurablePath>, then dies at the bug via
/// crashFlush() — close pending spans, append one final segment, no
/// clean-close marker — and exits without ever calling finish(). Exit
/// codes: 42 = crashed at the bug as intended, 3 = the run unexpectedly
/// completed cleanly.
[[noreturn]] void crashtestChild(const mir::Program &Prog, uint64_t Seed,
                                 const std::string &DurablePath,
                                 const EpochFlags &Epochs, bool Compress) {
  LightOptions Opts;
  Opts.WriteToDisk = false;
  Opts.EpochSpans = Epochs.Spans ? Epochs.Spans : 4;
  Opts.EpochMs = Epochs.Ms;
  Opts.DurableLogPath = DurablePath;
  // --compress: the child dies on a compressed LIGHT003 log, so the
  // parent's salvage exercises torn-tail recovery of the packed format.
  Opts.CompressedEpochs = Compress;
  LightRecorder Rec(Opts);
  Machine M(Prog, Rec);
  Rec.attachRegistry(&M.registry());
  M.seedEnvironment(Seed ^ 0x5a5a);
  RandomScheduler Sched(Seed);
  RunResult R = M.run(Sched);
  if (R.Completed)
    ::_exit(3);
  Rec.crashFlush();
  // _exit, not exit: no atexit handlers, no stream flushing — the closest
  // a cooperative test can get to dying abruptly.
  ::_exit(42);
}

/// `crashtest`: fork a recording child that crashes at the bug, salvage
/// its durable log, and verify the replay. Returns the process exit code.
int runCrashtest(const mir::Program &Prog, uint64_t Seed,
                 const std::string &DurablePath, const EpochFlags &Epochs,
                 bool Compress, bool UseZ3, unsigned SolverShards) {
  // The reference outcome: the same seed under a plain run (recording does
  // not perturb the cooperative schedule, so this is the bug the salvaged
  // log must reproduce).
  NullHook Null;
  Machine Ref(Prog, Null);
  Ref.seedEnvironment(Seed ^ 0x5a5a);
  RandomScheduler RefSched(Seed);
  RunResult Expected = Ref.run(RefSched);
  if (Expected.Completed) {
    std::fprintf(stderr,
                 "error: seed %llu does not fail; pick a buggy seed "
                 "(try `light-replay hunt`)\n",
                 static_cast<unsigned long long>(Seed));
    return 1;
  }
  std::printf("expected bug: %s\n", Expected.Bug.str().c_str());

  std::remove(DurablePath.c_str());
  pid_t Pid = ::fork();
  if (Pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (Pid == 0)
    crashtestChild(Prog, Seed, DurablePath, Epochs, Compress);

  int Status = 0;
  if (::waitpid(Pid, &Status, 0) != Pid) {
    std::perror("waitpid");
    return 1;
  }
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 42) {
    std::fprintf(stderr,
                 "error: recording child did not crash at the bug "
                 "(status %d)\n",
                 Status);
    return 1;
  }
  std::printf("recording child crashed mid-run (as intended)\n");

  RecordingLog Log;
  LogLoadReport Report;
  if (!Log.load(DurablePath, Report)) {
    std::fprintf(stderr, "error: salvage failed: %s\n",
                 Report.Error.c_str());
    return 1;
  }
  printLoadReport(Report);
  if (Report.CleanClose) {
    std::fprintf(stderr, "error: crashed child left a cleanly-closed log "
                         "(crash path wrote the close marker?)\n");
    return 1;
  }
  std::printf("salvaged %zu spans, %zu syscalls, %zu spawns\n",
              Log.Spans.size(), Log.Syscalls.size(), Log.Spawns.size());

  // With an injected mid-epoch write crash the tail epochs (and the bug)
  // are genuinely lost, along with any spans still open at the kill; the
  // guarantee shrinks to: the salvaged prefix solves and replays
  // best-effort without structural divergence, so validation is off.
  // Without it, crashFlush persisted everything up to the bug, so the
  // bug itself must reproduce under full validation.
  bool TailLost = fault::Injector::global().armed("log.crash_at_epoch");
  int Rc = solveAndReplay(Prog, Log, UseZ3, SolverShards,
                          TailLost ? nullptr : &Expected.Bug,
                          /*Validate=*/!TailLost);
  if (Rc == 0)
    std::printf("CRASHTEST PASS: %s\n",
                TailLost ? "torn log salvaged and prefix replayed"
                         : "salvaged log reproduced the bug");
  else
    std::printf("CRASHTEST FAIL\n");
  return Rc;
}

/// `record --nodes N`: the fault-tolerant multi-node pipeline. Forks N
/// node processes over a shared pipe fabric (each with its own durable
/// epoch + message log), salvages every node log independently, computes
/// the maximal causal cut, merges and solves one global schedule with
/// send->recv cross-node edges, then verifies each node's projected
/// replay in isolation against its redelivered messages. Returns 0 when
/// the pipeline produced a full global schedule or a structured partial
/// cut whose surviving prefixes all replayed without divergence.
int runDistPipeline(const mir::Program &Prog, uint32_t Nodes, uint64_t Seed,
                    const std::string &LogBase, const EpochFlags &Epochs,
                    bool Compress, bool Verify, bool UseZ3,
                    unsigned SolverShards) {
  dist::DistOptions DO;
  DO.Nodes = Nodes;
  DO.Seed = Seed;
  DO.LogBase = LogBase;
  DO.EpochSpans = Epochs.Spans ? Epochs.Spans : 4;
  DO.EpochMs = Epochs.Ms;
  DO.Compress = Compress;
  dist::DistRecordResult DR = dist::runDistRecord(Prog, DO);
  if (!DR.Error.empty()) {
    std::fprintf(stderr, "error: %s\n", DR.Error.c_str());
    return 1;
  }
  for (uint32_t N = 0; N < Nodes; ++N)
    std::printf("node %u: %s\n", N, DR.Nodes[N].str().c_str());

  dist::NodeSetLoader Loader;
  dist::MergeResult MR = Loader.load(LogBase, Nodes);
  if (!MR.Loaded) {
    // Still a structured outcome — every node's evidence was unusable —
    // but there is nothing to solve or replay.
    std::printf("SALVAGE EMPTY: %s\n", MR.Error.c_str());
    return 1;
  }
  for (const dist::PartialCutEntry &E : MR.Cut)
    std::printf("  cut: %s\n", E.str().c_str());
  std::printf("merged %zu span(s), %zu syscall(s) across %u node(s)%s\n",
              MR.Merged.Spans.size(), MR.Merged.Syscalls.size(), Nodes,
              MR.FullSchedule ? "" : " [PARTIAL CUT]");
  if (!Verify)
    return 0;

  if (!Loader.solve(MR,
                    UseZ3 ? smt::SolverEngine::Z3 : smt::SolverEngine::Idl,
                    {}, SolverShards)) {
    std::fprintf(stderr, "error: global solve: %s\n", MR.Error.c_str());
    return 1;
  }
  std::printf("solved %zu-turn global schedule (%llu cross-node edges, "
              "%.2f ms)\n",
              MR.Order.size(),
              static_cast<unsigned long long>(MR.CrossEdges),
              MR.Stats.SolveSeconds * 1000);

  int Rc = 0;
  for (uint32_t N = 0; N < Nodes; ++N) {
    const dist::NodeSalvage &NS = MR.Nodes[N];
    if (!NS.Epoch.Loaded || !NS.Epoch.UsablePrefix) {
      std::printf("node %u: nothing to replay (no usable salvage)\n", N);
      continue;
    }
    mir::Program NodeProg;
    std::string Err;
    if (!dist::makeNodeProgram(Prog, N, NodeProg, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    dist::NodeReplayPlan NP = Loader.projectNode(MR, N);
    if (!NP.Plan.ok()) {
      std::printf("node %u PLAN FAILED: %s\n", N, NP.Plan.error().c_str());
      Rc = 1;
      continue;
    }
    ReplayChannelTransport Redelivery(NP.Messages);
    ReplayDirector Director(NP.Plan, /*RealThreads=*/false, NP.Validate);
    Machine M(NodeProg, Director);
    M.prepareReplay(NP.Log.Spawns);
    M.setChannelTransport(&Redelivery, N);
    RunResult R = M.runReplay(Director);
    if (Director.failed()) {
      std::printf("node %u REPLAY DIVERGED: %s\n", N,
                  Director.divergenceInfo().str().c_str());
      Rc = 1;
      continue;
    }
    if (R.Bug.What == BugReport::Kind::ReplayDivergence) {
      std::printf("node %u REPLAY DIVERGED: %s\n", N, R.Bug.str().c_str());
      Rc = 1;
      continue;
    }
    std::printf("node %u replay %s: %s\n", N,
                NP.Validate ? "faithful" : "best-effort (cut prefix)",
                R.Completed ? "completed" : R.Bug.str().c_str());
  }
  if (Rc == 0)
    std::printf("DIST %s: %s\n",
                MR.FullSchedule ? "FULL SCHEDULE" : "PARTIAL CUT",
                MR.FullSchedule
                    ? "global schedule solved and every node replayed"
                    : "surviving prefixes solved and replayed");
  return Rc;
}

/// `explore`: systematic / randomized schedule search, optional oracle
/// cross-check and ddmin shrinking of the failure found.
int runExplore(const mir::Program &Prog, const std::string &Strategy,
               const explore::ExploreOptions &Opts, bool RunOracle,
               bool Shrink, const std::string &ReproPath, bool UseZ3,
               unsigned SolverShards) {
  using namespace light::explore;

  if (Strategy != "pct" && Strategy != "dfs") {
    std::fprintf(stderr, "error: --explore wants 'pct' or 'dfs', got '%s'\n",
                 Strategy.c_str());
    return 2;
  }
  ExploreReport Report = Strategy == "dfs" ? exploreDfs(Prog, Opts)
                                           : explorePct(Prog, Opts);
  std::printf("%s: %llu schedule(s), %llu distinct interleaving(s), "
              "%.2fs (%.0f schedules/s)%s\n",
              Strategy.c_str(),
              static_cast<unsigned long long>(Report.SchedulesRun),
              static_cast<unsigned long long>(Report.DistinctInterleavings),
              Report.Seconds, Report.schedulesPerSecond(),
              Report.SpaceExhausted ? ", space exhausted" : "");
  if (Report.BugFound) {
    std::printf("bug found: %s\n", Report.Bug.str().c_str());
    std::printf("  preemptions: %u\n", Report.FailingPreemptions);
    std::printf("  schedule: %s\n",
                traceToString(Report.FailingTrace).c_str());
  } else {
    std::printf("no bug within the budget\n");
  }

  int Rc = Report.BugFound ? 0 : 1;
  DecisionTrace Schedule = Report.FailingTrace; // empty = default schedule

  if (RunOracle) {
    OracleConfig Config;
    Config.LightEngine =
        UseZ3 ? smt::SolverEngine::Z3 : smt::SolverEngine::Idl;
    Config.SolverShards = SolverShards;
    Config.EnvSeed = Opts.EnvSeed;
    CrossEngineOracle Oracle(Config);
    OracleVerdict V = Oracle.check(Prog, Schedule);
    std::printf("oracle: %s\n", V.str().c_str());
    if (!V.Agreed)
      Rc = 1;
  }

  if (Shrink && Report.BugFound) {
    BugReport Want = Report.Bug;
    uint64_t EnvSeed = Opts.EnvSeed;
    FailPredicate SameBug = [&](const mir::Program &P,
                                const DecisionTrace &S) {
      NullHook Null;
      Machine M(P, Null);
      M.seedEnvironment(EnvSeed ^ 0x5a5a);
      TraceScheduler Sched(S);
      RunResult R = M.run(Sched, /*MaxInstructions=*/2000000ull);
      return Want.sameAs(R.Bug);
    };
    ShrinkResult Small = shrink(Prog, Schedule, SameBug);
    std::printf("shrink: %u -> %u statements (%.0f%%), %llu probes\n",
                Small.OriginalStatements, Small.ShrunkStatements,
                Small.ratio() * 100,
                static_cast<unsigned long long>(Small.ProbesRun));
    Repro R;
    R.Prog = Small.Shrunk;
    R.Schedule = Small.Schedule;
    R.EnvSeed = EnvSeed;
    R.Note = "bug: " + Want.str();
    std::string Err = dumpRepro(ReproPath, R);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("repro written -> %s\n", ReproPath.c_str());
  } else if (Shrink) {
    std::printf("nothing to shrink (no failing schedule)\n");
  }
  return Rc;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  if (Cmd.size() >= 2 && Cmd[0] == '-' && Cmd[1] == '-') {
    std::fprintf(stderr,
                 "error: expected a command before '%s' (flags go after "
                 "the command)\n",
                 Cmd.c_str());
    return usage();
  }

  obs::ArgList Args(
      argc, argv,
      {"metrics-json", "trace-out", "epoch-spans", "epoch-ms", "fault",
       "solver-shards", "window-spans", "nodes", "explore",
       "preemption-bound",
       "pct-depth", "seeds", "budget", "repro-out", "progress", "ci-json",
       "ci-artifacts", "ci-deadline", "ci-retries", "ci-seed",
       "ci-explore-budget"},
      {"z3", "no-verify", "compress", "stream", "oracle", "shrink",
       "ci-calibration"},
      /*Begin=*/2);
  for (const std::string &F : Args.unknown())
    std::fprintf(stderr, "error: unknown flag '%s'\n", F.c_str());
  if (!Args.unknown().empty())
    return usage();

  // A valueless flag falls back to a conventional filename rather than
  // silently dropping the request.
  std::string MetricsPath = Args.get("metrics-json", "", "metrics.json");
  std::string TracePath = Args.get("trace-out", "", "trace.json");
  bool UseZ3 = Args.has("z3");
  // "auto" maps to 0, which ReplaySchedule::build resolves to hardware
  // concurrency; an explicit 1 keeps the monolithic solve path.
  std::string ShardSpec = Args.get("solver-shards", "auto", "auto");
  unsigned SolverShards =
      ShardSpec == "auto"
          ? 0
          : static_cast<unsigned>(std::strtoul(ShardSpec.c_str(), nullptr, 10));
  if (ShardSpec != "auto" && SolverShards == 0) {
    std::fprintf(stderr, "error: --solver-shards wants a count or 'auto', "
                         "got '%s'\n",
                 ShardSpec.c_str());
    return 2;
  }
  EpochFlags Epochs;
  Epochs.Spans = std::strtoull(Args.get("epoch-spans", "0").c_str(),
                               nullptr, 10);
  Epochs.Ms = std::strtoull(Args.get("epoch-ms", "0").c_str(), nullptr, 10);
  if (Args.has("fault")) {
    // The flag overrides any LIGHT_FAULT environment spec.
    std::string Err = fault::Injector::global().configure(Args.get("fault"));
    if (!Err.empty()) {
      std::fprintf(stderr, "error: --fault: %s\n", Err.c_str());
      return 2;
    }
  }
  if (!TracePath.empty())
    obs::Tracer::global().start();

  // Heartbeat: --progress[=seconds] starts the sampler before any work.
  // It also rewrites --metrics-json every tick, so a crashed/killed run
  // still leaves an at-most-one-heartbeat-stale snapshot on disk.
  std::unique_ptr<obs::ProgressSampler> Progress;
  if (Args.has("progress")) {
    obs::ProgressOptions PO;
    PO.Label = Cmd;
    PO.MetricsJsonPath = MetricsPath;
    std::string Interval = Args.get("progress", "1", "1");
    PO.IntervalSeconds = std::strtod(Interval.c_str(), nullptr);
    if (PO.IntervalSeconds <= 0) {
      std::fprintf(stderr, "error: --progress wants a positive interval, "
                           "got '%s'\n",
                   Interval.c_str());
      return 2;
    }
    Progress = std::make_unique<obs::ProgressSampler>(PO);
    Progress->start();
  }

  auto Finish = [&](int Rc) {
    if (Progress)
      Progress->stop(); // final heartbeat + last metrics flush
    return finishTelemetry(Rc, MetricsPath, TracePath);
  };

  if (Cmd == "list") {
    for (const BugBenchmark &B : makeBugSuite())
      std::printf("%-16s clap=%s chimera=%s\n", B.Name.c_str(),
                  B.ClapExpected ? "yes" : "no",
                  B.ChimeraExpected ? "yes" : "no");
    for (const BugBenchmark &B : makeSyncBugSuite())
      std::printf("%-16s clap=%s chimera=%s\n", B.Name.c_str(),
                  B.ClapExpected ? "yes" : "no",
                  B.ChimeraExpected ? "yes" : "no");
    for (const BugBenchmark &B : makeDistBugSuite())
      std::printf("%-16s clap=%s chimera=%s\n", B.Name.c_str(),
                  B.ClapExpected ? "yes" : "no",
                  B.ChimeraExpected ? "yes" : "no");
    return Finish(0);
  }

  if (Args.size() < 1)
    return usage();
  const std::string &Target = Args.positional(0);

  if (Cmd == "show") {
    RecordingLog Log;
    LogLoadReport Report;
    if (!Log.load(Target, Report)) {
      std::fprintf(stderr, "error: cannot load '%s': %s\n", Target.c_str(),
                   Report.Error.c_str());
      return Finish(1);
    }
    printLoadReport(Report);
    std::printf("%s", Log.str().c_str());
    return Finish(0);
  }

  if (Cmd == "ci") {
    // The resilient corpus pipeline: the target is a corpus directory (its
    // *.mir files, sorted) or an explicit list of program files.
    ci::CiOptions CO;
    CO.DeadlineSeconds =
        std::strtod(Args.get("ci-deadline", "5").c_str(), nullptr);
    if (CO.DeadlineSeconds <= 0) {
      std::fprintf(stderr, "error: --ci-deadline wants a positive number "
                           "of seconds\n");
      return Finish(2);
    }
    CO.MaxInfraRetries = static_cast<uint32_t>(
        std::strtoul(Args.get("ci-retries", "2").c_str(), nullptr, 10));
    CO.RecordSeed =
        std::strtoull(Args.get("ci-seed", "1").c_str(), nullptr, 10);
    CO.ExploreBudgetSeconds =
        std::strtod(Args.get("ci-explore-budget", "2").c_str(), nullptr);
    CO.Strategy = Args.get("explore", "pct", "pct");
    CO.Explore.PreemptionBound = static_cast<uint32_t>(
        std::strtoul(Args.get("preemption-bound", "2").c_str(), nullptr, 10));
    CO.Explore.PctDepth = static_cast<uint32_t>(
        std::strtoul(Args.get("pct-depth", "3").c_str(), nullptr, 10));
    CO.Explore.PctSeeds =
        std::strtoull(Args.get("seeds", "1000").c_str(), nullptr, 10);
    CO.Explore.ScheduleBudget =
        std::strtoull(Args.get("budget", "50000").c_str(), nullptr, 10);
    CO.ArtifactDir = Args.get("ci-artifacts", "", "");
    CO.Calibrate = Args.has("ci-calibration");
    if (Epochs.Spans)
      CO.EpochSpans = Epochs.Spans;

    std::vector<std::string> Paths;
    struct stat St;
    if (::stat(Target.c_str(), &St) == 0 && S_ISDIR(St.st_mode)) {
      std::string Err;
      if (!ci::listCorpusDir(Target, Paths, Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return Finish(1);
      }
      if (Paths.empty()) {
        std::fprintf(stderr, "error: no .mir files in '%s'\n",
                     Target.c_str());
        return Finish(1);
      }
    } else {
      for (size_t I = 0; I < Args.size(); ++I)
        Paths.push_back(Args.positional(I));
    }

    ci::CorpusSummary Summary = ci::runCorpusCi(Paths, CO);
    for (const ci::ProgramVerdict &PV : Summary.Programs)
      std::printf("%-20s %-16s %s\n", PV.Name.c_str(),
                  ci::verdictName(PV.What), PV.Why.c_str());
    std::printf("ci: %zu program(s): %llu pass, %llu flaky, %llu "
                "reproduced, %llu salvaged-partial, %llu infra-error "
                "(%.2fs)\n",
                Summary.Programs.size(),
                static_cast<unsigned long long>(
                    Summary.count(ci::Verdict::Pass)),
                static_cast<unsigned long long>(
                    Summary.count(ci::Verdict::Flaky)),
                static_cast<unsigned long long>(
                    Summary.count(ci::Verdict::Reproduced)),
                static_cast<unsigned long long>(
                    Summary.count(ci::Verdict::SalvagedPartial)),
                static_cast<unsigned long long>(
                    Summary.count(ci::Verdict::InfraError)),
                Summary.Seconds);

    std::string Json = ci::ciSummaryToJson(Summary);
    std::string JsonPath = Args.get("ci-json", "", "ci.json");
    if (!JsonPath.empty()) {
      std::ofstream Out(JsonPath, std::ios::trunc);
      Out << Json;
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
        return Finish(1);
      }
      std::printf("ci summary -> %s\n", JsonPath.c_str());
    }
    // Self-check: the emitted document must satisfy its own validator.
    std::string Invalid = ci::validateCiSummaryJson(Json);
    if (!Invalid.empty()) {
      std::fprintf(stderr, "error: emitted ci summary fails validation: %s\n",
                   Invalid.c_str());
      return Finish(1);
    }
    return Finish(Summary.clean() ? 0 : 1);
  }

  std::optional<mir::Program> Prog = loadProgram(Target);
  if (!Prog)
    return Finish(1);

  if (Cmd == "print") {
    std::printf("%s", Prog->str().c_str());
    return Finish(0);
  }

  if (Cmd == "run") {
    uint64_t Seed = std::strtoull(Args.positionalOr(1, "1").c_str(),
                                  nullptr, 10);
    NullHook Null;
    Machine M(*Prog, Null);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    printOutcome(M.run(Sched));
    return Finish(0);
  }

  if (Cmd == "hunt") {
    uint64_t Max = std::strtoull(Args.positionalOr(1, "300").c_str(),
                                 nullptr, 10);
    BugReport Bug;
    std::optional<uint64_t> Seed = findBuggySeed(*Prog, Max, &Bug);
    if (!Seed) {
      std::printf("no failing schedule in %llu seeds\n",
                  static_cast<unsigned long long>(Max));
      return Finish(1);
    }
    std::printf("seed %llu fails: %s\n",
                static_cast<unsigned long long>(*Seed), Bug.str().c_str());
    return Finish(0);
  }

  if (Cmd == "record") {
    uint64_t Seed = std::strtoull(Args.positionalOr(1, "1").c_str(),
                                  nullptr, 10);
    std::string LogPath = Args.positionalOr(2, Target + ".lightlog");
    if (Args.has("nodes")) {
      uint32_t Nodes = static_cast<uint32_t>(
          std::strtoul(Args.get("nodes", "2", "2").c_str(), nullptr, 10));
      if (Nodes == 0 || Nodes > dist::MaxNodes) {
        std::fprintf(stderr, "error: --nodes wants a count in [1, %u]\n",
                     dist::MaxNodes);
        return Finish(2);
      }
      return Finish(runDistPipeline(*Prog, Nodes, Seed, LogPath, Epochs,
                                    Args.has("compress"),
                                    !Args.has("no-verify"), UseZ3,
                                    SolverShards));
    }
    LightOptions Opts;
    Opts.WriteToDisk = false;
    if (Epochs.on()) {
      // Durable-epoch mode: the on-disk artifact is the incrementally
      // written LIGHT002/LIGHT003 log itself (crash-recoverable at every
      // epoch boundary), not a finish()-time LIGHT001 save.
      Opts.EpochSpans = Epochs.Spans;
      Opts.EpochMs = Epochs.Ms;
      Opts.DurableLogPath = LogPath;
      Opts.CompressedEpochs = Args.has("compress");
    } else if (Args.has("compress")) {
      std::fprintf(stderr, "error: --compress needs durable epochs "
                           "(--epoch-spans or --epoch-ms)\n");
      return Finish(2);
    }
    LightRecorder Rec(Opts);
    Machine M(*Prog, Rec);
    Rec.attachRegistry(&M.registry());
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    RunResult R = M.run(Sched);
    RecordingLog Log = Rec.finish(&M.registry());
    printOutcome(R);
    if (Epochs.on()) {
      const DurableLogWriter *DL = Rec.durableLog();
      if (!DL || !DL->ok()) {
        std::fprintf(stderr, "error: durable log not written: %s\n",
                     DL && !DL->error().empty() ? DL->error().c_str()
                                                : "no epoch was flushed");
        return Finish(1);
      }
      if (DL->crashed())
        std::printf("note: injected crash tore the durable log; the on-disk "
                    "prefix is salvageable with `replay`\n");
      if (Rec.overflowed()) {
        std::fprintf(stderr, "error: recording overflowed: %s\n",
                     Rec.overflowError().c_str());
        return Finish(1);
      }
      std::printf("recorded %zu spans (durable %s, %llu segments, "
                  "%llu long-integers on disk) -> %s\n",
                  Log.Spans.size(),
                  Opts.CompressedEpochs ? "LIGHT003" : "LIGHT002",
                  static_cast<unsigned long long>(
                      DL ? DL->segmentsWritten() : 0),
                  static_cast<unsigned long long>(DL ? DL->wordsWritten()
                                                     : 0),
                  LogPath.c_str());
    } else {
      uint64_t Words = Log.save(LogPath);
      std::printf("recorded %zu spans (%llu long-integers on disk) -> %s\n",
                  Log.Spans.size(), static_cast<unsigned long long>(Words),
                  LogPath.c_str());
    }
    if (Args.has("no-verify"))
      return Finish(0);
    // Default verification pass: solve the schedule and re-execute it under
    // validation, so the one command exercises record + solve + replay (and
    // the telemetry outputs cover all three layers).
    return Finish(solveAndReplay(*Prog, Log, UseZ3, SolverShards));
  }

  if (Cmd == "replay") {
    if (Args.size() < 2)
      return usage();
    if (Args.has("stream")) {
      size_t WindowSpans = std::strtoull(
          Args.get("window-spans", "32768").c_str(), nullptr, 10);
      if (WindowSpans == 0) {
        std::fprintf(stderr,
                     "error: --window-spans wants a positive span count\n");
        return Finish(2);
      }
      return Finish(streamedSolveAndReplay(*Prog, Args.positional(1), UseZ3,
                                           SolverShards, WindowSpans));
    }
    RecordingLog Log;
    LogLoadReport Report;
    if (!Log.load(Args.positional(1), Report)) {
      std::fprintf(stderr, "error: cannot load '%s': %s\n",
                   Args.positional(1).c_str(), Report.Error.c_str());
      return Finish(1);
    }
    printLoadReport(Report);
    return Finish(solveAndReplay(*Prog, Log, UseZ3, SolverShards));
  }

  if (Cmd == "explore") {
    explore::ExploreOptions Opts;
    Opts.PreemptionBound = static_cast<uint32_t>(
        std::strtoul(Args.get("preemption-bound", "2").c_str(), nullptr, 10));
    Opts.PctDepth = static_cast<uint32_t>(
        std::strtoul(Args.get("pct-depth", "3").c_str(), nullptr, 10));
    Opts.PctSeeds =
        std::strtoull(Args.get("seeds", "1000").c_str(), nullptr, 10);
    Opts.ScheduleBudget =
        std::strtoull(Args.get("budget", "50000").c_str(), nullptr, 10);
    return Finish(runExplore(
        *Prog, Args.get("explore", "pct", "pct"), Opts, Args.has("oracle"),
        Args.has("shrink"),
        Args.get("repro-out", Target + ".repro.mir", Target + ".repro.mir"),
        UseZ3, SolverShards));
  }

  if (Cmd == "crashtest") {
    uint64_t Seed;
    if (Args.size() >= 2) {
      Seed = std::strtoull(Args.positional(1).c_str(), nullptr, 10);
    } else {
      // No seed given: hunt one deterministically.
      std::optional<uint64_t> Found = findBuggySeed(*Prog, 300);
      if (!Found) {
        std::fprintf(stderr,
                     "error: no failing schedule in 300 seeds; pass an "
                     "explicit seed\n");
        return Finish(1);
      }
      Seed = *Found;
      std::printf("hunted failing seed %llu\n",
                  static_cast<unsigned long long>(Seed));
    }
    std::string DurablePath =
        Args.positionalOr(2, makeTempPath("crashtest"));
    return Finish(runCrashtest(*Prog, Seed, DurablePath, Epochs,
                               Args.has("compress"), UseZ3, SolverShards));
  }

  return usage();
}

//===- tools/light-replay.cpp - The Light command-line driver --------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// The user-facing pipeline driver, mirroring the three components of the
/// paper's prototype (Section 5.1): the *transformer* (here: the MIR
/// loader + shared-access analysis), the *recorder*, and the *replayer*
/// (offline schedule computation + directed re-execution).
///
/// \code
///   light-replay list
///   light-replay print  <bug|file.mir>
///   light-replay run    <bug|file.mir> [seed]      # plain execution
///   light-replay hunt   <bug|file.mir> [max-seeds] # find a failing seed
///   light-replay record <bug|file.mir> [seed] [log]
///   light-replay show   <log>
///   light-replay replay <bug|file.mir> <log>
/// \endcode
///
/// Flags are position-independent and accepted by every subcommand:
///
///   --z3                   solve with the Z3 backend instead of the
///                          built-in IDL solver (record verification,
///                          replay)
///   --no-verify            record only; skip the solve + validated replay
///                          pass that `record` runs by default
///   --metrics-json <file>  write the merged metrics-registry snapshot
///   --trace-out <file>     arm the event tracer and write Chrome
///                          trace-event JSON (chrome://tracing, Perfetto)
///
/// A <bug> is one of the built-in Figure-6 benchmarks; anything else is
/// treated as a path to a textual MIR file (see mir/Parser.h).
///
//===----------------------------------------------------------------------===//

#include "analysis/SharedAccessAnalysis.h"
#include "bugs/BugHarness.h"
#include "core/LightRecorder.h"
#include "core/ReplayDirector.h"
#include "core/ReplaySchedule.h"
#include "interp/Machine.h"
#include "mir/Parser.h"
#include "obs/Args.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

using namespace light;
using namespace light::bugs;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: light-replay <command> ... [flags]\n"
      "  list                                 the built-in bug benchmarks\n"
      "  print  <bug|file.mir>                dump the program\n"
      "  run    <bug|file.mir> [seed]         execute under a random "
      "schedule\n"
      "  hunt   <bug|file.mir> [max-seeds]    search for a failing "
      "schedule\n"
      "  record <bug|file.mir> [seed] [log]   record with Light, then\n"
      "                                       solve + validated replay\n"
      "  show   <log>                         dump a recording\n"
      "  replay <bug|file.mir> <log>          solve + validated replay\n"
      "flags (any position, any subcommand):\n"
      "  --z3                   use the Z3 solver backend\n"
      "  --no-verify            skip record's solve+replay verification\n"
      "  --metrics-json <file>  write the metrics snapshot as JSON\n"
      "  --trace-out <file>     write a Chrome trace of the run\n");
  return 2;
}

std::optional<mir::Program> loadProgram(const std::string &Name) {
  for (BugBenchmark &B : makeBugSuite())
    if (B.Name == Name)
      return std::move(B.Prog);

  std::ifstream In(Name);
  if (!In) {
    std::fprintf(stderr, "error: no built-in bug and no file named '%s'\n",
                 Name.c_str());
    return std::nullopt;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  mir::ParseResult Parsed = mir::parseProgram(Buf.str());
  if (!Parsed.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", Name.c_str(),
                 Parsed.Error.c_str());
    return std::nullopt;
  }
  std::string Verify = Parsed.Prog.verify();
  if (!Verify.empty()) {
    std::fprintf(stderr, "error: %s: %s\n", Name.c_str(), Verify.c_str());
    return std::nullopt;
  }
  analysis::markSharedAccesses(Parsed.Prog);
  return std::move(Parsed.Prog);
}

void printOutcome(const RunResult &R) {
  if (R.Completed)
    std::printf("run completed cleanly (%llu shared accesses)\n",
                static_cast<unsigned long long>(R.SharedAccesses));
  else
    std::printf("run failed: %s\n", R.Bug.str().c_str());
  for (size_t T = 0; T < R.OutputByThread.size(); ++T)
    if (!R.OutputByThread[T].empty()) {
      std::string Flat = R.OutputByThread[T];
      for (char &Ch : Flat)
        if (Ch == '\n')
          Ch = ' ';
      std::printf("  t%zu printed: %s\n", T, Flat.c_str());
    }
}

/// Solves \p Log and runs one validated replay, printing the summary.
/// Returns 0 on a faithful replay.
int solveAndReplay(const mir::Program &Prog, const RecordingLog &Log,
                   bool UseZ3) {
  ReplaySchedule Plan = ReplaySchedule::build(
      Log, UseZ3 ? smt::SolverEngine::Z3 : smt::SolverEngine::Idl);
  if (!Plan.ok()) {
    std::fprintf(stderr, "error: %s\n", Plan.error().c_str());
    return 1;
  }
  std::printf("solved %zu-turn schedule in %.2f ms\n", Plan.order().size(),
              Plan.solveStats().SolveSeconds * 1000);
  ReplayDirector Director(Plan, /*RealThreads=*/false, /*Validate=*/true);
  Machine M(Prog, Director);
  M.prepareReplay(Log.Spawns);
  RunResult R = M.runReplay(Director);
  Director.publishMetrics();
  printOutcome(R);
  if (Director.failed()) {
    std::printf("REPLAY DIVERGED: %s\n", Director.divergence().c_str());
    return 1;
  }
  ReplayStats Stats = Director.stats();
  std::printf("replay faithful: %llu reads validated, %llu blind writes "
              "suppressed\n",
              static_cast<unsigned long long>(Stats.ValidatedReads),
              static_cast<unsigned long long>(Stats.BlindSuppressed));
  return 0;
}

/// Writes the telemetry outputs requested on the command line. Runs on
/// every exit path so a failed replay still leaves its trace behind.
int finishTelemetry(int Rc, const std::string &MetricsPath,
                    const std::string &TracePath) {
  if (!TracePath.empty()) {
    obs::Tracer::global().stop();
    if (obs::Tracer::global().writeChromeTrace(TracePath))
      std::printf("trace written -> %s (%zu events, %llu dropped)\n",
                  TracePath.c_str(), obs::Tracer::global().size(),
                  static_cast<unsigned long long>(
                      obs::Tracer::global().dropped()));
    else
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   TracePath.c_str());
  }
  if (!MetricsPath.empty()) {
    if (obs::Registry::global().writeJson(MetricsPath))
      std::printf("metrics written -> %s\n", MetricsPath.c_str());
    else
      std::fprintf(stderr, "error: cannot write metrics '%s'\n",
                   MetricsPath.c_str());
  }
  return Rc;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  if (Cmd.size() >= 2 && Cmd[0] == '-' && Cmd[1] == '-') {
    std::fprintf(stderr,
                 "error: expected a command before '%s' (flags go after "
                 "the command)\n",
                 Cmd.c_str());
    return usage();
  }

  obs::ArgList Args(argc, argv, {"metrics-json", "trace-out"},
                    {"z3", "no-verify"}, /*Begin=*/2);
  for (const std::string &F : Args.unknown())
    std::fprintf(stderr, "error: unknown flag '%s'\n", F.c_str());
  if (!Args.unknown().empty())
    return usage();

  // A valueless flag falls back to a conventional filename rather than
  // silently dropping the request.
  std::string MetricsPath = Args.get("metrics-json", "", "metrics.json");
  std::string TracePath = Args.get("trace-out", "", "trace.json");
  bool UseZ3 = Args.has("z3");
  if (!TracePath.empty())
    obs::Tracer::global().start();
  auto Finish = [&](int Rc) {
    return finishTelemetry(Rc, MetricsPath, TracePath);
  };

  if (Cmd == "list") {
    for (const BugBenchmark &B : makeBugSuite())
      std::printf("%-14s clap=%s chimera=%s\n", B.Name.c_str(),
                  B.ClapExpected ? "yes" : "no",
                  B.ChimeraExpected ? "yes" : "no");
    return Finish(0);
  }

  if (Args.size() < 1)
    return usage();
  const std::string &Target = Args.positional(0);

  if (Cmd == "show") {
    RecordingLog Log;
    if (!Log.load(Target)) {
      std::fprintf(stderr, "error: cannot load '%s'\n", Target.c_str());
      return Finish(1);
    }
    std::printf("%s", Log.str().c_str());
    return Finish(0);
  }

  std::optional<mir::Program> Prog = loadProgram(Target);
  if (!Prog)
    return Finish(1);

  if (Cmd == "print") {
    std::printf("%s", Prog->str().c_str());
    return Finish(0);
  }

  if (Cmd == "run") {
    uint64_t Seed = std::strtoull(Args.positionalOr(1, "1").c_str(),
                                  nullptr, 10);
    NullHook Null;
    Machine M(*Prog, Null);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    printOutcome(M.run(Sched));
    return Finish(0);
  }

  if (Cmd == "hunt") {
    uint64_t Max = std::strtoull(Args.positionalOr(1, "300").c_str(),
                                 nullptr, 10);
    BugReport Bug;
    std::optional<uint64_t> Seed = findBuggySeed(*Prog, Max, &Bug);
    if (!Seed) {
      std::printf("no failing schedule in %llu seeds\n",
                  static_cast<unsigned long long>(Max));
      return Finish(1);
    }
    std::printf("seed %llu fails: %s\n",
                static_cast<unsigned long long>(*Seed), Bug.str().c_str());
    return Finish(0);
  }

  if (Cmd == "record") {
    uint64_t Seed = std::strtoull(Args.positionalOr(1, "1").c_str(),
                                  nullptr, 10);
    std::string LogPath = Args.positionalOr(2, Target + ".lightlog");
    LightOptions Opts;
    Opts.WriteToDisk = false;
    LightRecorder Rec(Opts);
    Machine M(*Prog, Rec);
    M.seedEnvironment(Seed ^ 0x5a5a);
    RandomScheduler Sched(Seed);
    RunResult R = M.run(Sched);
    RecordingLog Log = Rec.finish(&M.registry());
    uint64_t Words = Log.save(LogPath);
    printOutcome(R);
    std::printf("recorded %zu spans (%llu long-integers on disk) -> %s\n",
                Log.Spans.size(), static_cast<unsigned long long>(Words),
                LogPath.c_str());
    if (Args.has("no-verify"))
      return Finish(0);
    // Default verification pass: solve the schedule and re-execute it under
    // validation, so the one command exercises record + solve + replay (and
    // the telemetry outputs cover all three layers).
    return Finish(solveAndReplay(*Prog, Log, UseZ3));
  }

  if (Cmd == "replay") {
    if (Args.size() < 2)
      return usage();
    RecordingLog Log;
    if (!Log.load(Args.positional(1))) {
      std::fprintf(stderr, "error: cannot load '%s'\n",
                   Args.positional(1).c_str());
      return Finish(1);
    }
    return Finish(solveAndReplay(*Prog, Log, UseZ3));
  }

  return usage();
}

#!/bin/sh
# Regenerates the committed bench-regression-gate baseline:
#
#   bench/baselines/BENCH_seed.json            canonical tiny contention run
#   bench/baselines/BENCH_seed_perturbed.json  time x8 copy the gate must catch
#
# Run from the repo root after a perf-relevant change, review the diff, and
# commit both files. The parameters here MUST match the bench_gate_produce
# ctest invocation (bench/CMakeLists.txt) — the diff matches rows by their
# config columns, so a parameter drift shows up as a missing-row failure.
#
# usage: tools/update_baseline.sh [build-dir]
set -eu

BUILD=${1:-build}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
OUT="$ROOT/bench/baselines"

if [ ! -x "$BUILD/bench/bench_contention" ]; then
  echo "update_baseline.sh: $BUILD/bench/bench_contention not built" >&2
  exit 1
fi

mkdir -p "$OUT"
"$BUILD/bench/bench_contention" --threads 2 --ops 50000 --locations 16 \
  --json "$OUT/BENCH_seed.json"
"$BUILD/tools/check_bench_json" "$OUT/BENCH_seed.json"
"$BUILD/tools/bench_diff" --perturb 8 "$OUT/BENCH_seed.json" \
  "$OUT/BENCH_seed_perturbed.json"
echo "update_baseline.sh: baselines refreshed under bench/baselines/"

//===- tools/bench_diff.cpp - Bench-regression gate CLI --------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Compares two light-bench-v1 reports with the noise-aware thresholds of
/// obs/BenchDiff.h and exits nonzero when the new report regressed — the
/// executable behind the ctest bench-regression gate and the
/// `tools/update_baseline.sh` workflow:
///
///   bench_diff bench/baselines/BENCH_seed.json BENCH_contention.json
///   bench_diff old.json new.json --time-rel 0.5 --count-rel 4
///   bench_diff --perturb 8 BENCH_seed.json BENCH_seed_perturbed.json
///
/// The --perturb mode writes a synthetically regressed copy (Time metrics
/// multiplied, Rate metrics divided by the factor) used to prove the gate
/// actually fires.
///
/// Exit codes: 0 within noise (or improved), 1 regression / missing
/// metric, 2 usage or malformed input.
///
//===----------------------------------------------------------------------===//

#include "obs/Args.h"
#include "obs/BenchDiff.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace light;
using namespace light::obs;

namespace {

const char *Usage =
    "usage: bench_diff <baseline.json> <new.json>\n"
    "           [--time-rel F] [--time-floor-ns F] [--rate-rel F]\n"
    "           [--count-rel F] [--count-floor F] [--allow-missing]\n"
    "       bench_diff --perturb <factor> <in.json> <out.json>\n";

const char *className(MetricClass C) {
  switch (C) {
  case MetricClass::Time:
    return "time";
  case MetricClass::Rate:
    return "rate";
  case MetricClass::Count:
    return "count";
  default:
    return "config";
  }
}

int runPerturb(double Factor, const std::string &InPath,
               const std::string &OutPath) {
  std::ifstream In(InPath);
  if (!In) {
    std::fprintf(stderr, "bench_diff: cannot open '%s'\n", InPath.c_str());
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  JsonParseResult Parsed = parseJson(Buf.str());
  if (!Parsed.Ok) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", InPath.c_str(),
                 Parsed.Error.c_str());
    return 2;
  }
  std::string Error;
  std::string Out = perturbReport(Parsed.Value, Factor, &Error);
  if (Out.empty()) {
    std::fprintf(stderr, "bench_diff: %s\n", Error.c_str());
    return 2;
  }
  std::ofstream OutF(OutPath, std::ios::trunc);
  OutF << Out << "\n";
  if (!OutF) {
    std::fprintf(stderr, "bench_diff: cannot write '%s'\n", OutPath.c_str());
    return 2;
  }
  std::printf("bench_diff: wrote %s (time x%.3g, rate /%.3g)\n",
              OutPath.c_str(), Factor, Factor);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  ArgList Args(argc, argv,
               {"time-rel", "time-floor-ns", "rate-rel", "count-rel",
                "count-floor", "perturb"},
               {"allow-missing", "quiet"});
  for (const std::string &U : Args.unknown()) {
    std::fprintf(stderr, "bench_diff: unknown flag %s\n%s", U.c_str(), Usage);
    return 2;
  }
  if (Args.has("perturb")) {
    if (Args.size() != 2 || Args.get("perturb").empty()) {
      std::fputs(Usage, stderr);
      return 2;
    }
    return runPerturb(std::stod(Args.get("perturb")), Args.positional(0),
                      Args.positional(1));
  }
  if (Args.size() != 2) {
    std::fputs(Usage, stderr);
    return 2;
  }

  DiffThresholds T;
  if (Args.has("time-rel"))
    T.TimeRel = std::stod(Args.get("time-rel"));
  if (Args.has("time-floor-ns"))
    T.TimeFloor = std::stod(Args.get("time-floor-ns"));
  if (Args.has("rate-rel"))
    T.RateRel = std::stod(Args.get("rate-rel"));
  if (Args.has("count-rel"))
    T.CountRel = std::stod(Args.get("count-rel"));
  if (Args.has("count-floor"))
    T.CountFloor = std::stod(Args.get("count-floor"));
  T.FailOnMissing = !Args.has("allow-missing");

  DiffResult R = diffReportFiles(Args.positional(0), Args.positional(1), T);
  if (!R.Ok) {
    std::fprintf(stderr, "bench_diff: %s\n", R.Error.c_str());
    return 2;
  }

  bool Quiet = Args.has("quiet");
  for (const DiffEntry &E : R.Entries) {
    const char *Tag = nullptr;
    switch (E.What) {
    case DiffEntry::Verdict::Regression:
      Tag = "REGRESSION";
      break;
    case DiffEntry::Verdict::Improvement:
      Tag = "improvement";
      break;
    case DiffEntry::Verdict::Missing:
      Tag = T.FailOnMissing ? "MISSING" : "missing";
      break;
    default:
      break; // within-noise / added rows stay silent unless verbose
    }
    if (!Tag || Quiet)
      continue;
    if (E.What == DiffEntry::Verdict::Missing)
      std::printf("%-11s %s %s (baseline %.6g, absent in new report)\n", Tag,
                  E.Row.c_str(), E.Metric.c_str(), E.Old);
    else
      std::printf("%-11s %s %s [%s]: %.6g -> %.6g (%+.1f%%)\n", Tag,
                  E.Row.c_str(), E.Metric.c_str(), className(E.Class), E.Old,
                  E.New, 100.0 * E.relDelta());
  }

  bool Regressed = R.regressed(T);
  std::printf("bench_diff: %s: %llu compared, %llu regressions, "
              "%llu improvements, %llu missing -> %s\n",
              R.Bench.c_str(), static_cast<unsigned long long>(R.Compared),
              static_cast<unsigned long long>(R.Regressions),
              static_cast<unsigned long long>(R.Improvements),
              static_cast<unsigned long long>(R.Missing),
              Regressed ? "FAIL" : "OK");
  return Regressed ? 1 : 0;
}

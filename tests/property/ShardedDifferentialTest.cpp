//===- tests/property/ShardedDifferentialTest.cpp - Shards vs monolith ----===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Differential validation of sharded schedule construction: for random
/// RecordingLogs (from random recorded programs),
///
///   1. the monolithic solve and the 2/4/auto-sharded solves agree on
///      satisfiability,
///   2. every sharded model satisfies the full constraint system,
///   3. every sharded schedule passes the ReplayDirector's validated
///      replay — same bug correlation, same values at every use — exactly
///      like the monolithic schedule does.
///
/// Runs under the TSan preset (label `san`) to also check the shard pool
/// for data races.
///
//===----------------------------------------------------------------------===//

#include "../TestPrograms.h"
#include "smt/ShardedSolver.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace light;
using namespace light::mir;
using namespace light::testprogs;

namespace {

/// A compact random concurrent program: W workers over shared globals,
/// heavy on cross-thread traffic so the logs have multiple locations.
Program randomSharedProgram(Rng &R) {
  ProgramBuilder PB;
  uint32_t NumGlobals = 3 + static_cast<uint32_t>(R.below(4));
  uint32_t NumWorkers = 2 + static_cast<uint32_t>(R.below(3));
  std::vector<uint32_t> Globals;
  for (uint32_t G = 0; G < NumGlobals; ++G)
    Globals.push_back(PB.addGlobal("g" + std::to_string(G)));

  std::vector<FuncId> Workers;
  for (uint32_t W = 0; W < NumWorkers; ++W) {
    FunctionBuilder FB = PB.beginFunction("worker" + std::to_string(W), 0);
    Reg V = FB.newReg(), Tmp = FB.newReg();
    uint32_t Ops = 6 + static_cast<uint32_t>(R.below(20));
    for (uint32_t Op = 0; Op < Ops; ++Op) {
      uint32_t G = Globals[R.below(NumGlobals)];
      switch (R.below(3)) {
      case 0:
        FB.getGlobal(V, G);
        FB.print(V);
        break;
      case 1:
        FB.constInt(Tmp, static_cast<int64_t>(W * 1000 + Op));
        FB.putGlobal(G, Tmp);
        break;
      case 2:
        FB.getGlobal(V, G);
        FB.constInt(Tmp, 1);
        FB.add(V, V, Tmp);
        FB.putGlobal(G, V);
        break;
      }
    }
    FB.ret();
    Workers.push_back(PB.endFunction(FB));
  }

  FunctionBuilder FB = PB.beginFunction("main", 0);
  Reg Tmp = FB.newReg();
  for (uint32_t G = 0; G < NumGlobals; ++G) {
    FB.constInt(Tmp, static_cast<int64_t>(G));
    FB.putGlobal(Globals[G], Tmp);
  }
  std::vector<Reg> Tids;
  for (FuncId W : Workers) {
    Reg T = FB.newReg();
    FB.threadStart(T, W);
    Tids.push_back(T);
  }
  for (Reg T : Tids)
    FB.threadJoin(T);
  FB.ret();
  PB.setEntry(PB.endFunction(FB));
  return PB.take();
}

class ShardedDifferential : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(ShardedDifferential, SolverAgreesAcrossShardCounts) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng R(Seed * 0x517cc1b7ull + 3);
  Program Prog = randomSharedProgram(R);
  ASSERT_EQ(Prog.verify(), "") << Prog.str();
  RecordOutcome Rec = recordRun(Prog, Seed * 13 + 7);
  ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();

  ScheduleProblem P = buildScheduleProblem(Rec.Log);
  smt::SolveResult Mono =
      smt::solveOrder(P.System, smt::SolverEngine::Idl);
  for (unsigned Shards : {2u, 4u, 0u}) {
    smt::SolveResult Sharded =
        smt::solveSharded(P.System, smt::SolverEngine::Idl, {}, Shards);
    ASSERT_EQ(Sharded.sat(), Mono.sat()) << "shards " << Shards;
    if (Sharded.sat())
      EXPECT_TRUE(P.System.satisfiedBy(Sharded.Values))
          << "shards " << Shards;
  }
}

TEST_P(ShardedDifferential, ShardedSchedulesReplayFaithfully) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng R(Seed * 0x9e3779b9ull + 5);
  Program Prog = randomSharedProgram(R);
  ASSERT_EQ(Prog.verify(), "") << Prog.str();
  RecordOutcome Rec = recordRun(Prog, Seed * 29 + 11);
  ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();

  // The sharded schedule must pass the director's validated replay —
  // same values at every use — for every shard width.
  for (unsigned Shards : {1u, 2u, 4u, 0u})
    expectFaithfulReplay(Prog, Rec, smt::SolverEngine::Idl, Shards);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferential, ::testing::Range(1, 16));

//===- tests/property/ShardedDifferentialTest.cpp - Shards vs monolith ----===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Differential validation of sharded schedule construction: for random
/// RecordingLogs (from random recorded programs),
///
///   1. the monolithic solve and the 2/4/auto-sharded solves agree on
///      satisfiability,
///   2. every sharded model satisfies the full constraint system,
///   3. every sharded schedule passes the ReplayDirector's validated
///      replay — same bug correlation, same values at every use — exactly
///      like the monolithic schedule does.
///
/// Programs come from the shared generator (testlib/ProgramGen.h) in its
/// sharedOnly configuration — globals-only cross-thread traffic so the
/// logs span multiple locations. Honors LIGHT_TEST_SEED /
/// LIGHT_TEST_ITERS (testlib/TestEnv.h).
///
/// Runs under the TSan preset (label `san`) to also check the shard pool
/// for data races.
///
//===----------------------------------------------------------------------===//

#include "../TestPrograms.h"
#include "smt/ShardedSolver.h"
#include "support/Random.h"
#include "testlib/ProgramGen.h"
#include "testlib/TestEnv.h"

#include <gtest/gtest.h>

using namespace light;
using namespace light::mir;
using namespace light::testprogs;

namespace {

class ShardedDifferential : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(ShardedDifferential, SolverAgreesAcrossShardCounts) {
  uint64_t Seed = testenv::effectiveSeed(static_cast<uint64_t>(GetParam()));
  SCOPED_TRACE(testenv::repro(Seed));
  Rng R(Seed * 0x517cc1b7ull + 3);
  Program Prog = testgen::randomProgram(R, testgen::GenConfig::sharedOnly());
  ASSERT_EQ(Prog.verify(), "") << Prog.str();
  RecordOutcome Rec = recordRun(Prog, Seed * 13 + 7);
  ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();

  ScheduleProblem P = buildScheduleProblem(Rec.Log);
  smt::SolveResult Mono =
      smt::solveOrder(P.System, smt::SolverEngine::Idl);
  for (unsigned Shards : {2u, 4u, 0u}) {
    smt::SolveResult Sharded =
        smt::solveSharded(P.System, smt::SolverEngine::Idl, {}, Shards);
    ASSERT_EQ(Sharded.sat(), Mono.sat()) << "shards " << Shards;
    if (Sharded.sat())
      EXPECT_TRUE(P.System.satisfiedBy(Sharded.Values))
          << "shards " << Shards;
  }
}

TEST_P(ShardedDifferential, ShardedSchedulesReplayFaithfully) {
  uint64_t Seed = testenv::effectiveSeed(static_cast<uint64_t>(GetParam()));
  SCOPED_TRACE(testenv::repro(Seed));
  Rng R(Seed * 0x9e3779b9ull + 5);
  Program Prog = testgen::randomProgram(R, testgen::GenConfig::sharedOnly());
  ASSERT_EQ(Prog.verify(), "") << Prog.str();
  RecordOutcome Rec = recordRun(Prog, Seed * 29 + 11);
  ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();

  // The sharded schedule must pass the director's validated replay —
  // same values at every use — for every shard width.
  for (unsigned Shards : {1u, 2u, 4u, 0u})
    expectFaithfulReplay(Prog, Rec, smt::SolverEngine::Idl, Shards);
}

TEST_P(ShardedDifferential, SyncPrimitiveLogsShardFaithfully) {
  // Same contract over the synchronization surface: rwlock reader blocks,
  // barrier generations, timed-wait wakeups, and CAS RMWs all produce
  // ghost-location constraints that must survive shard partitioning.
  uint64_t Seed = testenv::effectiveSeed(static_cast<uint64_t>(GetParam()));
  SCOPED_TRACE(testenv::repro(Seed));
  Rng R(Seed * 0x2545f491ull + 9);
  Program Prog =
      testgen::randomProgram(R, testgen::GenConfig::syncPrimitives());
  ASSERT_EQ(Prog.verify(), "") << Prog.str();
  RecordOutcome Rec = recordRun(Prog, Seed * 17 + 3);
  ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();

  ScheduleProblem P = buildScheduleProblem(Rec.Log);
  smt::SolveResult Mono = smt::solveOrder(P.System, smt::SolverEngine::Idl);
  for (unsigned Shards : {2u, 0u}) {
    smt::SolveResult Sharded =
        smt::solveSharded(P.System, smt::SolverEngine::Idl, {}, Shards);
    ASSERT_EQ(Sharded.sat(), Mono.sat()) << "shards " << Shards;
    if (Sharded.sat())
      EXPECT_TRUE(P.System.satisfiedBy(Sharded.Values))
          << "shards " << Shards;
  }
  for (unsigned Shards : {1u, 2u, 0u})
    expectFaithfulReplay(Prog, Rec, smt::SolverEngine::Idl, Shards);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferential,
                         ::testing::Range(1, 1 + testenv::iters(15)));

//===- tests/property/PrintParseRoundTripTest.cpp - Printer/parser duality -===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Property: for any generated program P, parse(print(P)) succeeds, the
/// reparsed program verifies, and printing it again is byte-identical —
/// i.e. print is a section of parse. Sampled across every generator
/// preset, including the synchronization-primitive surface (rwlocks,
/// barriers, timed waits, CAS/exchange), so a printer/parser skew on any
/// opcode the generator can emit fails here before it corrupts a saved
/// corpus. Honors LIGHT_TEST_SEED / LIGHT_TEST_ITERS.
///
//===----------------------------------------------------------------------===//

#include "mir/Parser.h"
#include "support/Random.h"
#include "testlib/ProgramGen.h"
#include "testlib/TestEnv.h"

#include <gtest/gtest.h>

using namespace light;
using namespace light::mir;

namespace {

class PrintParseRoundTrip : public ::testing::TestWithParam<int> {};

struct NamedConfig {
  const char *Name;
  testgen::GenConfig Config;
};

std::vector<NamedConfig> presets() {
  return {{"full", testgen::GenConfig::full()},
          {"sharedOnly", testgen::GenConfig::sharedOnly()},
          {"withWaitNotify", testgen::GenConfig::withWaitNotify()},
          {"syncPrimitives", testgen::GenConfig::syncPrimitives()}};
}

} // namespace

TEST_P(PrintParseRoundTrip, PrintIsASectionOfParse) {
  uint64_t Seed = testenv::effectiveSeed(static_cast<uint64_t>(GetParam()));
  SCOPED_TRACE(testenv::repro(Seed));
  for (const NamedConfig &NC : presets()) {
    SCOPED_TRACE(NC.Name);
    Rng R(Seed * 0x9e3779b97f4a7c15ull + 17);
    Program P = testgen::randomProgram(R, NC.Config);
    ASSERT_EQ(P.verify(), "") << P.str();

    std::string Text = P.str();
    ParseResult First = parseProgram(Text);
    ASSERT_TRUE(First.Ok) << First.Error << "\n" << Text;
    EXPECT_EQ(First.Prog.verify(), "");
    EXPECT_EQ(First.Line, 0);
    EXPECT_EQ(First.Col, 0);

    // Byte-identical fixpoint after one round, and stable on the second.
    std::string Second = First.Prog.str();
    EXPECT_EQ(Second, Text);
    ParseResult Again = parseProgram(Second);
    ASSERT_TRUE(Again.Ok) << Again.Error;
    EXPECT_EQ(Again.Prog.str(), Second);

    // Structure survives: same entry, same shapes.
    EXPECT_EQ(First.Prog.Entry, P.Entry);
    EXPECT_EQ(First.Prog.Functions.size(), P.Functions.size());
    EXPECT_EQ(First.Prog.Globals, P.Globals);
    EXPECT_EQ(First.Prog.Classes.size(), P.Classes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseRoundTrip,
                         ::testing::Range(1, 1 + testenv::iters(25)));

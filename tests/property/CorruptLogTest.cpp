//===- tests/property/CorruptLogTest.cpp ----------------------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Property: RecordingLog::load() never crashes, asserts, or decodes
/// garbage on arbitrarily mangled input. Both on-disk formats are mangled
/// with random truncations and bit flips; every load must either fail
/// cleanly (with an error in the report) or produce a log whose constraint
/// system still builds and solves without tripping anything.
///
//===----------------------------------------------------------------------===//

#include "../TestPrograms.h"
#include "support/Random.h"
#include "testlib/TestEnv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

using namespace light;
using namespace light::testprogs;

namespace {

std::vector<unsigned char> slurp(const std::string &Path) {
  std::vector<unsigned char> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Bytes;
  unsigned char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof Buf, F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + Got);
  std::fclose(F);
  return Bytes;
}

void spit(const std::string &Path, const std::vector<unsigned char> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  if (!Bytes.empty()) {
    ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  }
  std::fclose(F);
}

/// Applies one random mutation: truncation, bit flip, or a burst of flips.
std::vector<unsigned char> mutate(const std::vector<unsigned char> &Orig,
                                  Rng &R) {
  std::vector<unsigned char> Bytes = Orig;
  switch (R.below(3)) {
  case 0: // truncate to a random (possibly empty) prefix
    Bytes.resize(R.below(Bytes.size() + 1));
    break;
  case 1: // single bit flip
    if (!Bytes.empty())
      Bytes[R.below(Bytes.size())] ^= 1u << R.below(8);
    break;
  default: // short burst of corruption
    for (int I = 0; I < 16 && !Bytes.empty(); ++I)
      Bytes[R.below(Bytes.size())] ^= static_cast<unsigned char>(R.next());
    break;
  }
  return Bytes;
}

/// The property body: load the mangled file; on success the log must still
/// be solvable without crashing.
void checkMangled(const std::string &Path) {
  RecordingLog Log;
  LogLoadReport Report;
  if (!Log.load(Path, Report)) {
    EXPECT_FALSE(Report.Error.empty());
    return;
  }
  // Loaded (possibly salvaged): downstream machinery must stay crash-free.
  ReplaySchedule RS = ReplaySchedule::build(Log);
  if (!RS.ok()) {
    EXPECT_FALSE(RS.error().empty());
  }
}

class CorruptLog : public ::testing::Test {
protected:
  void runProperty(bool Durable, uint64_t SeedBase) {
    uint64_t Seed = testenv::effectiveSeed(SeedBase);
    SCOPED_TRACE(testenv::repro(Seed));
    mir::Program Prog = counterRace(3, 5);
    RecordOutcome Rec = recordRun(Prog, 7);
    std::string Clean = makeTempPath("corrupt-src");
    if (Durable)
      ASSERT_GT(Rec.Log.saveDurable(Clean), 0u);
    else
      ASSERT_GT(Rec.Log.save(Clean), 0u);
    std::vector<unsigned char> Orig = slurp(Clean);
    ASSERT_FALSE(Orig.empty());

    std::string Mangled = makeTempPath("corrupt-mut");
    Rng R(Seed);
    int Trials = 120 * testenv::iters(1);
    for (int Trial = 0; Trial < Trials; ++Trial) {
      spit(Mangled, mutate(Orig, R));
      checkMangled(Mangled);
    }
    std::remove(Clean.c_str());
    std::remove(Mangled.c_str());
  }
};

TEST_F(CorruptLog, Light002NeverCrashesOnMangledInput) {
  runProperty(/*Durable=*/true, 0xd1ce);
}

TEST_F(CorruptLog, Light001NeverCrashesOnMangledInput) {
  runProperty(/*Durable=*/false, 0xfeed);
}

TEST_F(CorruptLog, EmptyAndTinyFiles) {
  std::string Path = makeTempPath("corrupt-tiny");
  for (size_t N : {size_t(0), size_t(1), size_t(7), size_t(8), size_t(9)}) {
    spit(Path, std::vector<unsigned char>(N, 0xab));
    RecordingLog Log;
    LogLoadReport Report;
    EXPECT_FALSE(Log.load(Path, Report));
    EXPECT_FALSE(Report.Error.empty());
  }
  std::remove(Path.c_str());
}

} // namespace

//===- tests/property/RandomProgramTest.cpp - Fuzzed replay soundness -----===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Property-based validation of Theorem 1 and Lemma 4.1: for randomly
/// generated concurrent MIR programs recorded under random schedules,
///
///   1. the replay constraint system is always satisfiable (Lemma 4.1),
///   2. the replay run observes the same source write at every read
///      (enforced by the director's validation mode),
///   3. every thread prints exactly the same value sequence (the same value
///      arises at each use — Theorem 1),
///
/// across all three optimization variants (V_basic, V_O1, V_both-without-
/// guard-analysis) and both bursty and uniform schedulers.
///
/// Programs come from the shared generator (testlib/ProgramGen.h) in its
/// full configuration: locks, arrays, and maps included. Honors
/// LIGHT_TEST_SEED / LIGHT_TEST_ITERS (testlib/TestEnv.h).
///
//===----------------------------------------------------------------------===//

#include "../TestPrograms.h"
#include "support/Random.h"
#include "testlib/ProgramGen.h"
#include "testlib/TestEnv.h"

#include <gtest/gtest.h>

using namespace light;
using namespace light::mir;
using namespace light::testprogs;

namespace {

class RandomProgramReplay : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(RandomProgramReplay, FaithfulAcrossVariantsAndSchedules) {
  uint64_t Seed = testenv::effectiveSeed(static_cast<uint64_t>(GetParam()));
  SCOPED_TRACE(testenv::repro(Seed));
  Rng R(Seed * 0x9e3779b9ull + 1);
  Program Prog = testgen::randomProgram(R);
  ASSERT_EQ(Prog.verify(), "") << Prog.str();

  for (const LightOptions &Opts :
       {LightOptions::basic(), LightOptions::o1Only(), LightOptions::both()}) {
    for (int Bursty = 0; Bursty < 2; ++Bursty) {
      RecordOutcome Rec = Bursty
                              ? recordRunBursty(Prog, Seed * 31 + Bursty, Opts)
                              : recordRun(Prog, Seed * 31 + Bursty, Opts);
      ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();
      // Lemma 4.1: satisfiability.
      ReplaySchedule RS = ReplaySchedule::build(Rec.Log);
      ASSERT_TRUE(RS.ok()) << RS.error();
      // Theorem 1: value determinism at every use.
      expectFaithfulReplay(Prog, Rec);
    }
  }
}

TEST_P(RandomProgramReplay, SyncPrimitiveProgramsAreFaithfulToo) {
  // The same three properties over the synchronization preset: rwlock
  // sections, barrier generations, timed-wait arms (recorded as inputs),
  // and CAS/exchange RMWs.
  uint64_t Seed = testenv::effectiveSeed(static_cast<uint64_t>(GetParam()));
  SCOPED_TRACE(testenv::repro(Seed));
  Rng R(Seed * 0x9e3779b9ull + 23);
  Program Prog =
      testgen::randomProgram(R, testgen::GenConfig::syncPrimitives());
  ASSERT_EQ(Prog.verify(), "") << Prog.str();

  for (int Bursty = 0; Bursty < 2; ++Bursty) {
    RecordOutcome Rec = Bursty ? recordRunBursty(Prog, Seed * 37 + Bursty)
                               : recordRun(Prog, Seed * 37 + Bursty);
    ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();
    ReplaySchedule RS = ReplaySchedule::build(Rec.Log);
    ASSERT_TRUE(RS.ok()) << RS.error();
    expectFaithfulReplay(Prog, Rec);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramReplay,
                         ::testing::Range(1, 1 + testenv::iters(40)));

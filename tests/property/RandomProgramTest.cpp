//===- tests/property/RandomProgramTest.cpp - Fuzzed replay soundness -----===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//
///
/// Property-based validation of Theorem 1 and Lemma 4.1: for randomly
/// generated concurrent MIR programs recorded under random schedules,
///
///   1. the replay constraint system is always satisfiable (Lemma 4.1),
///   2. the replay run observes the same source write at every read
///      (enforced by the director's validation mode),
///   3. every thread prints exactly the same value sequence (the same value
///      arises at each use — Theorem 1),
///
/// across all three optimization variants (V_basic, V_O1, V_both-without-
/// guard-analysis) and both bursty and uniform schedulers.
///
//===----------------------------------------------------------------------===//

#include "../TestPrograms.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace light;
using namespace light::mir;
using namespace light::testprogs;

namespace {

/// Generates a random concurrent program: W workers over G shared globals
/// and up to two lock objects, each worker a straight-line mix of reads
/// (printed), writes, and properly nested synchronized sections.
Program randomProgram(Rng &R) {
  ProgramBuilder PB;
  uint32_t NumGlobals = 2 + static_cast<uint32_t>(R.below(4));
  uint32_t NumLocks = static_cast<uint32_t>(R.below(3));
  uint32_t NumWorkers = 2 + static_cast<uint32_t>(R.below(3));

  std::vector<uint32_t> Globals;
  for (uint32_t G = 0; G < NumGlobals; ++G)
    Globals.push_back(PB.addGlobal("g" + std::to_string(G)));
  std::vector<uint32_t> LockGlobals;
  ClassId LockCls = PB.addClass("L", {"pad"});
  for (uint32_t L = 0; L < NumLocks; ++L)
    LockGlobals.push_back(PB.addGlobal("lock" + std::to_string(L)));
  uint32_t GArr = PB.addGlobal("arr");
  uint32_t GMap = PB.addGlobal("map");

  std::vector<FuncId> Workers;
  for (uint32_t W = 0; W < NumWorkers; ++W) {
    FunctionBuilder FB = PB.beginFunction("worker" + std::to_string(W), 0);
    Reg V = FB.newReg(), Tmp = FB.newReg();
    std::vector<Reg> LockRegs;
    for (uint32_t L = 0; L < NumLocks; ++L) {
      Reg LR = FB.newReg();
      FB.getGlobal(LR, LockGlobals[L]);
      LockRegs.push_back(LR);
    }
    Reg ArrReg = FB.newReg(), MapReg = FB.newReg(), Key = FB.newReg();
    FB.getGlobal(ArrReg, GArr);
    FB.getGlobal(MapReg, GMap);
    uint32_t Ops = 8 + static_cast<uint32_t>(R.below(30));
    int Depth = 0;
    std::vector<Reg> Held;
    for (uint32_t Op = 0; Op < Ops; ++Op) {
      switch (R.below(8)) {
      case 0:
      case 1: { // read + print
        FB.getGlobal(V, Globals[R.below(NumGlobals)]);
        FB.print(V);
        break;
      }
      case 2:
      case 3: { // write a fresh value
        FB.constInt(Tmp, static_cast<int64_t>(W * 10000 + Op));
        FB.putGlobal(Globals[R.below(NumGlobals)], Tmp);
        break;
      }
      case 4: { // read-modify-write
        uint32_t G = Globals[R.below(NumGlobals)];
        FB.getGlobal(V, G);
        FB.print(V);
        FB.constInt(Tmp, 1);
        FB.add(V, V, Tmp);
        FB.putGlobal(G, V);
        break;
      }
      case 5: { // enter or exit a synchronized section
        if (!LockRegs.empty() && Depth == 0 && R.chance(1, 2)) {
          Reg LR = LockRegs[R.below(LockRegs.size())];
          FB.monitorEnter(LR);
          Held.push_back(LR);
          ++Depth;
        } else if (Depth > 0) {
          FB.monitorExit(Held.back());
          Held.pop_back();
          --Depth;
        }
        break;
      }
      case 6: { // shared array element traffic
        FB.constInt(Key, static_cast<int64_t>(R.below(8)));
        if (R.chance(1, 2)) {
          FB.aload(V, ArrReg, Key);
          FB.print(V);
        } else {
          FB.constInt(Tmp, static_cast<int64_t>(W * 100 + Op));
          FB.astore(ArrReg, Key, Tmp);
        }
        break;
      }
      case 7: { // shared map traffic (per-key locations)
        FB.constInt(Key, static_cast<int64_t>(R.below(6)));
        switch (R.below(3)) {
        case 0:
          FB.mapGet(V, MapReg, Key);
          FB.print(V);
          break;
        case 1:
          FB.constInt(Tmp, static_cast<int64_t>(W * 1000 + Op));
          FB.mapPut(MapReg, Key, Tmp);
          break;
        case 2:
          FB.mapContains(V, MapReg, Key);
          FB.print(V);
          break;
        }
        break;
      }
      }
    }
    while (Depth-- > 0) {
      FB.monitorExit(Held.back());
      Held.pop_back();
    }
    FB.ret();
    Workers.push_back(PB.endFunction(FB));
  }

  FunctionBuilder FB = PB.beginFunction("main", 0);
  Reg Obj = FB.newReg(), Tmp = FB.newReg();
  for (uint32_t L = 0; L < NumLocks; ++L) {
    FB.newObject(Obj, LockCls);
    FB.putGlobal(LockGlobals[L], Obj);
  }
  FB.constInt(Tmp, 8);
  FB.newArray(Obj, Tmp);
  FB.putGlobal(GArr, Obj);
  FB.mapNew(Obj);
  FB.putGlobal(GMap, Obj);
  for (uint32_t G = 0; G < NumGlobals; ++G) {
    FB.constInt(Tmp, static_cast<int64_t>(G) * 100);
    FB.putGlobal(Globals[G], Tmp);
  }
  std::vector<Reg> Tids;
  for (FuncId W : Workers) {
    Reg T = FB.newReg();
    FB.threadStart(T, W);
    Tids.push_back(T);
  }
  for (Reg T : Tids)
    FB.threadJoin(T);
  for (uint32_t G = 0; G < NumGlobals; ++G) {
    FB.getGlobal(Tmp, Globals[G]);
    FB.print(Tmp);
  }
  FB.ret();
  PB.setEntry(PB.endFunction(FB));
  return PB.take();
}

class RandomProgramReplay : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(RandomProgramReplay, FaithfulAcrossVariantsAndSchedules) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng R(Seed * 0x9e3779b9ull + 1);
  Program Prog = randomProgram(R);
  ASSERT_EQ(Prog.verify(), "") << Prog.str();

  for (const LightOptions &Opts :
       {LightOptions::basic(), LightOptions::o1Only(), LightOptions::both()}) {
    for (int Bursty = 0; Bursty < 2; ++Bursty) {
      RecordOutcome Rec = Bursty
                              ? recordRunBursty(Prog, Seed * 31 + Bursty, Opts)
                              : recordRun(Prog, Seed * 31 + Bursty, Opts);
      ASSERT_TRUE(Rec.Result.Completed) << Rec.Result.Bug.str();
      // Lemma 4.1: satisfiability.
      ReplaySchedule RS = ReplaySchedule::build(Rec.Log);
      ASSERT_TRUE(RS.ok()) << RS.error();
      // Theorem 1: value determinism at every use.
      expectFaithfulReplay(Prog, Rec);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramReplay, ::testing::Range(1, 41));

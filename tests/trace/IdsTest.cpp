//===- tests/trace/IdsTest.cpp - Identifier packing tests ------------------===//
//
// Part of the Light record/replay project.
//
//===----------------------------------------------------------------------===//

#include "trace/Ids.h"

#include <gtest/gtest.h>

using namespace light;

TEST(AccessId, PackUnpackRoundTrip) {
  AccessId A(513, 123456789ull);
  AccessId B = AccessId::unpack(A.pack());
  EXPECT_EQ(A, B);
  EXPECT_EQ(B.Thread, 513);
  EXPECT_EQ(B.Count, 123456789ull);
}

TEST(AccessId, ZeroIsInvalid) {
  EXPECT_FALSE(AccessId().valid());
  EXPECT_TRUE(AccessId(0, 1).valid());
  EXPECT_EQ(AccessId().pack(), 0u);
}

TEST(AccessId, OrderingFollowsThreadThenCounter) {
  EXPECT_LT(AccessId(1, 99), AccessId(2, 1));
  EXPECT_LT(AccessId(1, 1), AccessId(1, 2));
}

TEST(ObjectId, PackUnpackRoundTrip) {
  ObjectId O(17, 424242);
  ObjectId P = ObjectId::unpack(O.pack());
  EXPECT_EQ(O, P);
  EXPECT_FALSE(O.isNull());
  EXPECT_TRUE(ObjectId().isNull());
}

TEST(Location, KindsAreDistinguished) {
  ObjectId O(1, 1);
  LocationId F = loc::field(O, 3);
  LocationId A = loc::arrayElem(O, 3);
  LocationId L = loc::lock(O);
  LocationId C = loc::cond(O);
  EXPECT_NE(F, A);
  EXPECT_NE(L, C);
  EXPECT_EQ(loc::kindOf(F), LocationKind::Field);
  EXPECT_EQ(loc::kindOf(A), LocationKind::ArrayElem);
  EXPECT_EQ(loc::kindOf(L), LocationKind::Lock);
}

TEST(Location, GhostDetection) {
  ObjectId O(1, 1);
  EXPECT_FALSE(loc::isGhost(loc::field(O, 0)));
  EXPECT_FALSE(loc::isGhost(loc::var(5)));
  EXPECT_TRUE(loc::isGhost(loc::lock(O)));
  EXPECT_TRUE(loc::isGhost(loc::cond(O)));
  EXPECT_TRUE(loc::isGhost(loc::threadStart(3)));
  EXPECT_TRUE(loc::isGhost(loc::threadTerm(3)));
}

TEST(Location, DistinctFieldsOfDistinctObjects) {
  LocationId A = loc::field(ObjectId(1, 1), 0);
  LocationId B = loc::field(ObjectId(1, 2), 0);
  LocationId C = loc::field(ObjectId(2, 1), 0);
  EXPECT_NE(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(B, C);
}

TEST(Location, PrettyPrinting) {
  EXPECT_EQ(loc::str(loc::var(7)), "var7");
  EXPECT_EQ(loc::str(loc::threadStart(2)), "start(t2)");
  EXPECT_EQ(loc::str(loc::field(ObjectId(1, 3), 4)), "o1.3.f4");
}
